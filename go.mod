module github.com/amuse/smc

go 1.22
