package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/transport"
)

// Network is a simulated datagram network. Endpoints attach with an ID
// and exchange byte arrays subject to the configured link profiles.
// All methods are safe for concurrent use.
type Network struct {
	mu       sync.Mutex
	eps      map[ident.ID]*Endpoint
	def      Profile
	links    map[linkKey]Profile
	blocked  map[linkKey]bool
	isolated map[ident.ID]bool
	nextFree map[linkKey]time.Time // link busy-until, for bandwidth serialisation
	rng      *rand.Rand
	scale    float64
	closed   bool
	stats    Stats

	// Delayed deliveries live in one pooled min-heap drained by a
	// single scheduler goroutine (started lazily on the first delayed
	// datagram) instead of one time.AfterFunc per datagram: on a link
	// with latency every packet used to cost a timer plus closure
	// allocation, which dominated the simulated E2E allocation profile.
	pending   delayHeap
	freeDel   *pendingDelivery
	delSeq    uint64
	schedOn   bool
	schedWake chan struct{}
	schedDone chan struct{}
}

// pendingDelivery is one scheduled datagram awaiting its deadline.
type pendingDelivery struct {
	at   time.Time
	seq  uint64 // FIFO tie-break among equal deadlines
	to   ident.ID
	dg   transport.Datagram
	next *pendingDelivery // free-list link
}

func (d *pendingDelivery) before(o *pendingDelivery) bool {
	if !d.at.Equal(o.at) {
		return d.at.Before(o.at)
	}
	return d.seq < o.seq
}

// delayHeap is a hand-rolled min-heap (container/heap would box every
// entry through an interface).
type delayHeap []*pendingDelivery

func (h *delayHeap) push(d *pendingDelivery) {
	*h = append(*h, d)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *delayHeap) pop() *pendingDelivery {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = nil
	s = s[:last]
	*h = s
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		small := i
		if left < len(s) && s[left].before(s[small]) {
			small = left
		}
		if right < len(s) && s[right].before(s[small]) {
			small = right
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// getDelLocked/putDelLocked recycle heap entries. Caller holds n.mu.
func (n *Network) getDelLocked() *pendingDelivery {
	if d := n.freeDel; d != nil {
		n.freeDel = d.next
		d.next = nil
		return d
	}
	return new(pendingDelivery)
}

func (n *Network) putDelLocked(d *pendingDelivery) {
	*d = pendingDelivery{next: n.freeDel}
	n.freeDel = d
}

type linkKey struct{ from, to ident.ID }

// Stats counts network activity since creation.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Blocked    uint64
	BytesSent  uint64
}

// Option configures a Network.
type Option func(*Network)

// WithSeed fixes the RNG seed; simulations are deterministic given the
// seed and a single-goroutine send order.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithTimeScale multiplies every simulated delay (0.1 = 10x faster).
func WithTimeScale(s float64) Option {
	return func(n *Network) {
		if s > 0 {
			n.scale = s
		}
	}
}

// New builds a network whose links default to the given profile.
func New(def Profile, opts ...Option) *Network {
	n := &Network{
		eps:      make(map[ident.ID]*Endpoint),
		def:      def,
		links:    make(map[linkKey]Profile),
		blocked:  make(map[linkKey]bool),
		isolated: make(map[ident.ID]bool),
		nextFree: make(map[linkKey]time.Time),
		rng:      rand.New(rand.NewSource(1)),
		scale:    1,
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Attach creates an endpoint with the given ID.
func (n *Network) Attach(id ident.ID) (*Endpoint, error) {
	if id.IsNil() || id.IsBroadcast() {
		return nil, fmt.Errorf("netsim: cannot attach reserved ID %s", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, transport.ErrClosed
	}
	if _, dup := n.eps[id]; dup {
		return nil, fmt.Errorf("netsim: duplicate endpoint ID %s", id)
	}
	ep := &Endpoint{
		id:     id,
		net:    n,
		queue:  make(chan transport.Datagram, 8192),
		closed: make(chan struct{}),
	}
	n.eps[id] = ep
	return ep, nil
}

// SetLinkProfile overrides the profile for the directed link from→to.
func (n *Network) SetLinkProfile(from, to ident.ID, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = p
}

// SetLinkProfileBoth overrides both directions between a and b.
func (n *Network) SetLinkProfileBoth(a, b ident.ID, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{a, b}] = p
	n.links[linkKey{b, a}] = p
}

// Partition blocks both directions between a and b (failure injection).
func (n *Network) Partition(a, b ident.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[linkKey{a, b}] = true
	n.blocked[linkKey{b, a}] = true
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b ident.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, linkKey{a, b})
	delete(n.blocked, linkKey{b, a})
}

// Isolate cuts an endpoint off entirely — the simulated equivalent of a
// device walking out of radio range (§II-B transient disconnection).
func (n *Network) Isolate(id ident.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[id] = true
}

// Restore reconnects an isolated endpoint.
func (n *Network) Restore(id ident.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.isolated, id)
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts down the network and all endpoints, waiting for in-flight
// deliveries to finish.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.eps = make(map[ident.ID]*Endpoint)
	schedOn, wake, done := n.schedOn, n.schedWake, n.schedDone
	n.mu.Unlock()
	for _, ep := range eps {
		ep.closeLocal()
	}
	if schedOn {
		select {
		case wake <- struct{}{}:
		default:
		}
		<-done
	}
	return nil
}

// send routes one datagram, applying the link profile.
func (n *Network) send(from, dst ident.ID, data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return transport.ErrClosed
	}
	n.stats.Sent++
	n.stats.BytesSent += uint64(len(data))
	if dst.IsBroadcast() {
		for id := range n.eps {
			if id == from {
				continue
			}
			n.sendOneLocked(from, id, data)
		}
		return nil
	}
	if _, ok := n.eps[dst]; !ok {
		// Unknown destination on a datagram network: silently lost,
		// like UDP to a dead host. Reliability lives above.
		n.stats.Dropped++
		return nil
	}
	n.sendOneLocked(from, dst, data)
	return nil
}

// sendOneLocked applies profile effects and schedules delivery.
// Caller holds n.mu.
func (n *Network) sendOneLocked(from, to ident.ID, data []byte) {
	key := linkKey{from, to}
	if n.blocked[key] || n.isolated[from] || n.isolated[to] {
		n.stats.Blocked++
		return
	}
	p, ok := n.links[key]
	if !ok {
		p = n.def
	}
	if len(data) > p.mtu() {
		n.stats.Dropped++
		return
	}
	if p.Loss > 0 && n.rng.Float64() < p.Loss {
		n.stats.Dropped++
		return
	}
	delay := n.linkDelayLocked(key, p, len(data))
	if p.Reorder > 0 && n.rng.Float64() < p.Reorder {
		n.stats.Reordered++
		delay += n.scaled(p.reorderBy())
	}
	n.scheduleLocked(from, to, data, delay)
	if p.Duplicate > 0 && n.rng.Float64() < p.Duplicate {
		n.stats.Duplicated++
		n.scheduleLocked(from, to, data, delay+n.scaled(p.Latency)/2+time.Millisecond)
	}
}

// linkDelayLocked computes propagation + transmission delay, serialising
// transmissions so that sustained throughput respects the bandwidth.
func (n *Network) linkDelayLocked(key linkKey, p Profile, size int) time.Duration {
	prop := p.Latency
	if p.Jitter > 0 {
		prop += time.Duration(n.rng.Int63n(int64(2*p.Jitter))) - p.Jitter
		if prop < 0 {
			prop = 0
		}
	}
	var tx time.Duration
	if p.Bandwidth > 0 {
		tx = time.Duration(float64(size) / float64(p.Bandwidth) * float64(time.Second))
	}
	now := time.Now()
	start := now
	if busyUntil, ok := n.nextFree[key]; ok && busyUntil.After(now) {
		start = busyUntil
	}
	finish := start.Add(n.scaled(tx))
	n.nextFree[key] = finish
	return finish.Sub(now) + n.scaled(prop)
}

func (n *Network) scaled(d time.Duration) time.Duration {
	if n.scale == 1 {
		return d
	}
	return time.Duration(float64(d) * n.scale)
}

// scheduleLocked arranges delivery after delay. Caller holds n.mu.
// Zero-delay deliveries happen inline so that a perfect link preserves
// send order, as a real point-to-point link does.
func (n *Network) scheduleLocked(from, to ident.ID, data []byte, delay time.Duration) {
	dg := transport.NewPooledDatagram(from, data)
	if delay <= 0 {
		ep, ok := n.eps[to]
		if ok {
			n.stats.Delivered++
			ep.enqueue(dg)
		} else {
			dg.Recycle()
		}
		return
	}
	d := n.getDelLocked()
	d.at = time.Now().Add(delay)
	d.seq = n.delSeq
	n.delSeq++
	d.to = to
	d.dg = dg
	n.pending.push(d)
	if !n.schedOn {
		n.schedOn = true
		n.schedWake = make(chan struct{}, 1)
		n.schedDone = make(chan struct{})
		go n.schedLoop()
		return
	}
	select {
	case n.schedWake <- struct{}{}:
	default:
	}
}

// schedLoop drains the delivery heap: it sleeps until the earliest
// deadline, delivers everything due, and exits once the network closes
// (recycling whatever is still pending — every endpoint is closed by
// then, so those datagrams could only have been dropped anyway).
func (n *Network) schedLoop() {
	defer close(n.schedDone)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		if n.closed {
			for len(n.pending) > 0 {
				d := n.pending.pop()
				d.dg.Recycle()
				n.putDelLocked(d)
			}
			n.mu.Unlock()
			return
		}
		now := time.Now()
		for len(n.pending) > 0 && !n.pending[0].at.After(now) {
			d := n.pending.pop()
			dg, to := d.dg, d.to
			n.putDelLocked(d)
			if ep, ok := n.eps[to]; ok {
				n.stats.Delivered++
				ep.enqueue(dg) // non-blocking: drops on overflow
			} else {
				dg.Recycle()
			}
		}
		wait := time.Hour
		if len(n.pending) > 0 {
			if wait = time.Until(n.pending[0].at); wait < 0 {
				wait = 0
			}
		}
		n.mu.Unlock()

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-n.schedWake:
		case <-timer.C:
		}
	}
}

func (n *Network) detach(id ident.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.eps, id)
}

// Endpoint is one attachment point on the simulated network.
type Endpoint struct {
	id  ident.ID
	net *Network

	queue chan transport.Datagram

	closeOnce sync.Once
	closed    chan struct{}
}

var _ transport.Transport = (*Endpoint)(nil)

// LocalID implements transport.Transport.
func (e *Endpoint) LocalID() ident.ID { return e.id }

// Send implements transport.Transport.
func (e *Endpoint) Send(dst ident.ID, data []byte) error {
	select {
	case <-e.closed:
		return transport.ErrClosed
	default:
	}
	return e.net.send(e.id, dst, data)
}

// SendBatch implements transport.BatchSender. The simulated network
// has no syscall boundary to batch, so each datagram goes through the
// normal per-link loss/latency model — the point is that code using
// the batched transmit path is exercised under netsim profiles too.
func (e *Endpoint) SendBatch(dst ident.ID, bufs [][]byte) error {
	for _, b := range bufs {
		if err := e.Send(dst, b); err != nil {
			return err
		}
	}
	return nil
}

// MaxDatagram implements transport.BatchSender: the simulated network
// imposes no MTU.
func (e *Endpoint) MaxDatagram() int { return 0 }

var _ transport.BatchSender = (*Endpoint)(nil)

func (e *Endpoint) enqueue(d transport.Datagram) {
	select {
	case <-e.closed:
		d.Recycle()
	case e.queue <- d:
	default:
		// Receive-buffer overflow: drop.
		d.Recycle()
	}
}

// Recv implements transport.Transport.
func (e *Endpoint) Recv() (transport.Datagram, error) {
	select {
	case d := <-e.queue:
		return d, nil
	case <-e.closed:
		select {
		case d := <-e.queue:
			return d, nil
		default:
			return transport.Datagram{}, transport.ErrClosed
		}
	}
}

// RecvTimeout implements transport.Transport.
func (e *Endpoint) RecvTimeout(d time.Duration) (transport.Datagram, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case dg := <-e.queue:
		return dg, nil
	case <-timer.C:
		return transport.Datagram{}, transport.ErrTimeout
	case <-e.closed:
		select {
		case dg := <-e.queue:
			return dg, nil
		default:
			return transport.Datagram{}, transport.ErrClosed
		}
	}
}

// Close implements transport.Transport.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.net.detach(e.id)
		close(e.closed)
	})
	return nil
}

func (e *Endpoint) closeLocal() {
	e.closeOnce.Do(func() {
		close(e.closed)
	})
}
