package netsim

import (
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/transport"
)

func TestPerfectDelivery(t *testing.T) {
	n := New(Perfect, WithSeed(1))
	defer n.Close()
	a, err := n.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := a.Send(b.LocalID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	st := n.Stats()
	if st.Sent != 100 || st.Delivered != 100 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLatencyApplied(t *testing.T) {
	p := Profile{Name: "slow", Latency: 50 * time.Millisecond}
	n := New(p, WithSeed(2))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	start := time.Now()
	if err := a.Send(b.LocalID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("delivered in %v, want ≥ ~50ms", d)
	}
}

func TestBandwidthSerialisesTransmissions(t *testing.T) {
	// 100 KB/s: ten 1000-byte datagrams take ~100 ms in total.
	p := Profile{Name: "thin", Bandwidth: 100 * 1024}
	n := New(p, WithSeed(3))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	const count, size = 10, 1024
	start := time.Now()
	for i := 0; i < count; i++ {
		if err := a.Send(b.LocalID(), make([]byte, size)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		if _, err := b.RecvTimeout(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	ideal := time.Duration(float64(count*size) / float64(p.Bandwidth) * float64(time.Second))
	if elapsed < ideal*8/10 {
		t.Errorf("elapsed %v, want ≥ %v (bandwidth not enforced)", elapsed, ideal)
	}
}

func TestLossDropsApproximately(t *testing.T) {
	n := New(Lossy(0.5), WithSeed(4))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	const count = 2000
	for i := 0; i < count; i++ {
		if err := a.Send(b.LocalID(), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	for {
		if _, err := b.RecvTimeout(100 * time.Millisecond); err != nil {
			break
		}
		received++
	}
	if received < count/3 || received > count*2/3 {
		t.Errorf("received %d of %d at 50%% loss", received, count)
	}
	st := n.Stats()
	if st.Dropped == 0 {
		t.Error("no drops recorded")
	}
}

func TestDuplicateDelivery(t *testing.T) {
	p := Profile{Name: "dupey", Duplicate: 1.0}
	n := New(p, WithSeed(5))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	if err := a.Send(b.LocalID(), []byte("dup")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
	}
	if n.Stats().Duplicated != 1 {
		t.Errorf("Duplicated = %d", n.Stats().Duplicated)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Perfect, WithSeed(6))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))

	n.Partition(a.LocalID(), b.LocalID())
	if err := a.Send(b.LocalID(), []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(80 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("partitioned delivery: %v", err)
	}

	n.Heal(a.LocalID(), b.LocalID())
	if err := a.Send(b.LocalID(), []byte("found")); err != nil {
		t.Fatal(err)
	}
	if dg, err := b.RecvTimeout(time.Second); err != nil || string(dg.Data) != "found" {
		t.Errorf("healed delivery: %v %q", err, dg.Data)
	}
	if n.Stats().Blocked == 0 {
		t.Error("no blocked sends recorded")
	}
}

func TestIsolateAndRestore(t *testing.T) {
	n := New(Perfect, WithSeed(7))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	c, _ := n.Attach(ident.New(3))

	n.Isolate(b.LocalID())
	// Isolated node neither receives...
	if err := a.Send(b.LocalID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(60 * time.Millisecond); err == nil {
		t.Error("isolated node received")
	}
	// ...nor is heard.
	if err := b.Send(c.LocalID(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvTimeout(60 * time.Millisecond); err == nil {
		t.Error("isolated node was heard")
	}

	n.Restore(b.LocalID())
	if err := a.Send(b.LocalID(), []byte("back")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Errorf("restored delivery: %v", err)
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	n := New(Perfect, WithSeed(8))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	c, _ := n.Attach(ident.New(3))
	if err := a.Send(ident.Broadcast, []byte("all")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []*Endpoint{b, c} {
		if _, err := ep.RecvTimeout(time.Second); err != nil {
			t.Fatalf("recv: %v", err)
		}
	}
	if _, err := a.RecvTimeout(60 * time.Millisecond); err == nil {
		t.Error("sender heard own broadcast")
	}
}

func TestUnknownDestinationSilentlyDropped(t *testing.T) {
	n := New(Perfect, WithSeed(9))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	if err := a.Send(ident.New(404), []byte("x")); err != nil {
		t.Errorf("datagram send to unknown dest errored: %v", err)
	}
	if n.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d", n.Stats().Dropped)
	}
}

func TestMTUEnforced(t *testing.T) {
	p := Profile{Name: "tiny", MTU: 100}
	n := New(p, WithSeed(10))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	if err := a.Send(b.LocalID(), make([]byte, 101)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(60 * time.Millisecond); err == nil {
		t.Error("oversized datagram delivered")
	}
}

func TestPerLinkProfileOverride(t *testing.T) {
	n := New(Perfect, WithSeed(11))
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	c, _ := n.Attach(ident.New(3))
	n.SetLinkProfileBoth(a.LocalID(), b.LocalID(), Lossy(1.0))

	if err := a.Send(b.LocalID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(60 * time.Millisecond); err == nil {
		t.Error("fully lossy link delivered")
	}
	if err := a.Send(c.LocalID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvTimeout(time.Second); err != nil {
		t.Errorf("default link failed: %v", err)
	}
}

func TestAttachValidation(t *testing.T) {
	n := New(Perfect)
	defer n.Close()
	if _, err := n.Attach(ident.Nil); err == nil {
		t.Error("nil ID attached")
	}
	if _, err := n.Attach(ident.Broadcast); err == nil {
		t.Error("broadcast ID attached")
	}
	if _, err := n.Attach(ident.New(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(ident.New(1)); err == nil {
		t.Error("duplicate attached")
	}
}

func TestNetworkCloseWaitsForTimers(t *testing.T) {
	p := Profile{Name: "slow", Latency: 30 * time.Millisecond}
	n := New(p, WithSeed(12))
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	if err := a.Send(b.LocalID(), []byte("inflight")); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// After close, attach and send must fail cleanly.
	if _, err := n.Attach(ident.New(9)); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("attach after close: %v", err)
	}
	if err := a.Send(b.LocalID(), []byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

func TestTimeScaleSpeedsUpLatency(t *testing.T) {
	p := Profile{Name: "slow", Latency: 200 * time.Millisecond}
	n := New(p, WithSeed(13), WithTimeScale(0.1)) // 10x faster
	defer n.Close()
	a, _ := n.Attach(ident.New(1))
	b, _ := n.Attach(ident.New(2))
	start := time.Now()
	if err := a.Send(b.LocalID(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Errorf("scaled delivery took %v", d)
	}
}

func TestUSBLinkProfileCalibration(t *testing.T) {
	// The paper's link: ~1.5 ms latency (0.6–2.3 ms) and ~575 KB/s.
	if USBLink.Latency != 1500*time.Microsecond {
		t.Errorf("USB latency = %v", USBLink.Latency)
	}
	lo := USBLink.Latency - USBLink.Jitter
	hi := USBLink.Latency + USBLink.Jitter
	if lo < 500*time.Microsecond || hi > 2500*time.Microsecond {
		t.Errorf("USB jitter envelope [%v, %v] outside paper's 0.6–2.3 ms", lo, hi)
	}
	if USBLink.Bandwidth != 575*1024 {
		t.Errorf("USB bandwidth = %d", USBLink.Bandwidth)
	}
}

func TestReorderProfileShufflesDelivery(t *testing.T) {
	p := Profile{Name: "reorder", Reorder: 0.5, ReorderBy: 5 * time.Millisecond}
	n := New(p, WithSeed(42))
	defer n.Close()
	src, err := n.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := n.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const count = 40
	for i := 0; i < count; i++ {
		if err := src.Send(dst.LocalID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var order []byte
	for i := 0; i < count; i++ {
		dg, err := dst.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		order = append(order, dg.Data[0])
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Errorf("no reordering observed at Reorder=0.5: %v", order)
	}
	if st := n.Stats(); st.Reordered == 0 {
		t.Errorf("stats.Reordered = 0, want > 0 (stats %+v)", st)
	}
}

func TestReorderDefaultDelay(t *testing.T) {
	p := Profile{Latency: 3 * time.Millisecond}
	if got := p.reorderBy(); got != 8*time.Millisecond {
		t.Errorf("default reorderBy = %v, want 8ms", got)
	}
	p.ReorderBy = time.Millisecond
	if got := p.reorderBy(); got != time.Millisecond {
		t.Errorf("explicit reorderBy = %v", got)
	}
}
