// Package netsim provides an in-process simulated datagram network with
// configurable latency, jitter, bandwidth, loss and partitions.
//
// It substitutes for the paper's physical testbed (iPAQ hx4700 PDA and
// laptop joined by an IP-over-USB link, §IV–V): the link profiles below
// reproduce the testbed's measured envelope so that the evaluation
// figures can be regenerated deterministically on any machine, while
// exercising exactly the same code paths (framing, acknowledgements,
// copies) as a physical link would.
package netsim

import "time"

// Profile describes one directed link's behaviour.
type Profile struct {
	// Name labels the profile in logs and benchmark output.
	Name string
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter is the half-width of a uniform random delay added to
	// Latency (delay drawn from [Latency-Jitter, Latency+Jitter]).
	Jitter time.Duration
	// Bandwidth is the link rate in bytes per second; 0 means
	// unlimited. Transmission of a datagram occupies the link for
	// size/Bandwidth, serialising back-to-back sends.
	Bandwidth int64
	// Loss is the independent drop probability per datagram.
	Loss float64
	// Duplicate is the probability a datagram is delivered twice.
	Duplicate float64
	// Reorder is the probability a datagram is held back by an extra
	// ReorderBy delay, letting later datagrams overtake it — the
	// multipath/queueing reordering real radio links exhibit.
	Reorder float64
	// ReorderBy is the extra delay applied to reordered datagrams;
	// 0 means 2×Latency + 2 ms.
	ReorderBy time.Duration
	// MTU bounds datagram size; 0 means the default (60 KiB).
	MTU int
}

// DefaultMTU is used when a profile leaves MTU zero.
const DefaultMTU = 60 * 1024

// Link profiles. USBLink is calibrated to the paper's measured numbers:
// latency 1.5 ms average over a 0.6–2.3 ms range, raw sustainable
// throughput ≈ 575 KB/s (§V).
var (
	// Perfect is an ideal link for unit tests.
	Perfect = Profile{Name: "perfect"}

	// USBLink models the paper's IP-over-USB PDA↔laptop link.
	USBLink = Profile{
		Name:      "usb-link",
		Latency:   1500 * time.Microsecond,
		Jitter:    850 * time.Microsecond,
		Bandwidth: 575 * 1024,
	}

	// Bluetooth models the Bluetooth 1.2 links the project was
	// moving to (§VI): higher latency, lower throughput, some loss.
	Bluetooth = Profile{
		Name:      "bluetooth",
		Latency:   15 * time.Millisecond,
		Jitter:    5 * time.Millisecond,
		Bandwidth: 90 * 1024,
		Loss:      0.005,
	}

	// ZigBee models an 802.15.4 link (§VI): low rate, small MTU.
	ZigBee = Profile{
		Name:      "zigbee",
		Latency:   10 * time.Millisecond,
		Jitter:    4 * time.Millisecond,
		Bandwidth: 20 * 1024,
		Loss:      0.01,
		MTU:       8 * 1024,
	}

	// WiFi models an 802.11b in-room link.
	WiFi = Profile{
		Name:      "wifi",
		Latency:   2 * time.Millisecond,
		Jitter:    1 * time.Millisecond,
		Bandwidth: 600 * 1024,
		Loss:      0.002,
	}
)

// Lossy derives a profile from Perfect with the given drop probability;
// used by property tests of the reliability layer.
func Lossy(p float64) Profile {
	return Profile{Name: "lossy", Loss: p}
}

// Torture is the reliability layer's worst-case test profile: loss,
// duplication and heavy reordering on a link with real latency, so
// sliding-window retransmission, dedup and the receiver's reorder
// buffer are all exercised at once.
var Torture = Profile{
	Name:      "torture",
	Latency:   300 * time.Microsecond,
	Jitter:    200 * time.Microsecond,
	Loss:      0.2,
	Duplicate: 0.2,
	Reorder:   0.3,
	ReorderBy: 3 * time.Millisecond,
}

// reorderBy returns the effective extra delay for reordered datagrams.
func (p Profile) reorderBy() time.Duration {
	if p.ReorderBy > 0 {
		return p.ReorderBy
	}
	return 2*p.Latency + 2*time.Millisecond
}

// mtu returns the effective MTU.
func (p Profile) mtu() int {
	if p.MTU <= 0 {
		return DefaultMTU
	}
	return p.MTU
}
