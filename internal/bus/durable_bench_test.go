package bus

import (
	"fmt"
	"testing"

	"github.com/amuse/smc/internal/store"
)

// BenchmarkDurablePublish measures what the durable log costs the
// publish pipeline: the BenchmarkBusHotPath workload with and without
// a memory-backed log appending every published event (bounded
// retention, so segment rotation and eviction are part of the measured
// cost — the append itself encodes outside the log lock and checksums
// with hardware CRC-32C).
//
// Two shapes: delivery=member/fanout=8 is the representative remote
// fan-out pipeline a durable ward cell actually runs, and is the gated
// configuration (log=on within 15% of log=off). delivery=local/
// fanout=1 is the harshest possible denominator — pure in-process
// dispatch with nothing to amortise against — and is tracked as
// informational.
func BenchmarkDurablePublish(b *testing.B) {
	for _, shape := range []struct {
		delivery string
		fan      int
	}{
		{"member", 8},
		{"local", 1},
	} {
		for _, mode := range []string{"off", "on"} {
			name := fmt.Sprintf("delivery=%s/fanout=%d/log=%s", shape.delivery, shape.fan, mode)
			b.Run(name, func(b *testing.B) {
				opts := []Option{}
				if mode == "on" {
					l, err := store.Open(store.Config{MaxEvents: 65536})
					if err != nil {
						b.Fatal(err)
					}
					opts = append(opts, WithDurableLog(l)) // closed by bus.Close
				}
				benchHotPath(b, shape.delivery, shape.fan, opts...)
			})
		}
	}
}
