package bus

import (
	"fmt"
	"testing"
	"time"

	"github.com/amuse/smc/internal/store"
)

// BenchmarkDurablePublish measures what the durable log costs the
// publish pipeline: the BenchmarkBusHotPath workload with and without
// a memory-backed log appending every published event (bounded
// retention, so segment rotation and eviction are part of the measured
// cost — the append itself encodes outside the log lock and checksums
// with hardware CRC-32C).
//
// Four modes over two shapes. delivery=member/fanout=8 is the
// representative remote fan-out pipeline a durable ward cell actually
// runs, and is the gated configuration; delivery=local/fanout=1 is the
// harshest possible denominator — pure in-process dispatch with
// nothing to amortise against — and is tracked as informational.
//
//   - log=off: no log attached.
//   - log=on: memory-backed log. Gated at ≥0.85× log=off (PR 9).
//   - log=disk: disk-backed log, segment-granular sync only (sealed
//     segments written+fsynced by the flusher). This is disk-bandwidth
//     bound at hot-path rates — the number measures the host's storage,
//     not the code — so it is the denominator for the sync-policy gate,
//     not gated absolutely.
//   - log=sync: log=disk plus the write-behind tail-sync policy
//     (SyncInterval fsyncs of the active segment's appended tail).
//     Because the fsync runs on the flusher goroutine off the publish
//     path, the policy must be nearly free relative to plain disk
//     backing: gated at log=sync ≥ 0.85× log=disk on the member shape.
func BenchmarkDurablePublish(b *testing.B) {
	for _, shape := range []struct {
		delivery string
		fan      int
	}{
		{"member", 8},
		{"local", 1},
	} {
		for _, mode := range []string{"off", "on", "disk", "sync"} {
			name := fmt.Sprintf("delivery=%s/fanout=%d/log=%s", shape.delivery, shape.fan, mode)
			b.Run(name, func(b *testing.B) {
				opts := []Option{}
				cfg := store.Config{MaxEvents: 65536}
				switch mode {
				case "disk":
					cfg.Dir = b.TempDir()
				case "sync":
					cfg.Dir = b.TempDir()
					cfg.SyncInterval = 2 * time.Millisecond
				}
				if mode != "off" {
					l, err := store.Open(cfg)
					if err != nil {
						b.Fatal(err)
					}
					opts = append(opts, WithDurableLog(l)) // closed by bus.Close
				}
				benchHotPath(b, shape.delivery, shape.fan, opts...)
			})
		}
	}
}
