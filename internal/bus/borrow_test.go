package bus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/wire"
)

// publishEvent marshals e and sends it to the bus as a member publish.
func publishEvent(t *testing.T, ch interface {
	Send(ident.ID, wire.PacketType, []byte) error
}, e *event.Event) {
	t.Helper()
	if err := ch.Send(ident.New(busID), wire.PktEvent, wire.EncodeEvent(e)); err != nil {
		t.Fatal(err)
	}
}

// TestBorrowedDeliveryRetainPastRelease: a local subscriber that keeps
// a remote-published event past the handler callback must Clone — the
// clone's strings are owned (promoted) and stay correct after the
// pooled event and its backing packet have been released and the
// buffers reused by later traffic. Run under -race this also proves
// the promotion does not touch the shared event.
func TestBorrowedDeliveryRetainPastRelease(t *testing.T) {
	r := newRig(t)
	ch := r.member(t, 0x2001, "generic")

	const n = 64
	kept := make(chan *event.Event, n)
	svc := r.bus.Local("keeper")
	err := svc.Subscribe(event.NewFilter().WhereType("borrow-race"), func(e *event.Event) {
		kept <- e.Clone() // retain past delivery: promote to owned
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			e := event.New()
			e.Seq = uint64(i + 1)
			e.SetStr(event.AttrType, "borrow-race")
			// Unique, never-interned strings: the bus-side decode must
			// borrow them from the packet buffer.
			e.SetStr("zz-race-payload", fmt.Sprintf("payload-%04d-abcdefgh", i))
			e.SetInt("zz-race-i", int64(i))
			publishEvent(t, ch, e)
		}
	}()

	seen := make(map[int64]bool, n)
	for len(seen) < n {
		select {
		case e := <-kept:
			iv, _ := e.Get("zz-race-i")
			i, _ := iv.Int()
			pv, _ := e.Get("zz-race-payload")
			p, _ := pv.Str()
			if want := fmt.Sprintf("payload-%04d-abcdefgh", i); p != want {
				t.Fatalf("retained clone corrupted: got %q want %q", p, want)
			}
			if e.Borrowed() {
				t.Fatal("clone handed to subscriber is still borrowed")
			}
			seen[i] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out with %d/%d events", len(seen), n)
		}
	}
	wg.Wait()
}

// TestBorrowedDeliveryRecyclesPackets: with borrowing enabled on the
// member publish path, the deliver-and-drop flow must return every
// inbound packet to the pool — acquired equals recycled once the bus
// quiesces. A borrowed event that outlived delivery would show up here
// as a pinned (leaked) packet.
func TestBorrowedDeliveryRecyclesPackets(t *testing.T) {
	r := newRig(t)
	ch := r.member(t, 0x2002, "generic")

	var delivered sync.WaitGroup
	delivered.Add(48)
	svc := r.bus.Local("dropper")
	err := svc.Subscribe(event.NewFilter().WhereType("borrow-leak"), func(e *event.Event) {
		// Read the borrowed strings, keep nothing.
		if v, ok := e.Get("zz-leak-payload"); ok {
			if s, _ := v.Str(); len(s) == 0 {
				t.Error("empty borrowed payload")
			}
		}
		delivered.Done()
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 48; i++ {
		e := event.New()
		e.Seq = uint64(i + 1)
		e.SetStr(event.AttrType, "borrow-leak")
		e.SetStr("zz-leak-payload", fmt.Sprintf("leak-check-%04d", i))
		publishEvent(t, ch, e)
	}
	delivered.Wait()

	// Quiesce: dispatch has run for every event; the pooled events
	// released their packet backings synchronously at the end of each
	// shard dispatch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := r.bus.ch.Stats()
		if st.PacketsAcquired == st.PacketsRecycled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("packet leak with borrowing enabled: acquired=%d recycled=%d",
				st.PacketsAcquired, st.PacketsRecycled)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
