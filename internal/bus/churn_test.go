package bus

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// TestConcurrentPublishUnderChurn hammers AddMember/RemoveMember while
// several publishers flood the bus, across shard counts. It locks in
// the sharded pipeline's §II-C guarantees: per-publisher FIFO delivery
// order is preserved, nothing is lost under backpressure, and purged
// members receive no deliveries after RemoveMember returns. Run with
// -race to exercise the copy-on-write membership snapshot.
func TestConcurrentPublishUnderChurn(t *testing.T) {
	for _, shards := range shardCounts() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testChurn(t, shards)
		})
	}
}

func testChurn(t *testing.T, shards int) {
	r := newRig(t, WithShards(shards), WithQueueDepth(1024))

	const (
		publishers = 4
		perPub     = 300
		churners   = 2
	)

	// One local subscriber records every delivery per sender.
	var (
		recvMu   sync.Mutex
		received = make(map[ident.ID][]uint64)
	)
	sink := r.bus.Local("sink")
	err := sink.Subscribe(event.NewFilter().WhereType("churn"), func(e *event.Event) {
		recvMu.Lock()
		received[e.Sender] = append(received[e.Sender], e.Seq)
		recvMu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Churners add and remove scratch members (each with a filter that
	// matches the flood) while the publishers run.
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	for c := 0; c < churners; c++ {
		churnWG.Add(1)
		go func(c int) {
			defer churnWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopChurn:
					return
				default:
				}
				id := ident.New(uint64(0x9000 + c*1000 + i%50))
				if err := r.bus.AddMember(id, "generic", "churn"); err != nil {
					continue // duplicate from a previous lap: skip
				}
				if err := r.bus.match.Subscribe(id, event.NewFilter().WhereType("churn")); err != nil {
					t.Error(err)
					return
				}
				px := r.bus.MemberProxy(id)
				r.bus.RemoveMember(id)
				if px == nil {
					t.Error("member added without proxy")
					return
				}
				// After RemoveMember returns the proxy is purged:
				// in-flight dispatches against an older snapshot hit
				// the stopped proxy and must be discarded, so its
				// Enqueued counter can never grow again.
				frozen := px.Stats().Enqueued
				time.Sleep(time.Millisecond)
				if got := px.Stats().Enqueued; got != frozen {
					t.Errorf("purged member still receiving: %d -> %d", frozen, got)
					return
				}
			}
		}(c)
	}

	// Publishers flood, retrying on backpressure so nothing is lost.
	var pubWG sync.WaitGroup
	pubs := make([]*LocalService, publishers)
	for p := 0; p < publishers; p++ {
		pubs[p] = r.bus.Local(fmt.Sprintf("pub-%d", p))
		pubWG.Add(1)
		go func(svc *LocalService) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				e := event.NewTyped("churn").SetInt("n", int64(i))
				for {
					err := svc.Publish(e)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBusy) {
						t.Error(err)
						return
					}
					runtime.Gosched()
				}
			}
		}(pubs[p])
	}
	pubWG.Wait()
	close(stopChurn)
	churnWG.Wait()

	// Wait for the pipeline to drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		recvMu.Lock()
		total := 0
		for _, seqs := range received {
			total += len(seqs)
		}
		recvMu.Unlock()
		if total >= publishers*perPub {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained %d of %d deliveries", total, publishers*perPub)
		}
		time.Sleep(5 * time.Millisecond)
	}

	recvMu.Lock()
	defer recvMu.Unlock()
	for _, svc := range pubs {
		seqs := received[svc.ID()]
		if len(seqs) != perPub {
			t.Fatalf("publisher %s: %d of %d events delivered", svc.ID(), len(seqs), perPub)
		}
		// Each successful publish is delivered exactly once and in
		// publish order: seqs strictly increase (gaps are publishes
		// that failed with ErrBusy and were retried under a new seq).
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("publisher %s: position %d has seq %d after %d (FIFO violated)",
					svc.ID(), i, seqs[i], seqs[i-1])
			}
		}
	}
}
