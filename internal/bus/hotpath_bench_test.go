package bus

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
)

// BenchmarkBusHotPath measures the publish→match→deliver pipeline with
// the cost model off and no network in the timed path: GOMAXPROCS
// concurrent publishers flood the bus and the fan-out is either local
// services (pure dispatch) or member proxies (the enqueue side of
// remote delivery). ns/op is per published event; the events/sec
// metric is the published-event throughput of the whole pipeline.
//
// BENCH_PR1.json records the before/after numbers for PR 1.
func BenchmarkBusHotPath(b *testing.B) {
	for _, delivery := range []string{"local", "member"} {
		for _, fan := range []int{1, 8} {
			for _, shards := range shardCounts() {
				name := fmt.Sprintf("delivery=%s/fanout=%d/shards=%d", delivery, fan, shards)
				b.Run(name, func(b *testing.B) {
					benchHotPath(b, delivery, fan, WithShards(shards))
				})
			}
		}
	}
}

// shardCounts returns the shard sweep 1, 4, GOMAXPROCS, deduplicated.
func shardCounts() []int {
	counts := []int{1}
	for _, n := range []int{4, runtime.GOMAXPROCS(0)} {
		dup := false
		for _, have := range counts {
			dup = dup || have == n
		}
		if !dup {
			counts = append(counts, n)
		}
	}
	return counts
}

func benchHotPath(b *testing.B, delivery string, fan int, opts ...Option) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(11))
	defer n.Close()
	tr, err := n.Attach(ident.New(busID))
	if err != nil {
		b.Fatal(err)
	}
	opts = append([]Option{WithQueueDepth(8192)}, opts...)
	bus := New(reliable.New(tr, testCfg()), matcher.NewFast(), bootstrap.NewRegistry(), opts...)
	bus.Start()
	defer bus.Close()

	filter := event.NewFilter().WhereType("bench")
	var delivered atomic.Uint64
	switch delivery {
	case "local":
		for i := 0; i < fan; i++ {
			svc := bus.Local(fmt.Sprintf("sub-%d", i))
			if err := svc.Subscribe(filter, func(*event.Event) {
				delivered.Add(1)
			}); err != nil {
				b.Fatal(err)
			}
		}
	case "member":
		// Members are never attached to the network: their proxies'
		// delivery workers idle in redelivery backoff while the timed
		// path measures match+enqueue. Progress is tracked through the
		// EnqueuedRemote counter instead of the handler count.
		for i := 0; i < fan; i++ {
			id := ident.New(uint64(0x200 + i))
			if err := bus.AddMember(id, "generic", fmt.Sprintf("sub-%d", i)); err != nil {
				b.Fatal(err)
			}
			if err := bus.match.Subscribe(id, filter); err != nil {
				b.Fatal(err)
			}
		}
	default:
		b.Fatalf("unknown delivery %q", delivery)
	}

	pubs := runtime.GOMAXPROCS(0)
	svcs := make([]*LocalService, pubs)
	for p := range svcs {
		svcs[p] = bus.Local(fmt.Sprintf("pub-%d", p))
	}
	baseEnq := bus.Stats().EnqueuedRemote

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		quota := b.N / pubs
		if p < b.N%pubs {
			quota++
		}
		wg.Add(1)
		go func(svc *LocalService, quota int) {
			defer wg.Done()
			for i := 0; i < quota; i++ {
				// The pooled-event lifecycle: the bus releases the
				// event once dispatch completes and the struct
				// recycles, so a small (≤ InlineAttrs-attribute)
				// publish allocates nothing in steady state.
				e := event.Acquire().SetStr(event.AttrType, "bench").SetInt("k", int64(i))
				for {
					err := svc.Publish(e)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBusy) {
						e.Release()
						b.Error(err)
						return
					}
					runtime.Gosched() // backpressure: queue full
				}
			}
		}(svcs[p], quota)
	}
	wg.Wait()

	// Wait until every published event has been fully dispatched.
	want := uint64(b.N) * uint64(fan)
	deadline := time.Now().Add(60 * time.Second)
	for {
		var got uint64
		if delivery == "local" {
			got = delivered.Load()
		} else {
			got = bus.Stats().EnqueuedRemote - baseEnq
		}
		if got >= want {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("dispatched %d of %d events", got, want)
		}
		runtime.Gosched()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
