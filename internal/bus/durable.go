package bus

import (
	"sort"
	"sync/atomic"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/proxy"
	"github.com/amuse/smc/internal/store"
	"github.com/amuse/smc/internal/wire"
)

// Durable subscriptions: at-least-once delivery for roaming members.
//
// A durable consumer is named server-side state — its filters and its
// delivery cursor — that outlives any one member connection. A member
// binds to it with PktDurableResume (sent before its first subscribe);
// the bus replies PktDurableAck (epoch + resume floor) and then feeds
// the member from the event log through a per-consumer walker
// goroutine.
//
// The walker is the whole splice story: durable members' filters are
// NEVER installed in the matcher, so live dispatch never targets them
// and there is no replay/live boundary to race — "caught up with the
// tail" IS live delivery. Because a single walker reads the log in
// cursor order and the proxy queue and reliable stream are FIFO,
// delivery is cursor-monotone per consumer by construction, which is
// what makes "max cursor seen" a safe client-side resume point and the
// cursor floor a safe dedup rule.
//
// Cursors are only comparable within one log incarnation (epoch): a
// resume whose epoch does not match the live log's — including the
// fresh consumer's zero — replays from the oldest retained event, and
// the ack tells the client the floor it must reset to. The ack is
// enqueued on the member's reliable stream before the walker starts,
// so it precedes every delivery.

// WithDurableLog attaches a durable event log to the bus: every
// admitted publish is appended (with publisher dedup), and members may
// bind durable consumers to replay it. The bus owns the log and closes
// it on Close.
func WithDurableLog(l *store.Log) Option {
	return func(b *Bus) { b.log = l }
}

// DurableLog exposes the attached log (nil when durability is off).
func (b *Bus) DurableLog() *store.Log { return b.log }

// walkerRun is one attachment's walker lifetime: closing stop ends it,
// done closes when it has exited. wake is poked (non-blocking) by log
// appends and filter changes.
type walkerRun struct {
	stop chan struct{}
	done chan struct{}
	wake chan struct{}
}

// durableState is one named durable consumer. Filters and the binding
// are guarded by Bus.durMu; delivered is atomic so the walker can
// advance it without taking the lock per record.
type durableState struct {
	name    string
	filters []*event.Filter
	member  ident.ID // bound member (nil ID when detached)
	px      *proxy.Proxy
	run     *walkerRun
	// delivered is the consumer's cursor: the last log position walked
	// past (delivered or filtered out). It is the resume floor echoed
	// in PktDurableAck.
	delivered atomic.Uint64
	// sent counts events actually enqueued to the member's proxy.
	sent atomic.Uint64
}

// durableFor resolves the durable consumer a member is bound to.
func (b *Bus) durableFor(id ident.ID) *durableState {
	b.durMu.Lock()
	defer b.durMu.Unlock()
	return b.durByMember[id]
}

// handleDurableResume binds the sending member to a named durable
// consumer and starts (or restarts) its walker.
func (b *Bus) handleDurableResume(pkt *wire.Packet) {
	ms, ok := b.memberState(pkt.Sender)
	if !ok {
		b.ctl().nonMember.Add(1)
		return
	}
	r, err := wire.DecodeDurableResume(pkt.Payload)
	if err != nil || r.Name == "" {
		b.ctl().badPackets.Add(1)
		return
	}
	if b.log == nil {
		// Durability is not enabled on this cell. Ack with the zero
		// epoch so the client knows to run live-only instead of
		// waiting for replay.
		b.sendDurableAck(ms, pkt.Sender, wire.DurableAck{})
		return
	}
	epoch := b.log.Epoch()
	from := uint64(0)
	if r.Epoch == epoch {
		// Same incarnation: trust the client's cursor. Anything below
		// the retained range is gone regardless; Next skips forward.
		from = r.Cursor
	}

	b.durMu.Lock()
	if b.closed.Load() {
		b.durMu.Unlock()
		return
	}
	ds := b.durables[r.Name]
	if ds == nil {
		ds = &durableState{name: r.Name}
		b.durables[r.Name] = ds
	}
	oldRun := ds.run
	ds.run = nil
	if !ds.member.IsNil() {
		delete(b.durByMember, ds.member)
		ds.member = ident.ID(0)
		ds.px = nil
	}
	b.durMu.Unlock()
	if oldRun != nil {
		// Rebind (same identity restarting, or takeover): stop the
		// previous walker outside durMu — it reads filters under it.
		close(oldRun.stop)
		<-oldRun.done
	}

	b.durMu.Lock()
	if b.closed.Load() {
		b.durMu.Unlock()
		return
	}
	ds.member = pkt.Sender
	ds.px = ms.px
	ds.delivered.Store(from)
	run := &walkerRun{
		stop: make(chan struct{}),
		done: make(chan struct{}),
		wake: make(chan struct{}, 1),
	}
	ds.run = run
	b.durByMember[pkt.Sender] = ds
	b.durMu.Unlock()

	// Durable members are fed from the log, never from live dispatch:
	// drop any matcher state the member may have (e.g. a device type
	// with initial subscriptions) so no PktEvent path targets it.
	b.match.UnsubscribeAll(pkt.Sender)

	// The ack goes onto the member's reliable stream before the walker
	// starts, so per-destination FIFO puts it ahead of every delivery.
	b.sendDurableAck(ms, pkt.Sender, wire.DurableAck{Epoch: epoch, From: from})

	b.wg.Add(1)
	go b.walk(ds, run, ms.px)
}

// sendDurableAck enqueues the resume acknowledgement without blocking
// the receive loop (a synchronous reliable send from here would wait
// on an ack only this same loop can process).
func (b *Bus) sendDurableAck(ms *memberState, to ident.ID, a wire.DurableAck) {
	buf := wire.AppendDurableAck(nil, a)
	if as, ok := ms.via.(proxy.AsyncSender); ok {
		as.SendAsync(to, wire.PktDurableAck, buf)
		return
	}
	go func() { _ = ms.via.Send(to, wire.PktDurableAck, buf) }()
}

// walk is the per-consumer walker: it reads the log in cursor order
// from the consumer's position, matches each record against the
// consumer's filters, and enqueues matches — cursor-stamped — to the
// member's proxy. Caught up with the tail it parks on the log's append
// notification; with no filters installed it parks without advancing,
// so events published before the (re)subscribe arrives are not
// skipped.
func (b *Bus) walk(ds *durableState, run *walkerRun, px *proxy.Proxy) {
	defer b.wg.Done()
	defer close(run.done)
	b.log.Subscribe(run.wake)
	defer b.log.Unsubscribe(run.wake)

	highWater := b.proxyCfg.QueueCap / 2
	if highWater < 1 {
		highWater = 1
	}
	for {
		select {
		case <-run.stop:
			return
		default:
		}
		b.durMu.Lock()
		filters := ds.filters
		b.durMu.Unlock()
		if len(filters) == 0 {
			if !b.parkWalker(run) {
				return
			}
			continue
		}
		rec, ok := b.log.Next(ds.delivered.Load() + 1)
		if !ok {
			if !b.parkWalker(run) {
				return
			}
			continue
		}
		// Borrowing decode against the retained segment: the event
		// aliases record bytes and owns the segment reference; the
		// buffer recycles when the event's storage is reclaimed.
		e := event.Acquire()
		bound, err := wire.DecodeEventBacked(e, rec.Payload, rec.Seg())
		if err != nil {
			e.Release()
			rec.Release()
			ds.delivered.Store(rec.Cursor) // skip the bad record
			continue
		}
		if !bound {
			rec.Release()
		}
		matched := false
		for _, f := range filters {
			if f.Matches(e) {
				matched = true
				break
			}
		}
		if !matched {
			e.Release()
			ds.delivered.Store(rec.Cursor)
			continue
		}
		// Backpressure instead of drop-oldest: the walker is the sole
		// producer into a durable member's proxy, so holding below the
		// high-water mark means the queue never sheds a delivery —
		// at-least-once must not lose events to its own queue.
		for px.QueueLen() >= highWater {
			select {
			case <-run.stop:
				e.Release()
				return
			case <-time.After(time.Millisecond):
			}
		}
		e.Cursor = rec.Cursor
		px.Enqueue(e) // proxy takes its own reference
		e.Release()
		ds.delivered.Store(rec.Cursor)
		ds.sent.Add(1)
		b.ctl().enqueuedRemote.Add(1)
	}
}

// parkWalker blocks until the walker is woken or stopped; false means
// stop.
func (b *Bus) parkWalker(run *walkerRun) bool {
	select {
	case <-run.stop:
		return false
	case <-run.wake:
		return true
	}
}

// handleDurableSubscription routes a bound member's subscribe traffic
// into its durable consumer's filter set instead of the matcher, and
// reports whether it did. Durable filters survive detach, so a rejoin
// replays with the filters of the previous attachment until the client
// re-subscribes.
func (b *Bus) handleDurableSubscription(pkt *wire.Packet, ms *memberState, f *event.Filter) bool {
	ds := b.durableFor(pkt.Sender)
	if ds == nil {
		return false
	}
	if pkt.Type == wire.PktSubscribe {
		if b.auth != nil {
			if err := b.auth.AuthorizeSubscribe(pkt.Sender, ms.deviceType, f); err != nil {
				b.ctl().authDenied.Add(1)
				return true
			}
		}
		b.durMu.Lock()
		dup := false
		for _, old := range ds.filters {
			if old.Equal(f) {
				dup = true
				break
			}
		}
		if !dup {
			ds.filters = append(ds.filters, f)
			b.durFilters.Add(1)
		}
		run := ds.run
		b.durMu.Unlock()
		b.ctl().subscriptions.Add(1)
		if run != nil {
			select {
			case run.wake <- struct{}{}:
			default:
			}
		}
		b.unquenchAll()
		return true
	}
	b.durMu.Lock()
	for i, old := range ds.filters {
		if old.Equal(f) {
			ds.filters = append(ds.filters[:i], ds.filters[i+1:]...)
			b.durFilters.Add(-1)
			b.ctl().unsubscriptions.Add(1)
			break
		}
	}
	b.durMu.Unlock()
	return true
}

// detachDurable unbinds a departing member from its durable consumer,
// stopping the walker. The consumer's name, filters and cursor stay —
// that persistence is the point — so a rejoin resumes where delivery
// stopped.
func (b *Bus) detachDurable(id ident.ID) {
	b.durMu.Lock()
	ds := b.durByMember[id]
	if ds == nil {
		b.durMu.Unlock()
		return
	}
	delete(b.durByMember, id)
	ds.member = ident.ID(0)
	ds.px = nil
	run := ds.run
	ds.run = nil
	b.durMu.Unlock()
	if run != nil {
		close(run.stop)
		<-run.done
	}
}

// stopWalkers ends every walker (bus shutdown).
func (b *Bus) stopWalkers() {
	b.durMu.Lock()
	var runs []*walkerRun
	for _, ds := range b.durables {
		if ds.run != nil {
			runs = append(runs, ds.run)
			ds.run = nil
		}
		if !ds.member.IsNil() {
			delete(b.durByMember, ds.member)
			ds.member = ident.ID(0)
			ds.px = nil
		}
	}
	b.durMu.Unlock()
	for _, run := range runs {
		close(run.stop)
		<-run.done
	}
}

// LogReport snapshots the durable log and per-consumer lag for the
// management plane. Consumers are sorted by name for deterministic
// output. Zero values when durability is off.
func (b *Bus) LogReport() (wire.LogCounters, []wire.DurableCounters) {
	if b.log == nil {
		return wire.LogCounters{}, nil
	}
	st := b.log.Stats()
	lc := wire.LogCounters{
		Enabled:          true,
		Epoch:            st.Epoch,
		OldestCursor:     st.OldestCursor,
		NewestCursor:     st.NewestCursor,
		Events:           st.Events,
		Bytes:            st.Bytes,
		Segments:         st.Segments,
		Appended:         st.Appended,
		Evicted:          st.Evicted,
		DupsDropped:      st.DupsDropped,
		SegmentsAcquired: st.SegmentsAcquired,
		SegmentsRecycled: st.SegmentsRecycled,
	}
	b.durMu.Lock()
	rows := make([]wire.DurableCounters, 0, len(b.durables))
	for name, ds := range b.durables {
		delivered := ds.delivered.Load()
		lag := uint64(0)
		if st.NewestCursor > delivered {
			lag = st.NewestCursor - delivered
		}
		rows = append(rows, wire.DurableCounters{
			Name:      name,
			Attached:  !ds.member.IsNil(),
			Delivered: delivered,
			Lag:       lag,
		})
	}
	b.durMu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return lc, rows
}
