package bus

import (
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/proxy"
	"github.com/amuse/smc/internal/wire"
)

func TestWithProxyConfigApplies(t *testing.T) {
	// Pipeline 1: the sequential loop, so the queue (not the in-flight
	// window) absorbs the backlog and the tiny cap is observable.
	cfg := proxy.Config{QueueCap: 2, RedeliveryInterval: time.Hour, Pipeline: 1}
	r := newRig(t, WithProxyConfig(cfg))
	pub := r.member(t, 1, "generic")

	// An unreachable member: its queue should respect the tiny cap.
	ghost := ident.New(0xDEAD)
	if err := r.bus.AddMember(ghost, "generic", "ghost"); err != nil {
		t.Fatal(err)
	}
	if err := r.bus.match.Subscribe(ghost, event.NewFilter().WhereType("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		publish(t, pub, event.NewTyped("x").SetInt("n", int64(i)))
	}
	deadline := time.Now().Add(2 * time.Second)
	var dropped uint64
	for time.Now().Before(deadline) {
		if px := r.bus.MemberProxy(ghost); px != nil {
			dropped = px.Stats().DroppedOldest
			if dropped > 0 && px.QueueLen() <= 2 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("tiny queue cap not honoured (dropped=%d)", dropped)
}

func TestWithQueueDepthBoundsBacklog(t *testing.T) {
	// Depth 1 with a slow cost model: a burst overflows into ErrBusy
	// (surfaced as Stats.Dropped for remote publishes, as an error
	// return for local ones).
	r := newRig(t, WithQueueDepth(1), WithCost(Cost{IngestPerEvent: 50 * time.Millisecond}))
	svc := r.bus.Local("burster")
	var busy int
	for i := 0; i < 20; i++ {
		if err := svc.Publish(event.NewTyped("t")); err != nil {
			busy++
		}
	}
	if busy == 0 {
		t.Error("no backpressure with queue depth 1")
	}
}

func TestLocalServiceName(t *testing.T) {
	r := newRig(t)
	ls := r.bus.Local("monitoring")
	if ls.Name() != "monitoring" {
		t.Errorf("name = %q", ls.Name())
	}
}

func TestBadPacketsCounted(t *testing.T) {
	r := newRig(t)
	m := r.member(t, 1, "generic")
	// A bus endpoint should never receive discovery traffic; it is
	// counted as bad.
	if err := m.SendUnreliable(ident.New(busID), wire.PktHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
	// Garbage event payload from a member.
	if err := m.Send(ident.New(busID), wire.PktEvent, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.bus.Stats().BadPackets >= 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("BadPackets = %d, want ≥ 2", r.bus.Stats().BadPackets)
}

func TestUnsubscribeUnknownFilterIgnored(t *testing.T) {
	r := newRig(t)
	m := r.member(t, 1, "generic")
	f := event.NewFilter().WhereType("never-installed")
	if err := m.Send(ident.New(busID), wire.PktUnsubscribe, wire.EncodeFilter(f)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if st := r.bus.Stats(); st.Unsubscriptions != 0 {
		t.Errorf("phantom unsubscription recorded: %+v", st)
	}
}
