package bus

import (
	"fmt"
	"sync"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// LocalService is a core service co-located with the bus (discovery,
// policy, bootstrap, monitoring UIs). Local services publish and
// subscribe without crossing the network or the proxy layer, but share
// the same matcher, so local and remote subscribers are matched
// uniformly.
type LocalService struct {
	id   ident.ID
	name string
	b    *Bus

	mu       sync.Mutex
	handlers []localHandler
	seq      uint64
}

type localHandler struct {
	filter *event.Filter
	fn     Handler
}

// localIDBase marks locally allocated service IDs: the top octet is
// 0xFE, outside the address-derived ID space used by transports.
const localIDBase = ident.ID(0xFE) << 40

// Local registers (or returns) a local service with the given name.
func (b *Bus) Local(name string) *LocalService {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ls := range b.locals {
		if ls.name == name {
			return ls
		}
	}
	b.nextLoc++
	id := localIDBase | ident.ID(b.nextLoc)
	ls := &LocalService{id: id, name: name, b: b}
	b.locals[id] = ls
	return ls
}

func (b *Bus) localService(id ident.ID) *LocalService {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.locals[id]
}

// ID returns the local service's synthetic ID.
func (l *LocalService) ID() ident.ID { return l.id }

// Name returns the service name.
func (l *LocalService) Name() string { return l.name }

// Subscribe installs a filter whose matches are delivered to fn. The
// handler runs on the bus's processing goroutine and must not block.
func (l *LocalService) Subscribe(f *event.Filter, fn Handler) error {
	if f == nil || fn == nil {
		return fmt.Errorf("bus: local subscribe needs filter and handler")
	}
	if err := l.b.match.Subscribe(l.id, f); err != nil {
		return err
	}
	l.mu.Lock()
	l.handlers = append(l.handlers, localHandler{filter: f.Clone(), fn: fn})
	l.mu.Unlock()
	l.b.mu.Lock()
	l.b.stats.Subscriptions++
	l.b.mu.Unlock()
	l.b.unquenchAll()
	return nil
}

// Unsubscribe removes a previously installed filter.
func (l *LocalService) Unsubscribe(f *event.Filter) error {
	if err := l.b.match.Unsubscribe(l.id, f); err != nil {
		return err
	}
	l.mu.Lock()
	for i, h := range l.handlers {
		if h.filter.Equal(f) {
			l.handlers = append(l.handlers[:i], l.handlers[i+1:]...)
			break
		}
	}
	l.mu.Unlock()
	return nil
}

// Publish injects an event into the bus under this service's ID. A
// per-service sequence number is assigned so that local publishes obey
// the same per-sender FIFO contract as remote ones.
func (l *LocalService) Publish(e *event.Event) error {
	e.Sender = l.id
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.mu.Unlock()
	return l.b.enqueuePublish(e)
}

// dispatch fans a matched event out to the handlers whose filters it
// satisfies.
func (l *LocalService) dispatch(e *event.Event) {
	l.mu.Lock()
	hs := make([]localHandler, len(l.handlers))
	copy(hs, l.handlers)
	l.mu.Unlock()
	for _, h := range hs {
		if h.filter.Matches(e) {
			h.fn(e)
		}
	}
}
