package bus

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// LocalService is a core service co-located with the bus (discovery,
// policy, bootstrap, monitoring UIs). Local services publish and
// subscribe without crossing the network or the proxy layer, but share
// the same matcher, so local and remote subscribers are matched
// uniformly.
type LocalService struct {
	id   ident.ID
	name string
	b    *Bus

	mu       sync.Mutex                     // serialises handler mutations and publishes
	handlers atomic.Pointer[[]localHandler] // copy-on-write; read lock-free
	seq      uint64                         // guarded by mu
}

type localHandler struct {
	filter *event.Filter
	fn     Handler
}

// localIDBase marks locally allocated service IDs: the top octet is
// 0xFE, outside the address-derived ID space used by transports.
const localIDBase = ident.ID(0xFE) << 40

// Local registers (or returns) a local service with the given name.
func (b *Bus) Local(name string) *LocalService {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ls := range b.locals {
		if ls.name == name {
			return ls
		}
	}
	b.nextLoc++
	id := localIDBase | ident.ID(b.nextLoc)
	ls := &LocalService{id: id, name: name, b: b}
	b.locals[id] = ls
	b.rebuildSnapshot()
	return ls
}

// ID returns the local service's synthetic ID.
func (l *LocalService) ID() ident.ID { return l.id }

// Name returns the service name.
func (l *LocalService) Name() string { return l.name }

// Subscribe installs a filter whose matches are delivered to fn. The
// handler runs on a bus shard goroutine and must not block; the event
// it receives is shared with other subscribers and must be treated as
// read-only.
func (l *LocalService) Subscribe(f *event.Filter, fn Handler) error {
	if f == nil || fn == nil {
		return fmt.Errorf("bus: local subscribe needs filter and handler")
	}
	if err := l.b.match.Subscribe(l.id, f); err != nil {
		return err
	}
	l.mu.Lock()
	var hs []localHandler
	if cur := l.handlers.Load(); cur != nil {
		hs = append(hs, *cur...)
	}
	hs = append(hs, localHandler{filter: f.Clone(), fn: fn})
	l.handlers.Store(&hs)
	l.mu.Unlock()
	l.b.ctl().subscriptions.Add(1)
	l.b.unquenchAll()
	return nil
}

// Unsubscribe removes a previously installed filter.
func (l *LocalService) Unsubscribe(f *event.Filter) error {
	if err := l.b.match.Unsubscribe(l.id, f); err != nil {
		return err
	}
	l.mu.Lock()
	if cur := l.handlers.Load(); cur != nil {
		hs := make([]localHandler, 0, len(*cur))
		removed := false
		for _, h := range *cur {
			if !removed && h.filter.Equal(f) {
				removed = true
				continue
			}
			hs = append(hs, h)
		}
		l.handlers.Store(&hs)
	}
	l.mu.Unlock()
	return nil
}

// Publish injects an event into the bus under this service's ID. A
// per-service sequence number is assigned so that local publishes obey
// the same per-sender FIFO contract as remote ones; the lock spans
// both the assignment and the (non-blocking) enqueue so concurrent
// publishers on one service cannot invert seq order in the shard
// queue.
func (l *LocalService) Publish(e *event.Event) error {
	e.Sender = l.id
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	err := l.b.enqueuePublish(e)
	l.mu.Unlock()
	return err
}

// dispatch fans a matched event out to the handlers whose filters it
// satisfies. It runs on a shard goroutine and reads the copy-on-write
// handler list without locking or copying. Every handler's filter is
// re-evaluated — the matcher's verdict is per service, and during a
// subscribe/unsubscribe window the handler list may not correspond to
// the filter set that verdict was computed against.
func (l *LocalService) dispatch(e *event.Event) {
	hs := l.handlers.Load()
	if hs == nil {
		return
	}
	for _, h := range *hs {
		if h.filter.Matches(e) {
			h.fn(e)
		}
	}
}
