package bus

import (
	"testing"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/wire"
)

// TestMemberOnSecondTransport realises §III-B's per-proxy transport: a
// diagnostic device lives on a separate (Ethernet-like) network while
// the body sensors use the wireless one. The bus holds one endpoint on
// each network; the diagnostic member's proxy sends through the second
// endpoint, and its inbound packets are routed to the bus via
// AttachChannel.
func TestMemberOnSecondTransport(t *testing.T) {
	wireless := netsim.New(netsim.Perfect, netsim.WithSeed(31))
	defer wireless.Close()
	ethernet := netsim.New(netsim.Perfect, netsim.WithSeed(32))
	defer ethernet.Close()

	// The bus's main endpoint on the wireless segment.
	busWTr, err := wireless.Attach(ident.New(busID))
	if err != nil {
		t.Fatal(err)
	}
	b := New(reliable.New(busWTr, testCfg()), matcher.NewFast(), bootstrap.NewRegistry())
	b.Start()
	defer b.Close()

	// A second bus endpoint on the Ethernet segment.
	busETr, err := ethernet.Attach(ident.New(busID + 1))
	if err != nil {
		t.Fatal(err)
	}
	ethCh := reliable.New(busETr, testCfg())
	b.AttachChannel(ethCh)

	// A wireless member (subscriber).
	wsubTr, err := wireless.Attach(ident.New(0x21))
	if err != nil {
		t.Fatal(err)
	}
	wsub := reliable.New(wsubTr, testCfg())
	defer wsub.Close()
	if err := b.AddMember(wsub.LocalID(), "generic", "body-sensor"); err != nil {
		t.Fatal(err)
	}
	if err := wsub.Send(ident.New(busID), wire.PktSubscribe,
		wire.EncodeFilter(event.NewFilter().WhereType("diagnostic"))); err != nil {
		t.Fatal(err)
	}
	// The subscribe ack is channel-level: wait for the bus to install
	// the filter before publishing, or the event matches nothing.
	waitForSubs(t, b, 1)

	// The diagnostic device on Ethernet, proxied via the second
	// channel.
	diagTr, err := ethernet.Attach(ident.New(0xE1))
	if err != nil {
		t.Fatal(err)
	}
	diag := reliable.New(diagTr, testCfg())
	defer diag.Close()
	if err := b.AddMemberVia(diag.LocalID(), "generic", "diagnostic-station", ethCh); err != nil {
		t.Fatal(err)
	}

	// Ethernet → wireless: the diagnostic device publishes (to the
	// bus's Ethernet endpoint); the wireless subscriber receives.
	e := event.NewTyped("diagnostic").SetStr("result", "ok")
	e.Sender = diag.LocalID()
	if err := diag.Send(ident.New(busID+1), wire.PktEvent, wire.EncodeEvent(e)); err != nil {
		t.Fatalf("publish over ethernet: %v", err)
	}
	got := expectEvent(t, wsub, 5*time.Second)
	if got.Type() != "diagnostic" || got.Sender != diag.LocalID() {
		t.Errorf("event = %s", got)
	}

	// Wireless → Ethernet: the diagnostic station subscribes and
	// receives a wireless publish through its own transport.
	if err := diag.Send(ident.New(busID+1), wire.PktSubscribe,
		wire.EncodeFilter(event.NewFilter().WhereType("vitals"))); err != nil {
		t.Fatal(err)
	}
	waitForSubs(t, b, 2)
	v := event.NewTyped("vitals").SetFloat("hr", 71)
	v.Sender = wsub.LocalID()
	if err := wsub.Send(ident.New(busID), wire.PktEvent, wire.EncodeEvent(v)); err != nil {
		t.Fatal(err)
	}
	got = expectEvent(t, diag, 5*time.Second)
	if got.Type() != "vitals" {
		t.Errorf("event = %s", got)
	}
}

// TestUnreliableDataPath covers the NoAck periodic-sensor style: data
// packets flagged NoAck still reach the member's proxy for
// translation.
func TestUnreliableDataPath(t *testing.T) {
	r := newRig(t)
	pub := r.member(t, 1, "generic")
	sub := r.member(t, 2, "generic")
	subscribe(t, sub, event.NewFilter())

	// Generic proxy translates PktData payloads as encoded events.
	e := event.NewTyped("periodic").SetFloat("v", 36.6)
	e.Sender = pub.LocalID()
	e.Seq = 1
	if err := pub.SendUnreliable(ident.New(busID), wire.PktData, wire.EncodeEvent(e)); err != nil {
		t.Fatal(err)
	}
	got := expectEvent(t, sub, 5*time.Second)
	if got.Type() != "periodic" {
		t.Errorf("event = %s", got)
	}
	if got.Sender != pub.LocalID() {
		t.Errorf("sender = %s (proxy must stamp the member)", got.Sender)
	}
}

func TestAttachChannelAfterCloseClosesIt(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(33))
	defer n.Close()
	tr, _ := n.Attach(ident.New(busID))
	b := New(reliable.New(tr, testCfg()), matcher.NewFast(), bootstrap.NewRegistry())
	b.Start()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, _ := n.Attach(ident.New(busID + 7))
	ch := reliable.New(tr2, testCfg())
	b.AttachChannel(ch)
	// The channel was closed by the refused attach.
	if err := ch.Send(ident.New(1), wire.PktEvent, nil); err == nil {
		t.Error("channel usable after attach-on-closed-bus")
	}
}
