package bus

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
)

// TestBusHotPath is a functional smoke of the sharded dispatch
// pipeline sized for `go test -race -cpu 1,2`: GOMAXPROCS concurrent
// publishers flood pooled events through subscribe/unsubscribe churn
// while local subscribers count deliveries. It verifies the lock-free
// matcher snapshots, per-worker scratch, and sharded counters under
// the race detector, and that the fold-on-read Stats stay coherent
// once the bus quiesces.
func TestBusHotPath(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(5))
	defer n.Close()
	tr, err := n.Attach(ident.New(busID))
	if err != nil {
		t.Fatal(err)
	}
	bus := New(reliable.New(tr, testCfg()), matcher.NewFast(), bootstrap.NewRegistry(),
		WithShards(runtime.GOMAXPROCS(0)), WithQueueDepth(1024))
	bus.Start()
	defer bus.Close()

	const fan = 4
	filter := event.NewFilter().WhereType("smoke")
	var delivered atomic.Uint64
	for i := 0; i < fan; i++ {
		svc := bus.Local(fmt.Sprintf("sub-%d", i))
		if err := svc.Subscribe(filter, func(*event.Event) { delivered.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}

	// Churn a disjoint subscription concurrently with dispatch so the
	// matcher's copy-on-write writers race real traffic.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		churn := bus.Local("churner")
		f := event.NewFilter().WhereType("other")
		for i := 0; i < 200; i++ {
			if err := churn.Subscribe(f, func(*event.Event) {}); err != nil {
				t.Error(err)
				return
			}
			if err := churn.Unsubscribe(f); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const perPub = 500
	pubs := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			svc := bus.Local(fmt.Sprintf("pub-%d", p))
			for i := 0; i < perPub; i++ {
				e := event.Acquire().SetStr(event.AttrType, "smoke").SetInt("k", int64(i))
				for {
					err := svc.Publish(e)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBusy) {
						e.Release()
						t.Error(err)
						return
					}
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
	<-churnDone

	want := uint64(pubs * perPub * fan)
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d events", delivered.Load(), want)
		}
		runtime.Gosched()
	}

	// Quiesced: the folded per-shard counters must account for every
	// publish exactly.
	st := bus.Stats()
	if st.Published != uint64(pubs*perPub) {
		t.Fatalf("Published = %d, want %d", st.Published, pubs*perPub)
	}
	if st.Matched != uint64(pubs*perPub) {
		t.Fatalf("Matched = %d, want %d (every event had subscribers)", st.Matched, pubs*perPub)
	}
	if st.DeliveredLocal != want {
		t.Fatalf("DeliveredLocal = %d, want %d", st.DeliveredLocal, want)
	}
	if st.NoMatch != 0 {
		t.Fatalf("NoMatch = %d, want 0", st.NoMatch)
	}
}
