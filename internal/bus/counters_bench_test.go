package bus

import (
	"sync/atomic"
	"testing"
)

// BenchmarkCounterLayout isolates the counter-layout decision behind
// busCounters: every parallel goroutine bumps a counter per iteration,
// and the three cases vary only where that counter lives.
//
//   - shared: all goroutines bump one block — the pre-PR layout, every
//     increment contends on the same cache line.
//   - sharded-unpadded: one 8-byte counter per goroutine, adjacent in
//     one slice — logically uncontended but falsely shared, since many
//     counters fit one cache line.
//   - sharded-padded: one 128-byte-aligned block per goroutine — the
//     layout the bus uses; no sharing, true or false.
//
// On a single hardware thread all three converge (there is nothing to
// bounce); the split shows up under -cpu N on multi-core hosts and is
// recorded in EXPERIMENTS.md.
func BenchmarkCounterLayout(b *testing.B) {
	const slots = 64 // ≥ GOMAXPROCS for any sane -cpu setting

	b.Run("shared", func(b *testing.B) {
		var c busCounters
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.published.Add(1)
			}
		})
	})

	b.Run("sharded-unpadded", func(b *testing.B) {
		counters := make([]atomic.Uint64, slots)
		var next atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			c := &counters[int(next.Add(1)-1)%slots]
			for pb.Next() {
				c.Add(1)
			}
		})
	})

	b.Run("sharded-padded", func(b *testing.B) {
		blocks := make([]busCounters, slots)
		var next atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			c := &blocks[int(next.Add(1)-1)%slots]
			for pb.Next() {
				c.published.Add(1)
			}
		})
	})
}
