package bus

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/wire"
)

// TestBusHotPathZeroAlloc pins the PR 3 acceptance criterion outside
// the benchmark: a small pooled event published to local subscribers
// allocates nothing in steady state — the inline attribute storage
// removed the map, and the recycled-event lifecycle removes the Event
// struct itself.
func TestBusHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; exact-alloc check runs un-instrumented")
	}
	r := newRig(t)
	var delivered atomic.Uint64
	svc := r.bus.Local("pub")
	sub := r.bus.Local("sub")
	if err := sub.Subscribe(event.NewFilter().WhereType("bench"), func(*event.Event) {
		delivered.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	publishOne := func(i int) {
		want := delivered.Load() + 1
		_, rec0 := event.PoolStats()
		e := event.Acquire().SetStr(event.AttrType, "bench").SetInt("k", int64(i))
		if err := svc.Publish(e); err != nil {
			e.Release()
			t.Fatal(err)
		}
		for delivered.Load() < want {
			runtime.Gosched()
		}
		// Wait for the bus to release the event back to the pool, not
		// just for delivery: the next Acquire must find it there or
		// this measures pool-miss allocations instead of the pipeline.
		for {
			if _, rec := event.PoolStats(); rec > rec0 {
				return
			}
			runtime.Gosched()
		}
	}
	publishOne(0) // warm the pools outside the measurement

	i := 1
	allocs := testing.AllocsPerRun(500, func() {
		publishOne(i)
		i++
	})
	// Allow sub-1 noise (a GC can empty the sync.Pools mid-run) but a
	// systematic per-publish allocation must fail.
	if allocs >= 1 {
		t.Fatalf("pooled local publish allocates %.2f objects/op, want 0", allocs)
	}
}

// TestPooledEventThroughMemberPath drives pooled events through the
// full remote branch — publish → match → proxy retain → wire encode →
// release → recycle — and checks every delivered payload, so an event
// recycled before its proxy finished encoding (a refcount bug) shows
// up as payload corruption.
func TestPooledEventThroughMemberPath(t *testing.T) {
	r := newRig(t)
	ch := r.member(t, 0x42, "generic")
	subscribe(t, ch, event.NewFilter().WhereType("pooled"))
	waitForSubs(t, r.bus, 1)

	svc := r.bus.Local("pub")
	const n = 100
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			pkt, err := ch.Recv()
			if err != nil {
				done <- err
				return
			}
			e, err := wire.DecodeEvent(pkt.Payload)
			pkt.Release()
			if err != nil {
				done <- err
				return
			}
			if v, ok := e.Get("k"); !ok {
				done <- fmt.Errorf("delivery %d: attribute missing (recycled too early?)", i)
				return
			} else if iv, _ := v.Int(); iv != int64(i) {
				done <- fmt.Errorf("delivery %d: k = %d (event corrupted by recycling)", i, iv)
				return
			}
			if e.Type() != "pooled" {
				done <- fmt.Errorf("delivery %d: type = %q", i, e.Type())
				return
			}
		}
		done <- nil
	}()

	for i := 0; i < n; i++ {
		e := event.Acquire().
			SetStr(event.AttrType, "pooled").
			SetInt("k", int64(i)).
			SetStr("pad", "abcdefghikjlmnop")
		if err := svc.Publish(e); err != nil {
			e.Release()
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("timed out waiting for member deliveries")
	}
}

// TestPooledEventSharedFanout fans one pooled event out to a local
// subscriber and two member proxies at once: the refcount must keep
// the event alive until the slowest consumer encoded it.
func TestPooledEventSharedFanout(t *testing.T) {
	r := newRig(t)
	chA := r.member(t, 0x51, "generic")
	chB := r.member(t, 0x52, "generic")
	subscribe(t, chA, event.NewFilter().WhereType("fan"))
	subscribe(t, chB, event.NewFilter().WhereType("fan"))
	waitForSubs(t, r.bus, 2)
	var local atomic.Uint64
	if err := r.bus.Local("sub").Subscribe(event.NewFilter().WhereType("fan"), func(e *event.Event) {
		if v, ok := e.Get("k"); ok {
			if iv, _ := v.Int(); iv >= 0 {
				local.Add(1)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	svc := r.bus.Local("pub")
	const n = 50
	recv := func(ch interface {
		Recv() (*wire.Packet, error)
	}, errs chan<- error) {
		for i := 0; i < n; i++ {
			pkt, err := ch.Recv()
			if err != nil {
				errs <- err
				return
			}
			e, err := wire.DecodeEvent(pkt.Payload)
			pkt.Release()
			if err != nil {
				errs <- err
				return
			}
			if v, ok := e.Get("k"); !ok {
				errs <- fmt.Errorf("delivery %d: missing attr", i)
				return
			} else if iv, _ := v.Int(); iv != int64(i) {
				errs <- fmt.Errorf("delivery %d: k = %d", i, iv)
				return
			}
		}
		errs <- nil
	}
	errs := make(chan error, 2)
	go recv(chA, errs)
	go recv(chB, errs)

	for i := 0; i < n; i++ {
		e := event.Acquire().SetStr(event.AttrType, "fan").SetInt("k", int64(i))
		if err := svc.Publish(e); err != nil {
			e.Release()
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("timed out waiting for fan-out deliveries")
		}
	}
	if got := local.Load(); got != n {
		t.Fatalf("local handler saw %d events, want %d", got, n)
	}
}
