package bus

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/wire"
)

const busID = 0x1000

func testCfg() reliable.Config {
	return reliable.Config{
		RetryTimeout:    20 * time.Millisecond,
		MaxRetryTimeout: 100 * time.Millisecond,
		MaxRetries:      20,
	}
}

// rig is a bus plus its simulated network.
type rig struct {
	net *netsim.Network
	bus *Bus
}

func newRig(t *testing.T, opts ...Option) *rig {
	t.Helper()
	n := netsim.New(netsim.Perfect, netsim.WithSeed(21))
	tr, err := n.Attach(ident.New(busID))
	if err != nil {
		t.Fatal(err)
	}
	m := matcher.NewFast()
	b := New(reliable.New(tr, testCfg()), m, bootstrap.NewRegistry(), opts...)
	b.Start()
	t.Cleanup(func() {
		b.Close()
		n.Close()
	})
	return &rig{net: n, bus: b}
}

// member attaches a raw reliable channel and registers it as a member.
func (r *rig) member(t *testing.T, id uint64, deviceType string) *reliable.Channel {
	t.Helper()
	tr, err := r.net.Attach(ident.New(id))
	if err != nil {
		t.Fatal(err)
	}
	ch := reliable.New(tr, testCfg())
	t.Cleanup(func() { ch.Close() })
	if err := r.bus.AddMember(ident.New(id), deviceType, "dev"); err != nil {
		t.Fatal(err)
	}
	return ch
}

func publish(t *testing.T, ch *reliable.Channel, e *event.Event) {
	t.Helper()
	e.Sender = ch.LocalID()
	if err := ch.Send(ident.New(busID), wire.PktEvent, wire.EncodeEvent(e)); err != nil {
		t.Fatalf("publish: %v", err)
	}
}

func subscribe(t *testing.T, ch *reliable.Channel, f *event.Filter) {
	t.Helper()
	if err := ch.Send(ident.New(busID), wire.PktSubscribe, wire.EncodeFilter(f)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
}

// waitForSubs blocks until the bus's matcher holds n installed filters:
// a subscribe Send returns on the channel-level ack, before the bus has
// processed the packet, so tests that publish immediately after
// subscribing must wait for installation.
func waitForSubs(t *testing.T, b *Bus, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for b.match.SubscriptionCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("subscriptions = %d, want %d", b.match.SubscriptionCount(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func expectEvent(t *testing.T, ch *reliable.Channel, timeout time.Duration) *event.Event {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			t.Fatal("no event delivered")
		}
		pkt, err := ch.RecvTimeout(remain)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if pkt.Type != wire.PktEvent {
			continue
		}
		e, err := wire.DecodeEvent(pkt.Payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return e
	}
}

func TestBusRoutesToRemoteSubscriber(t *testing.T) {
	r := newRig(t)
	pub := r.member(t, 1, "generic")
	sub := r.member(t, 2, "generic")
	subscribe(t, sub, event.NewFilter().WhereType("alarm"))
	waitForSubs(t, r.bus, 1)

	publish(t, pub, event.NewTyped("alarm").SetInt("v", 5))
	e := expectEvent(t, sub, 2*time.Second)
	if e.Type() != "alarm" || e.Sender != pub.LocalID() {
		t.Errorf("event = %s", e)
	}
	st := r.bus.Stats()
	if st.Published != 1 || st.Matched != 1 || st.EnqueuedRemote != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBusIgnoresNonMembers(t *testing.T) {
	r := newRig(t)
	tr, _ := r.net.Attach(ident.New(66))
	outsider := reliable.New(tr, testCfg())
	defer outsider.Close()

	e := event.NewTyped("alarm")
	e.Sender = outsider.LocalID()
	if err := outsider.Send(ident.New(busID), wire.PktEvent, wire.EncodeEvent(e)); err != nil {
		t.Fatalf("send: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if r.bus.Stats().NonMember > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("non-member traffic not counted")
}

func TestLocalPubSub(t *testing.T) {
	r := newRig(t)
	a := r.bus.Local("svc-a")
	b := r.bus.Local("svc-b")
	if a.ID() == b.ID() {
		t.Fatal("local IDs collide")
	}
	if got := r.bus.Local("svc-a"); got != a {
		t.Error("Local not idempotent by name")
	}

	var mu sync.Mutex
	var got []*event.Event
	err := b.Subscribe(event.NewFilter().WhereType("tick"), func(e *event.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Publish(event.NewTyped("tick").SetInt("n", 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Publish(event.NewTyped("tock")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Type() != "tick" {
		t.Fatalf("got %v", got)
	}
	if got[0].Sender != a.ID() || got[0].Seq != 1 {
		t.Errorf("origin = %s/%d", got[0].Sender, got[0].Seq)
	}
}

func TestLocalUnsubscribe(t *testing.T) {
	r := newRig(t)
	svc := r.bus.Local("svc")
	f := event.NewFilter().WhereType("x")
	calls := 0
	var mu sync.Mutex
	if err := svc.Subscribe(f, func(*event.Event) { mu.Lock(); calls++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}
	if err := svc.Unsubscribe(f); err != nil {
		t.Fatal(err)
	}
	if err := svc.Publish(event.NewTyped("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if calls != 0 {
		t.Errorf("handler called %d times after unsubscribe", calls)
	}
}

func TestPerSenderFIFOEndToEnd(t *testing.T) {
	r := newRig(t)
	pub := r.member(t, 1, "generic")
	sub := r.member(t, 2, "generic")
	subscribe(t, sub, event.NewFilter().WhereType("seq"))
	waitForSubs(t, r.bus, 1)

	const count = 30
	for i := 0; i < count; i++ {
		publish(t, pub, event.NewTyped("seq").SetInt("n", int64(i)))
	}
	for i := 0; i < count; i++ {
		e := expectEvent(t, sub, 5*time.Second)
		v, _ := e.Get("n")
		if n, _ := v.Int(); n != int64(i) {
			t.Fatalf("position %d got n=%d", i, n)
		}
	}
}

func TestRemoveMemberDiscardsQueue(t *testing.T) {
	r := newRig(t)
	pub := r.member(t, 1, "generic")
	subID := ident.New(2)
	// Member 2 exists but is unreachable (never attached to the net):
	// deliveries stall in its proxy queue.
	if err := r.bus.AddMember(subID, "generic", "ghost"); err != nil {
		t.Fatal(err)
	}
	if err := r.bus.match.Subscribe(subID, event.NewFilter().WhereType("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		publish(t, pub, event.NewTyped("x").SetInt("n", int64(i)))
	}
	// Wait for the events to reach the proxy.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if px := r.bus.MemberProxy(subID); px != nil && px.Stats().Enqueued == 5 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	px := r.bus.MemberProxy(subID)
	if px == nil {
		t.Fatal("no proxy")
	}
	r.bus.RemoveMember(subID)
	if got := r.bus.MemberProxy(subID); got != nil {
		t.Error("proxy survives removal")
	}
	st := px.Stats()
	if st.DiscardedOnPurge == 0 && st.Delivered > 0 {
		t.Errorf("purge did not discard queue: %+v", st)
	}
	if len(r.bus.Members()) != 1 {
		t.Errorf("members = %v", r.bus.Members())
	}
}

func TestDuplicateMemberRejected(t *testing.T) {
	r := newRig(t)
	r.member(t, 1, "generic")
	if err := r.bus.AddMember(ident.New(1), "generic", "again"); err == nil {
		t.Error("duplicate member accepted")
	}
}

func TestRemoteUnsubscribeStopsDelivery(t *testing.T) {
	r := newRig(t)
	pub := r.member(t, 1, "generic")
	sub := r.member(t, 2, "generic")
	f := event.NewFilter().WhereType("x")
	subscribe(t, sub, f)
	waitForSubs(t, r.bus, 1)

	publish(t, pub, event.NewTyped("x").SetInt("n", 1))
	expectEvent(t, sub, 2*time.Second)

	if err := sub.Send(ident.New(busID), wire.PktUnsubscribe, wire.EncodeFilter(f)); err != nil {
		t.Fatal(err)
	}
	// Give the unsubscribe time to process, then publish again.
	time.Sleep(100 * time.Millisecond)
	publish(t, pub, event.NewTyped("x").SetInt("n", 2))
	if pkt, err := sub.RecvTimeout(200 * time.Millisecond); err == nil && pkt.Type == wire.PktEvent {
		t.Error("delivery after unsubscribe")
	}
}

type denyAll struct{}

func (denyAll) AuthorizePublish(ident.ID, string, *event.Event) error {
	return errors.New("denied")
}
func (denyAll) AuthorizeSubscribe(ident.ID, string, *event.Filter) error {
	return errors.New("denied")
}

func TestAuthorizerBlocksPublishAndSubscribe(t *testing.T) {
	r := newRig(t, WithAuthorizer(denyAll{}))
	m := r.member(t, 1, "generic")
	subscribe(t, m, event.NewFilter().WhereType("x")) // acked but denied
	publish(t, m, event.NewTyped("x"))

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if r.bus.Stats().AuthDenied >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := r.bus.Stats(); st.AuthDenied < 2 {
		t.Errorf("AuthDenied = %d, want 2", st.AuthDenied)
	}
	if r.bus.match.SubscriptionCount() != 0 {
		t.Error("denied subscription installed")
	}
}

func TestQuenchAndUnquench(t *testing.T) {
	r := newRig(t, WithQuench(true))
	pub := r.member(t, 1, "generic")

	// No subscribers: the publisher gets quenched.
	publish(t, pub, event.NewTyped("lonely"))
	var quenched bool
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		pkt, err := pub.RecvTimeout(100 * time.Millisecond)
		if err == nil && pkt.Type == wire.PktQuench {
			quenched = true
			break
		}
	}
	if !quenched {
		t.Fatal("no quench received")
	}

	// A new subscription unquenches.
	sub := r.member(t, 2, "generic")
	subscribe(t, sub, event.NewFilter().WhereType("lonely"))
	var unquenched bool
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		pkt, err := pub.RecvTimeout(100 * time.Millisecond)
		if err == nil && pkt.Type == wire.PktUnquench {
			unquenched = true
			break
		}
	}
	if !unquenched {
		t.Fatal("no unquench received")
	}
	st := r.bus.Stats()
	if st.Quenches != 1 || st.Unquenches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCloseIsIdempotentAndStopsProcessing(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(30))
	defer n.Close()
	tr, _ := n.Attach(ident.New(busID))
	b := New(reliable.New(tr, testCfg()), matcher.NewFast(), bootstrap.NewRegistry())
	b.Start()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := b.AddMember(ident.New(5), "generic", "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("AddMember after close: %v", err)
	}
	if err := b.Local("x").Publish(event.New()); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close: %v", err)
	}
}

func TestCostModelSlowsProcessing(t *testing.T) {
	r := newRig(t, WithCost(Cost{IngestPerEvent: 20 * time.Millisecond}))
	svc := r.bus.Local("timer")
	var mu sync.Mutex
	var stamps []time.Time
	err := svc.Subscribe(event.NewFilter().WhereType("t"), func(*event.Event) {
		mu.Lock()
		stamps = append(stamps, time.Now())
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := svc.Publish(event.NewTyped("t")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(stamps)
		mu.Unlock()
		if n == 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stamps) != 5 {
		t.Fatalf("delivered %d", len(stamps))
	}
	if d := stamps[4].Sub(start); d < 90*time.Millisecond {
		t.Errorf("5 events with 20ms ingest cost took %v, want ≥ ~100ms", d)
	}
}

func TestBusReportsMatcherName(t *testing.T) {
	r := newRig(t)
	if r.bus.MatcherName() != "fast" {
		t.Errorf("name = %s", r.bus.MatcherName())
	}
	if r.bus.ID() != ident.New(busID) {
		t.Errorf("ID = %s", r.bus.ID())
	}
}

// TestDroppedCounterDistinguishesOverload floods a one-slot queue
// behind a slow cost model: queue-full sheds must land in
// Stats.Dropped, not BadPackets, so overload stays distinguishable
// from corruption.
func TestDroppedCounterDistinguishesOverload(t *testing.T) {
	r := newRig(t,
		WithShards(1),
		WithQueueDepth(1),
		WithCost(Cost{IngestPerEvent: 10 * time.Millisecond}),
	)
	pub := r.member(t, 1, "generic")
	for i := 0; i < 20; i++ {
		publish(t, pub, event.NewTyped("flood").SetInt("n", int64(i)))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.bus.Stats().Dropped > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := r.bus.Stats()
	if st.Dropped == 0 {
		t.Fatal("overload did not increment Dropped")
	}
	if st.BadPackets != 0 {
		t.Errorf("overload counted as BadPackets (%d)", st.BadPackets)
	}
}
