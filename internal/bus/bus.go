// Package bus implements the SMC event bus (§III): a content-based
// publish/subscribe service with the delivery semantics of §II-C
// layered on top of a pluggable matching mechanism.
//
// The bus receives events from member services over the reliable
// channel (every hop acknowledged), matches them against installed
// subscriptions, and hands matching events to each subscriber's proxy,
// whose FIFO queue and resend logic maintain the ordering constraint
// and persistent delivery. Core services co-located with the bus
// (discovery, policy, bootstrap) attach as local services without
// crossing the network.
package bus

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/proxy"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/wire"
)

var (
	// ErrClosed reports use of a closed bus.
	ErrClosed = errors.New("bus: closed")
	// ErrBusy reports a full processing queue (bounded memory).
	ErrBusy = errors.New("bus: processing queue full")
	// ErrNotMember reports traffic from a service that is not a
	// member of the SMC.
	ErrNotMember = errors.New("bus: not a member")
	// ErrUnauthorized reports a publish or subscribe denied by the
	// authorisation policy.
	ErrUnauthorized = errors.New("bus: unauthorized")
)

// Handler consumes events delivered to a local service.
type Handler func(e *event.Event)

// Authorizer is consulted before member publishes and subscriptions
// are accepted; the policy service implements it (§II-A authorisation
// policies). A nil Authorizer admits everything.
type Authorizer interface {
	AuthorizePublish(member ident.ID, deviceType string, e *event.Event) error
	AuthorizeSubscribe(member ident.ID, deviceType string, f *event.Filter) error
}

// Cost models the processing overhead of the constrained host (the
// paper's PDA with a 2006-era JVM): a fixed cost per packet plus a
// per-byte cost for copies and OS↔runtime transfers (§V attributes the
// observed response-time growth to packet-data copying). Zero costs
// disable the model; benchmarks calibrate it per bus flavour as
// documented in EXPERIMENTS.md.
type Cost struct {
	IngestPerEvent  time.Duration
	DeliverPerEvent time.Duration
	PerByte         time.Duration
}

// enabled reports whether any cost is configured.
func (c Cost) enabled() bool {
	return c.IngestPerEvent > 0 || c.DeliverPerEvent > 0 || c.PerByte > 0
}

// Stats counts bus activity.
type Stats struct {
	Published       uint64
	Matched         uint64
	NoMatch         uint64
	DeliveredLocal  uint64
	EnqueuedRemote  uint64
	Quenches        uint64
	Unquenches      uint64
	AuthDenied      uint64
	NonMember       uint64
	BadPackets      uint64
	Subscriptions   uint64
	Unsubscriptions uint64
}

// Option configures a Bus.
type Option func(*Bus)

// WithAuthorizer installs an authorisation hook.
func WithAuthorizer(a Authorizer) Option {
	return func(b *Bus) { b.auth = a }
}

// WithCost installs a host processing-cost model.
func WithCost(c Cost) Option {
	return func(b *Bus) { b.cost = c }
}

// WithQuench enables publisher quenching (§VI): publishers whose events
// currently match no subscription are told to stop sending.
func WithQuench(on bool) Option {
	return func(b *Bus) { b.quenchOn = on }
}

// WithProxyConfig overrides proxy queue/redelivery tuning.
func WithProxyConfig(cfg proxy.Config) Option {
	return func(b *Bus) { b.proxyCfg = cfg }
}

// WithQueueDepth sets the central processing queue depth.
func WithQueueDepth(n int) Option {
	return func(b *Bus) {
		if n > 0 {
			b.queueDepth = n
		}
	}
}

// Bus is the event bus.
type Bus struct {
	ch       *reliable.Channel
	match    matcher.Matcher
	registry *bootstrap.Registry

	auth       Authorizer
	cost       Cost
	quenchOn   bool
	proxyCfg   proxy.Config
	queueDepth int

	mu       sync.Mutex
	members  map[ident.ID]*memberState
	locals   map[ident.ID]*LocalService
	quenched map[ident.ID]bool
	extra    []*reliable.Channel
	nextLoc  uint64
	stats    Stats
	closed   bool

	work chan workItem
	done chan struct{}
	wg   sync.WaitGroup
}

type memberState struct {
	deviceType string
	px         *proxy.Proxy
}

type workItem struct {
	e    *event.Event
	size int // encoded size, for the cost model
}

// New builds a bus over a reliable channel with the given matching
// mechanism and proxy factory registry. The bus owns the channel and
// closes it on Close. Call Start to begin processing.
func New(ch *reliable.Channel, m matcher.Matcher, reg *bootstrap.Registry, opts ...Option) *Bus {
	b := &Bus{
		ch:         ch,
		match:      m,
		registry:   reg,
		proxyCfg:   proxy.DefaultConfig(),
		queueDepth: 4096,
		members:    make(map[ident.ID]*memberState),
		locals:     make(map[ident.ID]*LocalService),
		quenched:   make(map[ident.ID]bool),
		done:       make(chan struct{}),
	}
	for _, o := range opts {
		o(b)
	}
	b.work = make(chan workItem, b.queueDepth)
	return b
}

// ID returns the bus's service ID on the network.
func (b *Bus) ID() ident.ID { return b.ch.LocalID() }

// SetAuthorizer installs the authorisation hook. It must be called
// before Start (the policy engine is constructed on top of the bus, so
// it cannot be passed to New).
func (b *Bus) SetAuthorizer(a Authorizer) { b.auth = a }

// MatcherName reports the active matching mechanism.
func (b *Bus) MatcherName() string { return b.match.Name() }

// Stats returns a snapshot of the counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Start launches the receive and processing loops.
func (b *Bus) Start() {
	b.wg.Add(2)
	go func() {
		defer b.wg.Done()
		b.recvFrom(b.ch)
	}()
	go b.processLoop()
}

// AttachChannel routes packets arriving on an additional reliable
// channel into the bus. This realises §III-B's note that "a proxy
// would be able to generate its own transport layer to facilitate
// communication over a different network transport" — e.g. a
// diagnostic device connected to the SMC via an Ethernet segment while
// the body sensors use the wireless one. The bus owns the channel from
// here on and closes it on Close. Call before or after Start, but
// before traffic is expected on the channel.
func (b *Bus) AttachChannel(ch *reliable.Channel) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		_ = ch.Close()
		return
	}
	b.extra = append(b.extra, ch)
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.recvFrom(ch)
	}()
}

// AddMemberVia admits a member whose proxy sends through a dedicated
// channel instead of the bus's main endpoint (per-proxy transport,
// §III-B). The channel must have been attached with AttachChannel for
// the member's inbound traffic to reach the bus.
func (b *Bus) AddMemberVia(id ident.ID, deviceType, name string, via proxy.Sender) error {
	return b.addMember(id, deviceType, name, via)
}

// Close shuts the bus down: the channel closes, loops drain, and every
// proxy is purged.
func (b *Bus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	members := make([]*memberState, 0, len(b.members))
	for _, ms := range b.members {
		members = append(members, ms)
	}
	b.members = make(map[ident.ID]*memberState)
	extra := b.extra
	b.extra = nil
	b.mu.Unlock()

	err := b.ch.Close()
	for _, ch := range extra {
		_ = ch.Close()
	}
	close(b.done)
	b.wg.Wait()
	for _, ms := range members {
		ms.px.Purge()
	}
	return err
}

// ---- membership ----

// AddMember admits a service: a proxy of the appropriate concrete type
// is created via the bootstrap registry (§III-C), started, and its
// initial subscriptions installed.
func (b *Bus) AddMember(id ident.ID, deviceType, name string) error {
	return b.addMember(id, deviceType, name, b.ch)
}

func (b *Bus) addMember(id ident.ID, deviceType, name string, via proxy.Sender) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	if _, dup := b.members[id]; dup {
		b.mu.Unlock()
		return fmt.Errorf("bus: member %s already present", id)
	}
	dev := b.registry.Make(deviceType, id, name)
	px := proxy.New(id, dev, via, func(e *event.Event) error {
		return b.enqueuePublish(e)
	}, b.proxyCfg)
	b.members[id] = &memberState{deviceType: deviceType, px: px}
	b.mu.Unlock()

	px.Start()
	for _, f := range px.InitialSubscriptions() {
		if err := b.match.Subscribe(id, f); err != nil {
			return fmt.Errorf("bus: initial subscription for %s: %w", id, err)
		}
	}
	return nil
}

// RemoveMember purges a member: subscriptions are removed, the proxy
// destroys itself discarding queued deliveries, and reliability state
// is forgotten so a returning device starts a clean stream.
func (b *Bus) RemoveMember(id ident.ID) {
	b.mu.Lock()
	ms, ok := b.members[id]
	if ok {
		delete(b.members, id)
	}
	delete(b.quenched, id)
	b.mu.Unlock()
	if !ok {
		return
	}
	b.match.UnsubscribeAll(id)
	ms.px.Purge()
	b.ch.Forget(id)
}

// Members lists current member IDs.
func (b *Bus) Members() []ident.ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ident.ID, 0, len(b.members))
	for id := range b.members {
		out = append(out, id)
	}
	return out
}

// MemberProxy exposes a member's proxy (nil when absent); used by
// integration tests and stats collection.
func (b *Bus) MemberProxy(id ident.ID) *proxy.Proxy {
	b.mu.Lock()
	defer b.mu.Unlock()
	ms, ok := b.members[id]
	if !ok {
		return nil
	}
	return ms.px
}

func (b *Bus) memberState(id ident.ID) (*memberState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ms, ok := b.members[id]
	return ms, ok
}

// ---- publish path ----

// enqueuePublish hands an event to the processor.
func (b *Bus) enqueuePublish(e *event.Event) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.mu.Unlock()
	item := workItem{e: e, size: wire.HeaderLen + len(wire.EncodeEvent(e))}
	select {
	case b.work <- item:
		return nil
	case <-b.done:
		return ErrClosed
	default:
		return ErrBusy
	}
}

func (b *Bus) recvFrom(ch *reliable.Channel) {
	for {
		pkt, err := ch.Recv()
		if err != nil {
			return
		}
		b.handlePacket(pkt)
	}
}

func (b *Bus) handlePacket(pkt *wire.Packet) {
	switch pkt.Type {
	case wire.PktEvent:
		b.handleEventPacket(pkt)
	case wire.PktData:
		b.handleDataPacket(pkt)
	case wire.PktSubscribe, wire.PktUnsubscribe:
		b.handleSubscriptionPacket(pkt)
	default:
		// Discovery/control traffic does not belong on the bus
		// endpoint (the discovery protocol "does not use the event
		// bus", §II-B).
		b.bumpBad()
	}
}

func (b *Bus) handleEventPacket(pkt *wire.Packet) {
	ms, ok := b.memberState(pkt.Sender)
	if !ok {
		b.bumpNonMember()
		return
	}
	e, err := wire.DecodeEvent(pkt.Payload)
	if err != nil {
		b.bumpBad()
		return
	}
	// Anti-spoofing: a member's events carry its own identity, no
	// matter what the payload claims.
	e.Sender = pkt.Sender
	if e.Seq == 0 {
		e.Seq = pkt.Seq
	}
	if b.auth != nil {
		if err := b.auth.AuthorizePublish(pkt.Sender, ms.deviceType, e); err != nil {
			b.mu.Lock()
			b.stats.AuthDenied++
			b.mu.Unlock()
			return
		}
	}
	if err := b.enqueuePublish(e); err != nil {
		b.bumpBad()
	}
}

func (b *Bus) handleDataPacket(pkt *wire.Packet) {
	ms, ok := b.memberState(pkt.Sender)
	if !ok {
		b.bumpNonMember()
		return
	}
	// Raw device bytes: the member's proxy performs the
	// pre-processing into fully fledged event objects (§III-B).
	if err := ms.px.HandleInbound(pkt.Payload); err != nil {
		b.bumpBad()
	}
}

func (b *Bus) handleSubscriptionPacket(pkt *wire.Packet) {
	ms, ok := b.memberState(pkt.Sender)
	if !ok {
		b.bumpNonMember()
		return
	}
	f, err := wire.DecodeFilter(pkt.Payload)
	if err != nil {
		b.bumpBad()
		return
	}
	if pkt.Type == wire.PktSubscribe {
		if b.auth != nil {
			if err := b.auth.AuthorizeSubscribe(pkt.Sender, ms.deviceType, f); err != nil {
				b.mu.Lock()
				b.stats.AuthDenied++
				b.mu.Unlock()
				return
			}
		}
		if err := b.match.Subscribe(pkt.Sender, f); err != nil {
			b.bumpBad()
			return
		}
		b.mu.Lock()
		b.stats.Subscriptions++
		b.mu.Unlock()
		b.unquenchAll()
		return
	}
	if err := b.match.Unsubscribe(pkt.Sender, f); err == nil {
		b.mu.Lock()
		b.stats.Unsubscriptions++
		b.mu.Unlock()
	}
}

func (b *Bus) processLoop() {
	defer b.wg.Done()
	for {
		select {
		case item := <-b.work:
			b.process(item)
		case <-b.done:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case item := <-b.work:
					b.process(item)
				default:
					return
				}
			}
		}
	}
}

// process matches one event and dispatches it to every interested
// subscriber's proxy or local handler.
func (b *Bus) process(item workItem) {
	if b.cost.enabled() {
		sleepCost(b.cost.IngestPerEvent + time.Duration(item.size)*b.cost.PerByte)
	}
	b.mu.Lock()
	b.stats.Published++
	b.mu.Unlock()

	targets := b.match.Match(item.e)
	if len(targets) == 0 {
		b.mu.Lock()
		b.stats.NoMatch++
		b.mu.Unlock()
		b.maybeQuench(item.e.Sender)
		return
	}
	b.mu.Lock()
	b.stats.Matched++
	b.mu.Unlock()

	for _, t := range targets {
		if ls := b.localService(t); ls != nil {
			ls.dispatch(item.e)
			b.mu.Lock()
			b.stats.DeliveredLocal++
			b.mu.Unlock()
			continue
		}
		ms, ok := b.memberState(t)
		if !ok {
			continue // purged between match and dispatch
		}
		if b.cost.enabled() {
			sleepCost(b.cost.DeliverPerEvent + time.Duration(item.size)*b.cost.PerByte)
		}
		// Each subscriber gets its own copy: proxies may translate
		// or queue independently.
		ms.px.Enqueue(item.e.Clone())
		b.mu.Lock()
		b.stats.EnqueuedRemote++
		b.mu.Unlock()
	}
}

// ---- quenching (§VI) ----

func (b *Bus) maybeQuench(sender ident.ID) {
	if !b.quenchOn || sender.IsNil() {
		return
	}
	b.mu.Lock()
	_, isMember := b.members[sender]
	already := b.quenched[sender]
	if isMember && !already {
		b.quenched[sender] = true
		b.stats.Quenches++
	}
	b.mu.Unlock()
	if isMember && !already {
		_ = b.ch.SendUnreliable(sender, wire.PktQuench, nil)
	}
}

func (b *Bus) unquenchAll() {
	b.mu.Lock()
	var ids []ident.ID
	for id := range b.quenched {
		ids = append(ids, id)
		delete(b.quenched, id)
	}
	b.stats.Unquenches += uint64(len(ids))
	b.mu.Unlock()
	for _, id := range ids {
		_ = b.ch.SendUnreliable(id, wire.PktUnquench, nil)
	}
}

// ---- helpers ----

func (b *Bus) bumpBad() {
	b.mu.Lock()
	b.stats.BadPackets++
	b.mu.Unlock()
}

func (b *Bus) bumpNonMember() {
	b.mu.Lock()
	b.stats.NonMember++
	b.mu.Unlock()
}

// sleepCost busy-waits for very short costs and sleeps for longer ones,
// keeping the model usable at sub-millisecond calibrations.
func sleepCost(d time.Duration) {
	if d <= 0 {
		return
	}
	if d < 500*time.Microsecond {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
		return
	}
	time.Sleep(d)
}
