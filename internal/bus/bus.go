// Package bus implements the SMC event bus (§III): a content-based
// publish/subscribe service with the delivery semantics of §II-C
// layered on top of a pluggable matching mechanism.
//
// The bus receives events from member services over the reliable
// channel (every hop acknowledged), matches them against installed
// subscriptions, and hands matching events to each subscriber's proxy,
// whose FIFO queue and resend logic maintain the ordering constraint
// and persistent delivery. Core services co-located with the bus
// (discovery, policy, bootstrap) attach as local services without
// crossing the network.
//
// The publish→match→deliver path is a sharded, allocation-free
// pipeline: events are hashed by publisher ID onto one of several
// worker shards (preserving the per-publisher FIFO guarantee of §II-C
// while unrelated publishers match in parallel), counters are atomic,
// membership is read from a copy-on-write snapshot, and one shared
// immutable event is delivered to every match instead of a deep clone
// per subscriber — the per-packet copying §V identifies as the
// dominant cost on the constrained host.
package bus

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/proxy"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/store"
	"github.com/amuse/smc/internal/wire"
)

var (
	// ErrClosed reports use of a closed bus.
	ErrClosed = errors.New("bus: closed")
	// ErrBusy reports a full processing queue (bounded memory).
	ErrBusy = errors.New("bus: processing queue full")
	// ErrNotMember reports traffic from a service that is not a
	// member of the SMC.
	ErrNotMember = errors.New("bus: not a member")
	// ErrUnauthorized reports a publish or subscribe denied by the
	// authorisation policy.
	ErrUnauthorized = errors.New("bus: unauthorized")
)

// Handler consumes events delivered to a local service. The event is
// shared with every other subscriber of the same publish and must be
// treated as read-only.
type Handler func(e *event.Event)

// Authorizer is consulted before member publishes and subscriptions
// are accepted; the policy service implements it (§II-A authorisation
// policies). A nil Authorizer admits everything.
type Authorizer interface {
	AuthorizePublish(member ident.ID, deviceType string, e *event.Event) error
	AuthorizeSubscribe(member ident.ID, deviceType string, f *event.Filter) error
}

// Cost models the processing overhead of the constrained host (the
// paper's PDA with a 2006-era JVM): a fixed cost per packet plus a
// per-byte cost for copies and OS↔runtime transfers (§V attributes the
// observed response-time growth to packet-data copying). Zero costs
// disable the model; benchmarks calibrate it per bus flavour as
// documented in EXPERIMENTS.md. When the model is disabled the bus
// skips event sizing entirely.
type Cost struct {
	IngestPerEvent  time.Duration
	DeliverPerEvent time.Duration
	PerByte         time.Duration
}

// enabled reports whether any cost is configured.
func (c Cost) enabled() bool {
	return c.IngestPerEvent > 0 || c.DeliverPerEvent > 0 || c.PerByte > 0
}

// Stats counts bus activity. A Stats value is a fold of per-shard
// counter blocks taken while dispatch keeps running, so it is a
// point-in-time observation, not a consistent cut: every counter is
// individually exact and monotonic, but counters read relative to each
// other may be mid-event (e.g. Published can momentarily exceed
// Matched+NoMatch while a shard is between the two increments). On a
// quiesced bus all invariants hold exactly.
type Stats struct {
	Published      uint64
	Matched        uint64
	NoMatch        uint64
	DeliveredLocal uint64
	EnqueuedRemote uint64
	Quenches       uint64
	Unquenches     uint64
	AuthDenied     uint64
	NonMember      uint64
	BadPackets     uint64
	// Dropped counts publishes shed because the processing queue was
	// full (ErrBusy) — overload, as distinct from the corruption
	// BadPackets counts.
	Dropped         uint64
	Subscriptions   uint64
	Unsubscriptions uint64
}

// busCounters is one atomic counter block. The bus keeps one block per
// shard worker plus one for the receive/control paths: each worker
// bumps only its own block, so the dispatch hot path's counter updates
// never contend on — or cache-line-bounce — state shared with another
// core. Stats folds the blocks on read.
type busCounters struct {
	published       atomic.Uint64
	matched         atomic.Uint64
	noMatch         atomic.Uint64
	deliveredLocal  atomic.Uint64
	enqueuedRemote  atomic.Uint64
	quenches        atomic.Uint64
	unquenches      atomic.Uint64
	authDenied      atomic.Uint64
	nonMember       atomic.Uint64
	badPackets      atomic.Uint64
	dropped         atomic.Uint64
	subscriptions   atomic.Uint64
	unsubscriptions atomic.Uint64
	// Pad the block to a multiple of 128 bytes (two cache lines, the
	// spatial-prefetcher granule) so adjacent shards' blocks never
	// share a line — false sharing would reintroduce exactly the
	// cross-core bouncing the per-shard split removes.
	_ [128 - (13*8)%128]byte
}

// foldStats sums counter blocks into a Stats snapshot.
func foldStats(blocks []busCounters) Stats {
	var s Stats
	for i := range blocks {
		c := &blocks[i]
		s.Published += c.published.Load()
		s.Matched += c.matched.Load()
		s.NoMatch += c.noMatch.Load()
		s.DeliveredLocal += c.deliveredLocal.Load()
		s.EnqueuedRemote += c.enqueuedRemote.Load()
		s.Quenches += c.quenches.Load()
		s.Unquenches += c.unquenches.Load()
		s.AuthDenied += c.authDenied.Load()
		s.NonMember += c.nonMember.Load()
		s.BadPackets += c.badPackets.Load()
		s.Dropped += c.dropped.Load()
		s.Subscriptions += c.subscriptions.Load()
		s.Unsubscriptions += c.unsubscriptions.Load()
	}
	return s
}

// Option configures a Bus.
type Option func(*Bus)

// WithAuthorizer installs an authorisation hook.
func WithAuthorizer(a Authorizer) Option {
	return func(b *Bus) { b.auth = a }
}

// WithCost installs a host processing-cost model.
func WithCost(c Cost) Option {
	return func(b *Bus) { b.cost = c }
}

// WithQuench enables publisher quenching (§VI): publishers whose events
// currently match no subscription are told to stop sending.
func WithQuench(on bool) Option {
	return func(b *Bus) { b.quenchOn = on }
}

// WithProxyConfig overrides proxy queue/redelivery tuning.
func WithProxyConfig(cfg proxy.Config) Option {
	return func(b *Bus) { b.proxyCfg = cfg }
}

// WithBatching enables outbound event coalescing on every member
// proxy: up to events frames or maxBytes of payload per batch packet,
// partial batches flushed after delay (see proxy.Config). It adjusts
// only the batching knobs, composing with WithProxyConfig regardless
// of option order. events <= 1 disables batching.
func WithBatching(events, maxBytes int, delay time.Duration) Option {
	return func(b *Bus) {
		b.batchEvents, b.batchBytes, b.batchDelay = events, maxBytes, delay
	}
}

// WithQueueDepth sets the processing queue depth of each worker shard.
// A publisher's burst capacity is its shard's depth — the same bound a
// single-loop bus with this depth gives — while total queued events
// are bounded by depth × shards.
func WithQueueDepth(n int) Option {
	return func(b *Bus) {
		if n > 0 {
			b.queueDepth = n
		}
	}
}

// WithShards sets the number of pipeline worker shards. Events are
// hashed by publisher ID onto a shard, so one publisher's events are
// always processed by one worker in FIFO order while different
// publishers proceed in parallel. The default is GOMAXPROCS.
func WithShards(n int) Option {
	return func(b *Bus) {
		if n > 0 {
			b.shards = n
		}
	}
}

// membership is the immutable copy-on-write membership snapshot read
// lock-free by the receive and dispatch paths; it is rebuilt under
// Bus.mu whenever a member or local service is added or removed.
// targets unions members and locals so dispatch resolves each match
// with a single map probe.
type membership struct {
	members map[ident.ID]*memberState
	locals  map[ident.ID]*LocalService
	targets map[ident.ID]target
}

// target is one dispatch destination: exactly one field is set.
type target struct {
	ls *LocalService
	ms *memberState
}

var emptyMembership = &membership{
	members: map[ident.ID]*memberState{},
	locals:  map[ident.ID]*LocalService{},
	targets: map[ident.ID]target{},
}

// Bus is the event bus.
type Bus struct {
	ch       *reliable.Channel
	match    matcher.Matcher
	registry *bootstrap.Registry
	// scratchMatch is match when it supports caller-owned scratch
	// (every in-tree matcher does); nil otherwise. Resolved once in
	// New so the hot path pays no per-event type assertion.
	scratchMatch matcher.ScratchMatcher
	// evFree recycles the receive loop's decoded events owner-locally:
	// remote traffic circulates through this bus's own events instead
	// of crossing the global event pool per packet.
	evFree *event.FreeList

	auth       Authorizer
	cost       Cost
	quenchOn   bool
	proxyCfg   proxy.Config
	queueDepth int
	shards     int

	// WithBatching overlay, folded into proxyCfg after options run.
	batchEvents int
	batchBytes  int
	batchDelay  time.Duration

	// snap is the membership snapshot for the hot path; members and
	// locals below are the canonical maps, mutated under mu only.
	snap atomic.Pointer[membership]

	mu       sync.Mutex
	members  map[ident.ID]*memberState
	locals   map[ident.ID]*LocalService
	quenched map[ident.ID]bool
	extra    []*reliable.Channel
	nextLoc  uint64
	closed   atomic.Bool // written under mu; read lock-free

	// Durable subscriptions (durable.go). log is set once by
	// WithDurableLog; the maps are guarded by durMu (never nested
	// inside mu). durFilters counts installed durable filters so the
	// quench path can tell, without the lock, that publishes matter
	// even when the matcher finds no live subscriber.
	log         *store.Log
	durMu       sync.Mutex
	durables    map[string]*durableState
	durByMember map[ident.ID]*durableState
	durFilters  atomic.Int64

	// ctrs holds one padded counter block per shard worker plus a
	// final block for the receive/control paths (index len-1).
	ctrs []busCounters

	workers []*shardWorker
	done    chan struct{}
	wg      sync.WaitGroup
}

type memberState struct {
	deviceType string
	px         *proxy.Proxy
	// via is the channel the member is reachable on (the proxy's
	// sender); control replies like PktDurableAck go through it so
	// they share the proxy's per-destination FIFO stream.
	via proxy.Sender
}

// shardWorker is one pipeline worker: its own bounded queue plus
// per-shard scratch, reused across events so dispatch does not
// allocate. The matcher scratch and the counter block are plain
// per-worker state — they never cross a sync.Pool or touch another
// shard's cache lines.
type shardWorker struct {
	work    chan workItem
	targets []ident.ID
	sc      *matcher.Scratch
	ctr     *busCounters
}

type workItem struct {
	e    *event.Event
	size int // encoded size for the cost model; 0 when the model is off
}

// New builds a bus over a reliable channel with the given matching
// mechanism and proxy factory registry. The bus owns the channel and
// closes it on Close. Call Start to begin processing.
func New(ch *reliable.Channel, m matcher.Matcher, reg *bootstrap.Registry, opts ...Option) *Bus {
	b := &Bus{
		ch:          ch,
		match:       m,
		registry:    reg,
		proxyCfg:    proxy.DefaultConfig(),
		queueDepth:  4096,
		shards:      runtime.GOMAXPROCS(0),
		members:     make(map[ident.ID]*memberState),
		locals:      make(map[ident.ID]*LocalService),
		quenched:    make(map[ident.ID]bool),
		durables:    make(map[string]*durableState),
		durByMember: make(map[ident.ID]*durableState),
		done:        make(chan struct{}),
	}
	b.snap.Store(emptyMembership)
	for _, o := range opts {
		o(b)
	}
	if b.batchEvents > 0 {
		b.proxyCfg.BatchEvents = b.batchEvents
		b.proxyCfg.BatchBytes = b.batchBytes
		b.proxyCfg.FlushDelay = b.batchDelay
	}
	if b.shards < 1 {
		b.shards = 1
	}
	b.scratchMatch, _ = m.(matcher.ScratchMatcher)
	b.evFree = event.NewFreeList(b.queueDepth / 4)
	b.ctrs = make([]busCounters, b.shards+1)
	b.workers = make([]*shardWorker, b.shards)
	for i := range b.workers {
		b.workers[i] = &shardWorker{
			work: make(chan workItem, b.queueDepth),
			sc:   matcher.NewScratch(),
			ctr:  &b.ctrs[i],
		}
	}
	return b
}

// ctl is the counter block of the receive/control paths (everything
// that is not a shard worker).
func (b *Bus) ctl() *busCounters { return &b.ctrs[len(b.ctrs)-1] }

// ID returns the bus's service ID on the network.
func (b *Bus) ID() ident.ID { return b.ch.LocalID() }

// SetAuthorizer installs the authorisation hook. It must be called
// before Start (the policy engine is constructed on top of the bus, so
// it cannot be passed to New).
func (b *Bus) SetAuthorizer(a Authorizer) { b.auth = a }

// MatcherName reports the active matching mechanism.
func (b *Bus) MatcherName() string { return b.match.Name() }

// Shards reports the number of pipeline worker shards.
func (b *Bus) Shards() int { return b.shards }

// Stats folds the per-shard counter blocks into one snapshot. See the
// Stats type for the point-in-time semantics of a fold taken while
// dispatch is running.
func (b *Bus) Stats() Stats { return foldStats(b.ctrs) }

// Start launches the receive loop and the shard workers.
func (b *Bus) Start() {
	b.wg.Add(1 + len(b.workers))
	go func() {
		defer b.wg.Done()
		b.recvFrom(b.ch)
	}()
	for _, w := range b.workers {
		go b.shardLoop(w)
	}
}

// AttachChannel routes packets arriving on an additional reliable
// channel into the bus. This realises §III-B's note that "a proxy
// would be able to generate its own transport layer to facilitate
// communication over a different network transport" — e.g. a
// diagnostic device connected to the SMC via an Ethernet segment while
// the body sensors use the wireless one. The bus owns the channel from
// here on and closes it on Close. Call before or after Start, but
// before traffic is expected on the channel.
func (b *Bus) AttachChannel(ch *reliable.Channel) {
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		_ = ch.Close()
		return
	}
	b.extra = append(b.extra, ch)
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.recvFrom(ch)
	}()
}

// AddMemberVia admits a member whose proxy sends through a dedicated
// channel instead of the bus's main endpoint (per-proxy transport,
// §III-B). The channel must have been attached with AttachChannel for
// the member's inbound traffic to reach the bus.
func (b *Bus) AddMemberVia(id ident.ID, deviceType, name string, via proxy.Sender) error {
	return b.addMember(id, deviceType, name, via)
}

// Close shuts the bus down: the channel closes, loops drain, and every
// proxy is purged.
func (b *Bus) Close() error {
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		return nil
	}
	b.closed.Store(true)
	members := make([]*memberState, 0, len(b.members))
	for _, ms := range b.members {
		members = append(members, ms)
	}
	b.members = make(map[ident.ID]*memberState)
	b.locals = make(map[ident.ID]*LocalService)
	b.snap.Store(emptyMembership)
	extra := b.extra
	b.extra = nil
	b.mu.Unlock()

	b.stopWalkers()
	err := b.ch.Close()
	for _, ch := range extra {
		_ = ch.Close()
	}
	close(b.done)
	b.wg.Wait()
	for _, ms := range members {
		ms.px.Purge()
	}
	if b.log != nil {
		if lerr := b.log.Close(); err == nil {
			err = lerr
		}
	}
	return err
}

// ---- membership ----

// rebuildSnapshot publishes a fresh immutable membership snapshot from
// the canonical maps. Caller holds b.mu.
func (b *Bus) rebuildSnapshot() {
	snap := &membership{
		members: make(map[ident.ID]*memberState, len(b.members)),
		locals:  make(map[ident.ID]*LocalService, len(b.locals)),
		targets: make(map[ident.ID]target, len(b.members)+len(b.locals)),
	}
	for id, ms := range b.members {
		snap.members[id] = ms
		snap.targets[id] = target{ms: ms}
	}
	for id, ls := range b.locals {
		snap.locals[id] = ls
		snap.targets[id] = target{ls: ls}
	}
	b.snap.Store(snap)
}

// AddMember admits a service: a proxy of the appropriate concrete type
// is created via the bootstrap registry (§III-C), started, and its
// initial subscriptions installed.
func (b *Bus) AddMember(id ident.ID, deviceType, name string) error {
	return b.addMember(id, deviceType, name, b.ch)
}

func (b *Bus) addMember(id ident.ID, deviceType, name string, via proxy.Sender) error {
	b.mu.Lock()
	if b.closed.Load() {
		b.mu.Unlock()
		return ErrClosed
	}
	if _, dup := b.members[id]; dup {
		b.mu.Unlock()
		return fmt.Errorf("bus: member %s already present", id)
	}
	dev := b.registry.Make(deviceType, id, name)
	px := proxy.New(id, dev, via, func(e *event.Event) error {
		return b.enqueuePublish(e)
	}, b.proxyCfg)
	b.members[id] = &memberState{deviceType: deviceType, px: px, via: via}
	b.rebuildSnapshot()
	b.mu.Unlock()

	px.Start()
	for _, f := range px.InitialSubscriptions() {
		if err := b.match.Subscribe(id, f); err != nil {
			return fmt.Errorf("bus: initial subscription for %s: %w", id, err)
		}
	}
	return nil
}

// RemoveMember purges a member: subscriptions are removed, the proxy
// destroys itself discarding queued deliveries, and reliability state
// is forgotten so a returning device starts a clean stream.
func (b *Bus) RemoveMember(id ident.ID) {
	b.mu.Lock()
	ms, ok := b.members[id]
	if ok {
		delete(b.members, id)
		b.rebuildSnapshot()
	}
	delete(b.quenched, id)
	b.mu.Unlock()
	if !ok {
		return
	}
	b.detachDurable(id)
	b.match.UnsubscribeAll(id)
	ms.px.Purge()
	b.ch.Forget(id)
}

// Members lists current member IDs.
func (b *Bus) Members() []ident.ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ident.ID, 0, len(b.members))
	for id := range b.members {
		out = append(out, id)
	}
	return out
}

// MemberProxy exposes a member's proxy (nil when absent); used by
// integration tests and stats collection.
func (b *Bus) MemberProxy(id ident.ID) *proxy.Proxy {
	ms, ok := b.memberState(id)
	if !ok {
		return nil
	}
	return ms.px
}

// memberState resolves a member from the lock-free snapshot.
func (b *Bus) memberState(id ident.ID) (*memberState, bool) {
	ms, ok := b.snap.Load().members[id]
	return ms, ok
}

// ---- publish path ----

// shardFor maps a publisher ID onto a worker shard. Fibonacci hashing
// spreads the address-derived ID space evenly; one publisher always
// lands on the same shard, preserving its FIFO order.
func (b *Bus) shardFor(sender ident.ID) *shardWorker {
	if len(b.workers) == 1 {
		return b.workers[0]
	}
	h := uint64(sender) * 0x9E3779B97F4A7C15
	return b.workers[(h>>32)%uint64(len(b.workers))]
}

// enqueuePublish hands an event to its publisher's shard. The encoded
// size is computed — without encoding — only when the cost model needs
// it.
func (b *Bus) enqueuePublish(e *event.Event) error {
	if b.closed.Load() {
		return ErrClosed
	}
	var item workItem
	item.e = e
	if b.cost.enabled() {
		item.size = wire.HeaderLen + wire.EventSize(e)
	}
	select {
	case b.shardFor(e.Sender).work <- item:
		return nil
	case <-b.done:
		return ErrClosed
	default:
		return ErrBusy
	}
}

func (b *Bus) recvFrom(ch *reliable.Channel) {
	for {
		pkt, err := ch.Recv()
		if err != nil {
			return
		}
		b.handlePacket(pkt)
		// Drop the receive loop's reference. This is NOT necessarily
		// the last one: the borrowing event decode retains the packet
		// and aliases its payload into the decoded event, so the
		// buffer stays live until dispatch releases that event.
		pkt.Release()
	}
}

func (b *Bus) handlePacket(pkt *wire.Packet) {
	switch pkt.Type {
	case wire.PktEvent:
		b.handleEventPacket(pkt)
	case wire.PktData:
		b.handleDataPacket(pkt)
	case wire.PktSubscribe, wire.PktUnsubscribe:
		b.handleSubscriptionPacket(pkt)
	case wire.PktDurableResume:
		b.handleDurableResume(pkt)
	default:
		// Discovery/control traffic does not belong on the bus
		// endpoint (the discovery protocol "does not use the event
		// bus", §II-B).
		b.ctl().badPackets.Add(1)
	}
}

func (b *Bus) handleEventPacket(pkt *wire.Packet) {
	ms, ok := b.memberState(pkt.Sender)
	if !ok {
		b.ctl().nonMember.Add(1)
		return
	}
	if pkt.Flags&wire.FlagBatch != 0 {
		b.handleEventBatch(ms, pkt)
		return
	}
	// Borrowing decode into a pooled event: attribute names resolve
	// through the intern table or alias the packet payload (the event
	// holds a packet reference until its own storage is reclaimed), so
	// the deliver-and-drop path copies no strings. Downstream this
	// means remote-published events follow the pooled-event contract
	// local pooled publishes already set: subscribers Clone whatever
	// they keep past the handler callback.
	e := b.evFree.Acquire()
	if err := wire.DecodeEventInto(e, pkt); err != nil {
		e.Release()
		b.ctl().badPackets.Add(1)
		return
	}
	// Anti-spoofing: a member's events carry its own identity, no
	// matter what the payload claims.
	e.Sender = pkt.Sender
	if e.Seq == 0 {
		e.Seq = pkt.Seq
	}
	if b.auth != nil {
		if err := b.auth.AuthorizePublish(pkt.Sender, ms.deviceType, e); err != nil {
			e.Release()
			b.ctl().authDenied.Add(1)
			return
		}
	}
	if err := b.enqueuePublish(e); err != nil {
		e.Release()
		if errors.Is(err, ErrBusy) {
			b.ctl().dropped.Add(1) // overload, not corruption
		} else {
			b.ctl().badPackets.Add(1)
		}
	}
}

// handleEventBatch unpacks a FlagBatch payload: each frame decodes —
// borrowing — into its own pooled event carrying an independent
// reference on the shared packet, then runs the same per-event
// admission (anti-spoofing, authorisation, shard enqueue) as a
// standalone publish. A corrupt frame stops the batch (frame bounds
// are length-prefixed, so nothing after a bad prefix can be trusted)
// but events already admitted stay admitted, matching the sender's
// FIFO prefix semantics.
func (b *Bus) handleEventBatch(ms *memberState, pkt *wire.Packet) {
	r, err := wire.NewBatchReader(pkt.Payload)
	if err != nil {
		b.ctl().badPackets.Add(1)
		return
	}
	for r.More() {
		frame, err := r.Next()
		if err != nil {
			b.ctl().badPackets.Add(1)
			return
		}
		e := b.evFree.Acquire()
		if err := wire.DecodeBatchFrameInto(e, frame, pkt); err != nil {
			e.Release()
			b.ctl().badPackets.Add(1)
			return
		}
		// Anti-spoofing, per frame: the batch's events carry the
		// member's own identity no matter what each frame claims.
		e.Sender = pkt.Sender
		if e.Seq == 0 {
			e.Seq = pkt.Seq
		}
		if b.auth != nil {
			if err := b.auth.AuthorizePublish(pkt.Sender, ms.deviceType, e); err != nil {
				e.Release()
				b.ctl().authDenied.Add(1)
				continue
			}
		}
		if err := b.enqueuePublish(e); err != nil {
			e.Release()
			if errors.Is(err, ErrBusy) {
				b.ctl().dropped.Add(1)
			} else {
				b.ctl().badPackets.Add(1)
			}
		}
	}
}

func (b *Bus) handleDataPacket(pkt *wire.Packet) {
	ms, ok := b.memberState(pkt.Sender)
	if !ok {
		b.ctl().nonMember.Add(1)
		return
	}
	// Raw device bytes: the member's proxy performs the
	// pre-processing into fully fledged event objects (§III-B).
	if err := ms.px.HandleInbound(pkt.Payload); err != nil {
		if errors.Is(err, ErrBusy) {
			b.ctl().dropped.Add(1)
		} else {
			b.ctl().badPackets.Add(1)
		}
	}
}

func (b *Bus) handleSubscriptionPacket(pkt *wire.Packet) {
	ms, ok := b.memberState(pkt.Sender)
	if !ok {
		b.ctl().nonMember.Add(1)
		return
	}
	f, err := wire.DecodeFilter(pkt.Payload)
	if err != nil {
		b.ctl().badPackets.Add(1)
		return
	}
	// A member bound to a durable consumer keeps its filters in the
	// consumer's server-side state, never in the matcher: it is fed
	// from the log by its walker, not by live dispatch (durable.go).
	if b.handleDurableSubscription(pkt, ms, f) {
		return
	}
	if pkt.Type == wire.PktSubscribe {
		if b.auth != nil {
			if err := b.auth.AuthorizeSubscribe(pkt.Sender, ms.deviceType, f); err != nil {
				b.ctl().authDenied.Add(1)
				return
			}
		}
		if err := b.match.Subscribe(pkt.Sender, f); err != nil {
			b.ctl().badPackets.Add(1)
			return
		}
		b.ctl().subscriptions.Add(1)
		b.unquenchAll()
		return
	}
	if err := b.match.Unsubscribe(pkt.Sender, f); err == nil {
		b.ctl().unsubscriptions.Add(1)
	}
}

// shardLoop drains one shard's queue until the bus closes, then drains
// whatever is already queued and stops.
func (b *Bus) shardLoop(w *shardWorker) {
	defer b.wg.Done()
	for {
		select {
		case item := <-w.work:
			b.process(w, item)
		case <-b.done:
			for {
				select {
				case item := <-w.work:
					b.process(w, item)
				default:
					return
				}
			}
		}
	}
}

// process matches one event and dispatches it to every interested
// subscriber's proxy or local handler. The event is delivered shared
// and immutable: proxies and handlers must not mutate it (proxies
// whose devices do mutate clone on write — see proxy.EventMutator).
//
// The bus owns the publisher's reference on the event for the duration
// of dispatch: each proxy takes its own reference when it enqueues the
// event, and the bus releases its reference at the end — for an event
// from event.Acquire with a purely local fan-out, that is the moment
// it recycles, which is why local subscribers of pooled traffic must
// Clone anything they keep beyond the handler callback. Events from
// event.New are unaffected (Release is a no-op).
func (b *Bus) process(w *shardWorker, item workItem) {
	if b.cost.enabled() {
		sleepCost(b.cost.IngestPerEvent + time.Duration(item.size)*b.cost.PerByte)
	}
	w.ctr.published.Add(1)

	if b.log != nil {
		// Append before match: the log is the source of truth for
		// durable consumers, and the append lock serialises cursor
		// assignment across shards. A publish suppressed by the
		// publisher dedup window is dropped whole — no live dispatch
		// either, so redelivery after a sender restart is idempotent
		// for live and durable subscribers alike.
		var dedupID int64
		hasDedup := false
		if v, ok := item.e.Get(store.AttrDedup); ok {
			dedupID, hasDedup = v.Int()
		}
		if _, dup := b.log.Append(item.e, dedupID, hasDedup); dup {
			item.e.Release()
			return
		}
	}

	if b.scratchMatch != nil {
		w.targets = b.scratchMatch.MatchAppendScratch(item.e, w.targets[:0], w.sc)
	} else {
		w.targets = b.match.MatchAppend(item.e, w.targets[:0])
	}
	if len(w.targets) == 0 {
		w.ctr.noMatch.Add(1)
		b.maybeQuench(item.e.Sender)
		item.e.Release()
		return
	}
	w.ctr.matched.Add(1)

	snap := b.snap.Load()
	var nLocal, nRemote uint64
	for _, t := range w.targets {
		tgt, ok := snap.targets[t]
		switch {
		case !ok:
			continue // purged between match and dispatch
		case tgt.ls != nil:
			tgt.ls.dispatch(item.e)
			nLocal++
		default:
			if b.cost.enabled() {
				sleepCost(b.cost.DeliverPerEvent + time.Duration(item.size)*b.cost.PerByte)
			}
			tgt.ms.px.Enqueue(item.e)
			nRemote++
		}
	}
	if nLocal > 0 {
		w.ctr.deliveredLocal.Add(nLocal)
	}
	if nRemote > 0 {
		w.ctr.enqueuedRemote.Add(nRemote)
	}
	item.e.Release()
}

// ---- quenching (§VI) ----

func (b *Bus) maybeQuench(sender ident.ID) {
	if !b.quenchOn || sender.IsNil() {
		return
	}
	// Durable filters live outside the matcher, so a no-match event may
	// still matter: it is in the log and a walker may deliver it. Never
	// quench a publisher while any durable filter is installed — a
	// quenched publisher stops sending and the log would have gaps.
	if b.log != nil && b.durFilters.Load() > 0 {
		return
	}
	b.mu.Lock()
	_, isMember := b.members[sender]
	already := b.quenched[sender]
	if isMember && !already {
		b.quenched[sender] = true
		b.ctl().quenches.Add(1)
	}
	b.mu.Unlock()
	if isMember && !already {
		_ = b.ch.SendUnreliable(sender, wire.PktQuench, nil)
	}
}

func (b *Bus) unquenchAll() {
	b.mu.Lock()
	var ids []ident.ID
	for id := range b.quenched {
		ids = append(ids, id)
		delete(b.quenched, id)
	}
	b.ctl().unquenches.Add(uint64(len(ids)))
	b.mu.Unlock()
	for _, id := range ids {
		_ = b.ch.SendUnreliable(id, wire.PktUnquench, nil)
	}
}

// ---- helpers ----

// sleepCost busy-waits for very short costs and sleeps for longer ones,
// keeping the model usable at sub-millisecond calibrations.
func sleepCost(d time.Duration) {
	if d <= 0 {
		return
	}
	if d < 500*time.Microsecond {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
		return
	}
	time.Sleep(d)
}
