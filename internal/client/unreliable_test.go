package client_test

import (
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/sensor"
)

// TestPublishRawUnreliableEndToEnd sends NoAck native data through the
// bus: the proxy still translates and routes it, but the client never
// blocks on an acknowledgement.
func TestPublishRawUnreliableEndToEnd(t *testing.T) {
	r := newRig(t)
	hr := r.client(t, 1, sensor.DeviceTypeHeartRate, "hr-1")
	mon := r.client(t, 2, "generic", "monitor")
	if err := mon.Subscribe(event.NewFilter().WhereType(sensor.TypeReading)); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		reading := sensor.Reading{
			Kind: sensor.KindHeartRate, Seq: uint16(i + 1), Millis: int64(i), Value: 70,
		}
		if err := hr.PublishRawUnreliable(sensor.EncodeReading(reading)); err != nil {
			t.Fatalf("unreliable publish %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		e, err := mon.NextEvent(3 * time.Second)
		if err != nil {
			t.Fatalf("reading %d: %v", i, err)
		}
		if v, _ := e.Get(sensor.AttrSeq); !v.Equal(event.Int(int64(i + 1))) {
			t.Fatalf("reading %d has seq %s", i, v)
		}
	}
	if hr.Stats().Published != 5 {
		t.Errorf("published = %d", hr.Stats().Published)
	}
}
