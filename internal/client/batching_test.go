package client_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/wire"
)

// batchRig is a bus with batching enabled on its member proxies, over
// a configurable link profile, with direct access to each client's
// reliable channel so tests can assert on batch counters.
type batchRig struct {
	net *netsim.Network
	bus *bus.Bus
}

func newBatchRig(t *testing.T, p netsim.Profile, seed int64, busOpts ...bus.Option) *batchRig {
	t.Helper()
	n := netsim.New(p, netsim.WithSeed(seed))
	tr, err := n.Attach(ident.New(busID))
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New(reliable.New(tr, relCfg()), matcher.NewFast(), newRegistry(), busOpts...)
	b.Start()
	t.Cleanup(func() {
		b.Close()
		n.Close()
	})
	return &batchRig{net: n, bus: b}
}

func (r *batchRig) client(t *testing.T, id uint64, opts ...client.Option) (*client.Client, *reliable.Channel) {
	t.Helper()
	tr, err := r.net.Attach(ident.New(id))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.bus.AddMember(ident.New(id), "generic", "dev"); err != nil {
		t.Fatal(err)
	}
	ch := reliable.New(tr, relCfg())
	c := client.New(ch, ident.New(busID), opts...)
	t.Cleanup(func() { c.Close() })
	return c, ch
}

// drainOrdered receives n events and checks the per-publisher FIFO
// contract: the "n" attribute (and the client-stamped Seq) must arrive
// strictly ascending, batched or not. It returns rather than fails so
// it can run concurrently with publishing (the subscriber inbox is a
// bounded buffer; a test that publishes everything before draining
// would overflow it).
func drainOrdered(sub *client.Client, n int) error {
	next := int64(0)
	for next < int64(n) {
		e, err := sub.NextEvent(20 * time.Second)
		if err != nil {
			return fmt.Errorf("after %d/%d events: %w", next, n, err)
		}
		v, ok := e.Get("n")
		got, _ := v.Int()
		if !ok || got != next {
			return fmt.Errorf("event %d: n = %d (ok=%v), want %d", next, got, ok, next)
		}
		if e.Seq != uint64(next+1) {
			return fmt.Errorf("event %d: seq = %d, want %d", next, e.Seq, next+1)
		}
		e.Release()
		next++
	}
	return nil
}

// TestBatchingEndToEnd drives the full member→bus→member path with
// batching enabled at both ends, across link profiles (including the
// loss/duplication/reorder torture profile) and both flush triggers:
// "burst" publishes asynchronously so batches fill and flush on size,
// "trickle" publishes synchronously so every batch is cut by the flush
// deadline instead.
func TestBatchingEndToEnd(t *testing.T) {
	const events = 300
	profiles := []netsim.Profile{netsim.Perfect, netsim.Torture}
	modes := []string{"burst", "trickle"}
	for _, p := range profiles {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", p.Name, mode), func(t *testing.T) {
				n := events
				if mode == "trickle" {
					n = 40 // sync publishes pay a deadline flush each
				}
				r := newBatchRig(t, p, 99, bus.WithBatching(16, 0, 0))
				pub, pubCh := r.client(t, 1,
					client.WithPublishBatching(16, 0, 500*time.Microsecond))
				sub, _ := r.client(t, 2)
				if err := sub.Subscribe(event.NewFilter().WhereType("x")); err != nil {
					t.Fatal(err)
				}

				drained := make(chan error, 1)
				go func() { drained <- drainOrdered(sub, n) }()
				if mode == "burst" {
					comps := make([]*reliable.Completion, 0, n)
					for i := 0; i < n; i++ {
						comp, err := pub.PublishAsync(event.NewTyped("x").SetInt("n", int64(i)))
						if err != nil {
							t.Fatal(err)
						}
						comps = append(comps, comp)
					}
					for i, comp := range comps {
						if err := comp.Wait(); err != nil {
							t.Fatalf("publish %d: %v", i, err)
						}
						comp.Recycle()
					}
				} else {
					for i := 0; i < n; i++ {
						if err := pub.Publish(event.NewTyped("x").SetInt("n", int64(i))); err != nil {
							t.Fatalf("publish %d: %v", i, err)
						}
					}
				}
				if err := <-drained; err != nil {
					t.Fatal(err)
				}

				// The publisher's channel must actually have sent
				// batches — flush-on-size in burst mode, flush-on-
				// deadline in trickle mode (every publish becomes a
				// deadline-cut one-frame batch).
				if got := pubCh.Stats().BatchesSent; got == 0 {
					t.Errorf("publisher sent no batches (stats %+v)", pubCh.Stats())
				}
				if got := pub.Stats().Published; got != uint64(n) {
					t.Errorf("Published = %d, want %d", got, n)
				}
			})
		}
	}
}

// TestProxyBatchDeliveryUnderTorture loads the bus→member direction:
// a slow lossy link makes the subscriber's proxy queue build up, so
// the proxy's gatherBatch coalesces deliveries into batch packets that
// then survive loss, duplication and reordering.
func TestProxyBatchDeliveryUnderTorture(t *testing.T) {
	const events = 300
	r := newBatchRig(t, netsim.Torture, 7, bus.WithBatching(16, 0, 0))
	pub, _ := r.client(t, 1)
	sub, _ := r.client(t, 2)
	if err := sub.Subscribe(event.NewFilter().WhereType("x")); err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- drainOrdered(sub, events) }()
	comps := make([]*reliable.Completion, 0, events)
	for i := 0; i < events; i++ {
		comp, err := pub.PublishAsync(event.NewTyped("x").SetInt("n", int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, comp)
	}
	for i, comp := range comps {
		if err := comp.Wait(); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		comp.Recycle()
	}
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	// Delivered counts *acknowledged* events; the subscriber has seen
	// all 300 but the acks for the last batches may still be crossing
	// the lossy link. Poll for convergence.
	deadline := time.Now().Add(10 * time.Second)
	var st = r.bus.MemberProxy(ident.New(2)).Stats()
	for st.Delivered < uint64(events) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		st = r.bus.MemberProxy(ident.New(2)).Stats()
	}
	if st.Batches == 0 {
		t.Errorf("subscriber proxy coalesced no batches (stats %+v)", st)
	}
	if st.Delivered != uint64(events) {
		t.Errorf("Delivered = %d, want %d", st.Delivered, events)
	}
}

// TestBatchingRawDataOrdering checks the FIFO-break path: raw device
// data flushing the pending publish batch so it cannot overtake events
// accepted earlier.
func TestBatchingRawDataOrdering(t *testing.T) {
	r := newBatchRig(t, netsim.Perfect, 3, bus.WithBatching(16, 0, 0))
	pub, _ := r.client(t, 1, client.WithPublishBatching(16, 0, 50*time.Millisecond))
	sub, _ := r.client(t, 2)
	if err := sub.Subscribe(event.NewFilter().WhereType("x")); err != nil {
		t.Fatal(err)
	}
	// Two batched events, then raw data (generic proxy decodes it as an
	// event): the long flush delay means only the raw publish's
	// implicit Flush can have pushed the batch out first.
	for i := 0; i < 2; i++ {
		if _, err := pub.PublishAsync(event.NewTyped("x").SetInt("n", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	raw := event.NewTyped("x").SetInt("n", 2)
	raw.Sender = pub.ID()
	if err := pub.PublishRaw(wire.EncodeEvent(raw)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e, err := sub.NextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		v, _ := e.Get("n")
		if got, _ := v.Int(); got != int64(i) {
			t.Fatalf("event %d: n = %d (raw data overtook the batch)", i, got)
		}
		e.Release()
	}
}
