package client_test

import (
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/proxy"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/sensor"
)

const busID = 0xB000

type rig struct {
	net *netsim.Network
	bus *bus.Bus
}

func relCfg() reliable.Config {
	return reliable.Config{
		RetryTimeout:    20 * time.Millisecond,
		MaxRetryTimeout: 100 * time.Millisecond,
		MaxRetries:      15,
	}
}

func newRig(t *testing.T, opts ...bus.Option) *rig {
	t.Helper()
	n := netsim.New(netsim.Perfect, netsim.WithSeed(71))
	tr, err := n.Attach(ident.New(busID))
	if err != nil {
		t.Fatal(err)
	}
	b := bus.New(reliable.New(tr, relCfg()), matcher.NewFast(), newRegistry(), opts...)
	b.Start()
	t.Cleanup(func() {
		b.Close()
		n.Close()
	})
	return &rig{net: n, bus: b}
}

func newRegistry() *bootstrap.Registry {
	reg := bootstrap.NewRegistry()
	_ = reg.Register(sensor.DeviceTypeHeartRate, func(_ ident.ID, _ string) proxy.Device {
		return sensor.NewSensorProxyDevice(sensor.DeviceTypeHeartRate)
	})
	_ = reg.Register(sensor.DeviceTypeDefib, func(_ ident.ID, name string) proxy.Device {
		return sensor.NewActuatorProxyDevice(sensor.DeviceTypeDefib, name)
	})
	return reg
}

func (r *rig) client(t *testing.T, id uint64, deviceType, name string) *client.Client {
	t.Helper()
	tr, err := r.net.Attach(ident.New(id))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.bus.AddMember(ident.New(id), deviceType, name); err != nil {
		t.Fatal(err)
	}
	c := client.New(reliable.New(tr, relCfg()), ident.New(busID))
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientPublishSubscribe(t *testing.T) {
	r := newRig(t)
	pub := r.client(t, 1, "generic", "p")
	sub := r.client(t, 2, "generic", "s")

	if err := sub.Subscribe(event.NewFilter().WhereType("x")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(event.NewTyped("x").SetInt("n", 7)); err != nil {
		t.Fatal(err)
	}
	e, err := sub.NextEvent(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type() != "x" || e.Sender != pub.ID() || e.Seq != 1 {
		t.Errorf("event = %s", e)
	}
	if pub.Stats().Published != 1 || sub.Stats().EventsReceived != 1 {
		t.Errorf("stats = %+v / %+v", pub.Stats(), sub.Stats())
	}
	if pub.BusID() != ident.New(busID) {
		t.Errorf("BusID = %s", pub.BusID())
	}
}

func TestClientSeqIncrements(t *testing.T) {
	r := newRig(t)
	pub := r.client(t, 1, "generic", "p")
	sub := r.client(t, 2, "generic", "s")
	if err := sub.Subscribe(event.NewFilter().WhereType("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := pub.Publish(event.NewTyped("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		e, err := sub.NextEvent(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", e.Seq, i+1)
		}
	}
}

func TestClientUnsubscribe(t *testing.T) {
	r := newRig(t)
	pub := r.client(t, 1, "generic", "p")
	sub := r.client(t, 2, "generic", "s")
	f := event.NewFilter().WhereType("x")
	if err := sub.Subscribe(f); err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(f); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish(event.NewTyped("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.NextEvent(200 * time.Millisecond); err == nil {
		t.Error("delivery after unsubscribe")
	}
}

func TestClientValidatesEvents(t *testing.T) {
	r := newRig(t)
	pub := r.client(t, 1, "generic", "p")
	bad := event.New().Set("", event.Int(1))
	if err := pub.Publish(bad); err == nil {
		t.Error("invalid event published")
	}
	badFilter := event.NewFilter().Where("", event.OpEq, event.Int(1))
	if err := pub.Subscribe(badFilter); err == nil {
		t.Error("invalid filter subscribed")
	}
}

func TestClientRawPathThroughSensorProxy(t *testing.T) {
	r := newRig(t)
	hr := r.client(t, 1, sensor.DeviceTypeHeartRate, "hr-1")
	mon := r.client(t, 2, "generic", "monitor")
	if err := mon.Subscribe(event.NewFilter().WhereType(sensor.TypeReading)); err != nil {
		t.Fatal(err)
	}
	reading := sensor.Reading{Kind: sensor.KindHeartRate, Seq: 9, Millis: 5, Value: 64}
	if err := hr.PublishRaw(sensor.EncodeReading(reading)); err != nil {
		t.Fatal(err)
	}
	e, err := mon.NextEvent(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Get(sensor.AttrValue); !v.Equal(event.Float(64)) {
		t.Errorf("value = %s", v)
	}
}

func TestClientDataChannelForActuator(t *testing.T) {
	r := newRig(t)
	defib := r.client(t, 1, sensor.DeviceTypeDefib, "defib-1")
	ctrl := r.client(t, 2, "generic", "controller")

	cmd := event.NewTyped(sensor.TypeActuate).
		SetStr(sensor.AttrTarget, "defib-1").
		SetStr(sensor.AttrAction, "analyse")
	if err := ctrl.Publish(cmd); err != nil {
		t.Fatal(err)
	}
	select {
	case raw := <-defib.Data():
		c, err := sensor.DecodeCommand(raw)
		if err != nil || c.Opcode != sensor.OpAnalyse {
			t.Errorf("cmd = %+v %v", c, err)
		}
		if defib.Stats().DataReceived != 1 {
			t.Errorf("DataReceived = %d", defib.Stats().DataReceived)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no native command delivered")
	}
}

func TestClientQuenchSuppression(t *testing.T) {
	r := newRig(t, bus.WithQuench(true))
	pub := r.client(t, 1, "generic", "p")

	// First publish matches nothing: bus quenches the client.
	if err := pub.Publish(event.NewTyped("lonely")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !pub.Quenched() {
		time.Sleep(5 * time.Millisecond)
	}
	if !pub.Quenched() {
		t.Fatal("client not quenched")
	}
	// Publishing while quenched is suppressed locally.
	if err := pub.Publish(event.NewTyped("lonely")); !errors.Is(err, client.ErrQuenched) {
		t.Fatalf("err = %v, want client.ErrQuenched", err)
	}
	if err := pub.PublishRaw([]byte{1}); !errors.Is(err, client.ErrQuenched) {
		t.Fatalf("raw err = %v", err)
	}
	if pub.Stats().QuenchSuppressed != 2 {
		t.Errorf("suppressed = %d", pub.Stats().QuenchSuppressed)
	}

	// A subscription appears: bus unquenches.
	sub := r.client(t, 2, "generic", "s")
	if err := sub.Subscribe(event.NewFilter().WhereType("lonely")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && pub.Quenched() {
		time.Sleep(5 * time.Millisecond)
	}
	if pub.Quenched() {
		t.Fatal("client not unquenched")
	}
	if err := pub.Publish(event.NewTyped("lonely")); err != nil {
		t.Errorf("publish after unquench: %v", err)
	}
}

func TestClientCloseIdempotentAndUnblocks(t *testing.T) {
	r := newRig(t)
	c := r.client(t, 1, "generic", "p")
	done := make(chan error, 1)
	go func() {
		_, err := c.NextEvent(10 * time.Second)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("NextEvent returned event after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("NextEvent did not unblock")
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := c.Publish(event.NewTyped("x")); err == nil {
		t.Error("publish after close")
	}
}

func TestPublishAsyncPipelinesInOrder(t *testing.T) {
	r := newRig(t)
	pub := r.client(t, 1, "generic", "pub")
	sub := r.client(t, 2, "generic", "sub")
	if err := sub.Subscribe(event.NewFilter().WhereType("tick")); err != nil {
		t.Fatal(err)
	}

	const count = 20
	comps := make([]*reliable.Completion, 0, count)
	for i := 1; i <= count; i++ {
		comp, err := pub.PublishAsync(event.NewTyped("tick").SetInt("n", int64(i)))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		comps = append(comps, comp)
	}
	for i, comp := range comps {
		if err := comp.Wait(); err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
	}
	for want := int64(1); want <= count; want++ {
		e, err := sub.NextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("waiting for tick %d: %v", want, err)
		}
		v, _ := e.Get("n")
		n, _ := v.Int()
		if n != want {
			t.Fatalf("tick %d arrived, want %d (order violated)", n, want)
		}
	}
	if st := pub.Stats(); st.Published != count {
		t.Errorf("published = %d, want %d", st.Published, count)
	}
}

func TestPublishAsyncQuenched(t *testing.T) {
	r := newRig(t, bus.WithQuench(true))
	pub := r.client(t, 1, "generic", "pub")
	// No subscriber matches: the first publish provokes a quench.
	if _, err := pub.PublishAsync(event.NewTyped("lonely")); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !pub.Quenched() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := pub.PublishAsync(event.NewTyped("lonely")); !errors.Is(err, client.ErrQuenched) {
		t.Errorf("quenched publish err = %v", err)
	}
}
