package client

import (
	"github.com/amuse/smc/internal/wire"
)

// Durable consumption, client side. A client opened WithDurable binds
// to a named durable consumer on the bus: it announces its last-seen
// position (epoch + cursor) before anything else it sends, and from
// then on the bus feeds it from the durable log — replaying the gap
// first, then live traffic, in one cursor-ordered stream. Delivered
// events carry their log cursor in Event.Cursor.
//
// Exactly-once at the splice is enforced here with a cursor floor: any
// delivery at or below the floor is a redelivery (the bus resumes
// conservatively after a rebind) and is dropped before it reaches
// Events(). The floor starts at the resume cursor, is reset by the
// bus's PktDurableAck when the log epoch changed (stale cursors from a
// previous incarnation are meaningless), and advances as deliveries
// are handed to the inbox.
//
// Durable deliveries are handed to the inbox blocking, not
// drop-newest: at-least-once delivery must not shed events to its own
// inbox, so a slow consumer stalls the receive loop and backpressure
// propagates to the bus walker instead.

// DurablePosition is a durable consumer's resume position: the log
// epoch and the highest cursor handed to Events(). Persist it across
// restarts and pass it back via WithDurable to resume; the zero value
// means "no position" and replays everything retained.
type DurablePosition struct {
	Epoch  uint64
	Cursor uint64
}

// WithDurable binds the client to the named durable consumer, resuming
// after pos. The resume announcement is enqueued before New returns —
// ahead of any Subscribe — so the bus sees the binding before the
// filters.
func WithDurable(name string, pos DurablePosition) Option {
	return func(c *Client) {
		c.durName = name
		c.durInit = pos
	}
}

// DurableName reports the durable consumer name ("" when not durable).
func (c *Client) DurableName() string { return c.durName }

// DurablePosition snapshots the resume position: persist it and pass
// it to WithDurable on the next session. Epoch zero means the bus has
// not acknowledged the binding yet (or durability is off cell-side).
//
// The cursor is the highest delivery handed to Events() — not
// necessarily consumed. A client that has drained its inbox can resume
// from this directly; one that tears down with deliveries still
// buffered should resume from the Cursor of the last event it actually
// processed, or those buffered events are skipped. Resuming from an
// older cursor is always safe: redeliveries are dropped by the floor.
func (c *Client) DurablePosition() DurablePosition {
	return DurablePosition{Epoch: c.durEpoch.Load(), Cursor: c.durFloor.Load()}
}

// sendDurableResume announces the binding on the reliable stream.
// Called from New before the constructor returns, so it precedes every
// Subscribe/Publish the application can issue.
func (c *Client) sendDurableResume() {
	c.durEpoch.Store(c.durInit.Epoch)
	c.durFloor.Store(c.durInit.Cursor)
	buf := wire.AppendDurableResume(nil, wire.DurableResume{
		Name:   c.durName,
		Epoch:  c.durInit.Epoch,
		Cursor: c.durInit.Cursor,
	})
	comp := c.ch.SendAsync(c.bus, wire.PktDurableResume, buf)
	go func() {
		_ = comp.Wait()
		comp.Recycle()
	}()
}

// handleDurableEvent processes one PktEventDurable delivery; it
// reports true when the client is shutting down.
func (c *Client) handleDurableEvent(pkt *wire.Packet) (stop bool) {
	cursor, frame, err := wire.SplitDurableEvent(pkt.Payload)
	if err != nil {
		return false
	}
	if cursor <= c.durFloor.Load() {
		// Redelivery across the splice/rebind boundary: already seen.
		c.mu.Lock()
		c.stats.DurableDeduped++
		c.mu.Unlock()
		return false
	}
	e := c.evFree.Acquire()
	if err := wire.DecodeBatchFrameInto(e, frame, pkt); err != nil {
		e.Release()
		return false
	}
	e.Cursor = cursor
	c.mu.Lock()
	c.stats.EventsReceived++
	c.stats.DurableReceived++
	c.mu.Unlock()
	select {
	case c.inbox <- e:
		c.durFloor.Store(cursor)
	case <-c.done:
		e.Release()
		return true
	}
	return false
}

// handleDurableAck processes the bus's resume acknowledgement: it
// fixes the live epoch and resets the floor to the bus's resume point
// (on an epoch change the old cursor is meaningless and the bus
// replays from the oldest retained event — the floor must drop with
// it).
func (c *Client) handleDurableAck(pkt *wire.Packet) {
	a, err := wire.DecodeDurableAck(pkt.Payload)
	if err != nil {
		return
	}
	c.durEpoch.Store(a.Epoch)
	c.durFloor.Store(a.From)
}
