package client

import (
	"fmt"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/wire"
)

// TestReceivedEventReleaseRecyclesPackets: events handed out by
// Events/NextEvent are pooled borrowing decodes; a consumer that
// Releases them returns both the event and its backing packet to their
// pools, so the client-side receive path leaks nothing (acquired ==
// recycled on the quiesced channel).
func TestReceivedEventReleaseRecyclesPackets(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(5))
	defer n.Close()
	busTr, err := n.Attach(ident.New(0xB001))
	if err != nil {
		t.Fatal(err)
	}
	cliTr, err := n.Attach(ident.New(0xC001))
	if err != nil {
		t.Fatal(err)
	}
	cfg := reliable.Config{RetryTimeout: 20 * time.Millisecond, MaxRetries: 10}
	busCh := reliable.New(busTr, cfg)
	defer busCh.Close()
	c := New(reliable.New(cliTr, cfg), ident.New(0xB001))
	defer c.Close()

	for i := 0; i < 32; i++ {
		src := event.New()
		src.Sender = ident.New(0xB001)
		src.Seq = uint64(i + 1)
		src.SetStr(event.AttrType, "borrow-client")
		src.SetStr("zz-client-borrow", fmt.Sprintf("payload-%04d", i))
		if err := busCh.Send(ident.New(0xC001), wire.PktEvent, wire.EncodeEvent(src)); err != nil {
			t.Fatal(err)
		}
		got, err := c.NextEvent(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Borrowed() {
			t.Fatal("unknown attribute names should decode borrowed")
		}
		v, _ := got.Get("zz-client-borrow")
		if s, _ := v.Str(); s != fmt.Sprintf("payload-%04d", i) {
			t.Fatalf("event %d: got %q", i, s)
		}
		got.Release()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.ch.Stats()
		if st.PacketsAcquired == st.PacketsRecycled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client packet leak: acquired=%d recycled=%d",
				st.PacketsAcquired, st.PacketsRecycled)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
