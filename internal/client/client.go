// Package client is the member-side library for talking to an SMC
// event bus: synchronous acknowledged publish (Fig. 3), subscription
// management, and receipt of events pushed by the member's proxy.
//
// It also honours quench/unquench (§VI): while quenched — told by the
// bus that no subscription currently matches — publishes are suppressed
// locally, saving the radio transmission entirely.
package client

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

// ErrQuenched reports a publish suppressed because the bus has quenched
// this publisher.
var ErrQuenched = errors.New("client: quenched by bus")

// Stats counts client activity.
type Stats struct {
	Published        uint64
	QuenchSuppressed uint64
	EventsReceived   uint64
	DataReceived     uint64
	// DurableReceived counts durable deliveries handed to Events();
	// DurableDeduped counts redeliveries dropped by the cursor floor
	// (splice-boundary duplicates). DurableReceived deliveries are
	// also counted in EventsReceived.
	DurableReceived uint64
	DurableDeduped  uint64
}

// Client is one member service's connection to the bus.
type Client struct {
	ch  *reliable.Channel
	bus ident.ID

	quenched atomic.Bool
	pubSeq   atomic.Uint64

	inbox chan *event.Event
	data  chan []byte
	// evFree recycles inbound decoded events owner-locally instead of
	// through the global event pool (see event.FreeList).
	evFree *event.FreeList

	mu    sync.Mutex
	stats Stats

	// Durable binding (durable.go). durName/durInit are set by the
	// WithDurable option; the epoch and cursor floor are atomics so
	// DurablePosition can snapshot them while the receive loop runs.
	durName  string
	durInit  DurablePosition
	durEpoch atomic.Uint64
	durFloor atomic.Uint64

	batch pubBatcher

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
	closeErr  error
}

// Option configures a Client.
type Option func(*Client)

// WithPublishBatching coalesces Publish/PublishAsync traffic into
// batch packets (wire.FlagBatch): up to maxEvents events or maxBytes
// of payload are framed into one reliable packet, and a partial batch
// is flushed after delay. Each publish still gets its own completion,
// resolved when the batch it rode in is acknowledged. Zero or
// negative arguments fall back to 16 events, 8 KiB, 1ms.
func WithPublishBatching(maxEvents, maxBytes int, delay time.Duration) Option {
	return func(c *Client) {
		if maxEvents <= 1 {
			maxEvents = 16
		}
		if maxBytes <= 0 {
			maxBytes = 8 << 10
		}
		if delay <= 0 {
			delay = time.Millisecond
		}
		c.batch.enabled = true
		c.batch.maxEvents = maxEvents
		c.batch.maxBytes = maxBytes
		c.batch.delay = delay
	}
}

// New wraps a reliable channel (which the client then owns) and the
// bus's service ID, and starts the receive loop.
func New(ch *reliable.Channel, busID ident.ID, opts ...Option) *Client {
	c := &Client{
		ch:     ch,
		bus:    busID,
		evFree: event.NewFreeList(64),
		inbox:  make(chan *event.Event, 256),
		data:   make(chan []byte, 256),
		done:   make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if c.durName != "" {
		c.sendDurableResume()
	}
	c.wg.Add(1)
	go c.recvLoop()
	return c
}

// ID returns the client's service ID.
func (c *Client) ID() ident.ID { return c.ch.LocalID() }

// BusID returns the bus the client talks to.
func (c *Client) BusID() ident.ID { return c.bus }

// Stats returns a snapshot of the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Quenched reports whether the bus has quenched this publisher.
func (c *Client) Quenched() bool { return c.quenched.Load() }

// Publish sends an event to the bus and blocks until the bus has
// acknowledged it (synchronous call semantics, Fig. 3). While quenched
// it suppresses the send and returns ErrQuenched.
func (c *Client) Publish(e *event.Event) error {
	comp, err := c.PublishAsync(e)
	if err != nil {
		return err
	}
	err = comp.Wait()
	comp.Recycle() // Publish owns the handle
	return err
}

// PublishAsync enqueues an event towards the bus and returns a
// completion that resolves when the bus acknowledges it — the
// pipelined counterpart of Publish, letting a publisher keep up to
// the reliable channel's window in flight instead of paying one round
// trip per event. Events published this way are still delivered to
// the bus in publish order. While quenched the send is suppressed and
// ErrQuenched returned immediately.
func (c *Client) PublishAsync(e *event.Event) (*reliable.Completion, error) {
	if c.quenched.Load() {
		c.mu.Lock()
		c.stats.QuenchSuppressed++
		c.mu.Unlock()
		return nil, ErrQuenched
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if e.Stamp.IsZero() {
		e.Stamp = time.Now()
	}
	e.Sender = c.ch.LocalID()
	e.Seq = c.pubSeq.Add(1)
	if c.batch.enabled {
		comp := c.publishBatched(e)
		c.mu.Lock()
		c.stats.Published++
		c.mu.Unlock()
		return comp, nil
	}
	// Pooled encode: the channel copies the payload before SendAsync
	// returns, so the buffer goes straight back.
	bp := wire.GetEncodeBuf()
	payload := wire.AppendEvent((*bp)[:0], e)
	*bp = payload
	comp := c.ch.SendAsync(c.bus, wire.PktEvent, payload)
	wire.PutEncodeBuf(bp)
	c.mu.Lock()
	c.stats.Published++ // counted at enqueue; failures surface via comp
	c.mu.Unlock()
	return comp, nil
}

// pubBatcher accumulates encoded events between flushes. The payload
// under construction lives in a pooled encode buffer; every batched
// publish holds a detached completion that resolves when the carrying
// batch's own completion does.
type pubBatcher struct {
	enabled   bool
	maxEvents int
	maxBytes  int
	delay     time.Duration

	mu    sync.Mutex
	bp    *[]byte
	comps []*reliable.Completion
	timer *time.Timer
}

// publishBatched frames one event into the pending batch, flushing on
// size; the first event of a fresh batch arms the flush-on-deadline
// timer.
func (c *Client) publishBatched(e *event.Event) *reliable.Completion {
	b := &c.batch
	b.mu.Lock()
	if b.bp == nil {
		b.bp = wire.GetEncodeBuf()
		*b.bp = wire.AppendBatchHeader((*b.bp)[:0])
		if b.timer == nil {
			b.timer = time.AfterFunc(b.delay, c.Flush)
		} else {
			b.timer.Reset(b.delay)
		}
	}
	*b.bp = wire.AppendBatchEvent(*b.bp, e)
	comp := reliable.NewCompletion()
	b.comps = append(b.comps, comp)
	if len(b.comps) >= b.maxEvents || len(*b.bp) >= b.maxBytes {
		c.flushLocked()
	}
	b.mu.Unlock()
	return comp
}

// Flush sends any pending publish batch immediately. It is a no-op
// when batching is disabled or nothing is pending; raw-data sends and
// subscription changes call it so they cannot overtake events already
// accepted for publish.
func (c *Client) Flush() {
	if !c.batch.enabled {
		return
	}
	c.batch.mu.Lock()
	c.flushLocked()
	c.batch.mu.Unlock()
}

// flushLocked hands the pending batch to the reliable channel (which
// copies the payload before returning) and spawns the resolver that
// fans the batch's outcome out to the per-event completions. Caller
// holds batch.mu.
func (c *Client) flushLocked() {
	b := &c.batch
	if b.bp == nil {
		return
	}
	if b.timer != nil {
		b.timer.Stop()
	}
	bp, comps := b.bp, b.comps
	b.bp, b.comps = nil, nil
	bc := c.ch.SendBatchAsync(c.bus, *bp)
	wire.PutEncodeBuf(bp)
	go func() {
		err := bc.Wait()
		bc.Recycle()
		for _, comp := range comps {
			comp.Resolve(err)
		}
	}()
}

// PublishRaw sends raw device bytes for the member's proxy to translate
// (the "simple sensor" path of §III-B).
func (c *Client) PublishRaw(data []byte) error {
	if c.quenched.Load() {
		c.mu.Lock()
		c.stats.QuenchSuppressed++
		c.mu.Unlock()
		return ErrQuenched
	}
	c.Flush() // raw data must not overtake batched events
	if err := c.ch.Send(c.bus, wire.PktData, data); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Published++
	c.mu.Unlock()
	return nil
}

// PublishRawUnreliable sends raw device bytes without waiting for an
// acknowledgement (wire.FlagNoAck): the periodic-sensor style of
// §III-B — "a temperature sensor may periodically transmit data and
// not require any acknowledgement prior to the next reading". Loss and
// duplication are tolerated by the next reading superseding this one.
func (c *Client) PublishRawUnreliable(data []byte) error {
	if c.quenched.Load() {
		c.mu.Lock()
		c.stats.QuenchSuppressed++
		c.mu.Unlock()
		return ErrQuenched
	}
	c.Flush() // keep ordering relative to batched events
	if err := c.ch.SendUnreliable(c.bus, wire.PktData, data); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Published++
	c.mu.Unlock()
	return nil
}

// Subscribe installs a content filter at the bus (acknowledged).
func (c *Client) Subscribe(f *event.Filter) error {
	if err := f.Validate(); err != nil {
		return err
	}
	c.Flush()
	return c.ch.Send(c.bus, wire.PktSubscribe, wire.EncodeFilter(f))
}

// Unsubscribe removes a previously installed filter.
func (c *Client) Unsubscribe(f *event.Filter) error {
	c.Flush()
	return c.ch.Send(c.bus, wire.PktUnsubscribe, wire.EncodeFilter(f))
}

// Events yields events pushed by the bus (via this member's proxy).
// The channel is closed when the client shuts down, so ranging over it
// terminates after Close.
//
// Delivered events are pooled, borrowing decodes: their attribute
// strings alias the inbound packet's buffer, which stays alive exactly
// as long as the event does. Reading attributes is always safe;
// consumers that are done with an event should Release it so the
// event and its packet recycle, and must Clone anything they keep
// past the Release. Consumers that never Release just fall back to
// garbage collection.
func (c *Client) Events() <-chan *event.Event { return c.inbox }

// Data yields raw device bytes pushed by the bus for devices whose
// proxy translates outbound events into a native format.
func (c *Client) Data() <-chan []byte { return c.data }

// NextEvent waits for one delivered event with a deadline.
func (c *Client) NextEvent(d time.Duration) (*event.Event, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case e, ok := <-c.inbox:
		if !ok {
			return nil, reliable.ErrClosed
		}
		return e, nil
	case <-timer.C:
		return nil, transport.ErrTimeout
	case <-c.done:
		return nil, reliable.ErrClosed
	}
}

// Close shuts the client and its channel down.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.Flush()
		close(c.done)
		c.closeErr = c.ch.Close()
		c.wg.Wait()
	})
	return c.closeErr
}

func (c *Client) recvLoop() {
	defer c.wg.Done()
	// This loop is the only sender on both consumer channels; closing
	// them on exit lets `for range client.Events()` terminate.
	defer close(c.inbox)
	defer close(c.data)
	for {
		pkt, err := c.ch.Recv()
		if err != nil {
			return
		}
		stop := c.handleInbound(pkt)
		// Drop the receive loop's reference. This is NOT necessarily
		// the last one: the borrowing event decode retains the packet
		// and aliases its payload, so the buffer stays live until the
		// delivered event is released.
		pkt.Release()
		if stop {
			return
		}
	}
}

// handleInbound processes one packet from the bus; it reports true when
// the client is shutting down.
func (c *Client) handleInbound(pkt *wire.Packet) (stop bool) {
	switch pkt.Type {
	case wire.PktEvent:
		if pkt.Flags&wire.FlagBatch != 0 {
			return c.handleEventBatch(pkt)
		}
		// Borrowing decode into a pooled event (see Events for the
		// consumer contract): the event keeps the packet alive, so
		// nothing is copied here.
		e := c.evFree.Acquire()
		if err := wire.DecodeEventInto(e, pkt); err != nil {
			e.Release()
			return false
		}
		// Origin sender/seq travel inside the payload; the packet
		// header identifies only the relaying bus.
		c.mu.Lock()
		c.stats.EventsReceived++
		c.mu.Unlock()
		select {
		case c.inbox <- e:
		case <-c.done:
			e.Release()
			return true
		default: // inbox overflow: drop oldest semantics not needed; drop new
			e.Release()
		}
	case wire.PktData:
		cp := make([]byte, len(pkt.Payload))
		copy(cp, pkt.Payload)
		c.mu.Lock()
		c.stats.DataReceived++
		c.mu.Unlock()
		select {
		case c.data <- cp:
		case <-c.done:
			return true
		default:
		}
	case wire.PktEventDurable:
		return c.handleDurableEvent(pkt)
	case wire.PktDurableAck:
		c.handleDurableAck(pkt)
	case wire.PktQuench:
		c.quenched.Store(true)
	case wire.PktUnquench:
		c.quenched.Store(false)
	default:
		// Unknown traffic on the client endpoint: ignore.
	}
	return false
}

// handleEventBatch unpacks a batch delivery from the member's proxy:
// every frame decodes — borrowing — into its own pooled event holding
// an independent reference on the shared packet, and is pushed to the
// inbox under the same consumer contract as a single delivery. It
// reports true when the client is shutting down.
func (c *Client) handleEventBatch(pkt *wire.Packet) (stop bool) {
	r, err := wire.NewBatchReader(pkt.Payload)
	if err != nil {
		return false
	}
	for r.More() {
		frame, err := r.Next()
		if err != nil {
			return false
		}
		e := c.evFree.Acquire()
		if err := wire.DecodeBatchFrameInto(e, frame, pkt); err != nil {
			e.Release()
			return false
		}
		c.mu.Lock()
		c.stats.EventsReceived++
		c.mu.Unlock()
		select {
		case c.inbox <- e:
		case <-c.done:
			e.Release()
			return true
		default: // inbox overflow: drop the new event, as single path does
			e.Release()
		}
	}
	return false
}
