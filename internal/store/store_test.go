package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/wire"
)

// mkEvent builds a small test event with a recognisable payload.
func mkEvent(seq uint64, label string) *event.Event {
	e := event.New()
	e.Sender = ident.New(0xABC)
	e.Seq = seq
	e.Stamp = time.Unix(1700000000, 0)
	e.Set(event.AttrType, event.Str("reading"))
	e.Set("label", event.Str(label))
	e.SetInt("n", int64(seq))
	return e
}

// drainAll reads every retained record from cursor 1, decoding and
// releasing each, and returns the cursors seen.
func drainAll(t *testing.T, l *Log) []uint64 {
	t.Helper()
	var got []uint64
	from := uint64(0)
	for {
		rec, ok := l.Next(from + 1)
		if !ok {
			return got
		}
		e := event.New()
		if err := wire.DecodeEventInto(e, &wire.Packet{Payload: rec.Payload}); err != nil {
			t.Fatalf("decode cursor %d: %v", rec.Cursor, err)
		}
		got = append(got, rec.Cursor)
		from = rec.Cursor
		rec.Release()
	}
}

func TestAppendNextRoundTrip(t *testing.T) {
	l, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 100
	for i := uint64(1); i <= n; i++ {
		cur, dup := l.Append(mkEvent(i, "x"), 0, false)
		if dup || cur != i {
			t.Fatalf("append %d: cursor=%d dup=%v", i, cur, dup)
		}
	}
	if oc, nc := l.OldestCursor(), l.NewestCursor(); oc != 1 || nc != n {
		t.Fatalf("cursor range [%d,%d], want [1,%d]", oc, nc, n)
	}
	got := drainAll(t, l)
	if len(got) != n {
		t.Fatalf("drained %d records, want %d", len(got), n)
	}
	for i, c := range got {
		if c != uint64(i+1) {
			t.Fatalf("cursor[%d] = %d, want %d", i, c, i+1)
		}
	}
	// Payload must be byte-identical to the standalone encoding.
	rec, ok := l.Next(7)
	if !ok {
		t.Fatal("Next(7) missing")
	}
	defer rec.Release()
	want := wire.AppendEvent(nil, mkEvent(7, "x"))
	if string(rec.Payload) != string(want) {
		t.Fatal("log payload diverges from frozen single-event encoding")
	}
}

func TestNextSkipsForwardAfterEviction(t *testing.T) {
	l, err := Open(Config{SegmentBytes: 256, MaxEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 64; i++ {
		l.Append(mkEvent(i, "evict"), 0, false)
	}
	oldest := l.OldestCursor()
	if oldest <= 1 {
		t.Fatalf("nothing evicted (oldest=%d)", oldest)
	}
	// A from below the retained range lands on the oldest record.
	rec, ok := l.Next(1)
	if !ok {
		t.Fatal("Next(1) after eviction: no record")
	}
	if rec.Cursor != oldest {
		t.Fatalf("Next(1) = cursor %d, want oldest %d", rec.Cursor, oldest)
	}
	rec.Release()
}

func TestRetentionMaxEventsBoundary(t *testing.T) {
	// Tiny segments: each holds only a couple of records, so eviction
	// granularity is observable.
	l, err := Open(Config{SegmentBytes: 128, MaxEvents: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 100; i++ {
		l.Append(mkEvent(i, "r"), 0, false)
		st := l.Stats()
		// Segment-granularity retention: events may exceed MaxEvents by
		// at most one segment's worth (the active segment is never
		// evicted, and a sealed segment only goes when the knob is
		// exceeded).
		if st.Events > 10+4 {
			t.Fatalf("retention failed to keep up: %d events retained", st.Events)
		}
		if st.Appended != i {
			t.Fatalf("appended=%d, want %d", st.Appended, i)
		}
		if st.Events+st.Evicted != st.Appended {
			t.Fatalf("events(%d)+evicted(%d) != appended(%d)", st.Events, st.Evicted, st.Appended)
		}
	}
	// The retained suffix is contiguous up to the newest cursor.
	got := drainAll(t, l)
	if len(got) == 0 {
		t.Fatal("nothing retained")
	}
	if got[len(got)-1] != 100 {
		t.Fatalf("newest drained %d, want 100", got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("gap in retained range: %d -> %d", got[i-1], got[i])
		}
	}
}

func TestRetentionMaxBytes(t *testing.T) {
	l, err := Open(Config{SegmentBytes: 256, MaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 200; i++ {
		l.Append(mkEvent(i, "bytes"), 0, false)
		if st := l.Stats(); st.Bytes > 1024+256 {
			t.Fatalf("retained bytes %d exceed MaxBytes+segment", st.Bytes)
		}
	}
	if st := l.Stats(); st.Evicted == 0 {
		t.Fatal("MaxBytes never evicted")
	}
}

func TestRetentionMaxAge(t *testing.T) {
	l, err := Open(Config{SegmentBytes: 256, MaxAge: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 10; i++ {
		l.Append(mkEvent(i, "old"), 0, false)
	}
	time.Sleep(30 * time.Millisecond)
	// Age is enforced on append: this append seals nothing by itself
	// but triggers retention over the aged sealed segments.
	for i := uint64(11); i <= 20; i++ {
		l.Append(mkEvent(i, "new"), 0, false)
	}
	st := l.Stats()
	if st.Evicted == 0 {
		t.Fatal("MaxAge never evicted")
	}
	if l.OldestCursor() <= 1 {
		t.Fatal("oldest cursor did not advance")
	}
}

func TestOversizedRecordGetsDedicatedSegment(t *testing.T) {
	l, err := Open(Config{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := event.New()
	big.Sender = ident.New(1)
	big.Seq = 1
	big.Stamp = time.Unix(1700000000, 0)
	big.Set("blob", event.Bytes(make([]byte, 4096)))
	if cur, _ := l.Append(big, 0, false); cur != 1 {
		t.Fatal("oversized append failed")
	}
	rec, ok := l.Next(1)
	if !ok {
		t.Fatal("oversized record unreadable")
	}
	defer rec.Release()
	e := event.New()
	if err := wire.DecodeEventInto(e, &wire.Packet{Payload: rec.Payload}); err != nil {
		t.Fatalf("decode oversized: %v", err)
	}
}

func TestSegmentLeakBalance(t *testing.T) {
	l, err := Open(Config{SegmentBytes: 256, MaxEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 64; i++ {
		l.Append(mkEvent(i, "leak"), 0, false)
	}
	// Hold reader references across eviction and Close: the buffers
	// must not recycle under the reader.
	var held []Record
	from := l.OldestCursor() - 1
	for len(held) < 3 {
		rec, ok := l.Next(from + 1)
		if !ok {
			break
		}
		held = append(held, rec)
		from = rec.Cursor
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Leaked() == 0 {
		t.Fatal("expected outstanding reader references after Close")
	}
	for _, rec := range held {
		rec.Release()
	}
	st = l.Stats()
	if st.Leaked() != 0 {
		t.Fatalf("segment leak after readers drained: acquired=%d recycled=%d",
			st.SegmentsAcquired, st.SegmentsRecycled)
	}
}

func TestLeakBalanceViaBorrowingDecode(t *testing.T) {
	l, err := Open(Config{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		l.Append(mkEvent(i, "a-string-long-enough-to-avoid-interning-somewhere"), 0, false)
	}
	// Hand the reader reference to a borrowing decode: the event now
	// owns it, and releasing the event recycles the buffer.
	rec, ok := l.Next(5)
	if !ok {
		t.Fatal("Next(5) missing")
	}
	e := event.Acquire()
	bound, err := wire.DecodeEventBacked(e, rec.Payload, rec.Seg())
	if err != nil {
		t.Fatalf("backed decode: %v", err)
	}
	if !bound {
		rec.Release()
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if bound {
		if l.Stats().Leaked() == 0 {
			t.Fatal("event should still hold its segment")
		}
	}
	e.Release()
	if got := l.Stats().Leaked(); got != 0 {
		t.Fatalf("leak after event release: %d", got)
	}
}

func TestDedupWindow(t *testing.T) {
	l, err := Open(Config{DedupWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	e := mkEvent(1, "dup")
	if _, dup := l.Append(e, 42, true); dup {
		t.Fatal("first append marked dup")
	}
	if _, dup := l.Append(e, 42, true); !dup {
		t.Fatal("repeat ID not deduplicated")
	}
	if st := l.Stats(); st.DupsDropped != 1 {
		t.Fatalf("DupsDropped=%d, want 1", st.DupsDropped)
	}
	// A different sender with the same ID is a different key.
	other := mkEvent(1, "dup")
	other.Sender = ident.New(0xDEF)
	if _, dup := l.Append(other, 42, true); dup {
		t.Fatal("different sender deduplicated")
	}
	// Push the first key out of the window; it is then accepted again.
	for id := int64(100); id < 104; id++ {
		l.Append(mkEvent(2, "fill"), id, true)
	}
	if _, dup := l.Append(e, 42, true); dup {
		t.Fatal("evicted dedup key still deduplicating")
	}
	// Duplicates do not consume cursors: the range stays dense.
	got := drainAll(t, l)
	for i, c := range got {
		if c != uint64(i+1) {
			t.Fatalf("cursor[%d]=%d: dups consumed cursors", i, c)
		}
	}
}

func TestDiskRecoveryGraceful(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		l.Append(mkEvent(i, "disk"), 0, false)
	}
	epoch := l.Epoch()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Epoch() != epoch {
		t.Fatalf("epoch changed across graceful restart: %x -> %x", epoch, r.Epoch())
	}
	got := drainAll(t, r)
	if len(got) != 40 || got[0] != 1 || got[39] != 40 {
		t.Fatalf("recovered %d records [%v..], want all 40", len(got), got)
	}
	// Appends continue after the recovered range.
	if cur, _ := r.Append(mkEvent(41, "post"), 0, false); cur != 41 {
		t.Fatalf("post-recovery cursor %d, want 41", cur)
	}
}

// TestCleanMarkerConsumedOnOpen pins the marker lifecycle: the clean
// marker written by Close is good for exactly one recovery. A clean
// restart that later crashes must still be detected as a crash.
func TestCleanMarkerConsumedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		l.Append(mkEvent(i, "marker"), 0, false)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean restart: epoch survives, marker is consumed.
	r, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	epoch := r.Epoch()
	// Abandon r without Close: a SIGKILL after the clean restart.

	r2, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Epoch() == epoch {
		t.Fatal("crash after a clean restart was not detected: epoch kept")
	}
	_ = r // keep the crashed instance alive to the end of the test
}

func TestCrashRecoveryToLastSyncedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		l.Append(mkEvent(i, "crash"), 0, false)
	}
	epoch := l.Epoch()
	sealed := l.Stats().Segments - 1 // all but the active segment
	if sealed == 0 {
		t.Fatal("test needs at least one sealed segment")
	}
	// Wait for the async flusher to sync the sealed segments.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ents, _ := os.ReadDir(dir)
		n := 0
		for _, ent := range ents {
			if filepath.Ext(ent.Name()) == ".seg" {
				n++
			}
		}
		if uint64(n) >= sealed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher never wrote %d segments (have %d)", sealed, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// No Close: the log is abandoned as a SIGKILL would leave it. The
	// unflushed active tail is lost by contract.

	r, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// A crash rewinds the cursor space (the unsynced tail is gone), so
	// recovery MUST change the epoch: a consumer resuming with an old
	// cursor past the recovered tail would otherwise drop new records
	// that reuse those cursors as "already seen".
	if r.Epoch() == epoch {
		t.Fatalf("crash recovery kept epoch %x: stale consumer floors would swallow new records", epoch)
	}
	if r.Epoch() == 0 {
		t.Fatal("zero epoch is reserved for the client sentinel")
	}
	got := drainAll(t, r)
	if len(got) == 0 {
		t.Fatal("nothing recovered")
	}
	// Recovered prefix is contiguous from 1 and stops at a segment
	// boundary at or before 40.
	for i, c := range got {
		if c != uint64(i+1) {
			t.Fatalf("recovered cursor[%d]=%d: gap", i, c)
		}
	}
	if got[len(got)-1] > 40 {
		t.Fatalf("recovered past what was written: %d", got[len(got)-1])
	}
	// New appends continue after the recovered range, never reusing a
	// recovered cursor.
	cur, _ := r.Append(mkEvent(99, "post-crash"), 0, false)
	if cur != got[len(got)-1]+1 {
		t.Fatalf("post-crash cursor %d, want %d", cur, got[len(got)-1]+1)
	}
	_ = l // keep the crashed instance alive to the end of the test
}

func TestRecoveryTruncatesAtCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		l.Append(mkEvent(i, "corrupt"), 0, false)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	path := filepath.Join(dir, ents[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte two-thirds into the record area: every record from
	// the one containing it on fails its CRC and is truncated away.
	pos := segHeaderLen + (len(raw)-segHeaderLen)*2/3
	raw[pos] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainAll(t, r)
	if len(got) == 0 || len(got) >= 20 {
		t.Fatalf("recovered %d records from corrupt file, want a proper prefix", len(got))
	}
	for i, c := range got {
		if c != uint64(i+1) {
			t.Fatalf("corrupt recovery not a prefix: cursor[%d]=%d", i, c)
		}
	}
}

// TestConcurrentAppendReplayChurn is the -race churn test: appenders,
// replaying readers and stats pollers run concurrently over a log
// small enough that retention constantly evicts under the readers.
func TestConcurrentAppendReplayChurn(t *testing.T) {
	l, err := Open(Config{SegmentBytes: 512, MaxEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	const (
		appenders = 3
		readers   = 3
		perApp    = 500
	)
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perApp; i++ {
				e := mkEvent(uint64(i), "churn")
				e.Sender = ident.New(uint64(0x1000 + a))
				l.Append(e, 0, false)
			}
		}(a)
	}
	stopRead := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := uint64(0)
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				rec, ok := l.Next(from + 1)
				if !ok {
					from = 0 // wrap: replay from the oldest again
					continue
				}
				e := event.Acquire()
				bound, err := wire.DecodeEventBacked(e, rec.Payload, rec.Seg())
				if err != nil {
					t.Errorf("churn decode: %v", err)
				}
				if !bound {
					rec.Release()
				}
				from = rec.Cursor
				e.Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = l.Stats()
			time.Sleep(time.Millisecond)
		}
	}()

	// Let appenders finish, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	time.Sleep(300 * time.Millisecond)
	close(stopRead)
	<-done

	st := l.Stats()
	if st.Appended != appenders*perApp {
		t.Fatalf("appended=%d, want %d", st.Appended, appenders*perApp)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Leaked(); got != 0 {
		t.Fatalf("segments leaked after churn: %d", got)
	}
}

func TestMemoryLogEpochsDiffer(t *testing.T) {
	a, _ := Open(Config{})
	b, _ := Open(Config{})
	defer a.Close()
	defer b.Close()
	if a.Epoch() == b.Epoch() {
		t.Fatal("two memory logs drew the same epoch")
	}
	if a.Epoch() == 0 || b.Epoch() == 0 {
		t.Fatal("zero epoch is reserved for the client sentinel")
	}
}

// waitTailRecords polls until the active segment's partial file at
// path holds want CRC-valid records (the tail flusher is async).
func waitTailRecords(t *testing.T, path string, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if seg, _, err := readSegment(path); err == nil && len(seg.recs) >= want {
			return
		}
		if time.Now().After(deadline) {
			seg, _, err := readSegment(path)
			n := -1
			if err == nil {
				n = len(seg.recs)
			}
			t.Fatalf("tail sync never reached %d records (have %d, err %v)", want, n, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSyncEveryPersistsActiveTail: with SyncEvery, a crash loses at
// most the appends since the last tail sync — not the whole unsealed
// active segment.
func TestSyncEveryPersistsActiveTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 1 << 16, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := uint64(1); i <= n; i++ {
		l.Append(mkEvent(i, "tail"), 0, false)
	}
	epoch := l.Epoch()
	if got := l.Stats().Segments; got != 1 {
		t.Fatalf("test needs everything in the unsealed active segment, have %d", got)
	}
	waitTailRecords(t, segmentPath(dir, 1), n)
	// No Close: abandoned as a SIGKILL would leave it.

	r, err := Open(Config{Dir: dir, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Epoch() == epoch || r.Epoch() == 0 {
		t.Fatalf("crash recovery must rotate to a fresh non-zero epoch (got %x)", r.Epoch())
	}
	got := drainAll(t, r)
	if len(got) != n {
		t.Fatalf("recovered %d records from the synced tail, want %d", len(got), n)
	}
	for i, c := range got {
		if c != uint64(i+1) {
			t.Fatalf("recovered cursor[%d]=%d: gap", i, c)
		}
	}
	_ = l
}

// TestSyncIntervalPersistsActiveTail: the ticker alone (no SyncEvery)
// also bounds the loss window.
func TestSyncIntervalPersistsActiveTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 1 << 16, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	for i := uint64(1); i <= n; i++ {
		l.Append(mkEvent(i, "tick"), 0, false)
	}
	waitTailRecords(t, segmentPath(dir, 1), n)

	r, err := Open(Config{Dir: dir, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drainAll(t, r); len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
	_ = l
}

// TestSyncTailTornWriteRecovery: a torn final record in the partial
// tail file truncates cleanly to the preceding CRC-valid prefix.
func TestSyncTailTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 1 << 16, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := uint64(1); i <= n; i++ {
		l.Append(mkEvent(i, "torn"), 0, false)
	}
	path := segmentPath(dir, 1)
	waitTailRecords(t, path, n)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last record's CRC: the write tore mid-record.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Dir: dir, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainAll(t, r)
	if len(got) != n-1 {
		t.Fatalf("torn-tail recovery kept %d records, want %d", len(got), n-1)
	}
	for i, c := range got {
		if c != uint64(i+1) {
			t.Fatalf("torn recovery not a prefix: cursor[%d]=%d", i, c)
		}
	}
	_ = l
}

// TestSyncTailCorruptRecordRecovery: a CRC-corrupt record mid-tail
// truncates recovery there — CRC-valid records up to the first bad
// one, never garbage past it.
func TestSyncTailCorruptRecordRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 1 << 16, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := uint64(1); i <= n; i++ {
		l.Append(mkEvent(i, "crc"), 0, false)
	}
	path := segmentPath(dir, 1)
	waitTailRecords(t, path, n)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pos := segHeaderLen + (len(raw)-segHeaderLen)/2
	raw[pos] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Dir: dir, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := drainAll(t, r)
	if len(got) == 0 || len(got) >= n {
		t.Fatalf("corrupt-tail recovery kept %d records, want a proper prefix", len(got))
	}
	for i, c := range got {
		if c != uint64(i+1) {
			t.Fatalf("corrupt recovery not a prefix: cursor[%d]=%d", i, c)
		}
	}
	_ = l
}

// TestSyncTailSealReplacesPartialFile: sealing the active segment
// atomically replaces its partial tail file with the complete sealed
// write; a graceful close then recovers everything under the same
// epoch.
func TestSyncTailSealReplacesPartialFile(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, SegmentBytes: 256, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40 // spans several 256-byte segments
	for i := uint64(1); i <= n; i++ {
		l.Append(mkEvent(i, "seal"), 0, false)
	}
	epoch := l.Epoch()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Dir: dir, SegmentBytes: 256, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Epoch() != epoch {
		t.Fatalf("clean shutdown must keep the epoch: %x != %x", r.Epoch(), epoch)
	}
	got := drainAll(t, r)
	if len(got) != n {
		t.Fatalf("recovered %d records after graceful close, want %d", len(got), n)
	}
}

// TestSyncTailConcurrentAppendChurn races the sync ticker against
// concurrent appenders and segment rollover (run with -race).
func TestSyncTailConcurrentAppendChurn(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{
		Dir: dir, SegmentBytes: 512, MaxEvents: 128,
		SyncEvery: 4, SyncInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(0); i < 200; i++ {
				l.Append(mkEvent(i, "churn"), 0, false)
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{Dir: dir, SegmentBytes: 512, MaxEvents: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := drainAll(t, r); len(got) == 0 {
		t.Fatal("nothing recovered after churn")
	}
}
