// Package store implements the durable event log behind the bus: an
// append-only, segment-based log of published events, each stamped
// with a monotonic per-cell cursor. It is the substrate for durable
// subscriptions — a member that disconnects and rejoins replays the
// gap from this log before splicing back into live traffic.
//
// Layering discipline matches wire.FlagBatch: a log record wraps the
// frozen single-event wire encoding unchanged. A record is
//
//	uvarint payload-length | payload (wire.AppendEvent bytes) | crc32
//
// so the event bytes inside the log are byte-identical to what travels
// alone in a PktEvent — the frozen encoding is never forked.
//
// Lifecycle contract (the PR 3/4 machinery, extended): segment buffers
// are pooled and recycled. The log holds one reference per live
// segment; readers take their own via Record.Seg().Retain (a Segment
// implements event.Backing, so a borrowing decode can alias record
// bytes and hand the event the reference that keeps the buffer alive).
// A segment's buffer returns to the free list only when the log has
// evicted it AND every reader reference has drained — leaks are
// observable via Stats.SegmentsAcquired/SegmentsRecycled, exactly like
// the packet pool's counters.
//
// Retention is governed by MaxAge/MaxBytes/MaxEvents with
// segment-granularity eviction: the oldest sealed segment is dropped
// whole once any knob is exceeded; the active segment is never
// evicted.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/wire"
)

// AttrDedup is the reserved attribute naming a publisher-side dedup
// ID (int). A publisher that re-sends a logical event after a restart
// stamps the same ID; the log drops the duplicate append, making
// redelivery idempotent across sender restarts. IDs are deduplicated
// per sender within a sliding window of Config.DedupWindow appends.
const AttrDedup = "_dedup"

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("store: closed")

// Config tunes the log.
type Config struct {
	// Dir, when non-empty, persists segments to disk: each sealed
	// segment is written and synced by a background flusher, and the
	// SyncEvery/SyncInterval knobs additionally write-behind-sync the
	// active segment's tail. After a crash the log recovers every
	// CRC-valid record up to the first torn one — without tail syncs
	// that means the last sealed segment. An empty Dir keeps the log
	// memory-only.
	Dir string
	// SegmentBytes sizes one segment buffer (default 64 KiB). A record
	// larger than a whole segment still fits: it gets a dedicated
	// oversized segment.
	SegmentBytes int
	// MaxEvents bounds retained events (0 = unlimited).
	MaxEvents uint64
	// MaxBytes bounds retained record bytes (default 16 MiB; the log
	// is memory-resident, so this is also its memory bound).
	MaxBytes uint64
	// MaxAge bounds a record's retention by append time (0 =
	// unlimited). Enforced at segment granularity on append: a sealed
	// segment is evicted once its newest record is older than MaxAge.
	MaxAge time.Duration
	// DedupWindow is the number of recent publisher dedup IDs
	// remembered per log (default 4096, 0 keeps the default; negative
	// disables dedup).
	DedupWindow int
	// SyncEvery, when > 0 on a disk-backed log, write-behind-syncs the
	// active segment's appended tail after every N appends: the flusher
	// persists the new record bytes to the segment's (partial) file and
	// fsyncs. Recovery then scans CRC-valid records up to the first
	// torn one, so a crash loses at most the records since the last
	// tail sync instead of the whole unsealed segment.
	SyncEvery int
	// SyncInterval, when > 0 on a disk-backed log, bounds the crash-loss
	// window in time: a ticker syncs the active segment's tail at least
	// this often while new records are pending. Combines with SyncEvery;
	// either alone is enough to enable partial-segment persistence.
	SyncInterval time.Duration
}

func (c *Config) fillDefaults() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 10
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 16 << 20
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 4096
	}
}

// Stats is a point-in-time snapshot of the log.
type Stats struct {
	// Epoch identifies this log incarnation: cursors are only
	// comparable within one epoch. A disk-backed log keeps its epoch
	// across clean restarts; a crash recovery draws a fresh one (the
	// lost unsynced tail rewinds the cursor space, so old cursors
	// would alias new records). A memory log draws a fresh one per
	// Open.
	Epoch uint64
	// OldestCursor/NewestCursor bound the retained range (both 0 when
	// the log is empty).
	OldestCursor uint64
	NewestCursor uint64
	// Events/Bytes/Segments describe current retention (depth).
	Events   uint64
	Bytes    uint64
	Segments uint64
	// Appended counts records ever appended; Evicted counts records
	// dropped by retention; DupsDropped counts appends suppressed by
	// the publisher dedup window.
	Appended    uint64
	Evicted     uint64
	DupsDropped uint64
	// SegmentsAcquired/SegmentsRecycled are the segment-buffer pool
	// counters: on a closed log with no outstanding readers they are
	// equal — the leak check mirrors reliable.Stats.PacketsAcquired/
	// PacketsRecycled.
	SegmentsAcquired uint64
	SegmentsRecycled uint64
}

// Leaked reports segment buffers acquired but not yet recycled.
func (s Stats) Leaked() uint64 {
	if s.SegmentsAcquired < s.SegmentsRecycled {
		return 0
	}
	return s.SegmentsAcquired - s.SegmentsRecycled
}

// dedupKey identifies one publisher-supplied dedup ID.
type dedupKey struct {
	sender ident.ID
	id     int64
}

// Log is the append-only segment log.
type Log struct {
	cfg   Config
	epoch uint64

	mu       sync.Mutex
	segs     []*Segment // oldest first; last is the active segment
	next     uint64     // next cursor to assign (first is 1)
	events   uint64
	bytes    uint64
	closed   bool
	appended uint64
	evicted  uint64
	dups     uint64

	// Publisher dedup window: a bounded FIFO of recently seen IDs.
	dedup     map[dedupKey]struct{}
	dedupRing []dedupKey

	// Segment-buffer free list (bounded) and pool counters. Guarded by
	// poolMu, not mu: a segment's last reference can drop from a
	// reader or the flusher while an eviction holds mu, so routing the
	// recycle through mu would deadlock.
	poolMu   sync.Mutex
	free     []*Segment
	acquired uint64
	recycled uint64

	// waiters are notified (non-blocking) on every append; durable
	// walkers park on their channel while caught up with the tail.
	waiters map[chan struct{}]struct{}

	// flush is the disk mirror; nil for memory-only logs.
	flush *flusher

	// Write-behind tail-sync state (guarded by mu). sinceSync counts
	// appends since the last SyncEvery-triggered sync; lastSyncSeg/
	// lastSyncLen suppress redundant ticker syncs when nothing new was
	// appended.
	sinceSync   int
	lastSyncSeg *Segment
	lastSyncLen int

	// syncStop/syncDone bracket the SyncInterval ticker goroutine
	// (nil when it never started).
	syncStop chan struct{}
	syncDone chan struct{}
}

// Open creates (or, with Dir set, recovers) a log.
func Open(cfg Config) (*Log, error) {
	cfg.fillDefaults()
	l := &Log{
		cfg:     cfg,
		epoch:   newEpoch(),
		next:    1,
		waiters: make(map[chan struct{}]struct{}),
	}
	if cfg.DedupWindow > 0 {
		l.dedup = make(map[dedupKey]struct{}, cfg.DedupWindow)
	}
	if cfg.Dir != "" {
		if err := l.recover(); err != nil {
			return nil, err
		}
		l.flush = newFlusher(cfg.Dir)
		if cfg.SyncInterval > 0 {
			l.syncStop = make(chan struct{})
			l.syncDone = make(chan struct{})
			go l.syncLoop()
		}
	}
	return l, nil
}

// newEpoch draws a non-zero random epoch. Zero is reserved as the
// client-side "no position yet" sentinel.
func newEpoch() uint64 {
	for {
		if e := rand.Uint64(); e != 0 {
			return e
		}
	}
}

// Epoch identifies this log incarnation.
func (l *Log) Epoch() uint64 { return l.epoch }

// Append appends one event and returns its cursor. When the event
// carries a publisher dedup ID (hasDedup) that was seen within the
// dedup window, nothing is appended and dup is true (cursor 0).
func (l *Log) Append(e *event.Event, dedupID int64, hasDedup bool) (cursor uint64, dup bool) {
	// Encode and checksum outside the lock: the payload bytes do not
	// depend on log state, so the append lock serialises only the
	// cursor assignment and the copy into the active segment.
	bp := wire.GetEncodeBuf()
	payload := wire.AppendEvent((*bp)[:0], e)
	*bp = payload
	n := len(payload)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	// Record timestamps exist only for MaxAge retention; without it,
	// skip the clock reads entirely (two per append otherwise — they
	// dominate the append cost on vDSO-less hosts).
	var now time.Time
	if l.cfg.MaxAge > 0 {
		now = time.Now()
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		wire.PutEncodeBuf(bp)
		return 0, false
	}
	if hasDedup && l.dedup != nil {
		k := dedupKey{sender: e.Sender, id: dedupID}
		if _, seen := l.dedup[k]; seen {
			l.dups++
			l.mu.Unlock()
			wire.PutEncodeBuf(bp)
			return 0, true
		}
		if len(l.dedupRing) >= l.cfg.DedupWindow {
			old := l.dedupRing[0]
			l.dedupRing = l.dedupRing[1:]
			delete(l.dedup, old)
		}
		l.dedup[k] = struct{}{}
		l.dedupRing = append(l.dedupRing, k)
	}

	rec := recordSize(n)
	seg := l.activeLocked(rec)
	off := len(seg.buf)
	seg.buf = binary.AppendUvarint(seg.buf, uint64(n))
	payStart := len(seg.buf)
	seg.buf = append(seg.buf, payload...)
	seg.buf = append(seg.buf, crc[:]...)
	seg.recs = append(seg.recs, recBounds{off: uint32(payStart), n: uint32(n)})
	seg.last = now
	if len(seg.recs) == 1 {
		seg.first = seg.last
	}

	cursor = l.next
	l.next++
	l.appended++
	l.events++
	l.bytes += uint64(len(seg.buf) - off)
	l.retainLocked(now)
	if l.flush != nil && l.cfg.SyncEvery > 0 {
		l.sinceSync++
		if l.sinceSync >= l.cfg.SyncEvery && l.trySyncLocked(seg) {
			l.sinceSync = 0
		}
	}
	for ch := range l.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	l.mu.Unlock()
	wire.PutEncodeBuf(bp)
	return cursor, false
}

// recordSize is the worst-case record footprint for an n-byte payload.
func recordSize(n int) int { return binary.MaxVarintLen64 + n + 4 }

// activeLocked returns the active segment with room for a need-byte
// record, sealing and rotating first when it is full.
func (l *Log) activeLocked(need int) *Segment {
	if len(l.segs) > 0 {
		seg := l.segs[len(l.segs)-1]
		if !seg.sealed && len(seg.buf)+need <= cap(seg.buf) {
			return seg
		}
		if !seg.sealed {
			l.sealLocked(seg)
		}
	}
	size := l.cfg.SegmentBytes
	if need > size {
		size = need // oversized record gets a dedicated segment
	}
	seg := l.acquireSegment(size)
	seg.base = l.next
	l.segs = append(l.segs, seg)
	return seg
}

// sealLocked marks a segment immutable and hands it to the disk
// mirror.
func (l *Log) sealLocked(seg *Segment) {
	seg.sealed = true
	if seg == l.lastSyncSeg {
		l.lastSyncSeg = nil
	}
	if l.flush != nil && len(seg.recs) > 0 {
		seg.retain() // flusher's reference
		l.flush.enqueue(flushOp{seg: seg, epoch: l.epoch})
	}
}

// trySyncLocked enqueues (non-blocking) a write-behind sync of the
// active segment's current tail. The record bytes are captured as a
// slice under mu, so the flusher never touches seg.buf concurrently
// with appends. Returns false when the flusher queue is full — the
// caller keeps its trigger armed and the next append retries.
func (l *Log) trySyncLocked(seg *Segment) bool {
	if seg.sealed || len(seg.recs) == 0 {
		return false
	}
	if seg == l.lastSyncSeg && len(seg.buf) == l.lastSyncLen {
		return true // nothing new since the last enqueued sync
	}
	seg.retain()
	op := flushOp{seg: seg, epoch: l.epoch, data: seg.buf[:len(seg.buf):len(seg.buf)], sync: true}
	if !l.flush.tryEnqueue(op) {
		seg.release()
		return false
	}
	l.lastSyncSeg, l.lastSyncLen = seg, len(seg.buf)
	return true
}

// syncLoop is the SyncInterval ticker: while records are pending it
// keeps the crash-loss window under one interval by syncing the active
// segment's tail.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.syncStop:
			return
		case <-t.C:
		}
		l.mu.Lock()
		if !l.closed && l.flush != nil && len(l.segs) > 0 {
			seg := l.segs[len(l.segs)-1]
			if l.trySyncLocked(seg) {
				l.sinceSync = 0
			}
		}
		l.mu.Unlock()
	}
}

// retainLocked enforces retention: evict whole sealed segments from
// the front while any knob is exceeded. The active segment survives.
// now is the append timestamp (zero when MaxAge is off).
func (l *Log) retainLocked(now time.Time) {
	for len(l.segs) > 1 {
		seg := l.segs[0]
		if !seg.sealed {
			return
		}
		over := (l.cfg.MaxEvents > 0 && l.events > l.cfg.MaxEvents) ||
			l.bytes > l.cfg.MaxBytes ||
			(l.cfg.MaxAge > 0 && now.Sub(seg.last) > l.cfg.MaxAge)
		if !over {
			return
		}
		l.evictLocked(seg)
	}
}

// evictLocked drops the front segment from the index and releases the
// log's reference; the buffer recycles when readers drain.
func (l *Log) evictLocked(seg *Segment) {
	l.segs = l.segs[1:]
	l.events -= uint64(len(seg.recs))
	l.bytes -= uint64(len(seg.buf))
	l.evicted += uint64(len(seg.recs))
	if l.flush != nil {
		l.flush.enqueue(flushOp{remove: segmentPath(l.cfg.Dir, seg.base)})
	}
	seg.release()
}

// OldestCursor returns the first retained cursor (0 when empty).
func (l *Log) OldestCursor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oldestLocked()
}

func (l *Log) oldestLocked() uint64 {
	for _, seg := range l.segs {
		if len(seg.recs) > 0 {
			return seg.base
		}
	}
	return 0
}

// NewestCursor returns the last assigned cursor (0 before any append).
func (l *Log) NewestCursor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Record is one retained log record. Payload aliases the segment
// buffer and stays valid while the caller holds the segment reference
// Next took on its behalf: either Release the record when done, or
// hand the reference to a borrowing decode (Seg implements
// event.Backing) and let the event's lifecycle release it.
type Record struct {
	Cursor  uint64
	Payload []byte
	seg     *Segment
}

// Seg exposes the retained segment as an event backing.
func (r Record) Seg() *Segment { return r.seg }

// Release drops the reader's segment reference.
func (r Record) Release() {
	if r.seg != nil {
		r.seg.release()
	}
}

// Next returns the first retained record with cursor >= from, with a
// segment reference already taken for the caller. ok=false means no
// such record exists yet (from is past the tail — park on Subscribe's
// channel). A from below the retained range skips forward to the
// oldest record (retention won); callers detect the gap via
// Record.Cursor > from.
func (l *Log) Next(from uint64) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || len(l.segs) == 0 {
		return Record{}, false
	}
	// Binary search the first segment whose range may contain >= from.
	i := sort.Search(len(l.segs), func(i int) bool {
		seg := l.segs[i]
		return seg.base+uint64(len(seg.recs)) > from
	})
	if i == len(l.segs) {
		return Record{}, false
	}
	seg := l.segs[i]
	idx := 0
	if from > seg.base {
		idx = int(from - seg.base)
	}
	if idx >= len(seg.recs) {
		// Only possible for the active segment with from == tail+1.
		return Record{}, false
	}
	rb := seg.recs[idx]
	seg.retain()
	return Record{
		Cursor:  seg.base + uint64(idx),
		Payload: seg.buf[rb.off : rb.off+rb.n],
		seg:     seg,
	}, true
}

// Subscribe registers a notification channel signalled (non-blocking)
// on every append. Unsubscribe it when the walker exits.
func (l *Log) Subscribe(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waiters[ch] = struct{}{}
}

// Unsubscribe removes a notification channel.
func (l *Log) Unsubscribe(ch chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.waiters, ch)
}

// Stats snapshots the log.
func (l *Log) Stats() Stats {
	l.poolMu.Lock()
	acquired, recycled := l.acquired, l.recycled
	l.poolMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Epoch:            l.epoch,
		OldestCursor:     l.oldestLocked(),
		NewestCursor:     l.next - 1,
		Events:           l.events,
		Bytes:            l.bytes,
		Segments:         uint64(len(l.segs)),
		Appended:         l.appended,
		Evicted:          l.evicted,
		DupsDropped:      l.dups,
		SegmentsAcquired: acquired,
		SegmentsRecycled: recycled,
	}
}

// Close seals and (for disk-backed logs) flushes the active segment,
// stops the flusher, and releases every retained segment. Outstanding
// reader references keep their buffers alive; the pool counters
// balance once those drain.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	segs := l.segs
	l.segs = nil
	l.events, l.bytes = 0, 0
	if len(segs) > 0 {
		seg := segs[len(segs)-1]
		if !seg.sealed {
			l.sealLocked(seg) // graceful close persists the tail
		}
	}
	flush := l.flush
	l.flush = nil
	l.mu.Unlock()

	// Stop the sync ticker before closing the flusher: the loop
	// enqueues under mu and has observed closed by now, so no sync op
	// can race the channel close below.
	if l.syncStop != nil {
		close(l.syncStop)
		<-l.syncDone
	}

	var err error
	if flush != nil {
		err = flush.close() // drains pending writes first
		if err == nil {
			// Every segment is on disk: mark the shutdown clean so the
			// next Open keeps the epoch. A crash (no marker) or a flush
			// failure (tail lost) leaves the directory dirty and forces
			// a fresh epoch on recovery.
			err = os.WriteFile(filepath.Join(l.cfg.Dir, cleanMarkerName), nil, 0o644)
		}
	}
	for _, seg := range segs {
		seg.release()
	}
	return err
}

// ---- segments ----

// recBounds locates one record's payload inside the segment buffer.
type recBounds struct {
	off uint32 // payload start
	n   uint32 // payload length
}

// Segment is one pooled log buffer: base cursor, record bytes, and the
// per-record payload index. It implements event.Backing so borrowing
// decodes of log records can alias its buffer; the buffer recycles
// when the log's own reference and every reader's have drained.
type Segment struct {
	base   uint64
	buf    []byte
	recs   []recBounds
	first  time.Time // append time of the first record
	last   time.Time // append time of the newest record
	sealed bool

	// diskSynced is the number of record bytes persisted to this
	// segment's partial tail file. Flusher-goroutine-only; the reset in
	// acquireSegment is ordered by the pool handoff.
	diskSynced int

	log  *Log
	mu   sync.Mutex
	refs int32
}

// Retain adds a reader reference (for handoff to an event's backing).
func (s *Segment) Retain() *Segment { s.retain(); return s }

// Release implements event.Backing.
func (s *Segment) Release() { s.release() }

func (s *Segment) retain() {
	s.mu.Lock()
	s.refs++
	s.mu.Unlock()
}

func (s *Segment) release() {
	s.mu.Lock()
	s.refs--
	done := s.refs == 0
	s.mu.Unlock()
	if done {
		s.log.recycleSegment(s)
	}
}

// acquireSegment takes a buffer from the free list (or allocates) and
// returns a segment holding the log's own reference.
func (l *Log) acquireSegment(size int) *Segment {
	l.poolMu.Lock()
	l.acquired++
	var seg *Segment
	if n := len(l.free); n > 0 && cap(l.free[n-1].buf) >= size {
		seg = l.free[n-1]
		l.free = l.free[:n-1]
	}
	l.poolMu.Unlock()
	if seg != nil {
		seg.buf = seg.buf[:0]
		seg.recs = seg.recs[:0]
	} else {
		seg = &Segment{
			buf:  make([]byte, 0, size),
			recs: make([]recBounds, 0, 64),
		}
	}
	seg.log = l
	seg.base = 0
	seg.sealed = false
	seg.diskSynced = 0
	seg.first, seg.last = time.Time{}, time.Time{}
	seg.refs = 1
	return seg
}

// recycleSegment returns a fully released segment's buffer to the free
// list (bounded; beyond that it is dropped to the GC). Counted either
// way — recycled mirrors acquired.
func (l *Log) recycleSegment(seg *Segment) {
	l.poolMu.Lock()
	defer l.poolMu.Unlock()
	l.recycled++
	if len(l.free) >= 4 || cap(seg.buf) != l.cfg.SegmentBytes {
		return // oversized or surplus buffers are not pooled
	}
	l.free = append(l.free, seg)
}

// ---- disk mirror ----

const (
	segMagic   = "SMLG"
	segVersion = 1
	// segHeaderLen is magic + version byte + epoch + base cursor.
	segHeaderLen = 4 + 1 + 8 + 8
	// cleanMarkerName marks a clean shutdown: written by Close after
	// the tail is flushed, consumed (removed) by the next recovery.
	cleanMarkerName = "clean"
)

// castagnoli is the record-checksum polynomial: CRC-32C has hardware
// support (SSE4.2 / ARMv8 CRC instructions) where IEEE falls back to
// table slicing, and the checksum sits on the publish hot path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segmentPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d.seg", base))
}

// flushOp is one unit of flusher work: write a sealed segment, sync
// the active segment's tail (data holds the record bytes captured
// under the log lock), or remove an evicted one's file.
type flushOp struct {
	seg    *Segment
	epoch  uint64
	data   []byte // sync: immutable prefix of the segment's record bytes
	sync   bool
	remove string
}

// flusher serialises disk writes off the append path: sealed segments
// are written and fsynced in order, active-segment tails are appended
// to a partial file under the write-behind sync policy, evictions
// remove files. Without tail syncs, losing the unflushed active
// segment on SIGKILL is the contract — recovery returns the last
// synced state either way.
type flusher struct {
	dir  string
	ops  chan flushOp
	done chan struct{}
	err  error

	// partial maps an active segment to its open tail file. An entry
	// retires when the sealed write replaces the partial file
	// (tmp+rename) — FIFO op order guarantees the seal arrives after
	// every tail sync for that segment.
	partial map[*Segment]*os.File
}

func newFlusher(dir string) *flusher {
	f := &flusher{
		dir:     dir,
		ops:     make(chan flushOp, 16),
		done:    make(chan struct{}),
		partial: make(map[*Segment]*os.File),
	}
	go f.loop()
	return f
}

func (f *flusher) enqueue(op flushOp) {
	select {
	case f.ops <- op:
	case <-f.done:
		if op.seg != nil {
			op.seg.release()
		}
	}
}

// tryEnqueue is the non-blocking variant used by tail syncs, which are
// enqueued under the log lock: a full queue skips the sync (the next
// trigger retries) rather than stalling appends.
func (f *flusher) tryEnqueue(op flushOp) bool {
	select {
	case f.ops <- op:
		return true
	default:
		return false
	}
}

func (f *flusher) loop() {
	for op := range f.ops {
		if op.remove != "" {
			_ = os.Remove(op.remove)
			continue
		}
		if op.sync {
			if err := f.syncTail(op.seg, op.epoch, op.data); err != nil && f.err == nil {
				f.err = err
			}
			op.seg.release()
			continue
		}
		if file, ok := f.partial[op.seg]; ok {
			_ = file.Close()
			delete(f.partial, op.seg)
		}
		if err := writeSegment(f.dir, op.seg, op.epoch); err != nil && f.err == nil {
			f.err = err
		}
		op.seg.release()
	}
	for _, file := range f.partial {
		_ = file.Close()
	}
	close(f.done)
}

// syncTail persists the active segment's appended tail: on first sync
// the partial file is created with the segment header, then each sync
// appends only the record bytes not yet on disk and fsyncs. data is a
// stable snapshot (records are immutable once appended), so reading it
// off the append path is safe.
func (f *flusher) syncTail(seg *Segment, epoch uint64, data []byte) error {
	file, ok := f.partial[seg]
	if !ok {
		var hdr [segHeaderLen]byte
		copy(hdr[:4], segMagic)
		hdr[4] = segVersion
		binary.BigEndian.PutUint64(hdr[5:13], epoch)
		binary.BigEndian.PutUint64(hdr[13:21], seg.base)
		var err error
		file, err = os.OpenFile(segmentPath(f.dir, seg.base), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err = file.WriteAt(hdr[:], 0); err != nil {
			_ = file.Close()
			return err
		}
		f.partial[seg] = file
		seg.diskSynced = 0
	}
	if len(data) <= seg.diskSynced {
		return nil // a later sync already covered this prefix
	}
	if _, err := file.WriteAt(data[seg.diskSynced:], int64(segHeaderLen+seg.diskSynced)); err != nil {
		return err
	}
	if err := file.Sync(); err != nil {
		return err
	}
	seg.diskSynced = len(data)
	return nil
}

func (f *flusher) close() error {
	close(f.ops)
	<-f.done
	return f.err
}

// writeSegment persists one sealed segment: header + raw record bytes,
// fsynced, written via a temp file so a torn write never shadows a
// good segment.
func writeSegment(dir string, seg *Segment, epoch uint64) error {
	var hdr [segHeaderLen]byte
	copy(hdr[:4], segMagic)
	hdr[4] = segVersion
	binary.BigEndian.PutUint64(hdr[5:13], epoch)
	binary.BigEndian.PutUint64(hdr[13:21], seg.base)
	path := segmentPath(dir, seg.base)
	tmp := path + ".tmp"
	file, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = file.Write(hdr[:]); err == nil {
		_, err = file.Write(seg.buf)
	}
	if err == nil {
		err = file.Sync()
	}
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// recover rebuilds the log from Dir: segment files load in base-cursor
// order, each record re-validated (length prefix + CRC) with
// truncation at the first corrupt record — the log recovers to the
// last synced, intact state.
//
// The epoch persists with the segments only across a clean shutdown
// (marker present). After a crash the unsynced tail is gone and the
// cursor space rewinds, so keeping the epoch would let a consumer's
// stale floor silently swallow new records that reuse those cursors —
// instead recovery draws a fresh epoch and consumers replay from the
// oldest retained record (at-least-once, never a blackhole).
func (l *Log) recover() error {
	if err := os.MkdirAll(l.cfg.Dir, 0o755); err != nil {
		return err
	}
	marker := filepath.Join(l.cfg.Dir, cleanMarkerName)
	clean := false
	if _, err := os.Stat(marker); err == nil {
		clean = true
		_ = os.Remove(marker) // dirty while running
	}
	entries, err := os.ReadDir(l.cfg.Dir)
	if err != nil {
		return err
	}
	var paths []string
	for _, ent := range entries {
		if !ent.IsDir() && filepath.Ext(ent.Name()) == ".seg" {
			paths = append(paths, filepath.Join(l.cfg.Dir, ent.Name()))
		}
	}
	sort.Strings(paths) // zero-padded base cursors sort numerically
	for _, path := range paths {
		seg, epoch, err := readSegment(path)
		if err != nil || len(seg.recs) == 0 {
			_ = os.Remove(path) // corrupt beyond the header, or empty
			continue
		}
		if seg.base < l.next {
			_ = os.Remove(path) // overlaps recovered range: stale file
			continue
		}
		seg.log = l
		seg.sealed = true
		seg.refs = 1
		l.epoch = epoch
		l.segs = append(l.segs, seg)
		l.poolMu.Lock()
		l.acquired++ // recovered buffers enter the pool accounting
		l.poolMu.Unlock()
		l.events += uint64(len(seg.recs))
		l.bytes += uint64(len(seg.buf))
		l.next = seg.base + uint64(len(seg.recs))
	}
	if len(l.segs) > 0 && !clean {
		l.epoch = newEpoch() // crash recovery: see the doc comment above
	}
	return nil
}

// readSegment loads and validates one segment file, truncating at the
// first corrupt record.
func readSegment(path string) (*Segment, uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < segHeaderLen || string(raw[:4]) != segMagic || raw[4] != segVersion {
		return nil, 0, fmt.Errorf("store: %s: bad segment header", path)
	}
	epoch := binary.BigEndian.Uint64(raw[5:13])
	base := binary.BigEndian.Uint64(raw[13:21])
	body := raw[segHeaderLen:]
	seg := &Segment{base: base}
	off := 0
	for off < len(body) {
		n, sz := binary.Uvarint(body[off:])
		if sz <= 0 || off+sz+int(n)+4 > len(body) {
			break // torn tail: truncate here
		}
		payStart := off + sz
		pay := body[payStart : payStart+int(n)]
		want := binary.BigEndian.Uint32(body[payStart+int(n) : payStart+int(n)+4])
		if crc32.Checksum(pay, castagnoli) != want {
			break
		}
		seg.recs = append(seg.recs, recBounds{off: uint32(payStart), n: uint32(n)})
		off = payStart + int(n) + 4
	}
	seg.buf = body[:off]
	now := time.Now()
	seg.first, seg.last = now, now // age restarts at recovery
	return seg, epoch, nil
}
