package store

import (
	"testing"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/wire"
)

// BenchmarkLogReplay measures the replay read path a durable walker
// drives: cursor-ordered Next over a retained log, borrowing decode
// against the segment buffer (the event aliases the log's bytes — no
// payload copy), release, repeat. events/sec is the replay throughput
// one walker can feed a rejoining consumer.
func BenchmarkLogReplay(b *testing.B) {
	l, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const retained = 8192
	sender := ident.New(0xBEEF)
	for i := 0; i < retained; i++ {
		e := event.Acquire().SetStr(event.AttrType, "replay").SetInt("k", int64(i))
		e.Sender = sender
		l.Append(e, 0, false)
		e.Release()
	}

	b.ReportAllocs()
	b.ResetTimer()
	cursor := uint64(0)
	for i := 0; i < b.N; i++ {
		rec, ok := l.Next(cursor + 1)
		if !ok {
			cursor = 0 // wrap: replay the retained window again
			rec, ok = l.Next(1)
			if !ok {
				b.Fatal("log empty")
			}
		}
		e := event.Acquire()
		bound, err := wire.DecodeEventBacked(e, rec.Payload, rec.Seg())
		if err != nil {
			b.Fatal(err)
		}
		if !bound {
			rec.Release()
		}
		cursor = rec.Cursor
		e.Release()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
