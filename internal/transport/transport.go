// Package transport defines the generic transport layer of §III-D: an
// abstraction presenting send() and recv() of raw byte arrays so that
// higher layers are decoupled from the actual network beneath
// (UDP in the prototype; Bluetooth/ZigBee later; an in-process
// simulated network for experiments).
package transport

import (
	"errors"
	"time"

	"github.com/amuse/smc/internal/ident"
)

// Datagram is one received byte array together with its source. The
// receiver owns Data; if the transport drew it from the shared buffer
// pool, the owner may hand it back with Recycle once done.
type Datagram struct {
	From ident.ID
	Data []byte

	// bufp is the pool handle when Data is a pooled buffer (see
	// bufpool.go); nil otherwise.
	bufp *[]byte
}

// Transport carries byte arrays between services. Implementations must
// be safe for concurrent use. Delivery is unordered and unreliable —
// exactly the datagram semantics the prototype's UDP transport gives
// (§IV) — reliability is layered above (package reliable).
type Transport interface {
	// LocalID returns the 48-bit service ID this endpoint answers to.
	LocalID() ident.ID
	// Send transmits data to the service identified by dst. The
	// broadcast ID reaches every attached endpoint. Send does not
	// block on the receiver; data is copied before Send returns.
	Send(dst ident.ID, data []byte) error
	// Recv blocks until a datagram arrives or the transport closes.
	Recv() (Datagram, error)
	// RecvTimeout is Recv with a deadline; it returns ErrTimeout when
	// the deadline passes with nothing received.
	RecvTimeout(d time.Duration) (Datagram, error)
	// Close shuts the endpoint down; pending and future Recv calls
	// return ErrClosed.
	Close() error
}

// BatchSender is an optional Transport capability: transmitting a
// burst of datagrams to one destination as a single batched operation
// (sendmmsg on linux). Callers must keep every datagram within
// MaxDatagram; the reliability layer uses it to flush a whole window
// in one syscall.
type BatchSender interface {
	// SendBatch transmits bufs to dst in order. Like Send, data is
	// copied (or fully transmitted) before it returns, and delivery
	// errors beyond local setup failures are indistinguishable from
	// loss.
	SendBatch(dst ident.ID, bufs [][]byte) error
	// MaxDatagram reports the largest datagram SendBatch accepts;
	// 0 means unbounded.
	MaxDatagram() int
}

// DeliveryHook lets tests intercept unicast datagrams on hook-capable
// transports (Switch, UDPTransport): returning drop suppresses the
// datagram, a positive delay defers it — enough to script loss and
// reorder scenarios on otherwise well-behaved links without standing
// up a full netsim.Network. The hook must not retain data.
type DeliveryHook func(from, to ident.ID, data []byte) (drop bool, delay time.Duration)

var (
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrTimeout reports an expired RecvTimeout deadline.
	ErrTimeout = errors.New("transport: receive timeout")
	// ErrUnknownDest reports a send to an ID with no endpoint. Lossy
	// networks may drop silently instead; callers must not rely on
	// this error for liveness.
	ErrUnknownDest = errors.New("transport: unknown destination")
	// ErrTooLarge reports a datagram above the transport MTU.
	ErrTooLarge = errors.New("transport: datagram exceeds MTU")
)
