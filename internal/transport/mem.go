package transport

import (
	"fmt"
	"sync"
	"time"

	"github.com/amuse/smc/internal/ident"
)

// Switch is an in-memory hub connecting MemTransport endpoints with
// instant, loss-free delivery. It gives unit tests the cleanest
// possible network; the netsim package provides the degraded ones.
type Switch struct {
	mu        sync.RWMutex
	endpoints map[ident.ID]*MemTransport
	hook      DeliveryHook
	closed    bool
	timers    sync.WaitGroup
}

// SetDeliveryHook installs (or, with nil, removes) a test hook applied
// to every unicast datagram crossing the switch.
func (s *Switch) SetDeliveryHook(h DeliveryHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// NewSwitch returns an empty hub.
func NewSwitch() *Switch {
	return &Switch{endpoints: make(map[ident.ID]*MemTransport)}
}

// Attach creates an endpoint with the given ID. Attaching a duplicate
// ID fails.
func (s *Switch) Attach(id ident.ID) (*MemTransport, error) {
	if id.IsNil() || id.IsBroadcast() {
		return nil, fmt.Errorf("transport: cannot attach reserved ID %s", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, dup := s.endpoints[id]; dup {
		return nil, fmt.Errorf("transport: duplicate endpoint ID %s", id)
	}
	ep := &MemTransport{
		id:     id,
		sw:     s,
		queue:  make(chan Datagram, defaultQueueDepth),
		closed: make(chan struct{}),
	}
	s.endpoints[id] = ep
	return ep, nil
}

// Detach removes an endpoint without closing it. Used internally.
func (s *Switch) detach(id ident.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.endpoints, id)
}

// Close closes the hub and every attached endpoint.
func (s *Switch) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	eps := make([]*MemTransport, 0, len(s.endpoints))
	for _, ep := range s.endpoints {
		eps = append(eps, ep)
	}
	s.endpoints = make(map[ident.ID]*MemTransport)
	s.mu.Unlock()
	for _, ep := range eps {
		ep.closeLocal()
	}
	s.timers.Wait()
	return nil
}

// deliver routes a datagram to dst (or everyone but the sender for the
// broadcast ID).
func (s *Switch) deliver(from, dst ident.ID, data []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if dst.IsBroadcast() {
		for id, ep := range s.endpoints {
			if id == from {
				continue
			}
			ep.enqueue(pooledDatagram(from, data))
		}
		return nil
	}
	ep, ok := s.endpoints[dst]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDest, dst)
	}
	if s.hook != nil {
		drop, delay := s.hook(from, dst, data)
		if drop {
			return nil
		}
		if delay > 0 {
			dg := pooledDatagram(from, data)
			s.timers.Add(1)
			time.AfterFunc(delay, func() {
				defer s.timers.Done()
				s.mu.RLock()
				late, ok := s.endpoints[dst]
				s.mu.RUnlock()
				if ok {
					late.enqueue(dg)
				} else {
					dg.Recycle()
				}
			})
			return nil
		}
	}
	ep.enqueue(pooledDatagram(from, data))
	return nil
}

const defaultQueueDepth = 4096

// MemTransport is one endpoint on a Switch.
type MemTransport struct {
	id ident.ID
	sw *Switch

	queue chan Datagram

	closeOnce sync.Once
	closed    chan struct{}
}

var _ Transport = (*MemTransport)(nil)

// LocalID implements Transport.
func (t *MemTransport) LocalID() ident.ID { return t.id }

// Send implements Transport.
func (t *MemTransport) Send(dst ident.ID, data []byte) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	return t.sw.deliver(t.id, dst, data)
}

func (t *MemTransport) enqueue(d Datagram) {
	select {
	case <-t.closed:
		d.Recycle()
	case t.queue <- d:
	default:
		// Queue overflow models receive-buffer drops: datagram
		// transports are allowed to lose packets under load.
		d.Recycle()
	}
}

// Recv implements Transport.
func (t *MemTransport) Recv() (Datagram, error) {
	select {
	case d := <-t.queue:
		return d, nil
	case <-t.closed:
		// Drain anything already queued before reporting closure.
		select {
		case d := <-t.queue:
			return d, nil
		default:
			return Datagram{}, ErrClosed
		}
	}
}

// RecvTimeout implements Transport.
func (t *MemTransport) RecvTimeout(d time.Duration) (Datagram, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case dg := <-t.queue:
		return dg, nil
	case <-timer.C:
		return Datagram{}, ErrTimeout
	case <-t.closed:
		select {
		case dg := <-t.queue:
			return dg, nil
		default:
			return Datagram{}, ErrClosed
		}
	}
}

// Close implements Transport.
func (t *MemTransport) Close() error {
	t.closeOnce.Do(func() {
		t.sw.detach(t.id)
		close(t.closed)
	})
	return nil
}

// closeLocal closes without detaching (hub already dropped us).
func (t *MemTransport) closeLocal() {
	t.closeOnce.Do(func() {
		close(t.closed)
	})
}
