//go:build !linux || !(amd64 || arm64)

package transport

import "github.com/amuse/smc/internal/ident"

// Portable fallback: platforms without the recvmmsg/sendmmsg fast
// path run the one-datagram-per-syscall loop and SendBatch degrades to
// sequential Send calls.

const batchSyscallsAvailable = false

// mmsgBatch mirrors the linux fast path's vector size so portable
// builds share test coverage of multi-chunk batches.
const mmsgBatch = 32

func (t *UDPTransport) readLoopBatched() bool { return false }

func (t *UDPTransport) sendBatched(dst ident.ID, bufs [][]byte) error {
	for _, b := range bufs {
		if err := t.Send(dst, b); err != nil {
			return err
		}
	}
	return nil
}
