//go:build linux && arm64

package transport

// Syscall numbers for the batched UDP fast path on the generic
// (asm-generic) arm64 table.
const (
	sysRecvmmsg uintptr = 243
	sysSendmmsg uintptr = 269
)
