package transport

import (
	"sync"

	"github.com/amuse/smc/internal/ident"
)

// Datagram buffer recycling. Every delivery used to allocate a fresh
// copy of the datagram (the transport contract: data is copied before
// Send returns, and the receiver owns what Recv hands it). Hook-capable
// transports now draw those copies from a shared pool, and the one
// place that knows when a datagram is finished — the reliable channel's
// receive loop, right after the pooled packet decode detaches from the
// buffer — recycles it. Consumers that read a Transport directly and
// never call Recycle simply let their buffers fall to the garbage
// collector, exactly the seed behaviour.

// maxPooledDatagram bounds recycled buffer capacity so a jumbo
// datagram cannot pin memory for the pool's lifetime.
const maxPooledDatagram = 64 * 1024

var dgBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 2048)
	return &b
}}

// pooledCopy copies data into a pooled buffer and returns both the
// sized slice and its pool handle.
func pooledCopy(data []byte) ([]byte, *[]byte) {
	bp := dgBufPool.Get().(*[]byte)
	if cap(*bp) < len(data) {
		// Too small for this datagram but still clean: put it back for
		// smaller traffic rather than shedding it to the collector.
		dgBufPool.Put(bp)
		b := make([]byte, 0, len(data))
		bp = &b
	}
	buf := (*bp)[:len(data)]
	copy(buf, data)
	*bp = buf
	return buf, bp
}

// pooledDatagram builds a Datagram backed by a pooled copy of data.
func pooledDatagram(from ident.ID, data []byte) Datagram {
	buf, bp := pooledCopy(data)
	return Datagram{From: from, Data: buf, bufp: bp}
}

// NewPooledDatagram builds a Datagram backed by a pooled copy of data.
// Transport implementations outside this package (netsim) use it so
// their deliveries join the same recycling cycle.
func NewPooledDatagram(from ident.ID, data []byte) Datagram {
	return pooledDatagram(from, data)
}

// Recycle returns the datagram's buffer to the transport pool. Only
// the datagram's owner may call it, after which Data must not be
// touched. It is a no-op for datagrams whose buffer did not come from
// the pool.
func (d *Datagram) Recycle() {
	if d.bufp == nil {
		return
	}
	if cap(*d.bufp) <= maxPooledDatagram {
		dgBufPool.Put(d.bufp)
	}
	d.bufp = nil
	d.Data = nil
}
