//go:build linux && (amd64 || arm64)

package transport

import (
	"net"
	"syscall"
	"testing"

	"github.com/amuse/smc/internal/ident"
)

// TestIDSockaddrRoundTrip checks the unsafe sockaddr conversions used
// by the mmsg paths against the net-package based ident helpers.
func TestIDSockaddrRoundTrip(t *testing.T) {
	cases := []struct {
		ip   string
		port int
	}{
		{"127.0.0.1", 9999},
		{"192.168.10.2", 1},
		{"1.2.3.4", 65535},
	}
	for _, tc := range cases {
		want, err := ident.FromUDPAddr(&net.UDPAddr{IP: net.ParseIP(tc.ip), Port: tc.port})
		if err != nil {
			t.Fatal(err)
		}
		var sa syscall.RawSockaddrInet4
		idSockaddr(want, &sa)
		got, ok := sockaddrID(&sa)
		if !ok || got != want {
			t.Errorf("%s:%d round trip %s -> %s (ok=%v)", tc.ip, tc.port, want, got, ok)
		}
	}
	// Non-INET families are rejected rather than misparsed.
	var sa6 syscall.RawSockaddrInet4
	sa6.Family = syscall.AF_INET6
	if _, ok := sockaddrID(&sa6); ok {
		t.Error("AF_INET6 sockaddr accepted")
	}
}
