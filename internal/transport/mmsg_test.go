package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestUDPSendBatchRoundTrip pushes a multi-chunk batch through
// SendBatch over real loopback sockets and collects every datagram on
// the other side. On linux this exercises the sendmmsg transmit path
// (the batch exceeds one mmsgBatch chunk) and the recvmmsg read loop;
// elsewhere it validates the portable fallback.
func TestUDPSendBatchRoundTrip(t *testing.T) {
	a := newUDP(t)
	b := newUDP(t)

	const n = mmsgBatch + 7 // force a partial second sendmmsg chunk
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = []byte(fmt.Sprintf("batch-datagram-%03d", i))
	}
	if err := a.SendBatch(b.LocalID(), bufs); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}

	got := make(map[string]bool, n)
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < n && time.Now().Before(deadline) {
		dg, err := b.RecvTimeout(time.Until(deadline))
		if err != nil {
			break
		}
		if dg.From != a.LocalID() {
			t.Fatalf("datagram from %s, want %s", dg.From, a.LocalID())
		}
		got[string(dg.Data)] = true
		dg.Recycle()
	}
	// Loopback does not reorder or drop in practice; require the full
	// batch so a silently-truncated sendmmsg shows up as a failure.
	if len(got) != n {
		t.Fatalf("received %d/%d batched datagrams", len(got), n)
	}
	for i := range bufs {
		if !got[string(bufs[i])] {
			t.Errorf("missing datagram %d", i)
		}
	}
}

// TestUDPSendBatchOversize verifies per-buffer size validation happens
// before any syscall.
func TestUDPSendBatchOversize(t *testing.T) {
	a := newUDP(t)
	b := newUDP(t)
	bufs := [][]byte{[]byte("ok"), make([]byte, MaxUDPDatagram+1)}
	if err := a.SendBatch(b.LocalID(), bufs); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("SendBatch oversize = %v, want ErrTooLarge", err)
	}
}
