package transport

import (
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
)

func newUDP(t *testing.T) *UDPTransport {
	t.Helper()
	tr, err := NewUDPTransport()
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	t.Cleanup(func() {
		if err := tr.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return tr
}

func TestUDPIDDerivedFromSocket(t *testing.T) {
	tr := newUDP(t)
	addr := tr.LocalAddr()
	want, err := ident.FromUDPAddr(addr)
	if err != nil {
		t.Fatal(err)
	}
	if tr.LocalID() != want {
		t.Errorf("ID = %s, want %s (from %v)", tr.LocalID(), want, addr)
	}
	ip, port := tr.LocalID().Addr()
	if port != addr.Port || !ip.Equal(addr.IP.To4().To16()) && !ip.To4().Equal(addr.IP.To4()) {
		t.Errorf("Addr() = %v:%d, socket %v", ip, port, addr)
	}
}

func TestUDPUnicastRoundTrip(t *testing.T) {
	a := newUDP(t)
	b := newUDP(t)
	if err := a.Send(b.LocalID(), []byte("over udp")); err != nil {
		t.Fatalf("send: %v", err)
	}
	dg, err := b.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if dg.From != a.LocalID() || string(dg.Data) != "over udp" {
		t.Errorf("got %s %q", dg.From, dg.Data)
	}
	// And the reverse direction.
	if err := b.Send(a.LocalID(), []byte("reply")); err != nil {
		t.Fatal(err)
	}
	dg, err = a.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("recv reply: %v", err)
	}
	if string(dg.Data) != "reply" {
		t.Errorf("reply = %q", dg.Data)
	}
}

func TestUDPBroadcastPeers(t *testing.T) {
	a := newUDP(t)
	b := newUDP(t)
	c := newUDP(t)
	a.AddBroadcastPeer(b.LocalAddr())
	a.AddBroadcastPeer(c.LocalAddr())
	if err := a.Send(ident.Broadcast, []byte("beacon")); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	for _, ep := range []*UDPTransport{b, c} {
		dg, err := ep.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if string(dg.Data) != "beacon" {
			t.Errorf("payload = %q", dg.Data)
		}
	}
}

func TestUDPOversizedDatagramRejected(t *testing.T) {
	a := newUDP(t)
	err := a.Send(ident.New(1), make([]byte, MaxUDPDatagram+1))
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestUDPCloseUnblocksRecv(t *testing.T) {
	a, err := NewUDPTransport()
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("recv err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	// Send after close fails; double close is fine.
	if err := a.Send(ident.New(1), []byte("x")); err == nil {
		t.Error("send after close succeeded")
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestUDPPinnedPort(t *testing.T) {
	tr, err := NewUDPTransport(WithPort(0)) // OS-chosen, as the prototype
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer tr.Close()
	if tr.LocalAddr().Port == 0 {
		t.Error("no port bound")
	}
}

func TestUDPSendHookDropAndDelay(t *testing.T) {
	a, err := NewUDPTransport()
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer a.Close()
	b, err := NewUDPTransport()
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer b.Close()

	var calls int
	a.SetSendHook(func(from, to ident.ID, data []byte) (bool, time.Duration) {
		calls++
		switch calls {
		case 1:
			return true, 0
		case 2:
			return false, 30 * time.Millisecond
		default:
			return false, 0
		}
	})
	for i := byte(1); i <= 3; i++ {
		if err := a.Send(b.LocalID(), []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	dg, err := b.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Data[0] != 3 {
		t.Errorf("first arrival = %d, want 3 (datagram 1 dropped, 2 delayed)", dg.Data[0])
	}
	dg, err = b.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Data[0] != 2 {
		t.Errorf("second arrival = %d, want 2", dg.Data[0])
	}
	if _, err := b.RecvTimeout(50 * time.Millisecond); err == nil {
		t.Error("dropped datagram surfaced")
	}
}
