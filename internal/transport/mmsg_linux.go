//go:build linux && (amd64 || arm64)

package transport

import (
	"sync"
	"syscall"
	"unsafe"

	"github.com/amuse/smc/internal/ident"
)

// Batched UDP syscalls: recvmmsg on the receive loop and sendmmsg
// behind SendBatch move up to mmsgBatch datagrams per kernel crossing,
// so a burst (the reliable layer filling a window, a proxy flushing a
// coalesced batch) pays one syscall instead of one per datagram. The
// golang.org/x/net ipv4 ReadBatch/WriteBatch wrappers provide the same
// thing, but this module is dependency-free, so the two syscalls are
// issued directly; both exist on every supported linux kernel (2.6.33
// / 3.0). Message vectors — headers, iovecs, sockaddrs and receive
// buffers — are allocated once and reused (recv) or pooled (send), so
// the steady state adds no per-datagram allocation. Other platforms
// fall back to the portable one-datagram-per-syscall path
// (mmsg_fallback.go).

const mmsgBatch = 32

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// per-message byte count filled in (recvmmsg) or consumed (sendmmsg).
// syscall.Msghdr ends 8-byte aligned on both supported arches, so the
// explicit pad reproduces the C layout exactly.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   uint32
}

// msgVec is one reusable message vector: parallel slices wired
// together so hdrs[i] points at names[i] and iovs[i], and iovs[i] at
// bufs[i] (receive) or a caller buffer (send).
type msgVec struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet4
	bufs  [][]byte
}

// newMsgVec wires a vector of n messages; withBufs allocates owned
// receive buffers, the send side points iovecs at caller data instead.
func newMsgVec(n int, withBufs bool) *msgVec {
	v := &msgVec{
		hdrs:  make([]mmsghdr, n),
		iovs:  make([]syscall.Iovec, n),
		names: make([]syscall.RawSockaddrInet4, n),
	}
	if withBufs {
		v.bufs = make([][]byte, n)
	}
	for i := range v.hdrs {
		if withBufs {
			v.bufs[i] = make([]byte, MaxUDPDatagram+1)
			v.iovs[i].Base = &v.bufs[i][0]
			v.iovs[i].Len = uint64(len(v.bufs[i]))
		}
		v.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&v.names[i]))
		v.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(v.names[i]))
		v.hdrs[i].hdr.Iov = &v.iovs[i]
		v.hdrs[i].hdr.Iovlen = 1
	}
	return v
}

// sendVecPool recycles send-side message vectors across SendBatch
// callers (one reliable sender goroutine per destination).
var sendVecPool = sync.Pool{New: func() interface{} { return newMsgVec(mmsgBatch, false) }}

func recvmmsg(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(flags), 0, 0)
	return int(n), errno
}

func sendmmsg(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(flags), 0, 0)
	return int(n), errno
}

// sockaddrID converts a kernel-filled IPv4 sockaddr to a service ID
// without building a net.UDPAddr. Port bytes are network order.
func sockaddrID(sa *syscall.RawSockaddrInet4) (ident.ID, bool) {
	if sa.Family != syscall.AF_INET {
		return ident.Nil, false
	}
	pb := (*[2]byte)(unsafe.Pointer(&sa.Port))
	v := uint64(sa.Addr[0])<<40 | uint64(sa.Addr[1])<<32 |
		uint64(sa.Addr[2])<<24 | uint64(sa.Addr[3])<<16 |
		uint64(pb[0])<<8 | uint64(pb[1])
	return ident.New(v), true
}

// idSockaddr is the inverse: a service ID as a kernel sockaddr.
func idSockaddr(id ident.ID, sa *syscall.RawSockaddrInet4) {
	v := uint64(id)
	sa.Family = syscall.AF_INET
	sa.Addr = [4]byte{byte(v >> 40), byte(v >> 32), byte(v >> 24), byte(v >> 16)}
	pb := (*[2]byte)(unsafe.Pointer(&sa.Port))
	pb[0], pb[1] = byte(v>>8), byte(v)
}

// readLoopBatched drains the socket with recvmmsg, delivering every
// datagram of a burst for one syscall. It reports false when batched
// reads cannot be set up (the caller then runs the portable loop) and
// true when it ran to socket closure.
func (t *UDPTransport) readLoopBatched() bool {
	rc, err := t.conn.SyscallConn()
	if err != nil {
		return false
	}
	vec := newMsgVec(mmsgBatch, true)
	for {
		var n int
		var rerr syscall.Errno
		err := rc.Read(func(fd uintptr) bool {
			n, rerr = recvmmsg(fd, vec.hdrs, syscall.MSG_DONTWAIT)
			// Returning false parks the goroutine in the runtime
			// poller until the socket is readable again — the batched
			// equivalent of a blocking ReadFromUDP.
			return !(rerr == syscall.EAGAIN || rerr == syscall.EWOULDBLOCK)
		})
		if err != nil {
			return true // socket closed (or hard poll error): loop done
		}
		if rerr != 0 {
			if rerr == syscall.EINTR {
				continue
			}
			return true
		}
		for i := 0; i < n; i++ {
			id, ok := sockaddrID(&vec.names[i])
			// Namelen is rewritten by the kernel per message; reset it
			// for the next call regardless of what this one was.
			vec.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(vec.names[i]))
			if !ok {
				continue
			}
			dg := pooledDatagram(id, vec.bufs[i][:vec.hdrs[i].n])
			select {
			case t.queue <- dg:
			case <-t.done:
				dg.Recycle()
				return true
			default:
				// Receive overflow: drop, as real UDP does.
				dg.Recycle()
			}
		}
	}
}

// sendBatched transmits bufs to one destination with sendmmsg,
// chunking by the pooled vector size. Partial sends retry the
// remainder; on a datagram network any residual error is
// indistinguishable from loss, so only setup errors are returned.
func (t *UDPTransport) sendBatched(dst ident.ID, bufs [][]byte) error {
	rc, err := t.conn.SyscallConn()
	if err != nil {
		return err
	}
	vec := sendVecPool.Get().(*msgVec)
	defer func() {
		for i := range vec.iovs {
			vec.iovs[i].Base = nil // do not pin caller buffers in the pool
		}
		sendVecPool.Put(vec)
	}()
	for len(bufs) > 0 {
		n := len(bufs)
		if n > mmsgBatch {
			n = mmsgBatch
		}
		for i := 0; i < n; i++ {
			idSockaddr(dst, &vec.names[i])
			vec.iovs[i].Base = &bufs[i][0]
			vec.iovs[i].Len = uint64(len(bufs[i]))
			vec.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(vec.names[i]))
			vec.hdrs[i].n = 0
		}
		sent := 0
		for sent < n {
			var k int
			var serr syscall.Errno
			werr := rc.Write(func(fd uintptr) bool {
				k, serr = sendmmsg(fd, vec.hdrs[sent:n], syscall.MSG_DONTWAIT)
				return !(serr == syscall.EAGAIN || serr == syscall.EWOULDBLOCK)
			})
			if werr != nil {
				return werr
			}
			if serr != 0 {
				if serr == syscall.EINTR {
					continue
				}
				// Per-datagram delivery errors (ECONNREFUSED from a
				// dead peer, ENOBUFS under pressure) are loss on a
				// datagram network; drop the batch like Send drops.
				return nil
			}
			sent += k
		}
		bufs = bufs[n:]
	}
	return nil
}

// batchSyscallsAvailable reports whether this platform build carries
// the recvmmsg/sendmmsg fast path.
const batchSyscallsAvailable = true
