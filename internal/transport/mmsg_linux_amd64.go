//go:build linux && amd64

package transport

// Syscall numbers for the batched UDP fast path. The stdlib syscall
// table on linux/amd64 predates sendmmsg (it stops at prlimit64), so
// both numbers are pinned here; they are ABI-frozen.
const (
	sysRecvmmsg uintptr = 299
	sysSendmmsg uintptr = 307
)
