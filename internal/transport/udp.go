package transport

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"github.com/amuse/smc/internal/ident"
)

// UDPTransport is the prototype transport of §IV: datagram sockets,
// with the service ID derived from the unicast socket's address and
// port. The OS chooses the port (the prototype "is not hardwired to use
// a specific port for unicast traffic"); broadcast traffic goes to an
// arbitrarily chosen port number known by all services.
type UDPTransport struct {
	id   ident.ID
	conn *net.UDPConn

	// bcast lists destinations used for the broadcast ID. On a real
	// wireless segment this would be the subnet broadcast address;
	// for loopback testing it is the set of peer broadcast listeners.
	mu     sync.RWMutex
	bcast  []*net.UDPAddr
	hook   DeliveryHook
	closed bool

	queue chan Datagram
	done  chan struct{}
	wg    sync.WaitGroup
}

var _ Transport = (*UDPTransport)(nil)

// MaxUDPDatagram is the largest datagram the transport will send.
const MaxUDPDatagram = 60 * 1024

// UDPOption configures a UDPTransport.
type UDPOption func(*udpConfig)

type udpConfig struct {
	listenIP   net.IP
	port       int
	queueDepth int
}

// WithListenIP sets the local IP to bind (default 127.0.0.1).
func WithListenIP(ip net.IP) UDPOption {
	return func(c *udpConfig) { c.listenIP = ip }
}

// WithPort pins the local port (default 0: OS chooses, as in the
// prototype's unicast socket).
func WithPort(port int) UDPOption {
	return func(c *udpConfig) { c.port = port }
}

// WithQueueDepth sets the receive queue depth.
func WithQueueDepth(n int) UDPOption {
	return func(c *udpConfig) { c.queueDepth = n }
}

// WithAddr binds the transport to a "host:port" string, the shape the
// daemons take on their -addr flags. Port 0 lets the OS choose; the
// bound address is then available from LocalAddr. An empty host keeps
// the loopback default.
func WithAddr(addr string) (UDPOption, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("bad listen address %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 0 || port > 65535 {
		return nil, fmt.Errorf("bad listen port %q", portStr)
	}
	ip := net.IPv4(127, 0, 0, 1)
	if host != "" {
		if ip = net.ParseIP(host); ip == nil {
			return nil, fmt.Errorf("bad listen host %q", host)
		}
	}
	return func(c *udpConfig) { c.listenIP = ip; c.port = port }, nil
}

// NewUDPTransport opens a datagram socket and derives the service ID
// from its bound address and port.
func NewUDPTransport(opts ...UDPOption) (*UDPTransport, error) {
	cfg := udpConfig{listenIP: net.IPv4(127, 0, 0, 1), queueDepth: defaultQueueDepth}
	for _, o := range opts {
		o(&cfg)
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: cfg.listenIP, Port: cfg.port})
	if err != nil {
		return nil, fmt.Errorf("udp listen: %w", err)
	}
	addr, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		conn.Close()
		return nil, errors.New("udp transport: unexpected local address type")
	}
	id, err := ident.FromUDPAddr(addr)
	if err != nil {
		conn.Close()
		return nil, err
	}
	t := &UDPTransport{
		id:    id,
		conn:  conn,
		queue: make(chan Datagram, cfg.queueDepth),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

// SetSendHook installs (or, with nil, removes) a test hook applied to
// every unicast Send before it reaches the socket: loss and reorder
// injection on the real-socket path, mirroring Switch.SetDeliveryHook.
func (t *UDPTransport) SetSendHook(h DeliveryHook) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hook = h
}

// AddBroadcastPeer registers an address reached by broadcast sends.
func (t *UDPTransport) AddBroadcastPeer(addr *net.UDPAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bcast = append(t.bcast, addr)
}

// LocalAddr exposes the bound UDP address.
func (t *UDPTransport) LocalAddr() *net.UDPAddr {
	addr, _ := t.conn.LocalAddr().(*net.UDPAddr)
	return addr
}

func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	// Batched receive (recvmmsg) where the platform provides it; the
	// portable loop below is the fallback — and the safety net should
	// batched setup fail.
	if batchSyscallsAvailable && t.readLoopBatched() {
		return
	}
	buf := make([]byte, MaxUDPDatagram+1)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
			default:
				// Socket error outside shutdown: stop receiving;
				// Recv callers see closure when Close runs.
			}
			return
		}
		id, err := ident.FromUDPAddr(from)
		if err != nil {
			continue
		}
		dg := pooledDatagram(id, buf[:n])
		select {
		case t.queue <- dg:
		case <-t.done:
			dg.Recycle()
			return
		default:
			// Receive overflow: drop, as real UDP does.
			dg.Recycle()
		}
	}
}

// LocalID implements Transport.
func (t *UDPTransport) LocalID() ident.ID { return t.id }

// Send implements Transport. Unicast destinations are addressed by
// decoding the 48-bit ID back to IP:port — the inverse of the ID
// derivation, exactly how the prototype routes packets.
func (t *UDPTransport) Send(dst ident.ID, data []byte) error {
	if len(data) > MaxUDPDatagram {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), MaxUDPDatagram)
	}
	t.mu.RLock()
	closed := t.closed
	bcast := t.bcast
	hook := t.hook
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if hook != nil && !dst.IsBroadcast() {
		drop, delay := hook(t.id, dst, data)
		if drop {
			return nil
		}
		if delay > 0 {
			cp := make([]byte, len(data))
			copy(cp, data)
			ip, port := dst.Addr()
			time.AfterFunc(delay, func() {
				// Best effort: a closed socket just drops the
				// datagram, as a real network would.
				_, _ = t.conn.WriteToUDP(cp, &net.UDPAddr{IP: ip, Port: port})
			})
			return nil
		}
	}
	if dst.IsBroadcast() {
		var firstErr error
		for _, addr := range bcast {
			if _, err := t.conn.WriteToUDP(data, addr); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	ip, port := dst.Addr()
	_, err := t.conn.WriteToUDP(data, &net.UDPAddr{IP: ip, Port: port})
	if err != nil {
		return fmt.Errorf("udp send to %s: %w", dst, err)
	}
	return nil
}

// SendBatch implements BatchSender: a burst of datagrams to one
// destination moves through sendmmsg in chunks of pooled message
// vectors, one syscall per chunk. Hooked, broadcast, single-datagram
// and non-linux sends degrade to sequential Send calls.
func (t *UDPTransport) SendBatch(dst ident.ID, bufs [][]byte) error {
	for _, b := range bufs {
		if len(b) > MaxUDPDatagram {
			return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(b), MaxUDPDatagram)
		}
	}
	t.mu.RLock()
	closed, hook := t.closed, t.hook
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !batchSyscallsAvailable || hook != nil || dst.IsBroadcast() || len(bufs) < 2 {
		for _, b := range bufs {
			if err := t.Send(dst, b); err != nil {
				return err
			}
		}
		return nil
	}
	return t.sendBatched(dst, bufs)
}

// MaxDatagram implements BatchSender.
func (t *UDPTransport) MaxDatagram() int { return MaxUDPDatagram }

var _ BatchSender = (*UDPTransport)(nil)

// Recv implements Transport.
func (t *UDPTransport) Recv() (Datagram, error) {
	select {
	case d := <-t.queue:
		return d, nil
	case <-t.done:
		select {
		case d := <-t.queue:
			return d, nil
		default:
			return Datagram{}, ErrClosed
		}
	}
}

// RecvTimeout implements Transport.
func (t *UDPTransport) RecvTimeout(d time.Duration) (Datagram, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case dg := <-t.queue:
		return dg, nil
	case <-timer.C:
		return Datagram{}, ErrTimeout
	case <-t.done:
		select {
		case dg := <-t.queue:
			return dg, nil
		default:
			return Datagram{}, ErrClosed
		}
	}
}

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done)
	err := t.conn.Close()
	t.wg.Wait()
	return err
}
