package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
)

func TestSwitchUnicast(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	a, err := sw.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sw.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.LocalID(), []byte("ping")); err != nil {
		t.Fatalf("send: %v", err)
	}
	dg, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if dg.From != a.LocalID() || string(dg.Data) != "ping" {
		t.Errorf("got %v %q", dg.From, dg.Data)
	}
}

func TestSwitchBroadcast(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	a, _ := sw.Attach(ident.New(1))
	b, _ := sw.Attach(ident.New(2))
	c, _ := sw.Attach(ident.New(3))
	if err := a.Send(ident.Broadcast, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []*MemTransport{b, c} {
		dg, err := ep.RecvTimeout(time.Second)
		if err != nil {
			t.Fatalf("recv on %s: %v", ep.LocalID(), err)
		}
		if string(dg.Data) != "hello" {
			t.Errorf("payload %q", dg.Data)
		}
	}
	// Sender must not hear its own broadcast.
	if _, err := a.RecvTimeout(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("sender received own broadcast: %v", err)
	}
}

func TestSwitchDataIsCopied(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	a, _ := sw.Attach(ident.New(1))
	b, _ := sw.Attach(ident.New(2))
	buf := []byte("mutable")
	if err := a.Send(b.LocalID(), buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	dg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(dg.Data) != "mutable" {
		t.Error("datagram aliases sender buffer")
	}
}

func TestSwitchUnknownDestination(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	a, _ := sw.Attach(ident.New(1))
	err := a.Send(ident.New(99), []byte("x"))
	if !errors.Is(err, ErrUnknownDest) {
		t.Errorf("err = %v", err)
	}
}

func TestSwitchDuplicateAndReservedIDs(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	if _, err := sw.Attach(ident.New(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Attach(ident.New(1)); err == nil {
		t.Error("duplicate ID attached")
	}
	if _, err := sw.Attach(ident.Nil); err == nil {
		t.Error("nil ID attached")
	}
	if _, err := sw.Attach(ident.Broadcast); err == nil {
		t.Error("broadcast ID attached")
	}
}

func TestRecvTimeout(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	a, _ := sw.Attach(ident.New(1))
	start := time.Now()
	_, err := a.RecvTimeout(50 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("returned too early")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	a, _ := sw.Attach(ident.New(1))
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	a, _ := sw.Attach(ident.New(1))
	b, _ := sw.Attach(ident.New(2))
	a.Close()
	if err := a.Send(b.LocalID(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
	// The detached endpoint is unreachable.
	if err := b.Send(a.LocalID(), []byte("x")); !errors.Is(err, ErrUnknownDest) {
		t.Errorf("send to closed = %v", err)
	}
}

func TestSwitchCloseClosesEndpoints(t *testing.T) {
	sw := NewSwitch()
	a, _ := sw.Attach(ident.New(1))
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after hub close: %v", err)
	}
	if _, err := sw.Attach(ident.New(5)); !errors.Is(err, ErrClosed) {
		t.Errorf("attach after close: %v", err)
	}
	// Idempotent close.
	if err := sw.Close(); err != nil {
		t.Error(err)
	}
}

func TestConcurrentSendersReceiveAll(t *testing.T) {
	sw := NewSwitch()
	defer sw.Close()
	dst, _ := sw.Attach(ident.New(100))
	const senders, per = 8, 50

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := sw.Attach(ident.New(uint64(s + 1)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ep *MemTransport) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send(dst.LocalID(), []byte{byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	for i := 0; i < senders*per; i++ {
		if _, err := dst.RecvTimeout(time.Second); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
}

func TestSwitchDeliveryHookDropAndDelay(t *testing.T) {
	s := NewSwitch()
	defer s.Close()
	a, err := s.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}

	var calls int
	s.SetDeliveryHook(func(from, to ident.ID, data []byte) (bool, time.Duration) {
		calls++
		switch calls {
		case 1:
			return true, 0 // drop the first datagram
		case 2:
			return false, 20 * time.Millisecond // delay the second
		default:
			return false, 0
		}
	})

	for i := byte(1); i <= 3; i++ {
		if err := a.Send(b.LocalID(), []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	// Datagram 1 dropped, 2 delayed: 3 arrives first, then 2.
	dg, err := b.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Data[0] != 3 {
		t.Errorf("first arrival = %d, want 3 (hook reorder)", dg.Data[0])
	}
	dg, err = b.RecvTimeout(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Data[0] != 2 {
		t.Errorf("second arrival = %d, want 2 (delayed)", dg.Data[0])
	}
	if _, err := b.RecvTimeout(50 * time.Millisecond); err == nil {
		t.Error("dropped datagram surfaced")
	}

	s.SetDeliveryHook(nil)
	if err := a.Send(b.LocalID(), []byte{9}); err != nil {
		t.Fatal(err)
	}
	if dg, err = b.RecvTimeout(time.Second); err != nil || dg.Data[0] != 9 {
		t.Errorf("after hook removal: %v %v", dg, err)
	}
}
