package policy

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/amuse/smc/internal/event"
)

// Parse parses Ponder-lite policy text.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.eof() {
		switch {
		case p.accept("obligation"):
			o, err := p.obligation()
			if err != nil {
				return nil, err
			}
			f.Obligations = append(f.Obligations, o)
		case p.accept("authorization"):
			a, err := p.authorization()
			if err != nil {
				return nil, err
			}
			f.Authorizations = append(f.Authorizations, a)
		default:
			return nil, p.errf("expected 'obligation' or 'authorization', got %q", p.peek().text)
		}
	}
	return f, nil
}

// ---- lexer ----

type tokKind int

const (
	tokIdent tokKind = iota + 1
	tokString
	tokNumber
	tokSymbol // { } ( ) , = != < <= > >= && *
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(src[j])
					}
				} else {
					if src[j] == '\n' {
						line++
					}
					sb.WriteByte(src[j])
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("%w: line %d: unterminated string", ErrParse, line)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
			i = j + 1
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], line: line})
			i = j
		case c == '-' || (c >= '0' && c <= '9'):
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], line: line})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "!=", "<=", ">=", "&&":
				toks = append(toks, token{kind: tokSymbol, text: two, line: line})
				i += 2
				continue
			}
			switch c {
			case '{', '}', '(', ')', ',', '=', '<', '>', '*':
				toks = append(toks, token{kind: tokSymbol, text: string(c), line: line})
				i++
			default:
				return nil, fmt.Errorf("%w: line %d: unexpected character %q", ErrParse, line, string(c))
			}
		}
	}
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{line: p.lastLine()}
	}
	return p.toks[p.pos]
}

func (p *parser) lastLine() int {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].line
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

// accept consumes the next token when it is the given ident/symbol.
func (p *parser) accept(text string) bool {
	if p.eof() {
		return false
	}
	if p.toks[p.pos].text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	return p.errf("expected %q, got %q", text, p.peek().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: line %d: %s", ErrParse, p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) stringLit() (string, error) {
	t := p.peek()
	if t.kind != tokString {
		return "", p.errf("expected string literal, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// literal parses a value literal.
func (p *parser) literal() (event.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.pos++
		return event.Str(t.text), nil
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return event.Value{}, p.errf("bad number %q", t.text)
			}
			return event.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return event.Value{}, p.errf("bad number %q", t.text)
		}
		return event.Int(i), nil
	case tokIdent:
		switch t.text {
		case "true":
			p.pos++
			return event.Bool(true), nil
		case "false":
			p.pos++
			return event.Bool(false), nil
		}
	}
	return event.Value{}, p.errf("expected literal, got %q", t.text)
}

// constraints parses `constraint (&& constraint)*`.
func (p *parser) constraints() (*event.Filter, error) {
	f := event.NewFilter()
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		opTok := p.peek()
		if opTok.text == "exists" {
			p.pos++
			f.Where(name, event.OpExists, event.Value{})
		} else {
			op, err := event.ParseOp(opTok.text)
			if err != nil {
				return nil, p.errf("bad operator %q", opTok.text)
			}
			p.pos++
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			f.Where(name, op, v)
		}
		if !p.accept("&&") {
			return f, nil
		}
	}
}

func (p *parser) obligation() (*Obligation, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	o := &Obligation{Name: name}
	if p.accept("for") {
		dt, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		o.DeviceType = dt
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	if err := p.expect("on"); err != nil {
		return nil, err
	}
	if o.On, err = p.constraints(); err != nil {
		return nil, err
	}
	if p.accept("when") {
		if o.When, err = p.constraints(); err != nil {
			return nil, err
		}
	}
	if err := p.expect("do"); err != nil {
		return nil, err
	}
	for {
		a, err := p.action()
		if err != nil {
			return nil, err
		}
		o.Actions = append(o.Actions, a)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func (p *parser) action() (Action, error) {
	kw, err := p.ident()
	if err != nil {
		return Action{}, err
	}
	if err := p.expect("("); err != nil {
		return Action{}, err
	}
	switch kw {
	case "publish":
		a := Action{Kind: ActionPublish}
		for {
			name, err := p.ident()
			if err != nil {
				return Action{}, err
			}
			if err := p.expect("="); err != nil {
				return Action{}, err
			}
			v, err := p.literal()
			if err != nil {
				return Action{}, err
			}
			a.Attrs = append(a.Attrs, AttrAssign{Name: name, Value: v})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return Action{}, err
		}
		return a, nil
	case "log", "enable", "disable":
		msg, err := p.stringLit()
		if err != nil {
			return Action{}, err
		}
		if err := p.expect(")"); err != nil {
			return Action{}, err
		}
		kind := map[string]ActionKind{
			"log": ActionLog, "enable": ActionEnable, "disable": ActionDisable,
		}[kw]
		return Action{Kind: kind, Message: msg}, nil
	default:
		return Action{}, p.errf("unknown action %q", kw)
	}
}

func (p *parser) authorization() (*Authorization, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	a := &Authorization{Name: name}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for !p.accept("}") {
		kw, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "effect":
			eff, err := p.ident()
			if err != nil {
				return nil, err
			}
			switch eff {
			case "allow":
				a.Effect = EffectAllow
			case "deny":
				a.Effect = EffectDeny
			default:
				return nil, p.errf("bad effect %q", eff)
			}
		case "subject":
			if p.accept("*") {
				a.Subject = "*"
				continue
			}
			s, err := p.stringLit()
			if err != nil {
				return nil, err
			}
			a.Subject = s
		case "action":
			if p.accept("*") {
				a.Verb = VerbAny
				continue
			}
			v, err := p.ident()
			if err != nil {
				return nil, err
			}
			switch v {
			case "publish":
				a.Verb = VerbPublish
			case "subscribe":
				a.Verb = VerbSubscribe
			default:
				return nil, p.errf("bad action verb %q", v)
			}
		case "target":
			if a.Target, err = p.constraints(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unknown authorization field %q", kw)
		}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
