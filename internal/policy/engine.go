package policy

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// Logf is the engine's logging hook.
type Logf func(format string, args ...interface{})

// Engine is the policy service: it hosts obligation policies
// (subscribing to their triggering events on the bus) and evaluates
// authorisation policies for the bus (it implements bus.Authorizer).
type Engine struct {
	svc  *bus.LocalService
	logf Logf

	mu          sync.Mutex
	obligations map[string]*obligationState
	auths       []*Authorization
	typeCount   map[string]int // live members per device type
	stats       Stats
	defaultEff  Effect
}

var _ bus.Authorizer = (*Engine)(nil)

type obligationState struct {
	pol *Obligation
	// enabled is the management switch (Enable/Disable).
	enabled bool
	// deployed tracks device-type scoping: scoped policies are
	// deployed while a member of the type is in the cell.
	deployed bool
	fires    uint64
}

// Stats counts engine activity.
type Stats struct {
	Fires          uint64
	ActionsRun     uint64
	PublishActions uint64
	LogActions     uint64
	Toggles        uint64
	AllowDecisions uint64
	DenyDecisions  uint64
}

// Option configures the engine.
type Option func(*Engine)

// WithLogf installs a logging hook (default: discard).
func WithLogf(f Logf) Option {
	return func(e *Engine) { e.logf = f }
}

// WithDefaultEffect sets the verdict when no authorisation policy
// matches (default allow — an open cell; deploy deny rules to close).
func WithDefaultEffect(eff Effect) Option {
	return func(e *Engine) { e.defaultEff = eff }
}

// NewEngine attaches a policy service to the bus as the local service
// "policy". The engine immediately subscribes to membership events so
// that device-type-scoped policies deploy and withdraw automatically.
func NewEngine(b *bus.Bus, opts ...Option) (*Engine, error) {
	e := &Engine{
		svc:         b.Local("policy"),
		logf:        func(string, ...interface{}) {},
		obligations: make(map[string]*obligationState),
		typeCount:   make(map[string]int),
		defaultEff:  EffectAllow,
	}
	for _, o := range opts {
		o(e)
	}
	newMember := event.NewFilter().WhereType(event.TypeNewMember)
	purge := event.NewFilter().WhereType(event.TypePurgeMember)
	if err := e.svc.Subscribe(newMember, e.onNewMember); err != nil {
		return nil, fmt.Errorf("policy: subscribe new-member: %w", err)
	}
	if err := e.svc.Subscribe(purge, e.onPurgeMember); err != nil {
		return nil, fmt.Errorf("policy: subscribe purge-member: %w", err)
	}
	return e, nil
}

// ID returns the engine's local service ID on the bus.
func (e *Engine) ID() ident.ID { return e.svc.ID() }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// LoadString parses policy text and installs every policy in it.
func (e *Engine) LoadString(src string) error {
	f, err := Parse(src)
	if err != nil {
		return err
	}
	return e.Install(f)
}

// Install adds the policies of a parsed file.
func (e *Engine) Install(f *File) error {
	for _, o := range f.Obligations {
		if err := e.AddObligation(o); err != nil {
			return err
		}
	}
	for _, a := range f.Authorizations {
		if err := e.AddAuthorization(a); err != nil {
			return err
		}
	}
	return nil
}

// AddObligation installs one obligation policy (enabled). Scoped
// policies deploy when a member of their device type is present.
func (e *Engine) AddObligation(o *Obligation) error {
	if err := o.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	if _, dup := e.obligations[o.Name]; dup {
		e.mu.Unlock()
		return fmt.Errorf("policy: duplicate obligation %q", o.Name)
	}
	st := &obligationState{
		pol:      o,
		enabled:  true,
		deployed: o.DeviceType == "" || e.typeCount[o.DeviceType] > 0,
	}
	e.obligations[o.Name] = st
	e.mu.Unlock()

	handler := func(ev *event.Event) { e.fire(st, ev) }
	if err := e.svc.Subscribe(o.On, handler); err != nil {
		e.mu.Lock()
		delete(e.obligations, o.Name)
		e.mu.Unlock()
		return fmt.Errorf("policy: subscribe obligation %q: %w", o.Name, err)
	}
	return nil
}

// RemoveObligation uninstalls an obligation policy.
func (e *Engine) RemoveObligation(name string) error {
	e.mu.Lock()
	st, ok := e.obligations[name]
	if ok {
		delete(e.obligations, name)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("policy: no obligation %q", name)
	}
	return e.svc.Unsubscribe(st.pol.On)
}

// AddAuthorization installs one authorisation policy.
func (e *Engine) AddAuthorization(a *Authorization) error {
	if err := a.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, have := range e.auths {
		if have.Name == a.Name {
			return fmt.Errorf("policy: duplicate authorization %q", a.Name)
		}
	}
	e.auths = append(e.auths, a)
	return nil
}

// RemoveAuthorization uninstalls an authorisation policy by name.
func (e *Engine) RemoveAuthorization(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, a := range e.auths {
		if a.Name == name {
			e.auths = append(e.auths[:i], e.auths[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("policy: no authorization %q", name)
}

// Enable switches an obligation policy on.
func (e *Engine) Enable(name string) error { return e.setEnabled(name, true) }

// Disable switches an obligation policy off without removing it.
func (e *Engine) Disable(name string) error { return e.setEnabled(name, false) }

func (e *Engine) setEnabled(name string, on bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.obligations[name]
	if !ok {
		return fmt.Errorf("policy: no obligation %q", name)
	}
	if st.enabled != on {
		st.enabled = on
		e.stats.Toggles++
	}
	return nil
}

// PolicyInfo is a management snapshot of one obligation.
type PolicyInfo struct {
	Name       string
	DeviceType string
	Enabled    bool
	Deployed   bool
	Fires      uint64
}

// Obligations lists installed obligations.
func (e *Engine) Obligations() []PolicyInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]PolicyInfo, 0, len(e.obligations))
	for _, st := range e.obligations {
		out = append(out, PolicyInfo{
			Name:       st.pol.Name,
			DeviceType: st.pol.DeviceType,
			Enabled:    st.enabled,
			Deployed:   st.deployed,
			Fires:      st.fires,
		})
	}
	return out
}

// Authorizations lists installed authorisation policy names.
func (e *Engine) Authorizations() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.auths))
	for _, a := range e.auths {
		out = append(out, a.Name)
	}
	return out
}

// ---- obligation execution ----

func (e *Engine) fire(st *obligationState, ev *event.Event) {
	e.mu.Lock()
	active := st.enabled && st.deployed
	e.mu.Unlock()
	if !active {
		return
	}
	if st.pol.When != nil && !st.pol.When.Matches(ev) {
		return
	}
	e.mu.Lock()
	st.fires++
	e.stats.Fires++
	e.mu.Unlock()
	for _, a := range st.pol.Actions {
		e.runAction(st.pol, a, ev)
	}
}

func (e *Engine) runAction(pol *Obligation, a Action, trigger *event.Event) {
	e.mu.Lock()
	e.stats.ActionsRun++
	e.mu.Unlock()
	switch a.Kind {
	case ActionPublish:
		out := event.New()
		out.Stamp = time.Now()
		for _, asg := range a.Attrs {
			out.Set(asg.Name, asg.Value)
		}
		// Correlation: record which policy and triggering event
		// produced this event.
		out.SetStr("policy", pol.Name)
		out.SetInt("trigger-sender", int64(trigger.Sender))
		out.SetInt("trigger-seq", int64(trigger.Seq))
		if err := e.svc.Publish(out); err == nil {
			e.mu.Lock()
			e.stats.PublishActions++
			e.mu.Unlock()
		}
	case ActionLog:
		e.mu.Lock()
		e.stats.LogActions++
		e.mu.Unlock()
		e.logf("policy %s: %s (trigger %s)", pol.Name, a.Message, trigger)
	case ActionEnable:
		_ = e.Enable(a.Message)
	case ActionDisable:
		_ = e.Disable(a.Message)
	}
}

// ---- deployment on membership changes ----

func (e *Engine) onNewMember(ev *event.Event) {
	dt := deviceTypeOf(ev)
	if dt == "" {
		return
	}
	e.mu.Lock()
	e.typeCount[dt]++
	if e.typeCount[dt] == 1 {
		for _, st := range e.obligations {
			if st.pol.DeviceType == dt {
				st.deployed = true
			}
		}
	}
	e.mu.Unlock()
	e.logf("policy: deployed policies for device type %q", dt)
}

func (e *Engine) onPurgeMember(ev *event.Event) {
	dt := deviceTypeOf(ev)
	if dt == "" {
		return
	}
	e.mu.Lock()
	if e.typeCount[dt] > 0 {
		e.typeCount[dt]--
	}
	if e.typeCount[dt] == 0 {
		for _, st := range e.obligations {
			if st.pol.DeviceType == dt {
				st.deployed = false
			}
		}
	}
	e.mu.Unlock()
}

// deviceTypeOf extracts the device-type attribute as an owned string.
// The copy matters: delivered events may be borrowing decodes whose
// strings die with the event, and the result is stored as a typeCount
// map key that outlives the handler callback.
func deviceTypeOf(ev *event.Event) string {
	v, ok := ev.Get(event.AttrDeviceType)
	if !ok {
		return ""
	}
	s, _ := v.Str()
	return strings.Clone(s)
}

// ---- authorisation (bus.Authorizer) ----

// AuthorizePublish implements bus.Authorizer: deny rules override allow
// rules; with no match the default effect applies.
func (e *Engine) AuthorizePublish(member ident.ID, deviceType string, ev *event.Event) error {
	return e.decide(VerbPublish, deviceType, func(a *Authorization) bool {
		return a.Target == nil || a.Target.Matches(ev)
	})
}

// AuthorizeSubscribe implements bus.Authorizer. A target clause is
// matched against the subscription's equality constraints, projected
// as an event: a subscription for type="alarm" is governed by target
// rules over type. Subscriptions without an equality constraint on a
// targeted attribute are treated as touching it (so deny rules hit).
func (e *Engine) AuthorizeSubscribe(member ident.ID, deviceType string, f *event.Filter) error {
	proj := event.New()
	for _, c := range f.Constraints() {
		if c.Op == event.OpEq {
			proj.Set(c.Name, c.Value)
		}
	}
	return e.decide(VerbSubscribe, deviceType, func(a *Authorization) bool {
		if a.Target == nil {
			return true
		}
		for _, tc := range a.Target.Constraints() {
			v, ok := proj.Get(tc.Name)
			if !ok {
				// Subscription does not pin this attribute: it can
				// receive anything there, so the rule applies.
				continue
			}
			if tc.Op != event.OpExists && !tc.MatchValue(v) {
				return false
			}
		}
		return true
	})
}

func (e *Engine) decide(verb Verb, deviceType string, targetMatch func(*Authorization) bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	verdict := e.defaultEff
	matched := false
	for _, a := range e.auths {
		if a.Verb != VerbAny && a.Verb != verb {
			continue
		}
		if a.Subject != "*" && a.Subject != deviceType {
			continue
		}
		if !targetMatch(a) {
			continue
		}
		if a.Effect == EffectDeny {
			// Deny overrides: stop immediately.
			e.stats.DenyDecisions++
			return fmt.Errorf("%w: denied by policy %q", bus.ErrUnauthorized, a.Name)
		}
		matched = true
	}
	if matched {
		verdict = EffectAllow
	}
	if verdict == EffectDeny {
		e.stats.DenyDecisions++
		return fmt.Errorf("%w: default deny", bus.ErrUnauthorized)
	}
	e.stats.AllowDecisions++
	return nil
}
