package policy

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedPolicyFileParses keeps examples/policies/ward.pol valid:
// it is referenced by the README and loaded by smcd in demos.
func TestShippedPolicyFileParses(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "policies", "ward.pol")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("shipped policy file unavailable: %v", err)
	}
	f, err := Parse(string(b))
	if err != nil {
		t.Fatalf("ward.pol does not parse: %v", err)
	}
	if len(f.Obligations) < 5 || len(f.Authorizations) < 2 {
		t.Errorf("ward.pol content shrank: %d obligations, %d authorizations",
			len(f.Obligations), len(f.Authorizations))
	}
	for _, o := range f.Obligations {
		if err := o.Validate(); err != nil {
			t.Errorf("obligation %q invalid: %v", o.Name, err)
		}
	}
}
