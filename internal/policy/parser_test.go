package policy

import (
	"errors"
	"strings"
	"testing"

	"github.com/amuse/smc/internal/event"
)

func TestParseObligation(t *testing.T) {
	src := `
# heart rate alarm policy
obligation hr-high for "hr-sensor" {
  on type = "reading" && kind = "heart-rate"
  when value > 180.5
  do publish(type = "actuate", target = "defib-1", action = "analyse", joules = 150),
     log("tachycardia"),
     disable("hr-low")
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Obligations) != 1 || len(f.Authorizations) != 0 {
		t.Fatalf("parsed %d/%d", len(f.Obligations), len(f.Authorizations))
	}
	o := f.Obligations[0]
	if o.Name != "hr-high" || o.DeviceType != "hr-sensor" {
		t.Errorf("header = %q for %q", o.Name, o.DeviceType)
	}
	if o.On.Len() != 2 {
		t.Errorf("on constraints = %d", o.On.Len())
	}
	if !o.On.Matches(event.NewTyped("reading").SetStr("kind", "heart-rate")) {
		t.Error("on-filter does not match intended event")
	}
	if o.When == nil || !o.When.Matches(event.New().SetFloat("value", 200)) {
		t.Error("when-filter wrong")
	}
	if o.When.Matches(event.New().SetFloat("value", 100)) {
		t.Error("when-filter matches low value")
	}
	if len(o.Actions) != 3 {
		t.Fatalf("actions = %d", len(o.Actions))
	}
	pub := o.Actions[0]
	if pub.Kind != ActionPublish || len(pub.Attrs) != 4 {
		t.Errorf("publish action = %+v", pub)
	}
	if pub.Attrs[3].Name != "joules" || !pub.Attrs[3].Value.Equal(event.Int(150)) {
		t.Errorf("joules attr = %+v", pub.Attrs[3])
	}
	if o.Actions[1].Kind != ActionLog || o.Actions[1].Message != "tachycardia" {
		t.Errorf("log action = %+v", o.Actions[1])
	}
	if o.Actions[2].Kind != ActionDisable || o.Actions[2].Message != "hr-low" {
		t.Errorf("disable action = %+v", o.Actions[2])
	}
}

func TestParseAuthorization(t *testing.T) {
	src := `
authorization deny-sensor-actuation {
  effect deny
  subject "hr-sensor"
  action publish
  target type = "actuate"
}
authorization allow-all {
  effect allow
  subject *
  action *
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Authorizations) != 2 {
		t.Fatalf("auths = %d", len(f.Authorizations))
	}
	a := f.Authorizations[0]
	if a.Effect != EffectDeny || a.Subject != "hr-sensor" || a.Verb != VerbPublish {
		t.Errorf("auth = %+v", a)
	}
	if a.Target == nil || !a.Target.Matches(event.NewTyped("actuate")) {
		t.Error("target filter wrong")
	}
	b := f.Authorizations[1]
	if b.Effect != EffectAllow || b.Subject != "*" || b.Verb != VerbAny || b.Target != nil {
		t.Errorf("auth = %+v", b)
	}
}

func TestParseOperatorsAndLiterals(t *testing.T) {
	src := `
obligation ops {
  on a != "x" && b < 1 && c <= 2 && d > 3 && e >= 4.5 && f prefix "p" && g suffix "s" && h contains "c" && i exists && j = true && k = false && l = -7
  do log("ok")
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	on := f.Obligations[0].On
	if on.Len() != 12 {
		t.Fatalf("constraints = %d", on.Len())
	}
	e := event.New().
		SetStr("a", "y").SetInt("b", 0).SetInt("c", 2).SetInt("d", 4).
		SetFloat("e", 4.5).SetStr("f", "px").SetStr("g", "xs").
		SetStr("h", "aca").SetInt("i", 0).SetBool("j", true).
		SetBool("k", false).SetInt("l", -7)
	if !on.Matches(e) {
		t.Error("combined filter does not match crafted event")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`oblgation x { }`,                              // bad keyword
		`obligation { on a = 1 do log("x") }`,          // missing name
		`obligation x { do log("x") }`,                 // missing on
		`obligation x { on a = 1 }`,                    // missing do
		`obligation x { on a = 1 do log(x) }`,          // log wants string
		`obligation x { on a = 1 do zap("x") }`,        // unknown action
		`obligation x { on a ~ 1 do log("x") }`,        // bad operator
		`obligation x { on a = do log("x") }`,          // missing literal
		`obligation x for hr { on a = 1 do log("x") }`, // for wants string
		`authorization a { effect maybe subject * action * }`,
		`authorization a { effect allow subject * action frobnicate }`,
		`authorization a { effect allow subject * action * bogus x }`,
		`authorization a { subject * action * }`, // missing effect
		`obligation x { on a = 1 do publish() }`, // empty publish
		`obligation x { on a = 1 do log("unterminated) }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %s", strings.TrimSpace(src))
		} else if !errors.Is(err, ErrParse) {
			t.Errorf("non-parse error for %q: %v", src, err)
		}
	}
}

func TestParseEmptyAndComments(t *testing.T) {
	f, err := Parse("# nothing but comments\n\n# more\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Obligations)+len(f.Authorizations) != 0 {
		t.Error("phantom policies")
	}
}

func TestParseMultiplePolicies(t *testing.T) {
	src := `
obligation one { on a = 1 do log("1") }
obligation two { on a = 2 do log("2") }
authorization three { effect deny subject "s" action subscribe }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Obligations) != 2 || len(f.Authorizations) != 1 {
		t.Errorf("parsed %d/%d", len(f.Obligations), len(f.Authorizations))
	}
}

func TestStringEscapes(t *testing.T) {
	f, err := Parse(`obligation e { on a = "l1\nl2\t\"q\"" do log("m") }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cs := f.Obligations[0].On.Constraints()
	want := "l1\nl2\t\"q\""
	if !cs[0].Value.Equal(event.Str(want)) {
		t.Errorf("escaped string = %s", cs[0].Value)
	}
}

func TestValidateDirect(t *testing.T) {
	o := &Obligation{Name: "x", On: event.NewFilter(), Actions: []Action{{Kind: ActionLog}}}
	if err := o.Validate(); err != nil {
		t.Errorf("valid obligation rejected: %v", err)
	}
	bad := &Obligation{On: event.NewFilter(), Actions: []Action{{Kind: ActionLog}}}
	if err := bad.Validate(); err == nil {
		t.Error("nameless obligation accepted")
	}
	a := &Authorization{Name: "a", Effect: EffectAllow, Subject: "*", Verb: VerbAny}
	if err := a.Validate(); err != nil {
		t.Errorf("valid authorization rejected: %v", err)
	}
	if err := (&Authorization{Name: "a", Effect: EffectAllow, Subject: "*"}).Validate(); err == nil {
		t.Error("verbless authorization accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	if EffectAllow.String() != "allow" || EffectDeny.String() != "deny" || Effect(0).String() != "invalid" {
		t.Error("effect strings")
	}
	if VerbPublish.String() != "publish" || VerbSubscribe.String() != "subscribe" ||
		VerbAny.String() != "*" || Verb(0).String() != "invalid" {
		t.Error("verb strings")
	}
}
