package policy

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
)

// engineRig hosts a bus and a policy engine.
type engineRig struct {
	bus *bus.Bus
	eng *Engine
	app *bus.LocalService
}

func newEngineRig(t *testing.T, opts ...Option) *engineRig {
	t.Helper()
	n := netsim.New(netsim.Perfect, netsim.WithSeed(61))
	tr, err := n.Attach(ident.New(0xB05))
	if err != nil {
		t.Fatal(err)
	}
	cfg := reliable.Config{RetryTimeout: 20 * time.Millisecond, MaxRetries: 10}
	b := bus.New(reliable.New(tr, cfg), matcher.NewFast(), bootstrap.NewRegistry())
	eng, err := NewEngine(b, opts...)
	if err != nil {
		t.Fatal(err)
	}
	b.SetAuthorizer(eng)
	b.Start()
	t.Cleanup(func() {
		b.Close()
		n.Close()
	})
	return &engineRig{bus: b, eng: eng, app: b.Local("app")}
}

// waitFires polls until the engine has fired at least n times.
func (r *engineRig) waitFires(t *testing.T, n uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.eng.Stats().Fires >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("fires = %d, want ≥ %d", r.eng.Stats().Fires, n)
}

// memberEvent fabricates a discovery membership event.
func memberEvent(class, deviceType string, id uint64) *event.Event {
	return event.NewTyped(class).
		Set(event.AttrMember, event.Int(int64(id))).
		Set(event.AttrDeviceType, event.Str(deviceType)).
		SetStr("name", "dev")
}

func TestObligationFiresAndPublishes(t *testing.T) {
	r := newEngineRig(t)
	err := r.eng.LoadString(`
obligation alarm-on-high {
  on type = "reading"
  when value > 100
  do publish(type = "alarm", severity = 2), log("high")
}
`)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var alarms []*event.Event
	if err := r.app.Subscribe(event.NewFilter().WhereType("alarm"), func(e *event.Event) {
		mu.Lock()
		alarms = append(alarms, e)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	if err := r.app.Publish(event.NewTyped("reading").SetFloat("value", 50)); err != nil {
		t.Fatal(err)
	}
	if err := r.app.Publish(event.NewTyped("reading").SetFloat("value", 150)); err != nil {
		t.Fatal(err)
	}
	r.waitFires(t, 1)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(alarms)
		mu.Unlock()
		if n >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d", len(alarms))
	}
	a := alarms[0]
	if v, _ := a.Get("severity"); !v.Equal(event.Int(2)) {
		t.Errorf("severity = %s", v)
	}
	if v, _ := a.Get("policy"); !v.Equal(event.Str("alarm-on-high")) {
		t.Errorf("policy attr = %s", v)
	}
	st := r.eng.Stats()
	if st.PublishActions != 1 || st.LogActions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEnableDisable(t *testing.T) {
	r := newEngineRig(t)
	if err := r.eng.LoadString(`obligation p { on type = "t" do log("x") }`); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Disable("p"); err != nil {
		t.Fatal(err)
	}
	if err := r.app.Publish(event.NewTyped("t")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if r.eng.Stats().Fires != 0 {
		t.Error("disabled policy fired")
	}
	if err := r.eng.Enable("p"); err != nil {
		t.Fatal(err)
	}
	if err := r.app.Publish(event.NewTyped("t")); err != nil {
		t.Fatal(err)
	}
	r.waitFires(t, 1)

	if err := r.eng.Enable("nope"); err == nil {
		t.Error("enable of unknown policy succeeded")
	}
}

func TestPolicyTogglesPolicy(t *testing.T) {
	r := newEngineRig(t)
	err := r.eng.LoadString(`
obligation quiet { on type = "night-mode" do disable("beeper") }
obligation beeper { on type = "reading" do publish(type = "beep") }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.app.Publish(event.NewTyped("night-mode")); err != nil {
		t.Fatal(err)
	}
	r.waitFires(t, 1)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		infos := r.eng.Obligations()
		for _, pi := range infos {
			if pi.Name == "beeper" && !pi.Enabled {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("beeper not disabled by quiet policy")
}

func TestDeviceTypeScopedDeployment(t *testing.T) {
	r := newEngineRig(t)
	err := r.eng.LoadString(`
obligation scoped for "hr-sensor" {
  on type = "tick"
  do log("tick")
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// No hr-sensor member yet: not deployed, must not fire.
	if err := r.app.Publish(event.NewTyped("tick")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if r.eng.Stats().Fires != 0 {
		t.Fatal("scoped policy fired without member")
	}

	// A member of the type joins: deployed.
	if err := r.app.Publish(memberEvent(event.TypeNewMember, "hr-sensor", 7)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		ob := r.eng.Obligations()
		if len(ob) == 1 && ob[0].Deployed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.app.Publish(event.NewTyped("tick")); err != nil {
		t.Fatal(err)
	}
	r.waitFires(t, 1)

	// The last member leaves: withdrawn again.
	if err := r.app.Publish(memberEvent(event.TypePurgeMember, "hr-sensor", 7)); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		ob := r.eng.Obligations()
		if len(ob) == 1 && !ob[0].Deployed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fires := r.eng.Stats().Fires
	if err := r.app.Publish(event.NewTyped("tick")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if r.eng.Stats().Fires != fires {
		t.Error("withdrawn policy fired")
	}
}

func TestAddRemoveObligation(t *testing.T) {
	r := newEngineRig(t)
	o := &Obligation{
		Name:    "direct",
		On:      event.NewFilter().WhereType("x"),
		Actions: []Action{{Kind: ActionLog, Message: "m"}},
	}
	if err := r.eng.AddObligation(o); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.AddObligation(o); err == nil {
		t.Error("duplicate obligation accepted")
	}
	if err := r.eng.RemoveObligation("direct"); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.RemoveObligation("direct"); err == nil {
		t.Error("double remove succeeded")
	}
	// After removal the policy never fires.
	if err := r.app.Publish(event.NewTyped("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if r.eng.Stats().Fires != 0 {
		t.Error("removed policy fired")
	}
}

func TestAuthorizationDenyOverrides(t *testing.T) {
	r := newEngineRig(t)
	err := r.eng.LoadString(`
authorization allow-readings {
  effect allow
  subject "hr-sensor"
  action publish
  target type = "reading"
}
authorization deny-actuate {
  effect deny
  subject *
  action publish
  target type = "actuate"
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.eng.AuthorizePublish(1, "hr-sensor", event.NewTyped("reading")); err != nil {
		t.Errorf("allowed publish denied: %v", err)
	}
	err = r.eng.AuthorizePublish(1, "hr-sensor", event.NewTyped("actuate"))
	if !errors.Is(err, bus.ErrUnauthorized) {
		t.Errorf("deny rule ignored: %v", err)
	}
	// Default is allow for unmatched traffic.
	if err := r.eng.AuthorizePublish(1, "other", event.NewTyped("misc")); err != nil {
		t.Errorf("default-allow broken: %v", err)
	}
}

func TestAuthorizationDefaultDeny(t *testing.T) {
	r := newEngineRig(t, WithDefaultEffect(EffectDeny))
	err := r.eng.LoadString(`
authorization allow-readings {
  effect allow
  subject *
  action publish
  target type = "reading"
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.eng.AuthorizePublish(1, "x", event.NewTyped("reading")); err != nil {
		t.Errorf("explicitly allowed publish denied: %v", err)
	}
	if err := r.eng.AuthorizePublish(1, "x", event.NewTyped("anything-else")); err == nil {
		t.Error("default deny not applied")
	}
}

func TestAuthorizeSubscribeTargets(t *testing.T) {
	r := newEngineRig(t)
	err := r.eng.LoadString(`
authorization no-actuate-subs {
  effect deny
  subject "hr-sensor"
  action subscribe
  target type = "actuate"
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// Subscription pinned to another type: allowed.
	f := event.NewFilter().WhereType("reading")
	if err := r.eng.AuthorizeSubscribe(1, "hr-sensor", f); err != nil {
		t.Errorf("reading subscription denied: %v", err)
	}
	// Subscription pinned to the denied type: denied.
	f = event.NewFilter().WhereType("actuate")
	if err := r.eng.AuthorizeSubscribe(1, "hr-sensor", f); err == nil {
		t.Error("actuate subscription allowed")
	}
	// Unpinned subscription could receive actuate events: denied.
	f = event.NewFilter().Where("value", event.OpGt, event.Int(0))
	if err := r.eng.AuthorizeSubscribe(1, "hr-sensor", f); err == nil {
		t.Error("unpinned subscription allowed")
	}
	// Other device types unaffected.
	f = event.NewFilter().WhereType("actuate")
	if err := r.eng.AuthorizeSubscribe(1, "nurse-pda", f); err != nil {
		t.Errorf("other subject denied: %v", err)
	}
}

func TestAddRemoveAuthorization(t *testing.T) {
	r := newEngineRig(t)
	a := &Authorization{Name: "a1", Effect: EffectDeny, Subject: "*", Verb: VerbPublish}
	if err := r.eng.AddAuthorization(a); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.AddAuthorization(a); err == nil {
		t.Error("duplicate authorization accepted")
	}
	if err := r.eng.AuthorizePublish(1, "x", event.New()); err == nil {
		t.Error("deny-all rule inert")
	}
	if err := r.eng.RemoveAuthorization("a1"); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.RemoveAuthorization("a1"); err == nil {
		t.Error("double remove succeeded")
	}
	if err := r.eng.AuthorizePublish(1, "x", event.New()); err != nil {
		t.Errorf("removal not effective: %v", err)
	}
	if got := r.eng.Authorizations(); len(got) != 0 {
		t.Errorf("auths = %v", got)
	}
}

func TestWhenClauseGatesActions(t *testing.T) {
	r := newEngineRig(t)
	if err := r.eng.LoadString(`
obligation gated {
  on type = "reading"
  when value >= 10 && value < 20
  do log("in band")
}
`); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 25} {
		if err := r.app.Publish(event.NewTyped("reading").SetFloat("value", v)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(150 * time.Millisecond)
	if r.eng.Stats().Fires != 0 {
		t.Fatal("out-of-band values fired")
	}
	if err := r.app.Publish(event.NewTyped("reading").SetFloat("value", 15)); err != nil {
		t.Fatal(err)
	}
	r.waitFires(t, 1)
}

func TestLogfHook(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	r := newEngineRig(t, WithLogf(func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, format)
		mu.Unlock()
	}))
	if err := r.eng.LoadString(`obligation l { on type = "t" do log("msg") }`); err != nil {
		t.Fatal(err)
	}
	if err := r.app.Publish(event.NewTyped("t")); err != nil {
		t.Fatal(err)
	}
	r.waitFires(t, 1)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(lines)
		mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("log action produced no output")
}

func TestObligationsListing(t *testing.T) {
	r := newEngineRig(t)
	if err := r.eng.LoadString(`
obligation a { on type = "x" do log("a") }
obligation b for "pump" { on type = "y" do log("b") }
`); err != nil {
		t.Fatal(err)
	}
	infos := r.eng.Obligations()
	if len(infos) != 2 {
		t.Fatalf("infos = %d", len(infos))
	}
	byName := map[string]PolicyInfo{}
	for _, pi := range infos {
		byName[pi.Name] = pi
	}
	if !byName["a"].Enabled || !byName["a"].Deployed {
		t.Errorf("a = %+v", byName["a"])
	}
	if byName["b"].Deployed {
		t.Errorf("scoped b deployed without member: %+v", byName["b"])
	}
	if byName["b"].DeviceType != "pump" {
		t.Errorf("b device type = %q", byName["b"].DeviceType)
	}
}
