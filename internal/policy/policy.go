// Package policy implements the SMC policy service (§II-A): Ponder-
// style obligation policies (event-condition-action rules specifying
// how components react to events) and authorisation policies
// (specifying what resources components assigned to a role can
// access). Policies can be added, removed, enabled and disabled at
// runtime to change the behaviour of cell components without
// reprogramming them; policies scoped to a device type are deployed
// when such a device is discovered and granted membership.
//
// The full Ponder language is substituted by a small text DSL
// ("Ponder-lite") preserving the ECA and authorisation semantics the
// paper relies on; see DESIGN.md for the substitution note.
//
// Grammar:
//
//	policyfile   := (obligation | authorization)*
//	obligation   := "obligation" name ["for" string] "{"
//	                    "on" constraints
//	                    ["when" constraints]
//	                    "do" action ("," action)*
//	                "}"
//	authorization:= "authorization" name "{"
//	                    "effect" ("allow"|"deny")
//	                    "subject" (string|"*")
//	                    "action" ("publish"|"subscribe"|"*")
//	                    ["target" constraints]
//	                "}"
//	constraints  := constraint ("&&" constraint)*
//	constraint   := ident op literal | ident "exists"
//	op           := "=" | "!=" | "<" | "<=" | ">" | ">=" |
//	                "prefix" | "suffix" | "contains"
//	action       := "publish" "(" ident "=" literal ("," ident "=" literal)* ")"
//	              | "log" "(" string ")"
//	              | "enable" "(" string ")"
//	              | "disable" "(" string ")"
//	literal      := number | string | "true" | "false"
package policy

import (
	"errors"
	"fmt"

	"github.com/amuse/smc/internal/event"
)

// Effect is an authorisation verdict.
type Effect int

// Authorisation effects.
const (
	EffectAllow Effect = iota + 1
	EffectDeny
)

// String names the effect.
func (e Effect) String() string {
	switch e {
	case EffectAllow:
		return "allow"
	case EffectDeny:
		return "deny"
	default:
		return "invalid"
	}
}

// Verb is the operation an authorisation policy governs.
type Verb int

// Authorisation verbs.
const (
	VerbPublish Verb = iota + 1
	VerbSubscribe
	VerbAny
)

// String names the verb.
func (v Verb) String() string {
	switch v {
	case VerbPublish:
		return "publish"
	case VerbSubscribe:
		return "subscribe"
	case VerbAny:
		return "*"
	default:
		return "invalid"
	}
}

// ActionKind discriminates obligation actions.
type ActionKind int

// Obligation action kinds.
const (
	ActionPublish ActionKind = iota + 1
	ActionLog
	ActionEnable
	ActionDisable
)

// Action is one step of an obligation's "do" clause.
type Action struct {
	Kind ActionKind
	// Message is the log text, or the policy name for enable/disable.
	Message string
	// Attrs are the attributes of the event to publish.
	Attrs []AttrAssign
}

// AttrAssign is one attr=literal assignment in a publish action.
type AttrAssign struct {
	Name  string
	Value event.Value
}

// Obligation is an event-condition-action rule. On selects triggering
// events; When adds a further condition on the same event; Actions run
// when both hold and the policy is active.
type Obligation struct {
	Name string
	// DeviceType scopes deployment: the policy activates while at
	// least one member of this device type is in the cell. Empty
	// means always deployed.
	DeviceType string
	On         *event.Filter
	When       *event.Filter
	Actions    []Action
}

// Authorization is an access-control rule.
type Authorization struct {
	Name   string
	Effect Effect
	// Subject is the device type the rule applies to; "*" for all.
	Subject string
	// Verb is the governed operation.
	Verb Verb
	// Target constrains which events (for publish) or which
	// subscription interests (for subscribe, matched against the
	// subscription's equality constraints) the rule covers. A nil
	// target covers everything.
	Target *event.Filter
}

// File is a parsed policy file.
type File struct {
	Obligations    []*Obligation
	Authorizations []*Authorization
}

// ErrParse reports a syntax error; the message carries line context.
var ErrParse = errors.New("policy: parse error")

// Validate checks structural validity of an obligation.
func (o *Obligation) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("%w: obligation without name", ErrParse)
	}
	if o.On == nil {
		return fmt.Errorf("%w: obligation %q without on-clause", ErrParse, o.Name)
	}
	if len(o.Actions) == 0 {
		return fmt.Errorf("%w: obligation %q without actions", ErrParse, o.Name)
	}
	if err := o.On.Validate(); err != nil {
		return fmt.Errorf("obligation %q on-clause: %w", o.Name, err)
	}
	if o.When != nil {
		if err := o.When.Validate(); err != nil {
			return fmt.Errorf("obligation %q when-clause: %w", o.Name, err)
		}
	}
	return nil
}

// Validate checks structural validity of an authorisation.
func (a *Authorization) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("%w: authorization without name", ErrParse)
	}
	if a.Effect != EffectAllow && a.Effect != EffectDeny {
		return fmt.Errorf("%w: authorization %q without effect", ErrParse, a.Name)
	}
	if a.Subject == "" {
		return fmt.Errorf("%w: authorization %q without subject", ErrParse, a.Name)
	}
	if a.Verb == 0 {
		return fmt.Errorf("%w: authorization %q without action", ErrParse, a.Name)
	}
	if a.Target != nil {
		if err := a.Target.Validate(); err != nil {
			return fmt.Errorf("authorization %q target: %w", a.Name, err)
		}
	}
	return nil
}
