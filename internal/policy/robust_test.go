package policy

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser random token soup and mutated
// valid programs; it must always return (result, error), never panic.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tokens := []string{
		"obligation", "authorization", "on", "when", "do", "for",
		"effect", "subject", "action", "target", "allow", "deny",
		"publish", "log", "enable", "disable", "exists",
		"{", "}", "(", ")", ",", "=", "!=", "<", "<=", ">", ">=", "&&",
		`"str"`, "name", "42", "3.5", "-7", "true", "false", "*", "#c\n",
	}
	for i := 0; i < 3000; i++ {
		n := rng.Intn(30)
		var sb strings.Builder
		for k := 0; k < n; k++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String())
	}
}

// TestParseMutatedValidProgram flips bytes in a valid program; the
// parser must reject or accept without panicking, and accepted
// programs must validate.
func TestParseMutatedValidProgram(t *testing.T) {
	valid := `
obligation hr-high for "hr-sensor" {
  on type = "reading" && kind = "heart-rate"
  when value > 180
  do publish(type = "alarm", severity = 3), log("hr high")
}
authorization a { effect deny subject "s" action publish target type = "actuate" }
`
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		b := []byte(valid)
		for flips := 0; flips < 1+rng.Intn(3); flips++ {
			b[rng.Intn(len(b))] = byte(32 + rng.Intn(95))
		}
		f, err := Parse(string(b))
		if err != nil {
			continue
		}
		for _, o := range f.Obligations {
			if verr := o.Validate(); verr != nil {
				t.Fatalf("accepted obligation fails validation: %v\nsource: %s", verr, b)
			}
		}
		for _, a := range f.Authorizations {
			if verr := a.Validate(); verr != nil {
				t.Fatalf("accepted authorization fails validation: %v", verr)
			}
		}
	}
}

// TestParseDeepNestingBounded guards against pathological inputs.
func TestParseDeepNestingBounded(t *testing.T) {
	long := "obligation x { on " + strings.Repeat(`a = 1 && `, 500) + `a = 1 do log("m") }`
	if _, err := Parse(long); err == nil {
		// 501 constraints exceeds MaxAttrs; Validate must reject.
		t.Error("oversized filter accepted")
	}
	// A big but legal program parses fine.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("obligation p")
		sb.WriteString(strings.Repeat("x", i%5+1))
		sb.WriteString(string(rune('a' + i%26)))
		sb.WriteString(string(rune('a' + (i/26)%26)))
		sb.WriteString(` { on a = 1 do log("m") }` + "\n")
	}
	f, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("large program rejected: %v", err)
	}
	if len(f.Obligations) != 200 {
		t.Errorf("parsed %d obligations", len(f.Obligations))
	}
}
