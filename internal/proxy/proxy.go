// Package proxy implements the proxy architecture of §III-B: every
// service granted membership of the SMC is represented inside the core
// by a dedicated proxy object that
//
//   - translates between the device's native data format and fully
//     fledged event objects (complex proxies for simple sensors, simple
//     proxies for complex sensors);
//   - queues outgoing events, preserving the ordering constraint, and
//     resends events unacknowledged by the device;
//   - destroys itself — discarding any outbound data awaiting delivery
//     — when the service permanently leaves the SMC (Purge Member).
//
// A proxy is "an abstract class containing generic code applicable to
// all SMC services, completed by a concrete class containing
// implementation details specific to the device/service type": here the
// generic part is the Proxy struct and the concrete part is the Device
// interface.
package proxy

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/wire"
)

// Sender is the slice of the reliable channel a proxy needs.
// Implementations must not retain payload after Send returns: the
// proxy recycles encode buffers through a pool, so a Sender that
// queues the slice for asynchronous transmission must copy it first
// (the in-repo reliable.Channel marshals into its own buffer before
// Send/SendAsync return, satisfying this trivially).
type Sender interface {
	Send(dst ident.ID, ptype wire.PacketType, payload []byte) error
}

// AsyncSender is implemented by senders that can pipeline: SendAsync
// enqueues the packet (copying the payload before returning) and
// resolves the completion when it is acknowledged or fails. A proxy
// whose sender implements AsyncSender keeps up to Config.Pipeline
// deliveries in flight instead of waiting out one network round trip
// per queued event — the member-enqueue half of the sliding-window
// pipeline. reliable.Channel is the canonical implementation.
type AsyncSender interface {
	Sender
	SendAsync(dst ident.ID, ptype wire.PacketType, payload []byte) *reliable.Completion
}

// BatchAsyncSender is implemented by senders that additionally accept
// pre-framed event batches (wire.FlagBatch payloads). A proxy with
// batching enabled (Config.BatchEvents > 1) coalesces consecutive
// event deliveries into one batch payload and sends it through
// SendBatchAsync — one reliable packet, one acknowledgement, one
// network crossing for the whole run of events. reliable.Channel is
// the canonical implementation.
type BatchAsyncSender interface {
	AsyncSender
	SendBatchAsync(dst ident.ID, payload []byte) *reliable.Completion
}

// Publisher lets a proxy inject translated device data into the bus.
type Publisher func(e *event.Event) error

// EventMutator is optionally implemented by Devices whose TranslateOut
// modifies the event it is handed. The bus delivers one shared,
// immutable event to every subscriber's proxy (zero-copy dispatch); a
// proxy whose device declares MutatesEvents()==true receives a private
// clone instead — clone-on-write at the only place a copy is needed.
type EventMutator interface {
	MutatesEvents() bool
}

// Device is the concrete half of a proxy: the device-type-specific
// translation logic. Implementations must be safe for use from the
// proxy's goroutines. TranslateOut must treat the event as read-only
// unless the device also implements EventMutator.
type Device interface {
	// DeviceType names the device class this translator serves.
	DeviceType() string
	// TranslateIn converts raw device bytes (a PktData payload) into
	// zero or more events to publish on the device's behalf.
	TranslateIn(data []byte) ([]*event.Event, error)
	// TranslateOut converts an outbound event into the device's
	// native bytes. ok=false means no translation: the proxy forwards
	// the encoded event itself (simple proxy for a complex service).
	TranslateOut(e *event.Event) (data []byte, ok bool, err error)
	// InitialSubscriptions returns filters the proxy installs on
	// behalf of the device at creation ("the proxy itself might carry
	// enough knowledge to register for appropriate events on behalf
	// of the device", §III-B).
	InitialSubscriptions() []*event.Filter
}

// GenericDevice is the pass-through Device: no translation either way
// and no implicit subscriptions — a "mere forwarding mechanism between
// the services".
type GenericDevice struct {
	Type string
}

var _ Device = (*GenericDevice)(nil)

// DeviceType implements Device.
func (g *GenericDevice) DeviceType() string {
	if g.Type == "" {
		return "generic"
	}
	return g.Type
}

// TranslateIn implements Device: raw data is decoded as a wire event.
func (g *GenericDevice) TranslateIn(data []byte) ([]*event.Event, error) {
	e, err := wire.DecodeEvent(data)
	if err != nil {
		return nil, fmt.Errorf("generic translate-in: %w", err)
	}
	return []*event.Event{e}, nil
}

// TranslateOut implements Device: no translation.
func (g *GenericDevice) TranslateOut(*event.Event) ([]byte, bool, error) {
	return nil, false, nil
}

// InitialSubscriptions implements Device.
func (g *GenericDevice) InitialSubscriptions() []*event.Filter { return nil }

// Config tunes proxy queueing and redelivery.
type Config struct {
	// QueueCap bounds the outbound queue (bounded memory on the
	// target platform); enqueueing beyond it drops the oldest event.
	// With a pipelining sender up to Pipeline further events are in
	// flight outside this queue, so total buffering is QueueCap+Pipeline.
	QueueCap int
	// RedeliveryInterval is the pause between delivery attempts after
	// the reliable layer gave up, while the member is still in the
	// cell (§VI: "queueing and repeating attempts to deliver events
	// to services which are unavailable, but have not yet been
	// declared to have left the SMC").
	RedeliveryInterval time.Duration
	// Pipeline bounds how many deliveries the proxy keeps in flight
	// when its sender implements AsyncSender (default 8). Pipeline=1
	// forces the sequential one-at-a-time loop.
	Pipeline int
	// BatchEvents enables outbound event coalescing when > 1 and the
	// sender implements BatchAsyncSender: up to this many consecutive
	// event deliveries are framed into one batch packet (flush on
	// size). 0 or 1 disables batching.
	BatchEvents int
	// BatchBytes caps a batch payload's size in bytes; a frame that
	// would push the batch past it flushes first. Defaults to 8 KiB
	// when batching is enabled.
	BatchBytes int
	// FlushDelay bounds how long a partially filled batch waits for
	// more queued events once the queue runs dry before being flushed
	// anyway (flush on deadline). Defaults to 1ms when batching is
	// enabled.
	FlushDelay time.Duration
}

// DefaultConfig returns the default proxy tuning.
func DefaultConfig() Config {
	return Config{
		QueueCap:           512,
		RedeliveryInterval: 250 * time.Millisecond,
		Pipeline:           8,
	}
}

// Stats counts proxy activity. Delivered counts acknowledged events
// whether they travelled alone or inside a batch; Batches counts batch
// transmissions and BatchedEvents the events coalesced into them.
type Stats struct {
	Enqueued         uint64
	Delivered        uint64
	Redeliveries     uint64
	DroppedOldest    uint64
	DiscardedOnPurge uint64
	TranslatedIn     uint64
	TranslatedOut    uint64
	Batches          uint64
	BatchedEvents    uint64
}

// Proxy is the generic proxy: outbound FIFO queue, delivery worker,
// inbound translation.
type Proxy struct {
	member   ident.ID
	dev      Device
	sender   Sender
	pub      Publisher
	cfg      Config
	cloneOut bool // device mutates events: clone before TranslateOut

	mu      sync.Mutex
	queue   []*event.Event
	stats   Stats
	stopped bool
	inSeq   uint64 // per-member seq for translated device data

	// Batch-gathering state, owned exclusively by the delivery worker
	// goroutine: a one-slot holdover for the item that forced a flush
	// (device-native data or a frame that would overflow BatchBytes)
	// and the reusable frame-gathering scratch.
	held         outItem
	hasHeld      bool
	batchScratch []outItem

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// New builds a proxy for member using the given concrete device logic.
// Start must be called before events are delivered.
func New(member ident.ID, dev Device, sender Sender, pub Publisher, cfg Config) *Proxy {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultConfig().QueueCap
	}
	if cfg.RedeliveryInterval <= 0 {
		cfg.RedeliveryInterval = DefaultConfig().RedeliveryInterval
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = DefaultConfig().Pipeline
	}
	if cfg.BatchEvents > 1 {
		if cfg.BatchBytes <= 0 {
			cfg.BatchBytes = 8 << 10
		}
		if cfg.FlushDelay <= 0 {
			cfg.FlushDelay = time.Millisecond
		}
	}
	p := &Proxy{
		member: member,
		dev:    dev,
		sender: sender,
		pub:    pub,
		cfg:    cfg,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if m, ok := dev.(EventMutator); ok {
		p.cloneOut = m.MutatesEvents()
	}
	return p
}

// Member returns the represented member's ID.
func (p *Proxy) Member() ident.ID { return p.member }

// DeviceType returns the concrete device class.
func (p *Proxy) DeviceType() string { return p.dev.DeviceType() }

// InitialSubscriptions exposes the device's implicit filters.
func (p *Proxy) InitialSubscriptions() []*event.Filter {
	return p.dev.InitialSubscriptions()
}

// Start launches the delivery worker. Senders that can pipeline get
// the windowed delivery loop; plain Senders keep the sequential one.
func (p *Proxy) Start() {
	if as, ok := p.sender.(AsyncSender); ok && p.cfg.Pipeline > 1 {
		go p.deliverLoopAsync(as)
		return
	}
	go p.deliverLoop()
}

// Enqueue appends an outbound event to the FIFO queue. The event may be
// shared with other subscribers' proxies and must not be mutated (the
// bus dispatches one immutable event to every match); the proxy takes
// its own reference for pool-managed events and releases it once the
// event has been translated for the wire (or dropped). When the queue
// is full the oldest event is dropped (bounded memory); this is counted
// in Stats.DroppedOldest.
func (p *Proxy) Enqueue(e *event.Event) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	e.Retain()
	if len(p.queue) >= p.cfg.QueueCap {
		dropped := p.queue[0]
		p.queue = p.queue[1:]
		p.stats.DroppedOldest++
		dropped.Release()
	}
	p.queue = append(p.queue, e)
	p.stats.Enqueued++
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// QueueLen reports the number of events awaiting delivery.
func (p *Proxy) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// HandleInbound translates raw device bytes and publishes the resulting
// events on the member's behalf ("Incoming data from devices are also
// sent to the proxy, to perform pre-processing of that data into fully
// fledged data objects", §III-B).
func (p *Proxy) HandleInbound(data []byte) error {
	events, err := p.dev.TranslateIn(data)
	if err != nil {
		return fmt.Errorf("proxy %s translate-in: %w", p.member, err)
	}
	p.mu.Lock()
	p.stats.TranslatedIn += uint64(len(events))
	p.mu.Unlock()
	for _, e := range events {
		e.Sender = p.member
		p.mu.Lock()
		p.inSeq++
		e.Seq = p.inSeq
		p.mu.Unlock()
		if err := p.pub(e); err != nil {
			return fmt.Errorf("proxy %s publish: %w", p.member, err)
		}
	}
	return nil
}

// Purge stops the worker and discards any outbound data awaiting
// delivery — the proxy destroying itself on a Purge Member event.
func (p *Proxy) Purge() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	p.stats.DiscardedOnPurge += uint64(len(p.queue))
	for _, e := range p.queue {
		e.Release()
	}
	p.queue = nil
	p.mu.Unlock()
	close(p.stop)
	<-p.done
}

func (p *Proxy) deliverLoop() {
	defer close(p.done)
	for {
		e, ok := p.next()
		if !ok {
			select {
			case <-p.wake:
				continue
			case <-p.stop:
				return
			}
		}
		if !p.deliverOne(e) {
			return // stopped during redelivery
		}
	}
}

// next pops the head of the queue.
func (p *Proxy) next() (*event.Event, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil, false
	}
	e := p.queue[0]
	p.queue = p.queue[1:]
	return e, true
}

// deliverOne pushes one event to the device, retrying after reliable
// failures until success or purge. It reports false when the proxy was
// stopped. Translation, the pooled-event release and the encode-buffer
// lifecycle all live in translateOut — shared with the pipelined loop —
// so there is exactly one release path.
func (p *Proxy) deliverOne(e *event.Event) bool {
	it, ok := p.translateOut(e)
	if !ok {
		// A translation error is a device-specific malfunction: the
		// event cannot ever be delivered; drop it.
		return true
	}
	defer p.releaseItem(it)

	for {
		err := p.sender.Send(p.member, it.ptype, it.payload)
		if err == nil {
			p.mu.Lock()
			p.stats.Delivered++
			p.mu.Unlock()
			return true
		}
		if errors.Is(err, reliable.ErrClosed) {
			return false
		}
		// Member unreachable but not yet purged: wait and resend.
		p.mu.Lock()
		p.stats.Redeliveries++
		p.mu.Unlock()
		timer := time.NewTimer(p.cfg.RedeliveryInterval)
		select {
		case <-p.stop:
			timer.Stop()
			return false
		case <-timer.C:
		}
	}
}

// outItem is one translated event in the pipelined delivery loop. The
// encoded payload is retained until the send is acknowledged so that a
// redelivery after reliable give-up re-sends byte-identical payload —
// which lets the channel resume the original sequence number and the
// receiver suppress the duplicate if the first copy did arrive.
type outItem struct {
	ptype   wire.PacketType
	payload []byte
	bufp    *[]byte // pooled event-encode buffer; nil for device-native data
	comp    *reliable.Completion
	batched bool // payload is a framed batch; send via SendBatchAsync
	events  int  // events inside a batch payload (1 otherwise)
}

func (p *Proxy) releaseItem(it outItem) {
	if it.bufp != nil {
		wire.PutEncodeBuf(it.bufp)
	}
}

// translateOut converts one queued event into its wire form, releasing
// the proxy's reference on the event once the payload is built.
// ok=false means the event is dropped (device-specific translation
// failure).
func (p *Proxy) translateOut(e *event.Event) (outItem, bool) {
	defer e.Release()
	if e.Cursor != 0 {
		// Durable replay delivery: frame the cursor over the frozen
		// event encoding and skip device translation — durable
		// consumers are event-stream clients, and the cursor must
		// survive to the receiver for resume/dedup.
		bp := wire.GetEncodeBuf()
		payload := wire.AppendDurableEvent((*bp)[:0], e.Cursor, e)
		*bp = payload
		return outItem{ptype: wire.PktEventDurable, payload: payload, bufp: bp, events: 1}, true
	}
	src := e
	if p.cloneOut {
		src = e.Clone() // device mutates events; shed the shared copy
	}
	raw, ok, err := p.dev.TranslateOut(src)
	switch {
	case err != nil:
		return outItem{}, false
	case ok:
		p.mu.Lock()
		p.stats.TranslatedOut++
		p.mu.Unlock()
		return outItem{ptype: wire.PktData, payload: raw, events: 1}, true
	default:
		bp := wire.GetEncodeBuf()
		payload := wire.AppendEvent((*bp)[:0], src)
		*bp = payload
		return outItem{ptype: wire.PktEvent, payload: payload, bufp: bp, events: 1}, true
	}
}

// gatherBatch builds the next delivery for the batching pipeline: a
// run of consecutive event deliveries coalesced into one batch
// payload, or a single item when coalescing does not apply. It flushes
// on size (Config.BatchEvents frames or Config.BatchBytes bytes), on
// FIFO breaks (device-native data must not overtake the events queued
// before it, so it flushes the run and is held over for the next
// call), and on deadline (a partial batch waits at most
// Config.FlushDelay for the queue to refill before going out as-is).
// ok=false means the queue is empty and nothing is pending; the caller
// waits on wake.
func (p *Proxy) gatherBatch() (outItem, bool) {
	items := p.batchScratch[:0]
	size := wire.BatchHeaderLen
	if p.hasHeld {
		p.hasHeld = false
		if p.held.ptype != wire.PktEvent {
			// Device-native data and durable deliveries (cursor-framed
			// payloads) never join a batch.
			return p.held, true
		}
		items = append(items, p.held)
		size += wire.BatchFrameSize(len(p.held.payload))
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
gather:
	for len(items) < p.cfg.BatchEvents {
		e, popped := p.next()
		if !popped {
			if len(items) == 0 {
				return outItem{}, false
			}
			// Partial batch, empty queue: flush on deadline.
			if timer == nil {
				timer = time.NewTimer(p.cfg.FlushDelay)
			}
			select {
			case <-p.wake:
				continue
			case <-timer.C:
				break gather
			case <-p.stop:
				break gather // outer loop observes stop and releases
			}
		}
		it, ok := p.translateOut(e)
		if !ok {
			continue
		}
		if it.ptype != wire.PktEvent {
			if len(items) == 0 {
				return it, true
			}
			p.held, p.hasHeld = it, true
			break
		}
		if len(items) > 0 && size+wire.BatchFrameSize(len(it.payload)) > p.cfg.BatchBytes {
			p.held, p.hasHeld = it, true
			break
		}
		items = append(items, it)
		size += wire.BatchFrameSize(len(it.payload))
	}
	p.batchScratch = items[:0] // keep capacity for the next gather
	return p.flushBatch(items), true
}

// flushBatch turns a gathered run into one delivery. A run of one
// stays a plain single-event send — byte-identical to the unbatched
// path, no framing overhead; longer runs are framed into a fresh batch
// payload and the per-event encode buffers are returned to the pool.
func (p *Proxy) flushBatch(items []outItem) outItem {
	if len(items) == 1 {
		return items[0]
	}
	bp := wire.GetEncodeBuf()
	buf := wire.AppendBatchHeader((*bp)[:0])
	for _, it := range items {
		buf = wire.AppendBatchFrame(buf, it.payload)
		p.releaseItem(it)
	}
	*bp = buf
	p.mu.Lock()
	p.stats.Batches++
	p.stats.BatchedEvents += uint64(len(items))
	p.mu.Unlock()
	return outItem{
		ptype:   wire.PktEvent,
		payload: buf,
		bufp:    bp,
		batched: true,
		events:  len(items),
	}
}

// deliverLoopAsync is the windowed delivery worker: it keeps up to
// Config.Pipeline sends in flight on the reliable channel and resolves
// them in FIFO order. When the channel gives up on the member the
// whole outstanding tail fails together (cumulative acks: a later
// packet cannot be acknowledged without its predecessors), so the
// failed items are re-sent in order after the redelivery pause —
// byte-identical, see outItem.
func (p *Proxy) deliverLoopAsync(as AsyncSender) {
	defer close(p.done)
	bs, _ := as.(BatchAsyncSender)
	if p.cfg.BatchEvents <= 1 {
		bs = nil
	}
	var inflight []outItem // sent, awaiting acknowledgement (FIFO)
	var retry []outItem    // failed, to re-send before new queue work
	releaseAll := func() {
		for _, it := range inflight {
			p.releaseItem(it)
		}
		for _, it := range retry {
			p.releaseItem(it)
		}
		if p.hasHeld {
			p.releaseItem(p.held)
			p.hasHeld = false
		}
	}
	for {
		for len(inflight) < p.cfg.Pipeline {
			var it outItem
			var ok bool
			if len(retry) > 0 {
				it = retry[0]
				retry = retry[1:]
				p.mu.Lock()
				p.stats.Redeliveries++
				p.mu.Unlock()
			} else if bs != nil {
				if it, ok = p.gatherBatch(); !ok {
					break
				}
			} else {
				var e *event.Event
				if e, ok = p.next(); !ok {
					break
				}
				if it, ok = p.translateOut(e); !ok {
					continue
				}
			}
			if it.batched {
				it.comp = bs.SendBatchAsync(p.member, it.payload)
			} else {
				it.comp = as.SendAsync(p.member, it.ptype, it.payload)
			}
			inflight = append(inflight, it)
		}
		if len(inflight) == 0 {
			select {
			case <-p.wake:
				continue
			case <-p.stop:
				releaseAll()
				return
			}
		}
		select {
		case <-inflight[0].comp.Done():
		case <-p.wake:
			continue // new work arrived: top the pipeline up
		case <-p.stop:
			releaseAll()
			return
		}
		head := inflight[0]
		err := head.comp.Err()
		switch {
		case err == nil:
			p.mu.Lock()
			p.stats.Delivered += uint64(head.events)
			p.mu.Unlock()
			p.releaseItem(head)
			head.comp.Recycle() // observed: hand the handle back
			inflight = inflight[1:]
		case errors.Is(err, reliable.ErrClosed):
			releaseAll()
			return
		default:
			// Give-up: collect the whole outstanding tail. Items can
			// only fail as a suffix, so everything resolved here is
			// either already delivered or queued for redelivery.
			var failed []outItem
			for i, it := range inflight {
				select {
				case <-it.comp.Done():
				case <-p.stop:
					inflight = inflight[i:] // not yet released
					releaseAll()
					return
				}
				itErr := it.comp.Err()
				it.comp.Recycle() // observed; retries get a fresh handle
				it.comp = nil
				if itErr == nil {
					p.mu.Lock()
					p.stats.Delivered += uint64(it.events)
					p.mu.Unlock()
					p.releaseItem(it)
					continue
				}
				failed = append(failed, it)
			}
			inflight = nil
			retry = append(failed, retry...)
			timer := time.NewTimer(p.cfg.RedeliveryInterval)
			select {
			case <-p.stop:
				timer.Stop()
				releaseAll()
				return
			case <-timer.C:
			}
		}
	}
}
