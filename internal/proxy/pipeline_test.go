package proxy

import (
	"fmt"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/wire"
)

// pipelineRig wires a proxy to a real reliable channel pair over a
// simulated network, with the member's receiving channel exposed.
type pipelineRig struct {
	net    *netsim.Network
	sender *reliable.Channel
	member *reliable.Channel
	px     *Proxy
}

func newPipelineRig(t *testing.T, p netsim.Profile, seed int64, cfg Config) *pipelineRig {
	t.Helper()
	n := netsim.New(p, netsim.WithSeed(seed))
	ta, err := n.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := n.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	rcfg := reliable.Config{
		RetryTimeout:    15 * time.Millisecond,
		MaxRetryTimeout: 60 * time.Millisecond,
		MaxRetries:      3,
		Window:          8,
	}
	sender, member := reliable.New(ta, rcfg), reliable.New(tb, rcfg)
	px := New(ident.New(2), &GenericDevice{}, sender, nil, cfg)
	px.Start()
	t.Cleanup(func() {
		px.Purge()
		sender.Close()
		member.Close()
		n.Close()
	})
	return &pipelineRig{net: n, sender: sender, member: member, px: px}
}

func pingEvent(n int64) *event.Event {
	e := event.NewTyped("ping").SetInt("n", n)
	e.Sender, e.Seq = ident.New(7), uint64(n)
	e.Stamp = time.Unix(1234, 0) // fixed: redelivery must be byte-identical
	return e
}

func recvPings(t *testing.T, ch *reliable.Channel, want int, timeout time.Duration) []int64 {
	t.Helper()
	var got []int64
	deadline := time.Now().Add(timeout)
	for len(got) < want && time.Now().Before(deadline) {
		pkt, err := ch.RecvTimeout(time.Until(deadline))
		if err != nil {
			break
		}
		if pkt.Type != wire.PktEvent {
			continue
		}
		e, err := wire.DecodeEvent(pkt.Payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		v, _ := e.Get("n")
		n, _ := v.Int()
		got = append(got, n)
	}
	return got
}

// TestPipelinedDeliveryFIFO: the async loop must deliver a burst in
// enqueue order while keeping several sends in flight.
func TestPipelinedDeliveryFIFO(t *testing.T) {
	r := newPipelineRig(t, netsim.Profile{Name: "lat", Latency: 2 * time.Millisecond}, 1,
		Config{QueueCap: 64, RedeliveryInterval: 20 * time.Millisecond, Pipeline: 8})
	const count = 24
	start := time.Now()
	for i := 1; i <= count; i++ {
		r.px.Enqueue(pingEvent(int64(i)))
	}
	got := recvPings(t, r.member, count, 5*time.Second)
	elapsed := time.Since(start)
	if len(got) != count {
		t.Fatalf("delivered %d/%d", len(got), count)
	}
	for i, n := range got {
		if n != int64(i+1) {
			t.Fatalf("position %d = %d (order violated): %v", i, n, got)
		}
	}
	// Serial delivery would cost ≥ count × RTT = 24 × 4 ms = 96 ms.
	if elapsed > 80*time.Millisecond {
		t.Errorf("burst took %v; pipelining seems inactive", elapsed)
	}
	// The stat trails the trailing in-flight acknowledgements.
	waitFor(t, 2*time.Second, func() bool {
		return r.px.Stats().Delivered == count
	})
}

// TestPipelinedRedeliveryExactlyOnce reproduces the homecare scenario
// through the real stack minus the bus: the member walks out of range
// mid-stream, the channel gives up, the proxy redelivers after the
// member returns — every ping must arrive exactly once, in order.
func TestPipelinedRedeliveryExactlyOnce(t *testing.T) {
	r := newPipelineRig(t, netsim.WiFi, 2,
		Config{QueueCap: 64, RedeliveryInterval: 25 * time.Millisecond, Pipeline: 8})

	for i := 1; i <= 3; i++ {
		r.px.Enqueue(pingEvent(int64(i)))
	}
	if got := recvPings(t, r.member, 3, 5*time.Second); len(got) != 3 {
		t.Fatalf("pre-gap delivery: %v", got)
	}

	// Member out of range: enqueues pile up, the channel gives up
	// repeatedly, the proxy keeps retrying.
	r.net.Isolate(ident.New(2))
	for i := 4; i <= 9; i++ {
		r.px.Enqueue(pingEvent(int64(i)))
	}
	time.Sleep(300 * time.Millisecond) // several give-up/redeliver cycles
	r.net.Restore(ident.New(2))

	got := recvPings(t, r.member, 6, 10*time.Second)
	if fmt.Sprint(got) != "[4 5 6 7 8 9]" {
		t.Fatalf("post-gap delivery = %v, want [4 5 6 7 8 9]", got)
	}
	// Nothing else may trickle in (at-most-once).
	if extra := recvPings(t, r.member, 1, 200*time.Millisecond); len(extra) != 0 {
		t.Errorf("duplicate delivery: %v", extra)
	}
	if st := r.px.Stats(); st.Redeliveries == 0 {
		t.Errorf("no redeliveries despite the gap (stats %+v)", st)
	}
}

// TestPipelinedPurgeDiscards: purging mid-flight must stop the loop
// promptly and discard the backlog.
func TestPipelinedPurgeDiscards(t *testing.T) {
	r := newPipelineRig(t, netsim.Perfect, 3,
		Config{QueueCap: 64, RedeliveryInterval: time.Hour, Pipeline: 4})
	r.net.Isolate(ident.New(2))
	for i := 1; i <= 10; i++ {
		r.px.Enqueue(pingEvent(int64(i)))
	}
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		r.px.Purge()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Purge hung on an in-flight pipeline")
	}
	if st := r.px.Stats(); st.Delivered != 0 {
		t.Errorf("delivered = %d after purge of an isolated member", st.Delivered)
	}
}
