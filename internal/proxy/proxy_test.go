package proxy

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/wire"
)

// fakeSender records sends and can be programmed to fail.
type fakeSender struct {
	mu    sync.Mutex
	sends []sentPacket
	fail  int // fail this many sends before succeeding
	errIs error
}

type sentPacket struct {
	dst     ident.ID
	ptype   wire.PacketType
	payload []byte
}

func (f *fakeSender) Send(dst ident.ID, ptype wire.PacketType, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail > 0 {
		f.fail--
		if f.errIs != nil {
			return f.errIs
		}
		return errors.New("transient failure")
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	f.sends = append(f.sends, sentPacket{dst: dst, ptype: ptype, payload: cp})
	return nil
}

func (f *fakeSender) snapshot() []sentPacket {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]sentPacket, len(f.sends))
	copy(out, f.sends)
	return out
}

func collectPublishes() (Publisher, *[]*event.Event, *sync.Mutex) {
	var mu sync.Mutex
	var events []*event.Event
	return func(e *event.Event) error {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
		return nil
	}, &events, &mu
}

func fastCfg() Config {
	return Config{QueueCap: 16, RedeliveryInterval: 10 * time.Millisecond}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestProxyDeliversFIFO(t *testing.T) {
	fs := &fakeSender{}
	pub, _, _ := collectPublishes()
	p := New(ident.New(9), &GenericDevice{}, fs, pub, fastCfg())
	p.Start()
	defer p.Purge()

	for i := 0; i < 10; i++ {
		e := event.NewTyped("x").SetInt("n", int64(i))
		e.Sender, e.Seq = 1, uint64(i+1)
		p.Enqueue(e)
	}
	waitFor(t, 2*time.Second, func() bool { return len(fs.snapshot()) == 10 })
	for i, s := range fs.snapshot() {
		if s.ptype != wire.PktEvent || s.dst != ident.New(9) {
			t.Fatalf("send %d: %v to %s", i, s.ptype, s.dst)
		}
		e, err := wire.DecodeEvent(s.payload)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := e.Get("n")
		if n, _ := v.Int(); n != int64(i) {
			t.Fatalf("send %d carries n=%d", i, n)
		}
	}
	if st := p.Stats(); st.Delivered != 10 || st.Enqueued != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyRedeliversAfterFailures(t *testing.T) {
	fs := &fakeSender{fail: 3}
	pub, _, _ := collectPublishes()
	p := New(ident.New(9), &GenericDevice{}, fs, pub, fastCfg())
	p.Start()
	defer p.Purge()

	p.Enqueue(event.NewTyped("x"))
	waitFor(t, 2*time.Second, func() bool { return len(fs.snapshot()) == 1 })
	if st := p.Stats(); st.Redeliveries != 3 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyQueueBoundedDropOldest(t *testing.T) {
	// A sender that never succeeds wedges the head; the queue then
	// overflows and drops the oldest.
	fs := &fakeSender{fail: 1 << 30}
	pub, _, _ := collectPublishes()
	cfg := Config{QueueCap: 4, RedeliveryInterval: time.Hour}
	p := New(ident.New(9), &GenericDevice{}, fs, pub, cfg)
	p.Start()
	defer p.Purge()

	for i := 0; i < 10; i++ {
		p.Enqueue(event.NewTyped("x").SetInt("n", int64(i)))
	}
	waitFor(t, time.Second, func() bool { return p.Stats().DroppedOldest >= 5 })
	if q := p.QueueLen(); q > 4 {
		t.Errorf("queue len = %d, cap 4", q)
	}
}

func TestPurgeDiscardsQueueAndStops(t *testing.T) {
	fs := &fakeSender{fail: 1 << 30}
	pub, _, _ := collectPublishes()
	p := New(ident.New(9), &GenericDevice{}, fs, pub, fastCfg())
	p.Start()

	for i := 0; i < 5; i++ {
		p.Enqueue(event.NewTyped("x"))
	}
	p.Purge()
	st := p.Stats()
	if st.DiscardedOnPurge == 0 {
		t.Errorf("nothing discarded: %+v", st)
	}
	// After purge, enqueue is a no-op.
	p.Enqueue(event.NewTyped("y"))
	if p.QueueLen() != 0 {
		t.Error("enqueue after purge")
	}
	// Purge is idempotent.
	p.Purge()
}

func TestHandleInboundGenericDevice(t *testing.T) {
	fs := &fakeSender{}
	pub, events, mu := collectPublishes()
	p := New(ident.New(9), &GenericDevice{}, fs, pub, fastCfg())
	p.Start()
	defer p.Purge()

	src := event.NewTyped("reading").SetFloat("v", 1.5)
	if err := p.HandleInbound(wire.EncodeEvent(src)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*events) != 1 {
		t.Fatalf("published %d", len(*events))
	}
	got := (*events)[0]
	if got.Sender != ident.New(9) {
		t.Errorf("sender = %s, want member", got.Sender)
	}
	if got.Seq != 1 {
		t.Errorf("seq = %d", got.Seq)
	}
	if got.Type() != "reading" {
		t.Errorf("type = %s", got.Type())
	}
}

func TestHandleInboundBadData(t *testing.T) {
	fs := &fakeSender{}
	pub, _, _ := collectPublishes()
	p := New(ident.New(9), &GenericDevice{}, fs, pub, fastCfg())
	p.Start()
	defer p.Purge()
	if err := p.HandleInbound([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

// translatingDevice converts outbound events to raw command bytes.
type translatingDevice struct{}

func (translatingDevice) DeviceType() string { return "xlate" }
func (translatingDevice) TranslateIn(data []byte) ([]*event.Event, error) {
	return []*event.Event{event.NewTyped("in")}, nil
}
func (translatingDevice) TranslateOut(e *event.Event) ([]byte, bool, error) {
	if e.Type() == "cmd" {
		return []byte{0xC0}, true, nil
	}
	return nil, false, nil
}
func (translatingDevice) InitialSubscriptions() []*event.Filter {
	return []*event.Filter{event.NewFilter().WhereType("cmd")}
}

func TestTranslateOutProducesDataPackets(t *testing.T) {
	fs := &fakeSender{}
	pub, _, _ := collectPublishes()
	p := New(ident.New(9), translatingDevice{}, fs, pub, fastCfg())
	p.Start()
	defer p.Purge()

	p.Enqueue(event.NewTyped("cmd"))
	p.Enqueue(event.NewTyped("other"))
	waitFor(t, 2*time.Second, func() bool { return len(fs.snapshot()) == 2 })
	sends := fs.snapshot()
	if sends[0].ptype != wire.PktData || sends[0].payload[0] != 0xC0 {
		t.Errorf("first send = %v % x", sends[0].ptype, sends[0].payload)
	}
	if sends[1].ptype != wire.PktEvent {
		t.Errorf("second send = %v", sends[1].ptype)
	}
	if p.Stats().TranslatedOut != 1 {
		t.Errorf("TranslatedOut = %d", p.Stats().TranslatedOut)
	}
	if p.DeviceType() != "xlate" {
		t.Errorf("DeviceType = %s", p.DeviceType())
	}
	if len(p.InitialSubscriptions()) != 1 {
		t.Error("initial subscriptions lost")
	}
}

// failingOutDevice errors on translation.
type failingOutDevice struct{ GenericDevice }

func (failingOutDevice) TranslateOut(*event.Event) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("cannot translate")
}

func TestTranslateOutErrorDropsEvent(t *testing.T) {
	fs := &fakeSender{}
	pub, _, _ := collectPublishes()
	p := New(ident.New(9), &failingOutDevice{}, fs, pub, fastCfg())
	p.Start()
	defer p.Purge()
	p.Enqueue(event.NewTyped("x"))
	p.Enqueue(event.NewTyped("y"))
	time.Sleep(100 * time.Millisecond)
	if n := len(fs.snapshot()); n != 0 {
		t.Errorf("%d sends despite translation errors", n)
	}
	if p.QueueLen() != 0 {
		t.Error("undeliverable events wedged the queue")
	}
}

func TestGenericDeviceDefaults(t *testing.T) {
	g := &GenericDevice{}
	if g.DeviceType() != "generic" {
		t.Errorf("type = %s", g.DeviceType())
	}
	g2 := &GenericDevice{Type: "custom"}
	if g2.DeviceType() != "custom" {
		t.Errorf("type = %s", g2.DeviceType())
	}
	if data, ok, err := g.TranslateOut(event.New()); data != nil || ok || err != nil {
		t.Error("generic TranslateOut not pass-through")
	}
	if g.InitialSubscriptions() != nil {
		t.Error("generic device has subscriptions")
	}
}

// mutatingDevice stamps every outbound event in TranslateOut and
// declares it via EventMutator, so the proxy must hand it a private
// clone rather than the shared dispatch copy.
type mutatingDevice struct {
	GenericDevice
}

func (d *mutatingDevice) TranslateOut(e *event.Event) ([]byte, bool, error) {
	e.SetStr("stamped-by", "mutator")
	return []byte{0xAB}, true, nil
}

func (d *mutatingDevice) MutatesEvents() bool { return true }

// TestMutatingDeviceGetsPrivateClone locks in the zero-copy dispatch
// contract: events are enqueued shared, and only a device that
// declares MutatesEvents sees (and pays for) a private copy.
func TestMutatingDeviceGetsPrivateClone(t *testing.T) {
	fs := &fakeSender{}
	pub, _, _ := collectPublishes()
	p := New(ident.New(9), &mutatingDevice{}, fs, pub, fastCfg())
	p.Start()
	defer p.Purge()

	shared := event.NewTyped("x").SetInt("n", 1)
	shared.Sender, shared.Seq = 1, 1
	p.Enqueue(shared)
	waitFor(t, 2*time.Second, func() bool { return len(fs.snapshot()) == 1 })

	if shared.Has("stamped-by") {
		t.Error("device mutation leaked into the shared event")
	}
	if got := fs.snapshot()[0]; got.ptype != wire.PktData || got.payload[0] != 0xAB {
		t.Errorf("translated send = %v %x", got.ptype, got.payload)
	}
}
