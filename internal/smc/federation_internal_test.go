package smc

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
)

// flakyPublisher fails its first fail publishes, then succeeds.
type flakyPublisher struct {
	fail  int
	calls int
}

func (p *flakyPublisher) Publish(e *event.Event) error {
	p.calls++
	if p.calls <= p.fail {
		return errors.New("busy")
	}
	return nil
}

func testLink(local interface {
	Publish(e *event.Event) error
}, retries int) *FederationLink {
	l := &FederationLink{
		cfg: FederateConfig{
			PublishRetries:    retries,
			PublishRetryDelay: time.Millisecond,
		},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	l.local = local
	return l
}

// TestPublishHomeRetriesThroughBackpressure: transient home-bus
// pushback pauses and retries instead of dropping.
func TestPublishHomeRetriesThroughBackpressure(t *testing.T) {
	p := &flakyPublisher{fail: 3}
	l := testLink(p, 8)
	if !l.publishHome(event.NewTyped("x")) {
		t.Fatal("publish with transient backpressure reported failure")
	}
	if p.calls != 4 {
		t.Fatalf("publish attempts = %d, want 4", p.calls)
	}
}

// TestPublishHomeBoundedRetryGivesUp: the retry budget is a bound, not
// an infinite stall — exhausting it reports failure so the caller can
// count the drop.
func TestPublishHomeBoundedRetryGivesUp(t *testing.T) {
	p := &flakyPublisher{fail: 1 << 30}
	l := testLink(p, 5)
	if l.publishHome(event.NewTyped("x")) {
		t.Fatal("permanently congested bus reported success")
	}
	if p.calls != 6 { // initial attempt + 5 retries
		t.Fatalf("publish attempts = %d, want 6", p.calls)
	}
}

// TestPublishHomeStopAborts: a closing link abandons the retry loop
// immediately.
func TestPublishHomeStopAborts(t *testing.T) {
	p := &flakyPublisher{fail: 1 << 30}
	l := testLink(p, 1<<20)
	close(l.stop)
	doneCh := make(chan bool, 1)
	go func() { doneCh <- l.publishHome(event.NewTyped("x")) }()
	select {
	case ok := <-doneCh:
		if ok {
			t.Fatal("stopped link reported publish success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("publishHome did not abort on stop")
	}
}

func TestFedCursorFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := fedCursorPath(dir, "fed-home-gw/1")
	if filepath.Dir(path) != dir {
		t.Fatalf("sanitised path escaped the dir: %s", path)
	}
	if _, _, ok := readFedCursor(path); ok {
		t.Fatal("missing cursor file read as valid")
	}
	if err := writeFedCursor(path, 0xfeedface, 4242); err != nil {
		t.Fatal(err)
	}
	epoch, cursor, ok := readFedCursor(path)
	if !ok || epoch != 0xfeedface || cursor != 4242 {
		t.Fatalf("round trip: epoch=%x cursor=%d ok=%v", epoch, cursor, ok)
	}
	// Overwrite is atomic and wins.
	if err := writeFedCursor(path, 0xfeedface, 5000); err != nil {
		t.Fatal(err)
	}
	if _, cursor, _ = readFedCursor(path); cursor != 5000 {
		t.Fatalf("overwrite lost: cursor=%d", cursor)
	}
}

// TestFedCursorFileCorruptionDegradesToZero: any damage — torn write,
// flipped byte, wrong magic — must read as "no position" (full
// replay), never as a wrong position.
func TestFedCursorFileCorruptionDegradesToZero(t *testing.T) {
	dir := t.TempDir()
	path := fedCursorPath(dir, "gw")
	if err := writeFedCursor(path, 7, 99); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := readFedCursor(path); ok {
			t.Fatalf("corruption at byte %d read as valid", i)
		}
	}
	if err := os.WriteFile(path, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := readFedCursor(path); ok {
		t.Fatal("torn cursor file read as valid")
	}
}
