package smc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/discovery"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/wire"
)

// TestStatsQueryOverWire exercises the management plane end to end: a
// bare endpoint (no admission) sends PktStatsRequest to the discovery
// service and gets back a decodable CellStats snapshot that agrees
// with the cell's in-process view.
func TestStatsQueryOverWire(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(31))
	defer net.Close()
	cell := newTestCell(t, net, defaultCellConfig())

	dev, err := smc.JoinCell(attach(t, net, 0x91001), smc.DeviceConfig{
		Type: "generic", Name: "member", Secret: testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	if err := dev.Client.Publish(event.NewTyped("ping")); err != nil {
		t.Fatal(err)
	}

	// A second, never-admitted endpoint queries the cell.
	probe := reliable.New(attach(t, net, 0x91002), reliable.Config{})
	defer probe.Close()
	if err := probe.Send(cell.Discovery.ID(), wire.PktStatsRequest, nil); err != nil {
		t.Fatalf("stats request: %v", err)
	}
	var stats wire.CellStats
	deadline := time.Now().Add(5 * time.Second)
	for {
		pkt, err := probe.RecvTimeout(time.Until(deadline))
		if err != nil {
			t.Fatalf("no stats response: %v", err)
		}
		if pkt.Type != wire.PktStatsResponse {
			pkt.Release()
			continue
		}
		stats, err = wire.DecodeCellStats(pkt.Payload)
		pkt.Release()
		if err != nil {
			t.Fatalf("decode stats: %v", err)
		}
		break
	}
	if stats.Cell != "test-cell" {
		t.Fatalf("cell name %q", stats.Cell)
	}
	if stats.Members != 1 {
		t.Fatalf("members = %d, want 1", stats.Members)
	}
	if stats.Published == 0 {
		t.Fatalf("published = 0 after a publish: %+v", stats)
	}
	if stats.BusChannel.PacketsAcquired == 0 || stats.DiscChannel.PacketsAcquired == 0 {
		t.Fatalf("pool counters missing: %+v", stats)
	}
}

// TestShutdownDrainsAndBalancesPool pins the graceful-stop contract:
// after traffic, Shutdown drains and closes, and the packet pool
// balances (acquired == recycled) — the invariant smcd turns into its
// exit code.
func TestShutdownDrainsAndBalancesPool(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(32))
	defer net.Close()

	busTr, err := net.Attach(ident.New(0x92001))
	if err != nil {
		t.Fatal(err)
	}
	discTr, err := net.Attach(ident.New(0x92002))
	if err != nil {
		t.Fatal(err)
	}
	cell, err := smc.NewCell(busTr, discTr, defaultCellConfig())
	if err != nil {
		t.Fatal(err)
	}
	cell.Start()

	sub, err := smc.JoinCell(attach(t, net, 0x92003), smc.DeviceConfig{
		Type: "generic", Name: "sub", Secret: testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Client.Subscribe(event.NewFilter().WhereType("t")); err != nil {
		t.Fatal(err)
	}
	pub, err := smc.JoinCell(attach(t, net, 0x92004), smc.DeviceConfig{
		Type: "generic", Name: "pub", Secret: testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := pub.Client.Publish(event.NewTyped("t").SetInt("n", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		e, err := sub.Client.NextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		e.Release()
	}
	// Stop the devices first so no new traffic arrives mid-drain.
	if err := pub.Leave(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Leave(); err != nil {
		t.Fatal(err)
	}

	if err := cell.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	acq, rec, clean := cell.LeakCheck()
	if !clean {
		t.Fatalf("pool leak after shutdown: acquired=%d recycled=%d", acq, rec)
	}
	if acq == 0 {
		t.Fatal("no pooled packets seen — test exercised nothing")
	}
}

// TestJoinCellWithRetrySurvivesLoss joins through a link lossy enough
// to defeat a fair share of single attempts.
func TestJoinCellWithRetrySurvivesLoss(t *testing.T) {
	net := netsim.New(netsim.Profile{Name: "lossy", Loss: 0.25}, netsim.WithSeed(33))
	defer net.Close()
	newTestCell(t, net, defaultCellConfig())

	dev, err := smc.JoinCellWithRetry(context.Background(), attach(t, net, 0x93001),
		smc.DeviceConfig{
			Type: "generic", Name: "roamer", Secret: testSecret,
			JoinTimeout: time.Second,
		},
		smc.RetryConfig{Attempts: 10, BaseDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("join with retry: %v", err)
	}
	defer dev.Close()
	if err := dev.Client.Subscribe(event.NewFilter().WhereType("x")); err != nil {
		t.Fatal(err)
	}
}

// TestJoinCellWithRetryStopsOnRejection asserts a rejection verdict is
// terminal — backoff must not hammer a cell that said no.
func TestJoinCellWithRetryStopsOnRejection(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(34))
	defer net.Close()
	newTestCell(t, net, defaultCellConfig())

	start := time.Now()
	_, err := smc.JoinCellWithRetry(context.Background(), attach(t, net, 0x94001),
		smc.DeviceConfig{
			Type: "generic", Name: "intruder", Secret: []byte("wrong"),
			JoinTimeout: 2 * time.Second,
		},
		smc.RetryConfig{Attempts: 8, BaseDelay: 500 * time.Millisecond, MaxDelay: 500 * time.Millisecond})
	if !errors.Is(err, discovery.ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("rejection retried for %v", elapsed)
	}
}

// TestJoinCellWithRetryHonoursContext cancels mid-backoff.
func TestJoinCellWithRetryHonoursContext(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(35))
	defer net.Close()
	// No cell at all: every attempt times out.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := smc.JoinCellWithRetry(ctx, attach(t, net, 0x95001),
		smc.DeviceConfig{
			Type: "generic", Name: "orphan", Secret: testSecret,
			JoinTimeout: 100 * time.Millisecond,
		},
		smc.RetryConfig{Attempts: 50, BaseDelay: 50 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("context ignored for %v", elapsed)
	}
}
