package smc

import (
	"errors"
	"fmt"
	"sync"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/transport"
)

// Federation: the paper's introduction requires that self-managed
// cells "be composable to form larger cells but also need to
// collaborate and integrate with each other in peer-to-peer
// relationships". A FederationLink realises the peer-to-peer half: it
// joins a remote cell as an ordinary member (full discovery and
// authentication), subscribes there with a content filter, and
// republishes matching events into the home cell's bus tagged with
// their origin.

// AttrFederatedFrom marks events imported from another cell; links
// never re-export already-federated events, so one-hop federation
// cannot loop.
const AttrFederatedFrom = "federated-from"

// FederateConfig configures a federation link.
type FederateConfig struct {
	// Name identifies the gateway device in the remote cell.
	Name string
	// RemoteSecret is the remote cell's admission secret.
	RemoteSecret []byte
	// RemoteCell optionally pins the remote cell's name.
	RemoteCell string
	// Import selects which remote events are pulled into the home
	// cell. A nil filter imports nothing (and is rejected).
	Import *event.Filter
	// Device tuning for the remote membership.
	Device DeviceConfig
}

// FederationLink is a live one-directional import of remote events.
type FederationLink struct {
	dev   *Device
	local interface {
		Publish(e *event.Event) error
	}
	remoteCell string

	mu       sync.Mutex
	imported uint64
	skipped  uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Federate joins the remote cell reachable over remoteTr and begins
// importing events matching cfg.Import into the home cell.
func Federate(home *Cell, remoteTr transport.Transport, cfg FederateConfig) (*FederationLink, error) {
	if cfg.Import == nil {
		return nil, errors.New("smc: federation needs an import filter")
	}
	if cfg.Name == "" {
		cfg.Name = "federation-gateway"
	}
	devCfg := cfg.Device
	devCfg.Type = "federation-gateway"
	devCfg.Name = cfg.Name
	devCfg.Secret = cfg.RemoteSecret
	devCfg.Cell = cfg.RemoteCell

	dev, err := JoinCell(remoteTr, devCfg)
	if err != nil {
		return nil, fmt.Errorf("smc: federation join: %w", err)
	}
	if err := dev.Client.Subscribe(cfg.Import); err != nil {
		_ = dev.Close()
		return nil, fmt.Errorf("smc: federation subscribe: %w", err)
	}
	l := &FederationLink{
		dev:        dev,
		local:      home.Bus.Local("federation:" + dev.Join.Cell),
		remoteCell: dev.Join.Cell,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go l.pump()
	return l, nil
}

// RemoteCell reports the cell being imported from.
func (l *FederationLink) RemoteCell() string { return l.remoteCell }

// Imported reports how many events have been republished locally.
func (l *FederationLink) Imported() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imported
}

// Skipped reports how many already-federated events were not
// re-imported (loop prevention).
func (l *FederationLink) Skipped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.skipped
}

func (l *FederationLink) pump() {
	defer close(l.done)
	for {
		select {
		case e, ok := <-l.dev.Client.Events():
			if !ok {
				return // remote client shut down
			}
			if e.Has(AttrFederatedFrom) {
				l.mu.Lock()
				l.skipped++
				l.mu.Unlock()
				e.Release()
				continue
			}
			// Clone promotes the borrowed decode to owned strings; the
			// original (and its packet) recycle here.
			imported := e.Clone()
			imported.SetStr(AttrFederatedFrom, l.remoteCell)
			imported.SetInt("origin-sender", int64(e.Sender))
			e.Release()
			if err := l.local.Publish(imported); err != nil {
				continue // home bus congested or closing; drop
			}
			l.mu.Lock()
			l.imported++
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Close leaves the remote cell and stops the pump.
func (l *FederationLink) Close() error {
	var err error
	l.stopOnce.Do(func() {
		close(l.stop)
		<-l.done
		err = l.dev.Leave()
	})
	return err
}
