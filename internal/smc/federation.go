package smc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/store"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

// Federation: the paper's introduction requires that self-managed
// cells "be composable to form larger cells but also need to
// collaborate and integrate with each other in peer-to-peer
// relationships". A FederationLink realises the peer-to-peer half: it
// joins a remote cell as an ordinary member (full discovery and
// authentication), subscribes there with a content filter, and
// republishes matching events into the home cell's bus tagged with
// their origin.
//
// Robustness contract: a link is supervised. It joins the remote cell
// as a durable consumer (stable per-link consumer name) when the
// remote bus has a durable log, remembers its last-imported resume
// cursor (persisted in a small cursor file under the home cell's
// durable directory, epoch-checked), and reconnects with bounded
// exponential backoff plus jitter when the remote membership dies —
// remote restarts, partitions, and kills all converge to
// resume-from-cursor replay. An epoch mismatch at resume means the
// remote log's cursor space rewound: the bus replays from the oldest
// retained record and the home cell's publisher dedup window absorbs
// the redelivery (at-least-once transport, exactly-once delivery to
// home subscribers). Backpressure on the home bus is bounded
// blocking-with-retry; only an exhausted retry budget counts an event
// as dropped.

// AttrFederatedFrom marks events imported from another cell; links
// never re-export already-federated events, so one-hop federation
// cannot loop.
const AttrFederatedFrom = "federated-from"

// fedPersistEvery is the write-behind cadence of the resume-cursor
// file: the cursor is persisted every this many processed events (and
// on every disconnect/Close). A stale persisted cursor only widens
// replay, never loses events.
const fedPersistEvery = 32

// FederateConfig configures a federation link.
type FederateConfig struct {
	// Name identifies the gateway device in the remote cell.
	Name string
	// RemoteSecret is the remote cell's admission secret.
	RemoteSecret []byte
	// RemoteCell optionally pins the remote cell's name.
	RemoteCell string
	// Import selects which remote events are pulled into the home
	// cell. A nil filter imports nothing (and is rejected).
	Import *event.Filter
	// Device tuning for the remote membership.
	Device DeviceConfig
	// Dial opens a fresh transport to the remote cell for a reconnect
	// attempt. Without it the link cannot redial: a dead remote
	// membership parks the link (Connected=false in stats) instead of
	// recovering.
	Dial func() (transport.Transport, error)
	// Retry tunes the per-cycle join backoff (JoinCellWithRetry
	// semantics); zero values take the defaults.
	Retry RetryConfig
	// Consumer overrides the durable consumer name in the remote cell
	// (default "fed-<home>-<name>"). It must stay stable across link
	// restarts — it is the identity the resume cursor belongs to.
	Consumer string
	// PublishRetries bounds the blocking-with-retry loop when the home
	// bus pushes back on an import (default 64 retries); only after
	// exhausting it is the event counted as dropped.
	PublishRetries int
	// PublishRetryDelay is the pause between home-bus retries
	// (default 2ms).
	PublishRetryDelay time.Duration
	// ProbeInterval is the liveness probe cadence. Lease heartbeats
	// are fire-and-forget unreliable sends, so a killed, partitioned
	// or restarted remote leaves the membership silently parked —
	// Events() never closes. The link therefore sends a reliable
	// heartbeat to the remote discovery service this often; the
	// reliable layer retransmits and eventually gives up on an
	// unreachable peer, which is the death signal the supervisor
	// converts into a reconnect cycle. Default: half the remote lease,
	// floored at 50ms.
	ProbeInterval time.Duration
	// ProbeMisses is how many consecutive probe failures count as
	// remote death (default 2).
	ProbeMisses int
}

// FederationStats is a point-in-time snapshot of one link.
type FederationStats struct {
	RemoteCell   string
	Connected    bool
	Imported     uint64
	Skipped      uint64
	Dropped      uint64
	Reconnects   uint64
	ResumeEpoch  uint64
	ResumeCursor uint64
}

// FederationLink is a live one-directional import of remote events.
type FederationLink struct {
	home *Cell
	cfg  FederateConfig

	local interface {
		Publish(e *event.Event) error
	}
	remoteCell string
	cursorPath string

	imported     atomic.Uint64
	skipped      atomic.Uint64
	dropped      atomic.Uint64
	reconnects   atomic.Uint64
	connected    atomic.Bool
	resumeEpoch  atomic.Uint64
	resumeCursor atomic.Uint64

	// sincePersist is the supervisor-goroutine-local write-behind
	// counter for the cursor file.
	sincePersist int

	devMu sync.Mutex
	dev   *Device

	ctx      context.Context
	cancel   context.CancelFunc
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Federate joins the remote cell reachable over remoteTr and begins
// importing events matching cfg.Import into the home cell. The initial
// join is synchronous (an unreachable remote fails fast); after that
// the link supervises itself, reconnecting via cfg.Dial when the
// remote membership dies.
func Federate(home *Cell, remoteTr transport.Transport, cfg FederateConfig) (*FederationLink, error) {
	if cfg.Import == nil {
		return nil, errors.New("smc: federation needs an import filter")
	}
	if cfg.Name == "" {
		cfg.Name = "federation-gateway"
	}
	if cfg.Consumer == "" {
		cfg.Consumer = "fed-" + home.cellName + "-" + cfg.Name
	}
	if cfg.PublishRetries == 0 {
		cfg.PublishRetries = 64
	}
	if cfg.PublishRetryDelay <= 0 {
		cfg.PublishRetryDelay = 2 * time.Millisecond
	}
	if cfg.ProbeMisses <= 0 {
		cfg.ProbeMisses = 2
	}
	cfg.Retry.fillDefaults()

	l := &FederationLink{
		home: home,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	l.ctx, l.cancel = context.WithCancel(context.Background())
	if dir := home.DurableDir(); dir != "" {
		l.cursorPath = fedCursorPath(dir, cfg.Consumer)
		if epoch, cursor, ok := readFedCursor(l.cursorPath); ok {
			l.resumeEpoch.Store(epoch)
			l.resumeCursor.Store(cursor)
		}
	}

	dev, err := JoinCell(remoteTr, l.deviceConfig())
	if err != nil {
		l.cancel()
		return nil, fmt.Errorf("smc: federation join: %w", err)
	}
	if err := dev.Client.Subscribe(cfg.Import); err != nil {
		_ = dev.Close()
		l.cancel()
		return nil, fmt.Errorf("smc: federation subscribe: %w", err)
	}
	l.remoteCell = dev.Join.Cell
	l.local = home.Bus.Local("federation:" + dev.Join.Cell)
	l.setDev(dev)
	home.registerFederation(l)
	go l.run(dev)
	return l, nil
}

// deviceConfig builds the remote membership config, resuming the
// durable consumer from the link's current position.
func (l *FederationLink) deviceConfig() DeviceConfig {
	devCfg := l.cfg.Device
	devCfg.Type = "federation-gateway"
	devCfg.Name = l.cfg.Name
	devCfg.Secret = l.cfg.RemoteSecret
	devCfg.Cell = l.cfg.RemoteCell
	devCfg.Durable = l.cfg.Consumer
	devCfg.DurablePosition = client.DurablePosition{
		Epoch:  l.resumeEpoch.Load(),
		Cursor: l.resumeCursor.Load(),
	}
	return devCfg
}

// RemoteCell reports the cell being imported from.
func (l *FederationLink) RemoteCell() string { return l.remoteCell }

// Imported reports how many events have been republished locally.
func (l *FederationLink) Imported() uint64 { return l.imported.Load() }

// Skipped reports how many already-federated events were not
// re-imported (loop prevention).
func (l *FederationLink) Skipped() uint64 { return l.skipped.Load() }

// Dropped reports how many imports were abandoned after the bounded
// home-bus retry budget ran out.
func (l *FederationLink) Dropped() uint64 { return l.dropped.Load() }

// Reconnects reports how many reconnect cycles have completed.
func (l *FederationLink) Reconnects() uint64 { return l.reconnects.Load() }

// Connected reports whether the link currently holds a live remote
// membership.
func (l *FederationLink) Connected() bool { return l.connected.Load() }

// Stats snapshots the link.
func (l *FederationLink) Stats() FederationStats {
	return FederationStats{
		RemoteCell:   l.remoteCell,
		Connected:    l.connected.Load(),
		Imported:     l.imported.Load(),
		Skipped:      l.skipped.Load(),
		Dropped:      l.dropped.Load(),
		Reconnects:   l.reconnects.Load(),
		ResumeEpoch:  l.resumeEpoch.Load(),
		ResumeCursor: l.resumeCursor.Load(),
	}
}

// counters is the management-plane row (smctap -stats).
func (l *FederationLink) counters() wire.FederationCounters {
	s := l.Stats()
	return wire.FederationCounters{
		Name:         l.cfg.Name,
		RemoteCell:   s.RemoteCell,
		Connected:    s.Connected,
		Imported:     s.Imported,
		Skipped:      s.Skipped,
		Dropped:      s.Dropped,
		Reconnects:   s.Reconnects,
		ResumeEpoch:  s.ResumeEpoch,
		ResumeCursor: s.ResumeCursor,
	}
}

func (l *FederationLink) setDev(dev *Device) {
	l.devMu.Lock()
	l.dev = dev
	l.devMu.Unlock()
}

func (l *FederationLink) getDev() *Device {
	l.devMu.Lock()
	defer l.devMu.Unlock()
	return l.dev
}

// run supervises the link: pump until the remote membership dies, then
// reconnect with backoff and pump again. Only Close ends the loop (or
// a dead remote with no Dial configured).
func (l *FederationLink) run(dev *Device) {
	defer close(l.done)
	for {
		l.connected.Store(true)
		l.pump(dev)
		l.connected.Store(false)
		l.persistCursor()
		select {
		case <-l.stop:
			return // Close tears the device down
		default:
		}
		// Events() closed underneath us: the remote restarted, the
		// membership lapsed, or the transport died. The old pump exit
		// here was the permanent-death bug — now the link reconnects
		// and resumes from its cursor.
		l.setDev(nil)
		_ = dev.Close()
		if l.cfg.Dial == nil {
			return // cannot redial; parked (Connected=false)
		}
		var ok bool
		if dev, ok = l.reconnect(); !ok {
			return
		}
		l.setDev(dev)
		l.reconnects.Add(1)
	}
}

// pump imports events until the remote membership dies or the link
// stops. Death has two faces: Events() closing (local shutdown) and
// the liveness probe reporting an unreachable remote.
func (l *FederationLink) pump(dev *Device) {
	probeStop := make(chan struct{})
	probeDead := make(chan struct{})
	go l.probe(dev, probeStop, probeDead)
	defer close(probeStop)
	events := dev.Client.Events()
	for {
		select {
		case e, ok := <-events:
			if !ok {
				return // remote client shut down
			}
			l.importEvent(dev, e)
		case <-probeDead:
			return // remote unreachable: reconnect
		case <-l.stop:
			return
		}
	}
}

// probe detects remote death. The Heartbeater's lease refreshes are
// unreliable sends with discarded errors, so they carry no liveness
// information back; this loop sends a reliable heartbeat to the remote
// discovery service every ProbeInterval instead. On a live remote it
// doubles as a lease refresh; on a dead one the reliable layer's
// retransmission budget runs out and ProbeMisses consecutive give-ups
// close probeDead.
func (l *FederationLink) probe(dev *Device, stop <-chan struct{}, dead chan<- struct{}) {
	interval := l.cfg.ProbeInterval
	if interval <= 0 {
		interval = dev.Join.Lease / 2
	}
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	misses := 0
	for {
		select {
		case <-stop:
			return
		case <-l.stop:
			return
		case <-t.C:
		}
		if err := dev.Probe(); err != nil {
			if misses++; misses >= l.cfg.ProbeMisses {
				close(dead)
				return
			}
		} else {
			misses = 0
		}
	}
}

func (l *FederationLink) importEvent(dev *Device, e *event.Event) {
	cursor := e.Cursor
	if cursor != 0 {
		// Advance the resume position for every durable delivery —
		// including skipped ones, so loop-prevention skips are not
		// replayed forever on reconnect.
		l.resumeEpoch.Store(dev.Client.DurablePosition().Epoch)
		l.resumeCursor.Store(cursor)
	}
	if e.Has(AttrFederatedFrom) {
		l.skipped.Add(1)
		e.Release()
		l.maybePersist()
		return
	}
	// Clone promotes the borrowed decode to owned strings; the
	// original (and its packet) recycle here.
	imported := e.Clone()
	imported.SetStr(AttrFederatedFrom, l.remoteCell)
	imported.SetInt("origin-sender", int64(e.Sender))
	// Give the import an idempotent identity so at-least-once replay
	// after a reconnect (or a stale persisted cursor) dedups to
	// exactly-once in the home cell's log: keep the origin publisher's
	// dedup ID (mixed with the origin sender — all imports share the
	// link's local sender) or derive one from the remote log position.
	if v, ok := e.Get(store.AttrDedup); ok {
		if d, isInt := v.Int(); isInt {
			imported.SetInt(store.AttrDedup, mixDedup(uint64(e.Sender), uint64(d)))
		}
	} else if cursor != 0 {
		imported.SetInt(store.AttrDedup, mixDedup(l.resumeEpoch.Load(), cursor))
	}
	e.Release()
	if l.publishHome(imported) {
		l.imported.Add(1)
	} else {
		imported.Release()
		l.dropped.Add(1)
	}
	l.maybePersist()
}

// publishHome publishes with bounded blocking-with-retry: home-bus
// backpressure (a full shard queue) pauses the import pump instead of
// silently dropping the event.
func (l *FederationLink) publishHome(e *event.Event) bool {
	retries := l.cfg.PublishRetries
	for {
		if err := l.local.Publish(e); err == nil {
			return true
		}
		if retries <= 0 {
			return false
		}
		retries--
		select {
		case <-l.stop:
			return false
		case <-time.After(l.cfg.PublishRetryDelay):
		}
	}
}

// reconnect redials the remote cell with bounded exponential backoff
// plus jitter until a join succeeds or the link closes. Each cycle is
// Dial + JoinCellWithRetry + re-Subscribe (durable filter state on the
// remote bus is in-memory and gone after a remote restart).
func (l *FederationLink) reconnect() (*Device, bool) {
	delay := l.cfg.Retry.BaseDelay
	for {
		if tr, err := l.cfg.Dial(); err == nil {
			// A failed join closes the channel and transport itself.
			dev, err := JoinCellWithRetry(l.ctx, tr, l.deviceConfig(), l.cfg.Retry)
			if err == nil {
				if err := dev.Client.Subscribe(l.cfg.Import); err == nil {
					return dev, true
				}
				_ = dev.Close()
			}
		}
		sleep := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-l.stop:
			return nil, false
		case <-time.After(sleep):
		}
		if delay *= 2; delay > l.cfg.Retry.MaxDelay {
			delay = l.cfg.Retry.MaxDelay
		}
	}
}

func (l *FederationLink) maybePersist() {
	if l.cursorPath == "" {
		return
	}
	l.sincePersist++
	if l.sincePersist >= fedPersistEvery {
		l.sincePersist = 0
		l.persistCursor()
	}
}

// persistCursor writes the resume position to the cursor file
// (write-behind: a stale file only widens replay, and the home log's
// dedup window absorbs the overlap).
func (l *FederationLink) persistCursor() {
	if l.cursorPath == "" {
		return
	}
	epoch, cursor := l.resumeEpoch.Load(), l.resumeCursor.Load()
	if epoch == 0 && cursor == 0 {
		return
	}
	_ = writeFedCursor(l.cursorPath, epoch, cursor)
}

// mixDedup folds a (space, id) pair into one int64 dedup ID with a
// splitmix64-style finaliser, so imported events keep an idempotent
// identity without colliding across origin publishers or epochs.
func mixDedup(space, id uint64) int64 {
	x := space*0x9e3779b97f4a7c15 ^ id
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Close leaves the remote cell, stops the supervisor, and persists the
// resume cursor.
func (l *FederationLink) Close() error {
	var err error
	l.stopOnce.Do(func() {
		close(l.stop)
		l.cancel()
		<-l.done
		l.home.unregisterFederation(l)
		l.persistCursor()
		if dev := l.getDev(); dev != nil {
			err = dev.Leave()
		}
	})
	return err
}
