// Package smc composes the three core SMC components — event bus,
// discovery service, policy service (§II) — into a runnable
// Self-Managed Cell, and provides the device-side counterpart that
// joins a cell and speaks to its bus.
package smc

import (
	"errors"
	"fmt"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/discovery"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/policy"
	"github.com/amuse/smc/internal/proxy"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/sensor"
	"github.com/amuse/smc/internal/transport"
)

// Config configures a cell.
type Config struct {
	// Cell is the cell's name.
	Cell string
	// Secret is the shared admission secret.
	Secret []byte
	// Matcher selects the pub/sub engine (default: fast).
	Matcher matcher.Kind
	// Lease/Grace/BeaconInterval tune the discovery service.
	Lease          time.Duration
	Grace          time.Duration
	BeaconInterval time.Duration
	// PolicyText is Ponder-lite source loaded at start (optional).
	PolicyText string
	// Reliable tunes the acknowledged hop.
	Reliable reliable.Config
	// BusOptions are applied to the event bus.
	BusOptions []bus.Option
	// PolicyOptions are applied to the policy engine.
	PolicyOptions []policy.Option
	// Epoch distinguishes cell restarts in beacons.
	Epoch uint32
}

// Cell is a running Self-Managed Cell.
type Cell struct {
	Bus       *bus.Bus
	Discovery *discovery.Service
	Policy    *policy.Engine
	Registry  *bootstrap.Registry

	started bool
}

// NewCell wires a cell over two transport endpoints: one for the event
// bus, one for the discovery service (the discovery protocol does not
// share the bus's endpoint, §II-B). Call Start to go live.
func NewCell(busTr, discTr transport.Transport, cfg Config) (*Cell, error) {
	if cfg.Cell == "" {
		return nil, errors.New("smc: empty cell name")
	}
	if cfg.Matcher == "" {
		cfg.Matcher = matcher.KindFast
	}
	m, err := matcher.New(cfg.Matcher)
	if err != nil {
		return nil, err
	}

	reg := bootstrap.NewRegistry()
	RegisterStandardDevices(reg)

	busCh := reliable.New(busTr, cfg.Reliable)
	b := bus.New(busCh, m, reg, cfg.BusOptions...)

	eng, err := policy.NewEngine(b, cfg.PolicyOptions...)
	if err != nil {
		closeErr := busCh.Close()
		_ = closeErr
		return nil, err
	}
	b.SetAuthorizer(eng)
	if cfg.PolicyText != "" {
		if err := eng.LoadString(cfg.PolicyText); err != nil {
			_ = busCh.Close()
			return nil, fmt.Errorf("smc: load policies: %w", err)
		}
	}

	discCh := reliable.New(discTr, cfg.Reliable)
	disc, err := discovery.NewService(discCh, b.Local("discovery"), discovery.ServiceConfig{
		Cell:           cfg.Cell,
		Secret:         cfg.Secret,
		BusID:          b.ID(),
		Epoch:          cfg.Epoch,
		BeaconInterval: cfg.BeaconInterval,
		Lease:          cfg.Lease,
		Grace:          cfg.Grace,
		Register: func(id ident.ID, deviceType, name string) error {
			return b.AddMember(id, deviceType, name)
		},
		Unregister: func(id ident.ID) {
			b.RemoveMember(id)
		},
	})
	if err != nil {
		_ = busCh.Close()
		_ = discCh.Close()
		return nil, err
	}

	return &Cell{Bus: b, Discovery: disc, Policy: eng, Registry: reg}, nil
}

// Start brings the cell online: the bus starts processing and the
// discovery service starts beaconing.
func (c *Cell) Start() {
	if c.started {
		return
	}
	c.started = true
	c.Bus.Start()
	c.Discovery.Start()
}

// Close shuts the cell down.
func (c *Cell) Close() error {
	discErr := c.Discovery.Close()
	busErr := c.Bus.Close()
	if discErr != nil {
		return discErr
	}
	return busErr
}

// DeviceConfig configures a device-side join.
type DeviceConfig struct {
	// Type is the device type ("hr-sensor", "defibrillator", ...);
	// it selects the proxy built for the device inside the cell.
	Type string
	// Name is the human-readable device name.
	Name string
	// Secret is the shared admission secret.
	Secret []byte
	// Cell optionally pins a cell name.
	Cell string
	// Discovery, with Cell set, joins a known discovery service
	// directly instead of waiting for a beacon (unicast-only links).
	Discovery ident.ID
	// JoinTimeout bounds the join (default 5 s).
	JoinTimeout time.Duration
	// Reliable tunes the acknowledged hop.
	Reliable reliable.Config
}

// Device is a joined member: a client connection plus the lease
// heartbeats keeping its membership alive.
type Device struct {
	Client *client.Client
	Join   *discovery.JoinResult

	ch *reliable.Channel
	hb *discovery.Heartbeater
}

// JoinCell performs the full device-side flow on one transport
// endpoint: discover a cell via beacons, authenticate, join, start
// heartbeats, and return a ready client bound to the cell's bus.
func JoinCell(tr transport.Transport, cfg DeviceConfig) (*Device, error) {
	ch := reliable.New(tr, cfg.Reliable)
	res, err := discovery.Join(ch, discovery.JoinConfig{
		DeviceType: cfg.Type,
		DeviceName: cfg.Name,
		Secret:     cfg.Secret,
		Cell:       cfg.Cell,
		Discovery:  cfg.Discovery,
		Timeout:    cfg.JoinTimeout,
	})
	if err != nil {
		_ = ch.Close()
		return nil, err
	}
	hb := discovery.StartHeartbeats(ch, res.Discovery, res.Lease/3)
	return &Device{
		Client: client.New(ch, res.Bus),
		Join:   res,
		ch:     ch,
		hb:     hb,
	}, nil
}

// Leave announces departure to the cell (immediate purge) and shuts
// the device down.
func (d *Device) Leave() error {
	d.hb.Stop()
	leaveErr := discovery.Leave(d.ch, d.Join.Discovery)
	closeErr := d.Client.Close()
	if leaveErr != nil {
		return leaveErr
	}
	return closeErr
}

// Close shuts the device down without announcing departure (the
// "battery died / walked away" path: the cell purges after lease and
// grace lapse).
func (d *Device) Close() error {
	d.hb.Stop()
	return d.Client.Close()
}

// RegisterStandardDevices installs proxy factories for the synthetic
// medical device types: sensors get the translating sensor proxy,
// actuators get the command-translating actuator proxy subscribed on
// the device's behalf.
func RegisterStandardDevices(reg *bootstrap.Registry) {
	sensorTypes := []string{
		sensor.DeviceTypeHeartRate,
		sensor.DeviceTypeSpO2,
		sensor.DeviceTypeTemperature,
		sensor.DeviceTypeBP,
		sensor.DeviceTypeGlucose,
	}
	for _, dt := range sensorTypes {
		deviceType := dt
		_ = reg.Register(deviceType, func(_ ident.ID, _ string) proxy.Device {
			return sensor.NewSensorProxyDevice(deviceType)
		})
	}
	actuatorTypes := []string{
		sensor.DeviceTypeDefib,
		sensor.DeviceTypePump,
		sensor.DeviceTypeBedside,
	}
	for _, dt := range actuatorTypes {
		deviceType := dt
		_ = reg.Register(deviceType, func(_ ident.ID, name string) proxy.Device {
			return sensor.NewActuatorProxyDevice(deviceType, name)
		})
	}
}
