// Package smc composes the three core SMC components — event bus,
// discovery service, policy service (§II) — into a runnable
// Self-Managed Cell, and provides the device-side counterpart that
// joins a cell and speaks to its bus.
package smc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/discovery"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/policy"
	"github.com/amuse/smc/internal/proxy"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/sensor"
	"github.com/amuse/smc/internal/store"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

// Config configures a cell.
type Config struct {
	// Cell is the cell's name.
	Cell string
	// Secret is the shared admission secret.
	Secret []byte
	// Matcher selects the pub/sub engine (default: fast).
	Matcher matcher.Kind
	// Lease/Grace/BeaconInterval tune the discovery service.
	Lease          time.Duration
	Grace          time.Duration
	BeaconInterval time.Duration
	// PolicyText is Ponder-lite source loaded at start (optional).
	PolicyText string
	// Reliable tunes the acknowledged hop.
	Reliable reliable.Config
	// BusOptions are applied to the event bus.
	BusOptions []bus.Option
	// PolicyOptions are applied to the policy engine.
	PolicyOptions []policy.Option
	// Epoch distinguishes cell restarts in beacons.
	Epoch uint32
	// Batch enables wire-level event batching on the cell's member
	// proxies (bus.WithBatching).
	Batch BatchConfig
	// Durable, when non-nil, attaches a durable event log to the bus
	// (bus.WithDurableLog): every admitted publish is retained under
	// the log's retention knobs, and members may bind durable
	// consumers to replay missed events after a disconnect. With
	// Durable.Dir set the log survives a cell crash.
	Durable *store.Config
}

// BatchConfig tunes wire-level event batching: up to Events frames or
// Bytes of payload per batch packet, with partial batches flushed
// after FlushDelay. Events <= 1 leaves batching off; zero Bytes and
// FlushDelay take the layer defaults (8 KiB, 1ms).
type BatchConfig struct {
	Events     int
	Bytes      int
	FlushDelay time.Duration
}

// enabled reports whether the config turns batching on.
func (bc BatchConfig) enabled() bool { return bc.Events > 1 }

// Cell is a running Self-Managed Cell.
type Cell struct {
	Bus       *bus.Bus
	Discovery *discovery.Service
	Policy    *policy.Engine
	Registry  *bootstrap.Registry

	cellName   string
	busCh      *reliable.Channel
	discCh     *reliable.Channel
	started    bool
	durableDir string

	// Federation links importing into this cell, registered by
	// Federate for the management plane.
	fedMu sync.Mutex
	feds  []*FederationLink
}

// NewCell wires a cell over two transport endpoints: one for the event
// bus, one for the discovery service (the discovery protocol does not
// share the bus's endpoint, §II-B). Call Start to go live.
func NewCell(busTr, discTr transport.Transport, cfg Config) (*Cell, error) {
	if cfg.Cell == "" {
		return nil, errors.New("smc: empty cell name")
	}
	if cfg.Matcher == "" {
		cfg.Matcher = matcher.KindFast
	}
	m, err := matcher.New(cfg.Matcher)
	if err != nil {
		return nil, err
	}

	reg := bootstrap.NewRegistry()
	RegisterStandardDevices(reg)

	busOpts := cfg.BusOptions
	if cfg.Batch.enabled() {
		busOpts = append(busOpts[:len(busOpts):len(busOpts)],
			bus.WithBatching(cfg.Batch.Events, cfg.Batch.Bytes, cfg.Batch.FlushDelay))
	}
	if cfg.Durable != nil {
		log, err := store.Open(*cfg.Durable)
		if err != nil {
			return nil, fmt.Errorf("smc: open durable log: %w", err)
		}
		busOpts = append(busOpts[:len(busOpts):len(busOpts)], bus.WithDurableLog(log))
	}
	busCh := reliable.New(busTr, cfg.Reliable)
	b := bus.New(busCh, m, reg, busOpts...)

	eng, err := policy.NewEngine(b, cfg.PolicyOptions...)
	if err != nil {
		closeErr := busCh.Close()
		_ = closeErr
		return nil, err
	}
	b.SetAuthorizer(eng)
	if cfg.PolicyText != "" {
		if err := eng.LoadString(cfg.PolicyText); err != nil {
			_ = busCh.Close()
			return nil, fmt.Errorf("smc: load policies: %w", err)
		}
	}

	discCh := reliable.New(discTr, cfg.Reliable)
	c := &Cell{cellName: cfg.Cell, busCh: busCh, discCh: discCh}
	if cfg.Durable != nil {
		c.durableDir = cfg.Durable.Dir
	}
	disc, err := discovery.NewService(discCh, b.Local("discovery"), discovery.ServiceConfig{
		Cell:           cfg.Cell,
		Secret:         cfg.Secret,
		BusID:          b.ID(),
		Epoch:          cfg.Epoch,
		BeaconInterval: cfg.BeaconInterval,
		Lease:          cfg.Lease,
		Grace:          cfg.Grace,
		Register: func(id ident.ID, deviceType, name string) error {
			return b.AddMember(id, deviceType, name)
		},
		Unregister: func(id ident.ID) {
			b.RemoveMember(id)
		},
		// Management plane: any endpoint may query the cell's health
		// and leak counters (smctap -stats, the chaos harness).
		StatsProvider: c.StatsReport,
	})
	if err != nil {
		_ = busCh.Close()
		_ = discCh.Close()
		return nil, err
	}

	c.Bus, c.Discovery, c.Policy, c.Registry = b, disc, eng, reg
	return c, nil
}

// Start brings the cell online: the bus starts processing and the
// discovery service starts beaconing.
func (c *Cell) Start() {
	if c.started {
		return
	}
	c.started = true
	c.Bus.Start()
	c.Discovery.Start()
}

// Close shuts the cell down immediately: in-flight reliable sends fail
// with ErrClosed. For a graceful stop see Shutdown.
func (c *Cell) Close() error {
	discErr := c.Discovery.Close()
	busErr := c.Bus.Close()
	if discErr != nil {
		return discErr
	}
	return busErr
}

// Shutdown stops the cell gracefully: it first drains in-flight
// reliable deliveries on both endpoints (bounded by drainTimeout
// overall), then closes the cell. A drain that times out is reported,
// but the cell is closed regardless — a hung destination must not keep
// the daemon alive.
func (c *Cell) Shutdown(drainTimeout time.Duration) error {
	deadline := time.Now().Add(drainTimeout)
	drainErr := c.busCh.Drain(drainTimeout)
	if remain := time.Until(deadline); remain > 0 {
		if err := c.discCh.Drain(remain); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if err := c.Close(); err != nil {
		return err
	}
	return drainErr
}

// ChannelStats snapshots the cell's two reliable endpoints.
func (c *Cell) ChannelStats() (busCh, discCh reliable.Stats) {
	return c.busCh.Stats(), c.discCh.Stats()
}

// LeakCheck reports the combined inbound packet-pool balance of both
// endpoints. On a cleanly shut down (or fully quiesced) cell clean is
// true: every pooled packet acquired was recycled.
func (c *Cell) LeakCheck() (acquired, recycled uint64, clean bool) {
	bs, ds := c.ChannelStats()
	acquired = bs.PacketsAcquired + ds.PacketsAcquired
	recycled = bs.PacketsRecycled + ds.PacketsRecycled
	return acquired, recycled, acquired == recycled
}

// StatsReport composes the management-plane snapshot answered to
// PktStatsRequest queries.
func (c *Cell) StatsReport() wire.CellStats {
	bst := c.Bus.Stats()
	bs, ds := c.ChannelStats()
	st := wire.CellStats{
		Cell:           c.cellName,
		Members:        uint32(len(c.Discovery.Members())),
		Published:      bst.Published,
		DeliveredLocal: bst.DeliveredLocal,
		EnqueuedRemote: bst.EnqueuedRemote,
		Dropped:        bst.Dropped,
		Quenches:       bst.Quenches,
		AuthDenied:     bst.AuthDenied,
		BusChannel:     channelCounters(bs),
		DiscChannel:    channelCounters(ds),
	}
	st.Log, st.Durables = c.Bus.LogReport()
	c.fedMu.Lock()
	for _, l := range c.feds {
		st.Federation = append(st.Federation, l.counters())
	}
	c.fedMu.Unlock()
	return st
}

// DurableDir is the cell's durable-store directory ("" when the cell
// has no disk-backed log). Federation links keep their resume cursor
// files here.
func (c *Cell) DurableDir() string { return c.durableDir }

func (c *Cell) registerFederation(l *FederationLink) {
	c.fedMu.Lock()
	c.feds = append(c.feds, l)
	c.fedMu.Unlock()
}

func (c *Cell) unregisterFederation(l *FederationLink) {
	c.fedMu.Lock()
	for i, x := range c.feds {
		if x == l {
			c.feds = append(c.feds[:i], c.feds[i+1:]...)
			break
		}
	}
	c.fedMu.Unlock()
}

// channelCounters converts a reliable snapshot to its wire form.
func channelCounters(s reliable.Stats) wire.ChannelCounters {
	return wire.ChannelCounters{
		Sent:            s.Sent,
		Acked:           s.Acked,
		Retransmits:     s.Retransmits,
		FastRetransmits: s.FastRetransmits,
		Failures:        s.Failures,
		Resumed:         s.Resumed,
		StreamResets:    s.StreamResets,
		Received:        s.Received,
		DupsDropped:     s.DupsDropped,
		Buffered:        s.Buffered,
		StaleAcks:       s.StaleAcks,
		StaleEpoch:      s.StaleEpoch,
		UnreliableIn:    s.UnreliableIn,
		UnreliableOut:   s.UnreliableOut,
		PacketsAcquired: s.PacketsAcquired,
		PacketsRecycled: s.PacketsRecycled,
	}
}

// DeviceConfig configures a device-side join.
type DeviceConfig struct {
	// Type is the device type ("hr-sensor", "defibrillator", ...);
	// it selects the proxy built for the device inside the cell.
	Type string
	// Name is the human-readable device name.
	Name string
	// Secret is the shared admission secret.
	Secret []byte
	// Cell optionally pins a cell name.
	Cell string
	// Discovery, with Cell set, joins a known discovery service
	// directly instead of waiting for a beacon (unicast-only links).
	Discovery ident.ID
	// JoinTimeout bounds the join (default 5 s).
	JoinTimeout time.Duration
	// Reliable tunes the acknowledged hop.
	Reliable reliable.Config
	// Batch enables publish-side event batching on the device's
	// client (client.WithPublishBatching).
	Batch BatchConfig
	// Durable, when non-empty, binds the device to the named durable
	// consumer on the cell: missed events are replayed from the
	// cell's event log on (re)join. DurablePosition is the resume
	// position from a previous session (client.DurablePosition);
	// leave zero to replay everything retained.
	Durable         string
	DurablePosition client.DurablePosition
}

// clientOpts converts the device config into client options.
func (cfg DeviceConfig) clientOpts() []client.Option {
	var opts []client.Option
	if cfg.Batch.enabled() {
		opts = append(opts,
			client.WithPublishBatching(cfg.Batch.Events, cfg.Batch.Bytes, cfg.Batch.FlushDelay))
	}
	if cfg.Durable != "" {
		opts = append(opts, client.WithDurable(cfg.Durable, cfg.DurablePosition))
	}
	return opts
}

// Device is a joined member: a client connection plus the lease
// heartbeats keeping its membership alive.
type Device struct {
	Client *client.Client
	Join   *discovery.JoinResult

	ch *reliable.Channel
	hb *discovery.Heartbeater
}

// JoinCell performs the full device-side flow on one transport
// endpoint: discover a cell via beacons, authenticate, join, start
// heartbeats, and return a ready client bound to the cell's bus.
func JoinCell(tr transport.Transport, cfg DeviceConfig) (*Device, error) {
	ch := reliable.New(tr, cfg.Reliable)
	res, err := discovery.Join(ch, discovery.JoinConfig{
		DeviceType: cfg.Type,
		DeviceName: cfg.Name,
		Secret:     cfg.Secret,
		Cell:       cfg.Cell,
		Discovery:  cfg.Discovery,
		Timeout:    cfg.JoinTimeout,
	})
	if err != nil {
		_ = ch.Close()
		return nil, err
	}
	hb := discovery.StartHeartbeats(ch, res.Discovery, res.Lease/3)
	return &Device{
		Client: client.New(ch, res.Bus, cfg.clientOpts()...),
		Join:   res,
		ch:     ch,
		hb:     hb,
	}, nil
}

// RetryConfig bounds JoinCellWithRetry's backoff.
type RetryConfig struct {
	// Attempts is the maximum number of join attempts (default 6).
	Attempts int
	// BaseDelay is the first backoff (default 150 ms); it doubles per
	// failed attempt up to MaxDelay (default 3 s). The actual sleep is
	// jittered uniformly over [delay/2, delay) so that a cell restart
	// does not resynchronise every waiting device into one thundering
	// join burst.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (rc *RetryConfig) fillDefaults() {
	if rc.Attempts <= 0 {
		rc.Attempts = 6
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 150 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = 3 * time.Second
	}
}

// JoinCellWithRetry is JoinCell with bounded exponential backoff and
// jitter around the admission exchange: the paper's devices join over
// lossy wireless links where a beacon or verdict is routinely lost, so
// a single attempt is the wrong default for anything unattended. The
// reliable channel (and its stream state) is created once and reused
// across attempts; ctx cancels both the backoff sleeps and further
// attempts. On final failure the channel — and with it the transport —
// is closed, exactly like a failed JoinCell.
func JoinCellWithRetry(ctx context.Context, tr transport.Transport, cfg DeviceConfig, rc RetryConfig) (*Device, error) {
	rc.fillDefaults()
	ch := reliable.New(tr, cfg.Reliable)
	var lastErr error
	delay := rc.BaseDelay
	for attempt := 0; attempt < rc.Attempts; attempt++ {
		if attempt > 0 {
			jittered := delay/2 + time.Duration(rand.Int63n(int64(delay/2)))
			timer := time.NewTimer(jittered)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				_ = ch.Close()
				return nil, ctx.Err()
			}
			if delay *= 2; delay > rc.MaxDelay {
				delay = rc.MaxDelay
			}
		}
		res, err := discovery.Join(ch, discovery.JoinConfig{
			DeviceType: cfg.Type,
			DeviceName: cfg.Name,
			Secret:     cfg.Secret,
			Cell:       cfg.Cell,
			Discovery:  cfg.Discovery,
			Timeout:    cfg.JoinTimeout,
		})
		if err == nil {
			hb := discovery.StartHeartbeats(ch, res.Discovery, res.Lease/3)
			return &Device{
				Client: client.New(ch, res.Bus, cfg.clientOpts()...),
				Join:   res,
				ch:     ch,
				hb:     hb,
			}, nil
		}
		lastErr = err
		if errors.Is(err, discovery.ErrRejected) || ctx.Err() != nil {
			// Rejection is a verdict, not noise; retrying with the same
			// credentials cannot succeed.
			break
		}
	}
	_ = ch.Close()
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return nil, fmt.Errorf("smc: join retries exhausted: %w", lastErr)
}

// Leave announces departure to the cell (immediate purge) and shuts
// the device down.
func (d *Device) Leave() error {
	d.hb.Stop()
	leaveErr := discovery.Leave(d.ch, d.Join.Discovery)
	closeErr := d.Client.Close()
	if leaveErr != nil {
		return leaveErr
	}
	return closeErr
}

// Close shuts the device down without announcing departure (the
// "battery died / walked away" path: the cell purges after lease and
// grace lapse).
func (d *Device) Close() error {
	d.hb.Stop()
	return d.Client.Close()
}

// Probe checks that the cell is still reachable and alive. The lease
// heartbeats are fire-and-forget unreliable sends that learn nothing
// when the cell dies; Probe instead sends one reliable heartbeat to
// the discovery service, so the reliable layer retransmits and reports
// the give-up on a dead, partitioned or restarted-elsewhere peer. On a
// live cell it doubles as a lease refresh. Blocks up to the channel's
// give-up horizon.
func (d *Device) Probe() error {
	return d.ch.Send(d.Join.Discovery, wire.PktHeartbeat, nil)
}

// RegisterStandardDevices installs proxy factories for the synthetic
// medical device types: sensors get the translating sensor proxy,
// actuators get the command-translating actuator proxy subscribed on
// the device's behalf.
func RegisterStandardDevices(reg *bootstrap.Registry) {
	sensorTypes := []string{
		sensor.DeviceTypeHeartRate,
		sensor.DeviceTypeSpO2,
		sensor.DeviceTypeTemperature,
		sensor.DeviceTypeBP,
		sensor.DeviceTypeGlucose,
	}
	for _, dt := range sensorTypes {
		deviceType := dt
		_ = reg.Register(deviceType, func(_ ident.ID, _ string) proxy.Device {
			return sensor.NewSensorProxyDevice(deviceType)
		})
	}
	actuatorTypes := []string{
		sensor.DeviceTypeDefib,
		sensor.DeviceTypePump,
		sensor.DeviceTypeBedside,
	}
	for _, dt := range actuatorTypes {
		deviceType := dt
		_ = reg.Register(deviceType, func(_ ident.ID, name string) proxy.Device {
			return sensor.NewActuatorProxyDevice(deviceType, name)
		})
	}
}
