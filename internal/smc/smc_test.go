package smc_test

import (
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/sensor"
	"github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/transport"
)

var testSecret = []byte("ward-secret")

// newTestCell builds a cell on a fresh simulated network.
func newTestCell(t *testing.T, net *netsim.Network, cfg smc.Config) *smc.Cell {
	t.Helper()
	busTr, err := net.Attach(ident.New(0x10001))
	if err != nil {
		t.Fatalf("attach bus: %v", err)
	}
	discTr, err := net.Attach(ident.New(0x10002))
	if err != nil {
		t.Fatalf("attach discovery: %v", err)
	}
	cell, err := smc.NewCell(busTr, discTr, cfg)
	if err != nil {
		t.Fatalf("new cell: %v", err)
	}
	cell.Start()
	t.Cleanup(func() {
		if err := cell.Close(); err != nil {
			t.Errorf("close cell: %v", err)
		}
	})
	return cell
}

func attach(t *testing.T, net *netsim.Network, id uint64) transport.Transport {
	t.Helper()
	tr, err := net.Attach(ident.New(id))
	if err != nil {
		t.Fatalf("attach %x: %v", id, err)
	}
	return tr
}

func defaultCellConfig() smc.Config {
	return smc.Config{
		Cell:           "test-cell",
		Secret:         testSecret,
		Lease:          500 * time.Millisecond,
		Grace:          500 * time.Millisecond,
		BeaconInterval: 50 * time.Millisecond,
	}
}

func TestEndToEndPublishSubscribe(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(7))
	defer net.Close()
	newTestCell(t, net, defaultCellConfig())

	pub, err := smc.JoinCell(attach(t, net, 0x20001), smc.DeviceConfig{
		Type: "generic", Name: "publisher", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join publisher: %v", err)
	}
	defer pub.Close()

	sub, err := smc.JoinCell(attach(t, net, 0x20002), smc.DeviceConfig{
		Type: "generic", Name: "subscriber", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join subscriber: %v", err)
	}
	defer sub.Close()

	filter := event.NewFilter().WhereType("alarm")
	if err := sub.Client.Subscribe(filter); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	e := event.NewTyped("alarm").SetStr("source", "hr").SetFloat("value", 190)
	if err := pub.Client.Publish(e); err != nil {
		t.Fatalf("publish: %v", err)
	}

	got, err := sub.Client.NextEvent(3 * time.Second)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	if got.Type() != "alarm" {
		t.Errorf("type = %q, want alarm", got.Type())
	}
	if v, ok := got.Get("value"); !ok {
		t.Error("missing value attribute")
	} else if f, _ := v.Float(); f != 190 {
		t.Errorf("value = %v, want 190", f)
	}
	if got.Sender != pub.Client.ID() {
		t.Errorf("sender = %s, want %s", got.Sender, pub.Client.ID())
	}

	// A non-matching publish must not be delivered.
	if err := pub.Client.Publish(event.NewTyped("reading")); err != nil {
		t.Fatalf("publish non-matching: %v", err)
	}
	if _, err := sub.Client.NextEvent(150 * time.Millisecond); err == nil {
		t.Error("received event that should not match")
	}
}

func TestJoinRejectedWithWrongSecret(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(8))
	defer net.Close()
	newTestCell(t, net, defaultCellConfig())

	_, err := smc.JoinCell(attach(t, net, 0x20003), smc.DeviceConfig{
		Type: "generic", Name: "intruder", Secret: []byte("wrong"),
		JoinTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("join with wrong secret succeeded")
	}
}

func TestSensorTranslationThroughProxy(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(9))
	defer net.Close()
	cell := newTestCell(t, net, defaultCellConfig())

	// A monitor subscribed to translated readings.
	monitor, err := smc.JoinCell(attach(t, net, 0x20010), smc.DeviceConfig{
		Type: "generic", Name: "monitor", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join monitor: %v", err)
	}
	defer monitor.Close()
	if err := monitor.Client.Subscribe(event.NewFilter().WhereType(sensor.TypeReading)); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	// A heart-rate sensor publishing native bytes.
	hr, err := smc.JoinCell(attach(t, net, 0x20011), smc.DeviceConfig{
		Type: sensor.DeviceTypeHeartRate, Name: "hr-1", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join sensor: %v", err)
	}
	defer hr.Close()

	reading := sensor.Reading{Kind: sensor.KindHeartRate, Seq: 42, Millis: 1718000000000, Value: 71.5}
	if err := hr.Client.PublishRaw(sensor.EncodeReading(reading)); err != nil {
		t.Fatalf("publish raw: %v", err)
	}

	got, err := monitor.Client.NextEvent(3 * time.Second)
	if err != nil {
		t.Fatalf("receive translated event: %v", err)
	}
	if got.Type() != sensor.TypeReading {
		t.Fatalf("type = %q, want %q", got.Type(), sensor.TypeReading)
	}
	if v, _ := got.Get(sensor.AttrValue); !v.Equal(event.Float(71.5)) {
		t.Errorf("value = %s, want 71.5", v)
	}
	if v, _ := got.Get(sensor.AttrKind); !v.Equal(event.Str("heart-rate")) {
		t.Errorf("kind = %s, want heart-rate", v)
	}
	if got.Sender != hr.Client.ID() {
		t.Errorf("sender = %s, want sensor %s", got.Sender, hr.Client.ID())
	}
	_ = cell
}

func TestPolicyAlarmToActuator(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(10))
	defer net.Close()
	cfg := defaultCellConfig()
	cfg.PolicyText = `
obligation hr-high for "hr-sensor" {
  on type = "reading" && kind = "heart-rate"
  when value > 180
  do publish(type = "actuate", target = "defib-1", action = "analyse"),
     log("tachycardia detected")
}
`
	newTestCell(t, net, cfg)

	defib, err := smc.JoinCell(attach(t, net, 0x20021), smc.DeviceConfig{
		Type: sensor.DeviceTypeDefib, Name: "defib-1", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join defib: %v", err)
	}
	defer defib.Close()
	act := sensor.NewActuatorSim("defib-1")
	act.Start(defib.Client.Data())
	defer act.Stop()

	hr, err := smc.JoinCell(attach(t, net, 0x20022), smc.DeviceConfig{
		Type: sensor.DeviceTypeHeartRate, Name: "hr-1", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join sensor: %v", err)
	}
	defer hr.Close()

	// Normal reading: no actuation.
	normal := sensor.Reading{Kind: sensor.KindHeartRate, Seq: 1, Millis: 1, Value: 70}
	if err := hr.Client.PublishRaw(sensor.EncodeReading(normal)); err != nil {
		t.Fatalf("publish normal: %v", err)
	}
	// Tachycardia: policy fires, actuator commanded.
	tachy := sensor.Reading{Kind: sensor.KindHeartRate, Seq: 2, Millis: 2, Value: 195}
	if err := hr.Client.PublishRaw(sensor.EncodeReading(tachy)); err != nil {
		t.Fatalf("publish tachy: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(act.Actions()) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	actions := act.Actions()
	if len(actions) != 1 {
		t.Fatalf("actuator actions = %d, want 1 (%v)", len(actions), actions)
	}
	if actions[0].Opcode != sensor.OpAnalyse {
		t.Errorf("opcode = %d, want analyse", actions[0].Opcode)
	}
}

func TestPurgeAfterSilence(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(11))
	defer net.Close()
	cfg := defaultCellConfig()
	cfg.Lease = 300 * time.Millisecond
	cfg.Grace = 300 * time.Millisecond
	cell := newTestCell(t, net, cfg)

	dev, err := smc.JoinCell(attach(t, net, 0x20031), smc.DeviceConfig{
		Type: "generic", Name: "wanderer", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	id := dev.Client.ID()

	// Watch for the purge event via a local service.
	purged := make(chan struct{}, 1)
	watcher := cell.Bus.Local("watcher")
	err = watcher.Subscribe(event.NewFilter().WhereType(event.TypePurgeMember), func(e *event.Event) {
		if v, ok := e.Get(event.AttrMember); ok {
			if i, _ := v.Int(); ident.New(uint64(i)) == id {
				select {
				case purged <- struct{}{}:
				default:
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}

	// Device silently disappears (no Leave): heartbeats stop.
	if err := dev.Close(); err != nil {
		t.Fatalf("close device: %v", err)
	}

	select {
	case <-purged:
	case <-time.After(5 * time.Second):
		t.Fatal("member was not purged after lease+grace silence")
	}
	if _, ok := cell.Discovery.Member(id); ok {
		t.Error("member still in discovery table after purge")
	}
}

func TestTransientDisconnectionMasked(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(12))
	defer net.Close()
	cfg := defaultCellConfig()
	cfg.Lease = 200 * time.Millisecond
	cfg.Grace = 2 * time.Second
	cell := newTestCell(t, net, cfg)

	dev, err := smc.JoinCell(attach(t, net, 0x20041), smc.DeviceConfig{
		Type: "generic", Name: "nurse-pda", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	defer dev.Close()
	id := dev.Client.ID()

	// Nurse leaves the room: isolate the endpoint briefly (shorter
	// than lease+grace), then return.
	net.Isolate(id)
	time.Sleep(600 * time.Millisecond) // > lease, < lease+grace
	if info, ok := cell.Discovery.Member(id); !ok {
		t.Fatal("member purged during grace period")
	} else if info.State == 0 {
		t.Fatal("missing member state")
	}
	net.Restore(id)
	time.Sleep(500 * time.Millisecond) // heartbeats resume

	info, ok := cell.Discovery.Member(id)
	if !ok {
		t.Fatal("member purged despite returning within grace")
	}
	if info.State.String() != "active" {
		t.Errorf("state = %s, want active after return", info.State)
	}
	st := cell.Discovery.Stats()
	if st.GraceReturns == 0 {
		t.Error("no grace return recorded")
	}
}

func TestVoluntaryLeavePurgesImmediately(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(13))
	defer net.Close()
	cell := newTestCell(t, net, defaultCellConfig())

	dev, err := smc.JoinCell(attach(t, net, 0x20051), smc.DeviceConfig{
		Type: "generic", Name: "leaver", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	id := dev.Client.ID()
	if err := dev.Leave(); err != nil && !errors.Is(err, nil) {
		t.Fatalf("leave: %v", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := cell.Discovery.Member(id); !ok {
			return // purged
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("member not purged after voluntary leave")
}

func TestAuthorizationDeniesPublish(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(14))
	defer net.Close()
	cfg := defaultCellConfig()
	cfg.PolicyText = `
authorization no-actuate-from-sensors {
  effect deny
  subject "hr-sensor"
  action publish
  target type = "actuate"
}
`
	cell := newTestCell(t, net, cfg)

	sub, err := smc.JoinCell(attach(t, net, 0x20061), smc.DeviceConfig{
		Type: "generic", Name: "sub", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join sub: %v", err)
	}
	defer sub.Close()
	if err := sub.Client.Subscribe(event.NewFilter().WhereType("actuate")); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	hr, err := smc.JoinCell(attach(t, net, 0x20062), smc.DeviceConfig{
		Type: sensor.DeviceTypeHeartRate, Name: "hr-1", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join hr: %v", err)
	}
	defer hr.Close()

	// The sensor tries to command an actuator directly: denied.
	if err := hr.Client.Publish(event.NewTyped("actuate").SetStr("target", "defib-1")); err != nil {
		t.Fatalf("publish returned transport error: %v", err)
	}
	if _, err := sub.Client.NextEvent(300 * time.Millisecond); err == nil {
		t.Fatal("denied publish was delivered")
	}
	if cell.Bus.Stats().AuthDenied == 0 {
		t.Error("no auth denial recorded")
	}

	// But its readings still flow.
	if err := hr.Client.Publish(event.NewTyped("reading").SetFloat("value", 70)); err != nil {
		t.Fatalf("publish reading: %v", err)
	}
}
