package smc_test

import (
	"math/rand"
	"testing"
	"time"

	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/store"
)

// durableCellConfig is a cell with a memory-backed durable log.
func durableCellConfig() smc.Config {
	cfg := defaultCellConfig()
	cfg.Durable = &store.Config{}
	return cfg
}

// readingFilter matches the test publisher's events.
func readingFilter() *event.Filter {
	return event.NewFilter().WhereType("reading")
}

// publishReadings publishes events n = [from, to) as type "reading",
// pipelined in windows small enough to never overrun the reliable
// channel's send backlog, and waits for the bus to acknowledge each
// window.
func publishReadings(t *testing.T, dev *smc.Device, from, to int) {
	t.Helper()
	const window = 256
	comps := make([]interface{ Wait() error }, 0, window)
	flush := func(base int) {
		for i, comp := range comps {
			if err := comp.Wait(); err != nil {
				t.Fatalf("publish %d not acked: %v", base+i, err)
			}
		}
		comps = comps[:0]
	}
	for i := from; i < to; i++ {
		e := event.New()
		e.Set(event.AttrType, event.Str("reading"))
		e.SetInt("n", int64(i))
		comp, err := dev.Client.PublishAsync(e)
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		comps = append(comps, comp)
		if len(comps) == window {
			flush(i + 1 - window)
		}
	}
	flush(to - len(comps))
}

// collectReadings consumes exactly n readings, asserting each carries
// a durable cursor, and returns the "n" attribute values in delivery
// order plus the cursor of the last event consumed — the position an
// at-least-once application persists.
func collectReadings(t *testing.T, c *client.Client, n int, timeout time.Duration) ([]int64, uint64) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	out := make([]int64, 0, n)
	var last uint64
	for len(out) < n {
		e, err := c.NextEvent(time.Until(deadline))
		if err != nil {
			t.Fatalf("after %d/%d readings: %v", len(out), n, err)
		}
		if e.Cursor == 0 {
			t.Fatalf("durable delivery without cursor: %v", e)
		}
		v, ok := e.Get("n")
		if !ok {
			t.Fatalf("reading without n: %v", e)
		}
		i, _ := v.Int()
		out = append(out, i)
		last = e.Cursor
		e.Release()
	}
	return out, last
}

// assertSequence checks out == [from, from+len(out)).
func assertSequence(t *testing.T, out []int64, from int) {
	t.Helper()
	for i, v := range out {
		if v != int64(from+i) {
			t.Fatalf("delivery %d: n=%d, want %d (dup, loss or reorder)", i, v, from+i)
		}
	}
}

// TestDurableRejoinReplaysMissedEvents is the acceptance scenario: a
// durable member disconnects, misses well over 1000 published events,
// rejoins with its saved position — at a different network identity —
// and receives every missed event exactly once, in order, spliced
// into live traffic.
func TestDurableRejoinReplaysMissedEvents(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(11))
	defer net.Close()
	newTestCell(t, net, durableCellConfig())

	pub, err := smc.JoinCell(attach(t, net, 0x20001), smc.DeviceConfig{
		Type: "generic", Name: "publisher", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join publisher: %v", err)
	}
	defer pub.Close()

	sub, err := smc.JoinCell(attach(t, net, 0x20002), smc.DeviceConfig{
		Type: "generic", Name: "roamer", Secret: testSecret,
		Durable: "ward-roamer",
	})
	if err != nil {
		t.Fatalf("join subscriber: %v", err)
	}
	if err := sub.Client.Subscribe(readingFilter()); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	// Phase 1: live delivery through the walker.
	publishReadings(t, pub, 0, 50)
	got, _ := collectReadings(t, sub.Client, 50, 10*time.Second)
	assertSequence(t, got, 0)

	// Disconnect, remembering the resume position.
	pos := sub.Client.DurablePosition()
	if pos.Epoch == 0 || pos.Cursor == 0 {
		t.Fatalf("no durable position after deliveries: %+v", pos)
	}
	if err := sub.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}

	// Phase 2: miss >1000 events while away.
	publishReadings(t, pub, 50, 1150)

	// Phase 3: rejoin — roaming to a new network identity — and
	// receive the whole gap exactly once, in order.
	sub2, err := smc.JoinCell(attach(t, net, 0x20003), smc.DeviceConfig{
		Type: "generic", Name: "roamer", Secret: testSecret,
		Durable: "ward-roamer", DurablePosition: pos,
	})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	defer sub2.Leave()
	got, _ = collectReadings(t, sub2.Client, 1100, 60*time.Second)
	assertSequence(t, got, 50)

	// Phase 4: splice into live — new publishes arrive on the same
	// stream, still in order, no gap and no repeat at the boundary.
	publishReadings(t, pub, 1150, 1200)
	got, _ = collectReadings(t, sub2.Client, 50, 10*time.Second)
	assertSequence(t, got, 1150)

	if st := sub2.Client.Stats(); st.DurableReceived < 1150 {
		t.Fatalf("DurableReceived=%d, want >= 1150", st.DurableReceived)
	}
}

// TestDurableSpliceBoundaryPin pins the splice-boundary contract: a
// consumer that rejoins with position X gets X+1 first — the boundary
// event X is never double-delivered, even though the filters were
// already installed server-side before the rejoin.
func TestDurableSpliceBoundaryPin(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(13))
	defer net.Close()
	newTestCell(t, net, durableCellConfig())

	pub, err := smc.JoinCell(attach(t, net, 0x21001), smc.DeviceConfig{
		Type: "generic", Name: "publisher", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join publisher: %v", err)
	}
	defer pub.Close()

	sub, err := smc.JoinCell(attach(t, net, 0x21002), smc.DeviceConfig{
		Type: "generic", Name: "boundary", Secret: testSecret,
		Durable: "boundary",
	})
	if err != nil {
		t.Fatalf("join subscriber: %v", err)
	}
	if err := sub.Client.Subscribe(readingFilter()); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	publishReadings(t, pub, 0, 10)
	got, _ := collectReadings(t, sub.Client, 10, 10*time.Second)
	assertSequence(t, got, 0)
	pos := sub.Client.DurablePosition()
	if err := sub.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}

	// Nothing published while away: the first delivery after rejoin
	// must be the next live event, not a replay of the boundary.
	sub2, err := smc.JoinCell(attach(t, net, 0x21003), smc.DeviceConfig{
		Type: "generic", Name: "boundary", Secret: testSecret,
		Durable: "boundary", DurablePosition: pos,
	})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	defer sub2.Leave()
	publishReadings(t, pub, 10, 12)
	got, _ = collectReadings(t, sub2.Client, 2, 10*time.Second)
	assertSequence(t, got, 10)
	if st := sub2.Client.Stats(); st.DurableDeduped != 0 {
		// The bus resumed exactly past the boundary — the client-side
		// floor should not have had to drop anything.
		t.Fatalf("client floor dropped %d redeliveries on a clean resume", st.DurableDeduped)
	}
}

// TestDurableEpochMismatchReplaysFromOldest pins the stale-cursor
// contract: a position from another log incarnation (wrong epoch, high
// cursor) must not black-hole the consumer — the bus acks with the
// live epoch and replays from the oldest retained event, and the
// client resets its floor accordingly.
func TestDurableEpochMismatchReplaysFromOldest(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(17))
	defer net.Close()
	newTestCell(t, net, durableCellConfig())

	pub, err := smc.JoinCell(attach(t, net, 0x22001), smc.DeviceConfig{
		Type: "generic", Name: "publisher", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join publisher: %v", err)
	}
	defer pub.Close()
	publishReadings(t, pub, 0, 100)

	stale := client.DurablePosition{Epoch: 0xDEAD, Cursor: 1 << 40}
	sub, err := smc.JoinCell(attach(t, net, 0x22002), smc.DeviceConfig{
		Type: "generic", Name: "restorer", Secret: testSecret,
		Durable: "restorer", DurablePosition: stale,
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	defer sub.Leave()
	if err := sub.Client.Subscribe(readingFilter()); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	got, _ := collectReadings(t, sub.Client, 100, 30*time.Second)
	assertSequence(t, got, 0)
	if pos := sub.Client.DurablePosition(); pos.Epoch == stale.Epoch {
		t.Fatal("client kept the stale epoch after the bus ack")
	}
}

// TestDurablePublisherDedup pins publish idempotence across sender
// restarts: a publisher that re-sends events with the same dedup IDs
// after a restart produces no redeliveries — the log drops the
// duplicate appends, so durable consumers see each logical event once.
func TestDurablePublisherDedup(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(19))
	defer net.Close()
	newTestCell(t, net, durableCellConfig())

	publish := func(dev *smc.Device, from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			e := event.New()
			e.Set(event.AttrType, event.Str("reading"))
			e.SetInt("n", int64(i))
			e.SetInt(store.AttrDedup, int64(i))
			if err := dev.Client.Publish(e); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
		}
	}

	sub, err := smc.JoinCell(attach(t, net, 0x23001), smc.DeviceConfig{
		Type: "generic", Name: "watcher", Secret: testSecret,
		Durable: "watcher",
	})
	if err != nil {
		t.Fatalf("join subscriber: %v", err)
	}
	defer sub.Leave()
	if err := sub.Client.Subscribe(readingFilter()); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	pub, err := smc.JoinCell(attach(t, net, 0x23002), smc.DeviceConfig{
		Type: "generic", Name: "sender", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join publisher: %v", err)
	}
	publish(pub, 0, 30)
	if err := pub.Leave(); err != nil {
		t.Fatalf("publisher leave: %v", err)
	}

	// The publisher restarts (fresh identity, fresh sequence numbers)
	// and conservatively re-sends the tail it is not sure was
	// accepted, then continues.
	pub2, err := smc.JoinCell(attach(t, net, 0x23002), smc.DeviceConfig{
		Type: "generic", Name: "sender", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("publisher rejoin: %v", err)
	}
	defer pub2.Leave()
	publish(pub2, 20, 50) // 20..29 are redundant re-sends

	got, _ := collectReadings(t, sub.Client, 50, 30*time.Second)
	assertSequence(t, got, 0)
	// Quiesce: no 51st delivery hiding behind the 50.
	if e, err := sub.Client.NextEvent(300 * time.Millisecond); err == nil {
		t.Fatalf("unexpected extra delivery: %v", e)
	}
}

// TestDurableReplayVsLiveOracle is the randomized oracle: a publisher
// streams readings while a durable consumer connects, disconnects (by
// leave or by silent close) and rejoins at random points, sometimes
// resuming from a deliberately stale position. Whatever the schedule,
// the consumer's merged history must be every reading exactly once, in
// order.
func TestDurableReplayVsLiveOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized oracle is not short")
	}
	rng := rand.New(rand.NewSource(23))
	net := netsim.New(netsim.Perfect, netsim.WithSeed(23))
	defer net.Close()
	newTestCell(t, net, durableCellConfig())

	pub, err := smc.JoinCell(attach(t, net, 0x24001), smc.DeviceConfig{
		Type: "generic", Name: "publisher", Secret: testSecret,
	})
	if err != nil {
		t.Fatalf("join publisher: %v", err)
	}
	defer pub.Close()

	const total = 600
	published := 0
	next := 0 // next reading value the oracle expects
	var history []int64

	var dev *smc.Device
	var pos client.DurablePosition
	id := uint64(0x24100)
	join := func() {
		t.Helper()
		id++
		d, err := smc.JoinCell(attach(t, net, id), smc.DeviceConfig{
			Type: "generic", Name: "oracle", Secret: testSecret,
			Durable: "oracle", DurablePosition: pos,
		})
		if err != nil {
			t.Fatalf("oracle join: %v", err)
		}
		if err := d.Client.Subscribe(readingFilter()); err != nil {
			t.Fatalf("oracle subscribe: %v", err)
		}
		dev = d
	}
	join()

	for published < total {
		burst := 20 + rng.Intn(60)
		if published+burst > total {
			burst = total - published
		}
		publishReadings(t, pub, published, published+burst)
		published += burst

		// Consume a random amount of what is now owed, then maybe
		// bounce the connection.
		owe := published - next
		take := rng.Intn(owe + 1)
		if take > 0 {
			got, last := collectReadings(t, dev.Client, take, 30*time.Second)
			history = append(history, got...)
			next += take
			// An at-least-once application persists the cursor of the
			// last event it processed — not the client's floor, which
			// may be ahead of it by whatever is still buffered in the
			// inbox and would be skipped on resume.
			pos.Cursor = last
		}
		pos.Epoch = dev.Client.DurablePosition().Epoch
		if rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				if err := dev.Leave(); err != nil {
					t.Fatalf("oracle leave: %v", err)
				}
			} else {
				// Silent close: the old membership lingers until the
				// lease lapses; the rejoin takes the binding over.
				if err := dev.Close(); err != nil {
					t.Fatalf("oracle close: %v", err)
				}
			}
			join()
		}
	}
	// Quiesce: everything published must arrive exactly once.
	if owe := published - next; owe > 0 {
		got, _ := collectReadings(t, dev.Client, owe, 60*time.Second)
		history = append(history, got...)
	}
	assertSequence(t, history, 0)
	if len(history) != total {
		t.Fatalf("history %d readings, want %d", len(history), total)
	}
	if e, err := dev.Client.NextEvent(300 * time.Millisecond); err == nil {
		t.Fatalf("delivery past quiesce: %v", e)
	}
	_ = dev.Leave()
}
