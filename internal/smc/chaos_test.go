package smc_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/smc"
)

// TestDeliveryContractOverLossyLink runs the complete stack — cell,
// discovery, proxies, reliable hops — over a link that loses and
// duplicates packets, and asserts the §II-C contract end-to-end:
// every published event delivered exactly once, per-sender FIFO.
func TestDeliveryContractOverLossyLink(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	link := netsim.Profile{Name: "chaos", Loss: 0.15, Duplicate: 0.15}
	net := netsim.New(link, netsim.WithSeed(99))
	defer net.Close()

	cfg := defaultCellConfig()
	cfg.Lease = 2 * time.Second
	cfg.Grace = 10 * time.Second // no purges during the run
	cfg.Reliable = reliable.Config{
		RetryTimeout:    30 * time.Millisecond,
		MaxRetryTimeout: 200 * time.Millisecond,
		MaxRetries:      25,
	}
	cell := newTestCell(t, net, cfg)
	_ = cell

	join := func(id uint64, name string) *smc.Device {
		// Joins themselves ride the lossy link; JoinCellWithRetry's
		// bounded backoff handles the losses.
		dev, err := smc.JoinCellWithRetry(context.Background(), attach(t, net, id),
			smc.DeviceConfig{
				Type: "generic", Name: name, Secret: testSecret,
				JoinTimeout: 5 * time.Second,
				Reliable:    cfg.Reliable,
			},
			smc.RetryConfig{Attempts: 5, BaseDelay: 50 * time.Millisecond})
		if err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
		return dev
	}

	sub := join(0xC001, "chaos-sub")
	defer sub.Close()
	if err := sub.Client.Subscribe(event.NewFilter().WhereType("chaos")); err != nil {
		t.Fatal(err)
	}

	const publishers, perPublisher = 3, 25
	var pubs []*smc.Device
	for p := 0; p < publishers; p++ {
		dev := join(uint64(0xC100+p), fmt.Sprintf("chaos-pub-%d", p))
		defer dev.Close()
		pubs = append(pubs, dev)
	}

	var wg sync.WaitGroup
	for p, dev := range pubs {
		wg.Add(1)
		go func(p int, dev *smc.Device) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				e := event.NewTyped("chaos").SetInt("pub", int64(p)).SetInt("n", int64(i))
				if err := dev.Client.Publish(e); err != nil {
					t.Errorf("pub %d event %d: %v", p, i, err)
					return
				}
			}
		}(p, dev)
	}

	// Collect everything; verify exactly-once and per-sender order.
	got := make(map[int][]int64)
	total := 0
	deadline := time.Now().Add(90 * time.Second)
	for total < publishers*perPublisher && time.Now().Before(deadline) {
		e, err := sub.Client.NextEvent(time.Until(deadline))
		if err != nil {
			break
		}
		pv, _ := e.Get("pub")
		nv, _ := e.Get("n")
		p64, _ := pv.Int()
		n, _ := nv.Int()
		got[int(p64)] = append(got[int(p64)], n)
		total++
	}
	wg.Wait()

	if total != publishers*perPublisher {
		t.Fatalf("delivered %d of %d", total, publishers*perPublisher)
	}
	for p := 0; p < publishers; p++ {
		seq := got[p]
		if len(seq) != perPublisher {
			t.Fatalf("publisher %d: %d events", p, len(seq))
		}
		for i, n := range seq {
			if n != int64(i) {
				t.Fatalf("publisher %d: position %d has n=%d (FIFO/dup violation): %v", p, i, n, seq)
			}
		}
	}
	// The link must actually have been hostile.
	st := net.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Errorf("link not hostile enough: %+v", st)
	}
}

// TestMembershipChurn joins and leaves many devices while traffic
// flows; the cell must end consistent: all leavers purged, stayers
// still members, no cross-talk.
func TestMembershipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test skipped in -short")
	}
	net := netsim.New(netsim.Perfect, netsim.WithSeed(123))
	defer net.Close()
	cfg := defaultCellConfig()
	cfg.Lease = 300 * time.Millisecond
	cfg.Grace = 300 * time.Millisecond
	cell := newTestCell(t, net, cfg)

	stayer, err := smc.JoinCell(attach(t, net, 0xD001), smc.DeviceConfig{
		Type: "generic", Name: "stayer", Secret: testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stayer.Close()
	if err := stayer.Client.Subscribe(event.NewFilter().WhereType("note")); err != nil {
		t.Fatal(err)
	}

	const churners = 12
	received := 0
	for c := 0; c < churners; c++ {
		dev, err := smc.JoinCell(attach(t, net, uint64(0xD100+c)), smc.DeviceConfig{
			Type: "generic", Name: fmt.Sprintf("churner-%d", c), Secret: testSecret,
		})
		if err != nil {
			t.Fatalf("churner %d join: %v", c, err)
		}
		if err := dev.Client.Publish(event.NewTyped("note").SetInt("c", int64(c))); err != nil {
			t.Fatalf("churner %d publish: %v", c, err)
		}
		if _, err := stayer.Client.NextEvent(5 * time.Second); err != nil {
			t.Fatalf("note %d not delivered: %v", c, err)
		}
		received++
		if c%2 == 0 {
			if err := dev.Leave(); err != nil {
				t.Fatalf("churner %d leave: %v", c, err)
			}
		} else {
			_ = dev.Close() // silent death → purge via lease+grace
		}
	}
	if received != churners {
		t.Fatalf("received %d of %d", received, churners)
	}

	// Eventually only the stayer remains.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(cell.Discovery.Members()) == 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	members := cell.Discovery.Members()
	if len(members) != 1 || members[0].Name != "stayer" {
		t.Fatalf("final members = %+v", members)
	}
	// The bus agrees with discovery.
	if got := len(cell.Bus.Members()); got != 1 {
		t.Errorf("bus members = %d", got)
	}
	st := cell.Discovery.Stats()
	if st.Admitted != churners+1 || st.Purged != churners {
		t.Errorf("discovery stats = %+v", st)
	}
}
