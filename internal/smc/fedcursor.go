package smc

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// The federation resume-cursor file: a fixed 25-byte record under the
// home cell's durable directory remembering where a link's durable
// consumer left off in the remote cell's log.
//
//	magic "SMFC" | version byte | remote epoch u64 | cursor u64 | crc32c
//
// Epoch discipline mirrors PR 9's consumer cursors: the cursor is only
// meaningful within the recorded remote epoch. The bus enforces the
// check at resume time — a mismatch (remote crash recovery rotated the
// epoch) replays from the oldest retained record, never silently
// swallows the gap — so a corrupt or missing file simply degrades to
// the zero position (full replay), which the home log's dedup window
// absorbs.

const (
	fedCursorMagic   = "SMFC"
	fedCursorVersion = 1
	fedCursorLen     = 4 + 1 + 8 + 8 + 4
)

var fedCursorCRC = crc32.MakeTable(crc32.Castagnoli)

// fedCursorPath names the cursor file for one durable consumer,
// sanitised so any consumer name yields a flat file name.
func fedCursorPath(dir, consumer string) string {
	sane := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, consumer)
	return filepath.Join(dir, sane+".fedcursor")
}

// writeFedCursor persists a resume position atomically (tmp+rename).
func writeFedCursor(path string, epoch, cursor uint64) error {
	var buf [fedCursorLen]byte
	copy(buf[:4], fedCursorMagic)
	buf[4] = fedCursorVersion
	binary.BigEndian.PutUint64(buf[5:13], epoch)
	binary.BigEndian.PutUint64(buf[13:21], cursor)
	binary.BigEndian.PutUint32(buf[21:25], crc32.Checksum(buf[:21], fedCursorCRC))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf[:], 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readFedCursor loads a resume position. Any error — missing file, bad
// magic, torn write, CRC mismatch — returns ok=false: the link resumes
// from the zero position and replays from the oldest retained record.
func readFedCursor(path string) (epoch, cursor uint64, ok bool) {
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) != fedCursorLen {
		return 0, 0, false
	}
	if string(raw[:4]) != fedCursorMagic || raw[4] != fedCursorVersion {
		return 0, 0, false
	}
	if crc32.Checksum(raw[:21], fedCursorCRC) != binary.BigEndian.Uint32(raw[21:25]) {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(raw[5:13]), binary.BigEndian.Uint64(raw[13:21]), true
}
