package smc_test

import (
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/smc"
)

// newNamedCell builds a cell with a distinct name on the shared net.
func newNamedCell(t *testing.T, net *netsim.Network, name string, base uint64) *smc.Cell {
	t.Helper()
	busTr, err := net.Attach(ident.New(base))
	if err != nil {
		t.Fatal(err)
	}
	discTr, err := net.Attach(ident.New(base + 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultCellConfig()
	cfg.Cell = name
	cell, err := smc.NewCell(busTr, discTr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell.Start()
	t.Cleanup(func() { cell.Close() })
	return cell
}

func TestFederationImportsMatchingEvents(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(81))
	defer net.Close()

	// Patient cell and ward cell. Note: both share one simulated
	// radio space, so the federation pins the remote cell by name.
	patient := newNamedCell(t, net, "patient-7", 0x30000)
	ward := newNamedCell(t, net, "ward-3", 0x40000)

	// The ward cell watches the patient cell's alarms.
	link, err := smc.Federate(ward, attach(t, net, 0x50001), smc.FederateConfig{
		Name:         "ward3-gw",
		RemoteSecret: testSecret,
		RemoteCell:   "patient-7",
		Import:       event.NewFilter().WhereType("alarm"),
	})
	if err != nil {
		t.Fatalf("federate: %v", err)
	}
	defer link.Close()
	if link.RemoteCell() != "patient-7" {
		t.Errorf("remote cell = %q", link.RemoteCell())
	}

	// A ward-side observer of the imported alarms.
	seen := make(chan *event.Event, 4)
	obs := ward.Bus.Local("observer")
	if err := obs.Subscribe(event.NewFilter().WhereType("alarm"), func(e *event.Event) {
		select {
		case seen <- e:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}

	// A device in the patient cell raises an alarm.
	dev, err := smc.JoinCell(attach(t, net, 0x50002), smc.DeviceConfig{
		Type: "generic", Name: "hr-monitor", Secret: testSecret, Cell: "patient-7",
	})
	if err != nil {
		t.Fatalf("join patient cell: %v", err)
	}
	defer dev.Close()
	if err := dev.Client.Publish(event.NewTyped("alarm").SetFloat("value", 201)); err != nil {
		t.Fatal(err)
	}
	// A non-matching event must not cross.
	if err := dev.Client.Publish(event.NewTyped("reading").SetFloat("value", 70)); err != nil {
		t.Fatal(err)
	}

	select {
	case e := <-seen:
		if v, ok := e.Get(smc.AttrFederatedFrom); !ok {
			t.Error("imported event not tagged with origin cell")
		} else if s, _ := v.Str(); s != "patient-7" {
			t.Errorf("federated-from = %q", s)
		}
		if v, _ := e.Get("value"); !v.Equal(event.Float(201)) {
			t.Errorf("value = %s", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alarm did not cross the federation link")
	}
	// Nothing else crosses.
	select {
	case e := <-seen:
		t.Fatalf("unexpected import: %s", e)
	case <-time.After(300 * time.Millisecond):
	}
	if link.Imported() != 1 {
		t.Errorf("Imported = %d", link.Imported())
	}
	_ = patient
}

func TestFederationLoopPrevention(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(82))
	defer net.Close()
	a := newNamedCell(t, net, "cell-a", 0x60000)
	b := newNamedCell(t, net, "cell-b", 0x70000)

	// Bidirectional links on the same event type.
	ab, err := smc.Federate(b, attach(t, net, 0x80001), smc.FederateConfig{
		RemoteSecret: testSecret, RemoteCell: "cell-a",
		Import: event.NewFilter().WhereType("alarm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ab.Close()
	ba, err := smc.Federate(a, attach(t, net, 0x80002), smc.FederateConfig{
		RemoteSecret: testSecret, RemoteCell: "cell-b",
		Import: event.NewFilter().WhereType("alarm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()

	// Raise one alarm in cell A.
	svc := a.Bus.Local("raiser")
	if err := svc.Publish(event.NewTyped("alarm").SetInt("n", 1)); err != nil {
		t.Fatal(err)
	}

	// It crosses into B exactly once and must not echo back into A.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ab.Imported() >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ab.Imported() != 1 {
		t.Fatalf("a→b imported = %d", ab.Imported())
	}
	// The reverse link sees the imported copy and must skip it: wait
	// for the skip, then assert nothing was echoed back.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && ba.Skipped() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if ba.Skipped() == 0 {
		t.Error("loop prevention never triggered")
	}
	time.Sleep(200 * time.Millisecond) // any echo would land by now
	if ba.Imported() != 0 {
		t.Errorf("b→a imported = %d (federation loop)", ba.Imported())
	}
}

func TestFederationRequiresFilter(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(83))
	defer net.Close()
	cell := newNamedCell(t, net, "solo", 0x90000)
	if _, err := smc.Federate(cell, attach(t, net, 0x90009), smc.FederateConfig{
		RemoteSecret: testSecret,
	}); err == nil {
		t.Fatal("nil import filter accepted")
	}
}
