package smc_test

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/store"
	"github.com/amuse/smc/internal/transport"
)

// newNamedCell builds a cell with a distinct name on the shared net.
func newNamedCell(t *testing.T, net *netsim.Network, name string, base uint64) *smc.Cell {
	t.Helper()
	busTr, err := net.Attach(ident.New(base))
	if err != nil {
		t.Fatal(err)
	}
	discTr, err := net.Attach(ident.New(base + 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultCellConfig()
	cfg.Cell = name
	cell, err := smc.NewCell(busTr, discTr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell.Start()
	t.Cleanup(func() { cell.Close() })
	return cell
}

func TestFederationImportsMatchingEvents(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(81))
	defer net.Close()

	// Patient cell and ward cell. Note: both share one simulated
	// radio space, so the federation pins the remote cell by name.
	patient := newNamedCell(t, net, "patient-7", 0x30000)
	ward := newNamedCell(t, net, "ward-3", 0x40000)

	// The ward cell watches the patient cell's alarms.
	link, err := smc.Federate(ward, attach(t, net, 0x50001), smc.FederateConfig{
		Name:         "ward3-gw",
		RemoteSecret: testSecret,
		RemoteCell:   "patient-7",
		Import:       event.NewFilter().WhereType("alarm"),
	})
	if err != nil {
		t.Fatalf("federate: %v", err)
	}
	defer link.Close()
	if link.RemoteCell() != "patient-7" {
		t.Errorf("remote cell = %q", link.RemoteCell())
	}

	// A ward-side observer of the imported alarms.
	seen := make(chan *event.Event, 4)
	obs := ward.Bus.Local("observer")
	if err := obs.Subscribe(event.NewFilter().WhereType("alarm"), func(e *event.Event) {
		select {
		case seen <- e:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}

	// A device in the patient cell raises an alarm.
	dev, err := smc.JoinCell(attach(t, net, 0x50002), smc.DeviceConfig{
		Type: "generic", Name: "hr-monitor", Secret: testSecret, Cell: "patient-7",
	})
	if err != nil {
		t.Fatalf("join patient cell: %v", err)
	}
	defer dev.Close()
	if err := dev.Client.Publish(event.NewTyped("alarm").SetFloat("value", 201)); err != nil {
		t.Fatal(err)
	}
	// A non-matching event must not cross.
	if err := dev.Client.Publish(event.NewTyped("reading").SetFloat("value", 70)); err != nil {
		t.Fatal(err)
	}

	select {
	case e := <-seen:
		if v, ok := e.Get(smc.AttrFederatedFrom); !ok {
			t.Error("imported event not tagged with origin cell")
		} else if s, _ := v.Str(); s != "patient-7" {
			t.Errorf("federated-from = %q", s)
		}
		if v, _ := e.Get("value"); !v.Equal(event.Float(201)) {
			t.Errorf("value = %s", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("alarm did not cross the federation link")
	}
	// Nothing else crosses.
	select {
	case e := <-seen:
		t.Fatalf("unexpected import: %s", e)
	case <-time.After(300 * time.Millisecond):
	}
	if link.Imported() != 1 {
		t.Errorf("Imported = %d", link.Imported())
	}
	_ = patient
}

func TestFederationLoopPrevention(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(82))
	defer net.Close()
	a := newNamedCell(t, net, "cell-a", 0x60000)
	b := newNamedCell(t, net, "cell-b", 0x70000)

	// Bidirectional links on the same event type.
	ab, err := smc.Federate(b, attach(t, net, 0x80001), smc.FederateConfig{
		RemoteSecret: testSecret, RemoteCell: "cell-a",
		Import: event.NewFilter().WhereType("alarm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ab.Close()
	ba, err := smc.Federate(a, attach(t, net, 0x80002), smc.FederateConfig{
		RemoteSecret: testSecret, RemoteCell: "cell-b",
		Import: event.NewFilter().WhereType("alarm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()

	// Raise one alarm in cell A.
	svc := a.Bus.Local("raiser")
	if err := svc.Publish(event.NewTyped("alarm").SetInt("n", 1)); err != nil {
		t.Fatal(err)
	}

	// It crosses into B exactly once and must not echo back into A.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ab.Imported() >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ab.Imported() != 1 {
		t.Fatalf("a→b imported = %d", ab.Imported())
	}
	// The reverse link sees the imported copy and must skip it: wait
	// for the skip, then assert nothing was echoed back.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && ba.Skipped() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if ba.Skipped() == 0 {
		t.Error("loop prevention never triggered")
	}
	time.Sleep(200 * time.Millisecond) // any echo would land by now
	if ba.Imported() != 0 {
		t.Errorf("b→a imported = %d (federation loop)", ba.Imported())
	}
}

func TestFederationRequiresFilter(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(83))
	defer net.Close()
	cell := newNamedCell(t, net, "solo", 0x90000)
	if _, err := smc.Federate(cell, attach(t, net, 0x90009), smc.FederateConfig{
		RemoteSecret: testSecret,
	}); err == nil {
		t.Fatal("nil import filter accepted")
	}
}

// newDurableNamedCell is newNamedCell with a durable log attached.
func newDurableNamedCell(t *testing.T, net *netsim.Network, name string, base uint64, cfg *store.Config) *smc.Cell {
	t.Helper()
	busTr, err := net.Attach(ident.New(base))
	if err != nil {
		t.Fatal(err)
	}
	discTr, err := net.Attach(ident.New(base + 1))
	if err != nil {
		t.Fatal(err)
	}
	ccfg := defaultCellConfig()
	ccfg.Cell = name
	ccfg.Durable = cfg
	cell, err := smc.NewCell(busTr, discTr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cell.Start()
	t.Cleanup(func() { cell.Close() })
	return cell
}

// dialer hands the link fresh simulated endpoints for reconnects.
func dialer(net *netsim.Network, base uint64) (func() (transport.Transport, error), *atomic.Uint64) {
	var n atomic.Uint64
	return func() (transport.Transport, error) {
		return net.Attach(ident.New(base + n.Add(1)))
	}, &n
}

// TestFederationReconnectResumesAfterRemoteRestart pins the fix for
// the pump permanent-death bug: a remote cell restart must not kill
// the link — it reconnects with backoff, resumes its durable consumer
// from the last imported cursor, and keeps importing, with no
// duplicate delivery in the home cell.
func TestFederationReconnectResumesAfterRemoteRestart(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(84))
	defer net.Close()
	srcDir, dstDir := t.TempDir(), t.TempDir()

	src := newDurableNamedCell(t, net, "src", 0xA0000, &store.Config{Dir: srcDir})
	dst := newDurableNamedCell(t, net, "dst", 0xB0000, &store.Config{Dir: dstDir})

	dial, _ := dialer(net, 0xC0000)
	link, err := smc.Federate(dst, attach(t, net, 0xC9999), smc.FederateConfig{
		Name:         "dst-gw",
		RemoteSecret: testSecret,
		RemoteCell:   "src",
		Import:       event.NewFilter().WhereType("alarm"),
		Dial:         dial,
		Retry:        smc.RetryConfig{Attempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 300 * time.Millisecond},
		// Fast death detection so the restart round-trip stays quick.
		ProbeInterval: 50 * time.Millisecond,
		Device: smc.DeviceConfig{
			Reliable: reliable.Config{RetryTimeout: 20 * time.Millisecond, MaxRetries: 3},
		},
	})
	if err != nil {
		t.Fatalf("federate: %v", err)
	}
	defer link.Close()

	// Home-side observer counting each alarm by its n attribute.
	var mu sync.Mutex
	counts := map[int64]int{}
	obs := dst.Bus.Local("observer")
	if err := obs.Subscribe(event.NewFilter().WhereType("alarm"), func(e *event.Event) {
		if v, ok := e.Get("n"); ok {
			if n, isInt := v.Int(); isInt {
				mu.Lock()
				counts[n]++
				mu.Unlock()
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	waitCount := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			c := counts[n]
			mu.Unlock()
			if c >= 1 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("alarm n=%d never crossed the link", n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	pub, err := smc.JoinCell(attach(t, net, 0xC5001), smc.DeviceConfig{
		Type: "generic", Name: "pub", Secret: testSecret, Cell: "src",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Client.Publish(event.NewTyped("alarm").SetInt("n", 1)); err != nil {
		t.Fatal(err)
	}
	waitCount(1)
	_ = pub.Close()

	// Restart the remote cell (graceful: the disk log keeps its epoch).
	if err := src.Close(); err != nil {
		t.Fatalf("close src: %v", err)
	}
	src = newDurableNamedCell(t, net, "src", 0xA0100, &store.Config{Dir: srcDir})

	// The link must notice the dead membership and reconnect.
	deadline := time.Now().Add(15 * time.Second)
	for link.Reconnects() == 0 || !link.Connected() {
		if time.Now().After(deadline) {
			t.Fatalf("link never reconnected (reconnects=%d connected=%v)",
				link.Reconnects(), link.Connected())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// New traffic in the restarted remote cell keeps flowing home.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub2, err := smc.JoinCellWithRetry(ctx, attach(t, net, 0xC5002), smc.DeviceConfig{
		Type: "generic", Name: "pub2", Secret: testSecret, Cell: "src",
	}, smc.RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub2.Close()
	if err := pub2.Client.Publish(event.NewTyped("alarm").SetInt("n", 2)); err != nil {
		t.Fatal(err)
	}
	waitCount(2)

	// Exactly once each: the resume cursor (or, failing that, the home
	// log's dedup) must prevent replayed duplicates.
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for n, c := range counts {
		if c != 1 {
			t.Errorf("alarm n=%d delivered %d times, want exactly once", n, c)
		}
	}
	if s := link.Stats(); s.ResumeCursor == 0 || s.ResumeEpoch == 0 {
		t.Errorf("resume position not tracked: %+v", s)
	}
	_ = src
}

// TestFederationEpochMismatchReplaysFromOldest: a remote crash
// recovery (here: a memory log lost wholesale) rotates the remote
// epoch, so the link's stale cursor must mean replay-from-oldest —
// redelivered events dedup to exactly-once in the home cell, new
// events are never silently lost.
func TestFederationEpochMismatchReplaysFromOldest(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(85))
	defer net.Close()

	src := newDurableNamedCell(t, net, "src", 0xD0000, &store.Config{})
	dst := newDurableNamedCell(t, net, "dst", 0xE0000, &store.Config{})

	dial, _ := dialer(net, 0xF0000)
	link, err := smc.Federate(dst, attach(t, net, 0xF9999), smc.FederateConfig{
		Name:          "dst-gw",
		RemoteSecret:  testSecret,
		RemoteCell:    "src",
		Import:        event.NewFilter().WhereType("alarm"),
		Dial:          dial,
		Retry:         smc.RetryConfig{Attempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 300 * time.Millisecond},
		ProbeInterval: 50 * time.Millisecond,
		Device: smc.DeviceConfig{
			Reliable: reliable.Config{RetryTimeout: 20 * time.Millisecond, MaxRetries: 3},
		},
	})
	if err != nil {
		t.Fatalf("federate: %v", err)
	}
	defer link.Close()

	var mu sync.Mutex
	counts := map[int64]int{}
	obs := dst.Bus.Local("observer")
	if err := obs.Subscribe(event.NewFilter().WhereType("alarm"), func(e *event.Event) {
		if v, ok := e.Get("n"); ok {
			if n, isInt := v.Int(); isInt {
				mu.Lock()
				counts[n]++
				mu.Unlock()
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	total := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, c := range counts {
			n += c
		}
		return n
	}

	// The publisher stamps explicit dedup IDs, as a durable producer
	// would for idempotent redelivery.
	publish := func(dev *smc.Device, ns ...int64) {
		t.Helper()
		for _, n := range ns {
			e := event.NewTyped("alarm").SetInt("n", n).SetInt(store.AttrDedup, n)
			if err := dev.Client.Publish(e); err != nil {
				t.Fatalf("publish n=%d: %v", n, err)
			}
		}
	}

	pub, err := smc.JoinCell(attach(t, net, 0xF5001), smc.DeviceConfig{
		Type: "generic", Name: "pub", Secret: testSecret, Cell: "src",
	})
	if err != nil {
		t.Fatal(err)
	}
	publish(pub, 1, 2, 3)
	deadline := time.Now().Add(10 * time.Second)
	for total() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 3 alarms crossed", total())
		}
		time.Sleep(10 * time.Millisecond)
	}
	oldEpoch := link.Stats().ResumeEpoch
	_ = pub.Close()

	// Crash the remote: the memory log (and its epoch) is gone.
	if err := src.Close(); err != nil {
		t.Fatalf("close src: %v", err)
	}
	src = newDurableNamedCell(t, net, "src", 0xD0100, &store.Config{})

	deadline = time.Now().Add(15 * time.Second)
	for link.Reconnects() == 0 || !link.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("link never reconnected")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The producer redelivers 1..3 (same dedup IDs) and adds 4, 5.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pub2, err := smc.JoinCellWithRetry(ctx, attach(t, net, 0xF5001), smc.DeviceConfig{
		Type: "generic", Name: "pub", Secret: testSecret, Cell: "src",
	}, smc.RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub2.Close()
	publish(pub2, 1, 2, 3, 4, 5)

	deadline = time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		got4, got5 := counts[4] > 0, counts[5] > 0
		mu.Unlock()
		if got4 && got5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("post-restart alarms never crossed: silent loss")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for n := int64(1); n <= 5; n++ {
		if counts[n] != 1 {
			t.Errorf("alarm n=%d delivered %d times, want exactly once", n, counts[n])
		}
	}
	if newEpoch := link.Stats().ResumeEpoch; newEpoch == oldEpoch {
		t.Errorf("remote restart did not rotate the resume epoch (%x)", newEpoch)
	}
	_ = src
}

// TestFederationCursorFilePersistsAcrossLinks: a closed link leaves
// its resume cursor under the home cell's durable dir, and a new link
// with the same consumer name resumes from it instead of zero.
func TestFederationCursorFilePersistsAcrossLinks(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(86))
	defer net.Close()
	dstDir := t.TempDir()

	src := newDurableNamedCell(t, net, "src", 0x110000, &store.Config{})
	dst := newDurableNamedCell(t, net, "dst", 0x120000, &store.Config{Dir: dstDir})

	mk := func(base uint64) *smc.FederationLink {
		t.Helper()
		link, err := smc.Federate(dst, attach(t, net, base), smc.FederateConfig{
			Name:         "dst-gw",
			RemoteSecret: testSecret,
			RemoteCell:   "src",
			Import:       event.NewFilter().WhereType("alarm"),
		})
		if err != nil {
			t.Fatalf("federate: %v", err)
		}
		return link
	}
	link := mk(0x130001)

	pub, err := smc.JoinCell(attach(t, net, 0x130002), smc.DeviceConfig{
		Type: "generic", Name: "pub", Secret: testSecret, Cell: "src",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Client.Publish(event.NewTyped("alarm").SetInt("n", 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for link.Imported() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alarm never crossed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	want := link.Stats()
	if err := link.Close(); err != nil {
		t.Fatalf("close link: %v", err)
	}

	ents, err := os.ReadDir(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) == ".fedcursor" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no .fedcursor file under the home durable dir (%v)", ents)
	}

	link2 := mk(0x130003)
	defer link2.Close()
	if s := link2.Stats(); s.ResumeEpoch != want.ResumeEpoch || s.ResumeCursor != want.ResumeCursor {
		t.Fatalf("new link resumed at %x/%d, want persisted %x/%d",
			s.ResumeEpoch, s.ResumeCursor, want.ResumeEpoch, want.ResumeCursor)
	}
	_ = src
}
