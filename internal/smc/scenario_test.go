package smc_test

import (
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/sensor"
	"github.com/amuse/smc/internal/smc"
)

// TestPolicyEscalationScenario drives a multi-policy autonomic chain:
// a reading crosses a threshold → an alarm is raised → the alarm
// triggers an actuator AND disables the noisy low-priority policy —
// runtime behaviour change without reprogramming (§II-A).
func TestPolicyEscalationScenario(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(301))
	defer net.Close()
	cfg := defaultCellConfig()
	cfg.PolicyText = `
# Low-priority: beep the bedside unit on every reading (noisy).
obligation bedside-beep {
  on type = "reading"
  do publish(type = "actuate", target = "bedside-1", action = "beep", arg = 1)
}

# Threshold watch: raise an alarm on dangerous heart rate.
obligation hr-threshold for "hr-sensor" {
  on type = "reading" && kind = "heart-rate"
  when value > 180
  do publish(type = "alarm", source = "hr", severity = 3)
}

# Escalation: on a severe alarm, command the defibrillator and
# silence the bedside beeper so it cannot distract staff.
obligation escalate {
  on type = "alarm" && severity >= 3
  do publish(type = "actuate", target = "defib-1", action = "analyse"),
     disable("bedside-beep"),
     log("escalated")
}
`
	cell := newTestCell(t, net, cfg)

	// Actuators.
	joinActuator := func(id uint64, name string) *sensor.ActuatorSim {
		dev, err := smc.JoinCell(attach(t, net, id), smc.DeviceConfig{
			Type: sensor.DeviceTypeDefib, Name: name, Secret: testSecret,
		})
		if err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
		t.Cleanup(func() { dev.Close() })
		act := sensor.NewActuatorSim(name)
		act.Start(dev.Client.Data())
		t.Cleanup(act.Stop)
		return act
	}
	bedside := joinActuator(0x61, "bedside-1")
	defib := joinActuator(0x62, "defib-1")

	// The heart-rate sensor.
	hr, err := smc.JoinCell(attach(t, net, 0x63), smc.DeviceConfig{
		Type: sensor.DeviceTypeHeartRate, Name: "hr-1", Secret: testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Close()

	emit := func(seq uint16, value float64) {
		r := sensor.Reading{Kind: sensor.KindHeartRate, Seq: seq, Millis: int64(seq), Value: value}
		if err := hr.Client.PublishRaw(sensor.EncodeReading(r)); err != nil {
			t.Fatalf("emit %d: %v", seq, err)
		}
	}

	// Normal reading: the bedside beeps, nothing else.
	emit(1, 72)
	waitCond(t, 5*time.Second, func() bool { return len(bedside.Actions()) == 1 })
	if len(defib.Actions()) != 0 {
		t.Fatal("defib commanded by a normal reading")
	}

	// Tachycardia: alarm → defib analyse + beeper disabled.
	emit(2, 200)
	waitCond(t, 5*time.Second, func() bool { return len(defib.Actions()) == 1 })
	waitCond(t, 5*time.Second, func() bool {
		for _, pi := range cell.Policy.Obligations() {
			if pi.Name == "bedside-beep" && !pi.Enabled {
				return true
			}
		}
		return false
	})

	// Further readings no longer beep (policy disabled at runtime).
	beepsBefore := len(bedside.Actions())
	emit(3, 75)
	emit(4, 76)
	time.Sleep(400 * time.Millisecond)
	// The tachycardia reading itself raced the disable (both are
	// triggered by the same event wave), so allow at most the beeps
	// already counted plus that one in-flight beep.
	if got := len(bedside.Actions()); got > beepsBefore+1 {
		t.Errorf("beeper still active after disable: %d beeps (had %d)", got, beepsBefore)
	}
	if st := cell.Policy.Stats(); st.Fires < 3 {
		t.Errorf("policy fires = %d", st.Fires)
	}
}

func waitCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

// TestManyCellsShareOneRadioSpace runs three independent cells in one
// simulated radio space: beacons interleave, devices join the cell
// they name, and traffic never crosses cells without federation.
func TestManyCellsShareOneRadioSpace(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(302))
	defer net.Close()

	cells := make([]*smc.Cell, 3)
	names := []string{"cell-a", "cell-b", "cell-c"}
	for i, name := range names {
		cells[i] = newNamedCell(t, net, name, uint64(0x10000*(i+1)))
	}

	// One subscriber per cell, each listening to "note".
	subs := make([]*smc.Device, 3)
	for i, name := range names {
		dev, err := smc.JoinCell(attach(t, net, uint64(0x71+i)), smc.DeviceConfig{
			Type: "generic", Name: "sub-" + name, Secret: testSecret, Cell: name,
		})
		if err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
		defer dev.Close()
		if err := dev.Client.Subscribe(event.NewFilter().WhereType("note")); err != nil {
			t.Fatal(err)
		}
		subs[i] = dev
	}

	// Publish one note inside cell-b only.
	pub, err := smc.JoinCell(attach(t, net, 0x81), smc.DeviceConfig{
		Type: "generic", Name: "pub", Secret: testSecret, Cell: "cell-b",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Client.Publish(event.NewTyped("note").SetStr("in", "cell-b")); err != nil {
		t.Fatal(err)
	}

	// Only cell-b's subscriber hears it.
	if _, err := subs[1].Client.NextEvent(5 * time.Second); err != nil {
		t.Fatalf("cell-b subscriber missed its note: %v", err)
	}
	var wg sync.WaitGroup
	for _, i := range []int{0, 2} {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if e, err := subs[i].Client.NextEvent(300 * time.Millisecond); err == nil {
				t.Errorf("cell %s received foreign event %s", names[i], e)
			}
		}(i)
	}
	wg.Wait()
}
