package smc_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/sensor"
	"github.com/amuse/smc/internal/smc"
)

// TestCellAtBodyAreaScale runs a cell at the top of the paper's
// intended scale — a couple of dozen devices on one patient/home —
// with every sensor streaming, and verifies nothing is lost and the
// policy service keeps up.
func TestCellAtBodyAreaScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	net := netsim.New(netsim.Perfect, netsim.WithSeed(401))
	defer net.Close()
	cfg := defaultCellConfig()
	cfg.Lease = 2 * time.Second
	cfg.Grace = 5 * time.Second
	cfg.PolicyText = `
obligation count-readings {
  on type = "reading"
  do log("reading")
}
`
	cell := newTestCell(t, net, cfg)

	const sensors = 20
	const perSensor = 5

	// A monitor subscribed to all readings.
	mon, err := smc.JoinCell(attach(t, net, 0xF001), smc.DeviceConfig{
		Type: "generic", Name: "monitor", Secret: testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if err := mon.Client.Subscribe(event.NewFilter().WhereType(sensor.TypeReading)); err != nil {
		t.Fatal(err)
	}

	kinds := []struct {
		kind sensor.Kind
		dt   string
	}{
		{sensor.KindHeartRate, sensor.DeviceTypeHeartRate},
		{sensor.KindSpO2, sensor.DeviceTypeSpO2},
		{sensor.KindTemperature, sensor.DeviceTypeTemperature},
		{sensor.KindBPSystolic, sensor.DeviceTypeBP},
		{sensor.KindGlucose, sensor.DeviceTypeGlucose},
	}
	var sims []*sensor.Sim
	for i := 0; i < sensors; i++ {
		k := kinds[i%len(kinds)]
		dev, err := smc.JoinCell(attach(t, net, uint64(0xF100+i)), smc.DeviceConfig{
			Type: k.dt, Name: fmt.Sprintf("s-%d", i), Secret: testSecret,
		})
		if err != nil {
			t.Fatalf("join sensor %d: %v", i, err)
		}
		defer dev.Close()
		sims = append(sims, sensor.NewSim(k.kind, sensor.WaveformFor(k.kind, int64(i)),
			time.Second, dev.Client))
	}
	if got := len(cell.Discovery.Members()); got != sensors+1 {
		t.Fatalf("members = %d", got)
	}

	// Step-drive every sensor deterministically.
	for round := 0; round < perSensor; round++ {
		for _, s := range sims {
			if err := s.EmitOnce(); err != nil {
				t.Fatalf("emit: %v", err)
			}
		}
	}

	// The monitor receives every translated reading.
	want := sensors * perSensor
	for i := 0; i < want; i++ {
		if _, err := mon.Client.NextEvent(30 * time.Second); err != nil {
			t.Fatalf("after %d/%d readings: %v", i, want, err)
		}
	}
	// The obligation fired once per reading (it may still be catching
	// up on the last few).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cell.Policy.Stats().Fires >= uint64(want) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if fires := cell.Policy.Stats().Fires; fires < uint64(want) {
		t.Errorf("policy fires = %d, want ≥ %d", fires, want)
	}
	// No proxy dropped anything.
	px := cell.Bus.MemberProxy(mon.Client.ID())
	if px == nil {
		t.Fatal("monitor proxy missing")
	}
	if st := px.Stats(); st.DroppedOldest != 0 || st.DiscardedOnPurge != 0 {
		t.Errorf("monitor proxy dropped events: %+v", st)
	}
}
