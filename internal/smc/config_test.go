package smc_test

import (
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/discovery"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/sensor"
	"github.com/amuse/smc/internal/smc"
)

func TestNewCellValidation(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(201))
	defer net.Close()

	// Empty cell name.
	if _, err := smc.NewCell(attach(t, net, 1), attach(t, net, 2), smc.Config{
		Secret: testSecret,
	}); err == nil {
		t.Error("empty cell name accepted")
	}

	// Unknown matcher kind.
	if _, err := smc.NewCell(attach(t, net, 3), attach(t, net, 4), smc.Config{
		Cell: "c", Secret: testSecret, Matcher: matcher.Kind("bogus"),
	}); err == nil {
		t.Error("unknown matcher accepted")
	}

	// Broken policy text.
	if _, err := smc.NewCell(attach(t, net, 5), attach(t, net, 6), smc.Config{
		Cell: "c", Secret: testSecret, PolicyText: "obligation {",
	}); err == nil {
		t.Error("broken policy text accepted")
	}
}

func TestCellStartIsIdempotent(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(202))
	defer net.Close()
	cell, err := smc.NewCell(attach(t, net, 1), attach(t, net, 2), defaultCellConfig())
	if err != nil {
		t.Fatal(err)
	}
	cell.Start()
	cell.Start() // second start is a no-op, not a crash
	if err := cell.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinTimeoutWithoutCell(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(203))
	defer net.Close()
	start := time.Now()
	_, err := smc.JoinCell(attach(t, net, 9), smc.DeviceConfig{
		Type: "generic", Name: "orphan", Secret: testSecret,
		JoinTimeout: 300 * time.Millisecond,
	})
	if !errors.Is(err, discovery.ErrNoCell) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("join timeout not respected")
	}
}

func TestDirectJoinSkipsBeacons(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(204))
	defer net.Close()
	cfg := defaultCellConfig()
	cfg.BeaconInterval = time.Hour // beacons effectively disabled
	cell := newTestCell(t, net, cfg)

	dev, err := smc.JoinCell(attach(t, net, 0x31), smc.DeviceConfig{
		Type: "generic", Name: "direct", Secret: testSecret,
		Cell: cfg.Cell, Discovery: cell.Discovery.ID(),
		JoinTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("direct join: %v", err)
	}
	defer dev.Close()
	if dev.Join.Cell != cfg.Cell {
		t.Errorf("joined %q", dev.Join.Cell)
	}
}

func TestUnreliableSensorPathEndToEnd(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(205))
	defer net.Close()
	newTestCell(t, net, defaultCellConfig())

	mon, err := smc.JoinCell(attach(t, net, 0x41), smc.DeviceConfig{
		Type: "generic", Name: "monitor", Secret: testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if err := mon.Client.Subscribe(event.NewFilter().WhereType(sensor.TypeReading)); err != nil {
		t.Fatal(err)
	}

	temp, err := smc.JoinCell(attach(t, net, 0x42), smc.DeviceConfig{
		Type: sensor.DeviceTypeTemperature, Name: "temp-1", Secret: testSecret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer temp.Close()

	sim := sensor.NewSim(sensor.KindTemperature, sensor.TemperatureWaveform(1),
		time.Second, temp.Client, sensor.WithUnreliable(true))
	for i := 0; i < 3; i++ {
		if err := sim.EmitOnce(); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
	}
	// All three readings arrive translated despite the NoAck path
	// (the link is perfect here; loss tolerance is the sensor's
	// business, §III-B).
	for i := 0; i < 3; i++ {
		e, err := mon.Client.NextEvent(3 * time.Second)
		if err != nil {
			t.Fatalf("reading %d: %v", i, err)
		}
		if e.Type() != sensor.TypeReading {
			t.Errorf("type = %q", e.Type())
		}
		if e.Sender != temp.Client.ID() {
			t.Errorf("sender = %s", e.Sender)
		}
	}
}

func TestCellMemberListsAgree(t *testing.T) {
	net := netsim.New(netsim.Perfect, netsim.WithSeed(206))
	defer net.Close()
	cell := newTestCell(t, net, defaultCellConfig())

	var devs []*smc.Device
	for i := 0; i < 4; i++ {
		dev, err := smc.JoinCell(attach(t, net, uint64(0x51+i)), smc.DeviceConfig{
			Type: "generic", Name: "m", Secret: testSecret,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		devs = append(devs, dev)
	}
	discMembers := cell.Discovery.Members()
	busMembers := cell.Bus.Members()
	if len(discMembers) != 4 || len(busMembers) != 4 {
		t.Fatalf("members = %d/%d", len(discMembers), len(busMembers))
	}
	busSet := map[ident.ID]bool{}
	for _, id := range busMembers {
		busSet[id] = true
	}
	for _, mi := range discMembers {
		if !busSet[mi.ID] {
			t.Errorf("member %s in discovery but not bus", mi.ID)
		}
	}
}
