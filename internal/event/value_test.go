package event

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		typ  Type
		want string
	}{
		{Int(42), TypeInt, "42"},
		{Int(-7), TypeInt, "-7"},
		{Float(3.5), TypeFloat, "3.5"},
		{Str("hi"), TypeString, `"hi"`},
		{Bool(true), TypeBool, "true"},
		{Bool(false), TypeBool, "false"},
		{Bytes([]byte{1, 2}), TypeBytes, "bytes[2]"},
	}
	for _, c := range cases {
		if c.v.Type() != c.typ {
			t.Errorf("%v type = %v, want %v", c.v, c.v.Type(), c.typ)
		}
		if c.v.String() != c.want {
			t.Errorf("String = %q, want %q", c.v.String(), c.want)
		}
		if !c.v.IsValid() {
			t.Errorf("%v not valid", c.v)
		}
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero Value is valid")
	}
	if zero.Type().String() != "invalid" {
		t.Errorf("zero type name = %s", zero.Type())
	}
}

func TestValueAccessorsTypeChecked(t *testing.T) {
	v := Int(5)
	if _, ok := v.Float(); ok {
		t.Error("Int value answered Float")
	}
	if _, ok := v.Str(); ok {
		t.Error("Int value answered Str")
	}
	if _, ok := v.Bool(); ok {
		t.Error("Int value answered Bool")
	}
	if _, ok := v.Bytes(); ok {
		t.Error("Int value answered Bytes")
	}
	if i, ok := v.Int(); !ok || i != 5 {
		t.Errorf("Int() = %d, %v", i, ok)
	}
}

func TestBytesValueIsCopied(t *testing.T) {
	src := []byte{1, 2, 3}
	v := Bytes(src)
	src[0] = 99
	got, _ := v.Bytes()
	if got[0] != 1 {
		t.Error("Bytes constructor did not copy input")
	}
	got[1] = 99
	again, _ := v.Bytes()
	if again[1] != 2 {
		t.Error("Bytes accessor did not copy output")
	}
}

func TestValueEqualStrictTypes(t *testing.T) {
	if Int(1).Equal(Float(1)) {
		t.Error("Int(1) == Float(1) under Equal (strict typing expected)")
	}
	if !Int(1).Equal(Int(1)) || !Float(2.5).Equal(Float(2.5)) {
		t.Error("same-type equality broken")
	}
	if !Bytes([]byte("ab")).Equal(Bytes([]byte("ab"))) {
		t.Error("bytes equality broken")
	}
	if Str("ab").Equal(Bytes([]byte("ab"))) {
		t.Error("string equals bytes")
	}
}

func TestCompareNumericCrossType(t *testing.T) {
	cmp, err := Int(2).Compare(Float(2.5))
	if err != nil || cmp != -1 {
		t.Errorf("Int(2) vs Float(2.5) = %d, %v", cmp, err)
	}
	cmp, err = Float(3).Compare(Int(3))
	if err != nil || cmp != 0 {
		t.Errorf("Float(3) vs Int(3) = %d, %v", cmp, err)
	}
	if _, err := Int(1).Compare(Str("a")); err == nil {
		t.Error("numeric vs string compared")
	}
	if _, err := Bool(true).Compare(Str("a")); err == nil {
		t.Error("bool vs string compared")
	}
}

func TestCompareStringsBytesBools(t *testing.T) {
	if c, err := Str("a").Compare(Str("b")); err != nil || c != -1 {
		t.Errorf("a vs b = %d, %v", c, err)
	}
	if c, err := Bytes([]byte("b")).Compare(Bytes([]byte("a"))); err != nil || c != 1 {
		t.Errorf("bytes b vs a = %d, %v", c, err)
	}
	if c, err := Bool(false).Compare(Bool(true)); err != nil || c != -1 {
		t.Errorf("false vs true = %d, %v", c, err)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		c1, err1 := Int(a).Compare(Int(b))
		c2, err2 := Int(b).Compare(Int(a))
		return err1 == nil && err2 == nil && c1 == -c2
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
