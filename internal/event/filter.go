package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Op is a constraint operator applied to one attribute.
type Op int

// Constraint operators. OpExists matches any value under the name;
// string operators apply to string and bytes values only.
const (
	OpInvalid Op = iota
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpPrefix
	OpSuffix
	OpContains
	OpExists
)

// String returns the operator's source-level spelling.
func (op Op) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpPrefix:
		return "prefix"
	case OpSuffix:
		return "suffix"
	case OpContains:
		return "contains"
	case OpExists:
		return "exists"
	default:
		return "invalid"
	}
}

// ParseOp decodes the String form of an operator.
func ParseOp(s string) (Op, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	case "prefix":
		return OpPrefix, nil
	case "suffix":
		return OpSuffix, nil
	case "contains":
		return OpContains, nil
	case "exists":
		return OpExists, nil
	default:
		return OpInvalid, fmt.Errorf("event: unknown operator %q", s)
	}
}

// ErrBadFilter reports a structurally invalid filter.
var ErrBadFilter = errors.New("event: bad filter")

// Constraint restricts one attribute: name op value. For OpExists the
// value is ignored.
type Constraint struct {
	Name  string
	Op    Op
	Value Value
}

// MatchValue reports whether a single value satisfies the constraint.
func (c Constraint) MatchValue(v Value) bool {
	switch c.Op {
	case OpExists:
		return v.IsValid()
	case OpEq:
		return equalForMatch(v, c.Value)
	case OpNe:
		// Ne is only meaningful across comparable kinds; an event
		// carrying a different kind does not satisfy != (Siena
		// semantics: constraints are typed).
		if !sameKind(v, c.Value) {
			return false
		}
		return !equalForMatch(v, c.Value)
	case OpLt, OpLe, OpGt, OpGe:
		cmp, err := v.Compare(c.Value)
		if err != nil {
			return false
		}
		switch c.Op {
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		default:
			return cmp >= 0
		}
	case OpPrefix, OpSuffix, OpContains:
		s, ok := stringable(v)
		if !ok {
			return false
		}
		pat, ok := stringable(c.Value)
		if !ok {
			return false
		}
		switch c.Op {
		case OpPrefix:
			return strings.HasPrefix(s, pat)
		case OpSuffix:
			return strings.HasSuffix(s, pat)
		default:
			return strings.Contains(s, pat)
		}
	default:
		return false
	}
}

// equalForMatch implements matching equality: numeric values compare by
// magnitude across int/float, everything else by strict equality.
func equalForMatch(a, b Value) bool {
	if an, ok := a.numeric(); ok {
		if bn, ok2 := b.numeric(); ok2 {
			return an == bn
		}
		return false
	}
	return a.Equal(b)
}

// sameKind reports whether two values belong to the same comparison
// family (numeric, string-like, bool).
func sameKind(a, b Value) bool {
	fam := func(t Type) int {
		switch t {
		case TypeInt, TypeFloat:
			return 1
		case TypeString, TypeBytes:
			return 2
		case TypeBool:
			return 3
		default:
			return 0
		}
	}
	fa, fb := fam(a.typ), fam(b.typ)
	return fa != 0 && fa == fb
}

func stringable(v Value) (string, bool) {
	switch v.typ {
	case TypeString:
		return v.str, true
	case TypeBytes:
		return string(v.raw), true
	default:
		return "", false
	}
}

// Validate checks structural validity of the constraint.
func (c Constraint) Validate() error {
	if err := validateName(c.Name); err != nil {
		return err
	}
	if c.Op <= OpInvalid || c.Op > OpExists {
		return fmt.Errorf("%w: invalid op on %q", ErrBadFilter, c.Name)
	}
	if c.Op != OpExists {
		if err := validateValue(c.Value); err != nil {
			return err
		}
	}
	return nil
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.Op == OpExists {
		return fmt.Sprintf("%s exists", c.Name)
	}
	return fmt.Sprintf("%s %s %s", c.Name, c.Op, c.Value)
}

// Filter is a conjunction of constraints: an event matches when every
// constraint is satisfied by the attribute of the same name. An empty
// filter matches every event (used by core services that audit all
// traffic).
type Filter struct {
	constraints []Constraint
}

// NewFilter builds a filter from constraints. The slice is copied.
func NewFilter(cs ...Constraint) *Filter {
	f := &Filter{constraints: make([]Constraint, len(cs))}
	copy(f.constraints, cs)
	f.normalize()
	return f
}

// Where appends a constraint and returns the filter for chaining.
func (f *Filter) Where(name string, op Op, v Value) *Filter {
	f.constraints = append(f.constraints, Constraint{Name: name, Op: op, Value: v})
	f.normalize()
	return f
}

// WhereType is shorthand for an equality constraint on the "type"
// attribute.
func (f *Filter) WhereType(class string) *Filter {
	return f.Where(AttrType, OpEq, Str(class))
}

// normalize keeps constraints sorted by name then op for deterministic
// encoding and comparison.
func (f *Filter) normalize() {
	sort.SliceStable(f.constraints, func(i, j int) bool {
		a, b := f.constraints[i], f.constraints[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Op < b.Op
	})
}

// Constraints returns a copy of the constraint list.
func (f *Filter) Constraints() []Constraint {
	out := make([]Constraint, len(f.constraints))
	copy(out, f.constraints)
	return out
}

// Len reports the number of constraints.
func (f *Filter) Len() int { return len(f.constraints) }

// Matches reports whether the event satisfies every constraint.
func (f *Filter) Matches(e *Event) bool {
	for _, c := range f.constraints {
		v, ok := e.Get(c.Name)
		if c.Op == OpExists {
			if !ok {
				return false
			}
			continue
		}
		if !ok || !c.MatchValue(v) {
			return false
		}
	}
	return true
}

// Validate checks every constraint and the filter size limits.
func (f *Filter) Validate() error {
	if len(f.constraints) > MaxAttrs {
		return fmt.Errorf("%w: %d constraints", ErrBadFilter, len(f.constraints))
	}
	for _, c := range f.constraints {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two filters have identical constraint lists.
func (f *Filter) Equal(o *Filter) bool {
	if f == nil || o == nil {
		return f == o
	}
	if len(f.constraints) != len(o.constraints) {
		return false
	}
	for i, c := range f.constraints {
		oc := o.constraints[i]
		if c.Name != oc.Name || c.Op != oc.Op || !c.Value.Equal(oc.Value) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	return NewFilter(f.constraints...)
}

// String renders the filter.
func (f *Filter) String() string {
	if len(f.constraints) == 0 {
		return "filter{*}"
	}
	parts := make([]string, len(f.constraints))
	for i, c := range f.constraints {
		parts[i] = c.String()
	}
	return "filter{" + strings.Join(parts, " && ") + "}"
}
