package event

import (
	"math/rand"
	"testing"
)

func TestCoversConstraintBasics(t *testing.T) {
	cases := []struct {
		a, b Constraint
		want bool
	}{
		// exists covers everything on the same name.
		{Constraint{"x", OpExists, Value{}}, Constraint{"x", OpEq, Int(1)}, true},
		{Constraint{"x", OpEq, Int(1)}, Constraint{"x", OpExists, Value{}}, false},
		// different names never cover.
		{Constraint{"x", OpExists, Value{}}, Constraint{"y", OpEq, Int(1)}, false},
		// eq covers identical eq only.
		{Constraint{"x", OpEq, Int(1)}, Constraint{"x", OpEq, Int(1)}, true},
		{Constraint{"x", OpEq, Int(1)}, Constraint{"x", OpEq, Int(2)}, false},
		{Constraint{"x", OpEq, Int(1)}, Constraint{"x", OpEq, Float(1)}, true}, // numeric equality
		// ranges.
		{Constraint{"x", OpLt, Int(10)}, Constraint{"x", OpLt, Int(5)}, true},
		{Constraint{"x", OpLt, Int(5)}, Constraint{"x", OpLt, Int(10)}, false},
		{Constraint{"x", OpLe, Int(10)}, Constraint{"x", OpLt, Int(10)}, true},
		{Constraint{"x", OpLt, Int(10)}, Constraint{"x", OpLe, Int(10)}, false},
		{Constraint{"x", OpGt, Int(5)}, Constraint{"x", OpGt, Int(10)}, true},
		{Constraint{"x", OpGe, Int(5)}, Constraint{"x", OpGe, Int(5)}, true},
		{Constraint{"x", OpLt, Int(10)}, Constraint{"x", OpEq, Int(5)}, true},
		{Constraint{"x", OpLt, Int(10)}, Constraint{"x", OpEq, Int(15)}, false},
		{Constraint{"x", OpGt, Int(10)}, Constraint{"x", OpLt, Int(20)}, false}, // opposite directions
		// strings.
		{Constraint{"x", OpPrefix, Str("ab")}, Constraint{"x", OpPrefix, Str("abc")}, true},
		{Constraint{"x", OpPrefix, Str("abc")}, Constraint{"x", OpPrefix, Str("ab")}, false},
		{Constraint{"x", OpPrefix, Str("ab")}, Constraint{"x", OpEq, Str("abx")}, true},
		{Constraint{"x", OpSuffix, Str("yz")}, Constraint{"x", OpEq, Str("xyz")}, true},
		{Constraint{"x", OpSuffix, Str("yz")}, Constraint{"x", OpSuffix, Str("xyz")}, true},
		{Constraint{"x", OpContains, Str("b")}, Constraint{"x", OpEq, Str("abc")}, true},
		{Constraint{"x", OpContains, Str("q")}, Constraint{"x", OpEq, Str("abc")}, false},
		// ne.
		{Constraint{"x", OpNe, Int(1)}, Constraint{"x", OpNe, Int(1)}, true},
		{Constraint{"x", OpNe, Int(1)}, Constraint{"x", OpEq, Int(2)}, true},
		{Constraint{"x", OpNe, Int(1)}, Constraint{"x", OpEq, Int(1)}, false},
		// string ranges via Compare.
		{Constraint{"x", OpLt, Str("m")}, Constraint{"x", OpEq, Str("a")}, true},
		{Constraint{"x", OpLt, Str("m")}, Constraint{"x", OpEq, Str("z")}, false},
		{Constraint{"x", OpLt, Str("m")}, Constraint{"x", OpLt, Str("f")}, true},
	}
	for _, c := range cases {
		if got := CoversConstraint(c.a, c.b); got != c.want {
			t.Errorf("Covers(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFilterCovers(t *testing.T) {
	broad := NewFilter().WhereType("reading")
	narrow := NewFilter().WhereType("reading").Where("value", OpGt, Int(100))
	if !broad.Covers(narrow) {
		t.Error("broad does not cover narrow")
	}
	if narrow.Covers(broad) {
		t.Error("narrow covers broad")
	}
	empty := NewFilter()
	if !empty.Covers(narrow) || !empty.Covers(broad) {
		t.Error("empty filter must cover everything")
	}
	if narrow.Covers(empty) {
		t.Error("narrow covers empty")
	}
}

// Soundness property: whenever Covers(a, b) is true, every randomly
// generated event matching b also matches a. The relation is allowed to
// be conservative (false negatives), never unsound.
func TestCoversSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpPrefix, OpSuffix, OpContains, OpExists}
	names := []string{"a", "b"}
	strs := []string{"", "a", "ab", "abc", "b", "ba", "xaby"}

	randomValue := func() Value {
		switch rng.Intn(3) {
		case 0:
			return Int(int64(rng.Intn(10)))
		case 1:
			return Float(float64(rng.Intn(20)) / 2)
		default:
			return Str(strs[rng.Intn(len(strs))])
		}
	}
	randomConstraint := func() Constraint {
		c := Constraint{
			Name: names[rng.Intn(len(names))],
			Op:   ops[rng.Intn(len(ops))],
		}
		if c.Op != OpExists {
			c.Value = randomValue()
		}
		return c
	}

	for iter := 0; iter < 6000; iter++ {
		f1 := NewFilter(randomConstraint())
		f2 := NewFilter(randomConstraint(), randomConstraint())
		if !f1.Covers(f2) {
			continue
		}
		// Sample events and check implication.
		for s := 0; s < 60; s++ {
			e := New()
			for _, n := range names {
				if rng.Intn(4) > 0 {
					e.Set(n, randomValue())
				}
			}
			if f2.Matches(e) && !f1.Matches(e) {
				t.Fatalf("unsound covering: %v covers %v but event %v matches only the covered filter",
					f1, f2, e)
			}
		}
	}
}
