package event

import (
	"testing"
	"testing/quick"
)

func TestOpParseAndString(t *testing.T) {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpPrefix, OpSuffix, OpContains, OpExists}
	for _, op := range ops {
		parsed, err := ParseOp(op.String())
		if err != nil || parsed != op {
			t.Errorf("ParseOp(%q) = %v, %v", op.String(), parsed, err)
		}
	}
	if _, err := ParseOp("~~"); err == nil {
		t.Error("ParseOp accepted garbage")
	}
	if op, err := ParseOp("=="); err != nil || op != OpEq {
		t.Error("ParseOp(==) failed")
	}
}

func TestConstraintMatchValue(t *testing.T) {
	cases := []struct {
		c    Constraint
		v    Value
		want bool
	}{
		{Constraint{"x", OpEq, Int(5)}, Int(5), true},
		{Constraint{"x", OpEq, Int(5)}, Float(5), true}, // numeric cross-type
		{Constraint{"x", OpEq, Int(5)}, Int(6), false},
		{Constraint{"x", OpEq, Str("a")}, Str("a"), true},
		{Constraint{"x", OpEq, Str("a")}, Int(1), false},
		{Constraint{"x", OpNe, Int(5)}, Int(6), true},
		{Constraint{"x", OpNe, Int(5)}, Int(5), false},
		{Constraint{"x", OpNe, Int(5)}, Str("a"), false}, // incomparable kinds
		{Constraint{"x", OpLt, Int(10)}, Int(9), true},
		{Constraint{"x", OpLt, Int(10)}, Int(10), false},
		{Constraint{"x", OpLe, Int(10)}, Int(10), true},
		{Constraint{"x", OpGt, Float(1.5)}, Int(2), true},
		{Constraint{"x", OpGe, Int(3)}, Int(3), true},
		{Constraint{"x", OpGt, Str("m")}, Str("n"), true},
		{Constraint{"x", OpLt, Str("m")}, Str("n"), false},
		{Constraint{"x", OpPrefix, Str("ab")}, Str("abc"), true},
		{Constraint{"x", OpPrefix, Str("ab")}, Str("ba"), false},
		{Constraint{"x", OpSuffix, Str("bc")}, Str("abc"), true},
		{Constraint{"x", OpContains, Str("b")}, Str("abc"), true},
		{Constraint{"x", OpContains, Str("z")}, Str("abc"), false},
		{Constraint{"x", OpContains, Str("b")}, Bytes([]byte("abc")), true},
		{Constraint{"x", OpPrefix, Str("ab")}, Int(1), false},
		{Constraint{"x", OpExists, Value{}}, Int(1), true},
		{Constraint{"x", OpLt, Int(5)}, Str("a"), false}, // type mismatch
	}
	for _, c := range cases {
		if got := c.c.MatchValue(c.v); got != c.want {
			t.Errorf("%v match %v = %v, want %v", c.c, c.v, got, c.want)
		}
	}
}

func TestFilterMatches(t *testing.T) {
	f := NewFilter().
		WhereType("reading").
		Where("value", OpGt, Int(100)).
		Where("unit", OpEq, Str("bpm"))

	match := NewTyped("reading").SetFloat("value", 150).SetStr("unit", "bpm")
	if !f.Matches(match) {
		t.Error("matching event rejected")
	}
	low := NewTyped("reading").SetFloat("value", 50).SetStr("unit", "bpm")
	if f.Matches(low) {
		t.Error("low value matched")
	}
	missing := NewTyped("reading").SetFloat("value", 150)
	if f.Matches(missing) {
		t.Error("event missing unit matched")
	}
	wrongType := NewTyped("alarm").SetFloat("value", 150).SetStr("unit", "bpm")
	if f.Matches(wrongType) {
		t.Error("wrong type matched")
	}
}

func TestEmptyFilterMatchesEverything(t *testing.T) {
	f := NewFilter()
	if !f.Matches(New()) || !f.Matches(NewTyped("x").SetInt("y", 1)) {
		t.Error("empty filter did not match")
	}
}

func TestExistsConstraint(t *testing.T) {
	f := NewFilter().Where("v", OpExists, Value{})
	if !f.Matches(New().SetInt("v", 0)) {
		t.Error("exists rejected present attribute")
	}
	if f.Matches(New().SetInt("w", 0)) {
		t.Error("exists matched absent attribute")
	}
}

func TestFilterEqualAndClone(t *testing.T) {
	f := NewFilter().WhereType("a").Where("v", OpGt, Int(5))
	g := NewFilter().Where("v", OpGt, Int(5)).WhereType("a") // different insert order
	if !f.Equal(g) {
		t.Error("order-insensitive equality broken (normalization)")
	}
	cp := f.Clone()
	if !cp.Equal(f) {
		t.Error("clone unequal")
	}
	cp.Where("extra", OpExists, Value{})
	if cp.Equal(f) {
		t.Error("clone mutation affected equality")
	}
	h := NewFilter().WhereType("b")
	if f.Equal(h) {
		t.Error("different filters equal")
	}
	var nilF *Filter
	if f.Equal(nilF) {
		t.Error("filter equals nil")
	}
}

func TestFilterValidate(t *testing.T) {
	good := NewFilter().WhereType("x")
	if err := good.Validate(); err != nil {
		t.Errorf("good filter rejected: %v", err)
	}
	bad := NewFilter().Where("", OpEq, Int(1))
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	badOp := NewFilter().Where("x", OpInvalid, Int(1))
	if err := badOp.Validate(); err == nil {
		t.Error("invalid op accepted")
	}
	badVal := NewFilter().Where("x", OpEq, Value{})
	if err := badVal.Validate(); err == nil {
		t.Error("invalid value accepted")
	}
}

func TestFilterStringRendering(t *testing.T) {
	if NewFilter().String() != "filter{*}" {
		t.Error("empty filter rendering")
	}
	s := NewFilter().Where("v", OpGe, Int(3)).String()
	if s != "filter{v >= 3}" {
		t.Errorf("rendering = %q", s)
	}
}

// Property: for numeric constraints, MatchValue agrees with direct
// arithmetic on the operands.
func TestNumericConstraintProperty(t *testing.T) {
	err := quick.Check(func(bound, val int64) bool {
		lt := Constraint{"x", OpLt, Int(bound)}.MatchValue(Int(val)) == (val < bound)
		le := Constraint{"x", OpLe, Int(bound)}.MatchValue(Int(val)) == (val <= bound)
		gt := Constraint{"x", OpGt, Int(bound)}.MatchValue(Int(val)) == (val > bound)
		ge := Constraint{"x", OpGe, Int(bound)}.MatchValue(Int(val)) == (val >= bound)
		eq := Constraint{"x", OpEq, Int(bound)}.MatchValue(Int(val)) == (val == bound)
		ne := Constraint{"x", OpNe, Int(bound)}.MatchValue(Int(val)) == (val != bound)
		return lt && le && gt && ge && eq && ne
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
