// Package event defines the SMC event model: events carrying typed,
// named attributes, and content-based filters over those attributes.
//
// The model follows Siena's attribute/constraint scheme (the paper bases
// both its matchers on Siena, §II-D and §IV): an event is a set of typed
// attributes; a filter is a conjunction of constraints, each naming an
// attribute, an operator and a comparison value.
package event

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strconv"
)

// Type identifies the dynamic type of an attribute Value.
type Type int

// Attribute value types. TypeInvalid is the zero value so that an unset
// Value is detectably invalid.
const (
	TypeInvalid Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
	TypeBytes
)

// String returns a human-readable type name.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	case TypeBytes:
		return "bytes"
	default:
		return "invalid"
	}
}

// ErrTypeMismatch reports an operation across incomparable value types.
var ErrTypeMismatch = errors.New("event: type mismatch")

// Value is a typed attribute value: one of int64, float64, string, bool
// or a byte slice. The zero Value is invalid.
type Value struct {
	typ Type
	num uint64 // int64 bits, float64 bits, or 0/1 for bool
	str string // string payload
	raw []byte // bytes payload
}

// Int builds an integer Value.
func Int(v int64) Value { return Value{typ: TypeInt, num: uint64(v)} }

// Float builds a floating-point Value.
func Float(v float64) Value { return Value{typ: TypeFloat, num: math.Float64bits(v)} }

// String builds a string Value.
func Str(v string) Value { return Value{typ: TypeString, str: v} }

// Bool builds a boolean Value.
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{typ: TypeBool, num: n}
}

// Bytes builds a byte-slice Value. The slice is copied so that later
// mutation by the caller cannot change the event (copy at boundaries).
func Bytes(v []byte) Value {
	cp := make([]byte, len(v))
	copy(cp, v)
	return Value{typ: TypeBytes, raw: cp}
}

// BytesAlias builds a byte-slice Value that aliases v without copying.
// The caller guarantees v stays immutable and alive for as long as the
// value is used; the borrowing wire decoder pairs it with the packet
// backing held by Event.Borrow, and Clone promotes it to an owned
// copy. Everyone else should use Bytes.
func BytesAlias(v []byte) Value { return Value{typ: TypeBytes, raw: v} }

// Type reports the dynamic type of the value.
func (v Value) Type() Type { return v.typ }

// IsValid reports whether the value carries a type.
func (v Value) IsValid() bool { return v.typ != TypeInvalid }

// Int returns the integer payload; ok is false for other types.
func (v Value) Int() (int64, bool) {
	if v.typ != TypeInt {
		return 0, false
	}
	return int64(v.num), true
}

// Float returns the float payload; ok is false for other types.
func (v Value) Float() (float64, bool) {
	if v.typ != TypeFloat {
		return 0, false
	}
	return math.Float64frombits(v.num), true
}

// Str returns the string payload; ok is false for other types.
func (v Value) Str() (string, bool) {
	if v.typ != TypeString {
		return "", false
	}
	return v.str, true
}

// Bool returns the boolean payload; ok is false for other types.
func (v Value) Bool() (bool, bool) {
	if v.typ != TypeBool {
		return false, false
	}
	return v.num == 1, true
}

// Bytes returns a copy of the byte payload; ok is false for other types.
func (v Value) Bytes() ([]byte, bool) {
	if v.typ != TypeBytes {
		return nil, false
	}
	cp := make([]byte, len(v.raw))
	copy(cp, v.raw)
	return cp, true
}

// BytesRef returns the byte payload without copying; ok is false for
// other types. The slice aliases the value's backing array and MUST be
// treated as read-only — it exists so that encoding and sizing at
// trusted boundaries avoid the defensive copy Bytes makes.
func (v Value) BytesRef() ([]byte, bool) {
	if v.typ != TypeBytes {
		return nil, false
	}
	return v.raw, true
}

// bytesRef returns the byte payload without copying, for internal
// read-only use (matching, encoding).
func (v Value) bytesRef() []byte { return v.raw }

// numeric reports whether the value is an int or float, and its value as
// a float64 for cross-type numeric comparison.
func (v Value) numeric() (float64, bool) {
	switch v.typ {
	case TypeInt:
		return float64(int64(v.num)), true
	case TypeFloat:
		return math.Float64frombits(v.num), true
	default:
		return 0, false
	}
}

// Equal reports deep equality of two values. Int and float values are
// equal only if both type and numeric value agree (Int(1) != Float(1)).
func (v Value) Equal(o Value) bool {
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case TypeBytes:
		return bytes.Equal(v.raw, o.raw)
	case TypeString:
		return v.str == o.str
	default:
		return v.num == o.num
	}
}

// Compare orders two values. Numeric values (int/float) compare across
// types by magnitude; strings and bytes compare lexicographically; bools
// compare false < true. Comparing across incompatible kinds returns
// ErrTypeMismatch.
func (v Value) Compare(o Value) (int, error) {
	if vn, ok := v.numeric(); ok {
		on, ok2 := o.numeric()
		if !ok2 {
			return 0, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, v.typ, o.typ)
		}
		switch {
		case vn < on:
			return -1, nil
		case vn > on:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.typ != o.typ {
		return 0, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, v.typ, o.typ)
	}
	switch v.typ {
	case TypeString:
		switch {
		case v.str < o.str:
			return -1, nil
		case v.str > o.str:
			return 1, nil
		default:
			return 0, nil
		}
	case TypeBytes:
		return bytes.Compare(v.raw, o.raw), nil
	case TypeBool:
		switch {
		case v.num < o.num:
			return -1, nil
		case v.num > o.num:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("%w: invalid value", ErrTypeMismatch)
	}
}

// String renders the value for logs and debugging.
func (v Value) String() string {
	switch v.typ {
	case TypeInt:
		return strconv.FormatInt(int64(v.num), 10)
	case TypeFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case TypeString:
		return strconv.Quote(v.str)
	case TypeBool:
		if v.num == 1 {
			return "true"
		}
		return "false"
	case TypeBytes:
		return fmt.Sprintf("bytes[%d]", len(v.raw))
	default:
		return "<invalid>"
	}
}
