package event

import (
	"sync"
	"sync/atomic"
)

// FreeList is a bounded, owner-local recycling list for pooled events.
// A receive loop that decodes every inbound event owns one: events it
// acquires come back to the same list when their last reference drops,
// so steady-state traffic circulates through a handful of structs with
// good cache locality instead of rendezvousing on the global
// sync.Pool's per-P shared state for every packet — and, unlike a
// sync.Pool, the list survives GC cycles, so a quiet period never
// forces the hot path back into allocation.
//
// The list is safe for concurrent use (releases happen on proxy and
// dispatch goroutines, not the owner), but it is sized for one
// acquiring owner: contention on its mutex is bounded by that owner's
// packet rate, never by global traffic. When the list is full, drained
// events overflow to the global pool; when empty, Acquire falls back
// to it. Lifecycle semantics (refcounting, Clone-before-retain for
// subscribers, PoolStats accounting) are identical to event.Acquire.
type FreeList struct {
	mu   sync.Mutex
	free []*Event
}

// DefaultFreeListSize is the retention bound NewFreeList applies when
// given a non-positive capacity: enough to cover a full receive-loop
// burst (one wire batch plus in-flight fan-out references) without
// pinning unbounded memory on an idle owner.
const DefaultFreeListSize = 64

// NewFreeList returns a free list retaining at most capacity drained
// events. capacity <= 0 selects DefaultFreeListSize.
func NewFreeList(capacity int) *FreeList {
	if capacity <= 0 {
		capacity = DefaultFreeListSize
	}
	return &FreeList{free: make([]*Event, 0, capacity)}
}

// Acquire returns an empty event with a reference count of one, drawn
// from the local list when possible and from the global pool
// otherwise. The event returns to this list when released.
func (fl *FreeList) Acquire() *Event {
	var e *Event
	fl.mu.Lock()
	if n := len(fl.free); n > 0 {
		e = fl.free[n-1]
		fl.free[n-1] = nil
		fl.free = fl.free[:n-1]
	}
	fl.mu.Unlock()
	if e == nil {
		e = eventPool.Get().(*Event)
	}
	e.pooled = true
	e.home = fl
	atomic.StoreInt32(&e.refs, 1)
	poolAcquired.Add(1)
	return e
}

// put files a drained (already cleared) event; reports false when the
// list is at capacity and the event should go to the global pool.
func (fl *FreeList) put(e *Event) bool {
	fl.mu.Lock()
	ok := len(fl.free) < cap(fl.free)
	if ok {
		fl.free = append(fl.free, e)
	}
	fl.mu.Unlock()
	return ok
}

// Len reports how many drained events the list currently retains.
func (fl *FreeList) Len() int {
	fl.mu.Lock()
	n := len(fl.free)
	fl.mu.Unlock()
	return n
}
