package event

// Covering relations between constraints and filters, per Siena's
// subscription model (Carzaniga et al., TOCS 2001). A filter F1 covers
// F2 when every event matching F2 also matches F1. The relation is
// conservative: Covers may return false for pairs that do cover, but
// never returns true for pairs that do not. SienaMatcher uses covering
// to suppress redundant subscriptions.

// CoversConstraint reports (conservatively) whether constraint a covers
// constraint b on the same attribute name.
func CoversConstraint(a, b Constraint) bool {
	if a.Name != b.Name {
		return false
	}
	// Exists covers everything on the attribute.
	if a.Op == OpExists {
		return true
	}
	if b.Op == OpExists {
		return false
	}
	switch a.Op {
	case OpEq:
		// a: x = v covers b only when b forces exactly v.
		return b.Op == OpEq && equalForMatch(a.Value, b.Value)
	case OpNe:
		if b.Op == OpNe {
			return equalForMatch(a.Value, b.Value)
		}
		if b.Op == OpEq {
			return sameKind(a.Value, b.Value) && !equalForMatch(a.Value, b.Value)
		}
		return false
	case OpLt, OpLe, OpGt, OpGe:
		return coversRange(a, b)
	case OpPrefix:
		if b.Op != OpPrefix && b.Op != OpEq {
			return false
		}
		as, ok1 := stringable(a.Value)
		bs, ok2 := stringable(b.Value)
		if !ok1 || !ok2 {
			return false
		}
		// prefix "ab" covers prefix "abc" and = "abc...".
		return len(bs) >= len(as) && bs[:len(as)] == as
	case OpSuffix:
		if b.Op != OpSuffix && b.Op != OpEq {
			return false
		}
		as, ok1 := stringable(a.Value)
		bs, ok2 := stringable(b.Value)
		if !ok1 || !ok2 {
			return false
		}
		return len(bs) >= len(as) && bs[len(bs)-len(as):] == as
	case OpContains:
		bs, ok2 := stringable(b.Value)
		as, ok1 := stringable(a.Value)
		if !ok1 || !ok2 {
			return false
		}
		switch b.Op {
		case OpContains, OpEq, OpPrefix, OpSuffix:
			// contains "x" covers any pattern that itself contains "x".
			return contains(bs, as)
		default:
			return false
		}
	default:
		return false
	}
}

func contains(haystack, needle string) bool {
	return len(needle) == 0 || indexOf(haystack, needle) >= 0
}

func indexOf(s, sub string) int {
	n := len(sub)
	if n == 0 {
		return 0
	}
	for i := 0; i+n <= len(s); i++ {
		if s[i:i+n] == sub {
			return i
		}
	}
	return -1
}

// coversRange handles the numeric range operators. It requires numeric
// comparison values on both sides.
func coversRange(a, b Constraint) bool {
	av, aok := a.Value.numeric()
	if !aok {
		// Fall back to comparable same-kind values (strings).
		return coversRangeOrdered(a, b)
	}
	switch b.Op {
	case OpEq:
		bv, ok := b.Value.numeric()
		if !ok {
			return false
		}
		return rangeAdmits(a.Op, av, bv)
	case OpLt, OpLe, OpGt, OpGe:
		bv, ok := b.Value.numeric()
		if !ok {
			return false
		}
		return rangeCoversRange(a.Op, av, b.Op, bv)
	default:
		return false
	}
}

// coversRangeOrdered covers ordered non-numeric kinds via Compare. It
// only applies when b is itself a range or equality constraint — any
// other operator (!=, prefix, ...) admits values a range cannot bound.
func coversRangeOrdered(a, b Constraint) bool {
	switch b.Op {
	case OpEq, OpLt, OpLe, OpGt, OpGe:
	default:
		return false
	}
	cmp, err := b.Value.Compare(a.Value)
	if err != nil {
		return false
	}
	if b.Op == OpEq {
		switch a.Op {
		case OpLt:
			return cmp < 0
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		case OpGe:
			return cmp >= 0
		}
		return false
	}
	if sameDirection(a.Op, b.Op) {
		switch a.Op {
		case OpLt:
			return cmp < 0 || (cmp == 0 && b.Op == OpLt)
		case OpLe:
			return cmp <= 0
		case OpGt:
			return cmp > 0 || (cmp == 0 && b.Op == OpGt)
		case OpGe:
			return cmp >= 0
		}
	}
	return false
}

func sameDirection(a, b Op) bool {
	lt := func(op Op) bool { return op == OpLt || op == OpLe }
	return lt(a) == lt(b)
}

// rangeAdmits reports whether value v satisfies `x op bound`.
func rangeAdmits(op Op, bound, v float64) bool {
	switch op {
	case OpLt:
		return v < bound
	case OpLe:
		return v <= bound
	case OpGt:
		return v > bound
	case OpGe:
		return v >= bound
	default:
		return false
	}
}

// rangeCoversRange reports whether `x aop abound` covers `x bop bbound`.
func rangeCoversRange(aop Op, abound float64, bop Op, bbound float64) bool {
	if !sameDirection(aop, bop) {
		return false
	}
	switch aop {
	case OpLt:
		if bop == OpLt {
			return bbound <= abound
		}
		return bbound < abound // b: x<=bb ⊂ a: x<ab iff bb<ab
	case OpLe:
		return bbound <= abound
	case OpGt:
		if bop == OpGt {
			return bbound >= abound
		}
		return bbound > abound
	case OpGe:
		return bbound >= abound
	default:
		return false
	}
}

// Covers reports (conservatively) whether filter f covers filter g:
// every event matching g also matches f. It holds when every constraint
// of f is covered by at least one constraint of g.
func (f *Filter) Covers(g *Filter) bool {
	for _, fc := range f.constraints {
		covered := false
		for _, gc := range g.constraints {
			if CoversConstraint(fc, gc) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
