package event

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestInlineSpillBoundary exercises the representation switch at
// exactly InlineAttrs attributes and up to MaxAttrs: sorted iteration,
// Get/Has/Delete and Len must behave identically on both sides of the
// boundary.
func TestInlineSpillBoundary(t *testing.T) {
	for _, n := range []int{InlineAttrs - 1, InlineAttrs, InlineAttrs + 1, MaxAttrs} {
		t.Run(fmt.Sprintf("attrs=%d", n), func(t *testing.T) {
			e := New()
			want := make(map[string]int64, n)
			// Insert in reverse order so every insert shifts.
			for i := n - 1; i >= 0; i-- {
				name := fmt.Sprintf("k%03d", i)
				e.SetInt(name, int64(i))
				want[name] = int64(i)
			}
			if e.Len() != n {
				t.Fatalf("Len = %d, want %d", e.Len(), n)
			}
			spilled := e.spill != nil
			if wantSpill := n > InlineAttrs; spilled != wantSpill {
				t.Fatalf("spilled = %v at %d attrs, want %v", spilled, n, wantSpill)
			}
			// At iterates in sorted order and agrees with Get.
			prev := ""
			for i := 0; i < e.Len(); i++ {
				name, v := e.At(i)
				if name <= prev {
					t.Fatalf("At order broken: %q after %q", name, prev)
				}
				prev = name
				iv, _ := v.Int()
				if iv != want[name] {
					t.Fatalf("At(%d) = %s=%d, want %d", i, name, iv, want[name])
				}
				if gv, ok := e.Get(name); !ok || !gv.Equal(v) {
					t.Fatalf("Get(%q) disagrees with At", name)
				}
			}
			// Overwrite keeps the count; delete shrinks it.
			e.SetInt("k000", 999)
			if e.Len() != n {
				t.Fatalf("overwrite changed Len to %d", e.Len())
			}
			if v, _ := e.Get("k000"); !v.Equal(Int(999)) {
				t.Fatal("overwrite lost")
			}
			e.Delete("k000")
			if e.Len() != n-1 || e.Has("k000") {
				t.Fatal("delete failed")
			}
		})
	}
}

// TestAtPanicsOutOfRange pins the At bounds contract.
func TestAtPanicsOutOfRange(t *testing.T) {
	e := New().SetInt("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("At(1) on a 1-attribute event did not panic")
		}
	}()
	e.At(1)
}

// TestAppendFastPath pins Append: sorted names append without
// searching, an out-of-order or duplicate name is refused unchanged.
func TestAppendFastPath(t *testing.T) {
	e := New()
	for _, name := range []string{"a", "b", "c"} {
		if !e.Append(name, Int(1)) {
			t.Fatalf("Append(%q) refused", name)
		}
	}
	if e.Append("b", Int(2)) {
		t.Fatal("out-of-order Append accepted")
	}
	if e.Append("c", Int(2)) {
		t.Fatal("duplicate Append accepted")
	}
	if e.Len() != 3 {
		t.Fatalf("Len = %d after refused appends", e.Len())
	}
	if v, _ := e.Get("c"); !v.Equal(Int(1)) {
		t.Fatal("refused Append mutated the event")
	}
}

// TestCloneLazyInline pins the lazy clone for small events: cloning an
// inline event allocates only the Event struct itself (the attribute
// storage rides inside it) and byte values share backing arrays.
func TestCloneLazyInline(t *testing.T) {
	e := New().SetBytes("raw", []byte{1, 2, 3}).SetInt("n", 5)
	allocs := testing.AllocsPerRun(100, func() {
		cp := e.Clone()
		_ = cp
	})
	if allocs > 1 {
		t.Fatalf("inline Clone allocates %.1f objects, want ≤ 1 (the struct)", allocs)
	}
}

// TestCloneLazySpill pins copy-on-write for spilled events: the clone
// shares the attribute store (O(1) clone regardless of size) until one
// side writes, and writes never leak across.
func TestCloneLazySpill(t *testing.T) {
	spilled := func() *Event {
		e := New()
		for i := 0; i < 2*InlineAttrs; i++ {
			e.SetInt(fmt.Sprintf("k%02d", i), int64(i))
		}
		if e.spill == nil {
			t.Fatal("test event did not spill")
		}
		return e
	}

	// Clone is O(1): no per-attribute copying, only the struct.
	scratch := spilled()
	allocs := testing.AllocsPerRun(100, func() {
		c := scratch.Clone()
		_ = c
	})
	if allocs > 1 {
		t.Fatalf("spilled Clone allocates %.1f objects, want ≤ 1", allocs)
	}

	e := spilled()
	cp := e.Clone()
	if cp.spill != e.spill {
		t.Fatal("clone did not share the spill store")
	}
	if got := e.spill.refs.Load(); got != 2 {
		t.Fatalf("shared store refs = %d, want 2", got)
	}

	// Write to the clone: copies first, original untouched.
	cp.SetInt("k00", -1)
	if cp.spill == e.spill {
		t.Fatal("clone write did not copy the shared store")
	}
	if v, _ := e.Get("k00"); !v.Equal(Int(0)) {
		t.Fatal("clone write leaked into original")
	}
	// Original regained sole ownership: its next write is in place.
	if got := e.spill.refs.Load(); got != 1 {
		t.Fatalf("original store refs = %d after clone detached, want 1", got)
	}
	before := e.spill
	e.SetInt("k01", -2)
	if e.spill != before {
		t.Fatal("sole-owner write copied needlessly")
	}
	if v, _ := cp.Get("k01"); !v.Equal(Int(1)) {
		t.Fatal("original write leaked into detached clone")
	}
}

// TestCloneConcurrentOnSharedEvent exercises the bus fan-out pattern:
// many goroutines cloning one shared, read-only event concurrently
// (run under -race in CI).
func TestCloneConcurrentOnSharedEvent(t *testing.T) {
	e := New()
	for i := 0; i < 2*InlineAttrs; i++ {
		e.SetInt(fmt.Sprintf("k%02d", i), int64(i))
	}
	done := make(chan *Event, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			cp := e.Clone()
			cp.SetInt("mine", int64(g))
			done <- cp
		}(g)
	}
	for g := 0; g < 8; g++ {
		cp := <-done
		if cp.Len() != e.Len()+1 {
			t.Fatalf("clone Len = %d", cp.Len())
		}
	}
	if !e.Has("k00") || e.Has("mine") {
		t.Fatal("original corrupted by concurrent clones")
	}
}

// TestPoolLifecycle pins the recycled-event contract: Acquire/Release
// round-trips through the free list, Retain defers recycling, and
// events from New ignore the lifecycle entirely.
func TestPoolLifecycle(t *testing.T) {
	e := Acquire()
	e.SetInt("a", 1)
	e.Retain()
	e.Release()
	if e.Len() != 1 {
		t.Fatal("event cleared while a reference remained")
	}
	e.Release() // last reference: cleared and recycled
	// The recycled struct may be reused by anyone; check via a fresh
	// Acquire that state never leaks.
	f := Acquire()
	defer f.Release()
	if f.Len() != 0 || f.Sender != 0 || f.Seq != 0 {
		t.Fatalf("recycled event not cleared: %v", f)
	}

	plain := New().SetInt("a", 1)
	plain.Release() // no-op
	plain.Release() // still a no-op, not a double free
	if v, ok := plain.Get("a"); !ok || !v.Equal(Int(1)) {
		t.Fatal("Release touched a non-pooled event")
	}

	acq, rec := PoolStats()
	if acq == 0 || rec == 0 {
		t.Fatalf("pool stats not counting: acquired=%d recycled=%d", acq, rec)
	}
}

// TestRandomizedAgainstMap cross-checks the inline representation
// against a plain map oracle under a random operation mix.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := New()
	oracle := map[string]Value{}
	names := make([]string, 40)
	for i := range names {
		names[i] = fmt.Sprintf("n%02d", i)
	}
	for op := 0; op < 5000; op++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(3) {
		case 0:
			v := Int(int64(op))
			e.Set(name, v)
			oracle[name] = v
		case 1:
			e.Delete(name)
			delete(oracle, name)
		case 2:
			v, ok := e.Get(name)
			ov, ook := oracle[name]
			if ok != ook || (ok && !v.Equal(ov)) {
				t.Fatalf("op %d: Get(%q) = %v,%v; oracle %v,%v", op, name, v, ok, ov, ook)
			}
		}
		if e.Len() != len(oracle) {
			t.Fatalf("op %d: Len %d != oracle %d", op, e.Len(), len(oracle))
		}
	}
	// Final sweep: sorted iteration matches the oracle exactly.
	sorted := make([]string, 0, len(oracle))
	for n := range oracle {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for i, n := range sorted {
		name, v := e.At(i)
		if name != n || !v.Equal(oracle[n]) {
			t.Fatalf("At(%d) = %q, want %q", i, name, n)
		}
	}
}
