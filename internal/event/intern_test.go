package event

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternSeedVocabulary: the core SMC vocabulary is interned from
// process start and lookups return the shared instance.
func TestInternSeedVocabulary(t *testing.T) {
	for _, name := range []string{AttrType, AttrMember, AttrDeviceType, TypeNewMember, TypeAlarm, "value"} {
		got, ok := LookupIntern([]byte(name))
		if !ok || got != name {
			t.Fatalf("seed name %q not interned (ok=%v got=%q)", name, ok, got)
		}
	}
}

// TestInternLookupNoAlloc: the hit path is allocation-free — the point
// of the table.
func TestInternLookupNoAlloc(t *testing.T) {
	key := []byte(AttrType)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := LookupIntern(key); !ok {
			t.Fatal("seeded name missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("interned lookup allocated %.1f times per run", allocs)
	}
}

// TestInternPromotion: an unknown name seen internPromoteAfter times
// is promoted into the table automatically.
func TestInternPromotion(t *testing.T) {
	name := []byte("promotion-test-name-xq7")
	if _, ok := LookupIntern(name); ok {
		t.Fatal("test name unexpectedly pre-interned")
	}
	for i := 0; i < internPromoteAfter; i++ {
		LookupIntern(name)
	}
	got, ok := LookupIntern(name)
	if !ok || got != string(name) {
		t.Fatalf("name not promoted after %d sightings (ok=%v)", internPromoteAfter+1, ok)
	}
}

// TestInternExplicit: Intern registers immediately, and empty strings
// are ignored.
func TestInternExplicit(t *testing.T) {
	Intern("explicit-intern-test-xq9", "")
	if _, ok := LookupIntern([]byte("explicit-intern-test-xq9")); !ok {
		t.Fatal("explicitly interned name missed")
	}
	if _, ok := LookupIntern(nil); ok {
		t.Fatal("empty name should never intern")
	}
}

// TestInternConcurrent: lookups and promotions race-free under load
// (run with -race).
func TestInternConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				LookupIntern([]byte(AttrType))
				LookupIntern([]byte(fmt.Sprintf("conc-intern-%d-%d", g, i%4)))
				if i%50 == 0 {
					Intern(fmt.Sprintf("conc-explicit-%d-%d", g, i))
				}
			}
		}(g)
	}
	wg.Wait()
	if n, _ := InternStats(); n == 0 {
		t.Fatal("intern table empty after concurrent load")
	}
}
