package event

import (
	"sync"
	"sync/atomic"
)

// Recycled-event lifecycle. The publish hot path's one residual
// allocation after the inline attribute refactor is the Event struct
// itself; publishers that control their subscribers opt into recycling
// it through a free list:
//
//	e := event.Acquire()
//	e.SetStr(event.AttrType, "reading")...
//	svc.Publish(e) // ownership moves to the bus
//
// The bus retains a reference per proxy it enqueues the event to and
// releases its own once dispatch finishes; each proxy releases after
// the event is encoded for the wire. When the count hits zero the
// event is cleared and recycled. Events built with New are never
// recycled: Retain/Release are no-ops for them, so every existing
// caller keeps plain garbage-collected semantics.
//
// A pooled event is recycled as soon as its refcount drains — for a
// purely local fan-out that is when the synchronous subscriber
// callbacks have returned. Subscribers of pooled traffic must
// therefore Clone anything they keep beyond the callback. Handing a
// pooled event to subscribers that retain is a use-after-release bug;
// when in doubt, publish events from New.

// eventPool recycles Event structs released via Release.
var eventPool = sync.Pool{New: func() interface{} { return new(Event) }}

// poolStats counts pool traffic for observability (leak detection in
// tests mirrors the wire.PacketPool counters).
var poolAcquired, poolRecycled atomic.Uint64

// Acquire returns an empty event from the free list with a reference
// count of one. Release it (directly, or by publishing it on a bus
// that manages the lifecycle) to recycle it.
func Acquire() *Event {
	e := eventPool.Get().(*Event)
	e.pooled = true
	atomic.StoreInt32(&e.refs, 1)
	poolAcquired.Add(1)
	return e
}

// Retain adds a reference to a pooled event and returns it. It is a
// no-op for events built with New.
func (e *Event) Retain() *Event {
	if e != nil && e.pooled {
		atomic.AddInt32(&e.refs, 1)
	}
	return e
}

// Release drops one reference; the last release clears the event and
// returns it to the free list. It is a no-op for events built with
// New, so lifecycle-managing code may call it unconditionally.
func (e *Event) Release() {
	if e == nil || !e.pooled {
		return
	}
	if atomic.AddInt32(&e.refs, -1) != 0 {
		return
	}
	home := e.home
	e.dropSpill()
	e.releaseBacking() // borrowed decode: let the backing packet recycle
	*e = Event{}       // clear attribute names/values so recycled events pin nothing
	poolRecycled.Add(1)
	if home != nil && home.put(e) {
		return
	}
	eventPool.Put(e)
}

// PoolStats reports the number of events acquired from and recycled to
// the free list since process start.
func PoolStats() (acquired, recycled uint64) {
	return poolAcquired.Load(), poolRecycled.Load()
}
