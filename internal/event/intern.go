package event

import (
	"sync"
	"sync/atomic"
)

// Attribute-name interning. The receive path decodes the same small
// vocabulary of attribute names over and over (the paper's workloads
// are periodic sensor readings, §II-C: "type", "value", "kind", ...),
// and the seed decoder paid one string allocation per name per packet.
// The intern table maps the raw name bytes of an inbound packet to one
// shared, immutable string, so decoding a well-known name allocates
// nothing and repeated events share storage.
//
// The table is read-mostly and lock-free on the hot path: lookups load
// an immutable map through an atomic pointer (the compiler elides the
// []byte→string conversion for map probes, so a hit costs one hash and
// zero allocations). It grows copy-on-write: names that miss are
// counted under a mutex, and a name seen internPromoteAfter times is
// promoted into a fresh map that replaces the pointer. Both the table
// and the miss-tracking map are bounded so that an adversary streaming
// random names can neither grow the table without limit nor keep the
// counting lock hot forever — once the tracking map fills, unknown
// names stop being counted at the cost of one atomic load.
const (
	// internPromoteAfter is how many decode misses promote a name into
	// the intern table.
	internPromoteAfter = 8
	// internMaxEntries bounds the intern table itself.
	internMaxEntries = 512
	// internTrackMax bounds the miss-tracking map.
	internTrackMax = 4096
)

// internTable is the immutable snapshot the hot path reads.
type internTable struct {
	m map[string]string
}

var (
	interned atomic.Pointer[internTable]

	// internMu guards promotion: the miss counters and the
	// copy-on-write replacement of the table snapshot.
	internMu       sync.Mutex
	internMisses   map[string]int
	internCounting atomic.Bool
)

func init() {
	interned.Store(&internTable{m: map[string]string{}})
	internMisses = make(map[string]int)
	internCounting.Store(true)

	// Seed the core vocabulary: the names and event classes the SMC
	// services themselves emit, plus the sensor/homecare vocabulary of
	// the examples (§II-C's body-sensor readings).
	Intern(
		AttrType, AttrMember, AttrDeviceType,
		TypeNewMember, TypePurgeMember, TypeAlarm,
		"value", "unit", "kind", "source", "name", "reason",
		"target", "policy", "reading", "pulse", "temperature",
		"seq", "level", "state", "patient", "room",
	)
}

// Intern registers strings in the intern table so that decoding them
// from the wire is allocation-free from the first packet. Applications
// with a known event vocabulary call it once at startup; names learned
// from traffic are promoted automatically after internPromoteAfter
// sightings. Beyond internMaxEntries entries additional strings are
// ignored.
func Intern(names ...string) {
	internMu.Lock()
	defer internMu.Unlock()
	cur := interned.Load().m
	next := make(map[string]string, len(cur)+len(names))
	for k, v := range cur {
		next[k] = v
	}
	for _, n := range names {
		if n == "" || len(next) >= internMaxEntries {
			continue
		}
		if _, ok := next[n]; !ok {
			next[n] = n
		}
	}
	interned.Store(&internTable{m: next})
}

// LookupIntern returns the shared interned copy of the string spelled
// by b, if present. A miss is counted towards automatic promotion and
// returns ok=false — the caller decodes the name some other way
// (borrowing it from the packet, or copying). The hit path is
// lock-free and allocation-free.
func LookupIntern(b []byte) (string, bool) {
	if s, ok := interned.Load().m[string(b)]; ok {
		return s, true
	}
	if len(b) > 0 && len(b) <= MaxNameLen && internCounting.Load() {
		noteInternMiss(b)
	}
	return "", false
}

// lookupInternStr is LookupIntern for an existing string (promotion on
// Clone swaps borrowed strings for their interned instances). It never
// counts misses: promotion already has an owned copy to fall back to.
func lookupInternStr(s string) (string, bool) {
	v, ok := interned.Load().m[s]
	return v, ok
}

// noteInternMiss counts a decode of an unknown name and promotes it
// once it proves hot.
func noteInternMiss(b []byte) {
	internMu.Lock()
	defer internMu.Unlock()
	n, tracked := internMisses[string(b)]
	if !tracked && len(internMisses) >= internTrackMax {
		// Tracking budget exhausted: learning is over for good.
		// Without this, high-cardinality traffic (unique IDs,
		// stringified readings) would keep paying this mutex on every
		// decode forever; the Store makes the hot path's
		// internCounting.Load() fail first, honouring the documented
		// one-atomic-load bound for unknown strings.
		internCounting.Store(false)
		return
	}
	n++
	if n < internPromoteAfter {
		internMisses[string(b)] = n // inserts an owned copy of the key
		return
	}
	delete(internMisses, string(b))
	cur := interned.Load().m
	if len(cur) >= internMaxEntries {
		// Table full: promotion is over for good, so counting is pure
		// overhead from here on.
		internCounting.Store(false)
		return
	}
	name := string(b)
	next := make(map[string]string, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[name] = name
	interned.Store(&internTable{m: next})
}

// InternStats reports the intern table size and the number of names
// currently tracked for promotion (observability and tests).
func InternStats() (entries, tracked int) {
	internMu.Lock()
	defer internMu.Unlock()
	return len(interned.Load().m), len(internMisses)
}
