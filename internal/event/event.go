package event

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"github.com/amuse/smc/internal/ident"
)

// Well-known attribute names used by SMC core services. Application
// events are free to use any other names.
const (
	// AttrType carries the event class ("new-member", "alarm", ...).
	AttrType = "type"
	// AttrMember carries the member ID in discovery events.
	AttrMember = "member"
	// AttrDeviceType carries the device class in discovery events so
	// that the bootstrap service can choose a proxy type (§III-C).
	AttrDeviceType = "device-type"
)

// Event classes published by the core services.
const (
	TypeNewMember   = "new-member"
	TypePurgeMember = "purge-member"
	TypeAlarm       = "alarm"
)

// Limits on event structure, keeping the memory footprint bounded for
// the constrained target platform (§II-C).
const (
	MaxAttrs      = 64
	MaxNameLen    = 255
	MaxStringLen  = 64 * 1024
	MaxBytesLen   = 64 * 1024
	MaxEventBytes = 128 * 1024
)

// InlineAttrs is the number of attributes an Event stores inline in its
// own struct, with no separate heap allocation. The paper's workloads
// (§II-C) are dominated by small sensor readings; events beyond this
// size spill to a shared, copy-on-write heap slice up to MaxAttrs.
const InlineAttrs = 8

var (
	// ErrTooManyAttrs reports an event exceeding MaxAttrs.
	ErrTooManyAttrs = errors.New("event: too many attributes")
	// ErrBadName reports an empty or over-long attribute name.
	ErrBadName = errors.New("event: bad attribute name")
	// ErrBadValue reports an invalid or over-long attribute value.
	ErrBadValue = errors.New("event: bad attribute value")
)

// attr is one named attribute. Events keep attrs sorted by name, so
// lookups are binary searches and iteration order is deterministic
// without sorting on every encode.
type attr struct {
	name string
	val  Value
}

// spillStore holds the attributes of an event that outgrew the inline
// array. The store is shared between an event and its clones
// (copy-on-write): refs counts the events referencing it, and a
// mutation through an event that is not the sole owner copies first.
// refs is manipulated atomically so that concurrent Clones of one
// shared, immutable event (the bus's zero-copy fan-out) are safe.
type spillStore struct {
	refs  atomic.Int32
	attrs []attr
}

// Event is a set of named, typed attributes plus delivery metadata.
// Attributes are stored inline, sorted by name: the common small event
// (≤ InlineAttrs attributes) costs a single allocation for the Event
// itself — or none at all when taken from the Pool — and larger events
// spill to a copy-on-write heap slice. Events are value-like: Clone
// before mutation when sharing.
type Event struct {
	// Sender identifies the publishing service.
	Sender ident.ID
	// Seq is the publisher-assigned sequence number used for
	// per-sender FIFO ordering and duplicate suppression (§II-C).
	Seq uint64
	// Stamp is the publish time (informational; ordering never
	// depends on clocks).
	Stamp time.Time
	// Cursor is the durable-log position of a replayed delivery, set
	// by the bus's durable walker on events it decodes from the log.
	// Zero on live (non-durable) events — cursors start at 1 — and
	// never part of the wire event encoding: it travels only in the
	// PktEventDurable framing.
	Cursor uint64

	n      int               // attribute count
	inline [InlineAttrs]attr // storage while n <= InlineAttrs and spill == nil
	spill  *spillStore       // storage once spilled; inline is then unused

	// pooled/refs implement the recycled-event lifecycle (see pool.go).
	// refs is a plain int32 updated with sync/atomic so that Event
	// stays copyable (Clone copies the struct).
	pooled bool
	refs   int32
	// home, when non-nil, is the owner-local FreeList this event was
	// acquired from; the final Release routes it back there instead of
	// the global pool (see FreeList).
	home *FreeList

	// borrowed/backing implement the borrow-from-packet decode: the
	// attribute names and string/bytes payloads of a borrowed event
	// alias an external buffer (a pooled inbound packet's payload)
	// instead of owning copies. backing, when non-nil, holds the
	// reference that keeps that buffer alive; it is released when the
	// event's storage is reclaimed. Clone promotes borrowed strings to
	// owned copies, so a clone never depends on the backing buffer.
	borrowed bool
	backing  Backing
}

// Backing is the lifetime handle of a buffer a borrowed event's
// strings alias. wire.Packet implements it.
type Backing interface{ Release() }

// New returns an empty event.
func New() *Event { return &Event{} }

// NewTyped returns an event whose "type" attribute is set to class.
func NewTyped(class string) *Event {
	e := New()
	e.Set(AttrType, Str(class))
	return e
}

// attrs returns the live attribute slice (read-only use).
func (e *Event) attrSlice() []attr {
	if e.spill != nil {
		return e.spill.attrs[:e.n]
	}
	return e.inline[:e.n]
}

// search returns the insertion index for name and whether an attribute
// with that exact name is already present (binary search).
func (e *Event) search(name string) (int, bool) {
	s := e.attrSlice()
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo].name == name
}

// ensureOwned makes the event the sole owner of writable attribute
// storage with room for at least one more attribute, copying a shared
// or full spill store as needed (copy-on-write).
func (e *Event) ensureOwned(grow bool) {
	if e.spill == nil {
		return
	}
	need := e.n
	if grow {
		need++
	}
	if e.spill.refs.Load() == 1 && cap(e.spill.attrs) >= need {
		return
	}
	ns := &spillStore{attrs: make([]attr, e.n, spillCap(need))}
	ns.refs.Store(1)
	copy(ns.attrs, e.spill.attrs[:e.n])
	e.dropSpill()
	e.spill = ns
}

// spillCap picks the capacity of a fresh spill store.
func spillCap(need int) int {
	c := 2 * InlineAttrs
	for c < need {
		c *= 2
	}
	if c > MaxAttrs {
		c = MaxAttrs
	}
	if c < need {
		c = need
	}
	return c
}

// dropSpill releases the event's reference on its spill store.
func (e *Event) dropSpill() {
	if e.spill != nil {
		e.spill.refs.Add(-1)
		e.spill = nil
	}
}

// Set stores an attribute, replacing any previous value under the name.
// It returns the event to allow chaining.
func (e *Event) Set(name string, v Value) *Event {
	i, found := e.search(name)
	if found {
		if e.spill != nil {
			e.ensureOwned(false)
			e.spill.attrs[i].val = v
		} else {
			e.inline[i].val = v
		}
		return e
	}
	e.insert(i, name, v)
	return e
}

// Append appends an attribute whose name sorts strictly after every
// attribute already present, skipping the binary search and the
// insertion shift. It reports false — leaving the event unchanged —
// when the name does not sort last; the caller falls back to Set.
// Decoders producing name-sorted attribute streams (the wire format
// encodes events in sorted order) use it to build events in O(n).
func (e *Event) Append(name string, v Value) bool {
	if e.n > 0 {
		s := e.attrSlice()
		if s[e.n-1].name >= name {
			return false
		}
	}
	e.insert(e.n, name, v)
	return true
}

// insert places an attribute at sorted position i.
func (e *Event) insert(i int, name string, v Value) {
	switch {
	case e.spill == nil && e.n < InlineAttrs:
		copy(e.inline[i+1:e.n+1], e.inline[i:e.n])
		e.inline[i] = attr{name: name, val: v}
	case e.spill == nil:
		// Inline array full: spill to the heap.
		ns := &spillStore{attrs: make([]attr, e.n+1, spillCap(e.n+1))}
		ns.refs.Store(1)
		copy(ns.attrs, e.inline[:i])
		ns.attrs[i] = attr{name: name, val: v}
		copy(ns.attrs[i+1:], e.inline[i:e.n])
		e.spill = ns
	default:
		e.ensureOwned(true)
		e.spill.attrs = append(e.spill.attrs, attr{})
		copy(e.spill.attrs[i+1:], e.spill.attrs[i:e.n])
		e.spill.attrs[i] = attr{name: name, val: v}
	}
	e.n++
}

// SetInt is shorthand for Set(name, Int(v)).
func (e *Event) SetInt(name string, v int64) *Event { return e.Set(name, Int(v)) }

// SetFloat is shorthand for Set(name, Float(v)).
func (e *Event) SetFloat(name string, v float64) *Event { return e.Set(name, Float(v)) }

// SetStr is shorthand for Set(name, Str(v)).
func (e *Event) SetStr(name, v string) *Event { return e.Set(name, Str(v)) }

// SetBool is shorthand for Set(name, Bool(v)).
func (e *Event) SetBool(name string, v bool) *Event { return e.Set(name, Bool(v)) }

// SetBytes is shorthand for Set(name, Bytes(v)).
func (e *Event) SetBytes(name string, v []byte) *Event { return e.Set(name, Bytes(v)) }

// Get returns the attribute value under name; the second result reports
// whether it exists. Lookup is a binary search over the sorted
// attribute slice — O(log n) with no hashing.
func (e *Event) Get(name string) (Value, bool) {
	i, found := e.search(name)
	if !found {
		return Value{}, false
	}
	return e.attrSlice()[i].val, true
}

// Has reports whether the event carries an attribute under name.
func (e *Event) Has(name string) bool {
	_, found := e.search(name)
	return found
}

// Delete removes the attribute under name if present.
func (e *Event) Delete(name string) {
	i, found := e.search(name)
	if !found {
		return
	}
	if e.spill != nil {
		e.ensureOwned(false)
		s := e.spill.attrs
		copy(s[i:e.n-1], s[i+1:e.n])
		s[e.n-1] = attr{}
		e.spill.attrs = s[:e.n-1]
	} else {
		copy(e.inline[i:e.n-1], e.inline[i+1:e.n])
		e.inline[e.n-1] = attr{}
	}
	e.n--
}

// Len reports the number of attributes.
func (e *Event) Len() int { return e.n }

// At returns the attribute at index i in sorted name order. It is the
// hot-loop accessor: matching, sizing and encoding iterate with
// Len/At instead of closure-based Range, touching no heap and
// materialising no name slice. It panics when i is out of range.
func (e *Event) At(i int) (name string, v Value) {
	if i < 0 || i >= e.n {
		panic("event: At index out of range")
	}
	a := &e.attrSlice()[i]
	return a.name, a.val
}

// Type returns the "type" attribute if it is a string, else "".
func (e *Event) Type() string {
	v, ok := e.Get(AttrType)
	if !ok {
		return ""
	}
	s, _ := v.Str()
	return s
}

// Names returns the attribute names in sorted order. The slice is fresh
// on every call.
func (e *Event) Names() []string {
	s := e.attrSlice()
	names := make([]string, len(s))
	for i := range s {
		names[i] = s[i].name
	}
	return names
}

// Range calls fn for every attribute in sorted name order; if fn returns
// false the iteration stops. Attributes are stored sorted, so Range
// never sorts or allocates; hot loops should still prefer Len/At,
// which avoid the closure.
func (e *Event) Range(fn func(name string, v Value) bool) {
	s := e.attrSlice()
	for i := range s {
		if !fn(s[i].name, s[i].val) {
			return
		}
	}
}

// Clone returns a copy of the event that may be mutated independently.
// The copy is lazy: inline attributes are copied as part of the struct
// (no extra allocation), a spilled attribute store is shared
// copy-on-write until either event next mutates it, and byte-slice
// values keep sharing their backing arrays (Values are immutable
// through the public API — Bytes copies on read). Cloning a borrowed
// event promotes: every name and string/bytes payload is copied into
// owned memory (well-known names resolve to their interned instance),
// so the clone is valid past the borrowed buffer's release. Clone is
// safe to call concurrently on a shared, read-only event.
func (e *Event) Clone() *Event {
	cp := &Event{
		Sender: e.Sender,
		Seq:    e.Seq,
		Stamp:  e.Stamp,
		Cursor: e.Cursor,
		n:      e.n,
	}
	if e.borrowed {
		// A borrowed event's strings alias a buffer whose lifetime the
		// clone does not share, so the clone owns everything outright
		// (no spill sharing either — the shared store would carry the
		// borrowed strings).
		src := e.attrSlice()
		dst := cp.inline[:]
		if e.n > InlineAttrs {
			ns := &spillStore{attrs: make([]attr, e.n, spillCap(e.n))}
			ns.refs.Store(1)
			cp.spill = ns
			dst = ns.attrs
		}
		for i := range src {
			dst[i] = attr{name: promoteString(src[i].name), val: promoteValue(src[i].val)}
		}
		return cp
	}
	if e.spill != nil {
		e.spill.refs.Add(1)
		cp.spill = e.spill
	} else {
		cp.inline = e.inline
	}
	return cp
}

// promoteString returns an owned copy of s — the shared interned
// instance when s is a well-known string, a fresh copy otherwise.
func promoteString(s string) string {
	if in, ok := lookupInternStr(s); ok {
		return in
	}
	return strings.Clone(s)
}

// promoteValue returns v with any borrowed string/bytes payload copied
// into owned memory.
func promoteValue(v Value) Value {
	switch v.typ {
	case TypeString:
		v.str = promoteString(v.str)
	case TypeBytes:
		if v.raw != nil {
			v.raw = append(make([]byte, 0, len(v.raw)), v.raw...)
		}
	}
	return v
}

// Borrow marks the event's attribute strings as aliasing an external
// buffer and hands the event the reference that keeps the buffer alive
// (r may be nil when the buffer's lifetime is guaranteed some other
// way, e.g. plain garbage-collected memory). It is called by the
// borrowing wire decoder; the backing reference is released when the
// event's storage is reclaimed (the last Release of a pooled event, or
// Clear).
func (e *Event) Borrow(r Backing) {
	e.borrowed = true
	if r != nil {
		if e.backing != nil {
			e.backing.Release()
		}
		e.backing = r
	}
}

// Borrowed reports whether the event's strings alias an external
// buffer. Borrowed data is valid for the event's lifetime; Clone to
// keep attributes past it.
func (e *Event) Borrowed() bool { return e.borrowed }

// Pooled reports whether the event came from Acquire and is
// reference-counted.
func (e *Event) Pooled() bool { return e.pooled }

// releaseBacking drops the borrowed-buffer reference, if any.
func (e *Event) releaseBacking() {
	if e.backing != nil {
		e.backing.Release()
		e.backing = nil
	}
	e.borrowed = false
}

// Clear removes every attribute and releases any borrowed backing
// buffer, leaving an empty event whose metadata (Sender, Seq, Stamp)
// is untouched. Decoders reuse one event across packets with it.
func (e *Event) Clear() {
	e.dropSpill()
	e.inline = [InlineAttrs]attr{}
	e.n = 0
	e.releaseBacking()
}

// Equal reports whether two events carry identical attributes and
// metadata.
func (e *Event) Equal(o *Event) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Sender != o.Sender || e.Seq != o.Seq || e.n != o.n {
		return false
	}
	es, os := e.attrSlice(), o.attrSlice()
	for i := range es {
		if es[i].name != os[i].name || !es[i].val.Equal(os[i].val) {
			return false
		}
	}
	return true
}

// Validate checks the event against the structural limits.
func (e *Event) Validate() error {
	if e.n > MaxAttrs {
		return fmt.Errorf("%w: %d > %d", ErrTooManyAttrs, e.n, MaxAttrs)
	}
	s := e.attrSlice()
	for i := range s {
		if err := validateName(s[i].name); err != nil {
			return err
		}
		if err := validateValue(s[i].val); err != nil {
			return fmt.Errorf("%w: attribute %q", err, s[i].name)
		}
	}
	return nil
}

func validateName(n string) error {
	if n == "" || len(n) > MaxNameLen {
		return fmt.Errorf("%w: %q", ErrBadName, n)
	}
	return nil
}

func validateValue(v Value) error {
	switch v.typ {
	case TypeString:
		if len(v.str) > MaxStringLen {
			return fmt.Errorf("%w: string of %d bytes", ErrBadValue, len(v.str))
		}
	case TypeBytes:
		if len(v.raw) > MaxBytesLen {
			return fmt.Errorf("%w: %d bytes", ErrBadValue, len(v.raw))
		}
	case TypeInvalid:
		return fmt.Errorf("%w: invalid value", ErrBadValue)
	}
	return nil
}

// String renders the event compactly for logs.
func (e *Event) String() string {
	var sb strings.Builder
	sb.WriteString("event{")
	fmt.Fprintf(&sb, "sender=%s seq=%d", e.Sender, e.Seq)
	e.Range(func(name string, v Value) bool {
		fmt.Fprintf(&sb, " %s=%s", name, v)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
