package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/amuse/smc/internal/ident"
)

// Well-known attribute names used by SMC core services. Application
// events are free to use any other names.
const (
	// AttrType carries the event class ("new-member", "alarm", ...).
	AttrType = "type"
	// AttrMember carries the member ID in discovery events.
	AttrMember = "member"
	// AttrDeviceType carries the device class in discovery events so
	// that the bootstrap service can choose a proxy type (§III-C).
	AttrDeviceType = "device-type"
)

// Event classes published by the core services.
const (
	TypeNewMember   = "new-member"
	TypePurgeMember = "purge-member"
	TypeAlarm       = "alarm"
)

// Limits on event structure, keeping the memory footprint bounded for
// the constrained target platform (§II-C).
const (
	MaxAttrs      = 64
	MaxNameLen    = 255
	MaxStringLen  = 64 * 1024
	MaxBytesLen   = 64 * 1024
	MaxEventBytes = 128 * 1024
)

var (
	// ErrTooManyAttrs reports an event exceeding MaxAttrs.
	ErrTooManyAttrs = errors.New("event: too many attributes")
	// ErrBadName reports an empty or over-long attribute name.
	ErrBadName = errors.New("event: bad attribute name")
	// ErrBadValue reports an invalid or over-long attribute value.
	ErrBadValue = errors.New("event: bad attribute value")
)

// Event is a set of named, typed attributes plus delivery metadata.
// Events are value-like: Clone before mutation when sharing.
type Event struct {
	// Sender identifies the publishing service.
	Sender ident.ID
	// Seq is the publisher-assigned sequence number used for
	// per-sender FIFO ordering and duplicate suppression (§II-C).
	Seq uint64
	// Stamp is the publish time (informational; ordering never
	// depends on clocks).
	Stamp time.Time

	attrs map[string]Value
}

// New returns an empty event.
func New() *Event {
	return &Event{attrs: make(map[string]Value, 8)}
}

// NewTyped returns an event whose "type" attribute is set to class.
func NewTyped(class string) *Event {
	e := New()
	e.Set(AttrType, Str(class))
	return e
}

// Set stores an attribute, replacing any previous value under the name.
// It returns the event to allow chaining.
func (e *Event) Set(name string, v Value) *Event {
	if e.attrs == nil {
		e.attrs = make(map[string]Value, 8)
	}
	e.attrs[name] = v
	return e
}

// SetInt is shorthand for Set(name, Int(v)).
func (e *Event) SetInt(name string, v int64) *Event { return e.Set(name, Int(v)) }

// SetFloat is shorthand for Set(name, Float(v)).
func (e *Event) SetFloat(name string, v float64) *Event { return e.Set(name, Float(v)) }

// SetStr is shorthand for Set(name, Str(v)).
func (e *Event) SetStr(name, v string) *Event { return e.Set(name, Str(v)) }

// SetBool is shorthand for Set(name, Bool(v)).
func (e *Event) SetBool(name string, v bool) *Event { return e.Set(name, Bool(v)) }

// SetBytes is shorthand for Set(name, Bytes(v)).
func (e *Event) SetBytes(name string, v []byte) *Event { return e.Set(name, Bytes(v)) }

// Get returns the attribute value under name; the second result reports
// whether it exists.
func (e *Event) Get(name string) (Value, bool) {
	v, ok := e.attrs[name]
	return v, ok
}

// Has reports whether the event carries an attribute under name.
func (e *Event) Has(name string) bool {
	_, ok := e.attrs[name]
	return ok
}

// Delete removes the attribute under name if present.
func (e *Event) Delete(name string) {
	delete(e.attrs, name)
}

// Len reports the number of attributes.
func (e *Event) Len() int { return len(e.attrs) }

// Type returns the "type" attribute if it is a string, else "".
func (e *Event) Type() string {
	v, ok := e.attrs[AttrType]
	if !ok {
		return ""
	}
	s, _ := v.Str()
	return s
}

// Names returns the attribute names in sorted order. The slice is fresh
// on every call.
func (e *Event) Names() []string {
	names := make([]string, 0, len(e.attrs))
	for n := range e.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// namesPool recycles the scratch name slices Range sorts into, keeping
// ordered iteration allocation-free on the bus hot path.
var namesPool = sync.Pool{New: func() interface{} {
	s := make([]string, 0, 16)
	return &s
}}

// Range calls fn for every attribute in sorted name order; if fn returns
// false the iteration stops.
func (e *Event) Range(fn func(name string, v Value) bool) {
	np := namesPool.Get().(*[]string)
	names := (*np)[:0]
	for n := range e.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !fn(n, e.attrs[n]) {
			break
		}
	}
	*np = names[:0]
	namesPool.Put(np)
}

// RangeAny calls fn for every attribute in unspecified order; if fn
// returns false the iteration stops. Unlike Range it never sorts or
// allocates, so matching and sizing — which do not depend on attribute
// order — can use it on the hot path.
func (e *Event) RangeAny(fn func(name string, v Value) bool) {
	for n, v := range e.attrs {
		if !fn(n, v) {
			return
		}
	}
}

// Clone returns a deep copy of the event.
func (e *Event) Clone() *Event {
	cp := &Event{
		Sender: e.Sender,
		Seq:    e.Seq,
		Stamp:  e.Stamp,
		attrs:  make(map[string]Value, len(e.attrs)),
	}
	for n, v := range e.attrs {
		if v.typ == TypeBytes {
			v = Bytes(v.raw) // fresh backing array
		}
		cp.attrs[n] = v
	}
	return cp
}

// Equal reports whether two events carry identical attributes and
// metadata.
func (e *Event) Equal(o *Event) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Sender != o.Sender || e.Seq != o.Seq || len(e.attrs) != len(o.attrs) {
		return false
	}
	for n, v := range e.attrs {
		ov, ok := o.attrs[n]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Validate checks the event against the structural limits.
func (e *Event) Validate() error {
	if len(e.attrs) > MaxAttrs {
		return fmt.Errorf("%w: %d > %d", ErrTooManyAttrs, len(e.attrs), MaxAttrs)
	}
	for n, v := range e.attrs {
		if err := validateName(n); err != nil {
			return err
		}
		if err := validateValue(v); err != nil {
			return fmt.Errorf("%w: attribute %q", err, n)
		}
	}
	return nil
}

func validateName(n string) error {
	if n == "" || len(n) > MaxNameLen {
		return fmt.Errorf("%w: %q", ErrBadName, n)
	}
	return nil
}

func validateValue(v Value) error {
	switch v.typ {
	case TypeString:
		if len(v.str) > MaxStringLen {
			return fmt.Errorf("%w: string of %d bytes", ErrBadValue, len(v.str))
		}
	case TypeBytes:
		if len(v.raw) > MaxBytesLen {
			return fmt.Errorf("%w: %d bytes", ErrBadValue, len(v.raw))
		}
	case TypeInvalid:
		return fmt.Errorf("%w: invalid value", ErrBadValue)
	}
	return nil
}

// String renders the event compactly for logs.
func (e *Event) String() string {
	var sb strings.Builder
	sb.WriteString("event{")
	fmt.Fprintf(&sb, "sender=%s seq=%d", e.Sender, e.Seq)
	e.Range(func(name string, v Value) bool {
		fmt.Fprintf(&sb, " %s=%s", name, v)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
