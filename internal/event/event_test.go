package event

import (
	"strings"
	"testing"
)

func TestEventSetGetDelete(t *testing.T) {
	e := New()
	e.SetInt("a", 1).SetStr("b", "x").SetBool("c", true).SetFloat("d", 2.5)
	if e.Len() != 4 {
		t.Fatalf("Len = %d, want 4", e.Len())
	}
	if v, ok := e.Get("a"); !ok || !v.Equal(Int(1)) {
		t.Errorf("a = %v, %v", v, ok)
	}
	if !e.Has("b") {
		t.Error("missing b")
	}
	e.Delete("b")
	if e.Has("b") {
		t.Error("b survived delete")
	}
	if _, ok := e.Get("nope"); ok {
		t.Error("found nonexistent attribute")
	}
}

func TestEventTypeHelper(t *testing.T) {
	e := NewTyped("alarm")
	if e.Type() != "alarm" {
		t.Errorf("Type = %q", e.Type())
	}
	if New().Type() != "" {
		t.Error("empty event has a type")
	}
	e2 := New().SetInt(AttrType, 3)
	if e2.Type() != "" {
		t.Error("non-string type attribute returned as type")
	}
}

func TestNamesSortedAndRangeOrder(t *testing.T) {
	e := New().SetInt("z", 1).SetInt("a", 2).SetInt("m", 3)
	names := e.Names()
	want := []string{"a", "m", "z"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	var seen []string
	e.Range(func(name string, v Value) bool {
		seen = append(seen, name)
		return true
	})
	for i, n := range want {
		if seen[i] != n {
			t.Fatalf("Range order = %v, want %v", seen, want)
		}
	}
	// Early stop.
	count := 0
	e.Range(func(string, Value) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("Range did not stop early: %d", count)
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := New().SetBytes("raw", []byte{1, 2, 3}).SetInt("n", 5)
	e.Sender = 42
	e.Seq = 7
	cp := e.Clone()
	if !cp.Equal(e) {
		t.Fatal("clone not equal")
	}
	// Mutating the clone's bytes must not reach the original.
	v, _ := cp.Get("raw")
	b, _ := v.Bytes() // already a copy — mutate the clone via Set instead
	_ = b
	cp.SetInt("n", 6)
	if v, _ := e.Get("n"); !v.Equal(Int(5)) {
		t.Error("clone mutation leaked into original")
	}
}

func TestEqualSemantics(t *testing.T) {
	a := New().SetInt("x", 1)
	a.Sender, a.Seq = 1, 1
	b := New().SetInt("x", 1)
	b.Sender, b.Seq = 1, 1
	if !a.Equal(b) {
		t.Error("identical events unequal")
	}
	b.Seq = 2
	if a.Equal(b) {
		t.Error("different seq equal")
	}
	b.Seq = 1
	b.SetInt("x", 2)
	if a.Equal(b) {
		t.Error("different attrs equal")
	}
	var nilEvent *Event
	if a.Equal(nilEvent) {
		t.Error("event equals nil")
	}
}

func TestValidateLimits(t *testing.T) {
	e := New()
	for i := 0; i < MaxAttrs+1; i++ {
		e.SetInt(attrName(i), int64(i))
	}
	if err := e.Validate(); err == nil {
		t.Error("oversized event validated")
	}

	bad := New().Set("", Int(1))
	if err := bad.Validate(); err == nil {
		t.Error("empty attribute name validated")
	}

	long := New().SetStr("s", strings.Repeat("x", MaxStringLen+1))
	if err := long.Validate(); err == nil {
		t.Error("oversized string validated")
	}

	invalid := New().Set("v", Value{})
	if err := invalid.Validate(); err == nil {
		t.Error("invalid value validated")
	}

	ok := New().SetInt("fine", 1)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
}

func attrName(i int) string {
	return "attr-" + string(rune('a'+i%26)) + "-" + string(rune('a'+(i/26)%26)) + "-" + string(rune('a'+(i/676)%26))
}

func TestStringRendering(t *testing.T) {
	e := NewTyped("alarm").SetInt("v", 9)
	e.Sender, e.Seq = 3, 4
	s := e.String()
	if !strings.Contains(s, "seq=4") || !strings.Contains(s, `type="alarm"`) {
		t.Errorf("String = %q", s)
	}
}
