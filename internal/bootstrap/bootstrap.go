// Package bootstrap implements the proxy bootstrap mechanism of
// §III-C: a registry of proxy factories keyed by device type. The
// service reacting to "New Member" events (the bus's member manager)
// asks the registry for the appropriate concrete proxy logic for each
// newly admitted service; the registry "must therefore be initialised
// on the creation of the event bus".
package bootstrap

import (
	"fmt"
	"sync"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/proxy"
)

// Factory builds the device-specific half of a proxy for a member.
// The name is the device's self-reported name from its join request
// (actuator proxies use it to subscribe on the device's behalf).
type Factory func(member ident.ID, name string) proxy.Device

// Registry maps device types to proxy factories. The zero value is not
// usable; call NewRegistry. A Registry is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
	fallback  Factory
}

// NewRegistry returns a registry whose fallback produces pass-through
// generic proxies, so unknown device types still get "a mere forwarding
// mechanism" (§III-B).
func NewRegistry() *Registry {
	return &Registry{
		factories: make(map[string]Factory),
		fallback: func(ident.ID, string) proxy.Device {
			return &proxy.GenericDevice{}
		},
	}
}

// Register installs a factory for a device type, replacing any
// previous registration.
func (r *Registry) Register(deviceType string, f Factory) error {
	if deviceType == "" {
		return fmt.Errorf("bootstrap: empty device type")
	}
	if f == nil {
		return fmt.Errorf("bootstrap: nil factory for %q", deviceType)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[deviceType] = f
	return nil
}

// SetFallback replaces the factory used for unregistered device types.
func (r *Registry) SetFallback(f Factory) {
	if f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = f
}

// Known reports whether a dedicated factory exists for the device type.
func (r *Registry) Known(deviceType string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.factories[deviceType]
	return ok
}

// Types lists the registered device types.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for t := range r.factories {
		out = append(out, t)
	}
	return out
}

// Make builds the device logic for a member of the given type, falling
// back to the generic pass-through proxy when the type is unknown.
func (r *Registry) Make(deviceType string, member ident.ID, name string) proxy.Device {
	r.mu.RLock()
	f, ok := r.factories[deviceType]
	fb := r.fallback
	r.mu.RUnlock()
	if ok {
		return f(member, name)
	}
	return fb(member, name)
}
