package bootstrap

import (
	"sort"
	"testing"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/proxy"
)

type fakeDevice struct {
	proxy.GenericDevice
	member ident.ID
	name   string
}

func TestRegistryMakeUsesFactory(t *testing.T) {
	r := NewRegistry()
	err := r.Register("hr-sensor", func(member ident.ID, name string) proxy.Device {
		return &fakeDevice{member: member, name: name}
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := r.Make("hr-sensor", ident.New(7), "hr-1")
	fd, ok := dev.(*fakeDevice)
	if !ok {
		t.Fatalf("got %T", dev)
	}
	if fd.member != ident.New(7) || fd.name != "hr-1" {
		t.Errorf("factory args = %s %q", fd.member, fd.name)
	}
}

func TestRegistryFallback(t *testing.T) {
	r := NewRegistry()
	dev := r.Make("unknown-type", ident.New(1), "x")
	if _, ok := dev.(*proxy.GenericDevice); !ok {
		t.Fatalf("fallback produced %T", dev)
	}

	r.SetFallback(func(member ident.ID, name string) proxy.Device {
		return &fakeDevice{member: member}
	})
	if _, ok := r.Make("still-unknown", ident.New(2), "y").(*fakeDevice); !ok {
		t.Error("custom fallback unused")
	}
	// nil fallback is ignored.
	r.SetFallback(nil)
	if _, ok := r.Make("still-unknown", ident.New(2), "y").(*fakeDevice); !ok {
		t.Error("nil fallback replaced previous")
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", func(ident.ID, string) proxy.Device { return nil }); err == nil {
		t.Error("empty device type accepted")
	}
	if err := r.Register("x", nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestRegistryKnownAndTypes(t *testing.T) {
	r := NewRegistry()
	for _, dt := range []string{"a", "b", "c"} {
		if err := r.Register(dt, func(ident.ID, string) proxy.Device { return &proxy.GenericDevice{} }); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Known("b") || r.Known("z") {
		t.Error("Known wrong")
	}
	types := r.Types()
	sort.Strings(types)
	if len(types) != 3 || types[0] != "a" || types[2] != "c" {
		t.Errorf("Types = %v", types)
	}
}

func TestRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	_ = r.Register("t", func(ident.ID, string) proxy.Device { return &proxy.GenericDevice{Type: "v1"} })
	_ = r.Register("t", func(ident.ID, string) proxy.Device { return &proxy.GenericDevice{Type: "v2"} })
	if dev := r.Make("t", 1, ""); dev.DeviceType() != "v2" {
		t.Errorf("got %s", dev.DeviceType())
	}
}
