// Package bench is the measurement harness that regenerates every
// figure of the paper's evaluation (§V) plus the ablations §VI calls
// for. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package bench

import (
	"time"

	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/matcher"
)

// Flavor is one event-bus configuration under test: the matching
// mechanism plus the calibrated host-cost model standing in for the
// paper's PDA (iPAQ hx4700, Blackdown JVM 1.3.1).
//
// Calibration: the paper's Figure 4 shows the Siena-based bus reaching
// ≈550 ms response at 5000-byte payloads and ≈10–14 KB/s throughput,
// and the dedicated C-based bus reaching ≈150–200 ms and ≈20–22 KB/s.
// Those absolute numbers are properties of the 2006 hardware/JVM, so
// the Cost model charges a per-event base (OS/JVM packet handling) and
// a per-byte copy cost per hop, chosen so the simulated host matches
// the paper's envelope; the *difference* between the flavours also
// exists structurally in the code (the Siena matcher translates every
// event into its own boxed attribute model, the fast matcher does
// not). The calibration constants are documented in EXPERIMENTS.md.
type Flavor struct {
	Name    string
	Matcher matcher.Kind
	Cost    bus.Cost
}

// The two buses of §IV/§V.
var (
	// SienaFlavor models the Siena-based prototype: heavier per-event
	// base (generic engine, type translations) and a higher per-byte
	// cost (the extra copies §V attributes the response-time growth
	// to).
	SienaFlavor = Flavor{
		Name:    "siena-based",
		Matcher: matcher.KindSiena,
		Cost: bus.Cost{
			IngestPerEvent:  25 * time.Millisecond,
			DeliverPerEvent: 20 * time.Millisecond,
			PerByte:         40 * time.Microsecond,
		},
	}

	// FastFlavor models the dedicated C-based replacement: minimal
	// base cost and far fewer copies.
	FastFlavor = Flavor{
		Name:    "c-based",
		Matcher: matcher.KindFast,
		Cost: bus.Cost{
			IngestPerEvent:  12 * time.Millisecond,
			DeliverPerEvent: 8 * time.Millisecond,
			PerByte:         16 * time.Microsecond,
		},
	}

	// RawFlavors disables the host-cost model entirely: both engines
	// at native Go speed. Used by the matcher microbenchmarks, where
	// the structural difference between the engines is measured
	// directly.
	SienaRaw = Flavor{Name: "siena-raw", Matcher: matcher.KindSiena}
	FastRaw  = Flavor{Name: "fast-raw", Matcher: matcher.KindFast}
)

// Flavors returns the two calibrated buses in paper order.
func Flavors() []Flavor {
	return []Flavor{SienaFlavor, FastFlavor}
}
