package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/amuse/smc/internal/event"
)

// Management-traffic workload generator: the mix of traffic an SMC
// actually carries (§II-C: "the event bus ... is devoted to management
// traffic related to a small set of sensors over a patient's body") —
// mostly small periodic readings, occasional alarms, rare membership
// and policy-control events. Used by the end-to-end workload benchmark
// and reusable by integration tests.

// TrafficClass labels one generated event's role.
type TrafficClass int

// Traffic classes in a management workload.
const (
	ClassReading TrafficClass = iota + 1
	ClassAlarm
	ClassMembership
	ClassControl
)

// String names the class.
func (c TrafficClass) String() string {
	switch c {
	case ClassReading:
		return "reading"
	case ClassAlarm:
		return "alarm"
	case ClassMembership:
		return "membership"
	case ClassControl:
		return "control"
	default:
		return "unknown"
	}
}

// WorkloadMix sets the proportions of each class (weights; they need
// not sum to anything particular).
type WorkloadMix struct {
	Readings   int
	Alarms     int
	Membership int
	Control    int
}

// DefaultMix reflects a monitoring cell: overwhelmingly readings,
// a few alarms, rare membership/control traffic.
func DefaultMix() WorkloadMix {
	return WorkloadMix{Readings: 90, Alarms: 5, Membership: 3, Control: 2}
}

// Workload deterministically generates a stream of management events.
type Workload struct {
	mix    WorkloadMix
	rng    *rand.Rand
	seq    int
	joined []string
}

// NewWorkload builds a generator with the given mix and seed.
func NewWorkload(mix WorkloadMix, seed int64) *Workload {
	return &Workload{
		mix: mix,
		rng: rand.New(rand.NewSource(seed)),
		joined: []string{
			"hr-1", "spo2-1", "temp-1", "bp-1",
		},
	}
}

// Next generates the next event and its class.
func (w *Workload) Next() (*event.Event, TrafficClass) {
	w.seq++
	total := w.mix.Readings + w.mix.Alarms + w.mix.Membership + w.mix.Control
	if total <= 0 {
		total = 1
	}
	pick := w.rng.Intn(total)
	switch {
	case pick < w.mix.Readings:
		return w.reading(), ClassReading
	case pick < w.mix.Readings+w.mix.Alarms:
		return w.alarm(), ClassAlarm
	case pick < w.mix.Readings+w.mix.Alarms+w.mix.Membership:
		return w.membership(), ClassMembership
	default:
		return w.control(), ClassControl
	}
}

func (w *Workload) reading() *event.Event {
	kinds := []struct {
		kind, unit     string
		base, spread   float64
		deviceTypeName string
	}{
		{"heart-rate", "bpm", 72, 20, "hr-sensor"},
		{"spo2", "%", 97, 3, "spo2-sensor"},
		{"temperature", "degC", 36.9, 0.6, "temp-sensor"},
		{"bp-systolic", "mmHg", 118, 18, "bp-sensor"},
	}
	k := kinds[w.rng.Intn(len(kinds))]
	e := event.NewTyped("reading").
		SetStr("kind", k.kind).
		SetStr("unit", k.unit).
		Set(event.AttrDeviceType, event.Str(k.deviceTypeName)).
		SetFloat("value", k.base+(w.rng.Float64()*2-1)*k.spread).
		SetInt("seq", int64(w.seq))
	e.Stamp = time.Unix(0, int64(w.seq)*int64(time.Millisecond))
	return e
}

func (w *Workload) alarm() *event.Event {
	sources := []string{"hr", "spo2", "temp", "bp"}
	return event.NewTyped("alarm").
		SetStr("source", sources[w.rng.Intn(len(sources))]).
		SetInt("severity", int64(1+w.rng.Intn(3))).
		SetInt("seq", int64(w.seq))
}

func (w *Workload) membership() *event.Event {
	dev := w.joined[w.rng.Intn(len(w.joined))]
	class := event.TypeNewMember
	if w.rng.Intn(2) == 0 {
		class = event.TypePurgeMember
	}
	return event.NewTyped(class).
		Set(event.AttrMember, event.Int(int64(w.rng.Intn(1<<16)))).
		Set(event.AttrDeviceType, event.Str("generic")).
		SetStr("name", dev)
}

func (w *Workload) control() *event.Event {
	actions := []string{"set-threshold", "enable-policy", "disable-policy", "report"}
	return event.NewTyped("control").
		SetStr("action", actions[w.rng.Intn(len(actions))]).
		SetStr("target", fmt.Sprintf("policy-%d", w.rng.Intn(8))).
		SetInt("seq", int64(w.seq))
}

// StandardSubscriptions returns the filters a typical monitoring
// deployment installs against this workload: a vitals dashboard, an
// alarm pager, and a membership auditor.
func StandardSubscriptions() []*event.Filter {
	return []*event.Filter{
		event.NewFilter().WhereType("reading"),
		event.NewFilter().WhereType("alarm").
			Where("severity", event.OpGe, event.Int(2)),
		event.NewFilter().WhereType(event.TypeNewMember),
		event.NewFilter().WhereType(event.TypePurgeMember),
	}
}
