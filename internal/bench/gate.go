package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file is the CI benchmark regression gate: it parses standard
// `go test -bench` output, compares the measured numbers against the
// baselines committed in BENCH_PR*.json, and emits a machine-readable
// report (bench.json in CI). Two check kinds exist:
//
//   - benchmarks: a metric may not regress more than Tolerance below
//     its committed baseline (machine-dependent — the tolerance
//     absorbs runner variance);
//   - ratios: one measurement divided by another must stay above Min
//     (machine-independent — e.g. the windowed channel must stay ≥2×
//     faster than stop-and-wait regardless of the runner).

// Measurement is one parsed benchmark result line.
type Measurement struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"` // unit → value, incl. "ns/op"
}

// ParseGoBench parses `go test -bench` text output. Benchmark names
// are normalised by stripping the trailing -GOMAXPROCS suffix. When a
// benchmark appears multiple times (e.g. -count > 1) the best (lowest
// ns/op) run wins.
func ParseGoBench(r io.Reader) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := Measurement{Name: name, Iters: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			m.Metrics[fields[i+1]] = v
		}
		if len(m.Metrics) == 0 {
			continue
		}
		if prev, dup := out[name]; dup {
			if prevNs, ok := prev.Metrics["ns/op"]; ok {
				if ns, ok2 := m.Metrics["ns/op"]; !ok2 || ns >= prevNs {
					continue
				}
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

// GateBench pins one benchmark metric to a committed baseline.
type GateBench struct {
	Name     string  `json:"name"`
	Metric   string  `json:"metric"` // e.g. "events/sec", "rt/s", "ns/op"
	Baseline float64 `json:"baseline"`
}

// GateRatio pins the ratio of two measurements to a minimum.
type GateRatio struct {
	Name   string  `json:"name"`
	Num    string  `json:"num"`
	Den    string  `json:"den"`
	Metric string  `json:"metric"`
	Min    float64 `json:"min"`
}

// GateSpec is the "gate" section of a committed BENCH_PR*.json.
type GateSpec struct {
	// Tolerance is the allowed fractional regression against each
	// baseline (0.2 = fail when below 80% of baseline).
	Tolerance  float64     `json:"tolerance"`
	Benchmarks []GateBench `json:"benchmarks"`
	Ratios     []GateRatio `json:"ratios"`
}

// LoadGateSpec reads the "gate" section from a baseline JSON file.
func LoadGateSpec(path string) (GateSpec, error) {
	var wrapper struct {
		Gate GateSpec `json:"gate"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return GateSpec{}, err
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		return GateSpec{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(wrapper.Gate.Benchmarks) == 0 && len(wrapper.Gate.Ratios) == 0 {
		return GateSpec{}, fmt.Errorf("%s: no gate section", path)
	}
	return wrapper.Gate, nil
}

// Check is one gate verdict.
type Check struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"` // "baseline" or "ratio"
	Metric   string  `json:"metric"`
	Measured float64 `json:"measured"`
	Limit    float64 `json:"limit"` // minimum acceptable value
	Pass     bool    `json:"pass"`
	Detail   string  `json:"detail,omitempty"`
}

// GateReport is the gate's machine-readable output (bench.json).
type GateReport struct {
	Pass         bool                   `json:"pass"`
	Checks       []Check                `json:"checks"`
	Measurements map[string]Measurement `json:"measurements"`
}

// lowerIsBetter metrics regress upwards.
func lowerIsBetter(metric string) bool {
	switch metric {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return false
}

// RunGate evaluates the spec against parsed measurements.
func RunGate(measured map[string]Measurement, spec GateSpec) GateReport {
	rep := GateReport{Pass: true, Measurements: measured}
	tol := spec.Tolerance
	if tol <= 0 {
		tol = 0.2
	}
	lookup := func(name, metric string) (float64, string) {
		m, ok := measured[name]
		if !ok {
			return 0, fmt.Sprintf("benchmark %q not found in the run", name)
		}
		v, ok := m.Metrics[metric]
		if !ok {
			return 0, fmt.Sprintf("benchmark %q has no %q metric", name, metric)
		}
		return v, ""
	}
	for _, gb := range spec.Benchmarks {
		c := Check{Name: gb.Name, Kind: "baseline", Metric: gb.Metric}
		v, miss := lookup(gb.Name, gb.Metric)
		if miss != "" {
			c.Detail = miss
			rep.Pass = false
			rep.Checks = append(rep.Checks, c)
			continue
		}
		c.Measured = v
		if lowerIsBetter(gb.Metric) {
			c.Limit = gb.Baseline * (1 + tol)
			c.Pass = v <= c.Limit
			c.Detail = fmt.Sprintf("measured %.4g, baseline %.4g, allowed max %.4g", v, gb.Baseline, c.Limit)
		} else {
			c.Limit = gb.Baseline * (1 - tol)
			c.Pass = v >= c.Limit
			c.Detail = fmt.Sprintf("measured %.4g, baseline %.4g, allowed min %.4g", v, gb.Baseline, c.Limit)
		}
		if !c.Pass {
			rep.Pass = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	for _, gr := range spec.Ratios {
		c := Check{Name: gr.Name, Kind: "ratio", Metric: gr.Metric, Limit: gr.Min}
		num, missN := lookup(gr.Num, gr.Metric)
		den, missD := lookup(gr.Den, gr.Metric)
		switch {
		case missN != "":
			c.Detail = missN
		case missD != "":
			c.Detail = missD
		case den == 0:
			c.Detail = fmt.Sprintf("denominator %q is zero", gr.Den)
		default:
			c.Measured = num / den
			c.Pass = c.Measured >= gr.Min
			c.Detail = fmt.Sprintf("%s / %s = %.3g, required ≥ %.3g", gr.Num, gr.Den, c.Measured, gr.Min)
		}
		if !c.Pass {
			rep.Pass = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep
}

// Fprint renders the report for humans.
func (r GateReport) Fprint(w io.Writer) {
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%s  [%s] %s (%s): %s\n", verdict, c.Kind, c.Name, c.Metric, c.Detail)
	}
	names := make([]string, 0, len(r.Measurements))
	for n := range r.Measurements {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%d checks over %d measurements\n", len(r.Checks), len(names))
}
