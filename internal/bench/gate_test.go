package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/amuse/smc/internal/bus
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBusHotPath/delivery=local/fanout=8/shards=1-4     851342   1331 ns/op   751152 events/sec   736 B/op   3 allocs/op
BenchmarkReliableWindow/window=1-4       349   3396384 ns/op   294.4 rt/s   798 B/op   14 allocs/op
BenchmarkReliableWindow/window=16-4     2954    353132 ns/op   2832 rt/s    837 B/op   12 allocs/op
PASS
ok   github.com/amuse/smc/internal/bus 12.1s
`

func TestParseGoBench(t *testing.T) {
	ms, err := ParseGoBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	hot, ok := ms["BenchmarkBusHotPath/delivery=local/fanout=8/shards=1"]
	if !ok {
		t.Fatalf("hot path missing (cpu suffix not stripped?): %v", ms)
	}
	if hot.Metrics["events/sec"] != 751152 || hot.Metrics["ns/op"] != 1331 {
		t.Errorf("hot path metrics = %v", hot.Metrics)
	}
	if w1 := ms["BenchmarkReliableWindow/window=1"]; w1.Metrics["rt/s"] != 294.4 {
		t.Errorf("window=1 rt/s = %v", w1.Metrics)
	}
	if len(ms) != 3 {
		t.Errorf("parsed %d measurements, want 3", len(ms))
	}
}

func TestRunGateBaselineAndRatio(t *testing.T) {
	ms, err := ParseGoBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	spec := GateSpec{
		Tolerance: 0.2,
		Benchmarks: []GateBench{
			{Name: "BenchmarkBusHotPath/delivery=local/fanout=8/shards=1", Metric: "events/sec", Baseline: 700000},
		},
		Ratios: []GateRatio{
			{Name: "window pipelining", Num: "BenchmarkReliableWindow/window=16",
				Den: "BenchmarkReliableWindow/window=1", Metric: "rt/s", Min: 2.0},
		},
	}
	rep := RunGate(ms, spec)
	if !rep.Pass {
		t.Fatalf("gate failed: %+v", rep.Checks)
	}

	// A >20% regression must fail.
	spec.Benchmarks[0].Baseline = 751152 / 0.7 // measured is ~70% of this
	rep = RunGate(ms, spec)
	if rep.Pass {
		t.Fatal("regression not caught")
	}

	// A missing benchmark must fail loudly, not silently pass.
	spec.Benchmarks[0].Baseline = 700000
	spec.Benchmarks = append(spec.Benchmarks, GateBench{Name: "BenchmarkNope", Metric: "ns/op", Baseline: 1})
	if rep = RunGate(ms, spec); rep.Pass {
		t.Fatal("missing benchmark not caught")
	}
}

func TestRunGateLowerIsBetter(t *testing.T) {
	ms := map[string]Measurement{
		"B/x": {Name: "B/x", Metrics: map[string]float64{"allocs/op": 3}},
	}
	spec := GateSpec{Tolerance: 0.2, Benchmarks: []GateBench{
		{Name: "B/x", Metric: "allocs/op", Baseline: 3},
	}}
	if rep := RunGate(ms, spec); !rep.Pass {
		t.Fatalf("equal allocs failed: %+v", rep.Checks)
	}
	ms["B/x"].Metrics["allocs/op"] = 5
	if rep := RunGate(ms, spec); rep.Pass {
		t.Fatal("alloc regression not caught")
	}
}

func TestLoadGateSpecFromBaselineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	content := `{
  "pr": 2,
  "gate": {
    "tolerance": 0.2,
    "benchmarks": [{"name": "B/x", "metric": "events/sec", "baseline": 100}],
    "ratios": [{"name": "r", "num": "B/y", "den": "B/x", "metric": "events/sec", "min": 2}]
  }
}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadGateSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Tolerance != 0.2 || len(spec.Benchmarks) != 1 || len(spec.Ratios) != 1 {
		t.Errorf("spec = %+v", spec)
	}
	if _, err := LoadGateSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"pr": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGateSpec(empty); err == nil {
		t.Error("baseline without gate section accepted")
	}
}
