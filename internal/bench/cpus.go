package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// CPU-scaling sweep support: the machine-readable "cpus" section of a
// committed bench baseline (BENCH_PR*.json). benchfig -cpus produces
// it, -cpus-merge folds it into a baseline, and -cpus-gate enforces
// scaling monotonicity on hosts that actually have cores. Baselines
// without a cpus section — every baseline before PR 8 — stay fully
// usable: LoadGateSpec reads only the "gate" key and ignores the rest.

// CPUPoint is one measured (delivery, GOMAXPROCS, shards) throughput
// point of the bus hot-path benchmark.
type CPUPoint struct {
	Delivery     string  `json:"delivery"`
	Procs        int     `json:"procs"`
	Shards       int     `json:"shards"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// CPUSweep is the "cpus" section: raw points plus derived speedups.
type CPUSweep struct {
	Benchmark    string `json:"benchmark"`
	HardwareCPUs int    `json:"hardware_cpus"`
	// Informational is true when the measuring host had fewer than 4
	// hardware CPUs: oversubscribed GOMAXPROCS on too few cores
	// measures scheduling overhead, not parallel speedup, so the
	// numbers are recorded for provenance but must not be gated.
	Informational bool       `json:"informational"`
	Points        []CPUPoint `json:"points"`
	// Speedups maps delivery → GOMAXPROCS (as a decimal string, being
	// a JSON key) → best-shards throughput at that processor count
	// relative to the single-processor single-shard baseline.
	Speedups map[string]map[string]float64 `json:"speedups"`
}

// BuildCPUSweep derives the speedup table from raw points.
func BuildCPUSweep(benchmark string, hardwareCPUs int, points []CPUPoint) CPUSweep {
	s := CPUSweep{
		Benchmark:     benchmark,
		HardwareCPUs:  hardwareCPUs,
		Informational: hardwareCPUs < 4,
		Points:        points,
		Speedups:      make(map[string]map[string]float64),
	}
	best := make(map[string]map[int]float64) // delivery → procs → best events/sec
	base := make(map[string]float64)         // delivery → procs=1 shards=1
	for _, p := range points {
		if best[p.Delivery] == nil {
			best[p.Delivery] = make(map[int]float64)
		}
		if p.EventsPerSec > best[p.Delivery][p.Procs] {
			best[p.Delivery][p.Procs] = p.EventsPerSec
		}
		if p.Procs == 1 && p.Shards == 1 {
			base[p.Delivery] = p.EventsPerSec
		}
	}
	for delivery, byProcs := range best {
		b := base[delivery]
		if b <= 0 {
			continue
		}
		s.Speedups[delivery] = make(map[string]float64)
		for procs, v := range byProcs {
			s.Speedups[delivery][strconv.Itoa(procs)] = v / b
		}
	}
	return s
}

// GateCPUSweep checks scaling monotonicity: for every delivery mode,
// walking the measured processor counts that the host's cores can
// genuinely parallelise (procs ≤ hardware CPUs), the speedup must not
// regress by more than slack at each step. It returns one Check per
// step. On hosts with fewer than 4 CPUs it returns a single passing
// informational check — there is nothing meaningful to enforce.
func GateCPUSweep(s CPUSweep, hardwareCPUs int) GateReport {
	const slack = 0.90 // allow 10% noise between adjacent points
	rep := GateReport{Pass: true}
	if hardwareCPUs < 4 {
		rep.Checks = append(rep.Checks, Check{
			Name: "cpus", Kind: "cpu-scaling", Metric: "speedup", Pass: true,
			Detail: fmt.Sprintf("informational: %d hardware CPUs, scaling not gated", hardwareCPUs),
		})
		return rep
	}
	deliveries := make([]string, 0, len(s.Speedups))
	for d := range s.Speedups {
		deliveries = append(deliveries, d)
	}
	sort.Strings(deliveries)
	for _, d := range deliveries {
		var procs []int
		for k := range s.Speedups[d] {
			if p, err := strconv.Atoi(k); err == nil && p <= hardwareCPUs {
				procs = append(procs, p)
			}
		}
		sort.Ints(procs)
		prev := 0.0
		for _, p := range procs {
			sp := s.Speedups[d][strconv.Itoa(p)]
			limit := prev * slack
			pass := sp >= limit
			rep.Checks = append(rep.Checks, Check{
				Name:     fmt.Sprintf("cpus/%s/procs=%d", d, p),
				Kind:     "cpu-scaling",
				Metric:   "speedup",
				Measured: sp,
				Limit:    limit,
				Pass:     pass,
				Detail:   "speedup vs procs=1 shards=1; must be ≥ 0.9× the previous point",
			})
			rep.Pass = rep.Pass && pass
			if sp > prev {
				prev = sp
			}
		}
	}
	return rep
}

// MergeCPUSection rewrites the baseline JSON at path with its "cpus"
// key replaced by s, preserving every other key byte-for-byte.
func MergeCPUSection(path string, s CPUSweep) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	section, err := json.Marshal(s)
	if err != nil {
		return err
	}
	doc["cpus"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// LoadCPUSweep reads the "cpus" section of a baseline; ok is false
// when the baseline predates cpus sections.
func LoadCPUSweep(path string) (CPUSweep, bool, error) {
	var wrapper struct {
		CPUs *CPUSweep `json:"cpus"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return CPUSweep{}, false, err
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		return CPUSweep{}, false, fmt.Errorf("parse %s: %w", path, err)
	}
	if wrapper.CPUs == nil {
		return CPUSweep{}, false, nil
	}
	return *wrapper.CPUs, true, nil
}
