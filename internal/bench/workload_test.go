package bench

import (
	"testing"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
)

func TestWorkloadDeterministic(t *testing.T) {
	a := NewWorkload(DefaultMix(), 5)
	b := NewWorkload(DefaultMix(), 5)
	for i := 0; i < 500; i++ {
		ea, ca := a.Next()
		eb, cb := b.Next()
		if ca != cb || !ea.Equal(eb) {
			t.Fatalf("divergence at %d: %s vs %s", i, ea, eb)
		}
	}
}

func TestWorkloadMixApproximatelyRespected(t *testing.T) {
	w := NewWorkload(DefaultMix(), 9)
	counts := map[TrafficClass]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		_, c := w.Next()
		counts[c]++
	}
	// Readings dominate (90/100 weight): expect 80–95%.
	if frac := float64(counts[ClassReading]) / n; frac < 0.8 || frac > 0.95 {
		t.Errorf("readings fraction = %.2f", frac)
	}
	for _, c := range []TrafficClass{ClassAlarm, ClassMembership, ClassControl} {
		if counts[c] == 0 {
			t.Errorf("class %s never generated", c)
		}
	}
}

func TestWorkloadEventsAreValidAndMatchable(t *testing.T) {
	w := NewWorkload(DefaultMix(), 11)
	m := matcher.NewFast()
	for i, f := range StandardSubscriptions() {
		if err := m.Subscribe(ident.New(uint64(100+i)), f); err != nil {
			t.Fatal(err)
		}
	}
	matched := 0
	for i := 0; i < 1000; i++ {
		e, _ := w.Next()
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid event: %v", err)
		}
		if len(m.Match(e)) > 0 {
			matched++
		}
	}
	// Most of the stream (readings + high alarms + membership) is
	// consumed by the standard subscriptions.
	if matched < 850 {
		t.Errorf("only %d/1000 events matched", matched)
	}
}

func TestTrafficClassStrings(t *testing.T) {
	for _, c := range []TrafficClass{ClassReading, ClassAlarm, ClassMembership, ClassControl} {
		if c.String() == "unknown" {
			t.Errorf("class %d renders unknown", c)
		}
	}
	if TrafficClass(0).String() != "unknown" {
		t.Error("zero class not unknown")
	}
}
