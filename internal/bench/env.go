package bench

import (
	"fmt"
	"time"

	"github.com/amuse/smc/internal/bootstrap"
	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
)

// Event shape used by the measurement workloads: one "bench" event
// carrying an opaque payload, mirroring the paper's variable-size
// messages.
const (
	benchType    = "bench"
	payloadAttr  = "payload"
	benchBusAddr = 0xB100
)

func init() {
	// Pre-intern the measurement vocabulary so the receive path decodes
	// bench events allocation-free from the first packet — the same
	// one-liner a real deployment with a known event schema would use.
	event.Intern(benchType, payloadAttr)
}

// relConfig is tuned for the simulated wireless profiles: short
// retries, generous budget. window ≤ 0 keeps the reliable default.
func relConfig(window int) reliable.Config {
	return reliable.Config{
		RetryTimeout:    60 * time.Millisecond,
		MaxRetryTimeout: 400 * time.Millisecond,
		MaxRetries:      12,
		Window:          window,
		QueueDepth:      8192,
	}
}

// Env is one benchmark deployment: a bus of the given flavour on a
// simulated link, one publisher and N subscribers, all admitted as
// members (discovery is exercised elsewhere; measurement uses direct
// admission so that only the publish path is timed).
type Env struct {
	Flavor Flavor
	Net    *netsim.Network
	Bus    *bus.Bus
	Pub    *client.Client
	Subs   []*client.Client
}

// EnvConfig parameterises NewEnv.
type EnvConfig struct {
	Link        netsim.Profile
	Subscribers int
	Quench      bool
	Seed        int64
	// Shards overrides the bus pipeline shard count (0 = bus default,
	// GOMAXPROCS).
	Shards int
	// Window overrides the reliable channel's sliding window on every
	// hop (0 = reliable default; 1 = stop-and-wait). The window-sweep
	// benchmarks use it to measure the ARQ pipelining gain end to end.
	Window int
	// SubscribeAll: when false, subscribers are members but install
	// no filters (the quench workload).
	NoSubscriptions bool
	// BatchEvents > 1 turns on wire-level event coalescing at both
	// ends: the bus proxies gather up to BatchEvents frames per packet
	// and the publisher's client batches its publishes the same way.
	BatchEvents int
	// BatchFlush is the flush-on-deadline for partial batches (0 uses
	// the layer defaults).
	BatchFlush time.Duration
}

// NewEnv builds the deployment. Close it when done.
func NewEnv(flavor Flavor, cfg EnvConfig) (*Env, error) {
	if cfg.Subscribers <= 0 {
		cfg.Subscribers = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	net := netsim.New(cfg.Link, netsim.WithSeed(cfg.Seed))

	busTr, err := net.Attach(ident.New(benchBusAddr))
	if err != nil {
		net.Close()
		return nil, err
	}
	m, err := matcher.New(flavor.Matcher)
	if err != nil {
		net.Close()
		return nil, err
	}
	opts := []bus.Option{bus.WithCost(flavor.Cost), bus.WithQueueDepth(8192)}
	if cfg.Quench {
		opts = append(opts, bus.WithQuench(true))
	}
	if cfg.Shards > 0 {
		opts = append(opts, bus.WithShards(cfg.Shards))
	}
	if cfg.BatchEvents > 1 {
		opts = append(opts, bus.WithBatching(cfg.BatchEvents, 0, cfg.BatchFlush))
	}
	b := bus.New(reliable.New(busTr, relConfig(cfg.Window)), m, bootstrap.NewRegistry(), opts...)
	b.Start()

	env := &Env{Flavor: flavor, Net: net, Bus: b}

	mkClient := func(addr uint64, name string) (*client.Client, error) {
		tr, err := net.Attach(ident.New(addr))
		if err != nil {
			return nil, err
		}
		if err := b.AddMember(ident.New(addr), "generic", name); err != nil {
			return nil, err
		}
		var copts []client.Option
		if cfg.BatchEvents > 1 {
			copts = append(copts, client.WithPublishBatching(cfg.BatchEvents, 0, cfg.BatchFlush))
		}
		return client.New(reliable.New(tr, relConfig(cfg.Window)), b.ID(), copts...), nil
	}

	env.Pub, err = mkClient(0x1, "publisher")
	if err != nil {
		env.Close()
		return nil, err
	}
	for i := 0; i < cfg.Subscribers; i++ {
		sub, err := mkClient(uint64(0x100+i), fmt.Sprintf("subscriber-%d", i))
		if err != nil {
			env.Close()
			return nil, err
		}
		if !cfg.NoSubscriptions {
			if err := sub.Subscribe(event.NewFilter().WhereType(benchType)); err != nil {
				env.Close()
				return nil, err
			}
		}
		env.Subs = append(env.Subs, sub)
	}
	return env, nil
}

// Close tears the deployment down.
func (e *Env) Close() {
	if e.Pub != nil {
		e.Pub.Close()
	}
	for _, s := range e.Subs {
		s.Close()
	}
	if e.Bus != nil {
		e.Bus.Close()
	}
	if e.Net != nil {
		e.Net.Close()
	}
}

// StreamAsync pushes count events through the pipelined publish path
// (client.PublishAsync, up to inflight outstanding) and waits until
// the first subscriber has received them all, returning events/sec
// end to end: member enqueue → remote deliver.
func (e *Env) StreamAsync(payload, count, inflight int, timeout time.Duration) (float64, error) {
	if inflight <= 0 {
		inflight = 4
	}
	sub := e.Subs[0]
	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		// One reusable event: PublishAsync encodes synchronously, so
		// the same event (and payload backing) serves every send —
		// the publisher side of the zero-alloc pipeline.
		src := benchEvent(payload)
		var pending []*reliable.Completion
		for i := 0; i < count; i++ {
			comp, err := e.Pub.PublishAsync(src)
			if err != nil {
				errc <- fmt.Errorf("publish %d: %w", i, err)
				return
			}
			pending = append(pending, comp)
			if len(pending) >= inflight {
				if err := pending[0].Wait(); err != nil {
					errc <- fmt.Errorf("ack %d: %w", i, err)
					return
				}
				pending[0].Recycle()
				pending = pending[1:]
			}
		}
		for _, c := range pending {
			if err := c.Wait(); err != nil {
				errc <- fmt.Errorf("drain ack: %w", err)
				return
			}
			c.Recycle()
		}
		errc <- nil
	}()
	for recvd := 0; recvd < count; recvd++ {
		e, err := sub.NextEvent(timeout)
		if err != nil {
			return 0, fmt.Errorf("receive %d: %w", recvd, err)
		}
		e.Release() // recycle the borrowing decode and its packet
	}
	if err := <-errc; err != nil {
		return 0, err
	}
	return float64(count) / time.Since(start).Seconds(), nil
}

// benchEvent builds a bench event with an opaque payload of n bytes.
func benchEvent(n int) *event.Event {
	return event.NewTyped(benchType).SetBytes(payloadAttr, make([]byte, n))
}

// PublishAndWait publishes one event with the given payload size and
// blocks until every subscriber has received it, returning the elapsed
// end-to-end response time — Figure 4(a)'s measurand.
func (e *Env) PublishAndWait(payload int, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	if err := e.Pub.Publish(benchEvent(payload)); err != nil {
		return 0, fmt.Errorf("publish: %w", err)
	}
	for _, s := range e.Subs {
		ev, err := s.NextEvent(timeout)
		if err != nil {
			return 0, fmt.Errorf("subscriber wait: %w", err)
		}
		ev.Release()
	}
	return time.Since(start), nil
}

// Throughput streams events of the given payload size for roughly the
// given duration with a small application-level window (the publisher
// keeps at most `window` events in flight), and returns the payload
// throughput observed at the first subscriber in bytes/second —
// Figure 4(b)'s measurand.
func (e *Env) Throughput(payload int, duration time.Duration, window int) (float64, int, error) {
	if window <= 0 {
		window = 4
	}
	sub := e.Subs[0]
	var (
		sent, recvd int
		start       = time.Now()
	)
	for time.Since(start) < duration {
		for sent-recvd < window && time.Since(start) < duration {
			if err := e.Pub.Publish(benchEvent(payload)); err != nil {
				return 0, recvd, fmt.Errorf("publish %d: %w", sent, err)
			}
			sent++
		}
		if sent == recvd {
			continue
		}
		ev, err := sub.NextEvent(10 * time.Second)
		if err != nil {
			return 0, recvd, fmt.Errorf("receive %d: %w", recvd, err)
		}
		ev.Release()
		recvd++
	}
	// Drain what is still in flight so the numbers are exact.
	for recvd < sent {
		ev, err := sub.NextEvent(10 * time.Second)
		if err != nil {
			return 0, recvd, fmt.Errorf("drain %d: %w", recvd, err)
		}
		ev.Release()
		recvd++
	}
	elapsed := time.Since(start)
	bytesDelivered := float64(recvd) * float64(payload)
	return bytesDelivered / elapsed.Seconds(), recvd, nil
}
