package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Result is one regenerated figure: a set of series sharing axes.
type Result struct {
	Figure string
	Series []Series
}

// Fprint renders the result as an aligned text table, one row per X,
// one column per series — the same rows the paper's figures plot.
func (r Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Figure)
	if len(r.Series) == 0 {
		return
	}
	fmt.Fprintf(w, "%-12s", r.Series[0].XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %20s", s.Name)
	}
	fmt.Fprintf(w, "   (%s)\n", r.Series[0].YLabel)

	xs := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(w, "%-12.0f", x)
		for _, s := range r.Series {
			y, ok := lookup(s.Points, x)
			if ok {
				fmt.Fprintf(w, "  %20.2f", y)
			} else {
				fmt.Fprintf(w, "  %20s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

func lookup(pts []Point, x float64) (float64, bool) {
	for _, p := range pts {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Fig4aPayloads are the payload sizes of Figure 4(a) (0–5000 bytes).
var Fig4aPayloads = []int{0, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000}

// Fig4bPayloads are the payload sizes of Figure 4(b) (0–3000 bytes).
var Fig4bPayloads = []int{250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2250, 2500, 2750, 3000}

// Options tunes the sweeps (iterations per point / stream durations);
// Quick returns a configuration suitable for CI, Full for figures.
type Options struct {
	Iterations     int           // response-time samples per payload
	StreamDuration time.Duration // throughput stream length per payload
	Link           netsim.Profile
}

// Quick is a fast sweep (seconds); Full matches the paper's fidelity.
func Quick() Options {
	return Options{Iterations: 3, StreamDuration: 1 * time.Second, Link: netsim.USBLink}
}

// Full is the figure-quality sweep.
func Full() Options {
	return Options{Iterations: 10, StreamDuration: 4 * time.Second, Link: netsim.USBLink}
}

// Fig4aResponseTime regenerates Figure 4(a): end-to-end delay (ms)
// against payload size (bytes) for both buses.
func Fig4aResponseTime(opt Options) (Result, error) {
	res := Result{Figure: "Figure 4(a): response time (ms) vs payload size (bytes)"}
	for _, flavor := range Flavors() {
		env, err := NewEnv(flavor, EnvConfig{Link: opt.Link, Subscribers: 1})
		if err != nil {
			return res, err
		}
		s := Series{Name: flavor.Name, XLabel: "payload(B)", YLabel: "ms"}
		for _, size := range Fig4aPayloads {
			// One warmup, then timed samples.
			if _, err := env.PublishAndWait(size, 30*time.Second); err != nil {
				env.Close()
				return res, fmt.Errorf("%s warmup %dB: %w", flavor.Name, size, err)
			}
			var total time.Duration
			for i := 0; i < opt.Iterations; i++ {
				d, err := env.PublishAndWait(size, 30*time.Second)
				if err != nil {
					env.Close()
					return res, fmt.Errorf("%s %dB: %w", flavor.Name, size, err)
				}
				total += d
			}
			avg := total / time.Duration(opt.Iterations)
			s.Points = append(s.Points, Point{X: float64(size), Y: float64(avg) / float64(time.Millisecond)})
		}
		env.Close()
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Fig4bThroughput regenerates Figure 4(b): payload throughput (KB/s)
// against payload size (bytes) for both buses.
func Fig4bThroughput(opt Options) (Result, error) {
	res := Result{Figure: "Figure 4(b): throughput (KB/s) vs payload size (bytes)"}
	for _, flavor := range Flavors() {
		env, err := NewEnv(flavor, EnvConfig{Link: opt.Link, Subscribers: 1})
		if err != nil {
			return res, err
		}
		s := Series{Name: flavor.Name, XLabel: "payload(B)", YLabel: "KB/s"}
		for _, size := range Fig4bPayloads {
			bps, _, err := env.Throughput(size, opt.StreamDuration, 4)
			if err != nil {
				env.Close()
				return res, fmt.Errorf("%s %dB: %w", flavor.Name, size, err)
			}
			s.Points = append(s.Points, Point{X: float64(size), Y: bps / 1024})
		}
		env.Close()
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// LinkBaseline reproduces the §V in-text calibration numbers: the raw
// link sustains ≈575 KB/s and ≈1.5 ms latency (0.6–2.3 ms) with no bus
// in the path.
func LinkBaseline(opt Options) (Result, error) {
	res := Result{Figure: "Link baseline (§V in-text): raw link, no event bus"}
	net := netsim.New(opt.Link, netsim.WithSeed(7))
	defer net.Close()
	a, err := net.Attach(ident.New(1))
	if err != nil {
		return res, err
	}
	b, err := net.Attach(ident.New(2))
	if err != nil {
		return res, err
	}

	// Latency: tiny datagrams one at a time.
	lat := Series{Name: "one-way-latency", XLabel: "sample", YLabel: "ms"}
	var minL, maxL, sumL time.Duration
	const latSamples = 40
	for i := 0; i < latSamples; i++ {
		start := time.Now()
		if err := a.Send(b.LocalID(), []byte{1}); err != nil {
			return res, err
		}
		dg, err := b.RecvTimeout(5 * time.Second)
		if err != nil {
			return res, err
		}
		dg.Recycle()
		d := time.Since(start)
		if i == 0 || d < minL {
			minL = d
		}
		if d > maxL {
			maxL = d
		}
		sumL += d
	}
	lat.Points = append(lat.Points,
		Point{X: 0, Y: float64(minL) / float64(time.Millisecond)},
		Point{X: 1, Y: float64(sumL/latSamples) / float64(time.Millisecond)},
		Point{X: 2, Y: float64(maxL) / float64(time.Millisecond)},
	)

	// Raw throughput: transfer a fixed byte budget of 4 KB datagrams
	// and time the whole transfer at the receiver.
	thr := Series{Name: "raw-throughput", XLabel: "payload(B)", YLabel: "KB/s"}
	const chunk = 4096
	chunks := int(opt.StreamDuration.Seconds() * 600 * 1024 / chunk) // ≈ link-rate worth
	if chunks < 16 {
		chunks = 16
	}
	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < chunks; i++ {
			dg, err := b.RecvTimeout(10 * time.Second)
			if err != nil {
				errCh <- err
				return
			}
			dg.Recycle()
		}
		errCh <- nil
	}()
	payload := make([]byte, chunk)
	for i := 0; i < chunks; i++ {
		if err := a.Send(b.LocalID(), payload); err != nil {
			return res, err
		}
	}
	if err := <-errCh; err != nil {
		return res, err
	}
	elapsed := time.Since(start)
	thr.Points = append(thr.Points, Point{
		X: chunk,
		Y: float64(chunks) * chunk / 1024 / elapsed.Seconds(),
	})

	res.Series = append(res.Series, lat, thr)
	return res, nil
}
