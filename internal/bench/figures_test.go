package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/amuse/smc/internal/netsim"
)

// quickOpt keeps the shape tests fast: the trends under test do not
// need many samples.
func quickOpt() Options {
	return Options{
		Iterations:     2,
		StreamDuration: 600 * time.Millisecond,
		Link:           netsim.USBLink,
	}
}

func seriesByName(r Result, name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// TestFig4aShape checks the properties the paper's Figure 4(a)
// establishes: the C-based bus responds faster than the Siena-based
// bus at every payload size, and both curves grow with payload size.
func TestFig4aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short")
	}
	res, err := Fig4aResponseTime(quickOpt())
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	siena := seriesByName(res, SienaFlavor.Name)
	fast := seriesByName(res, FastFlavor.Name)
	if siena == nil || fast == nil {
		t.Fatal("missing series")
	}
	if len(siena.Points) != len(Fig4aPayloads) || len(fast.Points) != len(Fig4aPayloads) {
		t.Fatalf("points = %d/%d", len(siena.Points), len(fast.Points))
	}
	for i := range siena.Points {
		if siena.Points[i].Y <= fast.Points[i].Y {
			t.Errorf("at %v B: siena %.1f ms ≤ c-based %.1f ms (ordering inverted)",
				siena.Points[i].X, siena.Points[i].Y, fast.Points[i].Y)
		}
	}
	// Growth with payload: the largest payload must be distinctly
	// slower than the smallest for both buses.
	for _, s := range []*Series{siena, fast} {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if last < first*2 {
			t.Errorf("%s: response time barely grows (%.1f → %.1f ms)", s.Name, first, last)
		}
	}
	// Envelope: the paper's Siena bus peaks around 550 ms at 5000 B;
	// accept a generous band.
	peak := siena.Points[len(siena.Points)-1].Y
	if peak < 250 || peak > 1100 {
		t.Errorf("siena peak response = %.1f ms, outside calibration band", peak)
	}
}

// TestFig4bShape checks Figure 4(b)'s properties: the C-based bus
// sustains higher throughput than the Siena-based bus, throughput
// grows with payload size, and both sit far below the raw link
// (≈575 KB/s).
func TestFig4bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short")
	}
	opt := quickOpt()
	// A reduced payload grid keeps the test quick while preserving
	// the trend.
	payloads := []int{250, 1000, 2000, 3000}
	old := Fig4bPayloads
	Fig4bPayloads = payloads
	defer func() { Fig4bPayloads = old }()

	res, err := Fig4bThroughput(opt)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	siena := seriesByName(res, SienaFlavor.Name)
	fast := seriesByName(res, FastFlavor.Name)
	if siena == nil || fast == nil {
		t.Fatal("missing series")
	}
	for i := range siena.Points {
		if fast.Points[i].Y <= siena.Points[i].Y {
			t.Errorf("at %v B: c-based %.2f KB/s ≤ siena %.2f KB/s",
				fast.Points[i].X, fast.Points[i].Y, siena.Points[i].Y)
		}
	}
	for _, s := range []*Series{siena, fast} {
		if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
			t.Errorf("%s: throughput does not grow with payload", s.Name)
		}
		peak := s.Points[len(s.Points)-1].Y
		if peak > 60 {
			t.Errorf("%s peak %.1f KB/s — not an order of magnitude below the 575 KB/s link", s.Name, peak)
		}
		if peak < 2 {
			t.Errorf("%s peak %.1f KB/s — implausibly slow", s.Name, peak)
		}
	}
}

func TestLinkBaselineMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	opt := quickOpt()
	res, err := LinkBaseline(opt)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	lat := seriesByName(res, "one-way-latency")
	thr := seriesByName(res, "raw-throughput")
	if lat == nil || thr == nil {
		t.Fatal("missing series")
	}
	avg := lat.Points[1].Y
	if avg < 0.5 || avg > 3.0 {
		t.Errorf("avg latency %.2f ms, paper says ≈1.5 ms", avg)
	}
	raw := thr.Points[0].Y
	if raw < 400 || raw > 700 {
		t.Errorf("raw throughput %.0f KB/s, paper says ≈575 KB/s", raw)
	}
}

func TestAblationFanoutGrowsWithRecipients(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	opt := quickOpt()
	opt.Iterations = 1
	old := FanoutCounts
	FanoutCounts = []int{1, 4, 8}
	defer func() { FanoutCounts = old }()

	res, err := AblationFanout(opt)
	if err != nil {
		t.Fatalf("fanout: %v", err)
	}
	for _, s := range res.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s points = %d", s.Name, len(s.Points))
		}
		if s.Points[2].Y <= s.Points[0].Y {
			t.Errorf("%s: delay with 8 subscribers (%.1f ms) not above 1 subscriber (%.1f ms)",
				s.Name, s.Points[2].Y, s.Points[0].Y)
		}
	}
}

func TestAblationQuenchSavesTransmissions(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	res, err := AblationQuench(quickOpt())
	if err != nil {
		t.Fatalf("quench: %v", err)
	}
	off := seriesByName(res, "quench-off")
	on := seriesByName(res, "quench-on")
	if off == nil || on == nil {
		t.Fatal("missing series")
	}
	if on.Points[0].Y >= off.Points[0].Y {
		t.Errorf("quench-on transmitted %.0f, quench-off %.0f — no saving", on.Points[0].Y, off.Points[0].Y)
	}
	if on.Points[1].Y == 0 {
		t.Error("no suppressed publishes recorded with quench on")
	}
}

func TestAblationRedeliveryLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	res, err := AblationRedelivery(quickOpt())
	if err != nil {
		t.Fatalf("redelivery: %v", err)
	}
	s := res.Series[0]
	published, delivered := s.Points[0].Y, s.Points[1].Y
	if delivered != published {
		t.Errorf("delivered %.0f of %.0f", delivered, published)
	}
}

func TestResultFprint(t *testing.T) {
	r := Result{
		Figure: "demo",
		Series: []Series{
			{Name: "a", XLabel: "x", YLabel: "y", Points: []Point{{0, 1}, {10, 2}}},
			{Name: "b", XLabel: "x", YLabel: "y", Points: []Point{{0, 3}}},
		},
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"# demo", "a", "b", "1.00", "3.00", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Empty result doesn't panic.
	var empty bytes.Buffer
	Result{Figure: "empty"}.Fprint(&empty)
}

func TestMatcherWorkloadDeterministic(t *testing.T) {
	a, b := NewMatcherWorkload(50), NewMatcherWorkload(50)
	if len(a.Filters) != 50 || len(a.Events) != 64 {
		t.Fatalf("sizes = %d/%d", len(a.Filters), len(a.Events))
	}
	for i := range a.Filters {
		if !a.Filters[i].Equal(b.Filters[i]) {
			t.Fatal("workload filters not deterministic")
		}
	}
	for i := range a.Events {
		if !a.Events[i].Equal(b.Events[i]) {
			t.Fatal("workload events not deterministic")
		}
	}
}
