package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sweepPoints() []CPUPoint {
	return []CPUPoint{
		{Delivery: "local", Procs: 1, Shards: 1, EventsPerSec: 1000},
		{Delivery: "local", Procs: 1, Shards: 4, EventsPerSec: 950},
		{Delivery: "local", Procs: 2, Shards: 2, EventsPerSec: 1800},
		{Delivery: "local", Procs: 4, Shards: 4, EventsPerSec: 3200},
		{Delivery: "member", Procs: 1, Shards: 1, EventsPerSec: 500},
		{Delivery: "member", Procs: 2, Shards: 2, EventsPerSec: 900},
		{Delivery: "member", Procs: 4, Shards: 4, EventsPerSec: 1500},
	}
}

func TestBuildCPUSweepSpeedups(t *testing.T) {
	s := BuildCPUSweep("bench", 4, sweepPoints())
	if s.Informational {
		t.Fatal("4-CPU sweep marked informational")
	}
	if got := s.Speedups["local"]["4"]; got != 3.2 {
		t.Fatalf("local 4-proc speedup = %v, want 3.2", got)
	}
	if got := s.Speedups["member"]["2"]; got != 1.8 {
		t.Fatalf("member 2-proc speedup = %v, want 1.8", got)
	}
	// Best shards at a processor count wins, not the last point seen.
	if got := s.Speedups["local"]["1"]; got != 1.0 {
		t.Fatalf("local 1-proc speedup = %v, want 1.0 (shards=1 base beats shards=4)", got)
	}
	if one := BuildCPUSweep("bench", 1, sweepPoints()); !one.Informational {
		t.Fatal("1-CPU sweep not marked informational")
	}
}

func TestGateCPUSweepMonotonic(t *testing.T) {
	s := BuildCPUSweep("bench", 4, sweepPoints())
	rep := GateCPUSweep(s, 4)
	if !rep.Pass {
		t.Fatalf("monotonic sweep failed gate: %+v", rep.Checks)
	}
	if len(rep.Checks) != 6 { // 3 procs × 2 deliveries
		t.Fatalf("got %d checks, want 6", len(rep.Checks))
	}
}

func TestGateCPUSweepRegression(t *testing.T) {
	pts := sweepPoints()
	// Collapse local's 4-proc point far below the 2-proc speedup.
	for i := range pts {
		if pts[i].Delivery == "local" && pts[i].Procs == 4 {
			pts[i].EventsPerSec = 900 // speedup 0.9 < 1.8 × 0.9
		}
	}
	rep := GateCPUSweep(BuildCPUSweep("bench", 4, pts), 4)
	if rep.Pass {
		t.Fatal("regressing sweep passed the gate")
	}
}

func TestGateCPUSweepInformationalOnSmallHosts(t *testing.T) {
	s := BuildCPUSweep("bench", 1, sweepPoints())
	rep := GateCPUSweep(s, 1)
	if !rep.Pass || len(rep.Checks) != 1 {
		t.Fatalf("small-host gate should be a single passing informational check, got %+v", rep)
	}
}

// TestGateSpecToleratesCPUSection pins the forward/backward
// compatibility contract: LoadGateSpec must read baselines with and
// without a "cpus" section, and merging a cpus section must leave the
// gate section intact.
func TestGateSpecToleratesCPUSection(t *testing.T) {
	dir := t.TempDir()
	baseline := map[string]interface{}{
		"pr": 8,
		"gate": map[string]interface{}{
			"tolerance": 0.2,
			"benchmarks": []map[string]interface{}{
				{"name": "BenchmarkX", "metric": "ns/op", "baseline": 100},
			},
		},
	}

	write := func(name string, doc map[string]interface{}) string {
		path := filepath.Join(dir, name)
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Old-style baseline: no cpus section.
	old := write("old.json", baseline)
	if _, err := LoadGateSpec(old); err != nil {
		t.Fatalf("LoadGateSpec on pre-cpus baseline: %v", err)
	}
	if _, ok, err := LoadCPUSweep(old); err != nil || ok {
		t.Fatalf("LoadCPUSweep on pre-cpus baseline: ok=%v err=%v, want absent", ok, err)
	}

	// New-style: merge a cpus section in place, then re-read both.
	merged := write("new.json", baseline)
	sweep := BuildCPUSweep("bench", 4, sweepPoints())
	if err := MergeCPUSection(merged, sweep); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadGateSpec(merged)
	if err != nil {
		t.Fatalf("LoadGateSpec after cpus merge: %v", err)
	}
	if len(spec.Benchmarks) != 1 || spec.Benchmarks[0].Name != "BenchmarkX" ||
		spec.Benchmarks[0].Baseline != 100 {
		t.Fatal("gate section damaged by cpus merge")
	}
	got, ok, err := LoadCPUSweep(merged)
	if err != nil || !ok {
		t.Fatalf("LoadCPUSweep after merge: ok=%v err=%v", ok, err)
	}
	if got.HardwareCPUs != 4 || len(got.Points) != len(sweep.Points) {
		t.Fatalf("cpus section did not round-trip: %+v", got)
	}
	// Merging again replaces, not duplicates.
	if err := MergeCPUSection(merged, sweep); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := LoadCPUSweep(merged); !ok {
		t.Fatal("cpus section lost on re-merge")
	}
}
