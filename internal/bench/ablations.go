package bench

import (
	"fmt"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/netsim"
)

// FanoutCounts are the subscriber counts of the fan-out ablation
// ("variation in delays incurred depending on ... number of
// recipients", §VI).
var FanoutCounts = []int{1, 2, 4, 8, 16, 32}

// AblationFanout measures end-to-end delay (until the last subscriber
// receives) against the number of recipients, for both buses, at a
// fixed payload of 500 bytes.
func AblationFanout(opt Options) (Result, error) {
	res := Result{Figure: "Ablation: response time (ms) vs number of recipients (500 B payload)"}
	const payload = 500
	for _, flavor := range Flavors() {
		s := Series{Name: flavor.Name, XLabel: "subscribers", YLabel: "ms"}
		for _, n := range FanoutCounts {
			env, err := NewEnv(flavor, EnvConfig{Link: opt.Link, Subscribers: n})
			if err != nil {
				return res, err
			}
			if _, err := env.PublishAndWait(payload, 60*time.Second); err != nil {
				env.Close()
				return res, fmt.Errorf("%s n=%d warmup: %w", flavor.Name, n, err)
			}
			var total time.Duration
			for i := 0; i < opt.Iterations; i++ {
				d, err := env.PublishAndWait(payload, 60*time.Second)
				if err != nil {
					env.Close()
					return res, fmt.Errorf("%s n=%d: %w", flavor.Name, n, err)
				}
				total += d
			}
			env.Close()
			avg := total / time.Duration(opt.Iterations)
			s.Points = append(s.Points, Point{X: float64(n), Y: float64(avg) / float64(time.Millisecond)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AblationQuench measures the radio transmissions a publisher performs
// with and without quenching (§VI power saving) while no subscription
// matches its events, for a fixed number of attempted publishes.
func AblationQuench(opt Options) (Result, error) {
	res := Result{Figure: "Ablation: publisher radio sends with/without quenching (no matching subscriber)"}
	const attempts = 50
	for _, quench := range []bool{false, true} {
		flavor := FastFlavor
		env, err := NewEnv(flavor, EnvConfig{
			Link:            opt.Link,
			Subscribers:     1,
			NoSubscriptions: true,
			Quench:          quench,
		})
		if err != nil {
			return res, err
		}
		before := env.Net.Stats().Sent
		for i := 0; i < attempts; i++ {
			_ = env.Pub.Publish(benchEvent(100)) // ErrQuenched expected once quenched
			// Small pause so the quench packet can arrive.
			time.Sleep(5 * time.Millisecond)
		}
		// Count only datagrams originated by the publisher: total
		// network sends minus the bus's (acks, quench). Using client
		// stats is the precise measure.
		st := env.Pub.Stats()
		_ = before
		name := "quench-off"
		if quench {
			name = "quench-on"
		}
		s := Series{Name: name, XLabel: "attempted", YLabel: "count"}
		s.Points = append(s.Points,
			Point{X: 0, Y: float64(st.Published)},        // actually transmitted
			Point{X: 1, Y: float64(st.QuenchSuppressed)}, // saved by quench
		)
		env.Close()
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// AblationRedelivery exercises §VI's queueing-and-redelivery path: a
// subscriber disappears mid-stream (isolated, not purged), returns,
// and must receive every event exactly once in order. The series
// reports delivered/redeliveries/dropped counts.
func AblationRedelivery(opt Options) (Result, error) {
	res := Result{Figure: "Ablation: redelivery to a transiently disconnected subscriber"}
	flavor := FastFlavor
	env, err := NewEnv(flavor, EnvConfig{Link: opt.Link, Subscribers: 1})
	if err != nil {
		return res, err
	}
	defer env.Close()
	sub := env.Subs[0]

	const total = 20
	// Phase 1: a few events while connected.
	for i := 0; i < 5; i++ {
		if err := env.Pub.Publish(benchEvent(64)); err != nil {
			return res, err
		}
	}
	// Phase 2: the subscriber walks out of range.
	env.Net.Isolate(sub.ID())
	for i := 5; i < 15; i++ {
		if err := env.Pub.Publish(benchEvent(64)); err != nil {
			return res, err
		}
	}
	// Give the proxy time to burn through its first delivery attempts.
	time.Sleep(300 * time.Millisecond)
	// Phase 3: back in range; remaining events flow and the queued
	// backlog is redelivered.
	env.Net.Restore(sub.ID())
	for i := 15; i < total; i++ {
		if err := env.Pub.Publish(benchEvent(64)); err != nil {
			return res, err
		}
	}

	received := 0
	var firstErr error
	for received < total {
		ev, err := sub.NextEvent(20 * time.Second)
		if err != nil {
			firstErr = err
			break
		}
		ev.Release()
		received++
	}
	px := env.Bus.MemberProxy(sub.ID())
	s := Series{Name: "redelivery", XLabel: "metric", YLabel: "count"}
	s.Points = append(s.Points,
		Point{X: 0, Y: float64(total)},    // published
		Point{X: 1, Y: float64(received)}, // delivered
	)
	if px != nil {
		st := px.Stats()
		s.Points = append(s.Points,
			Point{X: 2, Y: float64(st.Redeliveries)},
			Point{X: 3, Y: float64(st.DroppedOldest)},
		)
	}
	res.Series = append(res.Series, s)
	if firstErr != nil {
		return res, fmt.Errorf("after %d/%d deliveries: %w", received, total, firstErr)
	}
	if received != total {
		return res, fmt.Errorf("delivered %d of %d", received, total)
	}
	return res, nil
}

// MatcherWorkload is the match-only microbench workload: n
// subscriptions over a small attribute vocabulary plus a stream of
// events, used to isolate the translation overhead between engines
// without the host-cost model.
type MatcherWorkload struct {
	Filters []*event.Filter
	Events  []*event.Event
}

// NewMatcherWorkload builds a deterministic workload of n filters.
func NewMatcherWorkload(n int) MatcherWorkload {
	w := MatcherWorkload{}
	for i := 0; i < n; i++ {
		f := event.NewFilter().WhereType("reading")
		switch i % 4 {
		case 0:
			f.Where("value", event.OpGt, event.Int(int64(i%200)))
		case 1:
			f.Where("unit", event.OpEq, event.Str("bpm"))
		case 2:
			f.Where("value", event.OpLe, event.Float(float64(i%150)))
		case 3:
			f.Where("source", event.OpPrefix, event.Str("ward-"))
		}
		w.Filters = append(w.Filters, f)
	}
	for i := 0; i < 64; i++ {
		e := event.NewTyped("reading").
			SetFloat("value", float64(i*3%250)).
			SetStr("unit", "bpm").
			SetStr("source", fmt.Sprintf("ward-%d", i%8)).
			SetInt("seq", int64(i))
		w.Events = append(w.Events, e)
	}
	return w
}

// DefaultLink returns the calibrated paper link.
func DefaultLink() netsim.Profile { return netsim.USBLink }
