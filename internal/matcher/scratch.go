package matcher

import (
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// Scratch is caller-owned per-match working state. The bus gives every
// shard worker its own Scratch so the dispatch hot path reuses one set
// of counter arrays and dedup maps without ever crossing a sync.Pool —
// pool Get/Put is cheap but still rendezvouses goroutines on shared
// per-P structures, which is measurable when every published event
// pays it. A Scratch must only be used by one goroutine at a time.
//
// One Scratch works with every matcher kind: FastMatcher uses the
// counting arrays and the dedup set, TypedMatcher only the dedup set,
// and SienaMatcher ignores it entirely (its per-match allocations are
// the §V overhead under measurement and are pinned — see
// TestSienaTranslationAllocsPinned).
type Scratch struct {
	// counts[i] is the number of satisfied constraints of dense[i] in
	// the current match, valid only when stamps[i] equals epoch — so
	// the arrays never need zeroing between matches.
	counts []int32
	stamps []uint32
	epoch  uint32
	// matched collects fully satisfied filters during one match.
	matched []*fastFilter
	// seen dedups subscriber IDs across a match's filters.
	seen map[ident.ID]struct{}
}

// NewScratch returns an empty Scratch, ready for use with any matcher.
func NewScratch() *Scratch {
	return &Scratch{seen: make(map[ident.ID]struct{}, 8)}
}

// ScratchMatcher is implemented by matchers whose match path can run
// on caller-owned scratch instead of internally pooled state. All
// in-tree matchers implement it; the bus type-asserts once and gives
// each shard worker a private Scratch.
type ScratchMatcher interface {
	// MatchAppendScratch is MatchAppend running on sc. sc must not be
	// shared between concurrent calls.
	MatchAppendScratch(e *event.Event, dst []ident.ID, sc *Scratch) []ident.ID
}
