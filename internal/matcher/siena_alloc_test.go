package matcher

import (
	"fmt"
	"testing"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// The Siena matcher's per-match translation allocations ARE the §V
// overhead the paper measures the dedicated matcher against, so the
// inline-event refactor must leave them untouched (ROADMAP: do not
// "optimise" them away without splitting flavours). seedMatchAppend
// reproduces the seed's match path exactly — the event translated
// through a fresh map via closure iteration, the memo and seen maps,
// the same poset evaluation — and the test below asserts that the
// refactored MatchAppend allocates exactly as much.

// seedTranslateEvent is a frozen copy of the seed's translateEvent.
// It must stay an out-of-line function returning the map, exactly like
// the original: inlining the body into the caller would let escape
// analysis stack-allocate the map and understate the seed's
// allocations.
//
//go:noinline
func seedTranslateEvent(e *event.Event) sienaNotification {
	n := make(sienaNotification, e.Len())
	e.Range(func(name string, v event.Value) bool {
		n[string(append([]byte(nil), name...))] = translateValue(v)
		return true
	})
	return n
}

// seedMatchAppend is a frozen copy of the seed's per-match path. The
// seed guarded the poset with an RWMutex where the snapshot rewrite
// loads an atomic pointer; neither allocates, so the allocation pin
// below still compares exactly the translation/memo/dedup work.
func seedMatchAppend(m *SienaMatcher, e *event.Event, dst []ident.ID) []ident.ID {
	nodes := m.snap.Load().nodes

	notif := seedTranslateEvent(e)
	memo := make(map[*sienaNode]bool, len(nodes))
	var eval func(n *sienaNode) bool
	eval = func(n *sienaNode) bool {
		if r, ok := memo[n]; ok {
			return r
		}
		memo[n] = false
		for _, p := range n.parents {
			if !eval(p) {
				return false
			}
		}
		r := matchFilter(n.filter, notif)
		memo[n] = r
		return r
	}
	seen := make(map[ident.ID]bool, 8)
	for _, n := range nodes {
		if eval(n) && !seen[n.sub] {
			seen[n.sub] = true
			dst = append(dst, n.sub)
		}
	}
	return dst
}

// sienaAllocWorkload builds a matcher with n installed filters and a
// representative small event (the §V reading shape).
func sienaAllocWorkload(t testing.TB, n int) (*SienaMatcher, *event.Event) {
	t.Helper()
	m := NewSiena()
	for i := 0; i < n; i++ {
		f := event.NewFilter().WhereType("reading").
			Where("value", event.OpGt, event.Int(int64(i%50)))
		if err := m.Subscribe(ident.New(uint64(i+1)), f); err != nil {
			t.Fatal(err)
		}
	}
	e := event.NewTyped("reading").
		SetStr("kind", "heart-rate").
		SetFloat("value", 42).
		SetStr("unit", "bpm").
		SetInt("seq", 9)
	e.Sender = ident.New(0x77)
	return m, e
}

// TestSienaTranslationAllocsPinned asserts that the refactored Siena
// matcher performs exactly the same number of per-match allocations as
// the seed implementation, preserving §V overhead comparability.
func TestSienaTranslationAllocsPinned(t *testing.T) {
	for _, subs := range []int{10, 100} {
		t.Run(fmt.Sprintf("subs=%d", subs), func(t *testing.T) {
			m, e := sienaAllocWorkload(t, subs)
			dst := make([]ident.ID, 0, subs)

			seedAllocs := testing.AllocsPerRun(200, func() {
				dst = seedMatchAppend(m, e, dst[:0])
			})
			nowAllocs := testing.AllocsPerRun(200, func() {
				dst = m.MatchAppend(e, dst[:0])
			})
			if seedAllocs != nowAllocs {
				t.Fatalf("Siena per-match allocations changed: seed %.1f, now %.1f — "+
					"the §V translation overhead must be preserved verbatim",
					seedAllocs, nowAllocs)
			}
			if seedAllocs == 0 {
				t.Fatal("seed reference performed no allocations; workload is not representative")
			}

			// Same verdicts, same subscribers.
			a := seedMatchAppend(m, e, nil)
			b := m.MatchAppend(e, nil)
			if len(a) != len(b) {
				t.Fatalf("verdicts diverge: seed %d matches, now %d", len(a), len(b))
			}
		})
	}
}
