// Package matcher provides the content-based matching mechanisms behind
// the event bus (§III-A).
//
// The paper deliberately hides the pub/sub engine behind an interface
// ("The 'EventBus' interface ... has allowed us to replace Siena with a
// more lightweight mechanism"). Two engines are provided:
//
//   - SienaMatcher mirrors the Siena-based prototype: a general engine
//     with its own internal attribute model, requiring translation of
//     every event and filter to and from that model — the overhead §V
//     blames for the Siena bus's lower performance.
//   - FastMatcher mirrors the dedicated replacement built on Siena's
//     fast forwarding (counting) algorithm, operating directly on the
//     bus-native types with per-constraint indexes and no translation.
package matcher

import (
	"errors"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// Matcher matches events against installed subscriptions. All methods
// must be safe for concurrent use.
type Matcher interface {
	// Name identifies the engine ("siena", "fast") in logs/benchmarks.
	Name() string
	// Subscribe installs a filter for a subscriber. Installing an
	// identical (subscriber, filter) pair twice is a no-op.
	Subscribe(sub ident.ID, f *event.Filter) error
	// Unsubscribe removes a previously installed (subscriber, filter)
	// pair; it reports ErrNoSuchSubscription if absent.
	Unsubscribe(sub ident.ID, f *event.Filter) error
	// UnsubscribeAll removes every filter of the subscriber (used on
	// Purge Member).
	UnsubscribeAll(sub ident.ID)
	// Match returns the distinct subscribers whose filters the event
	// satisfies, in unspecified order.
	Match(e *event.Event) []ident.ID
	// MatchAppend appends the distinct subscribers whose filters the
	// event satisfies to dst and returns the extended slice, so a
	// caller can reuse one target slice across matches and keep the
	// dispatch hot path allocation-free. dst may be nil.
	MatchAppend(e *event.Event, dst []ident.ID) []ident.ID
	// SubscriptionCount reports the number of installed filters.
	SubscriptionCount() int
}

// ErrNoSuchSubscription reports an unsubscribe for an unknown pair.
var ErrNoSuchSubscription = errors.New("matcher: no such subscription")

// ErrNilFilter reports a nil filter argument.
var ErrNilFilter = errors.New("matcher: nil filter")

// Kind selects a matcher implementation by name.
type Kind string

// Matcher kinds.
const (
	KindSiena Kind = "siena"
	KindFast  Kind = "fast"
)

// New builds a matcher of the given kind.
func New(kind Kind) (Matcher, error) {
	switch kind {
	case KindSiena:
		return NewSiena(), nil
	case KindFast:
		return NewFast(), nil
	case KindTyped:
		return NewTypedMatcher(), nil
	default:
		return nil, errors.New("matcher: unknown kind " + string(kind))
	}
}
