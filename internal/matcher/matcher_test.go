package matcher

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// both runs a subtest against each engine.
func both(t *testing.T, fn func(t *testing.T, m Matcher)) {
	t.Helper()
	for _, kind := range []Kind{KindSiena, KindFast} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m, err := New(kind)
			if err != nil {
				t.Fatalf("New(%s): %v", kind, err)
			}
			fn(t, m)
		})
	}
}

func idsEqual(a, b []ident.ID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]ident.ID(nil), a...)
	bs := append([]ident.ID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind("nope")); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestBasicMatch(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		sub := ident.New(1)
		f := event.NewFilter().WhereType("alarm").Where("value", event.OpGt, event.Int(100))
		if err := m.Subscribe(sub, f); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
		hit := event.NewTyped("alarm").SetInt("value", 150)
		if got := m.Match(hit); !idsEqual(got, []ident.ID{sub}) {
			t.Errorf("Match(hit) = %v", got)
		}
		miss := event.NewTyped("alarm").SetInt("value", 50)
		if got := m.Match(miss); len(got) != 0 {
			t.Errorf("Match(miss) = %v", got)
		}
		wrong := event.NewTyped("reading").SetInt("value", 150)
		if got := m.Match(wrong); len(got) != 0 {
			t.Errorf("Match(wrong type) = %v", got)
		}
	})
}

func TestEmptyFilterMatchesAll(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		sub := ident.New(9)
		if err := m.Subscribe(sub, event.NewFilter()); err != nil {
			t.Fatal(err)
		}
		if got := m.Match(event.New()); !idsEqual(got, []ident.ID{sub}) {
			t.Errorf("empty filter missed empty event: %v", got)
		}
		if got := m.Match(event.NewTyped("x").SetInt("v", 1)); !idsEqual(got, []ident.ID{sub}) {
			t.Errorf("empty filter missed typed event: %v", got)
		}
	})
}

func TestDistinctSubscribersDeduplicated(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		sub := ident.New(2)
		f1 := event.NewFilter().WhereType("alarm")
		f2 := event.NewFilter().Where("value", event.OpExists, event.Value{})
		if err := m.Subscribe(sub, f1); err != nil {
			t.Fatal(err)
		}
		if err := m.Subscribe(sub, f2); err != nil {
			t.Fatal(err)
		}
		e := event.NewTyped("alarm").SetInt("value", 1)
		if got := m.Match(e); !idsEqual(got, []ident.ID{sub}) {
			t.Errorf("Match = %v, want single dedup'd subscriber", got)
		}
	})
}

func TestSubscribeIdempotent(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		sub := ident.New(3)
		f := event.NewFilter().WhereType("x")
		if err := m.Subscribe(sub, f); err != nil {
			t.Fatal(err)
		}
		if err := m.Subscribe(sub, f.Clone()); err != nil {
			t.Fatal(err)
		}
		if n := m.SubscriptionCount(); n != 1 {
			t.Errorf("count = %d, want 1", n)
		}
	})
}

func TestUnsubscribe(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		sub := ident.New(4)
		f := event.NewFilter().WhereType("x")
		if err := m.Subscribe(sub, f); err != nil {
			t.Fatal(err)
		}
		if err := m.Unsubscribe(sub, f.Clone()); err != nil {
			t.Fatalf("unsubscribe: %v", err)
		}
		if got := m.Match(event.NewTyped("x")); len(got) != 0 {
			t.Errorf("match after unsubscribe: %v", got)
		}
		if err := m.Unsubscribe(sub, f); err == nil {
			t.Error("double unsubscribe succeeded")
		}
		if n := m.SubscriptionCount(); n != 0 {
			t.Errorf("count = %d", n)
		}
	})
}

func TestUnsubscribeAll(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		a, b := ident.New(5), ident.New(6)
		for i := 0; i < 5; i++ {
			f := event.NewFilter().Where("k", event.OpEq, event.Int(int64(i)))
			if err := m.Subscribe(a, f); err != nil {
				t.Fatal(err)
			}
		}
		fb := event.NewFilter().Where("k", event.OpEq, event.Int(2))
		if err := m.Subscribe(b, fb); err != nil {
			t.Fatal(err)
		}
		m.UnsubscribeAll(a)
		if n := m.SubscriptionCount(); n != 1 {
			t.Errorf("count after UnsubscribeAll = %d, want 1", n)
		}
		got := m.Match(event.New().SetInt("k", 2))
		if !idsEqual(got, []ident.ID{b}) {
			t.Errorf("Match = %v, want only b", got)
		}
	})
}

func TestNilAndInvalidFilters(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		if err := m.Subscribe(ident.New(7), nil); err == nil {
			t.Error("nil filter accepted")
		}
		bad := event.NewFilter().Where("", event.OpEq, event.Int(1))
		if err := m.Subscribe(ident.New(7), bad); err == nil {
			t.Error("invalid filter accepted")
		}
		if err := m.Unsubscribe(ident.New(7), nil); err == nil {
			t.Error("nil unsubscribe accepted")
		}
	})
}

func TestStringAndRangeOperators(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		subs := map[string]*event.Filter{
			"prefix":   event.NewFilter().Where("s", event.OpPrefix, event.Str("ab")),
			"suffix":   event.NewFilter().Where("s", event.OpSuffix, event.Str("yz")),
			"contains": event.NewFilter().Where("s", event.OpContains, event.Str("mid")),
			"ne":       event.NewFilter().Where("s", event.OpNe, event.Str("skip")),
			"range":    event.NewFilter().Where("v", event.OpGe, event.Float(1.5)).Where("v", event.OpLt, event.Int(10)),
		}
		ids := map[string]ident.ID{}
		next := uint64(100)
		for name, f := range subs {
			id := ident.New(next)
			next++
			ids[name] = id
			if err := m.Subscribe(id, f); err != nil {
				t.Fatalf("subscribe %s: %v", name, err)
			}
		}

		got := m.Match(event.New().SetStr("s", "ab-mid-yz").SetFloat("v", 5))
		want := []ident.ID{ids["prefix"], ids["suffix"], ids["contains"], ids["ne"], ids["range"]}
		if !idsEqual(got, want) {
			t.Errorf("Match = %v, want %v", got, want)
		}

		got = m.Match(event.New().SetStr("s", "skip").SetFloat("v", 10))
		if len(got) != 0 {
			t.Errorf("Match(skip,10) = %v, want none", got)
		}
	})
}

func TestBytesEqualityViaLinearPath(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		sub := ident.New(11)
		f := event.NewFilter().Where("raw", event.OpEq, event.Bytes([]byte{1, 2}))
		if err := m.Subscribe(sub, f); err != nil {
			t.Fatal(err)
		}
		if got := m.Match(event.New().SetBytes("raw", []byte{1, 2})); !idsEqual(got, []ident.ID{sub}) {
			t.Errorf("bytes eq missed: %v", got)
		}
		if got := m.Match(event.New().SetBytes("raw", []byte{1, 3})); len(got) != 0 {
			t.Errorf("bytes mismatch matched: %v", got)
		}
	})
}

// randomWorkload builds a deterministic random set of filters and
// events exercising all operators and value kinds.
type randomWorkload struct {
	subs    []ident.ID
	filters []*event.Filter
	events  []*event.Event
}

func makeWorkload(seed int64, nFilters, nEvents int) randomWorkload {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"type", "value", "unit", "seq", "flag", "raw"}
	ops := []event.Op{
		event.OpEq, event.OpNe, event.OpLt, event.OpLe, event.OpGt,
		event.OpGe, event.OpPrefix, event.OpSuffix, event.OpContains,
		event.OpExists,
	}
	strs := []string{"alarm", "reading", "alpha", "beta", "albatross", "readout"}

	randomValue := func() event.Value {
		switch rng.Intn(5) {
		case 0:
			return event.Int(int64(rng.Intn(20) - 10))
		case 1:
			return event.Float(float64(rng.Intn(40))/2 - 10)
		case 2:
			return event.Str(strs[rng.Intn(len(strs))])
		case 3:
			return event.Bool(rng.Intn(2) == 0)
		default:
			return event.Bytes([]byte(strs[rng.Intn(len(strs))]))
		}
	}

	var w randomWorkload
	for i := 0; i < nFilters; i++ {
		f := event.NewFilter()
		for c := 0; c < 1+rng.Intn(3); c++ {
			name := names[rng.Intn(len(names))]
			op := ops[rng.Intn(len(ops))]
			if op == event.OpExists {
				f.Where(name, op, event.Value{})
			} else {
				f.Where(name, op, randomValue())
			}
		}
		w.filters = append(w.filters, f)
		w.subs = append(w.subs, ident.New(uint64(1000+i)))
	}
	for i := 0; i < nEvents; i++ {
		e := event.New()
		for a := 0; a < rng.Intn(5); a++ {
			e.Set(names[rng.Intn(len(names))], randomValue())
		}
		w.events = append(w.events, e)
	}
	return w
}

// TestEngineEquivalence is the core differential property: both
// matching engines must produce identical results for any workload —
// the paper's two buses differ in mechanism, not semantics.
func TestEngineEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		w := makeWorkload(seed, 60, 200)
		siena, fast := NewSiena(), NewFast()
		for i, f := range w.filters {
			if err := siena.Subscribe(w.subs[i], f); err != nil {
				t.Fatalf("siena subscribe: %v", err)
			}
			if err := fast.Subscribe(w.subs[i], f); err != nil {
				t.Fatalf("fast subscribe: %v", err)
			}
		}
		for i, e := range w.events {
			gs, gf := siena.Match(e), fast.Match(e)
			if !idsEqual(gs, gf) {
				// Identify the disagreeing filter by brute force.
				for j, f := range w.filters {
					want := f.Matches(e)
					t.Logf("filter %d (%s) direct=%v", j, f, want)
				}
				t.Fatalf("seed %d event %d (%s): siena=%v fast=%v", seed, i, e, gs, gf)
			}
			// Both must agree with direct evaluation.
			var want []ident.ID
			seen := map[ident.ID]bool{}
			for j, f := range w.filters {
				if f.Matches(e) && !seen[w.subs[j]] {
					seen[w.subs[j]] = true
					want = append(want, w.subs[j])
				}
			}
			if !idsEqual(gf, want) {
				t.Fatalf("seed %d event %d: engines=%v direct=%v", seed, i, gf, want)
			}
		}
	}
}

// TestEngineEquivalenceUnderChurn interleaves subscribes, unsubscribes
// and matches.
func TestEngineEquivalenceUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	w := makeWorkload(42, 40, 1)
	siena, fast := NewSiena(), NewFast()
	installed := map[int]bool{}

	for step := 0; step < 800; step++ {
		i := rng.Intn(len(w.filters))
		switch {
		case !installed[i]:
			if err := siena.Subscribe(w.subs[i], w.filters[i]); err != nil {
				t.Fatal(err)
			}
			if err := fast.Subscribe(w.subs[i], w.filters[i]); err != nil {
				t.Fatal(err)
			}
			installed[i] = true
		case rng.Intn(2) == 0:
			if err := siena.Unsubscribe(w.subs[i], w.filters[i]); err != nil {
				t.Fatal(err)
			}
			if err := fast.Unsubscribe(w.subs[i], w.filters[i]); err != nil {
				t.Fatal(err)
			}
			installed[i] = false
		default:
			fast.UnsubscribeAll(w.subs[i])
			siena.UnsubscribeAll(w.subs[i])
			installed[i] = false
		}
		if siena.SubscriptionCount() != fast.SubscriptionCount() {
			t.Fatalf("count divergence: %d vs %d", siena.SubscriptionCount(), fast.SubscriptionCount())
		}
		ew := makeWorkload(int64(step), 0, 3)
		for _, e := range ew.events {
			if gs, gf := siena.Match(e), fast.Match(e); !idsEqual(gs, gf) {
				t.Fatalf("step %d: siena=%v fast=%v for %s", step, gs, gf, e)
			}
		}
	}
}

func TestConcurrentMatchAndSubscribe(t *testing.T) {
	both(t, func(t *testing.T, m Matcher) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 200; i++ {
				f := event.NewFilter().Where("k", event.OpEq, event.Int(int64(i%10)))
				_ = m.Subscribe(ident.New(uint64(i%7+1)), f)
				if i%3 == 0 {
					_ = m.Unsubscribe(ident.New(uint64(i%7+1)), f)
				}
			}
		}()
		for i := 0; i < 200; i++ {
			m.Match(event.New().SetInt("k", int64(i%10)))
		}
		<-done
	})
}

func TestNames(t *testing.T) {
	if NewSiena().Name() != "siena" || NewFast().Name() != "fast" {
		t.Error("engine names wrong")
	}
}

func ExampleNew() {
	m, _ := New(KindFast)
	_ = m.Subscribe(ident.New(1), event.NewFilter().WhereType("alarm"))
	matches := m.Match(event.NewTyped("alarm"))
	fmt.Println(len(matches))
	// Output: 1
}
