package matcher

import (
	"strings"
	"sync"
	"sync/atomic"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// SienaMatcher models the Siena-based prototype of §IV: a general
// pub/sub engine with its own internal attribute model. Every published
// event is translated into that model before matching ("translation to
// or from our own data types", §V — the overhead the paper attributes
// Siena's lower performance to), and filters are translated on
// subscription. Subscriptions are kept in a covering poset, as in
// Siena's server: a filter that is covered by a non-matching ancestor
// is skipped without evaluation.
//
// The read path is lock-free: Match loads an immutable poset snapshot
// through an atomic pointer. Writers rebuild the node slice under a
// writer mutex — poset insertion is already O(n) (covering is computed
// against every existing node), so the O(n) clone-and-remap that keeps
// published snapshots immutable does not change Subscribe's complexity
// class. The per-match translation allocations are untouched: they are
// the §V overhead under measurement (TestSienaTranslationAllocsPinned).
type SienaMatcher struct {
	// snap is the immutable poset snapshot the lock-free read path
	// loads. Nodes and their parent edges are frozen once published.
	snap atomic.Pointer[sienaIndex]

	// mu serialises writers only.
	mu sync.Mutex
}

var _ Matcher = (*SienaMatcher)(nil)
var _ ScratchMatcher = (*SienaMatcher)(nil)

// sienaIndex is one immutable poset snapshot.
type sienaIndex struct {
	nodes []*sienaNode
}

var emptySienaIndex = &sienaIndex{}

// sienaNode is one poset entry. Within a published snapshot a node is
// immutable; writers clone every node (remapping parent edges) when
// the poset changes.
type sienaNode struct {
	sub      ident.ID
	original *event.Filter // retained for Unsubscribe equality
	filter   sienaFilter   // translated form used for evaluation
	parents  []*sienaNode  // nodes whose filters cover this one
}

// sienaValue is Siena's generic boxed attribute value. Boxing through
// interface{} is deliberate: it reproduces the allocation and dynamic
// dispatch of a general-purpose engine.
type sienaValue struct {
	kind byte
	data interface{}
}

const (
	sienaInt byte = iota + 1
	sienaFloat
	sienaString
	sienaBool
	sienaBytes
)

// sienaNotification is Siena's internal event form.
type sienaNotification map[string]sienaValue

// sienaConstraint is Siena's internal constraint form.
type sienaConstraint struct {
	name  string
	op    event.Op
	value sienaValue
}

type sienaFilter []sienaConstraint

// NewSiena returns an empty SienaMatcher.
func NewSiena() *SienaMatcher {
	m := &SienaMatcher{}
	m.snap.Store(emptySienaIndex)
	return m
}

// Name implements Matcher.
func (m *SienaMatcher) Name() string { return string(KindSiena) }

// translateValue boxes a bus-native value into Siena's model. Byte
// slices are copied — the translation boundary owns its data.
func translateValue(v event.Value) sienaValue {
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		return sienaValue{kind: sienaInt, data: i}
	case event.TypeFloat:
		f, _ := v.Float()
		return sienaValue{kind: sienaFloat, data: f}
	case event.TypeString:
		s, _ := v.Str()
		// Siena's string attributes are fresh copies.
		return sienaValue{kind: sienaString, data: string(append([]byte(nil), s...))}
	case event.TypeBool:
		b, _ := v.Bool()
		return sienaValue{kind: sienaBool, data: b}
	case event.TypeBytes:
		b, _ := v.Bytes() // Bytes() already copies
		return sienaValue{kind: sienaBytes, data: b}
	default:
		return sienaValue{}
	}
}

// translateEvent converts a bus event into a Siena notification: a
// fresh map with every attribute boxed — the per-event translation cost
// the dedicated matcher avoids. Unlike the other matchers this loop is
// deliberately NOT migrated to the Len/At accessors: its shape and its
// allocations (fresh map, copied names, boxed values, closure
// iteration) are the §V overhead under measurement and are preserved
// verbatim (see TestSienaTranslationAllocsPinned and the ROADMAP
// caveat — do not optimise without splitting flavours).
func translateEvent(e *event.Event) sienaNotification {
	n := make(sienaNotification, e.Len())
	e.Range(func(name string, v event.Value) bool {
		// Attribute names are copied too, as a marshalling boundary
		// would.
		n[string(append([]byte(nil), name...))] = translateValue(v)
		return true
	})
	return n
}

// translateFilter converts a bus filter into Siena's internal form.
func translateFilter(f *event.Filter) sienaFilter {
	cs := f.Constraints()
	sf := make(sienaFilter, 0, len(cs))
	for _, c := range cs {
		sf = append(sf, sienaConstraint{
			name:  c.Name,
			op:    c.Op,
			value: translateValue(c.Value),
		})
	}
	return sf
}

// sienaNumeric projects a boxed value to float64 for comparison.
func sienaNumeric(v sienaValue) (float64, bool) {
	switch v.kind {
	case sienaInt:
		i, ok := v.data.(int64)
		return float64(i), ok
	case sienaFloat:
		f, ok := v.data.(float64)
		return f, ok
	default:
		return 0, false
	}
}

func sienaStringable(v sienaValue) (string, bool) {
	switch v.kind {
	case sienaString:
		s, ok := v.data.(string)
		return s, ok
	case sienaBytes:
		b, ok := v.data.([]byte)
		if !ok {
			return "", false
		}
		return string(b), true
	default:
		return "", false
	}
}

// matchConstraint evaluates one boxed constraint against a boxed value
// using generic type switches — the dynamic-dispatch path of a general
// engine.
func matchConstraint(c sienaConstraint, v sienaValue) bool {
	switch c.op {
	case event.OpExists:
		return v.kind != 0
	case event.OpEq, event.OpNe:
		eq, comparable := sienaEqual(v, c.value)
		if !comparable {
			return false
		}
		if c.op == event.OpEq {
			return eq
		}
		return !eq
	case event.OpLt, event.OpLe, event.OpGt, event.OpGe:
		cmp, ok := sienaCompare(v, c.value)
		if !ok {
			return false
		}
		switch c.op {
		case event.OpLt:
			return cmp < 0
		case event.OpLe:
			return cmp <= 0
		case event.OpGt:
			return cmp > 0
		default:
			return cmp >= 0
		}
	case event.OpPrefix, event.OpSuffix, event.OpContains:
		s, ok1 := sienaStringable(v)
		pat, ok2 := sienaStringable(c.value)
		if !ok1 || !ok2 {
			return false
		}
		switch c.op {
		case event.OpPrefix:
			return strings.HasPrefix(s, pat)
		case event.OpSuffix:
			return strings.HasSuffix(s, pat)
		default:
			return strings.Contains(s, pat)
		}
	default:
		return false
	}
}

func sienaEqual(a, b sienaValue) (eq, comparable bool) {
	if an, ok := sienaNumeric(a); ok {
		bn, ok2 := sienaNumeric(b)
		if !ok2 {
			return false, false
		}
		return an == bn, true
	}
	as, aok := sienaStringable(a)
	if aok {
		bs, bok := sienaStringable(b)
		if !bok {
			return false, false
		}
		// String-like values are comparable as a family (so != is
		// meaningful across string/bytes), but equal only within the
		// same kind — matching event.Constraint semantics exactly.
		return a.kind == b.kind && as == bs, true
	}
	if a.kind == sienaBool && b.kind == sienaBool {
		ab, _ := a.data.(bool)
		bb, _ := b.data.(bool)
		return ab == bb, true
	}
	return false, false
}

func sienaCompare(a, b sienaValue) (int, bool) {
	if an, ok := sienaNumeric(a); ok {
		bn, ok2 := sienaNumeric(b)
		if !ok2 {
			return 0, false
		}
		switch {
		case an < bn:
			return -1, true
		case an > bn:
			return 1, true
		default:
			return 0, true
		}
	}
	as, aok := sienaStringable(a)
	bs, bok := sienaStringable(b)
	if aok && bok && (a.kind == sienaBytes) == (b.kind == sienaBytes) {
		return strings.Compare(as, bs), true
	}
	if a.kind == sienaBool && b.kind == sienaBool {
		ab, _ := a.data.(bool)
		bb, _ := b.data.(bool)
		switch {
		case !ab && bb:
			return -1, true
		case ab && !bb:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// matchFilter evaluates a translated filter against a notification.
func matchFilter(f sienaFilter, n sienaNotification) bool {
	for _, c := range f {
		v, ok := n[c.name]
		if !ok {
			return false
		}
		if c.op != event.OpExists && !matchConstraint(c, v) {
			return false
		}
	}
	return true
}

// clonePoset copies the poset for the next snapshot: fresh node
// structs with parent edges remapped onto the clones (edges to nodes
// in dead are dropped). The translated filters and originals are
// immutable and shared. Runs under m.mu.
func clonePoset(cur []*sienaNode, dead map[*sienaNode]bool) []*sienaNode {
	remap := make(map[*sienaNode]*sienaNode, len(cur))
	next := make([]*sienaNode, 0, len(cur))
	for _, n := range cur {
		if dead[n] {
			continue
		}
		c := &sienaNode{sub: n.sub, original: n.original, filter: n.filter}
		remap[n] = c
		next = append(next, c)
	}
	for _, n := range cur {
		if dead[n] {
			continue
		}
		c := remap[n]
		for _, p := range n.parents {
			if np, ok := remap[p]; ok {
				c.parents = append(c.parents, np)
			}
		}
	}
	return next
}

// Subscribe implements Matcher. Poset edges are computed against every
// existing node (Siena's O(n) poset insertion); the whole poset is
// cloned for the next snapshot, which insertion's own O(n) cover
// checks dominate.
func (m *SienaMatcher) Subscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	if err := f.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load().nodes
	for _, n := range cur {
		if n.sub == sub && n.original.Equal(f) {
			return nil // idempotent
		}
	}
	next := clonePoset(cur, nil)
	node := &sienaNode{
		sub:      sub,
		original: f.Clone(),
		filter:   translateFilter(f),
	}
	for _, n := range next {
		if n.original.Covers(f) && !f.Covers(n.original) {
			node.parents = append(node.parents, n)
		} else if f.Covers(n.original) && !n.original.Covers(f) {
			n.parents = append(n.parents, node)
		}
	}
	next = append(next, node)
	m.snap.Store(&sienaIndex{nodes: next})
	return nil
}

// Unsubscribe implements Matcher.
func (m *SienaMatcher) Unsubscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load().nodes
	for _, n := range cur {
		if n.sub != sub || !n.original.Equal(f) {
			continue
		}
		m.snap.Store(&sienaIndex{nodes: clonePoset(cur, map[*sienaNode]bool{n: true})})
		return nil
	}
	return ErrNoSuchSubscription
}

// UnsubscribeAll implements Matcher.
func (m *SienaMatcher) UnsubscribeAll(sub ident.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.snap.Load().nodes
	var dead map[*sienaNode]bool
	for _, n := range cur {
		if n.sub == sub {
			if dead == nil {
				dead = make(map[*sienaNode]bool)
			}
			dead[n] = true
		}
	}
	if dead == nil {
		return
	}
	m.snap.Store(&sienaIndex{nodes: clonePoset(cur, dead)})
}

// SubscriptionCount implements Matcher. Lock-free.
func (m *SienaMatcher) SubscriptionCount() int {
	return len(m.snap.Load().nodes)
}

// Match implements Matcher. See MatchAppend.
func (m *SienaMatcher) Match(e *event.Event) []ident.ID {
	return m.MatchAppend(e, nil)
}

// MatchAppendScratch implements ScratchMatcher. The scratch is
// deliberately unused: Siena's per-match allocations (translation,
// memo, dedup map) are the §V general-engine overhead under
// measurement and must stay byte-for-byte with the seed
// (TestSienaTranslationAllocsPinned) — only the lock acquisition is
// gone from the read path.
func (m *SienaMatcher) MatchAppendScratch(e *event.Event, dst []ident.ID, _ *Scratch) []ident.ID {
	return m.MatchAppend(e, dst)
}

// MatchAppend implements Matcher: translate the event into Siena's
// model, then evaluate the poset with memoisation (a node covered by a
// non-matching ancestor is skipped). The poset is an immutable
// snapshot loaded through an atomic pointer — no lock on the read
// path. The per-match translation and memo allocations are retained
// deliberately — they are the general-engine overhead §V measures
// against the dedicated matcher.
func (m *SienaMatcher) MatchAppend(e *event.Event, dst []ident.ID) []ident.ID {
	nodes := m.snap.Load().nodes

	notif := translateEvent(e)
	memo := make(map[*sienaNode]bool, len(nodes))
	var eval func(n *sienaNode) bool
	eval = func(n *sienaNode) bool {
		if r, ok := memo[n]; ok {
			return r
		}
		// Guard against accidental cycles (equal filters never link,
		// but stay safe): mark false during evaluation.
		memo[n] = false
		for _, p := range n.parents {
			if !eval(p) {
				return false
			}
		}
		r := matchFilter(n.filter, notif)
		memo[n] = r
		return r
	}

	seen := make(map[ident.ID]bool, 8)
	for _, n := range nodes {
		if eval(n) && !seen[n.sub] {
			seen[n.sub] = true
			dst = append(dst, n.sub)
		}
	}
	return dst
}
