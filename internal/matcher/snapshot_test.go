package matcher

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// Tests for the lock-free snapshot read path shared by all three
// engines: Match must never block on — or even acquire — the writer
// mutex, and concurrent churn must never corrupt a reader's view.

// allThree runs a subtest against every engine, using type-pinned
// filters so the typed engine can host the same workload.
func allThree(t *testing.T, fn func(t *testing.T, m Matcher)) {
	t.Helper()
	for _, kind := range []Kind{KindSiena, KindFast, KindTyped} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m, err := New(kind)
			if err != nil {
				t.Fatalf("New(%s): %v", kind, err)
			}
			fn(t, m)
		})
	}
}

// churnFilter builds a deterministic type-pinned filter, valid for all
// three engines.
func churnFilter(i int) *event.Filter {
	return event.NewFilter().
		WhereType(fmt.Sprintf("churn/t%d", i%7)).
		Where("value", event.OpGt, event.Int(int64(i%50)))
}

func churnEvent(i int) *event.Event {
	return event.NewTyped(fmt.Sprintf("churn/t%d", i%7)).
		SetInt("value", int64(i%100)).
		SetStr("unit", "bpm")
}

// TestSnapshotChurnRace hammers every engine with concurrent writers
// (Subscribe / Unsubscribe / UnsubscribeAll) and readers (Match plus,
// where supported, MatchAppendScratch on a private Scratch per
// reader). It asserts nothing about the verdicts — interleavings are
// arbitrary — only that every returned ID was a subscriber that could
// legitimately be installed, and it exists to run under -race: any
// write observable mid-mutation by a lock-free reader is a failure.
func TestSnapshotChurnRace(t *testing.T) {
	allThree(t, func(t *testing.T, m Matcher) {
		const (
			writers = 4
			readers = 4
			steps   = 300
		)
		sm, _ := m.(ScratchMatcher)
		var writerWG, readerWG sync.WaitGroup
		stop := make(chan struct{})

		for w := 0; w < writers; w++ {
			writerWG.Add(1)
			go func(w int) {
				defer writerWG.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < steps; i++ {
					n := rng.Intn(40)
					sub := ident.New(uint64(w*100 + n%10 + 1))
					f := churnFilter(n)
					switch rng.Intn(4) {
					case 0, 1:
						if err := m.Subscribe(sub, f); err != nil {
							t.Error(err)
							return
						}
					case 2:
						_ = m.Unsubscribe(sub, f) // ErrNoSuchSubscription is fine
					default:
						m.UnsubscribeAll(sub)
					}
				}
			}(w)
		}

		for r := 0; r < readers; r++ {
			readerWG.Add(1)
			go func(r int) {
				defer readerWG.Done()
				sc := NewScratch()
				var dst []ident.ID
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					e := churnEvent(i + r)
					if sm != nil && i%2 == 0 {
						dst = sm.MatchAppendScratch(e, dst[:0], sc)
					} else {
						dst = m.MatchAppend(e, dst[:0])
					}
					for _, id := range dst {
						if id.IsNil() {
							t.Error("matched a nil subscriber ID")
							return
						}
					}
				}
			}(r)
		}

		// Writers bound the test; once they finish, stop the readers.
		writersDone := make(chan struct{})
		go func() { writerWG.Wait(); close(writersDone) }()
		select {
		case <-writersDone:
		case <-time.After(30 * time.Second):
			t.Fatal("writer churn deadlocked")
		}
		close(stop)
		readersDone := make(chan struct{})
		go func() { readerWG.Wait(); close(readersDone) }()
		select {
		case <-readersDone:
		case <-time.After(30 * time.Second):
			t.Fatal("readers failed to drain — Match blocked")
		}
	})
}

// TestMatchCompletesUnderWriterLock is the deterministic lock-freedom
// proof: with the engine's writer mutex held, Match must still return.
// Under the seed's RWMutex design this test deadlocks; under the
// snapshot design the read path touches no lock at all.
func TestMatchCompletesUnderWriterLock(t *testing.T) {
	lockOf := func(m Matcher) *sync.Mutex {
		switch v := m.(type) {
		case *FastMatcher:
			return &v.mu
		case *SienaMatcher:
			return &v.mu
		case *TypedMatcher:
			return &v.mu
		}
		return nil
	}
	allThree(t, func(t *testing.T, m Matcher) {
		sub := ident.New(0x31)
		if err := m.Subscribe(sub, churnFilter(3)); err != nil {
			t.Fatal(err)
		}
		// churnFilter(3) wants type churn/t3 and value > 3.
		e := event.NewTyped("churn/t3").SetInt("value", 49)
		mu := lockOf(m)
		if mu == nil {
			t.Fatalf("no writer mutex for %T", m)
		}
		mu.Lock()
		defer mu.Unlock()

		got := make(chan []ident.ID, 1)
		go func() { got <- m.Match(e) }()
		select {
		case ids := <-got:
			if !idsEqual(ids, []ident.ID{sub}) {
				t.Fatalf("match under writer lock returned %v, want [%v]", ids, sub)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Match blocked on the writer mutex — read path is not lock-free")
		}
	})
}

// TestMatchAcquiresNoMutex asserts through the runtime's mutex
// profiler that the match path never contends on a mutex while
// concurrent writers churn the subscription set. The writer side is
// the positive control: writer-writer contention on the same run must
// show up in the profile, proving the profiler would also have caught
// a locking match path (under the seed design, readers contend with
// writers on the RWMutex and Match frames appear here).
func TestMatchAcquiresNoMutex(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling soak")
	}
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	allThree(t, func(t *testing.T, m Matcher) {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		var stopped atomic.Bool
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; !stopped.Load(); i++ {
					sub := ident.New(uint64(w*10 + i%5 + 1))
					f := churnFilter(i % 20)
					if err := m.Subscribe(sub, f); err != nil {
						t.Error(err)
						return
					}
					_ = m.Unsubscribe(sub, f)
				}
			}(w)
		}
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var dst []ident.ID
				for i := 0; !stopped.Load(); i++ {
					dst = m.MatchAppend(churnEvent(i+r), dst[:0])
				}
			}(r)
		}
		time.Sleep(200 * time.Millisecond)
		stopped.Store(true)
		close(stop)
		wg.Wait()

		var buf bytes.Buffer
		if err := pprof.Lookup("mutex").WriteTo(&buf, 1); err != nil {
			t.Fatal(err)
		}
		profile := buf.String()
		for _, frame := range []string{"MatchAppend", "MatchAppendScratch", ").Match"} {
			if strings.Contains(profile, frame) {
				t.Fatalf("match path contended on a mutex (%s frames in mutex profile):\n%s",
					frame, profile)
			}
		}
		if !strings.Contains(profile, "Subscribe") && !strings.Contains(profile, "Unsubscribe") {
			t.Logf("no writer contention sampled this run (profile positive control missing); " +
				"match-path absence still holds but proves less")
		}
	})
}

// typedOracle answers "does this typed subscription match this event"
// by first principles: the event's type path must extend the
// subscription's path, and every residual guard must hold.
func typedOracle(path []string, guards []event.Constraint, e *event.Event) bool {
	ep := splitTypePath(e.Type())
	if len(ep) < len(path) {
		return false
	}
	for i := range path {
		if ep[i] != path[i] {
			return false
		}
	}
	return guardsMatch(guards, e)
}

// TestTypedOracleRandomized cross-checks the typed engine against the
// brute-force oracle over randomized subscription sets and events,
// with churn between rounds — the typed analogue of
// TestEngineEquivalence, which covers only the content-based engines.
func TestTypedOracleRandomized(t *testing.T) {
	types := []string{"a", "a/b", "a/b/c", "a/x", "d", "d/e"}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewTypedMatcher()

		type sub struct {
			id     ident.ID
			f      *event.Filter
			path   []string
			guards []event.Constraint
		}
		var installed []sub
		for i := 0; i < 40; i++ {
			f := event.NewFilter().WhereType(types[rng.Intn(len(types))])
			if rng.Intn(2) == 0 {
				f = f.Where("value", event.OpGt, event.Int(int64(rng.Intn(50))))
			}
			if rng.Intn(4) == 0 {
				f = f.Where("unit", event.OpEq, event.Str("bpm"))
			}
			path, guards, ok := typePathOf(f)
			if !ok {
				t.Fatal("filter lost its type constraint")
			}
			id := ident.New(uint64(rng.Intn(12) + 1))
			dup := false
			for _, s := range installed {
				dup = dup || (s.id == id && s.f.Equal(f))
			}
			if dup {
				continue // Subscribe is idempotent; don't double-track
			}
			if err := m.Subscribe(id, f); err != nil {
				t.Fatal(err)
			}
			installed = append(installed, sub{id: id, f: f, path: path, guards: guards})
		}
		// Churn: drop a random third, so match runs against a tree that
		// has seen path-copied removals, not just inserts.
		for i := 0; i < len(installed); {
			if rng.Intn(3) == 0 {
				s := installed[i]
				if err := m.Unsubscribe(s.id, s.f); err != nil {
					t.Fatal(err)
				}
				installed = append(installed[:i], installed[i+1:]...)
				continue
			}
			i++
		}

		for i := 0; i < 60; i++ {
			e := event.NewTyped(types[rng.Intn(len(types))]+pick(rng, "", "", "/leaf")).
				SetInt("value", int64(rng.Intn(60))).
				SetStr("unit", pick(rng, "bpm", "mmHg", "bpm"))
			var want []ident.ID
			seen := map[ident.ID]bool{}
			for _, s := range installed {
				if typedOracle(s.path, s.guards, e) && !seen[s.id] {
					seen[s.id] = true
					want = append(want, s.id)
				}
			}
			if got := m.Match(e); !idsEqual(got, want) {
				t.Fatalf("seed %d event %d (%s): typed=%v oracle=%v", seed, i, e, got, want)
			}
		}
	}
}

func pick(rng *rand.Rand, opts ...string) string { return opts[rng.Intn(len(opts))] }
