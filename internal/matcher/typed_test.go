package matcher

import (
	"errors"
	"testing"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

func typedFilter(path string, cs ...event.Constraint) *event.Filter {
	f := event.NewFilter().WhereType(path)
	for _, c := range cs {
		f.Where(c.Name, c.Op, c.Value)
	}
	return f
}

func TestTypedBasicMatch(t *testing.T) {
	m := NewTypedMatcher()
	sub := ident.New(1)
	if err := m.Subscribe(sub, typedFilter("alarm")); err != nil {
		t.Fatal(err)
	}
	if got := m.Match(event.NewTyped("alarm")); !idsEqual(got, []ident.ID{sub}) {
		t.Errorf("Match = %v", got)
	}
	if got := m.Match(event.NewTyped("reading")); len(got) != 0 {
		t.Errorf("wrong type matched: %v", got)
	}
	if got := m.Match(event.New()); len(got) != 0 {
		t.Errorf("untyped event matched: %v", got)
	}
}

func TestTypedSubtypePolymorphism(t *testing.T) {
	m := NewTypedMatcher()
	parent, child, sibling := ident.New(1), ident.New(2), ident.New(3)
	if err := m.Subscribe(parent, typedFilter("reading")); err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe(child, typedFilter("reading/heart-rate")); err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe(sibling, typedFilter("reading/spo2")); err != nil {
		t.Fatal(err)
	}

	// A heart-rate reading reaches the parent and the exact subtype,
	// not the sibling.
	got := m.Match(event.NewTyped("reading/heart-rate"))
	if !idsEqual(got, []ident.ID{parent, child}) {
		t.Errorf("Match(reading/heart-rate) = %v", got)
	}
	// A plain reading reaches only the parent.
	got = m.Match(event.NewTyped("reading"))
	if !idsEqual(got, []ident.ID{parent}) {
		t.Errorf("Match(reading) = %v", got)
	}
	// A deeper subtype still reaches both ancestors.
	got = m.Match(event.NewTyped("reading/heart-rate/resting"))
	if !idsEqual(got, []ident.ID{parent, child}) {
		t.Errorf("Match(reading/heart-rate/resting) = %v", got)
	}
}

func TestTypedContentGuards(t *testing.T) {
	m := NewTypedMatcher()
	sub := ident.New(1)
	f := typedFilter("reading/heart-rate",
		event.Constraint{Name: "value", Op: event.OpGt, Value: event.Int(180)})
	if err := m.Subscribe(sub, f); err != nil {
		t.Fatal(err)
	}
	if got := m.Match(event.NewTyped("reading/heart-rate").SetFloat("value", 195)); !idsEqual(got, []ident.ID{sub}) {
		t.Errorf("guarded match failed: %v", got)
	}
	if got := m.Match(event.NewTyped("reading/heart-rate").SetFloat("value", 70)); len(got) != 0 {
		t.Errorf("guard ignored: %v", got)
	}
	if got := m.Match(event.NewTyped("reading/heart-rate")); len(got) != 0 {
		t.Errorf("missing guarded attribute matched: %v", got)
	}
}

func TestTypedRejectsUntypedSubscription(t *testing.T) {
	m := NewTypedMatcher()
	err := m.Subscribe(ident.New(1), event.NewFilter().Where("value", event.OpGt, event.Int(1)))
	if !errors.Is(err, ErrUntypedSubscription) {
		t.Errorf("err = %v", err)
	}
	if err := m.Subscribe(ident.New(1), nil); !errors.Is(err, ErrNilFilter) {
		t.Errorf("nil err = %v", err)
	}
}

func TestTypedUnsubscribe(t *testing.T) {
	m := NewTypedMatcher()
	sub := ident.New(1)
	f := typedFilter("a/b")
	if err := m.Subscribe(sub, f); err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe(sub, f.Clone()); err != nil {
		t.Fatal(err) // idempotent
	}
	if m.SubscriptionCount() != 1 {
		t.Fatalf("count = %d", m.SubscriptionCount())
	}
	if err := m.Unsubscribe(sub, f); err != nil {
		t.Fatal(err)
	}
	if got := m.Match(event.NewTyped("a/b")); len(got) != 0 {
		t.Errorf("match after unsubscribe: %v", got)
	}
	if err := m.Unsubscribe(sub, f); err == nil {
		t.Error("double unsubscribe succeeded")
	}
}

func TestTypedUnsubscribeAll(t *testing.T) {
	m := NewTypedMatcher()
	a, b := ident.New(1), ident.New(2)
	for _, path := range []string{"x", "x/y", "z"} {
		if err := m.Subscribe(a, typedFilter(path)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Subscribe(b, typedFilter("x")); err != nil {
		t.Fatal(err)
	}
	m.UnsubscribeAll(a)
	if m.SubscriptionCount() != 1 {
		t.Errorf("count = %d", m.SubscriptionCount())
	}
	if got := m.Match(event.NewTyped("x/y")); !idsEqual(got, []ident.ID{b}) {
		t.Errorf("Match = %v", got)
	}
}

func TestTypedViaNewAndBusCompatible(t *testing.T) {
	m, err := New(KindTyped)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "typed" {
		t.Errorf("name = %s", m.Name())
	}
	// The typed engine agrees with the content engines on workloads
	// whose filters pin a flat type.
	fastM := NewFast()
	filters := []*event.Filter{
		typedFilter("alarm"),
		typedFilter("reading", event.Constraint{Name: "value", Op: event.OpGe, Value: event.Int(10)}),
	}
	for i, f := range filters {
		id := ident.New(uint64(100 + i))
		if err := m.Subscribe(id, f); err != nil {
			t.Fatal(err)
		}
		if err := fastM.Subscribe(id, f); err != nil {
			t.Fatal(err)
		}
	}
	events := []*event.Event{
		event.NewTyped("alarm"),
		event.NewTyped("reading").SetInt("value", 5),
		event.NewTyped("reading").SetInt("value", 15),
		event.NewTyped("other"),
	}
	for _, e := range events {
		if a, b := m.Match(e), fastM.Match(e); !idsEqual(a, b) {
			t.Errorf("typed=%v fast=%v for %s", a, b, e)
		}
	}
}

func TestTypedPathNormalisation(t *testing.T) {
	m := NewTypedMatcher()
	sub := ident.New(1)
	if err := m.Subscribe(sub, typedFilter("a//b/")); err != nil {
		t.Fatal(err)
	}
	if got := m.Match(event.NewTyped("a/b")); !idsEqual(got, []ident.ID{sub}) {
		t.Errorf("normalised path mismatch: %v", got)
	}
}
