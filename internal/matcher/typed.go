package matcher

import (
	"strings"
	"sync"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// TypedMatcher implements the type-based publish/subscribe mechanism
// the paper names as intended future work (§VI: "we also intend to
// replace the content-based publish/subscribe mechanism with a
// type-based publish/subscribe mechanism, to remove the reliance on
// arbitrary tags as event identifiers", citing Eugster et al.).
//
// Events are classified by their "type" attribute interpreted as a
// '/'-separated path ("reading/heart-rate"); a subscription to a type
// receives that type and every subtype, mirroring subtype polymorphism
// in type-based pub/sub. Additional constraints in a subscription
// filter are still applied as content guards after the type check —
// the hybrid Eugster et al. describe.
//
// TypedMatcher implements the same Matcher interface as the two
// content-based engines, so the bus can host it unchanged. A filter
// installed without a type-equality constraint is rejected: under
// type-based pub/sub the type is the unit of subscription.
type TypedMatcher struct {
	mu sync.RWMutex
	// root indexes subscriptions by type-path segment.
	root *typeNode
	// bySub tracks installed filters per subscriber for Unsubscribe.
	bySub map[ident.ID][]*typedSub
	count int
}

var _ Matcher = (*TypedMatcher)(nil)

type typeNode struct {
	children map[string]*typeNode
	// subs are subscriptions rooted exactly here; they match events
	// whose type path passes through this node.
	subs []*typedSub
}

type typedSub struct {
	sub    ident.ID
	filter *event.Filter // original filter, for equality
	guards []event.Constraint
	node   *typeNode
}

// KindTyped selects the type-based engine in matcher.New.
const KindTyped Kind = "typed"

// NewTyped returns an empty TypedMatcher.
func NewTypedMatcher() *TypedMatcher {
	return &TypedMatcher{
		root:  newTypeNode(),
		bySub: make(map[ident.ID][]*typedSub),
	}
}

func newTypeNode() *typeNode {
	return &typeNode{children: make(map[string]*typeNode)}
}

// Name implements Matcher.
func (m *TypedMatcher) Name() string { return string(KindTyped) }

// typePathOf extracts the subscription's type path and residual
// content guards. ok is false when the filter has no type-equality
// constraint.
func typePathOf(f *event.Filter) (path []string, guards []event.Constraint, ok bool) {
	for _, c := range f.Constraints() {
		if c.Name == event.AttrType && c.Op == event.OpEq {
			if s, isStr := c.Value.Str(); isStr && s != "" {
				path = splitTypePath(s)
				ok = true
				continue
			}
		}
		guards = append(guards, c)
	}
	return path, guards, ok
}

func splitTypePath(s string) []string {
	parts := strings.Split(s, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Subscribe implements Matcher. The filter must pin the event type.
func (m *TypedMatcher) Subscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	if err := f.Validate(); err != nil {
		return err
	}
	path, guards, ok := typePathOf(f)
	if !ok {
		return ErrUntypedSubscription
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ts := range m.bySub[sub] {
		if ts.filter.Equal(f) {
			return nil // idempotent
		}
	}
	node := m.root
	for _, seg := range path {
		child, okc := node.children[seg]
		if !okc {
			child = newTypeNode()
			node.children[seg] = child
		}
		node = child
	}
	ts := &typedSub{sub: sub, filter: f.Clone(), guards: guards, node: node}
	node.subs = append(node.subs, ts)
	m.bySub[sub] = append(m.bySub[sub], ts)
	m.count++
	return nil
}

// ErrUntypedSubscription reports a subscription without a type
// constraint, which type-based pub/sub cannot host.
var ErrUntypedSubscription = typedErr("matcher: typed engine requires a type-equality constraint")

type typedErr string

func (e typedErr) Error() string { return string(e) }

// Unsubscribe implements Matcher.
func (m *TypedMatcher) Unsubscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.bySub[sub]
	for i, ts := range list {
		if !ts.filter.Equal(f) {
			continue
		}
		m.bySub[sub] = append(list[:i], list[i+1:]...)
		if len(m.bySub[sub]) == 0 {
			delete(m.bySub, sub)
		}
		removeTypedSub(ts.node, ts)
		m.count--
		return nil
	}
	return ErrNoSuchSubscription
}

func removeTypedSub(n *typeNode, ts *typedSub) {
	for i, have := range n.subs {
		if have == ts {
			n.subs = append(n.subs[:i], n.subs[i+1:]...)
			return
		}
	}
}

// UnsubscribeAll implements Matcher.
func (m *TypedMatcher) UnsubscribeAll(sub ident.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ts := range m.bySub[sub] {
		removeTypedSub(ts.node, ts)
		m.count--
	}
	delete(m.bySub, sub)
}

// SubscriptionCount implements Matcher.
func (m *TypedMatcher) SubscriptionCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// Match implements Matcher. See MatchAppend.
func (m *TypedMatcher) Match(e *event.Event) []ident.ID {
	return m.MatchAppend(e, nil)
}

// typedScratch pools the per-match dedup sets so the type walk stays
// allocation-free apart from the caller's target slice.
var typedScratch = sync.Pool{New: func() interface{} {
	return make(map[ident.ID]struct{}, 8)
}}

// MatchAppend implements Matcher: walk the event's type path from the
// root, collecting subscriptions at every ancestor (a subscription to
// "reading" sees "reading/heart-rate"), then apply content guards.
func (m *TypedMatcher) MatchAppend(e *event.Event, dst []ident.ID) []ident.ID {
	m.mu.RLock()
	defer m.mu.RUnlock()

	seen := typedScratch.Get().(map[ident.ID]struct{})
	defer func() {
		for id := range seen {
			delete(seen, id)
		}
		typedScratch.Put(seen)
	}()
	collect := func(n *typeNode) {
		for _, ts := range n.subs {
			if _, dup := seen[ts.sub]; dup {
				continue
			}
			if guardsMatch(ts.guards, e) {
				seen[ts.sub] = struct{}{}
				dst = append(dst, ts.sub)
			}
		}
	}
	node := m.root
	collect(node) // subscriptions to the root type ("" = all types)
	// Walk the '/'-separated path by slicing in place (no Split
	// allocation on the match path).
	for s := e.Type(); s != ""; {
		var seg string
		if i := strings.IndexByte(s, '/'); i < 0 {
			seg, s = s, ""
		} else {
			seg, s = s[:i], s[i+1:]
		}
		if seg == "" {
			continue
		}
		child, ok := node.children[seg]
		if !ok {
			return dst
		}
		node = child
		collect(node)
	}
	return dst
}

func guardsMatch(guards []event.Constraint, e *event.Event) bool {
	for _, c := range guards {
		v, ok := e.Get(c.Name)
		if c.Op == event.OpExists {
			if !ok {
				return false
			}
			continue
		}
		if !ok || !c.MatchValue(v) {
			return false
		}
	}
	return true
}
