package matcher

import (
	"strings"
	"sync"
	"sync/atomic"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// TypedMatcher implements the type-based publish/subscribe mechanism
// the paper names as intended future work (§VI: "we also intend to
// replace the content-based publish/subscribe mechanism with a
// type-based publish/subscribe mechanism, to remove the reliance on
// arbitrary tags as event identifiers", citing Eugster et al.).
//
// Events are classified by their "type" attribute interpreted as a
// '/'-separated path ("reading/heart-rate"); a subscription to a type
// receives that type and every subtype, mirroring subtype polymorphism
// in type-based pub/sub. Additional constraints in a subscription
// filter are still applied as content guards after the type check —
// the hybrid Eugster et al. describe.
//
// TypedMatcher implements the same Matcher interface as the two
// content-based engines, so the bus can host it unchanged. A filter
// installed without a type-equality constraint is rejected: under
// type-based pub/sub the type is the unit of subscription.
//
// Like the other engines the read path is lock-free: the type tree is
// an immutable snapshot published through an atomic pointer, and
// writers replace it by path copying — only the nodes on the changed
// subscription's type path (plus shallow copies of their child maps)
// are cloned, everything off-path is shared with the previous
// snapshot.
type TypedMatcher struct {
	// root is the immutable type-tree snapshot read lock-free by
	// Match.
	root atomic.Pointer[typeNode]

	// mu serialises writers only.
	mu sync.Mutex
	// bySub tracks installed filters per subscriber for Unsubscribe.
	bySub map[ident.ID][]*typedSub
	count atomic.Int64
}

var _ Matcher = (*TypedMatcher)(nil)
var _ ScratchMatcher = (*TypedMatcher)(nil)

// typeNode is one node of an immutable snapshot: never mutated after
// publication. Writers clone nodes along the changed path.
type typeNode struct {
	children map[string]*typeNode
	// subs are subscriptions rooted exactly here; they match events
	// whose type path passes through this node.
	subs []*typedSub
}

// typedSub is one installed subscription. Immutable; shared between
// snapshots. path retains the parsed type path so writers can re-walk
// it when unsubscribing.
type typedSub struct {
	sub    ident.ID
	filter *event.Filter // original filter, for equality
	guards []event.Constraint
	path   []string
}

// KindTyped selects the type-based engine in matcher.New.
const KindTyped Kind = "typed"

// NewTyped returns an empty TypedMatcher.
func NewTypedMatcher() *TypedMatcher {
	m := &TypedMatcher{bySub: make(map[ident.ID][]*typedSub)}
	m.root.Store(newTypeNode())
	return m
}

func newTypeNode() *typeNode {
	return &typeNode{children: make(map[string]*typeNode)}
}

// shallowClone copies the node: fresh children map (same child
// pointers) and a fresh subs slice.
func (n *typeNode) shallowClone() *typeNode {
	c := &typeNode{
		children: make(map[string]*typeNode, len(n.children)),
		subs:     append([]*typedSub(nil), n.subs...),
	}
	for seg, child := range n.children {
		c.children[seg] = child
	}
	return c
}

// Name implements Matcher.
func (m *TypedMatcher) Name() string { return string(KindTyped) }

// typePathOf extracts the subscription's type path and residual
// content guards. ok is false when the filter has no type-equality
// constraint.
func typePathOf(f *event.Filter) (path []string, guards []event.Constraint, ok bool) {
	for _, c := range f.Constraints() {
		if c.Name == event.AttrType && c.Op == event.OpEq {
			if s, isStr := c.Value.Str(); isStr && s != "" {
				path = splitTypePath(s)
				ok = true
				continue
			}
		}
		guards = append(guards, c)
	}
	return path, guards, ok
}

func splitTypePath(s string) []string {
	parts := strings.Split(s, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// clonePath builds the next snapshot by cloning the nodes along path
// from root (creating missing ones) and returns the new root plus the
// cloned node at the end of the path, which the caller may mutate
// before the snapshot is published.
func clonePath(root *typeNode, path []string) (newRoot, at *typeNode) {
	newRoot = root.shallowClone()
	node := newRoot
	for _, seg := range path {
		child, ok := node.children[seg]
		if ok {
			child = child.shallowClone()
		} else {
			child = newTypeNode()
		}
		node.children[seg] = child
		node = child
	}
	return newRoot, node
}

// Subscribe implements Matcher. The filter must pin the event type.
func (m *TypedMatcher) Subscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	if err := f.Validate(); err != nil {
		return err
	}
	path, guards, ok := typePathOf(f)
	if !ok {
		return ErrUntypedSubscription
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ts := range m.bySub[sub] {
		if ts.filter.Equal(f) {
			return nil // idempotent
		}
	}
	ts := &typedSub{sub: sub, filter: f.Clone(), guards: guards, path: path}
	newRoot, node := clonePath(m.root.Load(), path)
	node.subs = append(node.subs, ts)
	m.bySub[sub] = append(m.bySub[sub], ts)
	m.count.Add(1)
	m.root.Store(newRoot)
	return nil
}

// ErrUntypedSubscription reports a subscription without a type
// constraint, which type-based pub/sub cannot host.
var ErrUntypedSubscription = typedErr("matcher: typed engine requires a type-equality constraint")

type typedErr string

func (e typedErr) Error() string { return string(e) }

// Unsubscribe implements Matcher.
func (m *TypedMatcher) Unsubscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.bySub[sub]
	for i, ts := range list {
		if !ts.filter.Equal(f) {
			continue
		}
		m.bySub[sub] = append(list[:i], list[i+1:]...)
		if len(m.bySub[sub]) == 0 {
			delete(m.bySub, sub)
		}
		newRoot, node := clonePath(m.root.Load(), ts.path)
		removeTypedSub(node, ts)
		m.count.Add(-1)
		m.root.Store(newRoot)
		return nil
	}
	return ErrNoSuchSubscription
}

func removeTypedSub(n *typeNode, ts *typedSub) {
	for i, have := range n.subs {
		if have == ts {
			n.subs = append(n.subs[:i], n.subs[i+1:]...)
			return
		}
	}
}

// UnsubscribeAll implements Matcher.
func (m *TypedMatcher) UnsubscribeAll(sub ident.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.bySub[sub]
	if len(list) == 0 {
		delete(m.bySub, sub)
		return
	}
	// One path copy per filter, chained in memory; a single Store
	// publishes the final tree.
	root := m.root.Load()
	for _, ts := range list {
		var node *typeNode
		root, node = clonePath(root, ts.path)
		removeTypedSub(node, ts)
		m.count.Add(-1)
	}
	delete(m.bySub, sub)
	m.root.Store(root)
}

// SubscriptionCount implements Matcher. Lock-free.
func (m *TypedMatcher) SubscriptionCount() int {
	return int(m.count.Load())
}

// Match implements Matcher. See MatchAppend.
func (m *TypedMatcher) Match(e *event.Event) []ident.ID {
	return m.MatchAppend(e, nil)
}

// typedScratch pools per-match Scratch for callers without their own.
var typedScratch = sync.Pool{New: func() interface{} { return NewScratch() }}

// MatchAppend implements Matcher using pooled scratch; see
// MatchAppendScratch.
func (m *TypedMatcher) MatchAppend(e *event.Event, dst []ident.ID) []ident.ID {
	sc := typedScratch.Get().(*Scratch)
	dst = m.MatchAppendScratch(e, dst, sc)
	typedScratch.Put(sc)
	return dst
}

// MatchAppendScratch implements ScratchMatcher: walk the event's type
// path from the root of the current snapshot, collecting subscriptions
// at every ancestor (a subscription to "reading" sees
// "reading/heart-rate"), then apply content guards. The walk takes no
// lock — the snapshot is immutable — and the dedup set lives in the
// caller's scratch.
func (m *TypedMatcher) MatchAppendScratch(e *event.Event, dst []ident.ID, sc *Scratch) []ident.ID {
	if sc.seen == nil {
		sc.seen = make(map[ident.ID]struct{}, 8)
	}
	seen := sc.seen
	defer func() {
		for id := range seen {
			delete(seen, id)
		}
	}()
	collect := func(n *typeNode) {
		for _, ts := range n.subs {
			if _, dup := seen[ts.sub]; dup {
				continue
			}
			if guardsMatch(ts.guards, e) {
				seen[ts.sub] = struct{}{}
				dst = append(dst, ts.sub)
			}
		}
	}
	node := m.root.Load()
	collect(node) // subscriptions to the root type ("" = all types)
	// Walk the '/'-separated path by slicing in place (no Split
	// allocation on the match path).
	for s := e.Type(); s != ""; {
		var seg string
		if i := strings.IndexByte(s, '/'); i < 0 {
			seg, s = s, ""
		} else {
			seg, s = s[:i], s[i+1:]
		}
		if seg == "" {
			continue
		}
		child, ok := node.children[seg]
		if !ok {
			return dst
		}
		node = child
		collect(node)
	}
	return dst
}

func guardsMatch(guards []event.Constraint, e *event.Event) bool {
	for _, c := range guards {
		v, ok := e.Get(c.Name)
		if c.Op == event.OpExists {
			if !ok {
				return false
			}
			continue
		}
		if !ok || !c.MatchValue(v) {
			return false
		}
	}
	return true
}
