package matcher

import (
	"sort"
	"sync"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// FastMatcher implements Siena's fast forwarding counting algorithm
// (Carzaniga & Wolf, SIGCOMM 2003) directly over the bus-native event
// types: per-attribute constraint indexes, a single pass over the
// event's attributes, and a counter per filter. A filter matches when
// its counter reaches its constraint count.
type FastMatcher struct {
	mu sync.RWMutex
	// subs holds one node per installed (subscriber, filter) pair.
	subs map[ident.ID][]*fastFilter
	// index maps attribute name to the per-operator constraint index.
	index map[string]*attrIndex
	// dense assigns every installed filter a small integer slot so
	// that matching can count satisfied constraints in a flat array
	// instead of a map (the hot path of the counting algorithm).
	dense []*fastFilter
	free  []int
	count int
	// empties lists installed filters with no constraints; they never
	// enter the attribute index (they match everything) and keeping
	// them separate spares Match a scan over every subscriber.
	empties []*fastFilter
	// scratch pools per-match counter arrays.
	scratch sync.Pool
}

var _ Matcher = (*FastMatcher)(nil)

// fastFilter is one installed filter with its constraint count.
type fastFilter struct {
	sub    ident.ID
	filter *event.Filter
	need   int32
	idx    int
}

// matchScratch is the per-match counting state: counts[i] is the
// number of satisfied constraints of dense[i] in the current match,
// valid only when stamps[i] equals the current epoch — so the arrays
// never need zeroing between matches. matched and seen are reused
// across matches so the hot path performs no allocation at all.
type matchScratch struct {
	counts  []int32
	stamps  []uint32
	epoch   uint32
	matched []*fastFilter
	seen    map[ident.ID]struct{}
}

// constraintRef ties a constraint back to its filter.
type constraintRef struct {
	c event.Constraint
	f *fastFilter
}

// attrIndex indexes the constraints that name one attribute, organised
// by operator class so that matching touches as few constraints as
// possible.
type attrIndex struct {
	// eq maps a hashable value key to refs with that exact bound.
	eq map[valueKey][]*constraintRef
	// ordered holds <,<=,>,>= refs sorted by numeric bound (numeric
	// bounds only; non-numeric ordered constraints fall into linear).
	less    []orderedRef // OpLt, OpLe
	greater []orderedRef // OpGt, OpGe
	// linear holds everything without a sub-linear index: string
	// ops, Ne, exists, and non-numeric ordered constraints.
	linear []*constraintRef
	// exists holds OpExists refs (satisfied by presence alone).
	exists []*constraintRef
}

type orderedRef struct {
	bound float64
	incl  bool // bound satisfies the constraint (Le/Ge)
	ref   *constraintRef
}

// valueKey is a hashable projection of a Value for equality indexing.
type valueKey struct {
	t event.Type
	n float64 // numeric values keyed by magnitude (Int(1)==Float(1) for matching)
	s string
	b bool
}

func keyOf(v event.Value) (valueKey, bool) {
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		return valueKey{t: event.TypeInt, n: float64(i)}, true
	case event.TypeFloat:
		f, _ := v.Float()
		return valueKey{t: event.TypeFloat, n: f}, true
	case event.TypeString:
		s, _ := v.Str()
		return valueKey{t: event.TypeString, s: s}, true
	case event.TypeBool:
		b, _ := v.Bool()
		return valueKey{t: event.TypeBool, b: b}, true
	default:
		return valueKey{}, false // bytes: not hashable cheaply, use linear
	}
}

// probeKeys returns the equality-index keys an event value should
// probe: numeric values match both int- and float-keyed constraints of
// the same magnitude. The keys are returned by value (array + count)
// so the per-attribute probe never allocates.
func probeKeys(v event.Value) (keys [2]valueKey, n int) {
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		keys[0] = valueKey{t: event.TypeInt, n: float64(i)}
		keys[1] = valueKey{t: event.TypeFloat, n: float64(i)}
		return keys, 2
	case event.TypeFloat:
		f, _ := v.Float()
		keys[0] = valueKey{t: event.TypeFloat, n: f}
		keys[1] = valueKey{t: event.TypeInt, n: f}
		return keys, 2
	case event.TypeString:
		s, _ := v.Str()
		keys[0] = valueKey{t: event.TypeString, s: s}
		return keys, 1
	case event.TypeBool:
		b, _ := v.Bool()
		keys[0] = valueKey{t: event.TypeBool, b: b}
		return keys, 1
	default:
		return keys, 0
	}
}

// NewFast returns an empty FastMatcher.
func NewFast() *FastMatcher {
	m := &FastMatcher{
		subs:  make(map[ident.ID][]*fastFilter),
		index: make(map[string]*attrIndex),
	}
	m.scratch.New = func() interface{} { return &matchScratch{} }
	return m
}

// Name implements Matcher.
func (m *FastMatcher) Name() string { return string(KindFast) }

// Subscribe implements Matcher.
func (m *FastMatcher) Subscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	if err := f.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ff := range m.subs[sub] {
		if ff.filter.Equal(f) {
			return nil // idempotent
		}
	}
	ff := &fastFilter{sub: sub, filter: f.Clone(), need: int32(f.Len())}
	if n := len(m.free); n > 0 {
		ff.idx = m.free[n-1]
		m.free = m.free[:n-1]
		m.dense[ff.idx] = ff
	} else {
		ff.idx = len(m.dense)
		m.dense = append(m.dense, ff)
	}
	m.subs[sub] = append(m.subs[sub], ff)
	m.count++
	if ff.need == 0 {
		m.empties = append(m.empties, ff)
	}
	for _, c := range ff.filter.Constraints() {
		m.indexFor(c.Name).add(&constraintRef{c: c, f: ff})
	}
	return nil
}

func (m *FastMatcher) indexFor(name string) *attrIndex {
	ai, ok := m.index[name]
	if !ok {
		ai = &attrIndex{eq: make(map[valueKey][]*constraintRef)}
		m.index[name] = ai
	}
	return ai
}

func (ai *attrIndex) add(ref *constraintRef) {
	switch ref.c.Op {
	case event.OpEq:
		if k, ok := keyOf(ref.c.Value); ok {
			ai.eq[k] = append(ai.eq[k], ref)
			return
		}
		ai.linear = append(ai.linear, ref)
	case event.OpExists:
		ai.exists = append(ai.exists, ref)
	case event.OpLt, event.OpLe:
		if bound, ok := numericBound(ref.c.Value); ok {
			ai.less = insertOrdered(ai.less, orderedRef{
				bound: bound, incl: ref.c.Op == event.OpLe, ref: ref,
			})
			return
		}
		ai.linear = append(ai.linear, ref)
	case event.OpGt, event.OpGe:
		if bound, ok := numericBound(ref.c.Value); ok {
			ai.greater = insertOrdered(ai.greater, orderedRef{
				bound: bound, incl: ref.c.Op == event.OpGe, ref: ref,
			})
			return
		}
		ai.linear = append(ai.linear, ref)
	default:
		ai.linear = append(ai.linear, ref)
	}
}

func numericBound(v event.Value) (float64, bool) {
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		return float64(i), true
	case event.TypeFloat:
		f, _ := v.Float()
		return f, true
	default:
		return 0, false
	}
}

func insertOrdered(s []orderedRef, r orderedRef) []orderedRef {
	i := sort.Search(len(s), func(i int) bool { return s[i].bound >= r.bound })
	s = append(s, orderedRef{})
	copy(s[i+1:], s[i:])
	s[i] = r
	return s
}

func removeRef(s []*constraintRef, ff *fastFilter) []*constraintRef {
	out := s[:0]
	for _, r := range s {
		if r.f != ff {
			out = append(out, r)
		}
	}
	return out
}

func removeOrdered(s []orderedRef, ff *fastFilter) []orderedRef {
	out := s[:0]
	for _, r := range s {
		if r.ref.f != ff {
			out = append(out, r)
		}
	}
	return out
}

// Unsubscribe implements Matcher.
func (m *FastMatcher) Unsubscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.subs[sub]
	for i, ff := range list {
		if !ff.filter.Equal(f) {
			continue
		}
		m.subs[sub] = append(list[:i], list[i+1:]...)
		if len(m.subs[sub]) == 0 {
			delete(m.subs, sub)
		}
		m.removeFromIndex(ff)
		m.releaseSlot(ff)
		m.count--
		return nil
	}
	return ErrNoSuchSubscription
}

// UnsubscribeAll implements Matcher.
func (m *FastMatcher) UnsubscribeAll(sub ident.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ff := range m.subs[sub] {
		m.removeFromIndex(ff)
		m.releaseSlot(ff)
		m.count--
	}
	delete(m.subs, sub)
}

// releaseSlot returns a filter's dense slot to the free list. Caller
// holds m.mu.
func (m *FastMatcher) releaseSlot(ff *fastFilter) {
	m.dense[ff.idx] = nil
	m.free = append(m.free, ff.idx)
	if ff.need == 0 {
		for i, have := range m.empties {
			if have == ff {
				m.empties = append(m.empties[:i], m.empties[i+1:]...)
				break
			}
		}
	}
}

func (m *FastMatcher) removeFromIndex(ff *fastFilter) {
	for _, c := range ff.filter.Constraints() {
		ai, ok := m.index[c.Name]
		if !ok {
			continue
		}
		if k, ok2 := keyOf(c.Value); ok2 && c.Op == event.OpEq {
			ai.eq[k] = removeRef(ai.eq[k], ff)
			if len(ai.eq[k]) == 0 {
				delete(ai.eq, k)
			}
		}
		ai.less = removeOrdered(ai.less, ff)
		ai.greater = removeOrdered(ai.greater, ff)
		ai.linear = removeRef(ai.linear, ff)
		ai.exists = removeRef(ai.exists, ff)
		if len(ai.eq) == 0 && len(ai.less) == 0 && len(ai.greater) == 0 &&
			len(ai.linear) == 0 && len(ai.exists) == 0 {
			delete(m.index, c.Name)
		}
	}
}

// SubscriptionCount implements Matcher.
func (m *FastMatcher) SubscriptionCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// Match implements Matcher. See MatchAppend.
func (m *FastMatcher) Match(e *event.Event) []ident.ID {
	return m.MatchAppend(e, nil)
}

// MatchAppend implements Matcher via the counting algorithm: one pass
// over the event's attributes, bumping a counter per touched filter;
// filters whose every constraint is satisfied match. Empty filters
// match everything. Counters, the matched list and the dedup set live
// in pooled epoch-stamped scratch so the hot path performs no per-match
// allocation.
func (m *FastMatcher) MatchAppend(e *event.Event, dst []ident.ID) []ident.ID {
	m.mu.RLock()
	defer m.mu.RUnlock()

	sc, _ := m.scratch.Get().(*matchScratch)
	if len(sc.counts) < len(m.dense) {
		sc.counts = make([]int32, len(m.dense)+16)
		sc.stamps = make([]uint32, len(m.dense)+16)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps are stale, reset
		for i := range sc.stamps {
			sc.stamps[i] = 0
		}
		sc.epoch = 1
	}
	if sc.seen == nil {
		sc.seen = make(map[ident.ID]struct{}, 8)
	}
	sc.matched = sc.matched[:0]
	defer func() {
		for id := range sc.seen {
			delete(sc.seen, id)
		}
		sc.matched = sc.matched[:0]
		m.scratch.Put(sc)
	}()

	bump := func(ref *constraintRef) {
		i := ref.f.idx
		if sc.stamps[i] != sc.epoch {
			sc.stamps[i] = sc.epoch
			sc.counts[i] = 0
		}
		sc.counts[i]++
		if sc.counts[i] == ref.f.need {
			sc.matched = append(sc.matched, ref.f)
		}
	}

	// One pass over the event's attributes via the index accessors —
	// no closure, no name-slice materialisation (the inline event
	// representation stores attributes sorted, so At is a direct
	// array read).
	for ei, en := 0, e.Len(); ei < en; ei++ {
		name, v := e.At(ei)
		ai, ok := m.index[name]
		if !ok {
			continue
		}
		for _, ref := range ai.exists {
			bump(ref)
		}
		keys, kn := probeKeys(v)
		for ki := 0; ki < kn; ki++ {
			for _, ref := range ai.eq[keys[ki]] {
				bump(ref)
			}
		}
		if n, ok := valueAsNumeric(v); ok {
			// less: satisfied when n < bound (or <= for incl).
			i := sort.Search(len(ai.less), func(i int) bool {
				return ai.less[i].bound >= n
			})
			for ; i < len(ai.less); i++ {
				r := ai.less[i]
				if n < r.bound || (r.incl && n == r.bound) {
					bump(r.ref)
				}
			}
			// greater: satisfied when n > bound (or >= for incl).
			j := sort.Search(len(ai.greater), func(i int) bool {
				return ai.greater[i].bound > n
			})
			for k := 0; k < j; k++ {
				r := ai.greater[k]
				if n > r.bound || (r.incl && n == r.bound) {
					bump(r.ref)
				}
			}
		}
		for _, ref := range ai.linear {
			if ref.c.MatchValue(v) {
				bump(ref)
			}
		}
	}

	for _, ff := range sc.matched {
		if _, dup := sc.seen[ff.sub]; !dup {
			sc.seen[ff.sub] = struct{}{}
			dst = append(dst, ff.sub)
		}
	}
	// Empty filters (need == 0) never enter the index; they match all.
	for _, ff := range m.empties {
		if _, dup := sc.seen[ff.sub]; !dup {
			sc.seen[ff.sub] = struct{}{}
			dst = append(dst, ff.sub)
		}
	}
	return dst
}

// valueAsNumeric mirrors the event package's numeric projection (ints
// and floats compare by magnitude) without exporting its internals.
func valueAsNumeric(v event.Value) (float64, bool) {
	if f, ok := v.Float(); ok {
		return f, true
	}
	if i, ok := v.Int(); ok {
		return float64(i), true
	}
	return 0, false
}
