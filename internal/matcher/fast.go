package matcher

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// FastMatcher implements Siena's fast forwarding counting algorithm
// (Carzaniga & Wolf, SIGCOMM 2003) directly over the bus-native event
// types: per-attribute constraint indexes, a single pass over the
// event's attributes, and a counter per filter. A filter matches when
// its counter reaches its constraint count.
//
// The matcher is read-mostly — dispatch matches millions of events
// against a subscription set that changes at human/device timescales —
// so the read path is lock-free: Match loads an immutable index
// snapshot through an atomic pointer and runs without taking any
// mutex, exactly like the attribute-name intern table. Shard workers
// on different cores therefore never serialise on a shared read lock
// or bounce its cache line. Subscribe/Unsubscribe build the next
// snapshot copy-on-write under a writer mutex and swap it in; the
// delta path clones only the per-attribute indexes the changed filter
// actually names (plus flat memcpy of the dense slot table), so
// subscription churn does not rebuild the whole index.
type FastMatcher struct {
	// idx is the immutable index snapshot the lock-free read path
	// loads. Everything reachable from it is frozen: writers replace
	// the pointer, never mutate through it.
	idx atomic.Pointer[fastIndex]

	// mu serialises writers only; the read path never touches it.
	mu sync.Mutex
	// subs holds one node per installed (subscriber, filter) pair
	// (writer-side bookkeeping for idempotence and Unsubscribe).
	subs map[ident.ID][]*fastFilter
	// free lists recyclable dense slots (writer-side).
	free []int

	// scratch pools per-match counting state for callers that do not
	// supply their own Scratch.
	scratch sync.Pool
}

var _ Matcher = (*FastMatcher)(nil)
var _ ScratchMatcher = (*FastMatcher)(nil)

// fastIndex is one immutable snapshot of the matcher's index. A
// snapshot is built by a writer, published via FastMatcher.idx, and
// never mutated afterwards; readers may hold it across an arbitrary
// window (they only ever see a consistent subscription set).
type fastIndex struct {
	// index maps attribute name to the per-operator constraint index.
	index map[string]*attrIndex
	// dense assigns every installed filter a small integer slot so
	// that matching can count satisfied constraints in a flat array
	// instead of a map (the hot path of the counting algorithm).
	// Freed slots are nil until reused.
	dense []*fastFilter
	// empties lists installed filters with no constraints; they never
	// enter the attribute index (they match everything) and keeping
	// them separate spares Match a scan over every subscriber.
	empties []*fastFilter
	// count is the number of installed (subscriber, filter) pairs.
	count int
}

// emptyFastIndex is the snapshot of a matcher with no subscriptions.
var emptyFastIndex = &fastIndex{index: map[string]*attrIndex{}}

// fastFilter is one installed filter with its constraint count. It is
// immutable after construction, so snapshots share the nodes.
type fastFilter struct {
	sub    ident.ID
	filter *event.Filter
	need   int32
	idx    int
}

// constraintRef ties a constraint back to its filter. Immutable.
type constraintRef struct {
	c event.Constraint
	f *fastFilter
}

// attrIndex indexes the constraints that name one attribute, organised
// by operator class so that matching touches as few constraints as
// possible. Within a published snapshot an attrIndex is immutable;
// writers clone the (few) indexes a subscription delta touches.
type attrIndex struct {
	// eq maps a hashable value key to refs with that exact bound.
	eq map[valueKey][]*constraintRef
	// ordered holds <,<=,>,>= refs sorted by numeric bound (numeric
	// bounds only; non-numeric ordered constraints fall into linear).
	less    []orderedRef // OpLt, OpLe
	greater []orderedRef // OpGt, OpGe
	// linear holds everything without a sub-linear index: string
	// ops, Ne, exists, and non-numeric ordered constraints.
	linear []*constraintRef
	// exists holds OpExists refs (satisfied by presence alone).
	exists []*constraintRef
}

// clone deep-copies the attrIndex structure (the constraintRefs inside
// are immutable and shared between snapshots).
func (ai *attrIndex) clone() *attrIndex {
	c := &attrIndex{eq: make(map[valueKey][]*constraintRef, len(ai.eq))}
	for k, refs := range ai.eq {
		c.eq[k] = append([]*constraintRef(nil), refs...)
	}
	c.less = append([]orderedRef(nil), ai.less...)
	c.greater = append([]orderedRef(nil), ai.greater...)
	c.linear = append([]*constraintRef(nil), ai.linear...)
	c.exists = append([]*constraintRef(nil), ai.exists...)
	return c
}

// empty reports whether the index holds no constraints at all.
func (ai *attrIndex) empty() bool {
	return len(ai.eq) == 0 && len(ai.less) == 0 && len(ai.greater) == 0 &&
		len(ai.linear) == 0 && len(ai.exists) == 0
}

type orderedRef struct {
	bound float64
	incl  bool // bound satisfies the constraint (Le/Ge)
	ref   *constraintRef
}

// valueKey is a hashable projection of a Value for equality indexing.
type valueKey struct {
	t event.Type
	n float64 // numeric values keyed by magnitude (Int(1)==Float(1) for matching)
	s string
	b bool
}

func keyOf(v event.Value) (valueKey, bool) {
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		return valueKey{t: event.TypeInt, n: float64(i)}, true
	case event.TypeFloat:
		f, _ := v.Float()
		return valueKey{t: event.TypeFloat, n: f}, true
	case event.TypeString:
		s, _ := v.Str()
		return valueKey{t: event.TypeString, s: s}, true
	case event.TypeBool:
		b, _ := v.Bool()
		return valueKey{t: event.TypeBool, b: b}, true
	default:
		return valueKey{}, false // bytes: not hashable cheaply, use linear
	}
}

// probeKeys returns the equality-index keys an event value should
// probe: numeric values match both int- and float-keyed constraints of
// the same magnitude. The keys are returned by value (array + count)
// so the per-attribute probe never allocates.
func probeKeys(v event.Value) (keys [2]valueKey, n int) {
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		keys[0] = valueKey{t: event.TypeInt, n: float64(i)}
		keys[1] = valueKey{t: event.TypeFloat, n: float64(i)}
		return keys, 2
	case event.TypeFloat:
		f, _ := v.Float()
		keys[0] = valueKey{t: event.TypeFloat, n: f}
		keys[1] = valueKey{t: event.TypeInt, n: f}
		return keys, 2
	case event.TypeString:
		s, _ := v.Str()
		keys[0] = valueKey{t: event.TypeString, s: s}
		return keys, 1
	case event.TypeBool:
		b, _ := v.Bool()
		keys[0] = valueKey{t: event.TypeBool, b: b}
		return keys, 1
	default:
		return keys, 0
	}
}

// NewFast returns an empty FastMatcher.
func NewFast() *FastMatcher {
	m := &FastMatcher{
		subs: make(map[ident.ID][]*fastFilter),
	}
	m.idx.Store(emptyFastIndex)
	m.scratch.New = func() interface{} { return NewScratch() }
	return m
}

// Name implements Matcher.
func (m *FastMatcher) Name() string { return string(KindFast) }

// cloneDelta starts the next snapshot from cur: the index map is
// shallow-copied (attrIndex values shared), dense and empties are
// copied flat. Callers then clone the individual attrIndexes they
// change via indexForWrite before mutating them — everything reachable
// from the currently published snapshot stays frozen.
func cloneDelta(cur *fastIndex) *fastIndex {
	next := &fastIndex{
		index:   make(map[string]*attrIndex, len(cur.index)+1),
		dense:   append([]*fastFilter(nil), cur.dense...),
		empties: append([]*fastFilter(nil), cur.empties...),
		count:   cur.count,
	}
	for name, ai := range cur.index {
		next.index[name] = ai
	}
	return next
}

// indexForWrite returns a mutable attrIndex for name inside the
// snapshot under construction, cloning the one shared with the
// previous snapshot on first touch.
func (next *fastIndex) indexForWrite(name string, cloned map[string]bool) *attrIndex {
	ai, ok := next.index[name]
	switch {
	case !ok:
		ai = &attrIndex{eq: make(map[valueKey][]*constraintRef)}
		next.index[name] = ai
	case !cloned[name]:
		ai = ai.clone()
		next.index[name] = ai
	}
	cloned[name] = true
	return ai
}

// Subscribe implements Matcher.
func (m *FastMatcher) Subscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	if err := f.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ff := range m.subs[sub] {
		if ff.filter.Equal(f) {
			return nil // idempotent
		}
	}
	next := cloneDelta(m.idx.Load())
	ff := &fastFilter{sub: sub, filter: f.Clone(), need: int32(f.Len())}
	if n := len(m.free); n > 0 {
		ff.idx = m.free[n-1]
		m.free = m.free[:n-1]
		next.dense[ff.idx] = ff
	} else {
		ff.idx = len(next.dense)
		next.dense = append(next.dense, ff)
	}
	m.subs[sub] = append(m.subs[sub], ff)
	next.count++
	if ff.need == 0 {
		next.empties = append(next.empties, ff)
	}
	cloned := make(map[string]bool, f.Len())
	for _, c := range ff.filter.Constraints() {
		next.indexForWrite(c.Name, cloned).add(&constraintRef{c: c, f: ff})
	}
	m.idx.Store(next)
	return nil
}

func (ai *attrIndex) add(ref *constraintRef) {
	switch ref.c.Op {
	case event.OpEq:
		if k, ok := keyOf(ref.c.Value); ok {
			ai.eq[k] = append(ai.eq[k], ref)
			return
		}
		ai.linear = append(ai.linear, ref)
	case event.OpExists:
		ai.exists = append(ai.exists, ref)
	case event.OpLt, event.OpLe:
		if bound, ok := numericBound(ref.c.Value); ok {
			ai.less = insertOrdered(ai.less, orderedRef{
				bound: bound, incl: ref.c.Op == event.OpLe, ref: ref,
			})
			return
		}
		ai.linear = append(ai.linear, ref)
	case event.OpGt, event.OpGe:
		if bound, ok := numericBound(ref.c.Value); ok {
			ai.greater = insertOrdered(ai.greater, orderedRef{
				bound: bound, incl: ref.c.Op == event.OpGe, ref: ref,
			})
			return
		}
		ai.linear = append(ai.linear, ref)
	default:
		ai.linear = append(ai.linear, ref)
	}
}

func numericBound(v event.Value) (float64, bool) {
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		return float64(i), true
	case event.TypeFloat:
		f, _ := v.Float()
		return f, true
	default:
		return 0, false
	}
}

func insertOrdered(s []orderedRef, r orderedRef) []orderedRef {
	i := sort.Search(len(s), func(i int) bool { return s[i].bound >= r.bound })
	s = append(s, orderedRef{})
	copy(s[i+1:], s[i:])
	s[i] = r
	return s
}

func removeRef(s []*constraintRef, ff *fastFilter) []*constraintRef {
	out := s[:0]
	for _, r := range s {
		if r.f != ff {
			out = append(out, r)
		}
	}
	return out
}

func removeOrdered(s []orderedRef, ff *fastFilter) []orderedRef {
	out := s[:0]
	for _, r := range s {
		if r.ref.f != ff {
			out = append(out, r)
		}
	}
	return out
}

// Unsubscribe implements Matcher.
func (m *FastMatcher) Unsubscribe(sub ident.ID, f *event.Filter) error {
	if f == nil {
		return ErrNilFilter
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.subs[sub]
	for i, ff := range list {
		if !ff.filter.Equal(f) {
			continue
		}
		m.subs[sub] = append(list[:i], list[i+1:]...)
		if len(m.subs[sub]) == 0 {
			delete(m.subs, sub)
		}
		next := cloneDelta(m.idx.Load())
		next.removeFilter(ff)
		m.free = append(m.free, ff.idx)
		m.idx.Store(next)
		return nil
	}
	return ErrNoSuchSubscription
}

// UnsubscribeAll implements Matcher.
func (m *FastMatcher) UnsubscribeAll(sub ident.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.subs[sub]
	if len(list) == 0 {
		delete(m.subs, sub)
		return
	}
	next := cloneDelta(m.idx.Load())
	for _, ff := range list {
		next.removeFilter(ff)
		m.free = append(m.free, ff.idx)
	}
	delete(m.subs, sub)
	m.idx.Store(next)
}

// removeFilter detaches ff from the snapshot under construction:
// affected attribute indexes are cloned on first touch, the dense slot
// cleared, empties pruned. Caller holds m.mu and returns ff.idx to the
// writer-side free list.
func (next *fastIndex) removeFilter(ff *fastFilter) {
	next.dense[ff.idx] = nil
	next.count--
	if ff.need == 0 {
		for i, have := range next.empties {
			if have == ff {
				next.empties = append(next.empties[:i], next.empties[i+1:]...)
				break
			}
		}
	}
	cloned := make(map[string]bool, ff.filter.Len())
	for _, c := range ff.filter.Constraints() {
		if _, ok := next.index[c.Name]; !ok {
			continue
		}
		ai := next.indexForWrite(c.Name, cloned)
		if k, ok2 := keyOf(c.Value); ok2 && c.Op == event.OpEq {
			ai.eq[k] = removeRef(ai.eq[k], ff)
			if len(ai.eq[k]) == 0 {
				delete(ai.eq, k)
			}
		}
		ai.less = removeOrdered(ai.less, ff)
		ai.greater = removeOrdered(ai.greater, ff)
		ai.linear = removeRef(ai.linear, ff)
		ai.exists = removeRef(ai.exists, ff)
		if ai.empty() {
			delete(next.index, c.Name)
		}
	}
}

// SubscriptionCount implements Matcher. Lock-free: it reads the
// current snapshot.
func (m *FastMatcher) SubscriptionCount() int {
	return m.idx.Load().count
}

// Match implements Matcher. See MatchAppend.
func (m *FastMatcher) Match(e *event.Event) []ident.ID {
	return m.MatchAppend(e, nil)
}

// MatchAppend implements Matcher using pooled scratch; see
// MatchAppendScratch for the algorithm.
func (m *FastMatcher) MatchAppend(e *event.Event, dst []ident.ID) []ident.ID {
	sc, _ := m.scratch.Get().(*Scratch)
	dst = m.MatchAppendScratch(e, dst, sc)
	m.scratch.Put(sc)
	return dst
}

// MatchAppendScratch implements ScratchMatcher via the counting
// algorithm: one pass over the event's attributes, bumping a counter
// per touched filter; filters whose every constraint is satisfied
// match. Empty filters match everything. The entire match runs against
// one immutable index snapshot loaded through an atomic pointer — no
// lock is taken, so concurrent matches on different cores share
// nothing but read-only memory and scale with cores. Counters, the
// matched list and the dedup set live in the caller's epoch-stamped
// scratch so the hot path performs no per-match allocation.
func (m *FastMatcher) MatchAppendScratch(e *event.Event, dst []ident.ID, sc *Scratch) []ident.ID {
	idx := m.idx.Load()

	if len(sc.counts) < len(idx.dense) {
		sc.counts = make([]int32, len(idx.dense)+16)
		sc.stamps = make([]uint32, len(idx.dense)+16)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps are stale, reset
		for i := range sc.stamps {
			sc.stamps[i] = 0
		}
		sc.epoch = 1
	}
	if sc.seen == nil {
		sc.seen = make(map[ident.ID]struct{}, 8)
	}
	sc.matched = sc.matched[:0]
	defer func() {
		for id := range sc.seen {
			delete(sc.seen, id)
		}
		sc.matched = sc.matched[:0]
	}()

	bump := func(ref *constraintRef) {
		i := ref.f.idx
		if sc.stamps[i] != sc.epoch {
			sc.stamps[i] = sc.epoch
			sc.counts[i] = 0
		}
		sc.counts[i]++
		if sc.counts[i] == ref.f.need {
			sc.matched = append(sc.matched, ref.f)
		}
	}

	// One pass over the event's attributes via the index accessors —
	// no closure, no name-slice materialisation (the inline event
	// representation stores attributes sorted, so At is a direct
	// array read).
	for ei, en := 0, e.Len(); ei < en; ei++ {
		name, v := e.At(ei)
		ai, ok := idx.index[name]
		if !ok {
			continue
		}
		for _, ref := range ai.exists {
			bump(ref)
		}
		keys, kn := probeKeys(v)
		for ki := 0; ki < kn; ki++ {
			for _, ref := range ai.eq[keys[ki]] {
				bump(ref)
			}
		}
		if n, ok := valueAsNumeric(v); ok {
			// less: satisfied when n < bound (or <= for incl).
			i := sort.Search(len(ai.less), func(i int) bool {
				return ai.less[i].bound >= n
			})
			for ; i < len(ai.less); i++ {
				r := ai.less[i]
				if n < r.bound || (r.incl && n == r.bound) {
					bump(r.ref)
				}
			}
			// greater: satisfied when n > bound (or >= for incl).
			j := sort.Search(len(ai.greater), func(i int) bool {
				return ai.greater[i].bound > n
			})
			for k := 0; k < j; k++ {
				r := ai.greater[k]
				if n > r.bound || (r.incl && n == r.bound) {
					bump(r.ref)
				}
			}
		}
		for _, ref := range ai.linear {
			if ref.c.MatchValue(v) {
				bump(ref)
			}
		}
	}

	for _, ff := range sc.matched {
		if _, dup := sc.seen[ff.sub]; !dup {
			sc.seen[ff.sub] = struct{}{}
			dst = append(dst, ff.sub)
		}
	}
	// Empty filters (need == 0) never enter the index; they match all.
	for _, ff := range idx.empties {
		if _, dup := sc.seen[ff.sub]; !dup {
			sc.seen[ff.sub] = struct{}{}
			dst = append(dst, ff.sub)
		}
	}
	return dst
}

// valueAsNumeric mirrors the event package's numeric projection (ints
// and floats compare by magnitude) without exporting its internals.
func valueAsNumeric(v event.Value) (float64, bool) {
	if f, ok := v.Float(); ok {
		return f, true
	}
	if i, ok := v.Int(); ok {
		return float64(i), true
	}
	return 0, false
}
