package sensor

import (
	"sync"
	"testing"
	"time"
)

// unreliableRecorder records which path each transmission used.
type unreliableRecorder struct {
	mu         sync.Mutex
	reliable   int
	unreliable int
}

func (u *unreliableRecorder) PublishRaw(data []byte) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.reliable++
	return nil
}

func (u *unreliableRecorder) PublishRawUnreliable(data []byte) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.unreliable++
	return nil
}

func (u *unreliableRecorder) counts() (int, int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.reliable, u.unreliable
}

func TestSimUnreliableOption(t *testing.T) {
	rec := &unreliableRecorder{}
	s := NewSim(KindTemperature, TemperatureWaveform(1), time.Second, rec, WithUnreliable(true))
	for i := 0; i < 3; i++ {
		if err := s.EmitOnce(); err != nil {
			t.Fatal(err)
		}
	}
	rel, unrel := rec.counts()
	if rel != 0 || unrel != 3 {
		t.Errorf("reliable=%d unreliable=%d, want 0/3", rel, unrel)
	}
	if s.Sent() != 3 {
		t.Errorf("sent = %d", s.Sent())
	}
}

func TestSimUnreliableFallsBackWithoutSupport(t *testing.T) {
	// chanPublisher (from sensor_test.go) does not implement the
	// unreliable interface: the sim must fall back to the acked path.
	pub := &chanPublisher{}
	s := NewSim(KindTemperature, TemperatureWaveform(1), time.Second, pub, WithUnreliable(true))
	if err := s.EmitOnce(); err != nil {
		t.Fatal(err)
	}
	if pub.count() != 1 {
		t.Errorf("fallback publishes = %d", pub.count())
	}
}

func TestSimDefaultIsReliable(t *testing.T) {
	rec := &unreliableRecorder{}
	s := NewSim(KindTemperature, TemperatureWaveform(1), time.Second, rec)
	if err := s.EmitOnce(); err != nil {
		t.Fatal(err)
	}
	rel, unrel := rec.counts()
	if rel != 1 || unrel != 0 {
		t.Errorf("reliable=%d unreliable=%d, want 1/0", rel, unrel)
	}
}
