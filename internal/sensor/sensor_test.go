package sensor

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/amuse/smc/internal/event"
)

func TestReadingRoundTrip(t *testing.T) {
	err := quick.Check(func(kindRaw uint8, seq uint16, millis int64, value float64) bool {
		kind := Kind(kindRaw%6) + KindHeartRate
		if kind > KindGlucose {
			kind = KindHeartRate
		}
		if math.IsNaN(value) {
			value = 0
		}
		r := Reading{Kind: kind, Seq: seq, Millis: millis, Value: value}
		got, err := DecodeReading(EncodeReading(r))
		return err == nil && got == r
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestReadingDecodeRejectsBadInput(t *testing.T) {
	r := Reading{Kind: KindHeartRate, Seq: 1, Millis: 2, Value: 3}
	buf := EncodeReading(r)
	if _, err := DecodeReading(buf[:len(buf)-1]); err == nil {
		t.Error("short reading accepted")
	}
	if _, err := DecodeReading(append(buf, 0)); err == nil {
		t.Error("long reading accepted")
	}
	bad := EncodeReading(r)
	bad[0] = 0
	if _, err := DecodeReading(bad); err == nil {
		t.Error("zero kind accepted")
	}
	bad[0] = 200
	if _, err := DecodeReading(bad); err == nil {
		t.Error("out-of-range kind accepted")
	}
}

func TestCommandRoundTrip(t *testing.T) {
	for _, op := range []byte{OpAnalyse, OpShock, OpInfuse, OpBeep} {
		c := Command{Opcode: op, Arg: 42.5}
		got, err := DecodeCommand(EncodeCommand(c))
		if err != nil || got != c {
			t.Errorf("op %d roundtrip: %+v %v", op, got, err)
		}
	}
	if _, err := DecodeCommand([]byte{1}); err == nil {
		t.Error("short command accepted")
	}
	bad := EncodeCommand(Command{Opcode: OpBeep})
	bad[0] = 0
	if _, err := DecodeCommand(bad); err == nil {
		t.Error("zero opcode accepted")
	}
}

func TestOpcodeActionMapping(t *testing.T) {
	for _, action := range []string{"analyse", "shock", "infuse", "beep"} {
		op, ok := OpcodeForAction(action)
		if !ok {
			t.Fatalf("no opcode for %q", action)
		}
		back, ok := ActionForOpcode(op)
		if !ok || back != action {
			t.Errorf("roundtrip %q -> %d -> %q", action, op, back)
		}
	}
	if _, ok := OpcodeForAction("explode"); ok {
		t.Error("unknown action mapped")
	}
	if _, ok := ActionForOpcode(0); ok {
		t.Error("zero opcode mapped")
	}
}

func TestKindStringsAndUnits(t *testing.T) {
	kinds := []Kind{KindHeartRate, KindSpO2, KindTemperature, KindBPSystolic, KindBPDiastolic, KindGlucose}
	seen := map[string]bool{}
	for _, k := range kinds {
		if k.String() == "invalid" || seen[k.String()] {
			t.Errorf("kind %d renders %q", k, k)
		}
		seen[k.String()] = true
		if k.Unit() == "" {
			t.Errorf("kind %s has no unit", k)
		}
	}
	if KindInvalid.String() != "invalid" || KindInvalid.Unit() != "" {
		t.Error("invalid kind rendering")
	}
}

func TestWaveformDeterminism(t *testing.T) {
	a := HeartRateWaveform(7)
	b := HeartRateWaveform(7)
	for i := 0; i < 500; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("sample %d diverges: %v vs %v", i, av, bv)
		}
	}
	c := HeartRateWaveform(8)
	same := true
	a2 := HeartRateWaveform(7)
	for i := 0; i < 50; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produce identical streams")
	}
}

func TestWaveformStaysInPhysiologicalRange(t *testing.T) {
	cases := []struct {
		kind     Kind
		min, max float64
	}{
		{KindHeartRate, 30, 230},
		{KindSpO2, 70, 100},
		{KindTemperature, 33, 43},
		{KindBPSystolic, 60, 260},
		{KindBPDiastolic, 40, 160},
		{KindGlucose, 1.5, 30},
	}
	for _, c := range cases {
		w := WaveformFor(c.kind, 3)
		for i := 0; i < 2000; i++ {
			v := w.Next()
			if v < c.min || v > c.max {
				t.Fatalf("%s sample %d = %v outside [%v, %v]", c.kind, i, v, c.min, c.max)
			}
		}
	}
}

func TestWaveformEpisodeShiftsBaseline(t *testing.T) {
	w := NewWaveform(70, 1, WithEpisode(10, 5, 100))
	var before, during float64
	for i := 0; i < 10; i++ {
		before += w.Next()
	}
	for i := 0; i < 5; i++ {
		during += w.Next()
	}
	if during/5 < before/10+50 {
		t.Errorf("episode not visible: before avg %.1f, during avg %.1f", before/10, during/5)
	}
	if w.Tick() != 15 {
		t.Errorf("tick = %d", w.Tick())
	}
}

func TestSensorProxyDeviceTranslateIn(t *testing.T) {
	d := NewSensorProxyDevice(DeviceTypeHeartRate)
	if d.DeviceType() != DeviceTypeHeartRate {
		t.Errorf("type = %s", d.DeviceType())
	}
	r := Reading{Kind: KindHeartRate, Seq: 3, Millis: 1718000000123, Value: 88.5}
	events, err := d.TranslateIn(EncodeReading(r))
	if err != nil || len(events) != 1 {
		t.Fatalf("translate: %v %d", err, len(events))
	}
	e := events[0]
	if e.Type() != TypeReading {
		t.Errorf("type = %s", e.Type())
	}
	checks := map[string]event.Value{
		AttrKind:   event.Str("heart-rate"),
		AttrValue:  event.Float(88.5),
		AttrUnit:   event.Str("bpm"),
		AttrSeq:    event.Int(3),
		AttrMillis: event.Int(1718000000123),
	}
	for name, want := range checks {
		if v, ok := e.Get(name); !ok || !v.Equal(want) {
			t.Errorf("%s = %s, want %s", name, v, want)
		}
	}
	if _, err := d.TranslateIn([]byte("junk")); err == nil {
		t.Error("junk translated")
	}
	if _, ok, _ := d.TranslateOut(event.New()); ok {
		t.Error("sensor translated outbound")
	}
	if d.InitialSubscriptions() != nil {
		t.Error("sensor has initial subscriptions")
	}
}

func TestActuatorProxyDevice(t *testing.T) {
	d := NewActuatorProxyDevice(DeviceTypeDefib, "defib-1")
	subs := d.InitialSubscriptions()
	if len(subs) != 1 {
		t.Fatalf("subs = %d", len(subs))
	}
	mine := event.NewTyped(TypeActuate).SetStr(AttrTarget, "defib-1").SetStr(AttrAction, "shock")
	other := event.NewTyped(TypeActuate).SetStr(AttrTarget, "defib-2").SetStr(AttrAction, "shock")
	if !subs[0].Matches(mine) || subs[0].Matches(other) {
		t.Error("initial subscription targets wrong events")
	}

	data, ok, err := d.TranslateOut(mine.Clone().SetFloat(AttrArg, 150))
	if err != nil || !ok {
		t.Fatalf("translate out: %v %v", ok, err)
	}
	cmd, err := DecodeCommand(data)
	if err != nil || cmd.Opcode != OpShock || cmd.Arg != 150 {
		t.Errorf("cmd = %+v %v", cmd, err)
	}

	// Int args work too.
	data, ok, err = d.TranslateOut(mine.Clone().SetInt(AttrArg, 200))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if cmd, _ := DecodeCommand(data); cmd.Arg != 200 {
		t.Errorf("int arg = %v", cmd.Arg)
	}

	// Non-actuate events pass through untranslated.
	if _, ok, err := d.TranslateOut(event.NewTyped("other")); ok || err != nil {
		t.Error("non-actuate translated")
	}
	// Missing/unknown actions error.
	if _, _, err := d.TranslateOut(event.NewTyped(TypeActuate)); err == nil {
		t.Error("actionless actuate accepted")
	}
	bad := event.NewTyped(TypeActuate).SetStr(AttrAction, "explode")
	if _, _, err := d.TranslateOut(bad); err == nil {
		t.Error("unknown action accepted")
	}
	// Inbound data from an actuator is a protocol error.
	if _, err := d.TranslateIn([]byte{1}); err == nil {
		t.Error("actuator inbound accepted")
	}
}

// chanPublisher collects raw publishes.
type chanPublisher struct {
	mu   sync.Mutex
	data [][]byte
	fail error
}

func (c *chanPublisher) PublishRaw(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail != nil {
		return c.fail
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.data = append(c.data, cp)
	return nil
}

func (c *chanPublisher) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}

func TestSimEmitsReadings(t *testing.T) {
	pub := &chanPublisher{}
	fixed := time.UnixMilli(1718000000000)
	s := NewSim(KindTemperature, TemperatureWaveform(1), 10*time.Millisecond, pub,
		WithClock(func() time.Time { return fixed }))

	for i := 0; i < 3; i++ {
		if err := s.EmitOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Sent() != 3 || s.Failures() != 0 {
		t.Errorf("sent/failures = %d/%d", s.Sent(), s.Failures())
	}
	if pub.count() != 3 {
		t.Fatalf("published %d", pub.count())
	}
	for i, buf := range pub.data {
		r, err := DecodeReading(buf)
		if err != nil {
			t.Fatal(err)
		}
		if r.Kind != KindTemperature || r.Seq != uint16(i+1) || r.Millis != fixed.UnixMilli() {
			t.Errorf("reading %d = %+v", i, r)
		}
	}
}

func TestSimLoopAndStop(t *testing.T) {
	pub := &chanPublisher{}
	s := NewSim(KindHeartRate, HeartRateWaveform(2), 5*time.Millisecond, pub)
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && pub.count() < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	if pub.count() < 3 {
		t.Fatalf("only %d readings", pub.count())
	}
	n := pub.count()
	time.Sleep(50 * time.Millisecond)
	if pub.count() != n {
		t.Error("sim kept publishing after Stop")
	}
}

func TestActuatorSimRecordsCommands(t *testing.T) {
	a := NewActuatorSim("defib-1")
	data := make(chan []byte, 4)
	a.Start(data)
	data <- EncodeCommand(Command{Opcode: OpAnalyse, Arg: 0})
	data <- EncodeCommand(Command{Opcode: OpShock, Arg: 120})
	data <- []byte("garbage")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.Actions()) == 2 && a.DecodeErrors() == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.Stop()
	acts := a.Actions()
	if len(acts) != 2 || acts[0].Opcode != OpAnalyse || acts[1].Opcode != OpShock {
		t.Errorf("actions = %+v", acts)
	}
	if a.DecodeErrors() != 1 {
		t.Errorf("decode errors = %d", a.DecodeErrors())
	}
}
