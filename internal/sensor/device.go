package sensor

import (
	"errors"
	"sync"
	"time"

	"github.com/amuse/smc/internal/client"
)

// Publisher is the slice of the client library a simulated device
// needs.
type Publisher interface {
	PublishRaw(data []byte) error
}

// UnreliablePublisher is optionally implemented by publishers that can
// send without awaiting acknowledgement (client.Client does); sims
// configured WithUnreliable use it when available.
type UnreliablePublisher interface {
	PublishRawUnreliable(data []byte) error
}

// Sim is a simulated sensor device: it samples its waveform on a fixed
// period and transmits each sample in the device-native encoding — the
// periodic, unacknowledged style of a real body sensor (§III-B notes a
// temperature sensor "may periodically transmit data and not require
// any acknowledgement prior to the next reading"; acknowledgement is
// still performed by the transport hop, absorbed by the proxy).
type Sim struct {
	kind       Kind
	wave       *Waveform
	interval   time.Duration
	pub        Publisher
	clock      func() time.Time
	unreliable bool

	mu       sync.Mutex
	seq      uint16
	sent     uint64
	failures uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// SimOption configures a Sim.
type SimOption func(*Sim)

// WithClock overrides the device clock (tests).
func WithClock(now func() time.Time) SimOption {
	return func(s *Sim) { s.clock = now }
}

// WithUnreliable makes the sim transmit without awaiting
// acknowledgements (§III-B's periodic sensor that "may periodically
// transmit data and not require any acknowledgement prior to the next
// reading"). Requires a publisher implementing UnreliablePublisher;
// otherwise readings fall back to the acknowledged path.
func WithUnreliable(on bool) SimOption {
	return func(s *Sim) { s.unreliable = on }
}

// NewSim builds a simulated sensor publishing through pub every
// interval.
func NewSim(kind Kind, wave *Waveform, interval time.Duration, pub Publisher, opts ...SimOption) *Sim {
	s := &Sim{
		kind:     kind,
		wave:     wave,
		interval: interval,
		pub:      pub,
		clock:    time.Now,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Start launches the sampling loop.
func (s *Sim) Start() {
	go s.loop()
}

// Stop halts the device and waits for the loop to exit.
func (s *Sim) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Sent reports how many readings were transmitted.
func (s *Sim) Sent() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent
}

// Failures reports transmissions that errored (quench suppressions are
// not failures).
func (s *Sim) Failures() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// EmitOnce samples and transmits a single reading immediately. Useful
// for step-driven tests.
func (s *Sim) EmitOnce() error {
	s.mu.Lock()
	s.seq++
	r := Reading{
		Kind:   s.kind,
		Seq:    s.seq,
		Millis: s.clock().UnixMilli(),
		Value:  s.wave.Next(),
	}
	s.mu.Unlock()
	var err error
	if up, ok := s.pub.(UnreliablePublisher); ok && s.unreliable {
		err = up.PublishRawUnreliable(EncodeReading(r))
	} else {
		err = s.pub.PublishRaw(EncodeReading(r))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.sent++
	case errors.Is(err, client.ErrQuenched):
		// Quenched: the radio stayed off; not a failure.
	default:
		s.failures++
	}
	return err
}

func (s *Sim) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			_ = s.EmitOnce()
		case <-s.stop:
			return
		}
	}
}

// ActuatorSim is a simulated actuator device: it decodes native
// commands pushed by its proxy and records them.
type ActuatorSim struct {
	name string

	mu         sync.Mutex
	actions    []Command
	decodeErrs uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewActuatorSim builds the simulated actuator.
func NewActuatorSim(name string) *ActuatorSim {
	return &ActuatorSim{
		name: name,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Run consumes native commands from the client's data stream until
// stopped. Call in a goroutine or use Start.
func (a *ActuatorSim) Start(data <-chan []byte) {
	go func() {
		defer close(a.done)
		for {
			select {
			case buf, ok := <-data:
				if !ok {
					return // client shut down
				}
				cmd, err := DecodeCommand(buf)
				a.mu.Lock()
				if err != nil {
					a.decodeErrs++
				} else {
					a.actions = append(a.actions, cmd)
				}
				a.mu.Unlock()
			case <-a.stop:
				return
			}
		}
	}()
}

// Stop halts the actuator loop.
func (a *ActuatorSim) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

// Actions snapshots the executed commands.
func (a *ActuatorSim) Actions() []Command {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Command, len(a.actions))
	copy(out, a.actions)
	return out
}

// DecodeErrors reports undecodable commands received.
func (a *ActuatorSim) DecodeErrors() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.decodeErrs
}
