package sensor

import (
	"fmt"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/proxy"
)

// Event attribute names used by translated sensor traffic.
const (
	AttrKind   = "kind"
	AttrValue  = "value"
	AttrUnit   = "unit"
	AttrSeq    = "reading-seq"
	AttrMillis = "device-millis"
	AttrTarget = "target"
	AttrAction = "action"
	AttrArg    = "arg"
)

// Event classes.
const (
	TypeReading = "reading"
	TypeActuate = "actuate"
)

// Device type names used in discovery and the bootstrap registry.
const (
	DeviceTypeHeartRate   = "hr-sensor"
	DeviceTypeSpO2        = "spo2-sensor"
	DeviceTypeTemperature = "temp-sensor"
	DeviceTypeBP          = "bp-sensor"
	DeviceTypeGlucose     = "glucose-sensor"
	DeviceTypeDefib       = "defibrillator"
	DeviceTypePump        = "infusion-pump"
	DeviceTypeBedside     = "bedside-unit"
)

// SensorProxyDevice is the "complex proxy for a simple sensor"
// (§III-B): the device sends compact native readings; the proxy
// translates each into a fully fledged "reading" event. Outbound
// events are not translated — simple sensors receive nothing.
type SensorProxyDevice struct {
	deviceType string
}

var _ proxy.Device = (*SensorProxyDevice)(nil)

// NewSensorProxyDevice builds the translator for a sensor device type.
func NewSensorProxyDevice(deviceType string) *SensorProxyDevice {
	return &SensorProxyDevice{deviceType: deviceType}
}

// DeviceType implements proxy.Device.
func (d *SensorProxyDevice) DeviceType() string { return d.deviceType }

// TranslateIn implements proxy.Device: native reading bytes → event.
func (d *SensorProxyDevice) TranslateIn(data []byte) ([]*event.Event, error) {
	r, err := DecodeReading(data)
	if err != nil {
		return nil, err
	}
	e := ReadingEvent(d.deviceType, r)
	return []*event.Event{e}, nil
}

// TranslateOut implements proxy.Device: sensors take no commands.
func (d *SensorProxyDevice) TranslateOut(*event.Event) ([]byte, bool, error) {
	return nil, false, nil
}

// InitialSubscriptions implements proxy.Device: sensors subscribe to
// nothing.
func (d *SensorProxyDevice) InitialSubscriptions() []*event.Filter { return nil }

// ReadingEvent builds the bus event for a native reading.
func ReadingEvent(deviceType string, r Reading) *event.Event {
	e := event.NewTyped(TypeReading).
		Set(event.AttrDeviceType, event.Str(deviceType)).
		SetStr(AttrKind, r.Kind.String()).
		SetFloat(AttrValue, r.Value).
		SetStr(AttrUnit, r.Kind.Unit()).
		SetInt(AttrSeq, int64(r.Seq)).
		SetInt(AttrMillis, r.Millis)
	e.Stamp = time.UnixMilli(r.Millis)
	return e
}

// ActuatorProxyDevice is the proxy for an actuator: at creation it
// subscribes, on the device's behalf, to "actuate" events addressed to
// the device's name, and it translates each such event into the
// actuator's native command bytes.
type ActuatorProxyDevice struct {
	deviceType string
	name       string
}

var _ proxy.Device = (*ActuatorProxyDevice)(nil)

// NewActuatorProxyDevice builds the translator for a named actuator.
func NewActuatorProxyDevice(deviceType, name string) *ActuatorProxyDevice {
	return &ActuatorProxyDevice{deviceType: deviceType, name: name}
}

// DeviceType implements proxy.Device.
func (d *ActuatorProxyDevice) DeviceType() string { return d.deviceType }

// TranslateIn implements proxy.Device: actuators may report command
// completions as native readings of kind 0 — not supported; reject.
func (d *ActuatorProxyDevice) TranslateIn(data []byte) ([]*event.Event, error) {
	return nil, fmt.Errorf("sensor: actuator %q sent unexpected data", d.name)
}

// TranslateOut implements proxy.Device: "actuate" events become native
// commands; anything else is forwarded untranslated.
func (d *ActuatorProxyDevice) TranslateOut(e *event.Event) ([]byte, bool, error) {
	if e.Type() != TypeActuate {
		return nil, false, nil
	}
	actionV, ok := e.Get(AttrAction)
	if !ok {
		return nil, false, fmt.Errorf("sensor: actuate event without action")
	}
	action, _ := actionV.Str()
	op, ok := OpcodeForAction(action)
	if !ok {
		return nil, false, fmt.Errorf("sensor: unknown action %q", action)
	}
	var arg float64
	if v, ok := e.Get(AttrArg); ok {
		switch v.Type() {
		case event.TypeFloat:
			arg, _ = v.Float()
		case event.TypeInt:
			i, _ := v.Int()
			arg = float64(i)
		}
	}
	return EncodeCommand(Command{Opcode: op, Arg: arg}), true, nil
}

// InitialSubscriptions implements proxy.Device: actuate events for
// this device by name.
func (d *ActuatorProxyDevice) InitialSubscriptions() []*event.Filter {
	return []*event.Filter{
		event.NewFilter().
			WhereType(TypeActuate).
			Where(AttrTarget, event.OpEq, event.Str(d.name)),
	}
}
