package sensor

import (
	"math"
	"math/rand"
)

// Waveform generates a deterministic synthetic physiological signal:
// baseline + slow sinusoidal drift + bounded noise, with optional
// scripted episodes (e.g. a tachycardia run) that shift the baseline
// for a range of samples. Given the same seed and parameters the
// sequence is reproducible, which the tests and benchmarks rely on.
type Waveform struct {
	baseline float64
	drift    float64 // amplitude of the slow sine
	period   float64 // samples per sine cycle
	noise    float64 // half-width of uniform noise
	min, max float64

	episodes []episode
	rng      *rand.Rand
	tick     int
}

type episode struct {
	start, end int
	delta      float64
}

// WaveformOption configures a Waveform.
type WaveformOption func(*Waveform)

// WithDrift sets the slow-drift amplitude and period (in samples).
func WithDrift(amplitude float64, periodSamples float64) WaveformOption {
	return func(w *Waveform) {
		w.drift = amplitude
		if periodSamples > 0 {
			w.period = periodSamples
		}
	}
}

// WithNoise sets the uniform noise half-width.
func WithNoise(halfWidth float64) WaveformOption {
	return func(w *Waveform) { w.noise = halfWidth }
}

// WithClamp bounds generated samples.
func WithClamp(min, max float64) WaveformOption {
	return func(w *Waveform) { w.min, w.max = min, max }
}

// WithEpisode adds a baseline shift of delta for samples in
// [start, start+duration).
func WithEpisode(start, duration int, delta float64) WaveformOption {
	return func(w *Waveform) {
		w.episodes = append(w.episodes, episode{
			start: start, end: start + duration, delta: delta,
		})
	}
}

// NewWaveform builds a generator with the given baseline and seed.
func NewWaveform(baseline float64, seed int64, opts ...WaveformOption) *Waveform {
	w := &Waveform{
		baseline: baseline,
		period:   240,
		min:      math.Inf(-1),
		max:      math.Inf(1),
		rng:      rand.New(rand.NewSource(seed)),
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Next produces the next sample.
func (w *Waveform) Next() float64 {
	v := w.baseline
	if w.drift != 0 {
		v += w.drift * math.Sin(2*math.Pi*float64(w.tick)/w.period)
	}
	if w.noise > 0 {
		v += (w.rng.Float64()*2 - 1) * w.noise
	}
	for _, ep := range w.episodes {
		if w.tick >= ep.start && w.tick < ep.end {
			v += ep.delta
		}
	}
	w.tick++
	return math.Min(w.max, math.Max(w.min, v))
}

// Tick reports how many samples have been generated.
func (w *Waveform) Tick() int { return w.tick }

// Standard physiological generators. The seeds keep multiple sensors
// decorrelated while staying reproducible.

// HeartRateWaveform models a resting adult heart rate (~72 bpm).
func HeartRateWaveform(seed int64, opts ...WaveformOption) *Waveform {
	base := []WaveformOption{
		WithDrift(6, 300),
		WithNoise(2.5),
		WithClamp(30, 230),
	}
	return NewWaveform(72, seed, append(base, opts...)...)
}

// SpO2Waveform models oxygen saturation (~97 %).
func SpO2Waveform(seed int64, opts ...WaveformOption) *Waveform {
	base := []WaveformOption{
		WithDrift(0.8, 500),
		WithNoise(0.4),
		WithClamp(70, 100),
	}
	return NewWaveform(97.2, seed, append(base, opts...)...)
}

// TemperatureWaveform models core body temperature (~36.9 °C).
func TemperatureWaveform(seed int64, opts ...WaveformOption) *Waveform {
	base := []WaveformOption{
		WithDrift(0.3, 2000),
		WithNoise(0.05),
		WithClamp(33, 43),
	}
	return NewWaveform(36.9, seed, append(base, opts...)...)
}

// BPSystolicWaveform models systolic pressure (~118 mmHg).
func BPSystolicWaveform(seed int64, opts ...WaveformOption) *Waveform {
	base := []WaveformOption{
		WithDrift(7, 400),
		WithNoise(3),
		WithClamp(60, 260),
	}
	return NewWaveform(118, seed, append(base, opts...)...)
}

// BPDiastolicWaveform models diastolic pressure (~76 mmHg).
func BPDiastolicWaveform(seed int64, opts ...WaveformOption) *Waveform {
	base := []WaveformOption{
		WithDrift(4, 400),
		WithNoise(2),
		WithClamp(40, 160),
	}
	return NewWaveform(76, seed, append(base, opts...)...)
}

// GlucoseWaveform models blood glucose (~5.4 mmol/L).
func GlucoseWaveform(seed int64, opts ...WaveformOption) *Waveform {
	base := []WaveformOption{
		WithDrift(0.9, 900),
		WithNoise(0.15),
		WithClamp(1.5, 30),
	}
	return NewWaveform(5.4, seed, append(base, opts...)...)
}

// WaveformFor returns the standard generator for a sensor kind.
func WaveformFor(kind Kind, seed int64, opts ...WaveformOption) *Waveform {
	switch kind {
	case KindHeartRate:
		return HeartRateWaveform(seed, opts...)
	case KindSpO2:
		return SpO2Waveform(seed, opts...)
	case KindTemperature:
		return TemperatureWaveform(seed, opts...)
	case KindBPSystolic:
		return BPSystolicWaveform(seed, opts...)
	case KindBPDiastolic:
		return BPDiastolicWaveform(seed, opts...)
	case KindGlucose:
		return GlucoseWaveform(seed, opts...)
	default:
		return NewWaveform(0, seed, opts...)
	}
}
