// Package sensor provides the synthetic body-area devices the
// reproduction uses in place of physical medical sensors: deterministic
// waveform generators for heart rate, blood pressure, SpO2 and body
// temperature; actuator models (defibrillator, insulin pump); the
// compact native encodings such devices emit; and the concrete proxy
// device types that translate those encodings into fully fledged
// events (§III-B: "a temperature sensor may periodically send a series
// of bytes representing a temperature reading, which the proxy converts
// into an object representing an event").
package sensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind identifies a physiological measurement.
type Kind byte

// Sensor kinds with their conventional units.
const (
	KindInvalid     Kind = iota
	KindHeartRate        // beats per minute
	KindSpO2             // percent saturation
	KindTemperature      // degrees Celsius
	KindBPSystolic       // mmHg
	KindBPDiastolic      // mmHg
	KindGlucose          // mmol/L
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindHeartRate:
		return "heart-rate"
	case KindSpO2:
		return "spo2"
	case KindTemperature:
		return "temperature"
	case KindBPSystolic:
		return "bp-systolic"
	case KindBPDiastolic:
		return "bp-diastolic"
	case KindGlucose:
		return "glucose"
	default:
		return "invalid"
	}
}

// Unit returns the measurement unit for the kind.
func (k Kind) Unit() string {
	switch k {
	case KindHeartRate:
		return "bpm"
	case KindSpO2:
		return "%"
	case KindTemperature:
		return "degC"
	case KindBPSystolic, KindBPDiastolic:
		return "mmHg"
	case KindGlucose:
		return "mmol/L"
	default:
		return ""
	}
}

// Reading is one native sensor sample.
type Reading struct {
	Kind   Kind
	Seq    uint16
	Millis int64 // device clock, Unix milliseconds
	Value  float64
}

// readingLen is the encoded reading size: kind(1) seq(2) millis(8)
// value(8).
const readingLen = 1 + 2 + 8 + 8

// ErrBadReading reports an undecodable native sample.
var ErrBadReading = errors.New("sensor: bad reading encoding")

// EncodeReading produces the device-native byte encoding.
func EncodeReading(r Reading) []byte {
	buf := make([]byte, readingLen)
	buf[0] = byte(r.Kind)
	binary.BigEndian.PutUint16(buf[1:3], r.Seq)
	binary.BigEndian.PutUint64(buf[3:11], uint64(r.Millis))
	binary.BigEndian.PutUint64(buf[11:19], math.Float64bits(r.Value))
	return buf
}

// DecodeReading parses the device-native byte encoding.
func DecodeReading(buf []byte) (Reading, error) {
	if len(buf) != readingLen {
		return Reading{}, fmt.Errorf("%w: %d bytes", ErrBadReading, len(buf))
	}
	r := Reading{
		Kind:   Kind(buf[0]),
		Seq:    binary.BigEndian.Uint16(buf[1:3]),
		Millis: int64(binary.BigEndian.Uint64(buf[3:11])),
		Value:  math.Float64frombits(binary.BigEndian.Uint64(buf[11:19])),
	}
	if r.Kind == KindInvalid || r.Kind > KindGlucose {
		return Reading{}, fmt.Errorf("%w: kind %d", ErrBadReading, buf[0])
	}
	return r, nil
}

// Command is one native actuator instruction.
type Command struct {
	Opcode byte
	Arg    float64
}

// Actuator opcodes.
const (
	// OpAnalyse asks a defibrillator to run rhythm analysis.
	OpAnalyse byte = iota + 1
	// OpShock asks a defibrillator to deliver a shock (arg: joules).
	OpShock
	// OpInfuse asks an infusion pump to deliver a dose (arg: units).
	OpInfuse
	// OpBeep asks a bedside unit to sound an alert (arg: severity).
	OpBeep
)

// commandLen is the encoded command size: opcode(1) arg(8).
const commandLen = 1 + 8

// ErrBadCommand reports an undecodable native command.
var ErrBadCommand = errors.New("sensor: bad command encoding")

// EncodeCommand produces the actuator-native byte encoding.
func EncodeCommand(c Command) []byte {
	buf := make([]byte, commandLen)
	buf[0] = c.Opcode
	binary.BigEndian.PutUint64(buf[1:9], math.Float64bits(c.Arg))
	return buf
}

// DecodeCommand parses the actuator-native byte encoding.
func DecodeCommand(buf []byte) (Command, error) {
	if len(buf) != commandLen {
		return Command{}, fmt.Errorf("%w: %d bytes", ErrBadCommand, len(buf))
	}
	c := Command{
		Opcode: buf[0],
		Arg:    math.Float64frombits(binary.BigEndian.Uint64(buf[1:9])),
	}
	if c.Opcode == 0 || c.Opcode > OpBeep {
		return Command{}, fmt.Errorf("%w: opcode %d", ErrBadCommand, buf[0])
	}
	return c, nil
}

// OpcodeForAction maps an action name carried in "actuate" events to a
// native opcode.
func OpcodeForAction(action string) (byte, bool) {
	switch action {
	case "analyse":
		return OpAnalyse, true
	case "shock":
		return OpShock, true
	case "infuse":
		return OpInfuse, true
	case "beep":
		return OpBeep, true
	default:
		return 0, false
	}
}

// ActionForOpcode is the inverse of OpcodeForAction.
func ActionForOpcode(op byte) (string, bool) {
	switch op {
	case OpAnalyse:
		return "analyse", true
	case OpShock:
		return "shock", true
	case OpInfuse:
		return "infuse", true
	case OpBeep:
		return "beep", true
	default:
		return "", false
	}
}
