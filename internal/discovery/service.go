package discovery

import (
	"errors"
	"sync"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/wire"
)

// Emitter receives the membership events the discovery service
// generates; the bus's local-service handle satisfies it.
type Emitter interface {
	Publish(e *event.Event) error
}

// AdmitFunc is an optional application-level admission hook consulted
// after credential verification. Returning an error rejects the device
// with the error text as the reason.
type AdmitFunc func(id ident.ID, deviceType, name string) error

// MemberState describes a member's liveness.
type MemberState int

// Member liveness states. A member whose lease lapsed enters Grace —
// still a member, its silence masked (§II-B: "a nurse leaves the room
// for a short period of time before returning") — and is purged only
// when the grace period also lapses.
const (
	StateActive MemberState = iota + 1
	StateGrace
)

// String names the state.
func (s MemberState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateGrace:
		return "grace"
	default:
		return "unknown"
	}
}

// MemberInfo is a snapshot of one member's record.
type MemberInfo struct {
	ID         ident.ID
	DeviceType string
	Name       string
	State      MemberState
	LastSeen   time.Time
	JoinedAt   time.Time
}

// ServiceConfig configures a discovery service.
type ServiceConfig struct {
	// Cell is the cell's name, echoed in beacons and join accepts.
	Cell string
	// Secret is the shared admission secret.
	Secret []byte
	// BusID is the event bus's service ID, handed to admitted devices.
	BusID ident.ID
	// Epoch distinguishes service restarts.
	Epoch uint32
	// BeaconInterval is the broadcast period (default 500 ms).
	BeaconInterval time.Duration
	// Lease is the heartbeat lease (default 2 s).
	Lease time.Duration
	// Grace is the additional tolerated silence (default 3 s).
	Grace time.Duration
	// Admit is the optional admission hook.
	Admit AdmitFunc
	// Register, when set, is called synchronously after admission is
	// decided and before the JoinAccept is sent — the bus wires its
	// AddMember here so the member's proxy exists before the device
	// learns it was admitted (no publish can race ahead of
	// membership). An error rejects the join.
	Register func(id ident.ID, deviceType, name string) error
	// Unregister, when set, is called when a member is purged,
	// before the Purge Member event is emitted.
	Unregister func(id ident.ID)
	// StatsProvider, when set, enables the management plane: a
	// PktStatsRequest from any endpoint (admission not required — the
	// observation plane must work exactly when the data plane is in
	// trouble) is answered with the encoded snapshot it returns.
	StatsProvider func() wire.CellStats
}

func (c *ServiceConfig) fillDefaults() {
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = 500 * time.Millisecond
	}
	if c.Lease <= 0 {
		c.Lease = 2 * time.Second
	}
	if c.Grace <= 0 {
		c.Grace = 3 * time.Second
	}
}

// Stats counts discovery activity.
type Stats struct {
	Beacons      uint64
	JoinRequests uint64
	Admitted     uint64
	Rejected     uint64
	Heartbeats   uint64
	GraceEntries uint64
	GraceReturns uint64
	Purged       uint64
	Leaves       uint64
	EmitFailures uint64
}

// Service is the cell-side discovery service.
type Service struct {
	ch   *reliable.Channel
	emit Emitter
	cfg  ServiceConfig

	mu      sync.Mutex
	members map[ident.ID]*memberRecord
	stats   Stats
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

type memberRecord struct {
	info MemberInfo
}

// NewService builds a discovery service over its own reliable channel
// (the discovery protocol does not share the bus's endpoint). Call
// Start to begin beaconing and admission.
func NewService(ch *reliable.Channel, emit Emitter, cfg ServiceConfig) (*Service, error) {
	if emit == nil {
		return nil, errors.New("discovery: nil emitter")
	}
	if cfg.Cell == "" {
		return nil, errors.New("discovery: empty cell name")
	}
	if cfg.BusID.IsNil() {
		return nil, errors.New("discovery: missing bus ID")
	}
	cfg.fillDefaults()
	return &Service{
		ch:      ch,
		emit:    emit,
		cfg:     cfg,
		members: make(map[ident.ID]*memberRecord),
		done:    make(chan struct{}),
	}, nil
}

// ID returns the discovery service's network ID.
func (s *Service) ID() ident.ID { return s.ch.LocalID() }

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Members snapshots the membership table.
func (s *Service) Members() []MemberInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MemberInfo, 0, len(s.members))
	for _, m := range s.members {
		out = append(out, m.info)
	}
	return out
}

// Member returns one member's record.
func (s *Service) Member(id ident.ID) (MemberInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[id]
	if !ok {
		return MemberInfo{}, false
	}
	return m.info, true
}

// Start launches the beacon, receive and expiry loops.
func (s *Service) Start() {
	s.wg.Add(3)
	go s.beaconLoop()
	go s.recvLoop()
	go s.expiryLoop()
}

// Close stops the service and its channel.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	err := s.ch.Close()
	s.wg.Wait()
	return err
}

// Kick forcibly purges a member (management action).
func (s *Service) Kick(id ident.ID, reason string) bool {
	return s.purge(id, reason)
}

func (s *Service) beaconLoop() {
	defer s.wg.Done()
	payload := wire.AppendBeacon(nil, wire.Beacon{Cell: s.cfg.Cell, Epoch: s.cfg.Epoch})
	ticker := time.NewTicker(s.cfg.BeaconInterval)
	defer ticker.Stop()
	// Send one beacon immediately so joins don't wait a full period.
	s.sendBeacon(payload)
	for {
		select {
		case <-ticker.C:
			s.sendBeacon(payload)
		case <-s.done:
			return
		}
	}
}

func (s *Service) sendBeacon(payload []byte) {
	if err := s.ch.SendUnreliable(ident.Broadcast, wire.PktBeacon, payload); err != nil {
		return
	}
	s.mu.Lock()
	s.stats.Beacons++
	s.mu.Unlock()
}

func (s *Service) recvLoop() {
	defer s.wg.Done()
	for {
		pkt, err := s.ch.Recv()
		if err != nil {
			return
		}
		switch pkt.Type {
		case wire.PktJoinRequest:
			s.handleJoin(pkt)
		case wire.PktHeartbeat:
			s.handleHeartbeat(pkt.Sender)
		case wire.PktLeave:
			s.handleLeave(pkt.Sender)
		case wire.PktStatsRequest:
			s.handleStatsRequest(pkt.Sender)
		default:
			// Bus traffic does not belong here; ignore.
		}
		// Handlers decode what they keep; recycle the pooled packet.
		pkt.Release()
	}
}

func (s *Service) handleJoin(pkt *wire.Packet) {
	s.mu.Lock()
	s.stats.JoinRequests++
	s.mu.Unlock()

	req, err := wire.DecodeJoinRequest(pkt.Payload)
	if err != nil {
		s.reject(pkt.Sender, "malformed join request")
		return
	}
	if !VerifyAuth(s.cfg.Secret, pkt.Sender, s.cfg.Cell, req.Auth) {
		s.reject(pkt.Sender, "authentication failed")
		return
	}
	if s.cfg.Admit != nil {
		if err := s.cfg.Admit(pkt.Sender, req.DeviceType, req.DeviceName); err != nil {
			s.reject(pkt.Sender, err.Error())
			return
		}
	}

	now := time.Now()
	s.mu.Lock()
	rec, rejoin := s.members[pkt.Sender]
	s.mu.Unlock()
	if !rejoin && s.cfg.Register != nil {
		if err := s.cfg.Register(pkt.Sender, req.DeviceType, req.DeviceName); err != nil {
			s.reject(pkt.Sender, err.Error())
			return
		}
	}
	s.mu.Lock()
	if rejoin {
		// Re-join of a live member (e.g. device restarted before its
		// lease lapsed): refresh the record, do not duplicate the
		// New Member event.
		rec.info.LastSeen = now
		rec.info.State = StateActive
	} else {
		s.members[pkt.Sender] = &memberRecord{info: MemberInfo{
			ID:         pkt.Sender,
			DeviceType: req.DeviceType,
			Name:       req.DeviceName,
			State:      StateActive,
			LastSeen:   now,
			JoinedAt:   now,
		}}
		s.stats.Admitted++
	}
	s.mu.Unlock()

	accept := wire.AppendJoinAccept(nil, wire.JoinAccept{
		Cell:        s.cfg.Cell,
		Bus:         s.cfg.BusID,
		LeaseMillis: uint32(s.cfg.Lease / time.Millisecond),
		GraceMillis: uint32(s.cfg.Grace / time.Millisecond),
	})
	if err := s.ch.Send(pkt.Sender, wire.PktJoinAccept, accept); err != nil {
		// Could not confirm admission: roll back so the device can
		// retry cleanly.
		if !rejoin {
			s.mu.Lock()
			delete(s.members, pkt.Sender)
			s.mu.Unlock()
			if s.cfg.Unregister != nil {
				s.cfg.Unregister(pkt.Sender)
			}
		}
		return
	}
	if !rejoin {
		s.emitMembership(event.TypeNewMember, pkt.Sender, req.DeviceType, req.DeviceName, "")
	}
}

func (s *Service) reject(to ident.ID, reason string) {
	s.mu.Lock()
	s.stats.Rejected++
	s.mu.Unlock()
	payload := wire.AppendJoinReject(nil, wire.JoinReject{Reason: reason})
	_ = s.ch.SendUnreliable(to, wire.PktJoinReject, payload)
}

// handleStatsRequest answers a management-plane snapshot query. The
// reply is a reliable fire-and-forget send: it must not block the
// receive loop, and a lost response is recovered by the requester
// retrying the query.
func (s *Service) handleStatsRequest(to ident.ID) {
	if s.cfg.StatsProvider == nil {
		return
	}
	payload := wire.AppendCellStats(nil, s.cfg.StatsProvider())
	_ = s.ch.SendFireForget(to, wire.PktStatsResponse, payload)
}

func (s *Service) handleHeartbeat(id ident.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.members[id]
	if !ok {
		return // not a member; heartbeats don't admit
	}
	s.stats.Heartbeats++
	rec.info.LastSeen = time.Now()
	if rec.info.State == StateGrace {
		rec.info.State = StateActive
		s.stats.GraceReturns++
	}
}

func (s *Service) handleLeave(id ident.ID) {
	s.mu.Lock()
	_, ok := s.members[id]
	if ok {
		s.stats.Leaves++
	}
	s.mu.Unlock()
	if ok {
		s.purge(id, "leave")
	}
}

func (s *Service) expiryLoop() {
	defer s.wg.Done()
	period := s.cfg.Lease / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.checkExpiry()
		case <-s.done:
			return
		}
	}
}

func (s *Service) checkExpiry() {
	now := time.Now()
	var toPurge []ident.ID
	s.mu.Lock()
	for id, rec := range s.members {
		silence := now.Sub(rec.info.LastSeen)
		switch rec.info.State {
		case StateActive:
			if silence > s.cfg.Lease {
				rec.info.State = StateGrace
				s.stats.GraceEntries++
			}
		case StateGrace:
			if silence > s.cfg.Lease+s.cfg.Grace {
				toPurge = append(toPurge, id)
			}
		}
	}
	s.mu.Unlock()
	for _, id := range toPurge {
		s.purge(id, "lease-expired")
	}
}

// purge removes a member and announces it. It reports whether the
// member existed.
func (s *Service) purge(id ident.ID, reason string) bool {
	s.mu.Lock()
	rec, ok := s.members[id]
	if ok {
		delete(s.members, id)
		s.stats.Purged++
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	s.ch.Forget(id)
	if s.cfg.Unregister != nil {
		s.cfg.Unregister(id)
	}
	s.emitMembership(event.TypePurgeMember, id, rec.info.DeviceType, rec.info.Name, reason)
	return true
}

func (s *Service) emitMembership(class string, id ident.ID, deviceType, name, reason string) {
	e := event.NewTyped(class).
		Set(event.AttrMember, event.Int(int64(id))).
		Set(event.AttrDeviceType, event.Str(deviceType)).
		SetStr("name", name)
	e.Stamp = time.Now()
	if reason != "" {
		e.SetStr("reason", reason)
	}
	if err := s.emit.Publish(e); err != nil {
		// The bus is shutting down or overloaded; count and drop —
		// membership state is re-announced by later lifecycle changes.
		s.mu.Lock()
		s.stats.EmitFailures++
		s.mu.Unlock()
	}
}
