package discovery

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

// Device-side admission: listen for a cell's beacons, request
// membership, then keep the lease alive with heartbeats.

var (
	// ErrNoCell reports that no beacon was heard within the timeout.
	ErrNoCell = errors.New("discovery: no cell found")
	// ErrRejected reports admission refusal; the reason is appended.
	ErrRejected = errors.New("discovery: join rejected")
)

// JoinResult describes a successful admission.
type JoinResult struct {
	Cell      string
	Discovery ident.ID
	Bus       ident.ID
	Epoch     uint32
	Lease     time.Duration
	Grace     time.Duration
}

// JoinConfig parameterises a join attempt.
type JoinConfig struct {
	DeviceType string
	DeviceName string
	Secret     []byte
	// Cell optionally pins the cell to join; empty joins the first
	// cell heard.
	Cell string
	// Discovery, when non-nil together with Cell, skips the beacon
	// phase and contacts the named discovery service directly. Used
	// on transports without broadcast reach (e.g. unicast-only UDP
	// deployments where the operator knows the cell's address).
	Discovery ident.ID
	// Timeout bounds the whole attempt (default 5 s).
	Timeout time.Duration
}

// Join performs device-side admission on the channel: wait for a
// beacon, send an authenticated join request, await the verdict. The
// caller must not be consuming ch.Recv concurrently; after Join
// returns the channel is free (hand it to the client library).
func Join(ch *reliable.Channel, cfg JoinConfig) (*JoinResult, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	deadline := time.Now().Add(cfg.Timeout)

	// Phase 1: hear a beacon (skipped when the discovery service is
	// already known).
	var (
		beacon  wire.Beacon
		discSvc ident.ID
	)
	if !cfg.Discovery.IsNil() {
		if cfg.Cell == "" {
			return nil, errors.New("discovery: direct join needs the cell name")
		}
		beacon = wire.Beacon{Cell: cfg.Cell}
		discSvc = cfg.Discovery
	}
	for discSvc.IsNil() {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, ErrNoCell
		}
		pkt, err := ch.RecvTimeout(remain)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				return nil, ErrNoCell
			}
			return nil, err
		}
		if pkt.Type != wire.PktBeacon {
			pkt.Release()
			continue
		}
		b, err := wire.DecodeBeacon(pkt.Payload)
		sender := pkt.Sender
		pkt.Release()
		if err != nil {
			continue
		}
		if cfg.Cell != "" && b.Cell != cfg.Cell {
			continue
		}
		beacon, discSvc = b, sender
		break
	}

	// Phase 2: authenticated join request (reliable, acked).
	req := wire.AppendJoinRequest(nil, wire.JoinRequest{
		DeviceType: cfg.DeviceType,
		DeviceName: cfg.DeviceName,
		Auth:       AuthDigest(cfg.Secret, ch.LocalID(), beacon.Cell),
	})
	if err := ch.Send(discSvc, wire.PktJoinRequest, req); err != nil {
		return nil, fmt.Errorf("discovery: join request: %w", err)
	}

	// Phase 3: await the verdict, skipping unrelated traffic.
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("discovery: no verdict from %s", discSvc)
		}
		pkt, err := ch.RecvTimeout(remain)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				return nil, fmt.Errorf("discovery: no verdict from %s", discSvc)
			}
			return nil, err
		}
		switch pkt.Type {
		case wire.PktJoinAccept:
			ja, err := wire.DecodeJoinAccept(pkt.Payload)
			pkt.Release()
			if err != nil {
				return nil, fmt.Errorf("discovery: bad accept: %w", err)
			}
			return &JoinResult{
				Cell:      ja.Cell,
				Discovery: discSvc,
				Bus:       ja.Bus,
				Epoch:     beacon.Epoch,
				Lease:     time.Duration(ja.LeaseMillis) * time.Millisecond,
				Grace:     time.Duration(ja.GraceMillis) * time.Millisecond,
			}, nil
		case wire.PktJoinReject:
			jr, err := wire.DecodeJoinReject(pkt.Payload)
			pkt.Release()
			if err != nil {
				return nil, ErrRejected
			}
			return nil, fmt.Errorf("%w: %s", ErrRejected, jr.Reason)
		default:
			pkt.Release()
			continue
		}
	}
}

// Heartbeater keeps a member's lease alive.
type Heartbeater struct {
	ch       *reliable.Channel
	disc     ident.ID
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartHeartbeats begins sending unreliable heartbeats to the discovery
// service every interval (a third of the lease is a sensible choice:
// two may be lost before the lease lapses).
func StartHeartbeats(ch *reliable.Channel, disc ident.ID, interval time.Duration) *Heartbeater {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	h := &Heartbeater{
		ch:       ch,
		disc:     disc,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go h.loop()
	return h
}

func (h *Heartbeater) loop() {
	defer close(h.done)
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	// Beat immediately: the join itself counted as contact, but an
	// early beat narrows the race with a short lease.
	_ = h.ch.SendUnreliable(h.disc, wire.PktHeartbeat, nil)
	for {
		select {
		case <-ticker.C:
			_ = h.ch.SendUnreliable(h.disc, wire.PktHeartbeat, nil)
		case <-h.stop:
			return
		}
	}
}

// Stop ends the heartbeats and waits for the loop to exit.
func (h *Heartbeater) Stop() {
	h.stopOnce.Do(func() {
		close(h.stop)
	})
	<-h.done
}

// Leave announces a voluntary departure (reliable) so the cell purges
// the member immediately instead of waiting out lease and grace.
func Leave(ch *reliable.Channel, disc ident.ID) error {
	return ch.Send(disc, wire.PktLeave, nil)
}
