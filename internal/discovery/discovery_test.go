package discovery

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/reliable"
)

var secret = []byte("s3cret")

// sink collects emitted membership events.
type sink struct {
	mu     sync.Mutex
	events []*event.Event
}

func (s *sink) Publish(e *event.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
	return nil
}

func (s *sink) ofType(class string) []*event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*event.Event
	for _, e := range s.events {
		if e.Type() == class {
			out = append(out, e)
		}
	}
	return out
}

func relCfg() reliable.Config {
	return reliable.Config{
		RetryTimeout:    20 * time.Millisecond,
		MaxRetryTimeout: 100 * time.Millisecond,
		MaxRetries:      15,
	}
}

type fixture struct {
	net  *netsim.Network
	svc  *Service
	sink *sink
}

func newFixture(t *testing.T, cfg ServiceConfig) *fixture {
	t.Helper()
	n := netsim.New(netsim.Perfect, netsim.WithSeed(41))
	tr, err := n.Attach(ident.New(0xD15C))
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{}
	if cfg.Cell == "" {
		cfg.Cell = "cell-1"
	}
	if cfg.Secret == nil {
		cfg.Secret = secret
	}
	if cfg.BusID == 0 {
		cfg.BusID = ident.New(0xB05)
	}
	if cfg.BeaconInterval == 0 {
		cfg.BeaconInterval = 30 * time.Millisecond
	}
	if cfg.Lease == 0 {
		cfg.Lease = 250 * time.Millisecond
	}
	if cfg.Grace == 0 {
		cfg.Grace = 250 * time.Millisecond
	}
	svc, err := NewService(reliable.New(tr, relCfg()), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	t.Cleanup(func() {
		svc.Close()
		n.Close()
	})
	return &fixture{net: n, svc: svc, sink: s}
}

func (f *fixture) device(t *testing.T, id uint64) *reliable.Channel {
	t.Helper()
	tr, err := f.net.Attach(ident.New(id))
	if err != nil {
		t.Fatal(err)
	}
	ch := reliable.New(tr, relCfg())
	t.Cleanup(func() { ch.Close() })
	return ch
}

func TestJoinHappyPath(t *testing.T) {
	f := newFixture(t, ServiceConfig{})
	ch := f.device(t, 1)

	res, err := Join(ch, JoinConfig{
		DeviceType: "hr-sensor", DeviceName: "hr-1", Secret: secret,
		Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if res.Cell != "cell-1" || res.Bus != ident.New(0xB05) || res.Discovery != f.svc.ID() {
		t.Errorf("result = %+v", res)
	}
	if res.Lease != 250*time.Millisecond || res.Grace != 250*time.Millisecond {
		t.Errorf("lease/grace = %v/%v", res.Lease, res.Grace)
	}

	info, ok := f.svc.Member(ch.LocalID())
	if !ok || info.DeviceType != "hr-sensor" || info.Name != "hr-1" || info.State != StateActive {
		t.Errorf("member = %+v, %v", info, ok)
	}
	var news []*event.Event
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if news = f.sink.ofType(event.TypeNewMember); len(news) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(news) != 1 {
		t.Fatalf("new-member events = %d", len(news))
	}
	if v, _ := news[0].Get(event.AttrDeviceType); !v.Equal(event.Str("hr-sensor")) {
		t.Errorf("device-type attr = %s", v)
	}
}

func TestJoinWrongSecretRejected(t *testing.T) {
	f := newFixture(t, ServiceConfig{})
	ch := f.device(t, 2)
	_, err := Join(ch, JoinConfig{
		DeviceType: "x", DeviceName: "y", Secret: []byte("wrong"),
		Timeout: 2 * time.Second,
	})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if f.svc.Stats().Rejected == 0 {
		t.Error("rejection not counted")
	}
	if len(f.svc.Members()) != 0 {
		t.Error("rejected device admitted")
	}
}

func TestJoinAdmitHookRejects(t *testing.T) {
	f := newFixture(t, ServiceConfig{
		Admit: func(id ident.ID, deviceType, name string) error {
			if deviceType == "banned" {
				return errors.New("device type banned on this ward")
			}
			return nil
		},
	})
	ch := f.device(t, 3)
	_, err := Join(ch, JoinConfig{DeviceType: "banned", DeviceName: "n", Secret: secret, Timeout: 2 * time.Second})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	ch2 := f.device(t, 4)
	if _, err := Join(ch2, JoinConfig{DeviceType: "fine", DeviceName: "n", Secret: secret, Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("allowed type rejected: %v", err)
	}
}

func TestJoinPinsCellName(t *testing.T) {
	f := newFixture(t, ServiceConfig{Cell: "ward-7"})
	ch := f.device(t, 5)
	if _, err := Join(ch, JoinConfig{
		DeviceType: "x", DeviceName: "y", Secret: secret,
		Cell: "other-cell", Timeout: 400 * time.Millisecond,
	}); !errors.Is(err, ErrNoCell) {
		t.Errorf("err = %v, want ErrNoCell", err)
	}
	_ = f
}

func TestJoinNoCellTimeout(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(50))
	defer n.Close()
	tr, _ := n.Attach(ident.New(9))
	ch := reliable.New(tr, relCfg())
	defer ch.Close()
	start := time.Now()
	_, err := Join(ch, JoinConfig{DeviceType: "x", Secret: secret, Timeout: 200 * time.Millisecond})
	if !errors.Is(err, ErrNoCell) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Error("gave up too early")
	}
}

func TestRegisterHookOrderingAndVeto(t *testing.T) {
	var mu sync.Mutex
	registered := []ident.ID{}
	veto := false
	f := newFixture(t, ServiceConfig{
		Register: func(id ident.ID, deviceType, name string) error {
			mu.Lock()
			defer mu.Unlock()
			if veto {
				return errors.New("no room")
			}
			registered = append(registered, id)
			return nil
		},
		Unregister: func(id ident.ID) {
			mu.Lock()
			defer mu.Unlock()
			for i, r := range registered {
				if r == id {
					registered = append(registered[:i], registered[i+1:]...)
				}
			}
		},
	})
	ch := f.device(t, 6)
	if _, err := Join(ch, JoinConfig{DeviceType: "x", DeviceName: "a", Secret: secret, Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("join: %v", err)
	}
	mu.Lock()
	if len(registered) != 1 || registered[0] != ch.LocalID() {
		t.Errorf("registered = %v", registered)
	}
	veto = true
	mu.Unlock()

	ch2 := f.device(t, 7)
	if _, err := Join(ch2, JoinConfig{DeviceType: "x", DeviceName: "b", Secret: secret, Timeout: 2 * time.Second}); !errors.Is(err, ErrRejected) {
		t.Errorf("vetoed join: %v", err)
	}
}

func TestHeartbeatsKeepMemberAlive(t *testing.T) {
	f := newFixture(t, ServiceConfig{Lease: 150 * time.Millisecond, Grace: 150 * time.Millisecond})
	ch := f.device(t, 8)
	res, err := Join(ch, JoinConfig{DeviceType: "x", DeviceName: "a", Secret: secret, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hb := StartHeartbeats(ch, res.Discovery, 50*time.Millisecond)
	defer hb.Stop()

	time.Sleep(600 * time.Millisecond) // several leases
	info, ok := f.svc.Member(ch.LocalID())
	if !ok || info.State != StateActive {
		t.Errorf("member = %+v, %v after heartbeats", info, ok)
	}
	if f.sink.ofType(event.TypePurgeMember) != nil {
		t.Error("purged despite heartbeats")
	}
}

func TestSilenceLeadsToGraceThenPurge(t *testing.T) {
	f := newFixture(t, ServiceConfig{Lease: 120 * time.Millisecond, Grace: 200 * time.Millisecond})
	ch := f.device(t, 9)
	if _, err := Join(ch, JoinConfig{DeviceType: "x", DeviceName: "a", Secret: secret, Timeout: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// No heartbeats at all. First the member enters grace...
	deadline := time.Now().Add(2 * time.Second)
	sawGrace := false
	for time.Now().Before(deadline) {
		if info, ok := f.svc.Member(ch.LocalID()); ok && info.State == StateGrace {
			sawGrace = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawGrace {
		t.Fatal("member never entered grace")
	}
	// ...then gets purged.
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := f.svc.Member(ch.LocalID()); !ok {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := f.svc.Member(ch.LocalID()); ok {
		t.Fatal("member never purged")
	}
	purges := f.sink.ofType(event.TypePurgeMember)
	if len(purges) != 1 {
		t.Fatalf("purge events = %d", len(purges))
	}
	if v, _ := purges[0].Get("reason"); !v.Equal(event.Str("lease-expired")) {
		t.Errorf("reason = %s", v)
	}
	st := f.svc.Stats()
	if st.GraceEntries == 0 || st.Purged != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHeartbeatDuringGraceRecovers(t *testing.T) {
	f := newFixture(t, ServiceConfig{Lease: 100 * time.Millisecond, Grace: 2 * time.Second})
	ch := f.device(t, 10)
	res, err := Join(ch, JoinConfig{DeviceType: "x", DeviceName: "a", Secret: secret, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Fall silent long enough to enter grace.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if info, _ := f.svc.Member(ch.LocalID()); info.State == StateGrace {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Resume contact.
	hb := StartHeartbeats(ch, res.Discovery, 30*time.Millisecond)
	defer hb.Stop()
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if info, ok := f.svc.Member(ch.LocalID()); ok && info.State == StateActive {
			if f.svc.Stats().GraceReturns == 0 {
				t.Error("grace return not counted")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("member did not recover from grace")
}

func TestLeavePurgesImmediately(t *testing.T) {
	f := newFixture(t, ServiceConfig{Lease: 10 * time.Second, Grace: 10 * time.Second})
	ch := f.device(t, 11)
	res, err := Join(ch, JoinConfig{DeviceType: "x", DeviceName: "a", Secret: secret, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := Leave(ch, res.Discovery); err != nil {
		t.Fatalf("leave: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := f.svc.Member(ch.LocalID()); !ok {
			purges := f.sink.ofType(event.TypePurgeMember)
			if len(purges) != 1 {
				t.Fatalf("purge events = %d", len(purges))
			}
			if v, _ := purges[0].Get("reason"); !v.Equal(event.Str("leave")) {
				t.Errorf("reason = %s", v)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("leave did not purge")
}

func TestKick(t *testing.T) {
	f := newFixture(t, ServiceConfig{Lease: 10 * time.Second, Grace: 10 * time.Second})
	ch := f.device(t, 12)
	if _, err := Join(ch, JoinConfig{DeviceType: "x", DeviceName: "a", Secret: secret, Timeout: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if !f.svc.Kick(ch.LocalID(), "admin") {
		t.Fatal("kick failed")
	}
	if f.svc.Kick(ch.LocalID(), "again") {
		t.Error("double kick succeeded")
	}
	purges := f.sink.ofType(event.TypePurgeMember)
	if len(purges) != 1 {
		t.Fatalf("purge events = %d", len(purges))
	}
}

func TestRejoinOfLiveMemberDoesNotDuplicateNewMember(t *testing.T) {
	f := newFixture(t, ServiceConfig{Lease: 10 * time.Second, Grace: 10 * time.Second})
	ch := f.device(t, 13)
	for i := 0; i < 2; i++ {
		if _, err := Join(ch, JoinConfig{DeviceType: "x", DeviceName: "a", Secret: secret, Timeout: 2 * time.Second}); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if got := len(f.sink.ofType(event.TypeNewMember)); got != 1 {
		t.Errorf("new-member events = %d, want 1", got)
	}
	if f.svc.Stats().Admitted != 1 {
		t.Errorf("Admitted = %d", f.svc.Stats().Admitted)
	}
}

func TestServiceConfigValidation(t *testing.T) {
	n := netsim.New(netsim.Perfect)
	defer n.Close()
	tr, _ := n.Attach(ident.New(1))
	ch := reliable.New(tr, relCfg())
	defer ch.Close()

	if _, err := NewService(ch, nil, ServiceConfig{Cell: "c", BusID: 1}); err == nil {
		t.Error("nil emitter accepted")
	}
	if _, err := NewService(ch, &sink{}, ServiceConfig{BusID: 1}); err == nil {
		t.Error("empty cell accepted")
	}
	if _, err := NewService(ch, &sink{}, ServiceConfig{Cell: "c"}); err == nil {
		t.Error("missing bus ID accepted")
	}
}

func TestAuthDigestProperties(t *testing.T) {
	d1 := AuthDigest(secret, ident.New(1), "cell")
	d2 := AuthDigest(secret, ident.New(2), "cell")
	d3 := AuthDigest(secret, ident.New(1), "other")
	d4 := AuthDigest([]byte("other secret"), ident.New(1), "cell")
	if fmt.Sprintf("%x", d1) == fmt.Sprintf("%x", d2) ||
		fmt.Sprintf("%x", d1) == fmt.Sprintf("%x", d3) ||
		fmt.Sprintf("%x", d1) == fmt.Sprintf("%x", d4) {
		t.Error("digests collide across inputs")
	}
	if !VerifyAuth(secret, ident.New(1), "cell", d1) {
		t.Error("valid digest rejected")
	}
	if VerifyAuth(secret, ident.New(1), "cell", d2) {
		t.Error("wrong digest accepted")
	}
	if VerifyAuth(secret, ident.New(1), "cell", nil) {
		t.Error("nil digest accepted")
	}
}

func TestHeartbeaterStopIsIdempotent(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(51))
	defer n.Close()
	tr, _ := n.Attach(ident.New(20))
	ch := reliable.New(tr, relCfg())
	defer ch.Close()
	hb := StartHeartbeats(ch, ident.New(99), 10*time.Millisecond)
	hb.Stop()
	hb.Stop()
}
