// Package discovery implements the SMC discovery service (§II-B): it
// searches for new devices to integrate into the cell, maintains
// connectivity to them while they are within range, manages group
// membership (detection, authenticated admission, removal), masks
// transient disconnections, and informs the SMC of arrivals and
// departures via "New Member" and "Purge Member" events.
//
// The discovery protocol deliberately does not use the event bus for
// its own traffic — it works beside the bus, separating the concern of
// group membership from the concern of passing events between services.
package discovery

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"github.com/amuse/smc/internal/ident"
)

// authDigestLen is the truncated HMAC length carried in join requests.
const authDigestLen = 16

// AuthDigest computes the admission credential: a truncated
// HMAC-SHA256 over the joining service's ID and the cell name under
// the cell's shared secret. The paper leaves authentication
// "specific to the application" (§II-B); a shared-secret MAC is the
// simplest scheme that actually gates admission.
func AuthDigest(secret []byte, id ident.ID, cell string) []byte {
	mac := hmac.New(sha256.New, secret)
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], uint64(id))
	mac.Write(idb[:])
	mac.Write([]byte(cell))
	return mac.Sum(nil)[:authDigestLen]
}

// VerifyAuth checks a credential in constant time.
func VerifyAuth(secret []byte, id ident.ID, cell string, digest []byte) bool {
	want := AuthDigest(secret, id, cell)
	return hmac.Equal(want, digest)
}
