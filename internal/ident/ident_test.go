package ident

import (
	"math/rand"
	"net"
	"testing"
	"testing/quick"
)

func TestNewMasksTo48Bits(t *testing.T) {
	id := New(0xFFFF_FFFF_FFFF_FFFF)
	if !id.Valid() {
		t.Fatalf("New produced invalid ID %x", uint64(id))
	}
	if id != Broadcast {
		t.Fatalf("all-ones masked = %x, want broadcast", uint64(id))
	}
}

func TestFromAddrRoundTrip(t *testing.T) {
	cases := []struct {
		ip   net.IP
		port int
	}{
		{net.IPv4(127, 0, 0, 1), 8080},
		{net.IPv4(10, 1, 2, 3), 1},
		{net.IPv4(192, 168, 255, 254), 65535},
		{net.IPv4(0, 0, 0, 1), 0},
	}
	for _, c := range cases {
		id, err := FromAddr(c.ip, c.port)
		if err != nil {
			t.Fatalf("FromAddr(%v, %d): %v", c.ip, c.port, err)
		}
		ip, port := id.Addr()
		if !ip.Equal(c.ip) || port != c.port {
			t.Errorf("roundtrip(%v:%d) = %v:%d", c.ip, c.port, ip, port)
		}
	}
}

func TestFromAddrRejectsIPv6AndBadPorts(t *testing.T) {
	if _, err := FromAddr(net.ParseIP("2001:db8::1"), 80); err == nil {
		t.Error("IPv6 accepted")
	}
	if _, err := FromAddr(net.IPv4(1, 2, 3, 4), -1); err == nil {
		t.Error("negative port accepted")
	}
	if _, err := FromAddr(net.IPv4(1, 2, 3, 4), 70000); err == nil {
		t.Error("oversized port accepted")
	}
}

func TestFromUDPAddrNil(t *testing.T) {
	if _, err := FromUDPAddr(nil); err == nil {
		t.Error("nil UDP address accepted")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	err := quick.Check(func(raw uint64) bool {
		id := New(raw)
		parsed, err := Parse(id.String())
		return err == nil && parsed == id
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestParseDecimalAndHex(t *testing.T) {
	id, err := Parse("123")
	if err != nil || id != New(123) {
		t.Errorf("Parse(123) = %v, %v", id, err)
	}
	id, err = Parse("0x7b")
	if err != nil || id != New(0x7b) {
		t.Errorf("Parse(0x7b) = %v, %v", id, err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "xx", "1:2:3", "1:2:3:4:5:zz", "0x1ffffffffffff0"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestRandomAvoidsReserved(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		id := Random(rng)
		if id.IsNil() || id.IsBroadcast() {
			t.Fatalf("Random produced reserved ID %s", id)
		}
	}
}

func TestStringFormat(t *testing.T) {
	id := New(0x0102030405A6)
	if got := id.String(); got != "01:02:03:04:05:a6" {
		t.Errorf("String = %q", got)
	}
}

func TestReservedPredicates(t *testing.T) {
	if !Nil.IsNil() || Nil.IsBroadcast() {
		t.Error("Nil predicates wrong")
	}
	if !Broadcast.IsBroadcast() || Broadcast.IsNil() {
		t.Error("Broadcast predicates wrong")
	}
}
