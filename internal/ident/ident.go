// Package ident provides 48-bit service identifiers for SMC members.
//
// The paper (§IV) derives a 48-bit ID for each service from the transport
// layer's unicast socket address and port so that the prototype is not
// hardwired to a specific port. This package reproduces that scheme and
// adds deterministic and random generation for simulated transports.
package ident

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
)

// ID is a 48-bit service identifier. The upper 16 bits of the uint64 are
// always zero.
type ID uint64

// Mask is the bit mask for valid IDs: only the low 48 bits may be set.
const Mask ID = (1 << 48) - 1

// Nil is the zero ID; it never identifies a live service.
const Nil ID = 0

// Broadcast addresses every member of the cell. It is the all-ones ID,
// mirroring link-layer broadcast addressing.
const Broadcast ID = Mask

var (
	// ErrBadFormat reports an unparseable ID string.
	ErrBadFormat = errors.New("ident: bad ID format")
	// ErrOutOfRange reports a value that does not fit in 48 bits.
	ErrOutOfRange = errors.New("ident: value exceeds 48 bits")
)

// New builds an ID from a raw value, masking it to 48 bits.
func New(v uint64) ID {
	return ID(v) & Mask
}

// FromAddr derives an ID from an IPv4 address and port, matching the
// paper's prototype: 32 bits of address, 16 bits of port.
func FromAddr(ip net.IP, port int) (ID, error) {
	v4 := ip.To4()
	if v4 == nil {
		return Nil, fmt.Errorf("ident: non-IPv4 address %v", ip)
	}
	if port < 0 || port > 0xFFFF {
		return Nil, fmt.Errorf("ident: port %d out of range", port)
	}
	v := uint64(v4[0])<<40 | uint64(v4[1])<<32 | uint64(v4[2])<<24 |
		uint64(v4[3])<<16 | uint64(port)
	return ID(v), nil
}

// FromUDPAddr derives an ID from a *net.UDPAddr.
func FromUDPAddr(addr *net.UDPAddr) (ID, error) {
	if addr == nil {
		return Nil, errors.New("ident: nil UDP address")
	}
	return FromAddr(addr.IP, addr.Port)
}

// Random draws a non-nil, non-broadcast ID from rng.
func Random(rng *rand.Rand) ID {
	for {
		id := New(rng.Uint64())
		if id != Nil && id != Broadcast {
			return id
		}
	}
}

// Addr recovers the IPv4 address and port an ID encodes. The mapping is
// only meaningful for IDs produced by FromAddr.
func (id ID) Addr() (net.IP, int) {
	ip := net.IPv4(byte(id>>40), byte(id>>32), byte(id>>24), byte(id>>16))
	return ip, int(id & 0xFFFF)
}

// IsNil reports whether the ID is the zero ID.
func (id ID) IsNil() bool { return id == Nil }

// IsBroadcast reports whether the ID is the broadcast ID.
func (id ID) IsBroadcast() bool { return id == Broadcast }

// Valid reports whether the ID fits in 48 bits.
func (id ID) Valid() bool { return id&^Mask == 0 }

// String renders the ID as six colon-separated hex octets, in the style
// of a MAC address (the natural rendering of a 48-bit identifier).
func (id ID) String() string {
	var sb strings.Builder
	sb.Grow(17)
	for shift := 40; shift >= 0; shift -= 8 {
		if shift != 40 {
			sb.WriteByte(':')
		}
		octet := byte(id >> uint(shift))
		const hexdigits = "0123456789abcdef"
		sb.WriteByte(hexdigits[octet>>4])
		sb.WriteByte(hexdigits[octet&0xF])
	}
	return sb.String()
}

// Parse decodes the String form (six colon-separated hex octets) or a
// plain decimal/hex integer ("123", "0x7b").
func Parse(s string) (ID, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 6 {
			return Nil, fmt.Errorf("%w: %q", ErrBadFormat, s)
		}
		var v uint64
		for _, p := range parts {
			octet, err := strconv.ParseUint(p, 16, 8)
			if err != nil {
				return Nil, fmt.Errorf("%w: %q", ErrBadFormat, s)
			}
			v = v<<8 | octet
		}
		return ID(v), nil
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return Nil, fmt.Errorf("%w: %q", ErrBadFormat, s)
	}
	if ID(v)&^Mask != 0 {
		return Nil, fmt.Errorf("%w: %q", ErrOutOfRange, s)
	}
	return ID(v), nil
}
