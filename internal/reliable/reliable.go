// Package reliable layers the paper's delivery semantics (§II-C) over
// an unreliable datagram transport:
//
//   - every reliable packet is acknowledged by the receiver; the sender
//     retransmits with backoff until acked or out of retries (Fig. 3's
//     synchronous acknowledged calls);
//   - per-sender FIFO: a sender keeps at most one reliable packet in
//     flight per destination (stop-and-wait), so packets cannot
//     overtake one another;
//   - at-most-once: the receiver suppresses duplicates created by
//     retransmission using the per-sender sequence number.
//
// Unreliable sends (FlagNoAck) bypass all of this: discovery beacons
// and heartbeats tolerate loss by design (§II-B).
package reliable

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

var (
	// ErrGaveUp reports retransmission exhaustion: the destination
	// did not acknowledge within the retry budget.
	ErrGaveUp = errors.New("reliable: gave up after retries")
	// ErrClosed reports use of a closed channel.
	ErrClosed = errors.New("reliable: closed")
)

// Stats counts channel activity.
type Stats struct {
	Sent          uint64
	Acked         uint64
	Retransmits   uint64
	Failures      uint64
	Received      uint64
	DupsDropped   uint64
	StaleAcks     uint64
	UnreliableIn  uint64
	UnreliableOut uint64
}

// Config tunes the retransmission machinery.
type Config struct {
	// RetryTimeout is the initial ack wait; it doubles per attempt up
	// to MaxRetryTimeout.
	RetryTimeout time.Duration
	// MaxRetryTimeout caps the backoff (default 10× RetryTimeout).
	MaxRetryTimeout time.Duration
	// MaxRetries bounds retransmissions (total attempts = 1+MaxRetries).
	MaxRetries int
	// QueueDepth sizes the inbound delivery queue.
	QueueDepth int
}

// DefaultConfig suits the simulated wireless profiles.
func DefaultConfig() Config {
	return Config{
		RetryTimeout: 50 * time.Millisecond,
		MaxRetries:   6,
		QueueDepth:   1024,
	}
}

// Channel is a reliable packet conduit over one transport endpoint.
type Channel struct {
	tr  transport.Transport
	cfg Config

	mu      sync.Mutex
	out     map[ident.ID]*destState
	lastIn  map[ident.ID]uint64
	waiters map[ackKey]chan struct{}
	stats   Stats
	closed  bool

	inbound chan *wire.Packet
	done    chan struct{}
	wg      sync.WaitGroup
}

type destState struct {
	mu  sync.Mutex // serialises sends to this destination (stop-and-wait)
	seq uint64
}

type ackKey struct {
	dst ident.ID
	seq uint64
}

// New wraps a transport endpoint and starts the receive loop. Close the
// channel (not the transport directly) when done.
func New(tr transport.Transport, cfg Config) *Channel {
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = DefaultConfig().RetryTimeout
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultConfig().QueueDepth
	}
	if cfg.MaxRetryTimeout <= 0 {
		cfg.MaxRetryTimeout = 10 * cfg.RetryTimeout
	}
	c := &Channel{
		tr:      tr,
		cfg:     cfg,
		out:     make(map[ident.ID]*destState),
		lastIn:  make(map[ident.ID]uint64),
		waiters: make(map[ackKey]chan struct{}),
		inbound: make(chan *wire.Packet, cfg.QueueDepth),
		done:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.recvLoop()
	return c
}

// LocalID returns the underlying endpoint's ID.
func (c *Channel) LocalID() ident.ID { return c.tr.LocalID() }

// Stats returns a snapshot of the counters.
func (c *Channel) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Send transmits a reliable packet of the given type and payload to dst
// and blocks until the destination acknowledges it or the retry budget
// is exhausted. Sends to one destination are serialised (FIFO).
func (c *Channel) Send(dst ident.ID, ptype wire.PacketType, payload []byte) error {
	if dst.IsBroadcast() {
		return errors.New("reliable: broadcast sends must be unreliable")
	}
	ds := c.dest(dst)
	ds.mu.Lock()
	defer ds.mu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	ds.seq++
	seq := ds.seq
	key := ackKey{dst: dst, seq: seq}
	ackCh := make(chan struct{})
	c.waiters[key] = ackCh
	c.stats.Sent++
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.waiters, key)
		c.mu.Unlock()
	}()

	pkt := &wire.Packet{Type: ptype, Sender: c.tr.LocalID(), Seq: seq, Payload: payload}
	buf, err := pkt.MarshalBytes()
	if err != nil {
		return fmt.Errorf("reliable marshal: %w", err)
	}

	timeout := c.cfg.RetryTimeout
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			pkt.Flags |= wire.FlagRetransmit
			buf, err = pkt.MarshalBytes()
			if err != nil {
				return fmt.Errorf("reliable marshal: %w", err)
			}
			c.mu.Lock()
			c.stats.Retransmits++
			c.mu.Unlock()
		}
		if err := c.tr.Send(dst, buf); err != nil &&
			!errors.Is(err, transport.ErrUnknownDest) {
			return fmt.Errorf("reliable send: %w", err)
		}
		timer := time.NewTimer(timeout)
		select {
		case <-ackCh:
			timer.Stop()
			c.mu.Lock()
			c.stats.Acked++
			c.mu.Unlock()
			return nil
		case <-c.done:
			timer.Stop()
			return ErrClosed
		case <-timer.C:
		}
		if attempt >= c.cfg.MaxRetries {
			c.mu.Lock()
			c.stats.Failures++
			c.mu.Unlock()
			return fmt.Errorf("%w: %s seq=%d to %s", ErrGaveUp, ptype, seq, dst)
		}
		if timeout < c.cfg.MaxRetryTimeout {
			timeout *= 2
			if timeout > c.cfg.MaxRetryTimeout {
				timeout = c.cfg.MaxRetryTimeout
			}
		}
	}
}

// SendUnreliable transmits a fire-and-forget packet (FlagNoAck). It may
// be broadcast.
func (c *Channel) SendUnreliable(dst ident.ID, ptype wire.PacketType, payload []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.stats.UnreliableOut++
	c.mu.Unlock()
	pkt := &wire.Packet{
		Type:    ptype,
		Flags:   wire.FlagNoAck,
		Sender:  c.tr.LocalID(),
		Payload: payload,
	}
	buf, err := pkt.MarshalBytes()
	if err != nil {
		return fmt.Errorf("reliable marshal: %w", err)
	}
	if err := c.tr.Send(dst, buf); err != nil &&
		!errors.Is(err, transport.ErrUnknownDest) {
		return fmt.Errorf("unreliable send: %w", err)
	}
	return nil
}

// Recv blocks for the next delivered packet. Reliable packets have been
// acknowledged and deduplicated; unreliable ones are passed through.
func (c *Channel) Recv() (*wire.Packet, error) {
	select {
	case p := <-c.inbound:
		return p, nil
	case <-c.done:
		select {
		case p := <-c.inbound:
			return p, nil
		default:
			return nil, ErrClosed
		}
	}
}

// RecvTimeout is Recv with a deadline.
func (c *Channel) RecvTimeout(d time.Duration) (*wire.Packet, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case p := <-c.inbound:
		return p, nil
	case <-timer.C:
		return nil, transport.ErrTimeout
	case <-c.done:
		select {
		case p := <-c.inbound:
			return p, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Forget discards reliability state for a purged member so that a
// returning device with the same ID starts a fresh stream.
func (c *Channel) Forget(id ident.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.lastIn, id)
	delete(c.out, id)
}

// Close stops the receive loop and closes the underlying transport.
func (c *Channel) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	err := c.tr.Close()
	c.wg.Wait()
	return err
}

func (c *Channel) dest(dst ident.ID) *destState {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.out[dst]
	if !ok {
		ds = &destState{}
		c.out[dst] = ds
	}
	return ds
}

func (c *Channel) recvLoop() {
	defer c.wg.Done()
	for {
		dg, err := c.tr.Recv()
		if err != nil {
			return
		}
		pkt, err := wire.Unmarshal(dg.Data)
		if err != nil {
			// Corrupted or foreign datagram: drop silently, as a
			// datagram network must tolerate.
			continue
		}
		pkt.ClonePayload()
		c.handle(pkt)
	}
}

func (c *Channel) handle(pkt *wire.Packet) {
	switch {
	case pkt.Type == wire.PktAck:
		c.mu.Lock()
		ch, ok := c.waiters[ackKey{dst: pkt.Sender, seq: pkt.Seq}]
		if ok {
			delete(c.waiters, ackKey{dst: pkt.Sender, seq: pkt.Seq})
		} else {
			c.stats.StaleAcks++
		}
		c.mu.Unlock()
		if ok {
			close(ch)
		}
	case pkt.Flags&wire.FlagNoAck != 0:
		c.mu.Lock()
		c.stats.UnreliableIn++
		c.mu.Unlock()
		c.deliver(pkt)
	default:
		c.mu.Lock()
		last := c.lastIn[pkt.Sender]
		dup := pkt.Seq <= last
		if !dup {
			c.lastIn[pkt.Sender] = pkt.Seq
			c.stats.Received++
		} else {
			c.stats.DupsDropped++
		}
		c.mu.Unlock()
		// Always (re-)acknowledge: the sender may have missed the
		// previous ack.
		ack := &wire.Packet{Type: wire.PktAck, Sender: c.tr.LocalID(), Seq: pkt.Seq}
		if buf, err := ack.MarshalBytes(); err == nil {
			_ = c.tr.Send(pkt.Sender, buf) // loss handled by sender retry
		}
		if !dup {
			c.deliver(pkt)
		}
	}
}

func (c *Channel) deliver(pkt *wire.Packet) {
	select {
	case c.inbound <- pkt:
	case <-c.done:
	default:
		// Inbound overflow: drop. The sender has already been acked;
		// this models the bounded memory of the target platform.
		// Sized queues make this effectively unreachable in tests.
	}
}
