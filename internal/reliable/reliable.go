// Package reliable layers the paper's delivery semantics (§II-C) over
// an unreliable datagram transport with sliding-window ARQ:
//
//   - every reliable packet carries a per-destination sequence number
//     and is retransmitted with backoff until the receiver's
//     cumulative acknowledgement covers it or the retry budget runs
//     out (Fig. 3's synchronous acknowledged calls, pipelined);
//   - a sender keeps at most Config.Window unacknowledged packets in
//     flight per destination. Window=1 degenerates to the original
//     stop-and-wait behaviour for §V-faithful measurement;
//   - per-sender FIFO: the receiver holds out-of-order arrivals in a
//     bounded reorder buffer and releases packets to Recv strictly in
//     sequence order, so packets cannot overtake one another;
//   - at-most-once: duplicates created by retransmission are
//     suppressed by the cumulative sequence state.
//
// Give-up and stream resets. When the retry budget for a destination
// is exhausted every queued packet fails with ErrGaveUp, but the
// channel keeps the marshalled packets in a resume stash: a caller
// that re-sends the same payload (the proxy redelivery loop of §VI
// does exactly this) resumes the original sequence number, so a
// packet that had actually been delivered — only its acks were lost —
// is recognised and suppressed by the receiver instead of delivered
// twice. If the caller sends a different payload instead, the
// outbound stream restarts under a new epoch (wire.Packet.Epoch) and
// the receiver resets its ordering state when the new epoch arrives.
//
// Unreliable sends (FlagNoAck) bypass all of this: discovery beacons
// and heartbeats tolerate loss by design (§II-B).
package reliable

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

var (
	// ErrGaveUp reports retransmission exhaustion: the destination
	// did not acknowledge within the retry budget.
	ErrGaveUp = errors.New("reliable: gave up after retries")
	// ErrClosed reports use of a closed channel.
	ErrClosed = errors.New("reliable: closed")
	// ErrBacklog reports a per-destination send backlog overflow: the
	// caller is enqueueing faster than the destination acknowledges.
	ErrBacklog = errors.New("reliable: send backlog full")

	errBroadcast = errors.New("reliable: broadcast sends must be unreliable")
)

// Stats counts channel activity.
type Stats struct {
	Sent            uint64
	Acked           uint64
	Retransmits     uint64
	FastRetransmits uint64
	Failures        uint64
	Resumed         uint64
	StreamResets    uint64
	Received        uint64
	DupsDropped     uint64
	Buffered        uint64
	StaleAcks       uint64
	StaleEpoch      uint64
	UnreliableIn    uint64
	UnreliableOut   uint64
	// BatchesSent counts reliable batch packets enqueued
	// (SendBatchAsync); PiggybackAcks counts cumulative acks applied
	// from inbound batch prologues rather than standalone PktAck
	// packets.
	BatchesSent   uint64
	PiggybackAcks uint64
	// PacketsAcquired/PacketsRecycled expose the inbound packet pool:
	// every received packet is decoded into a pooled wire.Packet that
	// the consumer releases after delivery. On a quiesced channel the
	// two converge; a growing gap means a consumer is dropping packets
	// without Release (a pool leak — see TestPacketPoolLeakDetection).
	PacketsAcquired uint64
	PacketsRecycled uint64
}

// counters is the hot-path representation of Stats.
// counters splits the channel's atomics into a send-path group
// (bumped by publisher callers and per-destination sender goroutines)
// and a receive-path group (bumped only by the receive loop), padded
// apart to two cache lines (the spatial-prefetcher granule): without
// the gap, a sender's sent.Add and the receive loop's received.Add
// land on the same line and every increment bounces it between cores.
type counters struct {
	// Send path.
	sent, retransmits, fastRetransmits atomic.Uint64
	failures, resumed, streamResets    atomic.Uint64
	unreliableOut, batchesSent         atomic.Uint64

	_ [128 - (8*8)%128]byte

	// Receive path (acks are processed on the receive loop, so ack
	// accounting lives here with the inbound counters).
	acked, received, dupsDropped, buffered atomic.Uint64
	staleAcks, staleEpoch                  atomic.Uint64
	unreliableIn, piggybackAcks            atomic.Uint64

	_ [128 - (8*8)%128]byte
}

func (c *counters) snapshot(pool *wire.PacketPool) Stats {
	acq, rec := pool.Stats()
	return Stats{
		PacketsAcquired: acq,
		PacketsRecycled: rec,
		Sent:            c.sent.Load(),
		Acked:           c.acked.Load(),
		Retransmits:     c.retransmits.Load(),
		FastRetransmits: c.fastRetransmits.Load(),
		Failures:        c.failures.Load(),
		Resumed:         c.resumed.Load(),
		StreamResets:    c.streamResets.Load(),
		Received:        c.received.Load(),
		DupsDropped:     c.dupsDropped.Load(),
		Buffered:        c.buffered.Load(),
		StaleAcks:       c.staleAcks.Load(),
		StaleEpoch:      c.staleEpoch.Load(),
		UnreliableIn:    c.unreliableIn.Load(),
		UnreliableOut:   c.unreliableOut.Load(),
		BatchesSent:     c.batchesSent.Load(),
		PiggybackAcks:   c.piggybackAcks.Load(),
	}
}

// Config tunes the retransmission machinery.
type Config struct {
	// RetryTimeout is the initial ack wait; it doubles per retransmit
	// round up to MaxRetryTimeout.
	RetryTimeout time.Duration
	// MaxRetryTimeout caps the backoff (default 10× RetryTimeout).
	MaxRetryTimeout time.Duration
	// MaxRetries bounds retransmission rounds per destination before
	// the queued packets fail with ErrGaveUp. Zero means the default
	// (6); a negative value disables retransmission entirely.
	MaxRetries int
	// Window is the maximum number of unacknowledged packets in
	// flight per destination (default 16). Window=1 reproduces
	// stop-and-wait.
	Window int
	// ReorderDepth bounds the receiver's per-sender reorder buffer
	// (default 64 packets). Arrivals beyond the buffer are dropped
	// and recovered by sender retransmission.
	ReorderDepth int
	// MaxPending bounds the per-destination send backlog (default
	// 1024); SendAsync beyond it fails with ErrBacklog.
	MaxPending int
	// QueueDepth sizes the inbound delivery queue.
	QueueDepth int
}

// DefaultConfig suits the simulated wireless profiles.
func DefaultConfig() Config {
	return Config{
		RetryTimeout: 50 * time.Millisecond,
		MaxRetries:   6,
		Window:       16,
		ReorderDepth: 64,
		MaxPending:   1024,
		QueueDepth:   1024,
	}
}

// Completion is the handle returned by SendAsync: it resolves when the
// send is acknowledged or fails. Completions come from a free list and
// a caller that has observed the outcome (Wait returned, or Done fired
// and Err was read) may hand the handle back with Recycle; the wake
// channel underneath is created lazily, only when a waiter arrives
// before the send resolves, so a recycled completion whose sends
// resolve ahead of their waiters costs no allocation at all.
type Completion struct {
	mu       sync.Mutex
	done     chan struct{} // lazily created; closed on resolution
	resolved bool
	err      error
	// home, when non-nil, is the per-destination free list this
	// completion came from; Recycle routes it back there so one
	// destination's send churn circulates through its own completions
	// instead of rendezvousing on the global pool (see compFreeList).
	home *compFreeList
}

// closedChan is returned by Done for already-resolved completions.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Done returns a channel closed when the send has resolved.
func (c *Completion) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resolved {
		return closedChan
	}
	if c.done == nil {
		c.done = make(chan struct{})
	}
	return c.done
}

// Err reports the outcome; call it only after Done is closed.
func (c *Completion) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Wait blocks until the send resolves and returns its outcome.
func (c *Completion) Wait() error {
	c.mu.Lock()
	if c.resolved {
		err := c.err
		c.mu.Unlock()
		return err
	}
	if c.done == nil {
		c.done = make(chan struct{})
	}
	d := c.done
	c.mu.Unlock()
	<-d
	return c.Err()
}

// settle resolves the completion, waking every waiter.
func (c *Completion) settle(err error) {
	c.mu.Lock()
	c.err = err
	c.resolved = true
	if c.done != nil {
		close(c.done)
	}
	c.mu.Unlock()
}

// Recycle returns a resolved completion to the free list. Optional:
// callers that drop completions leave them to the garbage collector.
// The caller must not touch the completion afterwards; an unresolved
// completion is left alone.
func (c *Completion) Recycle() {
	c.mu.Lock()
	ok := c.resolved
	if ok {
		c.done, c.err, c.resolved = nil, nil, false
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	if fl := c.home; fl != nil {
		if fl.put(c) {
			return
		}
		c.home = nil // overflow: don't carry a stale home through the global pool
	}
	completionPool.Put(c)
}

var completionPool = sync.Pool{New: func() interface{} { return new(Completion) }}

func newCompletion() *Completion { return completionPool.Get().(*Completion) }

// compFreeList is a bounded per-destination Completion free list with
// its own mutex: the sender acquires under the destination lock while
// callers Recycle from arbitrary goroutines, and neither touches
// global pool state for steady-state traffic. Lock order is always
// destState.mu → compFreeList.mu (get) or compFreeList.mu alone (put),
// so the two never deadlock.
type compFreeList struct {
	mu   sync.Mutex
	free []*Completion
}

// maxFreeComps bounds a destination's completion free list; churn
// beyond it falls through to the global pool.
const maxFreeComps = 256

// get pops a recycled completion or falls back to the global pool,
// stamping the home so Recycle finds its way back.
func (fl *compFreeList) get() *Completion {
	var c *Completion
	fl.mu.Lock()
	if n := len(fl.free); n > 0 {
		c = fl.free[n-1]
		fl.free[n-1] = nil
		fl.free = fl.free[:n-1]
	}
	fl.mu.Unlock()
	if c == nil {
		c = completionPool.Get().(*Completion)
	}
	c.home = fl
	return c
}

// put files a reset completion; reports false when the list is full.
func (fl *compFreeList) put(c *Completion) bool {
	fl.mu.Lock()
	ok := len(fl.free) < maxFreeComps
	if ok {
		fl.free = append(fl.free, c)
	}
	fl.mu.Unlock()
	return ok
}

func failedCompletion(err error) *Completion {
	c := newCompletion()
	c.settle(err)
	return c
}

// pktBufPool recycles marshalled packet buffers across sends and
// retransmits (retransmissions patch the header in place).
var pktBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 512)
	return &b
}}

func getBuf() *[]byte { return pktBufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if bp == nil {
		return
	}
	*bp = (*bp)[:0]
	pktBufPool.Put(bp)
}

// sendOp is one queued reliable packet. Ops are recycled through a
// per-destination free list (see destState.free): they are allocated
// and released under ds.mu, so the list needs no locking of its own
// and the steady-state send path allocates no op. comp is nil for
// fire-and-forget sends, whose outcome is observable only in Stats.
type sendOp struct {
	seq   uint64
	ptype wire.PacketType
	flags byte
	bufp  *[]byte // marshalled packet, pooled
	comp  *Completion
	next  *sendOp // free-list link
}

// maxFreeOps bounds a destination's op free list; churn beyond it falls
// back to the garbage collector.
const maxFreeOps = 256

// settleOp resolves an op's completion, if it has one (fire-and-forget
// ops do not).
func settleOp(op *sendOp, err error) {
	if op.comp != nil {
		op.comp.settle(err)
		op.comp = nil
	}
}

func (op *sendOp) payload() []byte {
	b := *op.bufp
	return b[wire.HeaderLen : len(b)-wire.TrailerLen]
}

// destState is the per-destination sender state machine.
type destState struct {
	id ident.ID

	mu       sync.Mutex
	epoch    byte
	nextSeq  uint64
	queue    opRing // unacked ops in seq order; the first inflight transmitted
	inflight int
	stash    []*sendOp // ops failed by give-up, resumable by identical resend
	free     *sendOp   // recycled ops (guarded by mu like the queue)
	nfree    int
	attempts int // retransmit rounds since last ack progress
	dupAcks  int
	gapAcks  int // consecutive acks regressed below the window base
	fastRetx bool
	deadline time.Time // retransmit deadline while inflight > 0
	gone     bool      // forgotten or channel closed

	// comps recycles this destination's completions (its own lock; see
	// compFreeList).
	comps compFreeList

	notify chan struct{} // kicks the sender goroutine, cap 1
}

// getOpLocked pops a recycled op or allocates one. Caller holds ds.mu.
func (ds *destState) getOpLocked() *sendOp {
	if op := ds.free; op != nil {
		ds.free = op.next
		ds.nfree--
		op.next = nil
		return op
	}
	return new(sendOp)
}

// putOpLocked recycles a resolved op whose buffer and completion have
// already been handed back. Caller holds ds.mu.
func (ds *destState) putOpLocked(op *sendOp) {
	if ds.nfree >= maxFreeOps {
		return
	}
	*op = sendOp{next: ds.free}
	ds.free = op
	ds.nfree++
}

func (ds *destState) kick() {
	select {
	case ds.notify <- struct{}{}:
	default:
	}
}

// recvState is the per-sender receiver ordering state.
type recvState struct {
	epoch byte
	cum   uint64 // highest contiguous seq delivered
	buf   map[uint64]*wire.Packet
}

// Channel is a reliable packet conduit over one transport endpoint.
type Channel struct {
	tr  transport.Transport
	cfg Config
	ctr counters

	// bs/mtu are the transport's optional batched-transmit capability:
	// the sender flushes window fills and retransmit rounds through
	// SendBatch (one sendmmsg per burst on linux UDP) instead of one
	// Send per packet. mtu caches BatchSender.MaxDatagram.
	bs  transport.BatchSender
	mtu int

	// pktPool recycles inbound packets: the receive loop decodes every
	// datagram into a pooled packet (no per-packet struct or payload
	// clone allocation) and the consumer releases it after delivery.
	pktPool *wire.PacketPool

	mu     sync.Mutex
	dests  map[ident.ID]*destState
	epochs map[ident.ID]byte // outbound epoch floor surviving Forget
	closed bool

	// rmu guards the receiver ordering state separately from the
	// sender maps: the receive path must not serialise against the
	// SendAsync hot path.
	rmu sync.Mutex
	rst map[ident.ID]*recvState

	inbound chan *wire.Packet
	done    chan struct{}
	wg      sync.WaitGroup
}

// New wraps a transport endpoint and starts the receive loop. Close the
// channel (not the transport directly) when done.
func New(tr transport.Transport, cfg Config) *Channel {
	def := DefaultConfig()
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = def.RetryTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = def.MaxRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.ReorderDepth <= 0 {
		cfg.ReorderDepth = def.ReorderDepth
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = def.MaxPending
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = def.QueueDepth
	}
	if cfg.MaxRetryTimeout <= 0 {
		cfg.MaxRetryTimeout = 10 * cfg.RetryTimeout
	}
	c := &Channel{
		tr:      tr,
		cfg:     cfg,
		pktPool: wire.NewPacketPool(),
		dests:   make(map[ident.ID]*destState),
		rst:     make(map[ident.ID]*recvState),
		epochs:  make(map[ident.ID]byte),
		inbound: make(chan *wire.Packet, cfg.QueueDepth),
		done:    make(chan struct{}),
	}
	if bs, ok := tr.(transport.BatchSender); ok {
		c.bs, c.mtu = bs, bs.MaxDatagram()
	}
	c.wg.Add(1)
	go c.recvLoop()
	return c
}

// LocalID returns the underlying endpoint's ID.
func (c *Channel) LocalID() ident.ID { return c.tr.LocalID() }

// Stats returns a snapshot of the counters.
func (c *Channel) Stats() Stats { return c.ctr.snapshot(c.pktPool) }

// Send transmits a reliable packet of the given type and payload to dst
// and blocks until the destination acknowledges it or the retry budget
// is exhausted. Sends to one destination are delivered in enqueue
// order (FIFO).
func (c *Channel) Send(dst ident.ID, ptype wire.PacketType, payload []byte) error {
	comp := c.SendAsync(dst, ptype, payload)
	err := comp.Wait()
	comp.Recycle() // Send owns the handle; nobody else can observe it
	return err
}

// NewCompletion returns an unresolved pooled completion for callers
// that layer their own asynchronous contracts over the channel (the
// client's publish batcher resolves one per event when the carrying
// batch settles). Resolve it with Resolve; recycle as usual.
func NewCompletion() *Completion { return newCompletion() }

// Resolve settles a completion obtained from NewCompletion.
func (c *Completion) Resolve(err error) { c.settle(err) }

// SendAsync enqueues a reliable packet for dst and returns immediately
// with a Completion that resolves when the packet is acknowledged or
// fails. The payload is copied before SendAsync returns, so the caller
// may recycle its buffer at once. Packets to one destination are
// delivered in enqueue order; up to Config.Window of them are kept in
// flight concurrently.
func (c *Channel) SendAsync(dst ident.ID, ptype wire.PacketType, payload []byte) *Completion {
	comp, err := c.sendReliable(dst, ptype, 0, payload, true)
	if err != nil {
		return failedCompletion(err)
	}
	return comp
}

// SendBatchAsync enqueues a reliable batch packet (wire.FlagBatch) of
// already-framed events for dst: the payload must begin with a batch
// prologue (wire.AppendBatchHeader) followed by event frames
// (wire.AppendBatchEvent). The channel stamps the freshest piggybacked
// cumulative ack for dst's inbound stream into the prologue at every
// transmission, so a bidirectional flow acknowledges without dedicated
// ack packets. Like SendAsync the payload is copied before return, the
// batch gets one sequence number (acknowledged and retransmitted as a
// unit), and the completion resolves when the whole batch is acked.
func (c *Channel) SendBatchAsync(dst ident.ID, payload []byte) *Completion {
	comp, err := c.sendReliable(dst, wire.PktEvent, wire.FlagBatch, payload, true)
	if err != nil {
		return failedCompletion(err)
	}
	c.ctr.batchesSent.Add(1)
	return comp
}

// SendFireForget enqueues a reliable packet for dst with no Completion
// at all: the send still gets the full windowed ARQ treatment
// (sequencing, retransmission, FIFO with other sends to dst, the
// give-up stash with resume-by-identical-payload), but the outcome is
// observable only through Stats (Acked / Failures). The returned error
// covers immediate failures only (closed channel, broadcast
// destination, backlog overflow, marshal errors). Telemetry-style
// senders that want reliability but track nothing per send use it to
// skip the per-send completion entirely.
func (c *Channel) SendFireForget(dst ident.ID, ptype wire.PacketType, payload []byte) error {
	_, err := c.sendReliable(dst, ptype, 0, payload, false)
	return err
}

// sendReliable resolves the destination state and enqueues one
// reliable packet, retrying when the state is torn down concurrently.
func (c *Channel) sendReliable(dst ident.ID, ptype wire.PacketType, flags byte, payload []byte, wantComp bool) (*Completion, error) {
	if dst.IsBroadcast() {
		return nil, errBroadcast
	}
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		ds, ok := c.dests[dst]
		if !ok {
			ds = &destState{id: dst, epoch: c.epochs[dst], notify: make(chan struct{}, 1)}
			c.dests[dst] = ds
			c.wg.Add(1)
			go c.runSender(ds)
		}
		c.mu.Unlock()
		if comp, ok, err := c.enqueue(ds, ptype, flags, payload, wantComp); ok {
			return comp, err
		}
		// The destination state was torn down (Forget or Close) while
		// we held it: retry against fresh state.
	}
}

// enqueue assigns a sequence number, marshals the packet into a pooled
// buffer and appends it to the destination queue. It reports !ok when
// ds is no longer the live state for this destination; a non-nil error
// is an immediate failure (backlog, marshal). With wantComp=false the
// op is fire-and-forget: no Completion is created.
func (c *Channel) enqueue(ds *destState, ptype wire.PacketType, flags byte, payload []byte, wantComp bool) (*Completion, bool, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.gone {
		return nil, false, nil
	}
	if ds.queue.len() >= c.cfg.MaxPending {
		return nil, true, fmt.Errorf("%w: %d pending to %s", ErrBacklog, ds.queue.len(), ds.id)
	}
	var comp, op = (*Completion)(nil), (*sendOp)(nil)
	if len(ds.stash) > 0 {
		s := ds.stash[0]
		if s.ptype == ptype && stashMatches(s, flags, payload) {
			// Identical resend of a failed packet: resume its original
			// sequence number so a receiver that already delivered it
			// (acks lost) dedups instead of delivering twice.
			ds.stash = ds.stash[1:]
			op = s
			op.flags |= wire.FlagRetransmit
			_ = wire.PatchHeader(*op.bufp, op.flags, ds.epoch, op.seq)
			c.ctr.resumed.Add(1)
		} else {
			// Divergent traffic after give-up: the failed packets are
			// truly abandoned. Restart the outbound stream under a new
			// epoch so the receiver does not wait on the gap forever.
			c.resetStreamLocked(ds)
		}
	}
	if op == nil {
		ds.nextSeq++
		op = ds.getOpLocked()
		op.seq, op.ptype, op.flags = ds.nextSeq, ptype, flags
		bp := getBuf()
		pkt := wire.Packet{
			Type:    ptype,
			Flags:   flags,
			Epoch:   ds.epoch,
			Sender:  c.tr.LocalID(),
			Seq:     op.seq,
			Payload: payload,
		}
		b, err := pkt.Marshal((*bp)[:0])
		if err != nil {
			putBuf(bp)
			ds.nextSeq--
			ds.putOpLocked(op)
			return nil, true, fmt.Errorf("reliable marshal: %w", err)
		}
		*bp = b
		op.bufp = bp
	}
	if wantComp {
		comp = ds.comps.get()
	}
	op.comp = comp
	ds.queue.push(op)
	c.ctr.sent.Add(1)
	ds.kick()
	return comp, true, nil
}

// stashMatches reports whether a stashed give-up op carries the same
// logical payload as a fresh send, the trigger for resuming its
// original sequence number. For batch packets the comparison covers
// the frames region only: the prologue's piggybacked ack is stamped at
// transmit time, so it legitimately differs between the stashed bytes
// and a redelivery re-encode.
func stashMatches(s *sendOp, flags byte, payload []byte) bool {
	sp := s.payload()
	if s.flags&wire.FlagBatch != flags&wire.FlagBatch {
		return false
	}
	if flags&wire.FlagBatch != 0 {
		a, err1 := wire.BatchFrames(sp)
		b, err2 := wire.BatchFrames(payload)
		return err1 == nil && err2 == nil && bytes.Equal(a, b)
	}
	return bytes.Equal(sp, payload)
}

// resetStreamLocked abandons the stash, bumps the epoch, and renumbers
// any still-queued packets into it. Caller holds ds.mu.
func (c *Channel) resetStreamLocked(ds *destState) {
	for _, s := range ds.stash {
		putBuf(s.bufp)
		s.bufp = nil
		ds.putOpLocked(s) // already settled by the give-up
	}
	ds.stash = nil
	ds.epoch++
	ds.nextSeq = 0
	for i := 0; i < ds.queue.len(); i++ {
		op := ds.queue.at(i)
		ds.nextSeq++
		op.seq = ds.nextSeq
		_ = wire.PatchHeader(*op.bufp, op.flags, ds.epoch, op.seq)
	}
	ds.inflight = 0 // retransmit everything under the new epoch
	ds.attempts = 0
	ds.dupAcks = 0
	ds.gapAcks = 0
	ds.fastRetx = false
	ds.deadline = time.Time{}
	c.ctr.streamResets.Add(1)
}

// backoff returns the retransmit timeout after the given number of
// consecutive retransmission rounds.
func (c *Channel) backoff(rounds int) time.Duration {
	d := c.cfg.RetryTimeout
	for i := 0; i < rounds; i++ {
		d *= 2
		if d >= c.cfg.MaxRetryTimeout {
			return c.cfg.MaxRetryTimeout
		}
	}
	return d
}

// transmit sends one marshalled packet. Most transport-level errors
// are not surfaced: on a datagram network a failed send is
// indistinguishable from loss, and the retransmission machinery
// recovers either way. ErrTooLarge is the exception — it is permanent
// for the packet, so the caller fails it immediately rather than
// burning the retry budget.
func (c *Channel) transmit(dst ident.ID, buf []byte) error {
	err := c.tr.Send(dst, buf)
	if err != nil && errors.Is(err, transport.ErrTooLarge) {
		return err
	}
	return nil
}

// runSender drains one destination's queue: it keeps up to Window
// packets in flight, retransmits them on a single per-destination
// deadline with exponential backoff, and fails the queue when the
// retry budget is exhausted.
func (c *Channel) runSender(ds *destState) {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerArmed := false
	// batch gathers marshalled packets for one flush through the
	// transport's batched send (window fills and retransmit rounds
	// become one sendmmsg). It is reused across iterations and flushed
	// under ds.mu, while the packet buffers are still owned by queued
	// ops; the slots are cleared afterwards so recycled buffers are
	// never pinned here.
	var batch [][]byte
	flush := func() {
		if len(batch) == 0 {
			return
		}
		_ = c.bs.SendBatch(ds.id, batch) // pre-sized; residual errors are loss
		for i := range batch {
			batch[i] = nil
		}
		batch = batch[:0]
	}
	for {
		ds.mu.Lock()
		if ds.gone {
			ds.mu.Unlock()
			return
		}
		now := time.Now()
		if ds.inflight > 0 && !ds.deadline.IsZero() && !now.Before(ds.deadline) {
			if ds.attempts >= c.cfg.MaxRetries {
				c.giveUpLocked(ds)
			} else {
				for i := 0; i < ds.inflight; i++ {
					op := ds.queue.at(i)
					op.flags |= wire.FlagRetransmit
					_ = wire.PatchHeader(*op.bufp, op.flags, ds.epoch, op.seq)
					c.stampBatchAck(ds, op)
					if c.bs != nil {
						batch = append(batch, *op.bufp)
					} else {
						c.transmit(ds.id, *op.bufp)
					}
					c.ctr.retransmits.Add(1)
				}
				flush()
				ds.attempts++
				ds.deadline = now.Add(c.backoff(ds.attempts))
			}
		}
		if ds.fastRetx && ds.inflight > 0 {
			// Three duplicate cumulative acks: the base packet is
			// likely lost while later ones were buffered. Retransmit
			// it without waiting for the deadline.
			ds.fastRetx = false
			op := ds.queue.at(0)
			op.flags |= wire.FlagRetransmit
			_ = wire.PatchHeader(*op.bufp, op.flags, ds.epoch, op.seq)
			c.stampBatchAck(ds, op)
			c.transmit(ds.id, *op.bufp)
			c.ctr.fastRetransmits.Add(1)
		}
		for ds.inflight < c.cfg.Window && ds.inflight < ds.queue.len() {
			op := ds.queue.at(ds.inflight)
			c.stampBatchAck(ds, op)
			if c.bs != nil && (c.mtu == 0 || len(*op.bufp) <= c.mtu) {
				// Batched fast path: gather now, one SendBatch after
				// the loop. Oversize packets fall through to the
				// per-packet path below for its ErrTooLarge handling
				// (they are never transmitted, so gathering order is
				// preserved).
				if ds.inflight == 0 {
					ds.attempts = 0
					ds.deadline = time.Now().Add(c.backoff(0))
				}
				batch = append(batch, *op.bufp)
				ds.inflight++
				continue
			}
			if err := c.transmit(ds.id, *op.bufp); err != nil {
				// Permanently unsendable (over the transport MTU):
				// fail this op now and close the sequence gap by
				// renumbering the untransmitted ops behind it.
				settleOp(op, fmt.Errorf("reliable send: %w", err))
				putBuf(op.bufp)
				op.bufp = nil
				c.ctr.failures.Add(1)
				ds.queue.removeAt(ds.inflight)
				for i := ds.inflight; i < ds.queue.len(); i++ {
					later := ds.queue.at(i)
					later.seq--
					_ = wire.PatchHeader(*later.bufp, later.flags, ds.epoch, later.seq)
				}
				ds.nextSeq--
				ds.putOpLocked(op)
				continue
			}
			if ds.inflight == 0 {
				ds.attempts = 0
				ds.deadline = time.Now().Add(c.backoff(0))
			}
			ds.inflight++
		}
		flush()
		wait := time.Duration(-1)
		if ds.inflight > 0 {
			wait = time.Until(ds.deadline)
			if wait < 0 {
				wait = 0
			}
		}
		ds.mu.Unlock()

		if timerArmed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerArmed = false
		if wait >= 0 {
			timer.Reset(wait)
			timerArmed = true
		}
		select {
		case <-ds.notify:
		case <-timer.C:
			timerArmed = false
		case <-c.done:
			return
		}
	}
}

// giveUpLocked fails every queued packet with ErrGaveUp and moves them
// to the resume stash. Caller holds ds.mu.
func (c *Channel) giveUpLocked(ds *destState) {
	failed := make([]*sendOp, 0, ds.queue.len())
	for ds.queue.len() > 0 {
		op := ds.queue.popFront()
		settleOp(op, fmt.Errorf("%w: %s epoch=%d seq=%d to %s",
			ErrGaveUp, op.ptype, ds.epoch, op.seq, ds.id))
		c.ctr.failures.Add(1)
		failed = append(failed, op)
	}
	// Failed queue entries carry lower sequence numbers than whatever
	// remains of an earlier stash, so they go in front.
	ds.stash = append(failed, ds.stash...)
	ds.inflight = 0
	ds.attempts = 0
	ds.dupAcks = 0
	ds.fastRetx = false
	ds.deadline = time.Time{}
}

// failPendingLocked resolves every queued packet with err and drops all
// sender state. Caller holds ds.mu.
func (c *Channel) failPendingLocked(ds *destState, err error) {
	for ds.queue.len() > 0 {
		op := ds.queue.popFront()
		settleOp(op, err)
		putBuf(op.bufp)
		op.bufp = nil
	}
	ds.inflight = 0
	for _, s := range ds.stash {
		putBuf(s.bufp)
		s.bufp = nil
	}
	ds.stash = nil
	ds.deadline = time.Time{}
}

// SendUnreliable transmits a fire-and-forget packet (FlagNoAck). It may
// be broadcast.
func (c *Channel) SendUnreliable(dst ident.ID, ptype wire.PacketType, payload []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	c.ctr.unreliableOut.Add(1)
	pkt := wire.Packet{
		Type:    ptype,
		Flags:   wire.FlagNoAck,
		Sender:  c.tr.LocalID(),
		Payload: payload,
	}
	bp := getBuf()
	b, err := pkt.Marshal((*bp)[:0])
	if err != nil {
		putBuf(bp)
		return fmt.Errorf("reliable marshal: %w", err)
	}
	*bp = b
	sendErr := c.tr.Send(dst, b)
	putBuf(bp)
	if sendErr != nil && !errors.Is(sendErr, transport.ErrUnknownDest) {
		return fmt.Errorf("unreliable send: %w", sendErr)
	}
	return nil
}

// Recv blocks for the next delivered packet. Reliable packets have been
// acknowledged, deduplicated and reordered into per-sender sequence
// order; unreliable ones are passed through. Packets come from the
// channel's inbound pool: a consumer that calls pkt.Release once done
// (after fully decoding or copying the payload) recycles the packet,
// keeping the steady-state receive path allocation-free. Not releasing
// is safe — the packet just falls to the garbage collector — but shows
// up as an acquired/recycled gap in Stats.
func (c *Channel) Recv() (*wire.Packet, error) {
	select {
	case p := <-c.inbound:
		return p, nil
	case <-c.done:
		select {
		case p := <-c.inbound:
			return p, nil
		default:
			return nil, ErrClosed
		}
	}
}

// RecvTimeout is Recv with a deadline.
func (c *Channel) RecvTimeout(d time.Duration) (*wire.Packet, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case p := <-c.inbound:
		return p, nil
	case <-timer.C:
		return nil, transport.ErrTimeout
	case <-c.done:
		select {
		case p := <-c.inbound:
			return p, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Pending reports how many reliable sends are still unresolved: queued
// or in flight towards any destination, not yet acknowledged and not
// yet failed. Stashed give-up packets (kept only for resume-by-
// identical-resend) are already settled and therefore not counted. A
// channel whose Pending has reached zero has settled every send a
// caller could still be waiting on — the precondition for a graceful
// shutdown.
func (c *Channel) Pending() int {
	c.mu.Lock()
	dests := make([]*destState, 0, len(c.dests))
	for _, ds := range c.dests {
		dests = append(dests, ds)
	}
	c.mu.Unlock()
	pending := 0
	for _, ds := range dests {
		ds.mu.Lock()
		pending += ds.queue.len()
		ds.mu.Unlock()
	}
	return pending
}

// ErrDrainTimeout reports that Drain gave up before the send queues
// emptied.
var ErrDrainTimeout = errors.New("reliable: drain timed out")

// Drain waits until every queued reliable send has resolved (been
// acknowledged or failed by the retry budget) or the timeout lapses.
// It is the graceful half of shutdown: Drain then Close lets in-flight
// deliveries finish instead of failing them with ErrClosed. Drain does
// not stop new sends from being enqueued; quiesce callers first.
func (c *Channel) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if c.Pending() == 0 {
			return nil
		}
		select {
		case <-c.done:
			// Close already ran: every pending send has been failed.
			return nil
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %d sends still pending", ErrDrainTimeout, c.Pending())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Forget discards reliability state for a purged member so that a
// returning device with the same ID starts a fresh stream. Packets
// still pending towards the member fail with ErrGaveUp. The outbound
// epoch floor survives: the next stream to the same ID opens under a
// fresh epoch, so stragglers of the old stream cannot pollute it.
func (c *Channel) Forget(id ident.ID) {
	c.rmu.Lock()
	if st := c.rst[id]; st != nil {
		for _, parked := range st.buf {
			parked.Release()
		}
		delete(c.rst, id)
	}
	c.rmu.Unlock()
	c.mu.Lock()
	ds := c.dests[id]
	if ds != nil {
		// Taking ds.mu under c.mu is safe: no path acquires c.mu
		// while holding a destState mutex. Bumping the epoch floor in
		// the same critical section that removes the dest guarantees
		// a racing SendAsync either finds the old state (and fails,
		// retrying against fresh state) or opens the new epoch —
		// never a fresh stream under the forgotten stream's epoch.
		ds.mu.Lock()
		ds.gone = true
		c.failPendingLocked(ds, fmt.Errorf("%w: %s forgotten", ErrGaveUp, id))
		ds.kick()
		c.epochs[id] = ds.epoch + 1
		ds.mu.Unlock()
		delete(c.dests, id)
	}
	c.mu.Unlock()
}

// Close stops the machinery, fails every in-flight send with ErrClosed
// promptly, and closes the underlying transport.
func (c *Channel) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	dests := make([]*destState, 0, len(c.dests))
	for _, ds := range c.dests {
		dests = append(dests, ds)
	}
	c.mu.Unlock()
	close(c.done)
	// Wake blocked senders before tearing the transport down: no new
	// op can be enqueued (closed is set), and marking each dest gone
	// resolves the races with in-progress enqueues.
	for _, ds := range dests {
		ds.mu.Lock()
		ds.gone = true
		c.failPendingLocked(ds, ErrClosed)
		ds.kick()
		ds.mu.Unlock()
	}
	err := c.tr.Close()
	c.wg.Wait()
	// The receive loop has exited: packets parked in reorder buffers
	// can never be delivered now, so recycle them — a well-behaved
	// consumer that drains Recv then sees acquired == recycled.
	c.rmu.Lock()
	for _, st := range c.rst {
		for seq, parked := range st.buf {
			delete(st.buf, seq)
			parked.Release()
		}
	}
	c.rmu.Unlock()
	return err
}

func (c *Channel) recvLoop() {
	defer c.wg.Done()
	for {
		dg, err := c.tr.Recv()
		if err != nil {
			return
		}
		// Pooled decode: the packet copies the payload into its own
		// reusable buffer, so the datagram buffer goes straight back
		// to the transport pool and no per-packet allocation remains.
		pkt, err := c.pktPool.Unmarshal(dg.Data)
		dg.Recycle()
		if err != nil {
			// Corrupted or foreign datagram: drop silently, as a
			// datagram network must tolerate.
			continue
		}
		c.handle(pkt)
	}
}

func (c *Channel) handle(pkt *wire.Packet) {
	switch {
	case pkt.Type == wire.PktAck:
		c.applyAck(pkt.Sender, pkt.Epoch, pkt.Seq)
		pkt.Release()
	case pkt.Flags&wire.FlagNoAck != 0:
		c.ctr.unreliableIn.Add(1)
		c.deliver(pkt)
	default:
		if pkt.Flags&wire.FlagBatch != 0 && pkt.Type == wire.PktEvent {
			// A batch prologue may piggyback the peer's cumulative ack
			// for our own outbound stream: apply it before the data
			// path, exactly as if a standalone PktAck had arrived.
			if ep, cum, ok := wire.BatchAck(pkt.Payload); ok {
				c.ctr.piggybackAcks.Add(1)
				c.applyAck(pkt.Sender, ep, cum)
			}
		}
		c.handleData(pkt)
	}
}

// applyAck applies a cumulative acknowledgement — standalone PktAck or
// piggybacked batch prologue — to the destination's send queue.
func (c *Channel) applyAck(sender ident.ID, epoch byte, cum uint64) {
	c.mu.Lock()
	ds := c.dests[sender]
	c.mu.Unlock()
	if ds == nil {
		c.ctr.staleAcks.Add(1)
		return
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if epoch != ds.epoch {
		if epochNewer(epoch, ds.epoch) && !ds.gone {
			// The receiver acknowledges an epoch this channel has never
			// used: its ordering state survives from a previous
			// incarnation of this endpoint restarted under the same
			// identity. Adopt the epoch and reset past it so the next
			// transmission opens a provably fresh stream.
			ds.epoch = epoch
			c.resetStreamLocked(ds)
			ds.kick()
			return
		}
		c.ctr.staleAcks.Add(1)
		return
	}
	if cum > ds.nextSeq && !ds.gone {
		// An ack covering sequence numbers this stream never sent can
		// only come from a receiver replaying cumulative state left by
		// a previous incarnation of this endpoint. Settling against it
		// would report success for packets the receiver silently
		// dropped as duplicates, so restart the stream under a fresh
		// epoch instead; the receiver resets on the first new-epoch
		// packet and the stream converges in one round trip.
		c.resetStreamLocked(ds)
		ds.kick()
		return
	}
	progress := 0
	for ds.queue.len() > 0 && ds.queue.at(0).seq <= cum {
		op := ds.queue.popFront()
		if ds.inflight > 0 {
			ds.inflight--
		}
		putBuf(op.bufp)
		op.bufp = nil
		settleOp(op, nil) // success
		ds.putOpLocked(op)
		progress++
	}
	switch {
	case progress > 0:
		c.ctr.acked.Add(uint64(progress))
		ds.attempts = 0
		ds.dupAcks = 0
		ds.gapAcks = 0
		if ds.inflight > 0 {
			ds.deadline = time.Now().Add(c.backoff(0))
		} else {
			ds.deadline = time.Time{}
		}
		ds.kick()
	case ds.inflight > 0 && cum+1 == ds.queue.at(0).seq:
		// Duplicate cumulative ack: the receiver is waiting for our
		// base packet.
		ds.dupAcks++
		ds.gapAcks = 0
		if ds.dupAcks == 3 && c.cfg.Window > 1 {
			ds.fastRetx = true
			ds.kick()
		}
	case ds.inflight > 0 && cum+1 < ds.queue.at(0).seq:
		// The receiver is waiting for packets below our window base —
		// sequence numbers this stream already settled and will never
		// retransmit, so the gap is unfillable: its cumulative state
		// regressed (the receiver restarted, or its state was purged).
		// One stray reordered ack must not reset a healthy stream, so
		// demand a persistent signal: repeated regressed acks with a
		// retransmission round behind them and no progress in between.
		ds.gapAcks++
		if ds.gapAcks >= 3 && ds.attempts > 0 {
			c.resetStreamLocked(ds)
			ds.kick()
		}
	case ds.queue.len() == 0:
		c.ctr.staleAcks.Add(1)
	}
}

// stampBatchAck patches the freshest cumulative ack for the
// destination's inbound stream into a queued batch packet just before
// transmission (no-op for non-batch ops). Caller holds ds.mu; rmu
// nests inside it here, and no path acquires ds.mu while holding rmu,
// so the ordering is acyclic.
func (c *Channel) stampBatchAck(ds *destState, op *sendOp) {
	if op.flags&wire.FlagBatch == 0 {
		return
	}
	c.rmu.Lock()
	st := c.rst[ds.id]
	if st == nil {
		c.rmu.Unlock()
		return
	}
	epoch, cum := st.epoch, st.cum
	c.rmu.Unlock()
	_ = wire.PatchBatchAck(*op.bufp, epoch, cum)
}

// epochNewer reports whether a is a more recent stream epoch than b,
// using mod-256 serial-number arithmetic.
func epochNewer(a, b byte) bool {
	return a != b && byte(a-b) < 128
}

// handleData runs the receiver half of the ARQ: cumulative state,
// reorder buffer, strictly in-order release to Recv, and a cumulative
// acknowledgement back to the sender.
func (c *Channel) handleData(pkt *wire.Packet) {
	// Capture the sender before the switch: delivering or releasing
	// the pooled packet hands ownership away, so its fields must not
	// be read afterwards.
	sender := pkt.Sender
	c.rmu.Lock()
	st, ok := c.rst[sender]
	if !ok {
		// First contact with this sender (or first after Forget).
		st = &recvState{epoch: pkt.Epoch}
		c.rst[sender] = st
	}
	if pkt.Epoch != st.epoch {
		if epochNewer(pkt.Epoch, st.epoch) {
			// The sender restarted its stream; reset streams always
			// renumber from 1, so expect exactly that. Parked packets
			// of the dead epoch go back to the pool.
			st.epoch = pkt.Epoch
			st.cum = 0
			for seq, parked := range st.buf {
				delete(st.buf, seq)
				parked.Release()
			}
		} else {
			c.ctr.staleEpoch.Add(1)
			epoch, cum := st.epoch, st.cum
			c.rmu.Unlock()
			pkt.Release()
			// Acknowledge with this receiver's actual position: a
			// restarted sender stuck behind state we hold for its
			// previous incarnation learns of it from this ack and
			// resets its stream (see handleAck).
			c.sendAck(sender, epoch, cum)
			return
		}
	}
	switch {
	case pkt.Seq <= st.cum:
		c.ctr.dupsDropped.Add(1)
		pkt.Release()
	case pkt.Seq == st.cum+1:
		c.deliver(pkt)
		st.cum++
		c.ctr.received.Add(1)
		for len(st.buf) > 0 {
			next, ok := st.buf[st.cum+1]
			if !ok {
				break
			}
			delete(st.buf, st.cum+1)
			c.deliver(next)
			st.cum++
			c.ctr.received.Add(1)
		}
	default: // gap: park the packet until the hole fills
		if st.buf == nil {
			st.buf = make(map[uint64]*wire.Packet)
		}
		if _, dup := st.buf[pkt.Seq]; dup {
			c.ctr.dupsDropped.Add(1)
			pkt.Release()
		} else if len(st.buf) < c.cfg.ReorderDepth {
			st.buf[pkt.Seq] = pkt
			c.ctr.buffered.Add(1)
		} else {
			// Buffer full — drop; sender retransmission recovers.
			pkt.Release()
		}
	}
	epoch, cum := st.epoch, st.cum
	c.rmu.Unlock()
	// Always (re-)acknowledge, including for duplicates: the sender
	// may have missed the previous ack.
	c.sendAck(sender, epoch, cum)
}

// sendAck emits a cumulative acknowledgement covering every packet of
// the epoch up to and including cum.
func (c *Channel) sendAck(dst ident.ID, epoch byte, cum uint64) {
	ack := wire.Packet{
		Type:   wire.PktAck,
		Flags:  wire.FlagCumAck,
		Epoch:  epoch,
		Sender: c.tr.LocalID(),
		Seq:    cum,
	}
	bp := getBuf()
	b, err := ack.Marshal((*bp)[:0])
	if err == nil {
		*bp = b
		_ = c.tr.Send(dst, b) // loss handled by sender retry
	}
	putBuf(bp)
}

func (c *Channel) deliver(pkt *wire.Packet) {
	select {
	case c.inbound <- pkt:
	case <-c.done:
		pkt.Release()
	default:
		// Inbound overflow: drop. The sender has already been acked;
		// this models the bounded memory of the target platform.
		// Sized queues make this effectively unreachable in tests.
		pkt.Release()
	}
}
