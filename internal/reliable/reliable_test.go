package reliable

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

// pair builds two channels joined by the given profile.
func pair(t *testing.T, p netsim.Profile, seed int64, cfg Config) (*Channel, *Channel) {
	t.Helper()
	n := netsim.New(p, netsim.WithSeed(seed))
	ta, err := n.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := n.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(ta, cfg), New(tb, cfg)
	t.Cleanup(func() {
		a.Close()
		b.Close()
		n.Close()
	})
	return a, b
}

func fastCfg() Config {
	return Config{
		RetryTimeout:    20 * time.Millisecond,
		MaxRetryTimeout: 100 * time.Millisecond,
		MaxRetries:      24,
		QueueDepth:      4096,
	}
}

func TestReliableDeliveryPerfectLink(t *testing.T) {
	a, b := pair(t, netsim.Perfect, 1, fastCfg())
	if err := a.Send(b.LocalID(), wire.PktEvent, []byte("payload")); err != nil {
		t.Fatalf("send: %v", err)
	}
	pkt, err := b.RecvTimeout(time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if pkt.Type != wire.PktEvent || string(pkt.Payload) != "payload" || pkt.Sender != a.LocalID() {
		t.Errorf("got %s payload %q", pkt, pkt.Payload)
	}
	st := a.Stats()
	if st.Acked != 1 || st.Retransmits != 0 {
		t.Errorf("sender stats = %+v", st)
	}
}

func TestReliableDeliveryUnderHeavyLoss(t *testing.T) {
	// 40% loss in both directions: retransmission must still get
	// every packet through, exactly once, in order.
	a, b := pair(t, netsim.Lossy(0.4), 2, fastCfg())
	const count = 60

	var recvErr error
	got := make([][]byte, 0, count)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < count {
			pkt, err := b.RecvTimeout(10 * time.Second)
			if err != nil {
				recvErr = err
				return
			}
			got = append(got, pkt.Payload)
		}
	}()

	for i := 0; i < count; i++ {
		if err := a.Send(b.LocalID(), wire.PktEvent, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	<-done
	if recvErr != nil {
		t.Fatalf("recv: %v", recvErr)
	}
	for i, p := range got {
		if len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("packet %d out of order or duplicated: % x", i, p)
		}
	}
	st := a.Stats()
	if st.Retransmits == 0 {
		t.Error("no retransmissions under 40% loss — loss model inert?")
	}
	bst := b.Stats()
	if bst.Received != count {
		t.Errorf("receiver accepted %d, want %d", bst.Received, count)
	}
}

func TestDuplicateSuppressionUnderDuplication(t *testing.T) {
	p := netsim.Profile{Name: "dup", Duplicate: 0.9}
	a, b := pair(t, p, 3, fastCfg())
	const count = 40
	for i := 0; i < count; i++ {
		if err := a.Send(b.LocalID(), wire.PktEvent, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	for received < count {
		pkt, err := b.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("recv after %d: %v", received, err)
		}
		if pkt.Payload[0] != byte(received) {
			t.Fatalf("got %d, want %d (dup or reorder leaked)", pkt.Payload[0], received)
		}
		received++
	}
	// No extra deliveries.
	if _, err := b.RecvTimeout(100 * time.Millisecond); err == nil {
		t.Error("duplicate delivered")
	}
	if b.Stats().DupsDropped == 0 {
		t.Error("no duplicates dropped despite 90% duplication")
	}
}

func TestGiveUpWhenPeerUnreachable(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(4))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	a := New(ta, Config{RetryTimeout: 10 * time.Millisecond, MaxRetries: 2})
	defer a.Close()

	start := time.Now()
	err := a.Send(ident.New(99), wire.PktEvent, []byte("void"))
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("err = %v, want ErrGaveUp", err)
	}
	// Backoff: 10 + 20 + 40 = 70 ms minimum.
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("gave up after %v, expected exponential backoff", d)
	}
	if a.Stats().Failures != 1 {
		t.Errorf("failures = %d", a.Stats().Failures)
	}
}

func TestStopAndWaitPreservesFIFOPerDestination(t *testing.T) {
	a, b := pair(t, netsim.Lossy(0.2), 5, fastCfg())
	const count = 30

	var wg sync.WaitGroup
	wg.Add(1)
	var order []byte
	go func() {
		defer wg.Done()
		for len(order) < count {
			pkt, err := b.RecvTimeout(10 * time.Second)
			if err != nil {
				return
			}
			order = append(order, pkt.Payload[0])
		}
	}()
	for i := 0; i < count; i++ {
		if err := a.Send(b.LocalID(), wire.PktEvent, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if len(order) != count {
		t.Fatalf("received %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestConcurrentSendersToOneReceiver(t *testing.T) {
	n := netsim.New(netsim.Lossy(0.1), netsim.WithSeed(6))
	defer n.Close()
	tb, _ := n.Attach(ident.New(100))
	b := New(tb, fastCfg())
	defer b.Close()

	const senders, per = 5, 20
	chans := make([]*Channel, senders)
	for i := range chans {
		tr, err := n.Attach(ident.New(uint64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = New(tr, fastCfg())
		defer chans[i].Close()
	}

	var wg sync.WaitGroup
	for i, c := range chans {
		wg.Add(1)
		go func(i int, c *Channel) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := c.Send(b.LocalID(), wire.PktEvent, []byte{byte(i), byte(k)}); err != nil {
					t.Errorf("sender %d: %v", i, err)
					return
				}
			}
		}(i, c)
	}

	perSender := make(map[ident.ID][]byte)
	for received := 0; received < senders*per; received++ {
		pkt, err := b.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", received, err)
		}
		perSender[pkt.Sender] = append(perSender[pkt.Sender], pkt.Payload[1])
	}
	wg.Wait()

	for id, seq := range perSender {
		if len(seq) != per {
			t.Errorf("sender %s delivered %d", id, len(seq))
		}
		for k := 1; k < len(seq); k++ {
			if seq[k] != seq[k-1]+1 {
				t.Errorf("sender %s out of order: %v", id, seq)
				break
			}
		}
	}
}

func TestUnreliableBroadcast(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(7))
	defer n.Close()
	var chans []*Channel
	for i := 1; i <= 3; i++ {
		tr, _ := n.Attach(ident.New(uint64(i)))
		c := New(tr, fastCfg())
		defer c.Close()
		chans = append(chans, c)
	}
	if err := chans[0].SendUnreliable(ident.Broadcast, wire.PktBeacon, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	for _, c := range chans[1:] {
		pkt, err := c.RecvTimeout(time.Second)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if pkt.Type != wire.PktBeacon || pkt.Flags&wire.FlagNoAck == 0 {
			t.Errorf("pkt = %s", pkt)
		}
	}
}

func TestReliableBroadcastRejected(t *testing.T) {
	a, _ := pair(t, netsim.Perfect, 8, fastCfg())
	if err := a.Send(ident.Broadcast, wire.PktEvent, nil); err == nil {
		t.Error("reliable broadcast accepted")
	}
}

func TestForgetResetsStream(t *testing.T) {
	a, b := pair(t, netsim.Perfect, 9, fastCfg())
	for i := 0; i < 3; i++ {
		if err := a.Send(b.LocalID(), wire.PktEvent, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the member being purged and a new device reusing the
	// ID: both sides forget.
	a.Forget(b.LocalID())
	b.Forget(a.LocalID())
	// The sender's seq restarts at 1; without Forget the receiver
	// would drop it as a duplicate.
	if err := a.Send(b.LocalID(), wire.PktEvent, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	pkt, err := b.RecvTimeout(time.Second)
	if err != nil {
		t.Fatalf("post-forget recv: %v", err)
	}
	if string(pkt.Payload) != "fresh" {
		t.Errorf("payload = %q", pkt.Payload)
	}
}

func TestCloseUnblocksSendAndRecv(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(10))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	a := New(ta, Config{RetryTimeout: time.Hour, MaxRetries: 100})

	sendDone := make(chan error, 1)
	go func() {
		sendDone <- a.Send(ident.New(99), wire.PktEvent, nil)
	}()
	recvDone := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		recvDone <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range []chan error{sendDone, recvDone} {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("op %d err = %v", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("op %d did not unblock on close", i)
		}
	}
	if err := a.Send(ident.New(5), wire.PktEvent, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	if err := a.SendUnreliable(ident.New(5), wire.PktBeacon, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("unreliable send after close: %v", err)
	}
}

func TestCorruptedDatagramsIgnored(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(11))
	defer n.Close()
	raw, _ := n.Attach(ident.New(50))
	tb, _ := n.Attach(ident.New(2))
	b := New(tb, fastCfg())
	defer b.Close()

	// Inject garbage straight onto the transport.
	if err := raw.Send(tb.LocalID(), []byte("not a packet")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(80 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("garbage surfaced: %v", err)
	}
}

func TestStaleAckCounted(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(12))
	defer n.Close()
	raw, _ := n.Attach(ident.New(50))
	tb, _ := n.Attach(ident.New(2))
	b := New(tb, fastCfg())
	defer b.Close()

	ack := &wire.Packet{Type: wire.PktAck, Sender: ident.New(50), Seq: 999}
	buf, _ := ack.MarshalBytes()
	if err := raw.Send(tb.LocalID(), buf); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if b.Stats().StaleAcks == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("stale ack not counted")
}

// Property: under arbitrary loss+duplication, N sends yield exactly N
// in-order deliveries (the §II-C contract) as long as the retry budget
// is never exhausted.
func TestDeliverySemanticsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			p := netsim.Profile{Name: "chaos", Loss: 0.3, Duplicate: 0.3}
			a, b := pair(t, p, seed, Config{
				RetryTimeout:    15 * time.Millisecond,
				MaxRetryTimeout: 80 * time.Millisecond,
				MaxRetries:      30,
			})
			const count = 40
			done := make(chan []byte, 1)
			go func() {
				var got []byte
				for len(got) < count {
					pkt, err := b.RecvTimeout(20 * time.Second)
					if err != nil {
						break
					}
					got = append(got, pkt.Payload[0])
				}
				done <- got
			}()
			for i := 0; i < count; i++ {
				if err := a.Send(b.LocalID(), wire.PktEvent, []byte{byte(i)}); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			got := <-done
			if len(got) != count {
				t.Fatalf("delivered %d, want %d", len(got), count)
			}
			for i := range got {
				if got[i] != byte(i) {
					t.Fatalf("position %d = %d (order/dup violation)", i, got[i])
				}
			}
		})
	}
}
