package reliable

import (
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/wire"
)

func testBatchEvents(t *testing.T, n int) ([]*event.Event, []byte) {
	t.Helper()
	events := make([]*event.Event, n)
	payload := wire.AppendBatchHeader(nil)
	for i := range events {
		e := event.New()
		e.Sender = ident.New(uint64(100 + i))
		e.Seq = uint64(i + 1)
		e.Stamp = time.Unix(1700000000, int64(i))
		e.SetInt("n", int64(i))
		e.SetStr("k", "batched")
		events[i] = e
		payload = wire.AppendBatchEvent(payload, e)
	}
	return events, payload
}

func recvBatch(t *testing.T, c *Channel, want []*event.Event) {
	t.Helper()
	pkt, err := c.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	defer pkt.Release()
	if pkt.Type != wire.PktEvent || pkt.Flags&wire.FlagBatch == 0 {
		t.Fatalf("got %s, want batch event packet", pkt)
	}
	r, err := wire.NewBatchReader(pkt.Payload)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for r.More() {
		frame, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		e, err := wire.DecodeEvent(frame)
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(want) || !e.Equal(want[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("got %d frames, want %d", i, len(want))
	}
}

// TestBatchSendDeliversAndPiggybacksAck: a reliable batch arrives as
// one FlagBatch packet whose frames decode back to the sent events,
// and its prologue carries the sender's cumulative ack for the
// reverse-direction stream — applied by the receiver as if a PktAck
// had arrived.
func TestBatchSendDeliversAndPiggybacksAck(t *testing.T) {
	a, b := pair(t, netsim.Perfect, 31, fastCfg())

	// Prime the reverse stream so a holds receiver state for b: the
	// next batch a sends can then piggyback an ack for it.
	if err := b.Send(a.LocalID(), wire.PktEvent, []byte("prime")); err != nil {
		t.Fatalf("prime send: %v", err)
	}
	if pkt, err := a.RecvTimeout(time.Second); err != nil {
		t.Fatalf("prime recv: %v", err)
	} else {
		pkt.Release()
	}

	events, payload := testBatchEvents(t, 3)
	if err := a.SendBatchAsync(b.LocalID(), payload).Wait(); err != nil {
		t.Fatalf("batch send: %v", err)
	}
	recvBatch(t, b, events)

	if st := a.Stats(); st.BatchesSent != 1 {
		t.Errorf("sender BatchesSent = %d, want 1", st.BatchesSent)
	}
	if st := b.Stats(); st.PiggybackAcks == 0 {
		t.Error("receiver applied no piggybacked acks")
	}
}

// TestBatchResumeAfterGiveUp: a batch failed by the retry budget is
// resumed — original sequence number, no duplicate delivery — when the
// caller re-sends the same frames, even though the re-encoded prologue
// (zeroed ack) differs from the stashed bytes whose ack was stamped at
// transmit time. This is the redelivery-loop contract extended to
// batches.
func TestBatchResumeAfterGiveUp(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxRetries = 2
	n := netsim.New(netsim.Perfect, netsim.WithSeed(32))
	ta, err := n.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := n.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(ta, cfg), New(tb, cfg)
	t.Cleanup(func() { a.Close(); b.Close(); n.Close() })

	// Prime both directions so the batch prologue actually gets an ack
	// stamped (differing from the fresh re-encode's zero prologue).
	if err := b.Send(a.LocalID(), wire.PktEvent, []byte("prime")); err != nil {
		t.Fatal(err)
	}
	if pkt, err := a.RecvTimeout(time.Second); err != nil {
		t.Fatal(err)
	} else {
		pkt.Release()
	}

	n.Partition(a.LocalID(), b.LocalID())
	events, payload := testBatchEvents(t, 4)
	if err := a.SendBatchAsync(b.LocalID(), payload).Wait(); !errors.Is(err, ErrGaveUp) {
		t.Fatalf("partitioned batch send: %v, want ErrGaveUp", err)
	}
	n.Heal(a.LocalID(), b.LocalID())

	// Redeliver: same events, freshly framed (zero prologue).
	_, again := testBatchEvents(t, 4)
	if err := a.SendBatchAsync(b.LocalID(), again).Wait(); err != nil {
		t.Fatalf("redelivered batch: %v", err)
	}
	recvBatch(t, b, events)

	st := a.Stats()
	if st.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1 (stash match must ignore the ack prologue)", st.Resumed)
	}
	if st.StreamResets != 0 {
		t.Errorf("StreamResets = %d, want 0", st.StreamResets)
	}

	// And exactly one batch arrives: no duplicate delivery.
	if pkt, err := b.RecvTimeout(100 * time.Millisecond); err == nil {
		t.Fatalf("unexpected extra packet %s", pkt)
	}
}
