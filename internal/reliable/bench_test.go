package reliable

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/wire"
)

// benchLossy is the netsim lossy profile the window benchmark runs
// over: real latency so round trips cost something, loss so the
// retransmission machinery is in the measured path.
var benchLossy = netsim.Profile{
	Name:    "bench-lossy",
	Latency: 500 * time.Microsecond,
	Jitter:  200 * time.Microsecond,
	Loss:    0.05,
}

func benchCfg(window int) Config {
	return Config{
		RetryTimeout:    10 * time.Millisecond,
		MaxRetryTimeout: 80 * time.Millisecond,
		MaxRetries:      40,
		Window:          window,
		QueueDepth:      8192,
		MaxPending:      8192,
	}
}

// BenchmarkReliableWindow measures acknowledged round-trips per second
// through one destination at each window size on the lossy profile.
// Window=1 is the seed's stop-and-wait; the ≥2× gain at Window=16 is
// PR 2's acceptance criterion (see BENCH_PR2.json).
func BenchmarkReliableWindow(b *testing.B) {
	for _, window := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			n := netsim.New(benchLossy, netsim.WithSeed(17))
			defer n.Close()
			ta, err := n.Attach(ident.New(1))
			if err != nil {
				b.Fatal(err)
			}
			tb, err := n.Attach(ident.New(2))
			if err != nil {
				b.Fatal(err)
			}
			a, recv := New(ta, benchCfg(window)), New(tb, benchCfg(window))
			defer a.Close()
			defer recv.Close()
			go func() {
				for {
					pkt, err := recv.Recv()
					if err != nil {
						return
					}
					pkt.Release() // consumer contract: recycle the pooled packet
				}
			}()

			payload := []byte("reliable-window-benchmark-payload")
			b.ReportAllocs()
			b.ResetTimer()
			var pending []*Completion
			for i := 0; i < b.N; i++ {
				pending = append(pending, a.SendAsync(tb.LocalID(), wire.PktEvent, payload))
				if len(pending) >= window {
					if err := pending[0].Wait(); err != nil {
						b.Fatal(err)
					}
					pending[0].Recycle()
					pending = pending[1:]
				}
			}
			for _, c := range pending {
				if err := c.Wait(); err != nil {
					b.Fatal(err)
				}
				c.Recycle()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
		})
	}
}

// BenchmarkReliableSendAllocs isolates the per-send allocation cost on
// a perfect link: the seed allocated a waiter channel and a map entry
// per send plus a marshal buffer per attempt; the windowed pipeline
// pools the marshal buffers and keeps per-send state in the queue.
func BenchmarkReliableSendAllocs(b *testing.B) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(19))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	tb, _ := n.Attach(ident.New(2))
	a, recv := New(ta, benchCfg(16)), New(tb, benchCfg(16))
	defer a.Close()
	defer recv.Close()
	go func() {
		for {
			pkt, err := recv.Recv()
			if err != nil {
				return
			}
			pkt.Release() // consumer contract: recycle the pooled packet
		}
	}()

	payload := []byte("alloc-benchmark-payload")
	b.ReportAllocs()
	b.ResetTimer()
	var pending []*Completion
	for i := 0; i < b.N; i++ {
		pending = append(pending, a.SendAsync(tb.LocalID(), wire.PktEvent, payload))
		if len(pending) >= 16 {
			if err := pending[0].Wait(); err != nil {
				b.Fatal(err)
			}
			pending[0].Recycle()
			pending = pending[1:]
		}
	}
	for _, c := range pending {
		if err := c.Wait(); err != nil {
			b.Fatal(err)
		}
		c.Recycle()
	}
}

// BenchmarkReliableSendFireForget is the floor of the send path: no
// completion exists at all, so a send costs only the pooled op, the
// pooled marshal buffer and the transport hop.
func BenchmarkReliableSendFireForget(b *testing.B) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(19))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	tb, _ := n.Attach(ident.New(2))
	a, recv := New(ta, benchCfg(16)), New(tb, benchCfg(16))
	defer a.Close()
	defer recv.Close()
	go func() {
		for {
			pkt, err := recv.Recv()
			if err != nil {
				return
			}
			pkt.Release()
		}
	}()

	payload := []byte("alloc-benchmark-payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := a.SendFireForget(tb.LocalID(), wire.PktEvent, payload)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrBacklog) {
				b.Fatal(err)
			}
			time.Sleep(50 * time.Microsecond) // backpressure: let acks drain
		}
	}
	b.StopTimer()
	// Drain: wait until everything is acknowledged so queue growth
	// does not leak into the next benchmark.
	deadline := time.Now().Add(30 * time.Second)
	for a.Stats().Acked < uint64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}
