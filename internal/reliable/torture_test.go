package reliable

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

// tortureCfg gives the retransmission machinery enough budget to
// survive the netsim.Torture profile.
func tortureCfg(window int) Config {
	return Config{
		RetryTimeout:    15 * time.Millisecond,
		MaxRetryTimeout: 100 * time.Millisecond,
		MaxRetries:      40,
		Window:          window,
		QueueDepth:      8192,
	}
}

// TestTortureFIFOAtMostOnce drives concurrent senders through loss,
// duplication and reordering at every window size and asserts the
// §II-C contract end to end: every packet delivered exactly once, in
// per-sender order.
func TestTortureFIFOAtMostOnce(t *testing.T) {
	perSender := 60
	if testing.Short() {
		perSender = 25
	}
	for _, window := range []int{1, 4, 16} {
		window := window
		t.Run(fmt.Sprintf("window=%d", window), func(t *testing.T) {
			t.Parallel()
			const senders = 2
			n := netsim.New(netsim.Torture, netsim.WithSeed(int64(100+window)))
			defer n.Close()

			rt, err := n.Attach(ident.New(999))
			if err != nil {
				t.Fatal(err)
			}
			recv := New(rt, tortureCfg(window))
			defer recv.Close()

			chans := make([]*Channel, senders)
			for i := range chans {
				tr, err := n.Attach(ident.New(uint64(i + 1)))
				if err != nil {
					t.Fatal(err)
				}
				chans[i] = New(tr, tortureCfg(window))
				defer chans[i].Close()
			}

			// Collect deliveries until every stream is complete.
			got := make(map[ident.ID][]byte)
			recvDone := make(chan error, 1)
			go func() {
				for count := 0; count < senders*perSender; count++ {
					pkt, err := recv.RecvTimeout(30 * time.Second)
					if err != nil {
						recvDone <- fmt.Errorf("after %d deliveries: %w", count, err)
						return
					}
					got[pkt.Sender] = append(got[pkt.Sender], pkt.Payload[0])
				}
				recvDone <- nil
			}()

			// Each sender pipelines its stream with SendAsync, keeping
			// up to 2×window completions outstanding.
			var wg sync.WaitGroup
			errs := make(chan error, senders)
			for i, c := range chans {
				wg.Add(1)
				go func(i int, c *Channel) {
					defer wg.Done()
					var pending []*Completion
					for k := 0; k < perSender; k++ {
						pending = append(pending,
							c.SendAsync(recv.LocalID(), wire.PktEvent, []byte{byte(k)}))
						if len(pending) > 2*window {
							if err := pending[0].Wait(); err != nil {
								errs <- fmt.Errorf("sender %d packet: %w", i, err)
								return
							}
							pending = pending[1:]
						}
					}
					for _, p := range pending {
						if err := p.Wait(); err != nil {
							errs <- fmt.Errorf("sender %d drain: %w", i, err)
							return
						}
					}
				}(i, c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := <-recvDone; err != nil {
				t.Fatal(err)
			}

			for id, seq := range got {
				if len(seq) != perSender {
					t.Errorf("sender %s: delivered %d, want %d", id, len(seq), perSender)
				}
				for k := range seq {
					if seq[k] != byte(k) {
						t.Fatalf("sender %s: position %d = %d (FIFO/at-most-once violated): %v",
							id, k, seq[k], seq)
					}
				}
			}
			if st := recv.Stats(); st.Buffered == 0 {
				t.Logf("note: no reordering absorbed (stats %+v)", st)
			}
		})
	}
}

// TestTortureForgetRejoin checks that a Forget on both sides restarts
// a clean stream even while stragglers of the old stream are still in
// the network: the surviving epoch floor keeps old packets out.
func TestTortureForgetRejoin(t *testing.T) {
	n := netsim.New(netsim.Torture, netsim.WithSeed(7))
	defer n.Close()
	ta, err := n.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := n.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(ta, tortureCfg(8)), New(tb, tortureCfg(8))
	defer a.Close()
	defer b.Close()

	const phase = 20
	runPhase := func(tag byte) {
		t.Helper()
		var pending []*Completion
		for k := 0; k < phase; k++ {
			pending = append(pending, a.SendAsync(b.LocalID(), wire.PktEvent, []byte{tag, byte(k)}))
		}
		for k, p := range pending {
			if err := p.Wait(); err != nil {
				t.Fatalf("phase %d send %d: %v", tag, k, err)
			}
		}
		for k := 0; k < phase; k++ {
			pkt, err := b.RecvTimeout(30 * time.Second)
			if err != nil {
				t.Fatalf("phase %d recv %d: %v", tag, k, err)
			}
			if pkt.Payload[0] != tag || pkt.Payload[1] != byte(k) {
				t.Fatalf("phase %d position %d: got [%d %d]", tag, k, pkt.Payload[0], pkt.Payload[1])
			}
		}
	}

	runPhase(1)
	// Purge and rejoin immediately: duplicates of phase-1 packets may
	// still be drifting through the torture link.
	a.Forget(b.LocalID())
	b.Forget(a.LocalID())
	runPhase(2)

	// The new stream must have opened under a fresh epoch.
	if st := a.Stats(); st.Failures != 0 {
		t.Errorf("unexpected failures: %+v", st)
	}
	// No phase-1 stragglers may surface later.
	if pkt, err := b.RecvTimeout(300 * time.Millisecond); err == nil {
		t.Errorf("straggler surfaced after rejoin: % x", pkt.Payload)
	}
}

// TestWindowPipeliningFillsTheLink asserts the point of the window:
// with in-flight capacity, N sends over a latency link complete far
// faster than N round trips.
func TestWindowPipeliningFillsTheLink(t *testing.T) {
	p := netsim.Profile{Name: "latency", Latency: 5 * time.Millisecond}
	n := netsim.New(p, netsim.WithSeed(3))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	tb, _ := n.Attach(ident.New(2))
	cfg := fastCfg()
	cfg.Window = 8
	a, b := New(ta, cfg), New(tb, cfg)
	defer a.Close()
	defer b.Close()

	go func() {
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()

	const count = 24 // serial lower bound: 24 × 10 ms RTT = 240 ms
	start := time.Now()
	var pending []*Completion
	for k := 0; k < count; k++ {
		pending = append(pending, a.SendAsync(b.LocalID(), wire.PktEvent, []byte{byte(k)}))
	}
	for _, c := range pending {
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("24 pipelined sends took %v, want well under the 240 ms serial bound", elapsed)
	}
	if st := a.Stats(); st.Acked != count {
		t.Errorf("acked = %d, want %d", st.Acked, count)
	}
}

// TestResumeAfterGiveUpSuppressesDuplicate reproduces the homecare
// failure mode at the channel level: the packet is delivered but every
// ack is lost, the sender gives up, and the caller re-sends the same
// payload. The resume stash must reuse the original sequence number so
// the receiver suppresses the duplicate.
func TestResumeAfterGiveUpSuppressesDuplicate(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(5))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	tb, _ := n.Attach(ident.New(2))
	cfg := Config{RetryTimeout: 15 * time.Millisecond, MaxRetries: 2}
	a, b := New(ta, cfg), New(tb, cfg)
	defer a.Close()
	defer b.Close()

	// Forward path fine, ack path dead.
	n.SetLinkProfile(tb.LocalID(), ta.LocalID(), netsim.Lossy(1.0))

	err := a.Send(b.LocalID(), wire.PktEvent, []byte("ping-3"))
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("err = %v, want ErrGaveUp (acks are blocked)", err)
	}
	pkt, err := b.RecvTimeout(time.Second)
	if err != nil || string(pkt.Payload) != "ping-3" {
		t.Fatalf("first delivery: %v %v", pkt, err)
	}

	// Acks heal; the caller re-sends the identical payload — the
	// proxy redelivery loop's behaviour.
	n.SetLinkProfile(tb.LocalID(), ta.LocalID(), netsim.Perfect)
	if err := a.Send(b.LocalID(), wire.PktEvent, []byte("ping-3")); err != nil {
		t.Fatalf("resumed send: %v", err)
	}
	if st := a.Stats(); st.Resumed != 1 {
		t.Errorf("resumed = %d, want 1 (stats %+v)", st.Resumed, st)
	}
	// The receiver must NOT deliver it twice...
	if pkt, err := b.RecvTimeout(200 * time.Millisecond); err == nil {
		t.Fatalf("duplicate delivered: %s", pkt)
	}
	// ...and the stream must continue cleanly.
	if err := a.Send(b.LocalID(), wire.PktEvent, []byte("ping-4")); err != nil {
		t.Fatal(err)
	}
	if pkt, err := b.RecvTimeout(time.Second); err != nil || string(pkt.Payload) != "ping-4" {
		t.Fatalf("follow-up: %v %v", pkt, err)
	}
	if st := b.Stats(); st.DupsDropped == 0 {
		t.Errorf("no duplicate suppressed at receiver (stats %+v)", st)
	}
}

// TestStreamResetAfterDivergentResend: when the caller abandons a
// failed payload and sends different traffic, the stream restarts
// under a new epoch instead of stalling on the sequence gap.
func TestStreamResetAfterDivergentResend(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(6))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	tb, _ := n.Attach(ident.New(2))
	cfg := Config{RetryTimeout: 15 * time.Millisecond, MaxRetries: 2}
	a, b := New(ta, cfg), New(tb, cfg)
	defer a.Close()
	defer b.Close()

	// Establish some history so the gap would be mid-stream.
	if err := a.Send(b.LocalID(), wire.PktEvent, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatal(err)
	}

	// Lose a packet entirely (both directions dead), give up.
	n.Partition(ta.LocalID(), tb.LocalID())
	if err := a.Send(b.LocalID(), wire.PktEvent, []byte("lost")); !errors.Is(err, ErrGaveUp) {
		t.Fatalf("err = %v, want ErrGaveUp", err)
	}
	n.Heal(ta.LocalID(), tb.LocalID())

	// Different traffic follows: stream must reset and flow.
	if err := a.Send(b.LocalID(), wire.PktEvent, []byte("after")); err != nil {
		t.Fatalf("post-reset send: %v", err)
	}
	pkt, err := b.RecvTimeout(time.Second)
	if err != nil || string(pkt.Payload) != "after" {
		t.Fatalf("post-reset recv: %v %v", pkt, err)
	}
	if st := a.Stats(); st.StreamResets != 1 {
		t.Errorf("stream resets = %d, want 1", st.StreamResets)
	}
}

// TestCloseWakesAllPendingSenders covers the shutdown fix: concurrent
// Sends blocked on an unreachable destination must resolve promptly
// with ErrClosed, not linger until their retry budget expires.
func TestCloseWakesAllPendingSenders(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(8))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	a := New(ta, Config{RetryTimeout: time.Hour, MaxRetries: 100, Window: 4})

	const blocked = 12
	results := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		go func(i int) {
			// A mix of destinations: some share a queue, some don't;
			// ops beyond the window sit untransmitted.
			dst := ident.New(uint64(50 + i%3))
			results <- a.Send(dst, wire.PktEvent, []byte{byte(i)})
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the sends enqueue
	start := time.Now()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocked; i++ {
		select {
		case err := <-results:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("send %d err = %v, want ErrClosed", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("send %d still blocked %v after Close", i, time.Since(start))
		}
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("close-wakeup took %v", d)
	}
	// A send racing Close must fail cleanly too.
	if err := a.Send(ident.New(50), wire.PktEvent, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

// TestBacklogBound: SendAsync must fail fast once the per-destination
// backlog cap is reached rather than queueing without bound.
func TestBacklogBound(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(9))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	a := New(ta, Config{RetryTimeout: time.Hour, MaxRetries: 100, Window: 2, MaxPending: 4})
	defer a.Close()

	dst := ident.New(99) // unreachable: nothing ever completes
	for i := 0; i < 4; i++ {
		if comp := a.SendAsync(dst, wire.PktEvent, []byte{byte(i)}); comp == nil {
			t.Fatal("nil completion")
		}
	}
	if err := a.SendAsync(dst, wire.PktEvent, []byte{4}).Wait(); !errors.Is(err, ErrBacklog) {
		t.Errorf("overflow err = %v, want ErrBacklog", err)
	}
}

// TestSendAsyncFIFOCompletionOrder: completions resolve in enqueue
// order (cumulative acks cannot complete a later packet first).
func TestSendAsyncFIFOCompletionOrder(t *testing.T) {
	a, b := pair(t, netsim.Lossy(0.2), 11, fastCfg())
	const count = 30
	comps := make([]*Completion, count)
	for i := range comps {
		comps[i] = a.SendAsync(b.LocalID(), wire.PktEvent, []byte{byte(i)})
	}
	go func() {
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	for i, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
		// All earlier completions must already be resolved.
		for j := 0; j < i; j++ {
			select {
			case <-comps[j].Done():
			default:
				t.Fatalf("completion %d resolved before %d", i, j)
			}
		}
	}
}

// TestOversizeSendFailsFast: a packet over the transport MTU is
// permanently unsendable — it must fail immediately with the
// transport's ErrTooLarge instead of burning the retry budget, and
// the stream must keep flowing for subsequent packets.
func TestOversizeSendFailsFast(t *testing.T) {
	a, err := transport.NewUDPTransport()
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	b, err := transport.NewUDPTransport()
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	ca := New(a, Config{RetryTimeout: 200 * time.Millisecond, MaxRetries: 10})
	cb := New(b, Config{RetryTimeout: 200 * time.Millisecond, MaxRetries: 10})
	defer ca.Close()
	defer cb.Close()

	start := time.Now()
	err = ca.Send(b.LocalID(), wire.PktEvent, make([]byte, transport.MaxUDPDatagram+1))
	if !errors.Is(err, transport.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("oversize send took %v; should fail fast, not retry", d)
	}
	if err := ca.Send(b.LocalID(), wire.PktEvent, []byte("small")); err != nil {
		t.Fatalf("follow-up send: %v", err)
	}
	if pkt, err := cb.RecvTimeout(2 * time.Second); err != nil || string(pkt.Payload) != "small" {
		t.Fatalf("follow-up recv: %v %v", pkt, err)
	}
}
