package reliable

// opRing is a growable FIFO ring buffer of queued send ops, replacing
// the previous `[]*sendOp` whose pop-front re-slicing kept dead head
// slots alive and whose append churned under batching's bursty
// enqueue/dequeue pattern. Capacity is always a power of two so index
// math is a mask; the buffer grows on demand and is retained across
// the destination's lifetime. All methods are called under ds.mu.
type opRing struct {
	buf  []*sendOp
	head int
	n    int
}

// len reports the number of queued ops.
func (r *opRing) len() int { return r.n }

// at returns the i-th op in FIFO order (0 is the front).
func (r *opRing) at(i int) *sendOp { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *opRing) set(i int, op *sendOp) { r.buf[(r.head+i)&(len(r.buf)-1)] = op }

// push appends an op at the back.
func (r *opRing) push(op *sendOp) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = op
	r.n++
}

// popFront removes and returns the front op. The vacated slot is
// cleared so the ring never pins a settled op for the GC.
func (r *opRing) popFront() *sendOp {
	op := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	if r.n == 0 {
		r.head = 0
	}
	return op
}

// removeAt deletes the i-th op preserving FIFO order of the rest
// (the mid-queue ErrTooLarge failure path).
func (r *opRing) removeAt(i int) {
	for ; i < r.n-1; i++ {
		r.set(i, r.at(i+1))
	}
	r.set(r.n-1, nil)
	r.n--
	if r.n == 0 {
		r.head = 0
	}
}

// grow doubles capacity (16 minimum), unwrapping the ring to the
// front of the new buffer.
func (r *opRing) grow() {
	nc := 16
	if len(r.buf) > 0 {
		nc = len(r.buf) * 2
	}
	nb := make([]*sendOp, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}
