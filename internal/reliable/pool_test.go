package reliable

import (
	"fmt"
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

// waitPoolDrained polls until the channel's packet pool counters
// converge (acquired == recycled) or the deadline passes, returning
// the final gap.
func waitPoolDrained(c *Channel, d time.Duration) (acquired, recycled uint64) {
	deadline := time.Now().Add(d)
	for {
		st := c.Stats()
		if st.PacketsAcquired == st.PacketsRecycled || time.Now().After(deadline) {
			return st.PacketsAcquired, st.PacketsRecycled
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPacketPoolRecycles pins the pooled inbound lifecycle: when the
// consumer releases every received packet, the receiver's pool
// counters converge — every acquired packet went back.
func TestPacketPoolRecycles(t *testing.T) {
	sw := transport.NewSwitch()
	defer sw.Close()
	ta, err := sw.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sw.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	a := New(ta, Config{RetryTimeout: 20 * time.Millisecond})
	b := New(tb, Config{RetryTimeout: 20 * time.Millisecond})
	defer a.Close()
	defer b.Close()

	const n = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			pkt, err := b.Recv()
			if err != nil {
				done <- err
				return
			}
			if string(pkt.Payload) != fmt.Sprintf("payload-%d", pkt.Seq-1) {
				done <- fmt.Errorf("payload mismatch at seq %d", pkt.Seq)
				pkt.Release()
				return
			}
			pkt.Release()
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if err := a.Send(b.LocalID(), wire.PktEvent, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	acq, rec := waitPoolDrained(b, 2*time.Second)
	if acq == 0 {
		t.Fatal("receiver pool acquired nothing; pooled decode not in the receive path")
	}
	if acq != rec {
		t.Fatalf("receiver pool leak: acquired %d, recycled %d", acq, rec)
	}
	// The sender's pool handles inbound acks, all released internally.
	if acq, rec := waitPoolDrained(a, 2*time.Second); acq != rec {
		t.Fatalf("sender pool leak on acks: acquired %d, recycled %d", acq, rec)
	}
}

// TestPacketPoolLeakDetection pins the observability contract: a
// consumer that drops packets without Release shows up as a lasting
// acquired/recycled gap of exactly the dropped count.
func TestPacketPoolLeakDetection(t *testing.T) {
	sw := transport.NewSwitch()
	defer sw.Close()
	ta, err := sw.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sw.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	a := New(ta, Config{RetryTimeout: 20 * time.Millisecond})
	b := New(tb, Config{RetryTimeout: 20 * time.Millisecond})
	defer a.Close()
	defer b.Close()

	const n = 50
	received := make(chan struct{})
	go func() {
		defer close(received)
		for i := 0; i < n; i++ {
			if _, err := b.Recv(); err != nil {
				return
			}
			// Leak deliberately: no Release.
		}
	}()
	for i := 0; i < n; i++ {
		if err := a.Send(b.LocalID(), wire.PktEvent, []byte("leak-me")); err != nil {
			t.Fatal(err)
		}
	}
	<-received

	// Settle, then confirm the gap persists and equals the leak.
	time.Sleep(100 * time.Millisecond)
	st := b.Stats()
	if got := st.PacketsAcquired - st.PacketsRecycled; got != n {
		t.Fatalf("leak gap = %d (acquired %d, recycled %d), want %d",
			got, st.PacketsAcquired, st.PacketsRecycled, n)
	}
}
