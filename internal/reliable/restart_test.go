package reliable

import (
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/transport"
)

// TestReceiverRestartMidWindow kills a receiver's process identity in
// the middle of a send window and restarts it (a fresh Channel on the
// same transport ID — the chaos harness's kill-restart action seen
// from the reliable layer). The restarted receiver has no memory of
// the stream, so its acks regress below the sender's window base; the
// sender must detect the unfillable gap, restart the stream under a
// fresh epoch, and deliver the in-flight tail to the new incarnation
// exactly once, in order — no give-up, no explicit Forget required.
func TestReceiverRestartMidWindow(t *testing.T) {
	sw := transport.NewSwitch()
	defer sw.Close()

	senderTr, err := sw.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	recvID := ident.New(2)
	recvTr, err := sw.Attach(recvID)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		RetryTimeout:    10 * time.Millisecond,
		MaxRetryTimeout: 40 * time.Millisecond,
		MaxRetries:      6,
		Window:          16,
	}
	sender := New(senderTr, cfg)
	defer sender.Close()
	recv := New(recvTr, cfg)

	// Phase 1: a healthy prefix of the window, fully acknowledged.
	const prefix = 8
	for i := 0; i < prefix; i++ {
		if err := sender.Send(recvID, 100, []byte{byte(i)}); err != nil {
			t.Fatalf("prefix send %d: %v", i, err)
		}
		pkt, err := recv.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("prefix recv %d: %v", i, err)
		}
		if got := pkt.Payload[0]; got != byte(i) {
			t.Fatalf("prefix recv %d: payload %d", i, got)
		}
		pkt.Release()
	}

	// Phase 2: partition the receiver, then fill the rest of the
	// window. These sends are transmitted but never acknowledged.
	sw.SetDeliveryHook(func(from, to ident.ID, data []byte) (bool, time.Duration) {
		return to == recvID, 0
	})
	comps := make([]*Completion, 0, prefix)
	for i := prefix; i < 2*prefix; i++ {
		comps = append(comps, sender.SendAsync(recvID, 100, []byte{byte(i)}))
	}

	// Phase 3: the receiver process dies mid-window and restarts under
	// the same identity — close the old channel (and transport), attach
	// a fresh endpoint on the same ID, heal the partition.
	if err := recv.Close(); err != nil {
		t.Fatalf("receiver close: %v", err)
	}
	recvTr2, err := sw.Attach(recvID)
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	recv2 := New(recvTr2, cfg)
	defer recv2.Close()
	sw.SetDeliveryHook(nil)

	// The restarted receiver has no memory of sequences 1..prefix, so
	// the in-flight tail (seqs prefix+1..) parks behind a gap only a
	// stream reset can fill. The sender must detect the regressed acks
	// and converge: every in-flight send delivered, none failed.
	for i, comp := range comps {
		if err := comp.Wait(); err != nil {
			t.Fatalf("in-flight send %d: want recovery, got %v", i, err)
		}
		comp.Recycle()
	}
	st := sender.Stats()
	if st.Failures != 0 {
		t.Fatalf("failures = %d, want 0 (stream should reset, not give up)", st.Failures)
	}
	if st.StreamResets == 0 {
		t.Fatal("no stream reset recorded despite receiver restart")
	}

	// The tail continues on the same stream — still exactly once, in
	// order, with no stale old-epoch packets mixed in.
	const tail = 12
	for i := 0; i < tail; i++ {
		if err := sender.Send(recvID, 100, []byte{0x40 + byte(i)}); err != nil {
			t.Fatalf("post-restart send %d: %v", i, err)
		}
	}

	seen := make(map[byte]int)
	var order []byte
	for len(order) < prefix+tail {
		pkt, err := recv2.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("after %d post-restart deliveries: %v", len(order), err)
		}
		b := pkt.Payload[0]
		pkt.Release()
		seen[b]++
		order = append(order, b)
	}
	want := make([]byte, 0, prefix+tail)
	for i := prefix; i < 2*prefix; i++ {
		want = append(want, byte(i))
	}
	for i := 0; i < tail; i++ {
		want = append(want, 0x40+byte(i))
	}
	for i, b := range order {
		if b != want[i] {
			t.Fatalf("post-restart FIFO violated at %d: got %v want %v", i, order, want)
		}
	}
	for b, n := range seen {
		if n != 1 {
			t.Fatalf("payload %#x delivered %d times", b, n)
		}
	}
	// And nothing further arrives (no duplicate stragglers).
	if pkt, err := recv2.RecvTimeout(150 * time.Millisecond); err == nil {
		t.Fatalf("unexpected extra delivery %v", pkt.Payload)
	}
}

// TestSenderRestartStaleReceiver is the inverse restart: the sender's
// process identity dies and comes back on the same transport ID while
// the receiver keeps cumulative state for the previous incarnation.
// Without detection the receiver silently drops the fresh stream's low
// sequence numbers as duplicates while its stale cumulative ack
// settles them as delivered — a success-reporting blackhole. The new
// incarnation must notice acks covering sequences it never sent, reset
// its stream, and get every payload delivered for real.
func TestSenderRestartStaleReceiver(t *testing.T) {
	sw := transport.NewSwitch()
	defer sw.Close()

	senderID := ident.New(1)
	senderTr, err := sw.Attach(senderID)
	if err != nil {
		t.Fatal(err)
	}
	recvID := ident.New(2)
	recvTr, err := sw.Attach(recvID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		RetryTimeout:    10 * time.Millisecond,
		MaxRetryTimeout: 40 * time.Millisecond,
		MaxRetries:      6,
		Window:          8,
	}
	sender := New(senderTr, cfg)
	recv := New(recvTr, cfg)
	defer recv.Close()

	// Incarnation one delivers a healthy prefix, advancing the
	// receiver's cumulative state well past the next incarnation's
	// opening sequence numbers.
	const prefix = 5
	for i := 0; i < prefix; i++ {
		if err := sender.Send(recvID, 100, []byte{byte(i)}); err != nil {
			t.Fatalf("incarnation-one send %d: %v", i, err)
		}
		pkt, err := recv.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("incarnation-one recv %d: %v", i, err)
		}
		pkt.Release()
	}

	// The sender process dies and restarts under the same identity.
	if err := sender.Close(); err != nil {
		t.Fatal(err)
	}
	senderTr2, err := sw.Attach(senderID)
	if err != nil {
		t.Fatal(err)
	}
	sender2 := New(senderTr2, cfg)
	defer sender2.Close()

	// Incarnation two's sends start over at seq 1 — straight into the
	// receiver's stale dup-drop range. Each must nonetheless be
	// delivered (not just falsely acked) within the retry budget.
	const n = 6
	for i := 0; i < n; i++ {
		if err := sender2.Send(recvID, 100, []byte{0x80 + byte(i)}); err != nil {
			t.Fatalf("incarnation-two send %d: %v", i, err)
		}
	}
	got := make([]byte, 0, n)
	for len(got) < n {
		pkt, err := recv.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("after %d incarnation-two deliveries: %v (stale-state blackhole?)", len(got), err)
		}
		got = append(got, pkt.Payload[0])
		pkt.Release()
	}
	for i, b := range got {
		if b != 0x80+byte(i) {
			t.Fatalf("incarnation-two delivery order %v", got)
		}
	}
	if pkt, err := recv.RecvTimeout(150 * time.Millisecond); err == nil {
		t.Fatalf("duplicate delivery %v", pkt.Payload)
	}
	if st := sender2.Stats(); st.StreamResets == 0 {
		t.Fatal("incarnation two never reset its stream")
	}
}

// TestSenderRestartStaleReceiverAdvancedEpoch hardens the same restart
// against receiver state parked on a later epoch than the fresh
// incarnation has ever used: the receiver drops the epoch-0 data as
// stale, but must answer with its actual position so the sender can
// adopt the epoch, reset past it, and converge.
func TestSenderRestartStaleReceiverAdvancedEpoch(t *testing.T) {
	sw := transport.NewSwitch()
	defer sw.Close()

	senderID := ident.New(1)
	senderTr, err := sw.Attach(senderID)
	if err != nil {
		t.Fatal(err)
	}
	recvID := ident.New(2)
	recvTr, err := sw.Attach(recvID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		RetryTimeout:    5 * time.Millisecond,
		MaxRetryTimeout: 20 * time.Millisecond,
		MaxRetries:      3,
		Window:          8,
	}
	sender := New(senderTr, cfg)
	recv := New(recvTr, cfg)
	defer recv.Close()

	// Drive incarnation one through two give-up/divergent-resend
	// cycles so its outbound epoch advances, then deliver for real so
	// the receiver's state adopts the later epoch with cum > 0.
	for cycle := 0; cycle < 2; cycle++ {
		sw.SetDeliveryHook(func(from, to ident.ID, data []byte) (bool, time.Duration) {
			return to == recvID, 0
		})
		comp := sender.SendAsync(recvID, 100, []byte{0x10 + byte(cycle)})
		if err := comp.Wait(); !errors.Is(err, ErrGaveUp) {
			t.Fatalf("cycle %d: want ErrGaveUp, got %v", cycle, err)
		}
		comp.Recycle()
		sw.SetDeliveryHook(nil)
		// A divergent payload abandons the stash and bumps the epoch.
		if err := sender.Send(recvID, 100, []byte{0x20 + byte(cycle)}); err != nil {
			t.Fatalf("cycle %d divergent send: %v", cycle, err)
		}
		pkt, err := recv.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("cycle %d recv: %v", cycle, err)
		}
		pkt.Release()
	}
	if st := sender.Stats(); st.StreamResets < 2 {
		t.Fatalf("setup did not advance the epoch: %+v", st)
	}

	// Restart the sender identity; its fresh stream reopens at epoch 0
	// against receiver state parked on a later epoch.
	if err := sender.Close(); err != nil {
		t.Fatal(err)
	}
	senderTr2, err := sw.Attach(senderID)
	if err != nil {
		t.Fatal(err)
	}
	sender2 := New(senderTr2, cfg)
	defer sender2.Close()

	const n = 4
	for i := 0; i < n; i++ {
		if err := sender2.Send(recvID, 100, []byte{0x80 + byte(i)}); err != nil {
			t.Fatalf("incarnation-two send %d: %v", i, err)
		}
	}
	got := make([]byte, 0, n)
	for len(got) < n {
		pkt, err := recv.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("after %d deliveries: %v (stale-epoch blackhole?)", len(got), err)
		}
		got = append(got, pkt.Payload[0])
		pkt.Release()
	}
	for i, b := range got {
		if b != 0x80+byte(i) {
			t.Fatalf("delivery order %v", got)
		}
	}
	if pkt, err := recv.RecvTimeout(150 * time.Millisecond); err == nil {
		t.Fatalf("duplicate delivery %v", pkt.Payload)
	}
}

// TestReceiverRestartResumeNoDuplicate drives the resume stash across
// a receiver restart: sends that failed with ErrGaveUp while the
// receiver was down are retried by the application with identical
// payloads after Forget. Within the new stream each payload must be
// delivered exactly once — the resume path must not combine with the
// epoch reset to double-deliver.
func TestReceiverRestartResumeNoDuplicate(t *testing.T) {
	sw := transport.NewSwitch()
	defer sw.Close()

	senderTr, err := sw.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	recvID := ident.New(2)
	recvTr, err := sw.Attach(recvID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		RetryTimeout:    10 * time.Millisecond,
		MaxRetryTimeout: 40 * time.Millisecond,
		MaxRetries:      3,
		Window:          8,
	}
	sender := New(senderTr, cfg)
	defer sender.Close()
	recv := New(recvTr, cfg)

	// Black hole from the start: every send fails.
	sw.SetDeliveryHook(func(from, to ident.ID, data []byte) (bool, time.Duration) {
		return to == recvID, 0
	})
	const n = 6
	for i := 0; i < n; i++ {
		comp := sender.SendAsync(recvID, 100, []byte{byte(i)})
		if err := comp.Wait(); !errors.Is(err, ErrGaveUp) {
			t.Fatalf("send %d: want ErrGaveUp, got %v", i, err)
		}
		comp.Recycle()
	}

	// Receiver identity restarts; sender forgets it (dropping the
	// stash — a restarted receiver has no stream to resume into).
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}
	recvTr2, err := sw.Attach(recvID)
	if err != nil {
		t.Fatal(err)
	}
	recv2 := New(recvTr2, cfg)
	defer recv2.Close()
	sw.SetDeliveryHook(nil)
	sender.Forget(recvID)

	// Application-level retry with identical payloads. The stash is
	// gone, so these are fresh sequences under the post-Forget epoch.
	for i := 0; i < n; i++ {
		if err := sender.Send(recvID, 100, []byte{byte(i)}); err != nil {
			t.Fatalf("retry send %d: %v", i, err)
		}
	}
	got := make([]byte, 0, n)
	for len(got) < n {
		pkt, err := recv2.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("after %d deliveries: %v", len(got), err)
		}
		got = append(got, pkt.Payload[0])
		pkt.Release()
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("delivery order %v", got)
		}
	}
	if pkt, err := recv2.RecvTimeout(150 * time.Millisecond); err == nil {
		t.Fatalf("duplicate delivery %v", pkt.Payload)
	}
	if st := sender.Stats(); st.Resumed != 0 {
		t.Fatalf("resume stash used across Forget: %+v", st)
	}
}

// TestDrainWaitsForAcks pins the graceful-shutdown surface: Drain
// returns only after every queued send has resolved, and reports
// ErrDrainTimeout when the destination never acknowledges.
func TestDrainWaitsForAcks(t *testing.T) {
	sw := transport.NewSwitch()
	defer sw.Close()
	senderTr, err := sw.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	recvID := ident.New(2)
	recvTr, err := sw.Attach(recvID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		RetryTimeout:    10 * time.Millisecond,
		MaxRetryTimeout: 40 * time.Millisecond,
		MaxRetries:      3,
		Window:          4,
	}
	sender := New(senderTr, cfg)
	defer sender.Close()
	recv := New(recvTr, cfg)
	defer recv.Close()

	// Delay delivery so sends are pending when Drain starts.
	sw.SetDeliveryHook(func(from, to ident.ID, data []byte) (bool, time.Duration) {
		if to == recvID {
			return false, 30 * time.Millisecond
		}
		return false, 0
	})
	comps := make([]*Completion, 0, 4)
	for i := 0; i < 4; i++ {
		comps = append(comps, sender.SendAsync(recvID, 100, []byte{byte(i)}))
	}
	if sender.Pending() == 0 {
		t.Fatal("sends resolved before drain could observe them")
	}
	if err := sender.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := sender.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d", got)
	}
	for _, c := range comps {
		if err := c.Wait(); err != nil {
			t.Fatalf("send failed despite drain success: %v", err)
		}
		c.Recycle()
	}
	for i := 0; i < 4; i++ {
		pkt, err := recv.RecvTimeout(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		pkt.Release()
	}

	// Black-holed destination: Drain must give up with ErrDrainTimeout
	// once it is clear the queue cannot empty in time.
	sw.SetDeliveryHook(func(from, to ident.ID, data []byte) (bool, time.Duration) {
		return to == recvID, 0
	})
	comp := sender.SendAsync(recvID, 100, []byte{0xFF})
	err = sender.Drain(20 * time.Millisecond)
	if err != nil && !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("want ErrDrainTimeout, got %v", err)
	}
	// err == nil is also acceptable here if the retry budget failed the
	// send before the drain deadline; either way the queue must empty
	// once the budget lapses.
	_ = comp.Wait()
	comp.Recycle()
	if err := sender.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain after give-up: %v", err)
	}
}
