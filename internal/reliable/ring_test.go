package reliable

import (
	"math/rand"
	"testing"
)

// TestOpRingWraparound drives the ring through growth and many
// push/pop cycles so the head wraps the underlying buffer repeatedly,
// checking FIFO order against a reference slice the whole way.
func TestOpRingWraparound(t *testing.T) {
	var r opRing
	var want []uint64
	next := uint64(0)
	rng := rand.New(rand.NewSource(1))

	check := func() {
		t.Helper()
		if r.len() != len(want) {
			t.Fatalf("len %d, want %d", r.len(), len(want))
		}
		for i, seq := range want {
			if got := r.at(i).seq; got != seq {
				t.Fatalf("at(%d) = seq %d, want %d", i, got, seq)
			}
		}
	}

	// Phased push/pop with uneven sizes: the head position drifts and
	// wraps many times across growth boundaries (16 → 32 → 64).
	for round := 0; round < 200; round++ {
		pushes := rng.Intn(8)
		for i := 0; i < pushes; i++ {
			next++
			r.push(&sendOp{seq: next})
			want = append(want, next)
		}
		pops := rng.Intn(8)
		for i := 0; i < pops && len(want) > 0; i++ {
			op := r.popFront()
			if op.seq != want[0] {
				t.Fatalf("popFront seq %d, want %d", op.seq, want[0])
			}
			want = want[1:]
		}
		check()
	}

	// Mid-queue removal (the ErrTooLarge path) across the wrap point.
	for len(want) < 20 {
		next++
		r.push(&sendOp{seq: next})
		want = append(want, next)
	}
	for i := 0; i < 10; i++ {
		idx := rng.Intn(len(want))
		r.removeAt(idx)
		want = append(want[:idx], want[idx+1:]...)
		check()
	}

	// Drain to empty: the head resets so a long-idle ring reuses its
	// buffer from the front.
	for len(want) > 0 {
		r.popFront()
		want = want[1:]
	}
	check()
	if r.head != 0 {
		t.Fatalf("head %d after drain, want 0", r.head)
	}
	// Vacated slots must not pin ops.
	for i, op := range r.buf {
		if op != nil {
			t.Fatalf("slot %d still holds an op after drain", i)
		}
	}
}

// TestOpRingGrowUnwraps pins the growth path when the live region
// wraps: a ring with head near the end must copy out in FIFO order.
func TestOpRingGrowUnwraps(t *testing.T) {
	var r opRing
	// Fill the initial 16 slots, pop 12 so head=12, then push 12 more:
	// the live region wraps [12..16)+[0..12). One more push grows.
	for i := uint64(1); i <= 16; i++ {
		r.push(&sendOp{seq: i})
	}
	for i := 0; i < 12; i++ {
		r.popFront()
	}
	for i := uint64(17); i <= 28; i++ {
		r.push(&sendOp{seq: i})
	}
	r.push(&sendOp{seq: 29}) // grow 16 → 32 with wrapped contents
	if r.len() != 17 {
		t.Fatalf("len %d, want 17", r.len())
	}
	for i := 0; i < 17; i++ {
		if got, wantSeq := r.at(i).seq, uint64(13+i); got != wantSeq {
			t.Fatalf("at(%d) = seq %d, want %d", i, got, wantSeq)
		}
	}
}
