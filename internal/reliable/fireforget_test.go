package reliable

import (
	"testing"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/wire"
)

// TestSendFireForget: fire-and-forget sends get the full ARQ treatment
// — every packet arrives exactly once and in order over a lossy link —
// with no Completion anywhere.
func TestSendFireForget(t *testing.T) {
	n := netsim.New(netsim.Profile{
		Name:    "ff-lossy",
		Latency: 200 * time.Microsecond,
		Loss:    0.1,
	}, netsim.WithSeed(23))
	defer n.Close()
	ta, err := n.Attach(ident.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := n.Attach(ident.New(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{RetryTimeout: 10 * time.Millisecond, MaxRetries: 30, Window: 8}
	a, b := New(ta, cfg), New(tb, cfg)
	defer a.Close()
	defer b.Close()

	const count = 40
	for i := 0; i < count; i++ {
		if err := a.SendFireForget(tb.LocalID(), wire.PktEvent, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		pkt, err := b.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if pkt.Seq != uint64(i+1) || pkt.Payload[0] != byte(i) {
			t.Fatalf("recv %d: got seq=%d payload=%d", i, pkt.Seq, pkt.Payload[0])
		}
		pkt.Release()
	}

	// All acknowledged, observable only through Stats.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Acked < count {
		if time.Now().After(deadline) {
			t.Fatalf("acked %d of %d", a.Stats().Acked, count)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := a.SendFireForget(ident.Broadcast, wire.PktEvent, nil); err == nil {
		t.Fatal("broadcast fire-and-forget should fail immediately")
	}
}

// TestCompletionRecycle: Recycle after Wait is safe, double Recycle is
// a no-op, and recycling an unresolved completion leaves it usable.
func TestCompletionRecycle(t *testing.T) {
	n := netsim.New(netsim.Perfect, netsim.WithSeed(29))
	defer n.Close()
	ta, _ := n.Attach(ident.New(1))
	tb, _ := n.Attach(ident.New(2))
	cfg := Config{RetryTimeout: 10 * time.Millisecond, MaxRetries: 10, Window: 4}
	a, b := New(ta, cfg), New(tb, cfg)
	defer a.Close()
	defer b.Close()
	go func() {
		for {
			pkt, err := b.Recv()
			if err != nil {
				return
			}
			pkt.Release()
		}
	}()

	for i := 0; i < 64; i++ {
		comp := a.SendAsync(tb.LocalID(), wire.PktEvent, []byte("recycle"))
		if err := comp.Wait(); err != nil {
			t.Fatal(err)
		}
		comp.Recycle()
		comp.Recycle() // second recycle of the same handle: no-op
	}

	// Recycling an unresolved completion must not corrupt it: isolate
	// the destination so the send stays in flight, try to recycle,
	// then let it resolve.
	n.Isolate(tb.LocalID())
	comp := a.SendAsync(tb.LocalID(), wire.PktEvent, []byte("pending"))
	comp.Recycle() // no-op: unresolved
	n.Restore(tb.LocalID())
	if err := comp.Wait(); err != nil {
		t.Fatalf("send after restore: %v", err)
	}
	comp.Recycle()
}
