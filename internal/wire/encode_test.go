package wire

import (
	"math/rand"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

func sampleEvent() *event.Event {
	e := event.NewTyped("reading").
		SetInt("i", -42).
		SetFloat("f", 3.1415).
		SetStr("s", "text value").
		SetBool("b", true).
		SetBytes("raw", []byte{0, 1, 2, 254, 255})
	e.Sender = ident.New(0xABCDEF)
	e.Seq = 77
	e.Stamp = time.Unix(1718000000, 123456789)
	return e
}

func TestEventRoundTrip(t *testing.T) {
	e := sampleEvent()
	buf := EncodeEvent(e)
	got, err := DecodeEvent(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Equal(e) {
		t.Errorf("roundtrip mismatch:\n got %s\nwant %s", got, e)
	}
	if !got.Stamp.Equal(e.Stamp) {
		t.Errorf("stamp = %v, want %v", got.Stamp, e.Stamp)
	}
	if got.Sender != e.Sender || got.Seq != e.Seq {
		t.Errorf("origin = %s/%d, want %s/%d", got.Sender, got.Seq, e.Sender, e.Seq)
	}
}

func TestEmptyEventRoundTrip(t *testing.T) {
	e := event.New()
	e.Stamp = time.Unix(0, 0)
	got, err := DecodeEvent(EncodeEvent(e))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("Len = %d", got.Len())
	}
}

func TestEventDecodeTruncation(t *testing.T) {
	buf := EncodeEvent(sampleEvent())
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeEvent(buf[:i]); err == nil {
			t.Fatalf("truncated event at %d accepted", i)
		}
	}
}

func TestEventDecodeTrailingBytes(t *testing.T) {
	buf := append(EncodeEvent(sampleEvent()), 0x00)
	if _, err := DecodeEvent(buf); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestEventDecodeRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(100))
		rng.Read(buf)
		_, _ = DecodeEvent(buf) // must not panic
	}
}

func sampleFilter() *event.Filter {
	return event.NewFilter().
		WhereType("reading").
		Where("value", event.OpGt, event.Float(99.5)).
		Where("unit", event.OpPrefix, event.Str("b")).
		Where("seq", event.OpExists, event.Value{}).
		Where("ok", event.OpEq, event.Bool(true)).
		Where("raw", event.OpEq, event.Bytes([]byte{9, 8}))
}

func TestFilterRoundTrip(t *testing.T) {
	f := sampleFilter()
	got, err := DecodeFilter(EncodeFilter(f))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Equal(f) {
		t.Errorf("roundtrip mismatch:\n got %s\nwant %s", got, f)
	}
}

func TestEmptyFilterRoundTrip(t *testing.T) {
	got, err := DecodeFilter(EncodeFilter(event.NewFilter()))
	if err != nil || got.Len() != 0 {
		t.Errorf("empty filter roundtrip: %v %v", got, err)
	}
}

func TestFilterDecodeTruncation(t *testing.T) {
	buf := EncodeFilter(sampleFilter())
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeFilter(buf[:i]); err == nil {
			t.Fatalf("truncated filter at %d accepted", i)
		}
	}
}

func TestFilterDecodeRejectsInvalidOp(t *testing.T) {
	f := event.NewFilter().Where("x", event.OpEq, event.Int(1))
	buf := EncodeFilter(f)
	// The op byte follows the 2-byte count and the name ("x" = uvarint
	// len 1 + 'x'): offset 2+2.
	buf[4] = 200
	if _, err := DecodeFilter(buf); err == nil {
		t.Error("invalid op accepted")
	}
}

func TestValueEncodingAllTypes(t *testing.T) {
	values := []event.Value{
		event.Int(0), event.Int(-1), event.Int(1 << 62),
		event.Float(0), event.Float(-2.75),
		event.Str(""), event.Str("héllo"),
		event.Bool(true), event.Bool(false),
		event.Bytes(nil), event.Bytes([]byte{1}),
	}
	for _, v := range values {
		e := event.New().Set("v", v)
		got, err := DecodeEvent(EncodeEvent(e))
		if err != nil {
			t.Fatalf("decode %s: %v", v, err)
		}
		gv, ok := got.Get("v")
		if !ok || !gv.Equal(v) {
			t.Errorf("value %s roundtripped to %s", v, gv)
		}
	}
}

func TestControlRoundTrips(t *testing.T) {
	b := Beacon{Cell: "ward-3", Epoch: 9}
	gb, err := DecodeBeacon(AppendBeacon(nil, b))
	if err != nil || gb != b {
		t.Errorf("beacon roundtrip: %+v %v", gb, err)
	}

	jr := JoinRequest{DeviceType: "hr-sensor", DeviceName: "hr-1", Auth: []byte{1, 2, 3}}
	gjr, err := DecodeJoinRequest(AppendJoinRequest(nil, jr))
	if err != nil || gjr.DeviceType != jr.DeviceType || gjr.DeviceName != jr.DeviceName ||
		string(gjr.Auth) != string(jr.Auth) {
		t.Errorf("join request roundtrip: %+v %v", gjr, err)
	}

	ja := JoinAccept{Cell: "ward-3", Bus: ident.New(42), LeaseMillis: 2000, GraceMillis: 3000}
	gja, err := DecodeJoinAccept(AppendJoinAccept(nil, ja))
	if err != nil || gja != ja {
		t.Errorf("join accept roundtrip: %+v %v", gja, err)
	}

	rej := JoinReject{Reason: "authentication failed"}
	grej, err := DecodeJoinReject(AppendJoinReject(nil, rej))
	if err != nil || grej != rej {
		t.Errorf("join reject roundtrip: %+v %v", grej, err)
	}
}

func TestControlDecodeTruncation(t *testing.T) {
	bufs := [][]byte{
		AppendBeacon(nil, Beacon{Cell: "c", Epoch: 1}),
		AppendJoinRequest(nil, JoinRequest{DeviceType: "t", DeviceName: "n", Auth: []byte{1}}),
		AppendJoinAccept(nil, JoinAccept{Cell: "c", Bus: 1, LeaseMillis: 1, GraceMillis: 1}),
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := DecodeBeacon(b); return err },
		func(b []byte) error { _, err := DecodeJoinRequest(b); return err },
		func(b []byte) error { _, err := DecodeJoinAccept(b); return err },
	}
	for k, buf := range bufs {
		for i := 0; i < len(buf); i++ {
			if err := decoders[k](buf[:i]); err == nil {
				t.Fatalf("decoder %d accepted truncation at %d", k, i)
			}
		}
	}
}
