// Package wire defines the binary packet format carried by the generic
// transport layer.
//
// The paper's transport layer (§III-D) deliberately exchanges raw byte
// arrays, avoiding Java serialisation so that devices written in other
// languages can participate. This package is the single place where SMC
// structures (events, filters, control messages) are converted to and
// from those byte arrays.
//
// Packet layout (big endian):
//
//	offset  size  field
//	0       2     magic "SM"
//	2       1     version (currently 1)
//	3       1     packet type
//	4       1     flags
//	5       1     stream epoch (0 before any outbound stream reset)
//	6       6     sender ID (48 bits)
//	12      8     sequence number
//	20      4     payload length
//	24      n     payload
//	24+n    4     CRC-32 (IEEE) over bytes [0, 24+n)
//
// A PktEvent packet whose FlagBatch flag bit is set carries, instead of
// one bare event encoding, the batch payload documented in batch.go: a
// 10-byte prologue (optional piggybacked cumulative ack) followed by
// length-prefixed event frames, each frame byte-identical to the
// standalone encoding of that event.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/amuse/smc/internal/ident"
)

// PacketType discriminates the payload carried by a packet.
type PacketType byte

// Packet types used by the SMC core.
const (
	PktInvalid PacketType = iota
	// PktEvent carries one encoded event.
	PktEvent
	// PktAck acknowledges receipt of the packet with the echoed
	// sequence number from the echoed sender.
	PktAck
	// PktSubscribe carries an encoded filter to install.
	PktSubscribe
	// PktUnsubscribe carries an encoded filter to remove.
	PktUnsubscribe
	// PktBeacon is a discovery broadcast announcing a service.
	PktBeacon
	// PktJoinRequest asks for admission to the cell.
	PktJoinRequest
	// PktJoinAccept grants admission.
	PktJoinReject
	// PktJoinAccept grants admission.
	PktJoinAccept
	// PktLeave announces a voluntary departure.
	PktLeave
	// PktHeartbeat refreshes a membership lease.
	PktHeartbeat
	// PktQuench tells a publisher that no subscriber currently
	// matches (power saving, §VI).
	PktQuench
	// PktUnquench tells a publisher that matching subscribers exist
	// again.
	PktUnquench
	// PktData carries raw device bytes (sensor native encoding) for a
	// proxy to translate (§III-B).
	PktData
	// PktStatsRequest asks a discovery service for a cell health
	// snapshot (management/observation plane; no admission required).
	PktStatsRequest
	// PktStatsResponse answers a PktStatsRequest with an encoded
	// CellStats payload.
	PktStatsResponse
	// PktDurableResume binds the sending member to a named durable
	// consumer and asks the bus to replay the log from a position
	// (durable.go). Sent right after admission, before any subscribe.
	PktDurableResume
	// PktDurableAck answers a PktDurableResume with the log epoch and
	// the cursor replay starts after; it always precedes the first
	// durable delivery on the member's stream.
	PktDurableAck
	// PktEventDurable carries one durable delivery: an 8-byte log
	// cursor followed by the unchanged single-event encoding — the
	// same strict layering over the frozen format as FlagBatch.
	PktEventDurable
)

// String names the packet type.
func (t PacketType) String() string {
	switch t {
	case PktEvent:
		return "event"
	case PktAck:
		return "ack"
	case PktSubscribe:
		return "subscribe"
	case PktUnsubscribe:
		return "unsubscribe"
	case PktBeacon:
		return "beacon"
	case PktJoinRequest:
		return "join-request"
	case PktJoinReject:
		return "join-reject"
	case PktJoinAccept:
		return "join-accept"
	case PktLeave:
		return "leave"
	case PktHeartbeat:
		return "heartbeat"
	case PktQuench:
		return "quench"
	case PktUnquench:
		return "unquench"
	case PktData:
		return "data"
	case PktStatsRequest:
		return "stats-request"
	case PktStatsResponse:
		return "stats-response"
	case PktDurableResume:
		return "durable-resume"
	case PktDurableAck:
		return "durable-ack"
	case PktEventDurable:
		return "event-durable"
	default:
		return "invalid"
	}
}

// Flag bits.
const (
	// FlagNoAck marks packets the receiver must not acknowledge
	// (e.g. periodic sensor data whose proxy absorbs acks, §III-B).
	FlagNoAck byte = 1 << iota
	// FlagRetransmit marks a retransmitted packet.
	FlagRetransmit
	// FlagCumAck marks a PktAck whose Seq is cumulative: it
	// acknowledges every packet of the echoed epoch up to and
	// including Seq, not just the one packet carrying that number.
	FlagCumAck

	// FlagBatch (1 << 3) marks a PktEvent carrying a batch of event
	// frames; it is defined in batch.go next to the batch framing
	// layout it governs.
)

// Version is the current wire format version.
const Version byte = 1

// HeaderLen is the fixed header size in bytes.
const HeaderLen = 24

// TrailerLen is the CRC trailer size in bytes.
const TrailerLen = 4

// MaxPayload bounds a packet payload, keeping datagrams bounded for the
// constrained target platform.
const MaxPayload = 256 * 1024

var (
	// ErrShortPacket reports a truncated packet.
	ErrShortPacket = errors.New("wire: short packet")
	// ErrBadMagic reports a packet without the SM magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion reports an unsupported wire version.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrBadChecksum reports a CRC mismatch (corrupted packet).
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	// ErrPayloadTooLarge reports a payload above MaxPayload.
	ErrPayloadTooLarge = errors.New("wire: payload too large")
)

var magic = [2]byte{'S', 'M'}

// Packet is a decoded transport packet.
type Packet struct {
	Type  PacketType
	Flags byte
	// Epoch numbers the sender's outbound reliable stream to this
	// destination. It starts at 0 and is bumped when the sender
	// abandons unacknowledged packets and restarts its sequence
	// numbers (see package reliable); a receiver seeing a newer epoch
	// resets its per-sender ordering state. Byte 5 of the header was
	// reserved-zero before this field existed, so epoch-0 packets are
	// byte-identical to the original format.
	Epoch   byte
	Sender  ident.ID
	Seq     uint64
	Payload []byte

	// Pooled lifecycle (see PacketPool). pool is nil for packets built
	// by hand or by the plain Unmarshal, making Retain/Release no-ops
	// for them. buf is the packet-owned payload buffer a pooled decode
	// copies into; it survives recycling so steady-state receive pays
	// no per-packet allocation. refs is a plain int32 updated with
	// sync/atomic so Packet stays a plain-old-data struct.
	pool *PacketPool
	buf  []byte
	refs int32
}

// EncodedLen reports the encoded size of the packet.
func (p *Packet) EncodedLen() int {
	return HeaderLen + len(p.Payload) + TrailerLen
}

// Marshal encodes the packet, appending to dst (which may be nil) and
// returning the extended slice.
func (p *Packet) Marshal(dst []byte) ([]byte, error) {
	if len(p.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(p.Payload))
	}
	start := len(dst)
	need := p.EncodedLen()
	dst = append(dst, make([]byte, need)...)
	buf := dst[start:]
	buf[0], buf[1] = magic[0], magic[1]
	buf[2] = Version
	buf[3] = byte(p.Type)
	buf[4] = p.Flags
	buf[5] = p.Epoch
	putID48(buf[6:12], p.Sender)
	binary.BigEndian.PutUint64(buf[12:20], p.Seq)
	binary.BigEndian.PutUint32(buf[20:24], uint32(len(p.Payload)))
	copy(buf[HeaderLen:], p.Payload)
	sum := crc32.ChecksumIEEE(buf[:HeaderLen+len(p.Payload)])
	binary.BigEndian.PutUint32(buf[HeaderLen+len(p.Payload):], sum)
	return dst, nil
}

// MarshalBytes encodes the packet into a fresh slice.
func (p *Packet) MarshalBytes() ([]byte, error) {
	return p.Marshal(make([]byte, 0, p.EncodedLen()))
}

// Unmarshal decodes a packet from buf. The payload aliases buf; callers
// that retain the packet beyond the life of buf must copy it. For the
// allocation-free receive path see PacketPool.Unmarshal.
func Unmarshal(buf []byte) (*Packet, error) {
	p := &Packet{}
	if err := unmarshalInto(p, buf); err != nil {
		return nil, err
	}
	return p, nil
}

// unmarshalInto validates buf and fills p's header fields, leaving
// p.Payload aliasing buf. It allocates nothing.
func unmarshalInto(p *Packet, buf []byte) error {
	if len(buf) < HeaderLen+TrailerLen {
		return fmt.Errorf("%w: %d bytes", ErrShortPacket, len(buf))
	}
	if buf[0] != magic[0] || buf[1] != magic[1] {
		return ErrBadMagic
	}
	if buf[2] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	plen := int(binary.BigEndian.Uint32(buf[20:24]))
	if plen > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, plen)
	}
	total := HeaderLen + plen + TrailerLen
	if len(buf) < total {
		return fmt.Errorf("%w: have %d want %d", ErrShortPacket, len(buf), total)
	}
	want := binary.BigEndian.Uint32(buf[HeaderLen+plen : total])
	got := crc32.ChecksumIEEE(buf[:HeaderLen+plen])
	if want != got {
		return ErrBadChecksum
	}
	p.Type = PacketType(buf[3])
	p.Flags = buf[4]
	p.Epoch = buf[5]
	p.Sender = getID48(buf[6:12])
	p.Seq = binary.BigEndian.Uint64(buf[12:20])
	p.Payload = buf[HeaderLen : HeaderLen+plen]
	return nil
}

// PatchHeader rewrites the flags, epoch and sequence number of an
// already-marshalled packet in place and refreshes the CRC trailer.
// The reliability layer uses it to mark retransmissions and to
// renumber queued packets into a new epoch without re-encoding the
// payload (the point of pooling marshal buffers across retransmits).
func PatchHeader(buf []byte, flags, epoch byte, seq uint64) error {
	if len(buf) < HeaderLen+TrailerLen {
		return fmt.Errorf("%w: %d bytes", ErrShortPacket, len(buf))
	}
	buf[4] = flags
	buf[5] = epoch
	binary.BigEndian.PutUint64(buf[12:20], seq)
	body := buf[: len(buf)-TrailerLen : len(buf)]
	binary.BigEndian.PutUint32(buf[len(buf)-TrailerLen:], crc32.ChecksumIEEE(body))
	return nil
}

// ClonePayload replaces the payload with a private copy, detaching the
// packet from the decode buffer.
func (p *Packet) ClonePayload() {
	if p.Payload == nil {
		return
	}
	cp := make([]byte, len(p.Payload))
	copy(cp, p.Payload)
	p.Payload = cp
}

func putID48(dst []byte, id ident.ID) {
	v := uint64(id)
	dst[0] = byte(v >> 40)
	dst[1] = byte(v >> 32)
	dst[2] = byte(v >> 24)
	dst[3] = byte(v >> 16)
	dst[4] = byte(v >> 8)
	dst[5] = byte(v)
}

func getID48(src []byte) ident.ID {
	return ident.ID(uint64(src[0])<<40 | uint64(src[1])<<32 |
		uint64(src[2])<<24 | uint64(src[3])<<16 |
		uint64(src[4])<<8 | uint64(src[5]))
}

// String renders the packet for logs.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%s sender=%s epoch=%d seq=%d flags=%02x len=%d}",
		p.Type, p.Sender, p.Epoch, p.Seq, p.Flags, len(p.Payload))
}
