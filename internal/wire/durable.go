package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/amuse/smc/internal/event"
)

// Durable-subscription control payloads and the durable delivery
// framing. The framing follows the FlagBatch discipline: a durable
// delivery is a fixed 8-byte cursor prefix followed by the unchanged
// single-event encoding, so the frozen event format is layered under,
// never altered.

// DurableResume is the PktDurableResume payload: bind the sender to
// the named durable consumer and replay retained events after Cursor.
// Epoch identifies the log incarnation the cursor belongs to; a
// mismatch (including the fresh-consumer zero) makes the bus replay
// from the oldest retained event instead of trusting the cursor.
type DurableResume struct {
	Name   string
	Epoch  uint64
	Cursor uint64
}

// AppendDurableResume encodes a resume payload.
func AppendDurableResume(dst []byte, r DurableResume) []byte {
	dst = appendString(dst, r.Name)
	dst = appendUvarint(dst, r.Epoch)
	return appendUvarint(dst, r.Cursor)
}

// DecodeDurableResume decodes a resume payload.
func DecodeDurableResume(buf []byte) (DurableResume, error) {
	r := &reader{buf: buf}
	name, err := r.string()
	if err != nil {
		return DurableResume{}, err
	}
	epoch, err := r.uvarint()
	if err != nil {
		return DurableResume{}, err
	}
	cursor, err := r.uvarint()
	if err != nil {
		return DurableResume{}, err
	}
	if r.remaining() != 0 {
		return DurableResume{}, fmt.Errorf("%w: durable-resume trailing bytes", ErrBadEncoding)
	}
	return DurableResume{Name: name, Epoch: epoch, Cursor: cursor}, nil
}

// DurableAck is the PktDurableAck payload: the log epoch in force and
// the cursor replay resumes after (everything <= From is the client's
// dedup floor; deliveries always carry cursors > From).
type DurableAck struct {
	Epoch uint64
	From  uint64
}

// AppendDurableAck encodes a resume acknowledgement.
func AppendDurableAck(dst []byte, a DurableAck) []byte {
	dst = appendUvarint(dst, a.Epoch)
	return appendUvarint(dst, a.From)
}

// DecodeDurableAck decodes a resume acknowledgement.
func DecodeDurableAck(buf []byte) (DurableAck, error) {
	r := &reader{buf: buf}
	epoch, err := r.uvarint()
	if err != nil {
		return DurableAck{}, err
	}
	from, err := r.uvarint()
	if err != nil {
		return DurableAck{}, err
	}
	if r.remaining() != 0 {
		return DurableAck{}, fmt.Errorf("%w: durable-ack trailing bytes", ErrBadEncoding)
	}
	return DurableAck{Epoch: epoch, From: from}, nil
}

// DurableCursorLen is the fixed cursor prefix of a PktEventDurable
// payload.
const DurableCursorLen = 8

// AppendDurableEvent frames one durable delivery: cursor prefix, then
// the frozen single-event encoding.
func AppendDurableEvent(dst []byte, cursor uint64, e *event.Event) []byte {
	var tmp [DurableCursorLen]byte
	binary.BigEndian.PutUint64(tmp[:], cursor)
	dst = append(dst, tmp[:]...)
	return AppendEvent(dst, e)
}

// SplitDurableEvent splits a PktEventDurable payload into its cursor
// and the inner event encoding (which decodes with the standard event
// decoders, e.g. DecodeBatchFrameInto against the carrying packet).
func SplitDurableEvent(payload []byte) (cursor uint64, frame []byte, err error) {
	if len(payload) < DurableCursorLen {
		return 0, nil, fmt.Errorf("%w: durable event %d bytes", ErrTruncated, len(payload))
	}
	return binary.BigEndian.Uint64(payload[:DurableCursorLen]), payload[DurableCursorLen:], nil
}

// DecodeEventBacked decodes an event payload into e — which must be
// empty and pooled — borrowing against an arbitrary backing buffer
// owner instead of a packet: the durable log's segments implement
// event.Backing, so replayed events alias record bytes in place
// exactly like live traffic aliases inbound packets. The caller passes
// an already-retained reference; on a borrowing decode the event takes
// ownership of it (released with the event's storage) and bound
// reports true. When nothing was borrowed — or on error — bound is
// false and the caller still owns the reference.
func DecodeEventBacked(e *event.Event, payload []byte, b event.Backing) (bound bool, err error) {
	if e.Len() != 0 {
		return false, ErrDecodeTarget
	}
	borrowed, err := decodeEvent(e, payload, true)
	if err != nil {
		e.Clear()
		return false, err
	}
	if borrowed {
		if e.Pooled() && b != nil {
			e.Borrow(b)
			return true, nil
		}
		e.Borrow(nil)
	}
	return false, nil
}
