package wire

import "fmt"

// Cell health snapshot exchanged on the management plane
// (PktStatsRequest / PktStatsResponse): a one-shot, black-box view of
// a live cell — membership, bus activity, and the reliable channels'
// counters including the packet-pool leak check
// (PacketsAcquired/PacketsRecycled) — so an operator or a test harness
// can health- and leak-check a cell without attaching a debugger.

// ChannelCounters mirrors one reliable channel's Stats on the wire.
type ChannelCounters struct {
	Sent            uint64
	Acked           uint64
	Retransmits     uint64
	FastRetransmits uint64
	Failures        uint64
	Resumed         uint64
	StreamResets    uint64
	Received        uint64
	DupsDropped     uint64
	Buffered        uint64
	StaleAcks       uint64
	StaleEpoch      uint64
	UnreliableIn    uint64
	UnreliableOut   uint64
	PacketsAcquired uint64
	PacketsRecycled uint64
}

// Leaked reports the packet-pool gap: packets acquired but never
// recycled. On a quiesced channel this should be zero.
func (c ChannelCounters) Leaked() uint64 {
	if c.PacketsAcquired < c.PacketsRecycled {
		return 0
	}
	return c.PacketsAcquired - c.PacketsRecycled
}

// LogCounters mirrors the durable event log's Stats on the wire. A
// cell without a durable log reports Enabled=false and zeroes.
type LogCounters struct {
	Enabled          bool
	Epoch            uint64
	OldestCursor     uint64
	NewestCursor     uint64
	Events           uint64
	Bytes            uint64
	Segments         uint64
	Appended         uint64
	Evicted          uint64
	DupsDropped      uint64
	SegmentsAcquired uint64
	SegmentsRecycled uint64
}

// DurableCounters is one durable consumer's management-plane row.
type DurableCounters struct {
	// Name is the durable consumer name.
	Name string
	// Attached reports whether a member is currently bound to it.
	Attached bool
	// Delivered is the last cursor handed to the member's proxy.
	Delivered uint64
	// Lag is NewestCursor - Delivered: retained events not yet
	// dispatched to this consumer.
	Lag uint64
}

// FederationCounters is one federation link's management-plane row.
type FederationCounters struct {
	// Name identifies the link (the gateway device name in the remote
	// cell).
	Name string
	// RemoteCell is the cell being imported from.
	RemoteCell string
	// Connected reports whether the link currently holds a live
	// remote membership (false while the supervisor is reconnecting).
	Connected bool
	// Imported / Skipped / Dropped / Reconnects mirror the link's
	// counters: events republished locally, loop-prevention skips,
	// events abandoned after the bounded home-bus retry, and completed
	// reconnect cycles.
	Imported   uint64
	Skipped    uint64
	Dropped    uint64
	Reconnects uint64
	// ResumeEpoch / ResumeCursor are the link's last recorded resume
	// position in the remote cell's durable cursor space (zero when
	// the remote cell has no durable log).
	ResumeEpoch  uint64
	ResumeCursor uint64
}

// CellStats is the full management-plane snapshot of one cell.
type CellStats struct {
	// Cell is the cell's name.
	Cell string
	// Members is the discovery service's current member count.
	Members uint32
	// Bus activity counters (a subset of the bus's Stats).
	Published      uint64
	DeliveredLocal uint64
	EnqueuedRemote uint64
	Dropped        uint64
	Quenches       uint64
	AuthDenied     uint64
	// BusChannel / DiscChannel are the two reliable endpoints.
	BusChannel  ChannelCounters
	DiscChannel ChannelCounters
	// Log is the durable event log (zero value when disabled) and
	// Durables its per-consumer lag rows.
	Log      LogCounters
	Durables []DurableCounters
	// Federation holds one row per federation link importing into
	// this cell.
	Federation []FederationCounters
}

func appendChannelCounters(dst []byte, c ChannelCounters) []byte {
	for _, v := range [...]uint64{
		c.Sent, c.Acked, c.Retransmits, c.FastRetransmits, c.Failures,
		c.Resumed, c.StreamResets, c.Received, c.DupsDropped, c.Buffered,
		c.StaleAcks, c.StaleEpoch, c.UnreliableIn, c.UnreliableOut,
		c.PacketsAcquired, c.PacketsRecycled,
	} {
		dst = appendUvarint(dst, v)
	}
	return dst
}

func (r *reader) channelCounters() (ChannelCounters, error) {
	var vals [16]uint64
	for i := range vals {
		v, err := r.uvarint()
		if err != nil {
			return ChannelCounters{}, err
		}
		vals[i] = v
	}
	return ChannelCounters{
		Sent: vals[0], Acked: vals[1], Retransmits: vals[2],
		FastRetransmits: vals[3], Failures: vals[4], Resumed: vals[5],
		StreamResets: vals[6], Received: vals[7], DupsDropped: vals[8],
		Buffered: vals[9], StaleAcks: vals[10], StaleEpoch: vals[11],
		UnreliableIn: vals[12], UnreliableOut: vals[13],
		PacketsAcquired: vals[14], PacketsRecycled: vals[15],
	}, nil
}

// AppendCellStats encodes the snapshot payload.
func AppendCellStats(dst []byte, s CellStats) []byte {
	dst = appendString(dst, s.Cell)
	dst = appendUvarint(dst, uint64(s.Members))
	for _, v := range [...]uint64{
		s.Published, s.DeliveredLocal, s.EnqueuedRemote,
		s.Dropped, s.Quenches, s.AuthDenied,
	} {
		dst = appendUvarint(dst, v)
	}
	dst = appendChannelCounters(dst, s.BusChannel)
	dst = appendChannelCounters(dst, s.DiscChannel)
	enabled := uint64(0)
	if s.Log.Enabled {
		enabled = 1
	}
	for _, v := range [...]uint64{
		enabled, s.Log.Epoch, s.Log.OldestCursor, s.Log.NewestCursor,
		s.Log.Events, s.Log.Bytes, s.Log.Segments, s.Log.Appended,
		s.Log.Evicted, s.Log.DupsDropped,
		s.Log.SegmentsAcquired, s.Log.SegmentsRecycled,
	} {
		dst = appendUvarint(dst, v)
	}
	dst = appendUvarint(dst, uint64(len(s.Durables)))
	for _, d := range s.Durables {
		dst = appendString(dst, d.Name)
		attached := uint64(0)
		if d.Attached {
			attached = 1
		}
		dst = appendUvarint(dst, attached)
		dst = appendUvarint(dst, d.Delivered)
		dst = appendUvarint(dst, d.Lag)
	}
	dst = appendUvarint(dst, uint64(len(s.Federation)))
	for _, f := range s.Federation {
		dst = appendString(dst, f.Name)
		dst = appendString(dst, f.RemoteCell)
		connected := uint64(0)
		if f.Connected {
			connected = 1
		}
		for _, v := range [...]uint64{
			connected, f.Imported, f.Skipped, f.Dropped,
			f.Reconnects, f.ResumeEpoch, f.ResumeCursor,
		} {
			dst = appendUvarint(dst, v)
		}
	}
	return dst
}

// DecodeCellStats decodes a snapshot payload.
func DecodeCellStats(buf []byte) (CellStats, error) {
	r := &reader{buf: buf}
	cell, err := r.string()
	if err != nil {
		return CellStats{}, err
	}
	members, err := r.uvarint()
	if err != nil {
		return CellStats{}, err
	}
	var bus [6]uint64
	for i := range bus {
		v, err := r.uvarint()
		if err != nil {
			return CellStats{}, err
		}
		bus[i] = v
	}
	busCh, err := r.channelCounters()
	if err != nil {
		return CellStats{}, err
	}
	discCh, err := r.channelCounters()
	if err != nil {
		return CellStats{}, err
	}
	var logv [12]uint64
	for i := range logv {
		v, err := r.uvarint()
		if err != nil {
			return CellStats{}, err
		}
		logv[i] = v
	}
	nDur, err := r.uvarint()
	if err != nil {
		return CellStats{}, err
	}
	if nDur > uint64(r.remaining()) {
		return CellStats{}, fmt.Errorf("%w: durable count %d", ErrBadEncoding, nDur)
	}
	var durables []DurableCounters
	if nDur > 0 {
		durables = make([]DurableCounters, 0, nDur)
	}
	for i := uint64(0); i < nDur; i++ {
		name, err := r.string()
		if err != nil {
			return CellStats{}, err
		}
		attached, err := r.uvarint()
		if err != nil {
			return CellStats{}, err
		}
		delivered, err := r.uvarint()
		if err != nil {
			return CellStats{}, err
		}
		lag, err := r.uvarint()
		if err != nil {
			return CellStats{}, err
		}
		durables = append(durables, DurableCounters{
			Name: name, Attached: attached != 0,
			Delivered: delivered, Lag: lag,
		})
	}
	nFed, err := r.uvarint()
	if err != nil {
		return CellStats{}, err
	}
	if nFed > uint64(r.remaining()) {
		return CellStats{}, fmt.Errorf("%w: federation count %d", ErrBadEncoding, nFed)
	}
	var federation []FederationCounters
	if nFed > 0 {
		federation = make([]FederationCounters, 0, nFed)
	}
	for i := uint64(0); i < nFed; i++ {
		name, err := r.string()
		if err != nil {
			return CellStats{}, err
		}
		remote, err := r.string()
		if err != nil {
			return CellStats{}, err
		}
		var vals [7]uint64
		for j := range vals {
			v, err := r.uvarint()
			if err != nil {
				return CellStats{}, err
			}
			vals[j] = v
		}
		federation = append(federation, FederationCounters{
			Name: name, RemoteCell: remote, Connected: vals[0] != 0,
			Imported: vals[1], Skipped: vals[2], Dropped: vals[3],
			Reconnects: vals[4], ResumeEpoch: vals[5], ResumeCursor: vals[6],
		})
	}
	if r.remaining() != 0 {
		return CellStats{}, fmt.Errorf("%w: cell-stats trailing bytes", ErrBadEncoding)
	}
	return CellStats{
		Cell:           cell,
		Members:        uint32(members),
		Published:      bus[0],
		DeliveredLocal: bus[1],
		EnqueuedRemote: bus[2],
		Dropped:        bus[3],
		Quenches:       bus[4],
		AuthDenied:     bus[5],
		BusChannel:     busCh,
		DiscChannel:    discCh,
		Log: LogCounters{
			Enabled: logv[0] != 0, Epoch: logv[1],
			OldestCursor: logv[2], NewestCursor: logv[3],
			Events: logv[4], Bytes: logv[5], Segments: logv[6],
			Appended: logv[7], Evicted: logv[8], DupsDropped: logv[9],
			SegmentsAcquired: logv[10], SegmentsRecycled: logv[11],
		},
		Durables:   durables,
		Federation: federation,
	}, nil
}
