package wire

import (
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// TestEventSizeMatchesEncoding checks EventSize against the ground
// truth — the length of the actual encoding — across value types and
// length-prefix widths.
func TestEventSizeMatchesEncoding(t *testing.T) {
	events := []*event.Event{
		event.New(),
		event.NewTyped("alarm"),
		event.NewTyped("reading").
			SetInt("n", -42).
			SetFloat("v", 36.6).
			SetBool("ok", true).
			SetStr("unit", "bpm").
			SetBytes("raw", []byte{1, 2, 3}),
		event.NewTyped("big").
			SetBytes("payload", make([]byte, 200)).   // 2-byte uvarint prefix
			SetStr("s", string(make([]byte, 16384))), // 3-byte uvarint prefix
	}
	for i, e := range events {
		e.Sender = ident.New(uint64(i + 1))
		e.Seq = uint64(i)
		e.Stamp = time.Unix(0, 12345)
		if got, want := EventSize(e), len(EncodeEvent(e)); got != want {
			t.Errorf("event %d: EventSize = %d, encoded length = %d", i, got, want)
		}
	}
}

func TestUvarintLen(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, 1 << 40, 1<<64 - 1} {
		got := uvarintLen(v)
		want := len(appendUvarint(nil, v))
		if got != want {
			t.Errorf("uvarintLen(%d) = %d, want %d", v, got, want)
		}
	}
}
