package wire

import (
	"sync"
	"sync/atomic"
)

// encBufPool recycles outbound event-encode buffers. The proxy's
// delivery loops and the client's publish path share it: the reliable
// channel copies the payload into its own marshal buffer before
// Send/SendAsync return, so an encode buffer is reusable the moment
// the send call comes back.
var encBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 512)
	return &b
}}

// GetEncodeBuf returns an empty pooled buffer for AppendEvent-style
// encoding. Pair with PutEncodeBuf.
func GetEncodeBuf() *[]byte { return encBufPool.Get().(*[]byte) }

// PutEncodeBuf returns an encode buffer to the pool; the caller must
// not touch the slice afterwards.
func PutEncodeBuf(bp *[]byte) {
	if bp == nil {
		return
	}
	*bp = (*bp)[:0]
	encBufPool.Put(bp)
}

// PacketPool recycles inbound packets. The seed receive path paid an
// allocation pair for every packet — the Packet struct from Unmarshal
// plus the payload clone detaching it from the transport buffer
// (ROADMAP names this the residual remote-path cost). A pooled decode
// copies the payload straight into a buffer the packet owns and keeps
// across recycles, so the steady-state cost of both is zero.
//
// Lifecycle: PacketPool.Unmarshal hands out a packet with one
// reference. A consumer that fans the packet out (the bus delivering
// one inbound event to several local subscribers, the reorder buffer
// parking it) takes additional references with Retain; every owner
// calls Release when done, and the last release recycles the packet.
// Releasing is always safe on non-pooled packets (no-op), so shared
// delivery code does not need to know where a packet came from.
//
// The acquired/recycled counters make missed releases observable: on
// a quiesced channel the two converge, and a growing gap is a leak
// (surfaced as reliable.Stats.PacketsAcquired/PacketsRecycled).
type PacketPool struct {
	pool     sync.Pool
	acquired atomic.Uint64
	recycled atomic.Uint64
}

// maxPooledPayload bounds the payload buffer a recycled packet keeps;
// larger one-off payloads are dropped on release so a single jumbo
// packet does not pin memory for the pool's lifetime.
const maxPooledPayload = 64 * 1024

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool {
	return &PacketPool{pool: sync.Pool{New: func() interface{} { return new(Packet) }}}
}

// get returns a zeroed packet owned by this pool with one reference.
func (pp *PacketPool) get() *Packet {
	p := pp.pool.Get().(*Packet)
	p.pool = pp
	atomic.StoreInt32(&p.refs, 1)
	pp.acquired.Add(1)
	return p
}

// Stats reports packets handed out and packets recycled since the pool
// was created. acquired-recycled is the number of packets currently
// live (or leaked, once the owning channel has quiesced).
func (pp *PacketPool) Stats() (acquired, recycled uint64) {
	return pp.acquired.Load(), pp.recycled.Load()
}

// Unmarshal decodes a packet from buf like the package-level Unmarshal
// but into a pooled packet whose payload is copied into packet-owned
// reusable storage: the caller may recycle buf immediately, and must
// Release the packet when done with it.
func (pp *PacketPool) Unmarshal(buf []byte) (*Packet, error) {
	p := pp.get()
	if err := unmarshalInto(p, buf); err != nil {
		p.Release()
		return nil, err
	}
	p.buf = append(p.buf[:0], p.Payload...)
	p.Payload = p.buf
	return p, nil
}

// Retain adds a reference to a pooled packet and returns it; it is a
// no-op for non-pooled packets.
func (p *Packet) Retain() *Packet {
	if p != nil && p.pool != nil {
		atomic.AddInt32(&p.refs, 1)
	}
	return p
}

// Release drops one reference; the last release returns the packet to
// its pool. No-op for non-pooled packets. The payload must not be used
// after the owner's Release.
func (p *Packet) Release() {
	if p == nil || p.pool == nil {
		return
	}
	if atomic.AddInt32(&p.refs, -1) != 0 {
		return
	}
	pp := p.pool
	buf := p.buf
	if cap(buf) > maxPooledPayload {
		buf = nil
	}
	*p = Packet{buf: buf[:0]}
	pp.recycled.Add(1)
	pp.pool.Put(p)
}
