package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// Wire-compatibility pin for the inline attribute refactor: the seed
// stored attributes in a map and sorted the names on every encode; the
// inline representation stores them sorted and encodes with a straight
// index loop. The bytes on the wire must be identical — peers running
// either build must interoperate — so seedEncodeEvent reproduces the
// seed encoder (map + sort + the shared primitives) and every test
// below compares against it byte for byte.

// seedEncodeEvent encodes an event exactly as the map-based seed did:
// collect attributes into a map, sort the names, then emit
// sender/seq/stamp/count and the sorted name/value pairs.
func seedEncodeEvent(e *event.Event) []byte {
	attrs := make(map[string]event.Value, e.Len())
	e.Range(func(name string, v event.Value) bool {
		attrs[name] = v
		return true
	})
	names := make([]string, 0, len(attrs))
	for n := range attrs {
		names = append(names, n)
	}
	sort.Strings(names)

	dst := make([]byte, 0, 64+len(attrs)*24)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Sender))
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], e.Seq)
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Stamp.UnixNano()))
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(attrs)))
	dst = append(dst, tmp[:2]...)
	for _, name := range names {
		dst = appendString(dst, name)
		dst = AppendValue(dst, attrs[name])
	}
	return dst
}

// TestEncodeMatchesSeedEncoding: the inline encoder's output is
// byte-identical to the seed's map-and-sort encoder on random events,
// and decode round-trips it.
func TestEncodeMatchesSeedEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	for i := 0; i < 2000; i++ {
		e := randomEvent(rng)
		got := EncodeEvent(e)
		want := seedEncodeEvent(e)
		if !bytes.Equal(got, want) {
			t.Fatalf("iteration %d: encoding diverged from seed\n got %x\nwant %x\nevent %s",
				i, got, want, e)
		}
		dec, err := DecodeEvent(got)
		if err != nil {
			t.Fatalf("iteration %d: decode: %v", i, err)
		}
		if !dec.Equal(e) {
			t.Fatalf("iteration %d: roundtrip mismatch", i)
		}
	}
}

// TestEncodeSeedEncodingEdges pins the boundary shapes by hand: empty,
// exactly InlineAttrs (largest inline), InlineAttrs+1 (first spill) and
// exactly MaxAttrs.
func TestEncodeSeedEncodingEdges(t *testing.T) {
	for _, n := range []int{0, event.InlineAttrs, event.InlineAttrs + 1, event.MaxAttrs} {
		t.Run(fmt.Sprintf("attrs=%d", n), func(t *testing.T) {
			e := event.New()
			e.Sender = ident.New(0xABCD)
			e.Seq = 7
			e.Stamp = time.Unix(1700000000, 123)
			for i := n - 1; i >= 0; i-- { // reverse insert: worst case for the inline shift
				e.SetInt(fmt.Sprintf("attr%03d", i), int64(i))
			}
			if err := e.Validate(); err != nil {
				t.Fatal(err)
			}
			got, want := EncodeEvent(e), seedEncodeEvent(e)
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding diverged from seed at %d attrs", n)
			}
			dec, err := DecodeEvent(got)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Equal(e) || dec.Len() != n {
				t.Fatalf("roundtrip mismatch at %d attrs", n)
			}
		})
	}
}

// FuzzEventRoundTrip is the CI fuzz target (run for 30s in the matrix
// job): fuzzed payload bytes must either fail to decode or decode into
// an event that re-encodes byte-identically under both the inline and
// the seed encoder. This catches any decode path that would accept an
// event the deterministic encoding cannot reproduce.
func FuzzEventRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 16; i++ {
		f.Add(EncodeEvent(randomEvent(rng)))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// Regression seed for the O(1) truncated-count rejection: a full
	// 26-byte metadata header claiming MaxAttrs attributes followed by
	// no attribute bytes at all (see TestDecodeEventTruncatedCountFailsFast).
	hostile := make([]byte, 26)
	hostile[25] = event.MaxAttrs
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEvent(data)
		if err != nil {
			return // invalid payloads are rejected, never crash
		}
		if e.Len() > event.MaxAttrs {
			t.Fatalf("decode admitted %d attributes", e.Len())
		}
		re := EncodeEvent(e)
		seed := seedEncodeEvent(e)
		if !bytes.Equal(re, seed) {
			t.Fatalf("re-encode diverges from seed encoder\ninline %x\nseed   %x", re, seed)
		}
		// A decoded event always re-decodes to an equal event (the
		// encoding is canonical even when the input bytes were not,
		// e.g. unsorted or duplicated names from a foreign encoder).
		e2, err := DecodeEvent(re)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		if !e2.Equal(e) {
			t.Fatal("canonical re-encode decodes differently")
		}
	})
}
