package wire

import (
	"strings"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// BenchmarkDecodeEvent measures the receive-side decode of one small
// sensor reading, the shape that dominates the paper's workloads
// (§II-C):
//
//   - interned: DecodeEventInto where every name and string value is
//     in the intern table — the steady-state hot path, pinned at
//     0 allocs/op by the CI gate;
//   - borrowed: DecodeEventInto with unknown names, which alias the
//     pooled packet's buffer (still allocation-free in steady state —
//     event, strings and packet all recycle);
//   - owned: the copying DecodeEvent the bus used before PR 4, for
//     comparison.
func BenchmarkDecodeEvent(b *testing.B) {
	mkRaw := func(e *event.Event) []byte {
		pkt := &Packet{Type: PktEvent, Sender: e.Sender, Seq: e.Seq, Payload: EncodeEvent(e)}
		raw, err := pkt.MarshalBytes()
		if err != nil {
			b.Fatal(err)
		}
		return raw
	}

	interned := event.New()
	interned.Sender = ident.New(0x51)
	interned.Seq = 3
	interned.Stamp = time.Unix(1700000000, 0)
	interned.Set(event.AttrType, event.Str("reading"))
	interned.Set("kind", event.Str("pulse"))
	interned.SetFloat("value", 72.5)
	interned.SetInt("seq", 12345)

	// Names and string value longer than event.MaxNameLen: LookupIntern
	// never counts them, so the intern table cannot learn them mid-run
	// and every iteration measures the true borrow-alias path. (The
	// event violates Validate's name limit, but this benchmark only
	// exercises the decoder, which — like the seed's — does not enforce
	// it.)
	longName := func(prefix string) string {
		return prefix + strings.Repeat("x", event.MaxNameLen)
	}
	borrowed := event.New()
	borrowed.Sender = ident.New(0x52)
	borrowed.Seq = 4
	borrowed.Stamp = time.Unix(1700000000, 0)
	borrowed.SetStr(longName("a-"), longName("value-"))
	borrowed.SetBytes(longName("b-"), make([]byte, 64))
	borrowed.SetFloat(longName("c-"), 1.25)

	for _, tc := range []struct {
		name string
		e    *event.Event
	}{
		{"interned", interned},
		{"borrowed", borrowed},
	} {
		raw := mkRaw(tc.e)
		b.Run(tc.name, func(b *testing.B) {
			pool := NewPacketPool()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkt, err := pool.Unmarshal(raw)
				if err != nil {
					b.Fatal(err)
				}
				e := event.Acquire()
				if err := DecodeEventInto(e, pkt); err != nil {
					b.Fatal(err)
				}
				pkt.Release()
				e.Release()
			}
		})
	}

	b.Run("owned", func(b *testing.B) {
		payload := EncodeEvent(interned)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeEvent(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
