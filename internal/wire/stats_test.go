package wire

import (
	"reflect"
	"testing"
)

func TestCellStatsRoundTrip(t *testing.T) {
	in := CellStats{
		Cell:           "ward-3",
		Members:        17,
		Published:      101,
		DeliveredLocal: 42,
		EnqueuedRemote: 59,
		Dropped:        3,
		Quenches:       2,
		AuthDenied:     1,
		BusChannel: ChannelCounters{
			Sent: 1000, Acked: 998, Retransmits: 12, FastRetransmits: 2,
			Failures: 2, Resumed: 1, StreamResets: 1, Received: 2000,
			DupsDropped: 5, Buffered: 7, StaleAcks: 3, StaleEpoch: 1,
			UnreliableIn: 40, UnreliableOut: 41,
			PacketsAcquired: 2050, PacketsRecycled: 2049,
		},
		DiscChannel: ChannelCounters{
			Sent: 10, Acked: 10, Received: 30,
			PacketsAcquired: 30, PacketsRecycled: 30,
		},
		Log: LogCounters{
			Enabled: true, Epoch: 0xfeedface, OldestCursor: 100,
			NewestCursor: 900, Events: 801, Bytes: 65536, Segments: 4,
			Appended: 905, Evicted: 104, DupsDropped: 5,
			SegmentsAcquired: 9, SegmentsRecycled: 5,
		},
		Durables: []DurableCounters{
			{Name: "ward-nurse", Attached: true, Delivered: 890, Lag: 10},
			{Name: "archive", Attached: false, Delivered: 450, Lag: 450},
		},
		Federation: []FederationCounters{
			{
				Name: "ward-gateway", RemoteCell: "icu", Connected: true,
				Imported: 120, Skipped: 4, Dropped: 1, Reconnects: 3,
				ResumeEpoch: 0xdeadbeef, ResumeCursor: 118,
			},
			{Name: "cold-link", RemoteCell: "lab"},
		},
	}
	buf := AppendCellStats(nil, in)
	out, err := DecodeCellStats(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if got := out.BusChannel.Leaked(); got != 1 {
		t.Fatalf("bus leak = %d, want 1", got)
	}
	if got := out.DiscChannel.Leaked(); got != 0 {
		t.Fatalf("disc leak = %d, want 0", got)
	}
}

func TestCellStatsDecodeRejectsTruncationAndTrailer(t *testing.T) {
	buf := AppendCellStats(nil, CellStats{Cell: "c", Members: 1})
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeCellStats(buf[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := DecodeCellStats(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestStatsPacketTypesNamed(t *testing.T) {
	if PktStatsRequest.String() != "stats-request" || PktStatsResponse.String() != "stats-response" {
		t.Fatalf("packet type names: %s / %s", PktStatsRequest, PktStatsResponse)
	}
}
