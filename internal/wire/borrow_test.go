package wire

import (
	"errors"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// borrowTestEvent builds an event whose names and values are NOT in
// the intern table, so a borrowing decode must alias the packet.
func borrowTestEvent() *event.Event {
	e := event.New()
	e.Sender = ident.New(0x42)
	e.Seq = 7
	e.Stamp = time.Unix(1700000001, 500)
	e.SetStr("zz-borrow-name", "zz-borrow-value")
	e.SetBytes("zz-borrow-raw", []byte{1, 2, 3, 4})
	e.SetInt("zz-count", 99)
	return e
}

func marshalEventPacket(t testing.TB, e *event.Event) []byte {
	t.Helper()
	pkt := &Packet{Type: PktEvent, Sender: e.Sender, Seq: e.Seq, Payload: EncodeEvent(e)}
	raw, err := pkt.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDecodeEventIntoBorrows: a borrowing decode of unknown names
// produces a borrowed event that pins the packet — the packet does not
// recycle at the receive loop's Release, only when the event's own
// storage is reclaimed.
func TestDecodeEventIntoBorrows(t *testing.T) {
	pool := NewPacketPool()
	src := borrowTestEvent()
	raw := marshalEventPacket(t, src)

	pkt, err := pool.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	e := event.Acquire()
	if err := DecodeEventInto(e, pkt); err != nil {
		t.Fatal(err)
	}
	if !e.Borrowed() {
		t.Fatal("decode of unknown names should borrow")
	}
	if !e.Equal(src) {
		t.Fatalf("borrowed decode mismatch\n got %s\nwant %s", e, src)
	}
	pkt.Release() // the receive loop's release: event still holds its ref
	if _, rec := pool.Stats(); rec != 0 {
		t.Fatalf("packet recycled while a borrowed event was live (recycled=%d)", rec)
	}
	if !e.Equal(src) {
		t.Fatal("borrowed data corrupted after the receive loop's release")
	}
	e.Release()
	if acq, rec := pool.Stats(); acq != rec {
		t.Fatalf("packet leak after event release: acquired=%d recycled=%d", acq, rec)
	}
}

// TestDecodeEventIntoClonePromotes: a clone of a borrowed event owns
// its strings and survives the packet buffer being recycled and
// overwritten by a later decode.
func TestDecodeEventIntoClonePromotes(t *testing.T) {
	pool := NewPacketPool()
	src := borrowTestEvent()
	raw := marshalEventPacket(t, src)

	pkt, err := pool.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	e := event.Acquire()
	if err := DecodeEventInto(e, pkt); err != nil {
		t.Fatal(err)
	}
	pkt.Release()

	clone := e.Clone()
	if clone.Borrowed() {
		t.Fatal("clone of a borrowed event must not be borrowed")
	}
	e.Release() // recycles the packet: the borrowed buffer is now free

	// Overwrite the recycled buffer: decode a different event of the
	// same shape through the same pool (sync.Pool hands the buffer
	// back on this single-goroutine path).
	other := event.New()
	other.Sender = ident.New(0x43)
	other.Seq = 8
	other.Stamp = time.Unix(1700000002, 0)
	other.SetStr("aa-other-name", "aa-other-value")
	other.SetBytes("aa-other-raw", []byte{9, 9, 9, 9})
	other.SetInt("aa-other-n", 11)
	pkt2, err := pool.Unmarshal(marshalEventPacket(t, other))
	if err != nil {
		t.Fatal(err)
	}
	e2 := event.Acquire()
	if err := DecodeEventInto(e2, pkt2); err != nil {
		t.Fatal(err)
	}
	pkt2.Release()

	if !clone.Equal(src) {
		t.Fatalf("promoted clone corrupted by buffer reuse\n got %s\nwant %s", clone, src)
	}
	e2.Release()
}

// TestDecodeEventIntoInterned: well-known names and values decode to
// the shared interned strings with no borrow at all — the packet is
// free to recycle immediately.
func TestDecodeEventIntoInterned(t *testing.T) {
	event.Intern("interned-borrow-test-name", "interned-borrow-test-value")
	pool := NewPacketPool()
	src := event.New()
	src.Sender = ident.New(9)
	src.Seq = 1
	src.Stamp = time.Unix(1700000003, 0)
	src.Set("interned-borrow-test-name", event.Str("interned-borrow-test-value"))
	src.SetInt(event.AttrMember, 12)

	pkt, err := pool.Unmarshal(marshalEventPacket(t, src))
	if err != nil {
		t.Fatal(err)
	}
	e := event.Acquire()
	if err := DecodeEventInto(e, pkt); err != nil {
		t.Fatal(err)
	}
	if e.Borrowed() {
		t.Fatal("all-interned decode should not borrow")
	}
	if !e.Equal(src) {
		t.Fatalf("interned decode mismatch\n got %s\nwant %s", e, src)
	}
	pkt.Release()
	if acq, rec := pool.Stats(); acq != rec {
		t.Fatalf("interned decode pinned the packet: acquired=%d recycled=%d", acq, rec)
	}
	e.Release()
}

// TestDecodeEventIntoTargetNotEmpty: reusing a non-empty event is an
// error, not silent corruption.
func TestDecodeEventIntoTargetNotEmpty(t *testing.T) {
	pool := NewPacketPool()
	raw := marshalEventPacket(t, borrowTestEvent())
	pkt, err := pool.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer pkt.Release()
	e := event.New().SetInt("already", 1)
	if err := DecodeEventInto(e, pkt); !errors.Is(err, ErrDecodeTarget) {
		t.Fatalf("got %v, want ErrDecodeTarget", err)
	}
}

// TestDecodeEventIntoBadPayloadClears: a decode error must not leave
// half-built borrowed attributes in the target event.
func TestDecodeEventIntoBadPayloadClears(t *testing.T) {
	pool := NewPacketPool()
	payload := EncodeEvent(borrowTestEvent())
	payload = payload[:len(payload)-2] // truncate mid-value
	pkt := &Packet{Type: PktEvent, Sender: ident.New(1), Seq: 1, Payload: payload}
	raw, err := pkt.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	e := event.Acquire()
	if err := DecodeEventInto(e, p); err == nil {
		t.Fatal("truncated payload decoded successfully")
	}
	if e.Len() != 0 || e.Borrowed() {
		t.Fatalf("failed decode left state behind: len=%d borrowed=%v", e.Len(), e.Borrowed())
	}
	p.Release()
	e.Release()
	if acq, rec := pool.Stats(); acq != rec {
		t.Fatalf("failed decode leaked the packet: acquired=%d recycled=%d", acq, rec)
	}
}

// TestDecodeEventTruncatedCountFailsFast pins the O(1) rejection of
// hostile attribute counts: a payload claiming MaxAttrs attributes
// with no attribute bytes must fail before the decode loop, without
// allocating per claimed attribute.
func TestDecodeEventTruncatedCountFailsFast(t *testing.T) {
	// 8+8+8 header bytes then count=MaxAttrs and nothing else.
	payload := make([]byte, 26)
	payload[24], payload[25] = 0, event.MaxAttrs
	if _, err := DecodeEvent(payload); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, _ = DecodeEvent(payload)
	})
	// One event struct plus the error values — far below the one-or-
	// more allocations per claimed attribute the pre-check prevents.
	if allocs > 8 {
		t.Fatalf("truncated decode allocated %.0f times; want O(1)", allocs)
	}
}
