package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
	"unsafe"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// Encoding of events, filters and values inside packet payloads.
//
// All multi-byte integers are big endian. Strings and byte slices are
// length-prefixed with a uvarint. Attribute/constraint counts use a
// single uint16.

var (
	// ErrTruncated reports a payload ending mid-structure.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrBadEncoding reports a structurally invalid payload.
	ErrBadEncoding = errors.New("wire: bad encoding")
)

type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) uint16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) uint64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) string() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendValue encodes a value: 1 type byte then the payload.
func AppendValue(dst []byte, v event.Value) []byte {
	dst = append(dst, byte(v.Type()))
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], uint64(i))
		dst = append(dst, tmp[:]...)
	case event.TypeFloat:
		f, _ := v.Float()
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
		dst = append(dst, tmp[:]...)
	case event.TypeString:
		s, _ := v.Str()
		dst = appendString(dst, s)
	case event.TypeBool:
		b, _ := v.Bool()
		if b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case event.TypeBytes:
		b, _ := v.BytesRef() // read-only: appended, never retained
		dst = appendBytes(dst, b)
	}
	return dst
}

// bytesToString reinterprets b as a string without copying. The result
// aliases b's backing array: it is only handed out by the borrowing
// decode path, where the event's Borrow backing keeps the buffer alive
// and immutable.
func bytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// internOrBorrow turns raw name/string bytes into a string without
// copying: the interned instance when the spelling is well known, a
// string aliasing b otherwise (reported through borrowed).
func internOrBorrow(b []byte, borrowed *bool) string {
	if s, ok := event.LookupIntern(b); ok {
		return s
	}
	if len(b) > 0 {
		*borrowed = true
	}
	return bytesToString(b)
}

func readValue(r *reader) (event.Value, error) {
	return readValueBorrow(r, false, nil)
}

// readValueBorrow decodes one value. In borrow mode string payloads
// resolve through the intern table or alias the read buffer, and bytes
// payloads alias it outright; *borrowed is set when any aliasing
// happened.
func readValueBorrow(r *reader, borrow bool, borrowed *bool) (event.Value, error) {
	tb, err := r.byte()
	if err != nil {
		return event.Value{}, err
	}
	switch event.Type(tb) {
	case event.TypeInt:
		u, err := r.uint64()
		if err != nil {
			return event.Value{}, err
		}
		return event.Int(int64(u)), nil
	case event.TypeFloat:
		u, err := r.uint64()
		if err != nil {
			return event.Value{}, err
		}
		return event.Float(math.Float64frombits(u)), nil
	case event.TypeString:
		b, err := r.bytes()
		if err != nil {
			return event.Value{}, err
		}
		if borrow {
			return event.Str(internOrBorrow(b, borrowed)), nil
		}
		return event.Str(string(b)), nil
	case event.TypeBool:
		b, err := r.byte()
		if err != nil {
			return event.Value{}, err
		}
		if b > 1 {
			return event.Value{}, fmt.Errorf("%w: bool byte %d", ErrBadEncoding, b)
		}
		return event.Bool(b == 1), nil
	case event.TypeBytes:
		b, err := r.bytes()
		if err != nil {
			return event.Value{}, err
		}
		if borrow {
			if len(b) > 0 {
				*borrowed = true
			}
			return event.BytesAlias(b), nil
		}
		return event.Bytes(b), nil
	default:
		return event.Value{}, fmt.Errorf("%w: value type %d", ErrBadEncoding, tb)
	}
}

// AppendEvent encodes an event payload: origin sender (8 bytes, 48-bit
// ID), origin sequence number, stamp (unixnano), count, then name/value
// pairs in sorted name order (deterministic encoding). The origin
// fields travel with the event so that per-sender ordering and identity
// survive relaying through the bus (§II-C defines ordering per original
// sending component). Events store attributes name-sorted, so the
// encoder is a straight index loop — no sort, no closure.
func AppendEvent(dst []byte, e *event.Event) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Sender))
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], e.Seq)
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Stamp.UnixNano()))
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint16(tmp[:2], uint16(e.Len()))
	dst = append(dst, tmp[:2]...)
	for i, n := 0, e.Len(); i < n; i++ {
		name, v := e.At(i)
		dst = appendString(dst, name)
		dst = AppendValue(dst, v)
	}
	return dst
}

// EncodeEvent encodes an event into a fresh payload slice.
func EncodeEvent(e *event.Event) []byte {
	return AppendEvent(make([]byte, 0, 64+e.Len()*24), e)
}

// minAttrEncoded is the smallest possible encoding of one attribute:
// a 1-byte name length prefix (empty name), the value type byte, and
// at least one payload byte (a bool, or an empty string's own length
// prefix). Every valid attribute is at least this large, so a count
// whose minimum footprint exceeds the remaining payload proves
// truncation before the decode loop runs — a hostile short packet
// fails O(1) instead of allocating attributes until it hits the end.
const minAttrEncoded = 3

// DecodeEvent decodes an event payload, including the origin sender
// and sequence number. Every attribute name and string/bytes payload
// is an owned copy; for the allocation-free borrowing decode used on
// the receive hot path see DecodeEventInto.
func DecodeEvent(buf []byte) (*event.Event, error) {
	e := event.New()
	if _, err := decodeEvent(e, buf, false); err != nil {
		return nil, err
	}
	return e, nil
}

// ErrDecodeTarget reports a DecodeEventInto target that already
// carries attributes.
var ErrDecodeTarget = errors.New("wire: decode target event not empty")

// DecodeEventInto decodes an event payload from pkt into e — which
// must be empty — borrowing instead of copying: attribute names and
// string values resolve through the intern table (shared storage, no
// copy) or alias the packet's payload buffer, and bytes values alias
// it outright. When anything was borrowed from a pooled packet the
// event takes a packet reference (released with the event's storage),
// so the bytes stay valid for the event's whole lifetime even after
// the receive loop's own Release. The common deliver-and-drop path
// therefore decodes with zero string allocations.
//
// Contract for consumers of borrowed events: attribute data is valid
// until the event is released; Clone promotes everything to owned
// copies for anything kept longer. Pair the call with an event from
// event.Acquire — for a non-pooled target the packet reference would
// have no release point, so the decode borrows without retaining and
// the caller must keep pkt alive for as long as the event is used.
func DecodeEventInto(e *event.Event, pkt *Packet) error {
	if e.Len() != 0 {
		return ErrDecodeTarget
	}
	borrowed, err := decodeEvent(e, pkt.Payload, true)
	if err != nil {
		e.Clear() // drop any half-built borrowed attributes
		return err
	}
	if borrowed {
		if e.Pooled() && pkt.pool != nil {
			pkt.Retain()
			e.Borrow(pkt)
		} else {
			e.Borrow(nil)
		}
	}
	return nil
}

// decodeEvent is the shared decode core; it reports whether any
// attribute data aliases buf.
func decodeEvent(e *event.Event, buf []byte, borrow bool) (bool, error) {
	r := &reader{buf: buf}
	sender, err := r.uint64()
	if err != nil {
		return false, err
	}
	seq, err := r.uint64()
	if err != nil {
		return false, err
	}
	stampNano, err := r.uint64()
	if err != nil {
		return false, err
	}
	count, err := r.uint16()
	if err != nil {
		return false, err
	}
	if int(count) > event.MaxAttrs {
		return false, fmt.Errorf("%w: %d attributes", ErrBadEncoding, count)
	}
	if int(count)*minAttrEncoded > r.remaining() {
		return false, fmt.Errorf("%w: %d attributes in %d bytes", ErrTruncated, count, r.remaining())
	}
	e.Sender = ident.New(sender)
	e.Seq = seq
	e.Stamp = time.Unix(0, int64(stampNano))
	borrowed := false
	for i := 0; i < int(count); i++ {
		nb, err := r.bytes()
		if err != nil {
			return borrowed, err
		}
		var name string
		if borrow {
			name = internOrBorrow(nb, &borrowed)
		} else {
			name = string(nb)
		}
		v, err := readValueBorrow(r, borrow, &borrowed)
		if err != nil {
			return borrowed, err
		}
		// Our encoder writes attributes in sorted name order, so the
		// append fast path builds the inline form with no searching or
		// shifting; a foreign encoder's unsorted (or duplicated) names
		// fall back to the general insert.
		if !e.Append(name, v) {
			e.Set(name, v)
		}
	}
	if r.remaining() != 0 {
		return borrowed, fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, r.remaining())
	}
	return borrowed, nil
}

// AppendFilter encodes a filter payload: count then constraints
// (name, op byte, value; OpExists omits the value).
func AppendFilter(dst []byte, f *event.Filter) []byte {
	cs := f.Constraints()
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], uint16(len(cs)))
	dst = append(dst, tmp[:]...)
	for _, c := range cs {
		dst = appendString(dst, c.Name)
		dst = append(dst, byte(c.Op))
		if c.Op != event.OpExists {
			dst = AppendValue(dst, c.Value)
		}
	}
	return dst
}

// EncodeFilter encodes a filter into a fresh payload slice.
func EncodeFilter(f *event.Filter) []byte {
	return AppendFilter(make([]byte, 0, 16+f.Len()*24), f)
}

// DecodeFilter decodes a filter payload.
func DecodeFilter(buf []byte) (*event.Filter, error) {
	r := &reader{buf: buf}
	count, err := r.uint16()
	if err != nil {
		return nil, err
	}
	if int(count) > event.MaxAttrs {
		return nil, fmt.Errorf("%w: %d constraints", ErrBadEncoding, count)
	}
	// Smallest constraint: 1-byte name prefix + 1 op byte (OpExists
	// carries no value) — same O(1) truncation rejection as events.
	if int(count)*2 > r.remaining() {
		return nil, fmt.Errorf("%w: %d constraints in %d bytes", ErrTruncated, count, r.remaining())
	}
	cs := make([]event.Constraint, 0, count)
	for i := 0; i < int(count); i++ {
		name, err := r.string()
		if err != nil {
			return nil, err
		}
		opb, err := r.byte()
		if err != nil {
			return nil, err
		}
		op := event.Op(opb)
		c := event.Constraint{Name: name, Op: op}
		if op != event.OpExists {
			v, err := readValue(r)
			if err != nil {
				return nil, err
			}
			c.Value = v
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
		}
		cs = append(cs, c)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, r.remaining())
	}
	return event.NewFilter(cs...), nil
}
