package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// Encoding of events, filters and values inside packet payloads.
//
// All multi-byte integers are big endian. Strings and byte slices are
// length-prefixed with a uvarint. Attribute/constraint counts use a
// single uint16.

var (
	// ErrTruncated reports a payload ending mid-structure.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrBadEncoding reports a structurally invalid payload.
	ErrBadEncoding = errors.New("wire: bad encoding")
)

type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) uint16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) uint64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) string() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendValue encodes a value: 1 type byte then the payload.
func AppendValue(dst []byte, v event.Value) []byte {
	dst = append(dst, byte(v.Type()))
	switch v.Type() {
	case event.TypeInt:
		i, _ := v.Int()
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], uint64(i))
		dst = append(dst, tmp[:]...)
	case event.TypeFloat:
		f, _ := v.Float()
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(f))
		dst = append(dst, tmp[:]...)
	case event.TypeString:
		s, _ := v.Str()
		dst = appendString(dst, s)
	case event.TypeBool:
		b, _ := v.Bool()
		if b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case event.TypeBytes:
		b, _ := v.BytesRef() // read-only: appended, never retained
		dst = appendBytes(dst, b)
	}
	return dst
}

func readValue(r *reader) (event.Value, error) {
	tb, err := r.byte()
	if err != nil {
		return event.Value{}, err
	}
	switch event.Type(tb) {
	case event.TypeInt:
		u, err := r.uint64()
		if err != nil {
			return event.Value{}, err
		}
		return event.Int(int64(u)), nil
	case event.TypeFloat:
		u, err := r.uint64()
		if err != nil {
			return event.Value{}, err
		}
		return event.Float(math.Float64frombits(u)), nil
	case event.TypeString:
		s, err := r.string()
		if err != nil {
			return event.Value{}, err
		}
		return event.Str(s), nil
	case event.TypeBool:
		b, err := r.byte()
		if err != nil {
			return event.Value{}, err
		}
		if b > 1 {
			return event.Value{}, fmt.Errorf("%w: bool byte %d", ErrBadEncoding, b)
		}
		return event.Bool(b == 1), nil
	case event.TypeBytes:
		b, err := r.bytes()
		if err != nil {
			return event.Value{}, err
		}
		return event.Bytes(b), nil
	default:
		return event.Value{}, fmt.Errorf("%w: value type %d", ErrBadEncoding, tb)
	}
}

// AppendEvent encodes an event payload: origin sender (8 bytes, 48-bit
// ID), origin sequence number, stamp (unixnano), count, then name/value
// pairs in sorted name order (deterministic encoding). The origin
// fields travel with the event so that per-sender ordering and identity
// survive relaying through the bus (§II-C defines ordering per original
// sending component). Events store attributes name-sorted, so the
// encoder is a straight index loop — no sort, no closure.
func AppendEvent(dst []byte, e *event.Event) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Sender))
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], e.Seq)
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(e.Stamp.UnixNano()))
	dst = append(dst, tmp[:]...)
	binary.BigEndian.PutUint16(tmp[:2], uint16(e.Len()))
	dst = append(dst, tmp[:2]...)
	for i, n := 0, e.Len(); i < n; i++ {
		name, v := e.At(i)
		dst = appendString(dst, name)
		dst = AppendValue(dst, v)
	}
	return dst
}

// EncodeEvent encodes an event into a fresh payload slice.
func EncodeEvent(e *event.Event) []byte {
	return AppendEvent(make([]byte, 0, 64+e.Len()*24), e)
}

// DecodeEvent decodes an event payload, including the origin sender
// and sequence number.
func DecodeEvent(buf []byte) (*event.Event, error) {
	r := &reader{buf: buf}
	sender, err := r.uint64()
	if err != nil {
		return nil, err
	}
	seq, err := r.uint64()
	if err != nil {
		return nil, err
	}
	stampNano, err := r.uint64()
	if err != nil {
		return nil, err
	}
	count, err := r.uint16()
	if err != nil {
		return nil, err
	}
	if int(count) > event.MaxAttrs {
		return nil, fmt.Errorf("%w: %d attributes", ErrBadEncoding, count)
	}
	e := event.New()
	e.Sender = ident.New(sender)
	e.Seq = seq
	e.Stamp = time.Unix(0, int64(stampNano))
	for i := 0; i < int(count); i++ {
		name, err := r.string()
		if err != nil {
			return nil, err
		}
		v, err := readValue(r)
		if err != nil {
			return nil, err
		}
		// Our encoder writes attributes in sorted name order, so the
		// append fast path builds the inline form with no searching or
		// shifting; a foreign encoder's unsorted (or duplicated) names
		// fall back to the general insert.
		if !e.Append(name, v) {
			e.Set(name, v)
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, r.remaining())
	}
	return e, nil
}

// AppendFilter encodes a filter payload: count then constraints
// (name, op byte, value; OpExists omits the value).
func AppendFilter(dst []byte, f *event.Filter) []byte {
	cs := f.Constraints()
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], uint16(len(cs)))
	dst = append(dst, tmp[:]...)
	for _, c := range cs {
		dst = appendString(dst, c.Name)
		dst = append(dst, byte(c.Op))
		if c.Op != event.OpExists {
			dst = AppendValue(dst, c.Value)
		}
	}
	return dst
}

// EncodeFilter encodes a filter into a fresh payload slice.
func EncodeFilter(f *event.Filter) []byte {
	return AppendFilter(make([]byte, 0, 16+f.Len()*24), f)
}

// DecodeFilter decodes a filter payload.
func DecodeFilter(buf []byte) (*event.Filter, error) {
	r := &reader{buf: buf}
	count, err := r.uint16()
	if err != nil {
		return nil, err
	}
	if int(count) > event.MaxAttrs {
		return nil, fmt.Errorf("%w: %d constraints", ErrBadEncoding, count)
	}
	cs := make([]event.Constraint, 0, count)
	for i := 0; i < int(count); i++ {
		name, err := r.string()
		if err != nil {
			return nil, err
		}
		opb, err := r.byte()
		if err != nil {
			return nil, err
		}
		op := event.Op(opb)
		c := event.Constraint{Name: name, Op: op}
		if op != event.OpExists {
			v, err := readValue(r)
			if err != nil {
				return nil, err
			}
			c.Value = v
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
		}
		cs = append(cs, c)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, r.remaining())
	}
	return event.NewFilter(cs...), nil
}
