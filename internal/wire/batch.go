package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/amuse/smc/internal/event"
)

// Batch framing (FlagBatch).
//
// A batch packet is an ordinary PktEvent packet whose FlagBatch bit is
// set and whose payload carries several independently encoded events
// plus an optional piggybacked cumulative ack. The single-event
// encoding is frozen byte-identical to the seed format, so batching is
// layered strictly above it: each frame body is exactly what
// AppendEvent would have produced for a standalone packet.
//
// Batch payload layout (big endian):
//
//	offset  size  field
//	0       1     batch flags (bit 0: prologue carries an ack)
//	1       1     ack epoch   (inbound stream epoch being acknowledged)
//	2       8     ack cumulative sequence number
//	10      n     frames: repeated (uvarint frame length, frame bytes)
//
// The 10-byte prologue is present even when no ack is piggybacked so
// the ack can be patched in at transmit time (PatchBatchAck) without
// re-encoding or shifting the frames — the same in-place patching
// trick PatchHeader uses for retransmit renumbering.

// FlagBatch marks a PktEvent packet whose payload is a batch of
// length-prefixed event frames behind a BatchHeaderLen prologue,
// rather than one bare event encoding.
const FlagBatch byte = 1 << 3

// BatchHeaderLen is the fixed batch prologue size in bytes.
const BatchHeaderLen = 10

// batchFlagHasAck marks a prologue carrying a piggybacked ack.
const batchFlagHasAck byte = 1 << 0

var (
	// ErrNotBatch reports a payload too short to hold a batch prologue.
	ErrNotBatch = errors.New("wire: not a batch payload")
	// ErrBatchFrame reports a structurally invalid batch frame.
	ErrBatchFrame = errors.New("wire: bad batch frame")
)

// AppendBatchHeader appends an empty batch prologue (no ack) to dst.
// Frames follow via AppendBatchEvent/AppendBatchFrame.
func AppendBatchHeader(dst []byte) []byte {
	var zero [BatchHeaderLen]byte
	return append(dst, zero[:]...)
}

// AppendBatchEvent appends one event frame: the frame length as a
// uvarint, then the event's standalone encoding. EventSize computes the
// prefix without a throwaway encode, so batching adds only the prefix
// bytes over concatenated single-event payloads.
func AppendBatchEvent(dst []byte, e *event.Event) []byte {
	dst = appendUvarint(dst, uint64(EventSize(e)))
	return AppendEvent(dst, e)
}

// AppendBatchFrame appends one already-encoded event payload as a
// frame.
func AppendBatchFrame(dst []byte, payload []byte) []byte {
	return appendBytes(dst, payload)
}

// BatchFrameSize returns the encoded size of one frame carrying an
// n-byte payload — the uvarint length prefix plus the payload — so
// senders can account a batch's growth before appending.
func BatchFrameSize(n int) int {
	sz := 1
	for v := uint64(n); v >= 0x80; v >>= 7 {
		sz++
	}
	return sz + n
}

// SetBatchAck stores a piggybacked cumulative ack into a batch
// payload's prologue before the packet is marshalled.
func SetBatchAck(payload []byte, epoch byte, cum uint64) error {
	if len(payload) < BatchHeaderLen {
		return ErrNotBatch
	}
	payload[0] |= batchFlagHasAck
	payload[1] = epoch
	binary.BigEndian.PutUint64(payload[2:10], cum)
	return nil
}

// BatchAck extracts the piggybacked ack from a batch payload; ok is
// false when the prologue carries none.
func BatchAck(payload []byte) (epoch byte, cum uint64, ok bool) {
	if len(payload) < BatchHeaderLen || payload[0]&batchFlagHasAck == 0 {
		return 0, 0, false
	}
	return payload[1], binary.BigEndian.Uint64(payload[2:10]), true
}

// BatchFrames returns the frames region of a batch payload — the bytes
// after the prologue. The reliability layer compares this region (not
// the whole payload) when matching a resumed batch against its
// redelivery stash, because the prologue's ack is patched at transmit
// time and therefore differs between attempts.
func BatchFrames(payload []byte) ([]byte, error) {
	if len(payload) < BatchHeaderLen {
		return nil, ErrNotBatch
	}
	return payload[BatchHeaderLen:], nil
}

// PatchBatchAck rewrites the piggybacked ack of an already-marshalled
// batch packet in place and refreshes the CRC trailer, mirroring
// PatchHeader: the reliability layer stamps the freshest cumulative
// ack onto a queued batch at transmit time without re-encoding it.
func PatchBatchAck(buf []byte, epoch byte, cum uint64) error {
	if len(buf) < HeaderLen+BatchHeaderLen+TrailerLen {
		return fmt.Errorf("%w: %d bytes", ErrShortPacket, len(buf))
	}
	if buf[4]&FlagBatch == 0 {
		return ErrNotBatch
	}
	p := buf[HeaderLen:]
	p[0] |= batchFlagHasAck
	p[1] = epoch
	binary.BigEndian.PutUint64(p[2:10], cum)
	body := buf[: len(buf)-TrailerLen : len(buf)]
	binary.BigEndian.PutUint32(buf[len(buf)-TrailerLen:], crc32.ChecksumIEEE(body))
	return nil
}

// BatchReader iterates the event frames of a batch payload. Frames
// alias the payload; pair with DecodeBatchFrameInto to borrow safely
// from a pooled packet.
type BatchReader struct {
	buf []byte
	off int
}

// NewBatchReader validates the prologue and positions the reader at
// the first frame.
func NewBatchReader(payload []byte) (BatchReader, error) {
	if len(payload) < BatchHeaderLen {
		return BatchReader{}, ErrNotBatch
	}
	return BatchReader{buf: payload, off: BatchHeaderLen}, nil
}

// More reports whether frames remain.
func (r *BatchReader) More() bool { return r.off < len(r.buf) }

// Next returns the next frame's bytes (aliasing the payload). A frame
// length that overruns the payload, a zero-length frame, or a frame
// too short to hold an event header is ErrBatchFrame: oversize and
// truncated frames fail O(1) here, before any event decode runs.
func (r *BatchReader) Next() ([]byte, error) {
	n, sz := binary.Uvarint(r.buf[r.off:])
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad frame length prefix", ErrBatchFrame)
	}
	r.off += sz
	rem := len(r.buf) - r.off
	if n > uint64(rem) {
		return nil, fmt.Errorf("%w: frame of %d bytes with %d remaining", ErrBatchFrame, n, rem)
	}
	// 26 bytes is the fixed event header (sender, seq, stamp, count);
	// nothing shorter can be a valid frame.
	if n < 26 {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrBatchFrame, n)
	}
	f := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return f, nil
}

// DecodeBatchFrameInto decodes one batch frame (as returned by
// BatchReader.Next) into e — which must be empty — with the same
// borrowing semantics as DecodeEventInto: names and strings intern or
// alias the frame, and when anything was borrowed from a pooled
// packet's frame the event takes its own reference on the shared
// packet, so every event unpacked from one batch independently keeps
// the packet alive until that event is released.
func DecodeBatchFrameInto(e *event.Event, frame []byte, pkt *Packet) error {
	if e.Len() != 0 {
		return ErrDecodeTarget
	}
	borrowed, err := decodeEvent(e, frame, true)
	if err != nil {
		e.Clear()
		return err
	}
	if borrowed {
		if e.Pooled() && pkt != nil && pkt.pool != nil {
			pkt.Retain()
			e.Borrow(pkt)
		} else {
			e.Borrow(nil)
		}
	}
	return nil
}
