package wire

import (
	"math/rand"
	"testing"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// Random structure generators for property tests. Sizes are kept
// within the event package's validity limits so every generated
// structure is encodable.

func randomValue(rng *rand.Rand) event.Value {
	switch rng.Intn(5) {
	case 0:
		return event.Int(rng.Int63() - rng.Int63())
	case 1:
		return event.Float(rng.NormFloat64() * 1e6)
	case 2:
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		return event.Str(string(b))
	case 3:
		return event.Bool(rng.Intn(2) == 0)
	default:
		n := rng.Intn(128)
		b := make([]byte, n)
		rng.Read(b)
		return event.Bytes(b)
	}
}

func randomName(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz-0123456789"
	n := 1 + rng.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func randomEvent(rng *rand.Rand) *event.Event {
	e := event.New()
	e.Sender = ident.New(rng.Uint64())
	e.Seq = rng.Uint64()
	e.Stamp = time.Unix(rng.Int63n(1<<32), rng.Int63n(1e9))
	for i := 0; i < rng.Intn(event.MaxAttrs); i++ {
		e.Set(randomName(rng), randomValue(rng))
	}
	return e
}

func randomFilter(rng *rand.Rand) *event.Filter {
	ops := []event.Op{
		event.OpEq, event.OpNe, event.OpLt, event.OpLe, event.OpGt,
		event.OpGe, event.OpPrefix, event.OpSuffix, event.OpContains,
		event.OpExists,
	}
	f := event.NewFilter()
	for i := 0; i < rng.Intn(16); i++ {
		op := ops[rng.Intn(len(ops))]
		if op == event.OpExists {
			f.Where(randomName(rng), op, event.Value{})
		} else {
			f.Where(randomName(rng), op, randomValue(rng))
		}
	}
	return f
}

// TestEventRoundTripProperty: any valid event survives encode/decode
// exactly, including metadata.
func TestEventRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 2000; i++ {
		e := randomEvent(rng)
		if err := e.Validate(); err != nil {
			t.Fatalf("generator produced invalid event: %v", err)
		}
		got, err := DecodeEvent(EncodeEvent(e))
		if err != nil {
			t.Fatalf("iteration %d: decode: %v\nevent: %s", i, err, e)
		}
		if !got.Equal(e) {
			t.Fatalf("iteration %d: roundtrip mismatch\n got %s\nwant %s", i, got, e)
		}
		if !got.Stamp.Equal(e.Stamp) {
			t.Fatalf("iteration %d: stamp %v != %v", i, got.Stamp, e.Stamp)
		}
	}
}

// TestFilterRoundTripProperty: any valid filter survives encode/decode
// with identical matching behaviour.
func TestFilterRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for i := 0; i < 2000; i++ {
		f := randomFilter(rng)
		got, err := DecodeFilter(EncodeFilter(f))
		if err != nil {
			t.Fatalf("iteration %d: decode: %v\nfilter: %s", i, err, f)
		}
		if !got.Equal(f) {
			t.Fatalf("iteration %d: roundtrip mismatch\n got %s\nwant %s", i, got, f)
		}
		// Matching behaviour is preserved on sampled events.
		for s := 0; s < 5; s++ {
			e := randomEvent(rng)
			if f.Matches(e) != got.Matches(e) {
				t.Fatalf("iteration %d: matching diverges after roundtrip", i)
			}
		}
	}
}

// TestEventThroughPacketProperty pushes random events through the full
// packet layer (marshal → unmarshal → decode).
func TestEventThroughPacketProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 1000; i++ {
		e := randomEvent(rng)
		pkt := &Packet{
			Type:    PktEvent,
			Sender:  e.Sender,
			Seq:     uint64(i),
			Payload: EncodeEvent(e),
		}
		buf, err := pkt.MarshalBytes()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		dec, err := DecodeEvent(got.Payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !dec.Equal(e) {
			t.Fatalf("through-packet mismatch at %d", i)
		}
	}
}
