package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
)

// buildBatch encodes events into a batch payload the way the proxy and
// client batchers do: prologue then one frame per event.
func buildBatch(events ...*event.Event) []byte {
	dst := AppendBatchHeader(nil)
	for _, e := range events {
		dst = AppendBatchEvent(dst, e)
	}
	return dst
}

// TestBatchFrameMatchesSingleEventEncoding: each frame body is
// byte-identical to the frozen standalone encoding — batching is a
// framing layer above the seed format, not a new event encoding.
func TestBatchFrameMatchesSingleEventEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 200; i++ {
		e := randomEvent(rng)
		payload := buildBatch(e)
		r, err := NewBatchReader(payload)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := seedEncodeEvent(e)
		if !bytes.Equal(frame, want) {
			t.Fatalf("iteration %d: frame diverges from seed encoding\nframe %x\nseed  %x", i, frame, want)
		}
		if r.More() {
			t.Fatal("unexpected extra frame")
		}
		if sz := EventSize(e); sz != len(frame) {
			t.Fatalf("EventSize %d != frame length %d", sz, len(frame))
		}
	}
}

// TestBatchRoundTripBorrowed: a marshalled batch packet unpacks through
// the pooled borrow-from-packet decode, every event compares equal, and
// each unpacked event holds its own reference on the shared packet — the
// packet recycles only after the last event releases.
func TestBatchRoundTripBorrowed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := make([]*event.Event, 5)
	for i := range events {
		events[i] = randomEvent(rng)
	}
	payload := buildBatch(events...)
	if err := SetBatchAck(payload, 3, 41); err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{Type: PktEvent, Flags: FlagBatch, Sender: ident.New(9), Seq: 1, Payload: payload}
	buf, err := pkt.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPacketPool()
	in, err := pool.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if in.Flags&FlagBatch == 0 {
		t.Fatal("batch flag lost in transit")
	}
	if ep, cum, ok := BatchAck(in.Payload); !ok || ep != 3 || cum != 41 {
		t.Fatalf("piggyback ack: got (%d,%d,%v), want (3,41,true)", ep, cum, ok)
	}

	r, err := NewBatchReader(in.Payload)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []*event.Event
	for r.More() {
		frame, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		e := event.Acquire()
		if err := DecodeBatchFrameInto(e, frame, in); err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, e)
	}
	if len(decoded) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(events))
	}
	for i, e := range decoded {
		if !e.Equal(events[i]) {
			t.Fatalf("event %d mismatch: got %s want %s", i, e, events[i])
		}
	}

	// Receive loop drops its reference first; the events keep the
	// packet alive until each is released.
	in.Release()
	for _, e := range decoded {
		e.Release()
	}
	acq, rec := pool.Stats()
	if acq != rec {
		t.Fatalf("packet leaked: acquired %d recycled %d", acq, rec)
	}
}

// TestPatchBatchAck: the transmit-time ack patch rewrites the
// marshalled buffer in place, the CRC stays valid, and only the
// prologue changes — the frames region is untouched, which is what the
// redelivery stash comparison relies on.
func TestPatchBatchAck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	payload := buildBatch(randomEvent(rng), randomEvent(rng))
	pkt := &Packet{Type: PktEvent, Flags: FlagBatch, Sender: ident.New(2), Seq: 9, Payload: payload}
	buf, err := pkt.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := PatchBatchAck(buf, 7, 12345); err != nil {
		t.Fatal(err)
	}
	in, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("patched packet fails CRC: %v", err)
	}
	ep, cum, ok := BatchAck(in.Payload)
	if !ok || ep != 7 || cum != 12345 {
		t.Fatalf("got ack (%d,%d,%v), want (7,12345,true)", ep, cum, ok)
	}
	got, err := BatchFrames(in.Payload)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := BatchFrames(payload)
	if !bytes.Equal(got, want) {
		t.Fatal("frames region changed by ack patch")
	}

	// Patching a non-batch packet is refused.
	single := &Packet{Type: PktEvent, Sender: ident.New(2), Seq: 10, Payload: EncodeEvent(randomEvent(rng))}
	sbuf, _ := single.MarshalBytes()
	if err := PatchBatchAck(sbuf, 1, 1); err == nil {
		t.Fatal("PatchBatchAck accepted a non-batch packet")
	}
}

// TestBatchReaderHostile pins the O(1) rejection paths: truncated
// prologue, overrunning frame length, impossibly short frame, and the
// valid-but-empty batch.
func TestBatchReaderHostile(t *testing.T) {
	if _, err := NewBatchReader(make([]byte, BatchHeaderLen-1)); err == nil {
		t.Fatal("short prologue accepted")
	}

	// Empty batch: prologue only, zero frames — valid, possibly an
	// ack-only packet.
	r, err := NewBatchReader(make([]byte, BatchHeaderLen))
	if err != nil {
		t.Fatal(err)
	}
	if r.More() {
		t.Fatal("empty batch reports frames")
	}

	// Oversize frame: length prefix promises more bytes than remain.
	over := AppendBatchHeader(nil)
	over = appendUvarint(over, 1<<20)
	over = append(over, make([]byte, 64)...)
	r, _ = NewBatchReader(over)
	if _, err := r.Next(); err == nil {
		t.Fatal("oversize frame accepted")
	}

	// Truncated frame: too short to hold an event header.
	short := AppendBatchHeader(nil)
	short = appendUvarint(short, 4)
	short = append(short, 1, 2, 3, 4)
	r, _ = NewBatchReader(short)
	if _, err := r.Next(); err == nil {
		t.Fatal("short frame accepted")
	}

	// Garbage length prefix: a uvarint that never terminates.
	bad := AppendBatchHeader(nil)
	bad = append(bad, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)
	r, _ = NewBatchReader(bad)
	if _, err := r.Next(); err == nil {
		t.Fatal("unterminated length prefix accepted")
	}
}

// FuzzBatchRoundTrip is the batch-framing companion of
// FuzzEventRoundTrip, run alongside it in the CI fuzz step: fuzzed
// batch payloads either fail frame iteration/decode or yield events
// whose re-encoding (seed encoder) rebuilds into a batch that parses
// back to equal events. Single-event payloads are in the corpus too —
// they must be handled (rejected or decoded) without crashing.
func FuzzBatchRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	// Valid batches of assorted sizes, with and without piggyback acks.
	for _, n := range []int{1, 2, 5, 16} {
		events := make([]*event.Event, n)
		for i := range events {
			events[i] = randomEvent(rng)
		}
		payload := buildBatch(events...)
		if n%2 == 0 {
			_ = SetBatchAck(payload, byte(n), uint64(n)*100)
		}
		f.Add(payload)
	}
	// Empty batch (prologue only).
	f.Add(make([]byte, BatchHeaderLen))
	// Truncated prologue.
	f.Add(make([]byte, BatchHeaderLen-2))
	// Oversize frame: length prefix overruns the payload.
	over := AppendBatchHeader(nil)
	over = appendUvarint(over, 1<<16)
	f.Add(append(over, 0xFF, 0xEE))
	// Truncated frame: promised length but the event inside is cut off.
	trunc := buildBatch(randomEvent(rng))
	f.Add(trunc[:len(trunc)-3])
	// A bare single-event payload (no batch framing) — foreign bytes.
	f.Add(EncodeEvent(randomEvent(rng)))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBatchReader(data)
		if err != nil {
			return // not a batch; rejected without crashing
		}
		_, _, _ = BatchAck(data)
		var decoded []*event.Event
		for r.More() {
			frame, err := r.Next()
			if err != nil {
				return // malformed framing is rejected, never crashes
			}
			e, err := DecodeEvent(frame)
			if err != nil {
				return // malformed frame body: receiver drops the batch
			}
			if e.Len() > event.MaxAttrs {
				t.Fatalf("frame decode admitted %d attributes", e.Len())
			}
			decoded = append(decoded, e)
		}
		// Rebuild canonically and re-parse: the framing round-trips.
		rebuilt := AppendBatchHeader(nil)
		for _, e := range decoded {
			if sz, enc := EventSize(e), EncodeEvent(e); sz != len(enc) {
				t.Fatalf("EventSize %d != encoded length %d", sz, len(enc))
			} else if seed := seedEncodeEvent(e); !bytes.Equal(enc, seed) {
				t.Fatalf("re-encode diverges from seed encoder\ninline %x\nseed   %x", enc, seed)
			}
			rebuilt = AppendBatchEvent(rebuilt, e)
		}
		rr, err := NewBatchReader(rebuilt)
		if err != nil {
			t.Fatalf("canonical rebuild does not parse: %v", err)
		}
		for i := 0; rr.More(); i++ {
			frame, err := rr.Next()
			if err != nil {
				t.Fatalf("canonical rebuild frame %d: %v", i, err)
			}
			e2, err := DecodeEvent(frame)
			if err != nil {
				t.Fatalf("canonical rebuild frame %d decode: %v", i, err)
			}
			if !e2.Equal(decoded[i]) {
				t.Fatalf("canonical rebuild frame %d decodes differently", i)
			}
		}
		// Frame lengths are uvarints: rebuilt length is deterministic.
		if len(decoded) == 0 && len(rebuilt) != BatchHeaderLen {
			t.Fatal("empty rebuild grew a frame")
		}
	})
}
