package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/amuse/smc/internal/ident"
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Type:    PktEvent,
		Flags:   FlagRetransmit,
		Epoch:   42,
		Sender:  ident.New(0x123456789ABC),
		Seq:     987654321,
		Payload: []byte("hello world"),
	}
	buf, err := p.MarshalBytes()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if len(buf) != p.EncodedLen() {
		t.Errorf("len = %d, want %d", len(buf), p.EncodedLen())
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Type != p.Type || got.Flags != p.Flags || got.Epoch != p.Epoch ||
		got.Sender != p.Sender || got.Seq != p.Seq ||
		string(got.Payload) != string(p.Payload) {
		t.Errorf("roundtrip mismatch: %+v vs %+v", got, p)
	}
}

func TestPatchHeader(t *testing.T) {
	p := &Packet{
		Type:    PktEvent,
		Sender:  ident.New(7),
		Seq:     3,
		Payload: []byte("steady payload"),
	}
	buf, err := p.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := PatchHeader(buf, FlagRetransmit, 9, 41); err != nil {
		t.Fatalf("patch: %v", err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("unmarshal after patch: %v", err)
	}
	if got.Flags != FlagRetransmit || got.Epoch != 9 || got.Seq != 41 {
		t.Errorf("patched packet = %s", got)
	}
	if string(got.Payload) != "steady payload" || got.Sender != p.Sender || got.Type != p.Type {
		t.Errorf("patch disturbed unrelated fields: %s", got)
	}
	if err := PatchHeader(buf[:HeaderLen], 0, 0, 0); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short buf err = %v", err)
	}
}

func TestEpochZeroMatchesLegacyLayout(t *testing.T) {
	// Epoch 0 must produce the pre-epoch byte layout (reserved byte 0)
	// so mixed-version deployments interoperate.
	p := &Packet{Type: PktEvent, Sender: ident.New(1), Seq: 1}
	buf, err := p.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if buf[5] != 0 {
		t.Errorf("epoch byte = %d, want 0", buf[5])
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	err := quick.Check(func(typ byte, flags byte, sender uint64, seq uint64, payload []byte) bool {
		p := &Packet{
			Type:    PacketType(typ),
			Flags:   flags,
			Sender:  ident.New(sender),
			Seq:     seq,
			Payload: payload,
		}
		buf, err := p.MarshalBytes()
		if err != nil {
			return len(payload) > MaxPayload
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		if got.Type != p.Type || got.Flags != flags || got.Sender != p.Sender || got.Seq != seq {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := &Packet{Type: PktEvent, Sender: 1, Seq: 2, Payload: []byte("payload")}
	buf, err := p.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}

	// Flip every single byte and require rejection or, at minimum,
	// detection via checksum (flips in the payload must always be
	// caught by CRC).
	for i := 0; i < len(buf); i++ {
		corrupt := make([]byte, len(buf))
		copy(corrupt, buf)
		corrupt[i] ^= 0xFF
		if _, err := Unmarshal(corrupt); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestUnmarshalTruncation(t *testing.T) {
	p := &Packet{Type: PktAck, Sender: 1, Seq: 2, Payload: []byte("abcdef")}
	buf, err := p.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i++ {
		if _, err := Unmarshal(buf[:i]); err == nil {
			t.Fatalf("truncated packet of %d bytes accepted", i)
		}
	}
}

func TestUnmarshalBadMagicAndVersion(t *testing.T) {
	p := &Packet{Type: PktAck, Sender: 1, Seq: 2}
	buf, _ := p.MarshalBytes()
	bad := make([]byte, len(buf))
	copy(bad, buf)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	copy(bad, buf)
	bad[2] = 99
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	p := &Packet{Type: PktEvent, Payload: make([]byte, MaxPayload+1)}
	if _, err := p.MarshalBytes(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("oversized marshal: %v", err)
	}
}

func TestClonePayloadDetaches(t *testing.T) {
	p := &Packet{Type: PktEvent, Sender: 1, Seq: 1, Payload: []byte("data")}
	buf, _ := p.MarshalBytes()
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	got.ClonePayload()
	buf[HeaderLen] = 'X' // scribble over the original buffer
	if string(got.Payload) != "data" {
		t.Error("payload not detached from decode buffer")
	}
}

func TestMarshalAppendsToDst(t *testing.T) {
	p := &Packet{Type: PktAck, Sender: 5, Seq: 6}
	prefix := []byte{0xAA, 0xBB}
	out, err := p.Marshal(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAA || out[1] != 0xBB {
		t.Error("prefix clobbered")
	}
	if _, err := Unmarshal(out[2:]); err != nil {
		t.Errorf("appended packet corrupt: %v", err)
	}
}

func TestPacketTypeStrings(t *testing.T) {
	types := []PacketType{
		PktEvent, PktAck, PktSubscribe, PktUnsubscribe, PktBeacon,
		PktJoinRequest, PktJoinReject, PktJoinAccept, PktLeave,
		PktHeartbeat, PktQuench, PktUnquench, PktData,
	}
	seen := map[string]bool{}
	for _, pt := range types {
		s := pt.String()
		if s == "invalid" || seen[s] {
			t.Errorf("type %d renders %q", pt, s)
		}
		seen[s] = true
	}
	if PacketType(200).String() != "invalid" {
		t.Error("unknown type not invalid")
	}
}

func TestUnmarshalRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(128)
		buf := make([]byte, n)
		rng.Read(buf)
		// Must never panic; almost always errors.
		_, _ = Unmarshal(buf)
	}
}
