package wire

import "github.com/amuse/smc/internal/event"

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ValueSize returns len(AppendValue(nil, v)) without encoding: the type
// byte plus the payload.
func ValueSize(v event.Value) int {
	switch v.Type() {
	case event.TypeInt, event.TypeFloat:
		return 1 + 8
	case event.TypeString:
		s, _ := v.Str()
		return 1 + uvarintLen(uint64(len(s))) + len(s)
	case event.TypeBool:
		return 1 + 1
	case event.TypeBytes:
		b, _ := v.BytesRef()
		return 1 + uvarintLen(uint64(len(b))) + len(b)
	default:
		return 1
	}
}

// EventSize returns len(EncodeEvent(e)) without allocating or encoding,
// so the bus's cost model can charge per-byte processing without paying
// for a throwaway encode of every published event.
func EventSize(e *event.Event) int {
	// Sender (8) + seq (8) + stamp (8) + attribute count (2).
	n := 26
	for i, cnt := 0, e.Len(); i < cnt; i++ {
		name, v := e.At(i)
		n += uvarintLen(uint64(len(name))) + len(name) + ValueSize(v)
	}
	return n
}
